file(REMOVE_RECURSE
  "CMakeFiles/replay.dir/replay.cpp.o"
  "CMakeFiles/replay.dir/replay.cpp.o.d"
  "replay"
  "replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
