# Empty dependencies file for replay.
# This may be replaced when dependencies are built.
