file(REMOVE_RECURSE
  "CMakeFiles/schedule_io.dir/schedule_io.cpp.o"
  "CMakeFiles/schedule_io.dir/schedule_io.cpp.o.d"
  "schedule_io"
  "schedule_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schedule_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
