# Empty dependencies file for schedule_io.
# This may be replaced when dependencies are built.
