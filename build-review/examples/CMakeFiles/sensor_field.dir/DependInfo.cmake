
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/sensor_field.cpp" "examples/CMakeFiles/sensor_field.dir/sensor_field.cpp.o" "gcc" "examples/CMakeFiles/sensor_field.dir/sensor_field.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/exp/CMakeFiles/fdlsp_exp.dir/DependInfo.cmake"
  "/root/repo/build-review/src/tdma/CMakeFiles/fdlsp_tdma.dir/DependInfo.cmake"
  "/root/repo/build-review/src/io/CMakeFiles/fdlsp_io.dir/DependInfo.cmake"
  "/root/repo/build-review/src/algos/CMakeFiles/fdlsp_algos.dir/DependInfo.cmake"
  "/root/repo/build-review/src/ilp/CMakeFiles/fdlsp_ilp.dir/DependInfo.cmake"
  "/root/repo/build-review/src/coloring/CMakeFiles/fdlsp_coloring.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/fdlsp_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/graph/CMakeFiles/fdlsp_graph.dir/DependInfo.cmake"
  "/root/repo/build-review/src/support/CMakeFiles/fdlsp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
