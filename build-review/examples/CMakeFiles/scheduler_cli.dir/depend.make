# Empty dependencies file for scheduler_cli.
# This may be replaced when dependencies are built.
