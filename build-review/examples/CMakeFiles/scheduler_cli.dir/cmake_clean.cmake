file(REMOVE_RECURSE
  "CMakeFiles/scheduler_cli.dir/scheduler_cli.cpp.o"
  "CMakeFiles/scheduler_cli.dir/scheduler_cli.cpp.o.d"
  "scheduler_cli"
  "scheduler_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scheduler_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
