file(REMOVE_RECURSE
  "CMakeFiles/dynamic_network.dir/dynamic_network.cpp.o"
  "CMakeFiles/dynamic_network.dir/dynamic_network.cpp.o.d"
  "dynamic_network"
  "dynamic_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
