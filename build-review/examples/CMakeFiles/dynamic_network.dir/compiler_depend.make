# Empty compiler generated dependencies file for dynamic_network.
# This may be replaced when dependencies are built.
