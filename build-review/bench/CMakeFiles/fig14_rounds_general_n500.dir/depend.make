# Empty dependencies file for fig14_rounds_general_n500.
# This may be replaced when dependencies are built.
