file(REMOVE_RECURSE
  "CMakeFiles/fig14_rounds_general_n500.dir/fig14_rounds_general_n500.cpp.o"
  "CMakeFiles/fig14_rounds_general_n500.dir/fig14_rounds_general_n500.cpp.o.d"
  "fig14_rounds_general_n500"
  "fig14_rounds_general_n500.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_rounds_general_n500.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
