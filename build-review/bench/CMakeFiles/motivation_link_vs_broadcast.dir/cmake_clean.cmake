file(REMOVE_RECURSE
  "CMakeFiles/motivation_link_vs_broadcast.dir/motivation_link_vs_broadcast.cpp.o"
  "CMakeFiles/motivation_link_vs_broadcast.dir/motivation_link_vs_broadcast.cpp.o.d"
  "motivation_link_vs_broadcast"
  "motivation_link_vs_broadcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motivation_link_vs_broadcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
