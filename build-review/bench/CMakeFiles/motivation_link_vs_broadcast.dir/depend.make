# Empty dependencies file for motivation_link_vs_broadcast.
# This may be replaced when dependencies are built.
