# Empty dependencies file for micro_coloring.
# This may be replaced when dependencies are built.
