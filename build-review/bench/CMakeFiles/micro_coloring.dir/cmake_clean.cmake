file(REMOVE_RECURSE
  "CMakeFiles/micro_coloring.dir/micro_coloring.cpp.o"
  "CMakeFiles/micro_coloring.dir/micro_coloring.cpp.o.d"
  "micro_coloring"
  "micro_coloring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_coloring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
