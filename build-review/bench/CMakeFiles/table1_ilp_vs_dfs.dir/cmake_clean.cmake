file(REMOVE_RECURSE
  "CMakeFiles/table1_ilp_vs_dfs.dir/table1_ilp_vs_dfs.cpp.o"
  "CMakeFiles/table1_ilp_vs_dfs.dir/table1_ilp_vs_dfs.cpp.o.d"
  "table1_ilp_vs_dfs"
  "table1_ilp_vs_dfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_ilp_vs_dfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
