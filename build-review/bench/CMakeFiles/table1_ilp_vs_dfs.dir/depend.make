# Empty dependencies file for table1_ilp_vs_dfs.
# This may be replaced when dependencies are built.
