# Empty compiler generated dependencies file for fig08_udg_plan15.
# This may be replaced when dependencies are built.
