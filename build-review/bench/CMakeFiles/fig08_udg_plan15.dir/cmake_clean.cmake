file(REMOVE_RECURSE
  "CMakeFiles/fig08_udg_plan15.dir/fig08_udg_plan15.cpp.o"
  "CMakeFiles/fig08_udg_plan15.dir/fig08_udg_plan15.cpp.o.d"
  "fig08_udg_plan15"
  "fig08_udg_plan15.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_udg_plan15.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
