file(REMOVE_RECURSE
  "CMakeFiles/micro_generators.dir/micro_generators.cpp.o"
  "CMakeFiles/micro_generators.dir/micro_generators.cpp.o.d"
  "micro_generators"
  "micro_generators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_generators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
