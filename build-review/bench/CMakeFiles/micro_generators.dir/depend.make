# Empty dependencies file for micro_generators.
# This may be replaced when dependencies are built.
