# Empty compiler generated dependencies file for fig11_general_n200.
# This may be replaced when dependencies are built.
