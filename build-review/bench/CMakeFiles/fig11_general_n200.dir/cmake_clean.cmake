file(REMOVE_RECURSE
  "CMakeFiles/fig11_general_n200.dir/fig11_general_n200.cpp.o"
  "CMakeFiles/fig11_general_n200.dir/fig11_general_n200.cpp.o.d"
  "fig11_general_n200"
  "fig11_general_n200.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_general_n200.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
