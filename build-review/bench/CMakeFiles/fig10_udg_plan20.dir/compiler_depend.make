# Empty compiler generated dependencies file for fig10_udg_plan20.
# This may be replaced when dependencies are built.
