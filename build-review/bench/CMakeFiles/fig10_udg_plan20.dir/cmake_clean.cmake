file(REMOVE_RECURSE
  "CMakeFiles/fig10_udg_plan20.dir/fig10_udg_plan20.cpp.o"
  "CMakeFiles/fig10_udg_plan20.dir/fig10_udg_plan20.cpp.o.d"
  "fig10_udg_plan20"
  "fig10_udg_plan20.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_udg_plan20.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
