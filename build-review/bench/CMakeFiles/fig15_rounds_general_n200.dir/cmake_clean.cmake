file(REMOVE_RECURSE
  "CMakeFiles/fig15_rounds_general_n200.dir/fig15_rounds_general_n200.cpp.o"
  "CMakeFiles/fig15_rounds_general_n200.dir/fig15_rounds_general_n200.cpp.o.d"
  "fig15_rounds_general_n200"
  "fig15_rounds_general_n200.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_rounds_general_n200.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
