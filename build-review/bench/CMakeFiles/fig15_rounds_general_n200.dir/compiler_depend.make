# Empty compiler generated dependencies file for fig15_rounds_general_n200.
# This may be replaced when dependencies are built.
