# Empty compiler generated dependencies file for fdlsp_bench_common.
# This may be replaced when dependencies are built.
