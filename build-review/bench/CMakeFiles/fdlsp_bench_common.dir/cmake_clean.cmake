file(REMOVE_RECURSE
  "CMakeFiles/fdlsp_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/fdlsp_bench_common.dir/bench_common.cpp.o.d"
  "libfdlsp_bench_common.a"
  "libfdlsp_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdlsp_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
