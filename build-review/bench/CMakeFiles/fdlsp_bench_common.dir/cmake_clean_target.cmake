file(REMOVE_RECURSE
  "libfdlsp_bench_common.a"
)
