# Empty dependencies file for fig13_rounds_udg.
# This may be replaced when dependencies are built.
