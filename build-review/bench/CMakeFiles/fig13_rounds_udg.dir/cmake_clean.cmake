file(REMOVE_RECURSE
  "CMakeFiles/fig13_rounds_udg.dir/fig13_rounds_udg.cpp.o"
  "CMakeFiles/fig13_rounds_udg.dir/fig13_rounds_udg.cpp.o.d"
  "fig13_rounds_udg"
  "fig13_rounds_udg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_rounds_udg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
