file(REMOVE_RECURSE
  "CMakeFiles/fig12_general_n500.dir/fig12_general_n500.cpp.o"
  "CMakeFiles/fig12_general_n500.dir/fig12_general_n500.cpp.o.d"
  "fig12_general_n500"
  "fig12_general_n500.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_general_n500.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
