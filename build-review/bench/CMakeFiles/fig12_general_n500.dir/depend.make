# Empty dependencies file for fig12_general_n500.
# This may be replaced when dependencies are built.
