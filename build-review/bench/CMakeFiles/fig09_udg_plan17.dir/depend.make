# Empty dependencies file for fig09_udg_plan17.
# This may be replaced when dependencies are built.
