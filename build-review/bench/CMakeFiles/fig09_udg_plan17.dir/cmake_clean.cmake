file(REMOVE_RECURSE
  "CMakeFiles/fig09_udg_plan17.dir/fig09_udg_plan17.cpp.o"
  "CMakeFiles/fig09_udg_plan17.dir/fig09_udg_plan17.cpp.o.d"
  "fig09_udg_plan17"
  "fig09_udg_plan17.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_udg_plan17.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
