file(REMOVE_RECURSE
  "CMakeFiles/ablation_randomized.dir/ablation_randomized.cpp.o"
  "CMakeFiles/ablation_randomized.dir/ablation_randomized.cpp.o.d"
  "ablation_randomized"
  "ablation_randomized.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_randomized.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
