# Empty compiler generated dependencies file for ablation_randomized.
# This may be replaced when dependencies are built.
