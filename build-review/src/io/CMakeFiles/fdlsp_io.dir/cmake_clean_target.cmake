file(REMOVE_RECURSE
  "libfdlsp_io.a"
)
