# Empty compiler generated dependencies file for fdlsp_io.
# This may be replaced when dependencies are built.
