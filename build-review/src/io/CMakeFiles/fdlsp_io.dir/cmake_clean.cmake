file(REMOVE_RECURSE
  "CMakeFiles/fdlsp_io.dir/io.cpp.o"
  "CMakeFiles/fdlsp_io.dir/io.cpp.o.d"
  "libfdlsp_io.a"
  "libfdlsp_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdlsp_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
