# Empty compiler generated dependencies file for fdlsp_ilp.
# This may be replaced when dependencies are built.
