file(REMOVE_RECURSE
  "libfdlsp_ilp.a"
)
