file(REMOVE_RECURSE
  "CMakeFiles/fdlsp_ilp.dir/branch_bound.cpp.o"
  "CMakeFiles/fdlsp_ilp.dir/branch_bound.cpp.o.d"
  "CMakeFiles/fdlsp_ilp.dir/fdlsp_ilp.cpp.o"
  "CMakeFiles/fdlsp_ilp.dir/fdlsp_ilp.cpp.o.d"
  "CMakeFiles/fdlsp_ilp.dir/model.cpp.o"
  "CMakeFiles/fdlsp_ilp.dir/model.cpp.o.d"
  "CMakeFiles/fdlsp_ilp.dir/simplex.cpp.o"
  "CMakeFiles/fdlsp_ilp.dir/simplex.cpp.o.d"
  "libfdlsp_ilp.a"
  "libfdlsp_ilp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdlsp_ilp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
