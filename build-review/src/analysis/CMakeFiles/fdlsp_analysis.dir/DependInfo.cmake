
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/happens_before.cpp" "src/analysis/CMakeFiles/fdlsp_analysis.dir/happens_before.cpp.o" "gcc" "src/analysis/CMakeFiles/fdlsp_analysis.dir/happens_before.cpp.o.d"
  "/root/repo/src/analysis/lint.cpp" "src/analysis/CMakeFiles/fdlsp_analysis.dir/lint.cpp.o" "gcc" "src/analysis/CMakeFiles/fdlsp_analysis.dir/lint.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/graph/CMakeFiles/fdlsp_graph.dir/DependInfo.cmake"
  "/root/repo/build-review/src/support/CMakeFiles/fdlsp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
