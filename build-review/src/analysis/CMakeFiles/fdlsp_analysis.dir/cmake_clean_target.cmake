file(REMOVE_RECURSE
  "libfdlsp_analysis.a"
)
