file(REMOVE_RECURSE
  "CMakeFiles/fdlsp_analysis.dir/happens_before.cpp.o"
  "CMakeFiles/fdlsp_analysis.dir/happens_before.cpp.o.d"
  "CMakeFiles/fdlsp_analysis.dir/lint.cpp.o"
  "CMakeFiles/fdlsp_analysis.dir/lint.cpp.o.d"
  "libfdlsp_analysis.a"
  "libfdlsp_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdlsp_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
