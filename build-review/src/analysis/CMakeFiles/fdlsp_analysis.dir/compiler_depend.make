# Empty compiler generated dependencies file for fdlsp_analysis.
# This may be replaced when dependencies are built.
