# Empty compiler generated dependencies file for fdlsp_algos.
# This may be replaced when dependencies are built.
