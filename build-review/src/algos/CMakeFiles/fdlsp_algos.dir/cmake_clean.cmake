file(REMOVE_RECURSE
  "CMakeFiles/fdlsp_algos.dir/broadcast.cpp.o"
  "CMakeFiles/fdlsp_algos.dir/broadcast.cpp.o.d"
  "CMakeFiles/fdlsp_algos.dir/dfs_schedule.cpp.o"
  "CMakeFiles/fdlsp_algos.dir/dfs_schedule.cpp.o.d"
  "CMakeFiles/fdlsp_algos.dir/dist_mis.cpp.o"
  "CMakeFiles/fdlsp_algos.dir/dist_mis.cpp.o.d"
  "CMakeFiles/fdlsp_algos.dir/dist_repair.cpp.o"
  "CMakeFiles/fdlsp_algos.dir/dist_repair.cpp.o.d"
  "CMakeFiles/fdlsp_algos.dir/dmgc.cpp.o"
  "CMakeFiles/fdlsp_algos.dir/dmgc.cpp.o.d"
  "CMakeFiles/fdlsp_algos.dir/mis.cpp.o"
  "CMakeFiles/fdlsp_algos.dir/mis.cpp.o.d"
  "CMakeFiles/fdlsp_algos.dir/misra_gries.cpp.o"
  "CMakeFiles/fdlsp_algos.dir/misra_gries.cpp.o.d"
  "CMakeFiles/fdlsp_algos.dir/randomized.cpp.o"
  "CMakeFiles/fdlsp_algos.dir/randomized.cpp.o.d"
  "CMakeFiles/fdlsp_algos.dir/repair.cpp.o"
  "CMakeFiles/fdlsp_algos.dir/repair.cpp.o.d"
  "CMakeFiles/fdlsp_algos.dir/scheduler.cpp.o"
  "CMakeFiles/fdlsp_algos.dir/scheduler.cpp.o.d"
  "CMakeFiles/fdlsp_algos.dir/two_sat.cpp.o"
  "CMakeFiles/fdlsp_algos.dir/two_sat.cpp.o.d"
  "libfdlsp_algos.a"
  "libfdlsp_algos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdlsp_algos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
