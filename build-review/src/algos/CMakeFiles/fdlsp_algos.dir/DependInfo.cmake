
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algos/broadcast.cpp" "src/algos/CMakeFiles/fdlsp_algos.dir/broadcast.cpp.o" "gcc" "src/algos/CMakeFiles/fdlsp_algos.dir/broadcast.cpp.o.d"
  "/root/repo/src/algos/dfs_schedule.cpp" "src/algos/CMakeFiles/fdlsp_algos.dir/dfs_schedule.cpp.o" "gcc" "src/algos/CMakeFiles/fdlsp_algos.dir/dfs_schedule.cpp.o.d"
  "/root/repo/src/algos/dist_mis.cpp" "src/algos/CMakeFiles/fdlsp_algos.dir/dist_mis.cpp.o" "gcc" "src/algos/CMakeFiles/fdlsp_algos.dir/dist_mis.cpp.o.d"
  "/root/repo/src/algos/dist_repair.cpp" "src/algos/CMakeFiles/fdlsp_algos.dir/dist_repair.cpp.o" "gcc" "src/algos/CMakeFiles/fdlsp_algos.dir/dist_repair.cpp.o.d"
  "/root/repo/src/algos/dmgc.cpp" "src/algos/CMakeFiles/fdlsp_algos.dir/dmgc.cpp.o" "gcc" "src/algos/CMakeFiles/fdlsp_algos.dir/dmgc.cpp.o.d"
  "/root/repo/src/algos/mis.cpp" "src/algos/CMakeFiles/fdlsp_algos.dir/mis.cpp.o" "gcc" "src/algos/CMakeFiles/fdlsp_algos.dir/mis.cpp.o.d"
  "/root/repo/src/algos/misra_gries.cpp" "src/algos/CMakeFiles/fdlsp_algos.dir/misra_gries.cpp.o" "gcc" "src/algos/CMakeFiles/fdlsp_algos.dir/misra_gries.cpp.o.d"
  "/root/repo/src/algos/randomized.cpp" "src/algos/CMakeFiles/fdlsp_algos.dir/randomized.cpp.o" "gcc" "src/algos/CMakeFiles/fdlsp_algos.dir/randomized.cpp.o.d"
  "/root/repo/src/algos/repair.cpp" "src/algos/CMakeFiles/fdlsp_algos.dir/repair.cpp.o" "gcc" "src/algos/CMakeFiles/fdlsp_algos.dir/repair.cpp.o.d"
  "/root/repo/src/algos/scheduler.cpp" "src/algos/CMakeFiles/fdlsp_algos.dir/scheduler.cpp.o" "gcc" "src/algos/CMakeFiles/fdlsp_algos.dir/scheduler.cpp.o.d"
  "/root/repo/src/algos/two_sat.cpp" "src/algos/CMakeFiles/fdlsp_algos.dir/two_sat.cpp.o" "gcc" "src/algos/CMakeFiles/fdlsp_algos.dir/two_sat.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/coloring/CMakeFiles/fdlsp_coloring.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/fdlsp_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/graph/CMakeFiles/fdlsp_graph.dir/DependInfo.cmake"
  "/root/repo/build-review/src/support/CMakeFiles/fdlsp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
