file(REMOVE_RECURSE
  "libfdlsp_algos.a"
)
