# Empty compiler generated dependencies file for fdlsp_verify.
# This may be replaced when dependencies are built.
