file(REMOVE_RECURSE
  "CMakeFiles/fdlsp_verify.dir/causality.cpp.o"
  "CMakeFiles/fdlsp_verify.dir/causality.cpp.o.d"
  "CMakeFiles/fdlsp_verify.dir/differential.cpp.o"
  "CMakeFiles/fdlsp_verify.dir/differential.cpp.o.d"
  "CMakeFiles/fdlsp_verify.dir/fault_oracles.cpp.o"
  "CMakeFiles/fdlsp_verify.dir/fault_oracles.cpp.o.d"
  "CMakeFiles/fdlsp_verify.dir/oracles.cpp.o"
  "CMakeFiles/fdlsp_verify.dir/oracles.cpp.o.d"
  "CMakeFiles/fdlsp_verify.dir/scenario.cpp.o"
  "CMakeFiles/fdlsp_verify.dir/scenario.cpp.o.d"
  "CMakeFiles/fdlsp_verify.dir/shrink.cpp.o"
  "CMakeFiles/fdlsp_verify.dir/shrink.cpp.o.d"
  "libfdlsp_verify.a"
  "libfdlsp_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdlsp_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
