# Empty dependencies file for fdlsp_verify.
# This may be replaced when dependencies are built.
