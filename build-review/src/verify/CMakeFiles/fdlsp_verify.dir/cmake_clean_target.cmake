file(REMOVE_RECURSE
  "libfdlsp_verify.a"
)
