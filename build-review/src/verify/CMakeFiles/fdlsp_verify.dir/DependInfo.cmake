
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/verify/causality.cpp" "src/verify/CMakeFiles/fdlsp_verify.dir/causality.cpp.o" "gcc" "src/verify/CMakeFiles/fdlsp_verify.dir/causality.cpp.o.d"
  "/root/repo/src/verify/differential.cpp" "src/verify/CMakeFiles/fdlsp_verify.dir/differential.cpp.o" "gcc" "src/verify/CMakeFiles/fdlsp_verify.dir/differential.cpp.o.d"
  "/root/repo/src/verify/fault_oracles.cpp" "src/verify/CMakeFiles/fdlsp_verify.dir/fault_oracles.cpp.o" "gcc" "src/verify/CMakeFiles/fdlsp_verify.dir/fault_oracles.cpp.o.d"
  "/root/repo/src/verify/oracles.cpp" "src/verify/CMakeFiles/fdlsp_verify.dir/oracles.cpp.o" "gcc" "src/verify/CMakeFiles/fdlsp_verify.dir/oracles.cpp.o.d"
  "/root/repo/src/verify/scenario.cpp" "src/verify/CMakeFiles/fdlsp_verify.dir/scenario.cpp.o" "gcc" "src/verify/CMakeFiles/fdlsp_verify.dir/scenario.cpp.o.d"
  "/root/repo/src/verify/shrink.cpp" "src/verify/CMakeFiles/fdlsp_verify.dir/shrink.cpp.o" "gcc" "src/verify/CMakeFiles/fdlsp_verify.dir/shrink.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/exp/CMakeFiles/fdlsp_exp.dir/DependInfo.cmake"
  "/root/repo/build-review/src/algos/CMakeFiles/fdlsp_algos.dir/DependInfo.cmake"
  "/root/repo/build-review/src/analysis/CMakeFiles/fdlsp_analysis.dir/DependInfo.cmake"
  "/root/repo/build-review/src/coloring/CMakeFiles/fdlsp_coloring.dir/DependInfo.cmake"
  "/root/repo/build-review/src/graph/CMakeFiles/fdlsp_graph.dir/DependInfo.cmake"
  "/root/repo/build-review/src/support/CMakeFiles/fdlsp_support.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/fdlsp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
