file(REMOVE_RECURSE
  "libfdlsp_coloring.a"
)
