# Empty dependencies file for fdlsp_coloring.
# This may be replaced when dependencies are built.
