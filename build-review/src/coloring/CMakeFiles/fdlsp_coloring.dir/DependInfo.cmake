
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/coloring/bounds.cpp" "src/coloring/CMakeFiles/fdlsp_coloring.dir/bounds.cpp.o" "gcc" "src/coloring/CMakeFiles/fdlsp_coloring.dir/bounds.cpp.o.d"
  "/root/repo/src/coloring/checker.cpp" "src/coloring/CMakeFiles/fdlsp_coloring.dir/checker.cpp.o" "gcc" "src/coloring/CMakeFiles/fdlsp_coloring.dir/checker.cpp.o.d"
  "/root/repo/src/coloring/coloring.cpp" "src/coloring/CMakeFiles/fdlsp_coloring.dir/coloring.cpp.o" "gcc" "src/coloring/CMakeFiles/fdlsp_coloring.dir/coloring.cpp.o.d"
  "/root/repo/src/coloring/conflict.cpp" "src/coloring/CMakeFiles/fdlsp_coloring.dir/conflict.cpp.o" "gcc" "src/coloring/CMakeFiles/fdlsp_coloring.dir/conflict.cpp.o.d"
  "/root/repo/src/coloring/conflict_graph.cpp" "src/coloring/CMakeFiles/fdlsp_coloring.dir/conflict_graph.cpp.o" "gcc" "src/coloring/CMakeFiles/fdlsp_coloring.dir/conflict_graph.cpp.o.d"
  "/root/repo/src/coloring/conflict_index.cpp" "src/coloring/CMakeFiles/fdlsp_coloring.dir/conflict_index.cpp.o" "gcc" "src/coloring/CMakeFiles/fdlsp_coloring.dir/conflict_index.cpp.o.d"
  "/root/repo/src/coloring/exact.cpp" "src/coloring/CMakeFiles/fdlsp_coloring.dir/exact.cpp.o" "gcc" "src/coloring/CMakeFiles/fdlsp_coloring.dir/exact.cpp.o.d"
  "/root/repo/src/coloring/greedy.cpp" "src/coloring/CMakeFiles/fdlsp_coloring.dir/greedy.cpp.o" "gcc" "src/coloring/CMakeFiles/fdlsp_coloring.dir/greedy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/graph/CMakeFiles/fdlsp_graph.dir/DependInfo.cmake"
  "/root/repo/build-review/src/support/CMakeFiles/fdlsp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
