file(REMOVE_RECURSE
  "CMakeFiles/fdlsp_coloring.dir/bounds.cpp.o"
  "CMakeFiles/fdlsp_coloring.dir/bounds.cpp.o.d"
  "CMakeFiles/fdlsp_coloring.dir/checker.cpp.o"
  "CMakeFiles/fdlsp_coloring.dir/checker.cpp.o.d"
  "CMakeFiles/fdlsp_coloring.dir/coloring.cpp.o"
  "CMakeFiles/fdlsp_coloring.dir/coloring.cpp.o.d"
  "CMakeFiles/fdlsp_coloring.dir/conflict.cpp.o"
  "CMakeFiles/fdlsp_coloring.dir/conflict.cpp.o.d"
  "CMakeFiles/fdlsp_coloring.dir/conflict_graph.cpp.o"
  "CMakeFiles/fdlsp_coloring.dir/conflict_graph.cpp.o.d"
  "CMakeFiles/fdlsp_coloring.dir/conflict_index.cpp.o"
  "CMakeFiles/fdlsp_coloring.dir/conflict_index.cpp.o.d"
  "CMakeFiles/fdlsp_coloring.dir/exact.cpp.o"
  "CMakeFiles/fdlsp_coloring.dir/exact.cpp.o.d"
  "CMakeFiles/fdlsp_coloring.dir/greedy.cpp.o"
  "CMakeFiles/fdlsp_coloring.dir/greedy.cpp.o.d"
  "libfdlsp_coloring.a"
  "libfdlsp_coloring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdlsp_coloring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
