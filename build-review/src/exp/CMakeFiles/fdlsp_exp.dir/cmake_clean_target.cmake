file(REMOVE_RECURSE
  "libfdlsp_exp.a"
)
