file(REMOVE_RECURSE
  "CMakeFiles/fdlsp_exp.dir/report.cpp.o"
  "CMakeFiles/fdlsp_exp.dir/report.cpp.o.d"
  "CMakeFiles/fdlsp_exp.dir/runner.cpp.o"
  "CMakeFiles/fdlsp_exp.dir/runner.cpp.o.d"
  "CMakeFiles/fdlsp_exp.dir/workloads.cpp.o"
  "CMakeFiles/fdlsp_exp.dir/workloads.cpp.o.d"
  "libfdlsp_exp.a"
  "libfdlsp_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdlsp_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
