
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exp/report.cpp" "src/exp/CMakeFiles/fdlsp_exp.dir/report.cpp.o" "gcc" "src/exp/CMakeFiles/fdlsp_exp.dir/report.cpp.o.d"
  "/root/repo/src/exp/runner.cpp" "src/exp/CMakeFiles/fdlsp_exp.dir/runner.cpp.o" "gcc" "src/exp/CMakeFiles/fdlsp_exp.dir/runner.cpp.o.d"
  "/root/repo/src/exp/workloads.cpp" "src/exp/CMakeFiles/fdlsp_exp.dir/workloads.cpp.o" "gcc" "src/exp/CMakeFiles/fdlsp_exp.dir/workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/algos/CMakeFiles/fdlsp_algos.dir/DependInfo.cmake"
  "/root/repo/build-review/src/coloring/CMakeFiles/fdlsp_coloring.dir/DependInfo.cmake"
  "/root/repo/build-review/src/graph/CMakeFiles/fdlsp_graph.dir/DependInfo.cmake"
  "/root/repo/build-review/src/support/CMakeFiles/fdlsp_support.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/fdlsp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
