# Empty dependencies file for fdlsp_exp.
# This may be replaced when dependencies are built.
