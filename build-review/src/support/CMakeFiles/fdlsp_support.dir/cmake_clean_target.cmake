file(REMOVE_RECURSE
  "libfdlsp_support.a"
)
