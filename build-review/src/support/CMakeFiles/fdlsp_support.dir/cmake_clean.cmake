file(REMOVE_RECURSE
  "CMakeFiles/fdlsp_support.dir/cli.cpp.o"
  "CMakeFiles/fdlsp_support.dir/cli.cpp.o.d"
  "CMakeFiles/fdlsp_support.dir/table.cpp.o"
  "CMakeFiles/fdlsp_support.dir/table.cpp.o.d"
  "CMakeFiles/fdlsp_support.dir/thread_pool.cpp.o"
  "CMakeFiles/fdlsp_support.dir/thread_pool.cpp.o.d"
  "libfdlsp_support.a"
  "libfdlsp_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdlsp_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
