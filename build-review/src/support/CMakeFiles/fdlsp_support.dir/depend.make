# Empty dependencies file for fdlsp_support.
# This may be replaced when dependencies are built.
