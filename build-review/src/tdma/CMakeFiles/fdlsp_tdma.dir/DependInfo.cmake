
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tdma/convergecast.cpp" "src/tdma/CMakeFiles/fdlsp_tdma.dir/convergecast.cpp.o" "gcc" "src/tdma/CMakeFiles/fdlsp_tdma.dir/convergecast.cpp.o.d"
  "/root/repo/src/tdma/energy.cpp" "src/tdma/CMakeFiles/fdlsp_tdma.dir/energy.cpp.o" "gcc" "src/tdma/CMakeFiles/fdlsp_tdma.dir/energy.cpp.o.d"
  "/root/repo/src/tdma/radio_sim.cpp" "src/tdma/CMakeFiles/fdlsp_tdma.dir/radio_sim.cpp.o" "gcc" "src/tdma/CMakeFiles/fdlsp_tdma.dir/radio_sim.cpp.o.d"
  "/root/repo/src/tdma/schedule.cpp" "src/tdma/CMakeFiles/fdlsp_tdma.dir/schedule.cpp.o" "gcc" "src/tdma/CMakeFiles/fdlsp_tdma.dir/schedule.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/coloring/CMakeFiles/fdlsp_coloring.dir/DependInfo.cmake"
  "/root/repo/build-review/src/graph/CMakeFiles/fdlsp_graph.dir/DependInfo.cmake"
  "/root/repo/build-review/src/support/CMakeFiles/fdlsp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
