file(REMOVE_RECURSE
  "CMakeFiles/fdlsp_tdma.dir/convergecast.cpp.o"
  "CMakeFiles/fdlsp_tdma.dir/convergecast.cpp.o.d"
  "CMakeFiles/fdlsp_tdma.dir/energy.cpp.o"
  "CMakeFiles/fdlsp_tdma.dir/energy.cpp.o.d"
  "CMakeFiles/fdlsp_tdma.dir/radio_sim.cpp.o"
  "CMakeFiles/fdlsp_tdma.dir/radio_sim.cpp.o.d"
  "CMakeFiles/fdlsp_tdma.dir/schedule.cpp.o"
  "CMakeFiles/fdlsp_tdma.dir/schedule.cpp.o.d"
  "libfdlsp_tdma.a"
  "libfdlsp_tdma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdlsp_tdma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
