# Empty dependencies file for fdlsp_tdma.
# This may be replaced when dependencies are built.
