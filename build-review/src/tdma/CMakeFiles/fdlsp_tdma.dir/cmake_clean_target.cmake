file(REMOVE_RECURSE
  "libfdlsp_tdma.a"
)
