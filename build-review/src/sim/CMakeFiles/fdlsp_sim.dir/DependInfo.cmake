
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/async_engine.cpp" "src/sim/CMakeFiles/fdlsp_sim.dir/async_engine.cpp.o" "gcc" "src/sim/CMakeFiles/fdlsp_sim.dir/async_engine.cpp.o.d"
  "/root/repo/src/sim/delay.cpp" "src/sim/CMakeFiles/fdlsp_sim.dir/delay.cpp.o" "gcc" "src/sim/CMakeFiles/fdlsp_sim.dir/delay.cpp.o.d"
  "/root/repo/src/sim/fault.cpp" "src/sim/CMakeFiles/fdlsp_sim.dir/fault.cpp.o" "gcc" "src/sim/CMakeFiles/fdlsp_sim.dir/fault.cpp.o.d"
  "/root/repo/src/sim/reliable.cpp" "src/sim/CMakeFiles/fdlsp_sim.dir/reliable.cpp.o" "gcc" "src/sim/CMakeFiles/fdlsp_sim.dir/reliable.cpp.o.d"
  "/root/repo/src/sim/sync_engine.cpp" "src/sim/CMakeFiles/fdlsp_sim.dir/sync_engine.cpp.o" "gcc" "src/sim/CMakeFiles/fdlsp_sim.dir/sync_engine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/graph/CMakeFiles/fdlsp_graph.dir/DependInfo.cmake"
  "/root/repo/build-review/src/support/CMakeFiles/fdlsp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
