# Empty compiler generated dependencies file for fdlsp_sim.
# This may be replaced when dependencies are built.
