file(REMOVE_RECURSE
  "CMakeFiles/fdlsp_sim.dir/async_engine.cpp.o"
  "CMakeFiles/fdlsp_sim.dir/async_engine.cpp.o.d"
  "CMakeFiles/fdlsp_sim.dir/delay.cpp.o"
  "CMakeFiles/fdlsp_sim.dir/delay.cpp.o.d"
  "CMakeFiles/fdlsp_sim.dir/fault.cpp.o"
  "CMakeFiles/fdlsp_sim.dir/fault.cpp.o.d"
  "CMakeFiles/fdlsp_sim.dir/reliable.cpp.o"
  "CMakeFiles/fdlsp_sim.dir/reliable.cpp.o.d"
  "CMakeFiles/fdlsp_sim.dir/sync_engine.cpp.o"
  "CMakeFiles/fdlsp_sim.dir/sync_engine.cpp.o.d"
  "libfdlsp_sim.a"
  "libfdlsp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdlsp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
