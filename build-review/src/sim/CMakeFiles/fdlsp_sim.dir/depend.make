# Empty dependencies file for fdlsp_sim.
# This may be replaced when dependencies are built.
