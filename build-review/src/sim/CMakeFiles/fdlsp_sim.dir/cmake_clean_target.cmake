file(REMOVE_RECURSE
  "libfdlsp_sim.a"
)
