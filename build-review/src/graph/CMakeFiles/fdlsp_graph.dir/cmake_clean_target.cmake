file(REMOVE_RECURSE
  "libfdlsp_graph.a"
)
