# Empty dependencies file for fdlsp_graph.
# This may be replaced when dependencies are built.
