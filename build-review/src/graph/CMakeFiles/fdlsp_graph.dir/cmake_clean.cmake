file(REMOVE_RECURSE
  "CMakeFiles/fdlsp_graph.dir/algorithms.cpp.o"
  "CMakeFiles/fdlsp_graph.dir/algorithms.cpp.o.d"
  "CMakeFiles/fdlsp_graph.dir/cliques.cpp.o"
  "CMakeFiles/fdlsp_graph.dir/cliques.cpp.o.d"
  "CMakeFiles/fdlsp_graph.dir/generators.cpp.o"
  "CMakeFiles/fdlsp_graph.dir/generators.cpp.o.d"
  "CMakeFiles/fdlsp_graph.dir/graph.cpp.o"
  "CMakeFiles/fdlsp_graph.dir/graph.cpp.o.d"
  "libfdlsp_graph.a"
  "libfdlsp_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdlsp_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
