# Empty dependencies file for family_property_test.
# This may be replaced when dependencies are built.
