file(REMOVE_RECURSE
  "CMakeFiles/family_property_test.dir/family_property_test.cpp.o"
  "CMakeFiles/family_property_test.dir/family_property_test.cpp.o.d"
  "family_property_test"
  "family_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/family_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
