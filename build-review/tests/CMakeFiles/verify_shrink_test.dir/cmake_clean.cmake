file(REMOVE_RECURSE
  "CMakeFiles/verify_shrink_test.dir/verify_shrink_test.cpp.o"
  "CMakeFiles/verify_shrink_test.dir/verify_shrink_test.cpp.o.d"
  "verify_shrink_test"
  "verify_shrink_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verify_shrink_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
