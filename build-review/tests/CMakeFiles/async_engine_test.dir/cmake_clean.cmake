file(REMOVE_RECURSE
  "CMakeFiles/async_engine_test.dir/async_engine_test.cpp.o"
  "CMakeFiles/async_engine_test.dir/async_engine_test.cpp.o.d"
  "async_engine_test"
  "async_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/async_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
