# Empty dependencies file for async_engine_test.
# This may be replaced when dependencies are built.
