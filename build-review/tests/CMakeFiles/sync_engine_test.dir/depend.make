# Empty dependencies file for sync_engine_test.
# This may be replaced when dependencies are built.
