file(REMOVE_RECURSE
  "CMakeFiles/sync_engine_test.dir/sync_engine_test.cpp.o"
  "CMakeFiles/sync_engine_test.dir/sync_engine_test.cpp.o.d"
  "sync_engine_test"
  "sync_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sync_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
