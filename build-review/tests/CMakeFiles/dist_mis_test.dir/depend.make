# Empty dependencies file for dist_mis_test.
# This may be replaced when dependencies are built.
