file(REMOVE_RECURSE
  "CMakeFiles/dist_mis_test.dir/dist_mis_test.cpp.o"
  "CMakeFiles/dist_mis_test.dir/dist_mis_test.cpp.o.d"
  "dist_mis_test"
  "dist_mis_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dist_mis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
