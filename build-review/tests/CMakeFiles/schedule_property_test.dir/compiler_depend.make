# Empty compiler generated dependencies file for schedule_property_test.
# This may be replaced when dependencies are built.
