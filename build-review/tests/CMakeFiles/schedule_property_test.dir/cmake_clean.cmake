file(REMOVE_RECURSE
  "CMakeFiles/schedule_property_test.dir/schedule_property_test.cpp.o"
  "CMakeFiles/schedule_property_test.dir/schedule_property_test.cpp.o.d"
  "schedule_property_test"
  "schedule_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schedule_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
