# Empty compiler generated dependencies file for dist_repair_test.
# This may be replaced when dependencies are built.
