file(REMOVE_RECURSE
  "CMakeFiles/dist_repair_test.dir/dist_repair_test.cpp.o"
  "CMakeFiles/dist_repair_test.dir/dist_repair_test.cpp.o.d"
  "dist_repair_test"
  "dist_repair_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dist_repair_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
