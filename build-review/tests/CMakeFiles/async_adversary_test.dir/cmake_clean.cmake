file(REMOVE_RECURSE
  "CMakeFiles/async_adversary_test.dir/async_adversary_test.cpp.o"
  "CMakeFiles/async_adversary_test.dir/async_adversary_test.cpp.o.d"
  "async_adversary_test"
  "async_adversary_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/async_adversary_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
