# Empty dependencies file for async_adversary_test.
# This may be replaced when dependencies are built.
