# Empty compiler generated dependencies file for engine_parallel_test.
# This may be replaced when dependencies are built.
