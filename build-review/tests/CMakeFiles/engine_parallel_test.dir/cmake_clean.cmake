file(REMOVE_RECURSE
  "CMakeFiles/engine_parallel_test.dir/engine_parallel_test.cpp.o"
  "CMakeFiles/engine_parallel_test.dir/engine_parallel_test.cpp.o.d"
  "engine_parallel_test"
  "engine_parallel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_parallel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
