file(REMOVE_RECURSE
  "CMakeFiles/misra_gries_test.dir/misra_gries_test.cpp.o"
  "CMakeFiles/misra_gries_test.dir/misra_gries_test.cpp.o.d"
  "misra_gries_test"
  "misra_gries_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/misra_gries_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
