file(REMOVE_RECURSE
  "CMakeFiles/cliques_test.dir/cliques_test.cpp.o"
  "CMakeFiles/cliques_test.dir/cliques_test.cpp.o.d"
  "cliques_test"
  "cliques_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cliques_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
