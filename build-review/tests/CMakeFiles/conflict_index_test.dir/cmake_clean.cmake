file(REMOVE_RECURSE
  "CMakeFiles/conflict_index_test.dir/conflict_index_test.cpp.o"
  "CMakeFiles/conflict_index_test.dir/conflict_index_test.cpp.o.d"
  "conflict_index_test"
  "conflict_index_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conflict_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
