# Empty compiler generated dependencies file for conflict_index_test.
# This may be replaced when dependencies are built.
