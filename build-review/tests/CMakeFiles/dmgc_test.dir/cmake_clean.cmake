file(REMOVE_RECURSE
  "CMakeFiles/dmgc_test.dir/dmgc_test.cpp.o"
  "CMakeFiles/dmgc_test.dir/dmgc_test.cpp.o.d"
  "dmgc_test"
  "dmgc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmgc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
