# Empty compiler generated dependencies file for dmgc_test.
# This may be replaced when dependencies are built.
