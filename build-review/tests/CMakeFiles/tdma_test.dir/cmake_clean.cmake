file(REMOVE_RECURSE
  "CMakeFiles/tdma_test.dir/tdma_test.cpp.o"
  "CMakeFiles/tdma_test.dir/tdma_test.cpp.o.d"
  "tdma_test"
  "tdma_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdma_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
