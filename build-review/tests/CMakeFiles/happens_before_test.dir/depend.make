# Empty dependencies file for happens_before_test.
# This may be replaced when dependencies are built.
