file(REMOVE_RECURSE
  "CMakeFiles/happens_before_test.dir/happens_before_test.cpp.o"
  "CMakeFiles/happens_before_test.dir/happens_before_test.cpp.o.d"
  "happens_before_test"
  "happens_before_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/happens_before_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
