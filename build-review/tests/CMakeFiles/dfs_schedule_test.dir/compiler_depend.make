# Empty compiler generated dependencies file for dfs_schedule_test.
# This may be replaced when dependencies are built.
