file(REMOVE_RECURSE
  "CMakeFiles/dfs_schedule_test.dir/dfs_schedule_test.cpp.o"
  "CMakeFiles/dfs_schedule_test.dir/dfs_schedule_test.cpp.o.d"
  "dfs_schedule_test"
  "dfs_schedule_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfs_schedule_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
