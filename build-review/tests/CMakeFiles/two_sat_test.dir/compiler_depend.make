# Empty compiler generated dependencies file for two_sat_test.
# This may be replaced when dependencies are built.
