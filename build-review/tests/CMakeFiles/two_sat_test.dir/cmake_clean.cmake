file(REMOVE_RECURSE
  "CMakeFiles/two_sat_test.dir/two_sat_test.cpp.o"
  "CMakeFiles/two_sat_test.dir/two_sat_test.cpp.o.d"
  "two_sat_test"
  "two_sat_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/two_sat_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
