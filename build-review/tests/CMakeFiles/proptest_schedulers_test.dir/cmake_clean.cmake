file(REMOVE_RECURSE
  "CMakeFiles/proptest_schedulers_test.dir/proptest_schedulers_test.cpp.o"
  "CMakeFiles/proptest_schedulers_test.dir/proptest_schedulers_test.cpp.o.d"
  "proptest_schedulers_test"
  "proptest_schedulers_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proptest_schedulers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
