file(REMOVE_RECURSE
  "CMakeFiles/reliable_channel_test.dir/reliable_channel_test.cpp.o"
  "CMakeFiles/reliable_channel_test.dir/reliable_channel_test.cpp.o.d"
  "reliable_channel_test"
  "reliable_channel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reliable_channel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
