# Empty dependencies file for reliable_channel_test.
# This may be replaced when dependencies are built.
