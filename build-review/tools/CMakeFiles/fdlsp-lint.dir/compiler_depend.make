# Empty compiler generated dependencies file for fdlsp-lint.
# This may be replaced when dependencies are built.
