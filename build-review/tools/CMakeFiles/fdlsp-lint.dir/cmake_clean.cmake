file(REMOVE_RECURSE
  "CMakeFiles/fdlsp-lint.dir/fdlsp-lint/main.cpp.o"
  "CMakeFiles/fdlsp-lint.dir/fdlsp-lint/main.cpp.o.d"
  "fdlsp-lint"
  "fdlsp-lint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdlsp-lint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
