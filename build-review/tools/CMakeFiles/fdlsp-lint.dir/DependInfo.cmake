
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/fdlsp-lint/main.cpp" "tools/CMakeFiles/fdlsp-lint.dir/fdlsp-lint/main.cpp.o" "gcc" "tools/CMakeFiles/fdlsp-lint.dir/fdlsp-lint/main.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/analysis/CMakeFiles/fdlsp_analysis.dir/DependInfo.cmake"
  "/root/repo/build-review/src/support/CMakeFiles/fdlsp_support.dir/DependInfo.cmake"
  "/root/repo/build-review/src/graph/CMakeFiles/fdlsp_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
