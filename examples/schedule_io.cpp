// Toolchain example: generate a field, schedule it, persist both graph and
// schedule to text files, reload them, validate, and export Graphviz —
// the round trip a deployment pipeline performs between the scheduler and
// the sensors' configuration images.
//
//   ./schedule_io [--nodes=N] [--out=DIR] [--seed=K]
#include <fstream>
#include <iostream>

#include "algos/scheduler.h"
#include "coloring/checker.h"
#include "graph/algorithms.h"
#include "graph/arcs.h"
#include "graph/generators.h"
#include "io/io.h"
#include "support/cli.h"
#include "support/rng.h"

int main(int argc, char** argv) {
  using namespace fdlsp;
  const CliArgs args(argc, argv);
  const auto nodes = static_cast<std::size_t>(args.get_int("nodes", 40));
  const std::string dir = args.get("out", "/tmp");
  Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 13)));

  const GeometricGraph field = generate_udg(nodes, 4.0, 1.0, rng);
  const auto nodes_kept = largest_component(field.graph);
  const InducedSubgraph sub = induced_subgraph(field.graph, nodes_kept);
  std::vector<Point> positions;
  for (NodeId v : sub.to_original) positions.push_back(field.positions[v]);

  const ScheduleResult result =
      run_scheduler(SchedulerKind::kDistMisGbg, sub.graph, 99);

  const std::string graph_path = dir + "/field.graph";
  const std::string schedule_path = dir + "/field.schedule";
  const std::string dot_path = dir + "/field.dot";
  save_graph_file(graph_path, sub.graph, &positions);
  save_schedule_file(schedule_path, result.coloring);
  {
    std::ofstream dot(dot_path);
    write_dot(dot, sub.graph, &result.coloring);
  }
  std::cout << "wrote " << graph_path << ", " << schedule_path << ", "
            << dot_path << '\n';

  // Reload and validate — what a sensor's boot loader would do.
  const GeometricGraph reloaded = load_graph_file(graph_path);
  const ArcColoring schedule = load_schedule_file(schedule_path);
  const bool ok =
      is_feasible_schedule(ArcView(reloaded.graph), schedule);
  std::cout << "reloaded " << reloaded.graph.num_nodes() << " nodes, "
            << reloaded.graph.num_edges() << " links, "
            << schedule.num_colors_used() << " slots — "
            << (ok ? "schedule valid" : "SCHEDULE INVALID") << '\n';
  return ok ? 0 : 1;
}
