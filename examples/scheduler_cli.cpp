// fdlsp command-line tool: schedule / validate / inspect graphs from files.
//
//   ./scheduler_cli --cmd=schedule --in=field.graph --out=field.schedule
//                   [--algo=distmis|distmis-gen|dfs|dmgc|greedy|randomized]
//   ./scheduler_cli --cmd=validate --in=field.graph --schedule=field.schedule
//   ./scheduler_cli --cmd=bounds   --in=field.graph
//   ./scheduler_cli --cmd=gen --nodes=N --side=S --radius=R --out=field.graph
#include <iostream>
#include <string>

#include "algos/scheduler.h"
#include "coloring/bounds.h"
#include "coloring/checker.h"
#include "exp/workloads.h"
#include "graph/arcs.h"
#include "graph/generators.h"
#include "io/io.h"
#include "support/check.h"
#include "support/cli.h"
#include "support/rng.h"

namespace {

fdlsp::SchedulerKind parse_algo(const std::string& name) {
  using fdlsp::SchedulerKind;
  if (name == "distmis") return SchedulerKind::kDistMisGbg;
  if (name == "distmis-gen") return SchedulerKind::kDistMisGeneral;
  if (name == "dfs") return SchedulerKind::kDfs;
  if (name == "dmgc") return SchedulerKind::kDmgc;
  if (name == "greedy") return SchedulerKind::kGreedy;
  if (name == "randomized") return SchedulerKind::kRandomized;
  FDLSP_REQUIRE(false, "unknown --algo");
  return SchedulerKind::kGreedy;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fdlsp;
  try {
    const CliArgs args(argc, argv);
    const std::string cmd = args.get("cmd", "");

    if (cmd == "gen") {
      Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 1)));
      const auto nodes = static_cast<std::size_t>(args.get_int("nodes", 100));
      const GeometricGraph field =
          generate_udg(nodes, args.get_double("side", 7.5),
                       args.get_double("radius", 0.5), rng);
      save_graph_file(args.get("out", "field.graph"), field.graph,
                      &field.positions);
      std::cout << "generated " << field.graph.num_nodes() << " nodes, "
                << field.graph.num_edges() << " links\n";
      return 0;
    }

    if (cmd == "schedule") {
      const GeometricGraph field = load_graph_file(args.get("in", ""));
      const SchedulerKind kind = parse_algo(args.get("algo", "distmis"));
      const ScheduleResult result = run_scheduler_on_components(
          kind, field.graph,
          static_cast<std::uint64_t>(args.get_int("seed", 1)));
      save_schedule_file(args.get("out", "field.schedule"), result.coloring);
      std::cout << scheduler_name(kind) << ": " << result.num_slots
                << " slots";
      if (result.rounds) std::cout << ", " << result.rounds << " rounds";
      if (result.messages) std::cout << ", " << result.messages << " messages";
      std::cout << '\n';
      return 0;
    }

    if (cmd == "validate") {
      const GeometricGraph field = load_graph_file(args.get("in", ""));
      const ArcColoring schedule =
          load_schedule_file(args.get("schedule", ""));
      const bool ok = is_feasible_schedule(ArcView(field.graph), schedule);
      std::cout << (ok ? "VALID" : "INVALID") << ": "
                << schedule.num_colors_used() << " slots over "
                << field.graph.num_edges() << " links\n";
      return ok ? 0 : 1;
    }

    if (cmd == "bounds") {
      const GeometricGraph field = load_graph_file(args.get("in", ""));
      std::cout << "nodes " << field.graph.num_nodes() << ", links "
                << field.graph.num_edges() << ", max degree "
                << field.graph.max_degree() << '\n'
                << "lower bound (Theorem 1): "
                << lower_bound_theorem1(field.graph) << '\n'
                << "upper bound (2*Delta^2): "
                << upper_bound_colors(field.graph) << '\n';
      return 0;
    }

    std::cerr << "usage: --cmd=gen|schedule|validate|bounds (see header)\n";
    return 2;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << '\n';
    return 2;
  }
}
