// Replays one fuzzer scenario from the repro command the verification
// harness prints with every failure, e.g.
//
//   ./replay --family=gnm --n=12 --density=0.40 --seed=77 --scheduler=DFS
//
// The flags are exactly the repro_command() format (verify/scenario.h), so a
// failure line can be pasted verbatim after the binary name. The tool
// materializes the scenario, runs the scheduler, reruns the full oracle
// battery (shrinking any failure to a minimal witness), and prints the
// happens-before verdict from a traced rerun under the vector-clock checker.
//
// Fault repros add the fault grammar fault_repro_command() prints
// (verify/fault_oracles.h):
//
//   ./replay --family=ring --n=8 --seed=3 --scheduler=DFS
//       --faults=drop=0.10,crash=0.25 [--reliable=0]
//
// With --faults= the tool runs the faulted scheduler (hardened with the
// ack/retransmit wrapper unless --reliable=0), prints the injected fault
// counters, and judges the run with the fault-quiescence oracle — plus the
// crash-recovery oracle when the plan arms crashes or link churn.
//
// Soak repros replay a whole churn stream under the long-horizon oracles
// (verify/soak_oracles.h):
//
//   ./replay --soak=seed=7,n=200,events=5000 [--soak-band=1.2]
//       [--distributed=1] [--faults=drop=0.1,...] [--reliable=0]
//
// The spec string is exactly what soak_repro_command() prints; on a failure
// the tool shrinks the stream and prints the minimized repro line.
//
// Either mode accepts --shards=N to replay on the sharded engine path
// (AsyncEngine::set_shards for DFS fault repros, SyncEngine::set_shards for
// the synchronizer-based schedulers and distributed soak repairs). Sharding
// is byte-identical to serial for every count, so a repro line replays the
// same verdict with the flag added or removed; the flag is echoed in the
// printed repro lines so a sharded replay stays a one-line paste.
#include <cstdint>
#include <iostream>
#include <string>

#include "algos/scheduler.h"
#include "exp/workloads.h"
#include "graph/graph.h"
#include "sim/fault.h"
#include "support/check.h"
#include "support/cli.h"
#include "verify/causality.h"
#include "verify/differential.h"
#include "verify/fault_oracles.h"
#include "verify/oracles.h"
#include "verify/scenario.h"
#include "verify/soak_oracles.h"

namespace {

/// Parses the scheduler-name spelling repro commands use (scheduler_name()),
/// accepting the scheduler_cli lowercase aliases as a convenience.
fdlsp::SchedulerKind parse_scheduler(const std::string& name) {
  using fdlsp::SchedulerKind;
  for (const SchedulerKind kind :
       {SchedulerKind::kDistMisGbg, SchedulerKind::kDistMisGeneral,
        SchedulerKind::kDfs, SchedulerKind::kDmgc, SchedulerKind::kGreedy,
        SchedulerKind::kRandomized}) {
    if (name == fdlsp::scheduler_name(kind)) return kind;
  }
  if (name == "distmis") return SchedulerKind::kDistMisGbg;
  if (name == "distmis-gen") return SchedulerKind::kDistMisGeneral;
  if (name == "dfs") return SchedulerKind::kDfs;
  if (name == "dmgc") return SchedulerKind::kDmgc;
  FDLSP_REQUIRE(false, "unknown --scheduler: " + name);
  return SchedulerKind::kGreedy;
}

fdlsp::GraphFamily parse_family(const std::string& name) {
  using fdlsp::GraphFamily;
  for (const GraphFamily family : fdlsp::kAllFamilies)
    if (name == fdlsp::family_name(family)) return family;
  FDLSP_REQUIRE(false, "unknown --family: " + name);
  return GraphFamily::kGnm;
}

/// Replays a soak stream under the full oracle battery, shrinking any
/// failure back down to a printable repro line.
int run_soak_replay(const fdlsp::CliArgs& args) {
  using namespace fdlsp;
  const SoakSpec spec = parse_soak_spec(args.get("soak", "default"));

  SoakOptions driver_options;
  FaultSpec faults;
  const bool reliable = args.get_int("reliable", 1) != 0;
  if (args.has("faults")) {
    faults = parse_fault_spec(args.get("faults", "none"));
    driver_options.faults = &faults;
    driver_options.reliable = reliable;
    driver_options.distributed = true;  // fault plans act on the radio
  }
  if (args.get_int("distributed", 0) != 0) driver_options.distributed = true;
  // Replays the stream's distributed repairs on the sharded engine path
  // (byte-identical to serial for any count, so the verdict is unchanged).
  const std::size_t shards =
      static_cast<std::size_t>(args.get_int("shards", 0));
  driver_options.shards = shards;

  SoakOracleOptions oracle_options;
  oracle_options.drift_band = args.get_double("soak-band", 0.0);

  const std::string shards_flag =
      shards > 0 ? " --shards=" + std::to_string(shards) : "";
  std::cout << "soak: " << soak_repro_command(spec, &oracle_options)
            << shards_flag
            << (driver_options.distributed ? " (distributed engine)" : "")
            << "\n";
  if (driver_options.faults != nullptr)
    std::cout << "faults: " << format_fault_spec(faults)
              << (reliable ? " (reliable wrapper on)"
                           : " (reliable wrapper OFF)")
              << "\n";

  const SoakVerdict verdict =
      run_soak_with_oracles(spec, driver_options, oracle_options);
  const SoakStats& stats = verdict.stats;
  std::cout << "events: " << stats.events << " (" << stats.repairs
            << " repairs, " << stats.recomputes << " recomputes, "
            << stats.fallbacks << " fallbacks, " << stats.noop_events
            << " no-ops)\n"
            << "recolored: " << stats.total_recolored << " arcs total, max "
            << stats.max_recolored << " in one event\n"
            << "slots: peak " << stats.max_slots << "\n"
            << "latency: p50 " << soak_percentile(stats.event_micros, 50.0)
            << " us, p99 " << soak_percentile(stats.event_micros, 99.0)
            << " us\n";

  if (verdict.ok) {
    std::cout << "soak oracles: ok (feasibility, locality, drift)\n";
    return 0;
  }
  std::cout << "soak oracles: FAIL at event " << verdict.failing_event
            << " — " << verdict.failure << "\n";

  const SoakFailingPredicate still_fails = [&](const SoakSpec& candidate) {
    return !run_soak_with_oracles(candidate, driver_options, oracle_options)
                .ok;
  };
  const SoakShrinkOutcome shrunk = shrink_soak_case(spec, still_fails);
  std::cout << "shrunk in " << shrunk.checks << " checks\n"
            << "repro: "
            << (driver_options.faults != nullptr
                    ? soak_repro_command(shrunk.spec, faults, reliable,
                                         &oracle_options)
                    : soak_repro_command(shrunk.spec, &oracle_options))
            << shards_flag << "\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fdlsp;
  try {
    const CliArgs args(argc, argv);
    if (args.has("soak") && !args.has("help")) return run_soak_replay(args);
    if (args.has("help") || !args.has("scheduler")) {
      std::cout << "usage: replay --family=udg|gnm|tree|grid|ring|star --n=N "
                   "--density=D --seed=S --scheduler=NAME\n"
                   "       [--faults=drop=0.1,bp=0.05,crash=0.25,... |"
                   " --faults=none] [--reliable=0|1]\n"
                   "       [--tuning=adaptive|fixed] [--prr-trace=FILE]"
                   " [--shards=N]\n"
                   "   or: replay --soak=SPEC [--soak-band=B]"
                   " [--distributed=1] [--faults=...] [--reliable=0]"
                   " [--shards=N]\n"
                   "Paste the repro line a failing property test prints.\n"
                   "--prr-trace loads packet-reception ratios from a "
                   "measurement file into the fault plan's PRR matrix.\n";
      return args.has("help") ? 0 : 2;
    }

    Scenario scenario;
    scenario.family = parse_family(args.get("family", "gnm"));
    scenario.n = static_cast<std::size_t>(args.get_int("n", 8));
    scenario.density = args.get_double("density", 0.5);
    scenario.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    const SchedulerKind kind = parse_scheduler(args.get("scheduler", ""));

    const Graph graph = materialize(scenario);
    std::cout << "scenario: " << repro_command(scenario, kind) << "\n"
              << "graph: " << graph.num_nodes() << " nodes, "
              << graph.num_edges() << " edges\n";

    if (args.has("faults")) {
      FaultSpec spec = parse_fault_spec(args.get("faults", "none"));
      if (args.has("prr-trace"))
        spec.prr_levels = load_prr_levels(args.get("prr-trace", ""));
      const bool reliable = args.get_int("reliable", 1) != 0;
      const std::string tuning_name = args.get("tuning", "adaptive");
      FDLSP_REQUIRE(tuning_name == "adaptive" || tuning_name == "fixed",
                    "unknown --tuning: " + tuning_name);
      const TransportTuning tuning = tuning_name == "fixed"
                                         ? TransportTuning::kFixed
                                         : TransportTuning::kAdaptive;
      // Replays on the sharded engine path (async for DFS, synchronous for
      // the synchronizer-based schedulers) — byte-identical to serial for
      // any count, so the verdict below is unchanged.
      const std::size_t shards =
          static_cast<std::size_t>(args.get_int("shards", 0));
      std::cout << "faults: " << format_fault_spec(spec)
                << (reliable ? " (reliable wrapper on, " + tuning_name +
                                   " transport)"
                             : " (reliable wrapper OFF)")
                << "\n"
                << "repro: "
                << fault_repro_command(scenario, scheduler_name(kind), spec)
                << (reliable ? "" : " --reliable=0")
                << (shards > 0 ? " --shards=" + std::to_string(shards) : "")
                << "\n";

      const ScheduleResult faulted =
          run_scheduler_faulted(kind, graph, scenario.seed, spec, reliable,
                                tuning, nullptr, shards);
      std::cout << scheduler_name(kind) << ": " << faulted.num_slots
                << " slots, " << faulted.rounds << " rounds, "
                << faulted.messages << " messages, "
                << (faulted.completed ? "quiescent" : "STALLED") << "\n"
                << "injected: " << faulted.faults.dropped << " dropped, "
                << faulted.faults.duplicated << " duplicated, "
                << faulted.faults.corrupted << " corrupted, "
                << faulted.faults.burst_dropped << " burst drops, "
                << faulted.faults.prr_dropped << " PRR drops, "
                << faulted.faults.region_drops << " region drops, "
                << faulted.faults.link_down_drops << " churn drops, "
                << faulted.faults.crash_drops << " crash drops\n";
      if (reliable) {
        std::cout << "transport: " << faulted.transport.retransmits
                  << " retransmits, " << faulted.transport.probes
                  << " probes, " << faulted.transport.suspicions
                  << " suspicions, " << faulted.transport.retrusts
                  << " re-trusts, " << faulted.transport.abandoned
                  << " abandoned, max backoff "
                  << faulted.transport.max_backoff << "\n";
        if (!faulted.suspected.empty()) {
          std::cout << "suspected peers:";
          for (const NodeId v : faulted.suspected) std::cout << " " << v;
          std::cout << "\n";
        }
      }
      if (!faulted.stall_diagnosis.empty())
        std::cout << "stall diagnosis: " << faulted.stall_diagnosis << "\n";

      // The hardened run is held to the scoped fault guarantee; an
      // unwrapped run is checked strictly, so replaying a shrunk failing
      // case surfaces its violation verbatim.
      const OracleVerdict verdict =
          check_fault_result(graph, faulted, reliable ? &spec : nullptr);
      bool ok = verdict.ok;
      if (!verdict.ok)
        std::cout << "fault-quiescence: FAIL — " << verdict.failure << "\n";
      else
        std::cout << "fault-quiescence: ok\n";

      if (reliable && spec.correlated()) {
        const OracleVerdict burst =
            check_burst_quiescence(kind, graph, scenario.seed, spec);
        if (!burst.ok) {
          std::cout << "burst-quiescence: FAIL — " << burst.failure << "\n";
          ok = false;
        } else {
          std::cout << "burst-quiescence: ok\n";
        }
        const OracleVerdict detector =
            check_detector(kind, graph, scenario.seed, spec);
        if (!detector.ok) {
          std::cout << "detector: FAIL — " << detector.failure << "\n";
          ok = false;
        } else {
          std::cout << "detector: ok\n";
        }
      }

      if (spec.crash_fraction > 0.0 || spec.link_down_fraction > 0.0) {
        const CrashRecoveryReport recovery =
            check_crash_recovery(kind, graph, scenario.seed, spec);
        if (!recovery.ok) {
          std::cout << "crash-recovery: FAIL — " << recovery.failure << "\n";
          ok = false;
        } else {
          std::cout << "crash-recovery: ok (" << recovery.orphaned_arcs
                    << " arcs orphaned, " << recovery.changed_arcs
                    << " recolored in " << recovery.repair_rounds
                    << " rounds)\n";
        }
      }
      return ok ? 0 : 1;
    }

    const ScheduleResult result =
        run_scheduler_on_components(kind, graph, scenario.seed);
    std::cout << scheduler_name(kind) << ": " << result.num_slots
              << " slots, " << result.rounds << " rounds, "
              << result.messages << " messages\n";

    std::cout << causality_report(kind, graph, scenario.seed) << "\n";

    // One direct battery run surfaces the wall time each oracle spends
    // (the battery amortizes a shared ConflictIndex across all of them).
    const ScheduleFn oracle_run = [kind](const Graph& g, std::uint64_t s) {
      return run_scheduler_on_components(kind, g, s);
    };
    const OracleVerdict verdict = check_oracles(
        oracle_run, graph, scenario.seed, oracle_options_for(kind));
    std::cout << "oracle wall time:\n";
    for (const OracleTiming& timing : verdict.timings)
      std::cout << "  " << timing.oracle << ": " << timing.millis << " ms\n";

    if (const auto failure = check_scenario(kind, scenario)) {
      std::cout << "oracle battery: FAIL\n" << to_string(*failure) << "\n";
      return 1;
    }
    std::cout << "oracle battery: ok (feasibility, bounds, approximation, "
                 "determinism, causality)\n";
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "replay: " << error.what() << "\n";
    return 2;
  }
}
