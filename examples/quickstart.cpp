// Quickstart: build a small sensor field, compute a full-duplex TDMA link
// schedule with the asynchronous DFS algorithm, print the frame, and verify
// it over the radio simulator.
//
//   ./quickstart [--nodes=N] [--side=S] [--radius=R] [--seed=K]
#include <iostream>

#include "algos/dfs_schedule.h"
#include "coloring/bounds.h"
#include "graph/algorithms.h"
#include "graph/arcs.h"
#include "graph/generators.h"
#include "support/cli.h"
#include "support/rng.h"
#include "tdma/radio_sim.h"
#include "tdma/schedule.h"

int main(int argc, char** argv) {
  using namespace fdlsp;
  const CliArgs args(argc, argv);
  const auto nodes = static_cast<std::size_t>(args.get_int("nodes", 20));
  const double side = args.get_double("side", 2.5);
  const double radius = args.get_double("radius", 1.0);
  Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 7)));

  // 1. Deploy a random field and keep its largest connected patch.
  const GeometricGraph field = generate_udg(nodes, side, radius, rng);
  const Graph graph =
      induced_subgraph(field.graph, largest_component(field.graph)).graph;
  std::cout << "deployed " << graph.num_nodes() << " connected sensors, "
            << graph.num_edges() << " links, max degree "
            << graph.max_degree() << "\n\n";

  // 2. Schedule every link in both directions with the DFS algorithm.
  const ScheduleResult result = run_dfs_schedule(graph);
  std::cout << "DFS schedule: " << result.num_slots << " slots per frame "
            << "(lower bound " << lower_bound_theorem1(graph)
            << ", upper bound " << upper_bound_colors(graph) << "), "
            << result.messages << " messages, completion time "
            << result.async_time << " units\n\n";

  // 3. Print the frame.
  const ArcView view(graph);
  const TdmaSchedule schedule(view, result.coloring);
  for (std::size_t s = 0; s < schedule.frame_length(); ++s) {
    std::cout << "slot " << s << ":";
    for (ArcId a : schedule.arcs_in_slot(s))
      std::cout << "  " << view.tail(a) << "->" << view.head(a);
    std::cout << '\n';
  }

  // 4. Verify physically: every scheduled transmission must be received
  //    without interference.
  const RadioReport report = replay_frame(schedule);
  std::cout << "\nradio replay: " << report.delivered << '/'
            << report.scheduled << " transmissions delivered, "
            << (report.collision_free() ? "collision-free"
                                        : "COLLISIONS DETECTED")
            << '\n';
  return report.collision_free() ? 0 : 1;
}
