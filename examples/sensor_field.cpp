// Sensor-field data gathering: schedule a 200-node field with DistMIS, then
// replay a convergecast epoch (every sensor reports once to the sink) over
// the TDMA frame, reporting latency, slot utilization, duty cycle and
// energy — the application-level payoff the paper's introduction motivates.
//
//   ./sensor_field [--nodes=N] [--side=S] [--radius=R] [--seed=K]
#include <iostream>

#include "algos/dist_mis.h"
#include "graph/algorithms.h"
#include "graph/arcs.h"
#include "graph/generators.h"
#include "support/cli.h"
#include "support/rng.h"
#include "support/table.h"
#include "tdma/convergecast.h"
#include "tdma/energy.h"
#include "tdma/radio_sim.h"
#include "tdma/schedule.h"

int main(int argc, char** argv) {
  using namespace fdlsp;
  const CliArgs args(argc, argv);
  const auto nodes = static_cast<std::size_t>(args.get_int("nodes", 200));
  const double side = args.get_double("side", 7.0);
  const double radius = args.get_double("radius", 1.0);
  Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 3)));

  const GeometricGraph field = generate_udg(nodes, side, radius, rng);
  const Graph graph =
      induced_subgraph(field.graph, largest_component(field.graph)).graph;
  std::cout << "field: " << graph.num_nodes() << " sensors, "
            << graph.num_edges() << " links, avg degree "
            << fmt_double(graph.average_degree(), 2) << "\n";

  // Distributed scheduling with the synchronous DistMIS algorithm.
  DistMisOptions options;
  options.variant = DistMisVariant::kGbg;
  options.seed = 17;
  const ScheduleResult result = run_dist_mis(graph, options);
  std::cout << "distMIS: " << result.num_slots << " slots/frame, computed in "
            << result.rounds << " communication rounds ("
            << result.messages << " messages)\n\n";

  const ArcView view(graph);
  const TdmaSchedule schedule(view, result.coloring);
  if (!replay_frame(schedule).collision_free()) {
    std::cout << "radio replay found collisions — schedule invalid!\n";
    return 1;
  }

  // Convergecast epoch to the sink (node 0 of the component).
  const ConvergecastReport traffic = run_convergecast(schedule, 0);
  std::cout << "convergecast epoch: " << traffic.packets_delivered
            << " reports delivered in " << traffic.frames << " frames ("
            << traffic.slots_elapsed << " slots, utilization "
            << fmt_double(100.0 * traffic.slot_utilization, 1) << "%)\n";

  // Energy and duty cycle.
  const EnergyReport energy = account_energy(schedule);
  std::cout << "duty cycle: mean "
            << fmt_double(100.0 * energy.mean_duty_cycle, 1) << "%, max "
            << fmt_double(100.0 * energy.max_duty_cycle, 1)
            << "%; frame energy " << fmt_double(energy.total_energy, 1)
            << " units across the field\n";
  std::cout << "(idle radios sleep: that asymmetry is why short frames "
               "translate to battery life)\n";
  return 0;
}
