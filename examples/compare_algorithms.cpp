// Compare every scheduler on a chosen topology: slots, rounds, messages,
// asynchronous time, against the Theorem-1 / 2Δ² bounds.
//
//   ./compare_algorithms --topology=udg|gnm|tree|grid|complete
//                        [--nodes=N] [--edges=M] [--side=S] [--seed=K]
#include <iostream>
#include <string>

#include "algos/scheduler.h"
#include "coloring/bounds.h"
#include "exp/workloads.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "support/cli.h"
#include "support/rng.h"
#include "support/table.h"

namespace {

fdlsp::Graph make_topology(const fdlsp::CliArgs& args, fdlsp::Rng& rng) {
  using namespace fdlsp;
  const std::string kind = args.get("topology", "udg");
  const auto nodes = static_cast<std::size_t>(args.get_int("nodes", 100));
  if (kind == "udg") {
    const double side = args.get_double("side", 5.0);
    const GeometricGraph geo = generate_udg(nodes, side, 1.0, rng);
    return induced_subgraph(geo.graph, largest_component(geo.graph)).graph;
  }
  if (kind == "gnm") {
    const auto edges =
        static_cast<std::size_t>(
            args.get_int("edges", static_cast<std::int64_t>(3 * nodes)));
    return generate_gnm(nodes, edges, rng);
  }
  if (kind == "tree") return generate_random_tree(nodes, rng);
  if (kind == "grid") return generate_grid(nodes / 10 + 1, 10);
  if (kind == "complete") return generate_complete(nodes);
  FDLSP_REQUIRE(false, "unknown --topology (udg|gnm|tree|grid|complete)");
  return Graph(0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fdlsp;
  const CliArgs args(argc, argv);
  Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 1)));
  const Graph graph = make_topology(args, rng);

  std::cout << "topology: " << graph.num_nodes() << " nodes, "
            << graph.num_edges() << " links, max degree "
            << graph.max_degree() << ", lower bound "
            << lower_bound_theorem1(graph) << ", upper bound "
            << upper_bound_colors(graph) << "\n\n";

  TextTable table({"algorithm", "slots", "rounds", "messages", "async-time"});
  for (SchedulerKind kind :
       {SchedulerKind::kDistMisGbg, SchedulerKind::kDistMisGeneral,
        SchedulerKind::kDfs, SchedulerKind::kDmgc, SchedulerKind::kRandomized,
        SchedulerKind::kGreedy}) {
    const ScheduleResult result =
        run_scheduler_on_components(kind, graph, 42);
    table.add_row({scheduler_name(kind), std::to_string(result.num_slots),
                   std::to_string(result.rounds),
                   std::to_string(result.messages),
                   fmt_double(result.async_time, 1)});
  }
  table.print(std::cout);
  std::cout << "\n(rounds for D-MGC is the analytic distributed-cost "
               "estimate; greedy is the centralized reference)\n";
  return 0;
}
