// Dynamic network (the paper's future work): sensors join, fail and move;
// the incremental repair keeps the TDMA schedule feasible by touching only
// the neighborhood of each change, compared against full recomputation.
//
//   ./dynamic_network [--nodes=N] [--steps=T] [--side=S] [--seed=K]
#include <iostream>

#include "algos/repair.h"
#include "coloring/checker.h"
#include "coloring/greedy.h"
#include "graph/arcs.h"
#include "graph/generators.h"
#include "support/cli.h"
#include "support/rng.h"
#include "support/stats.h"
#include "support/table.h"

int main(int argc, char** argv) {
  using namespace fdlsp;
  const CliArgs args(argc, argv);
  const auto nodes = static_cast<std::size_t>(args.get_int("nodes", 80));
  const auto steps = static_cast<std::size_t>(args.get_int("steps", 40));
  const double side = args.get_double("side", 6.0);
  Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 5)));

  auto positions = generate_udg(nodes, side, 1.0, rng).positions;
  Graph graph = udg_from_positions(positions, 1.0);
  ArcColoring coloring = greedy_coloring(ArcView(graph));
  std::cout << "initial field: " << graph.num_edges() << " links, "
            << coloring.num_colors_used() << " slots\n\n";

  Summary repair_cost, full_cost, repair_slots, full_slots;
  for (std::size_t step = 0; step < steps; ++step) {
    // Churn event: a node moves (join/fail are the degenerate cases where
    // it moves in from / out to the far distance).
    const std::size_t mover = rng.next_index(positions.size());
    positions[mover] = Point{rng.next_double() * side,
                             rng.next_double() * side};
    const Graph new_graph = udg_from_positions(positions, 1.0);
    const ArcView new_view(new_graph);

    ArcColoring transferred =
        transfer_coloring(ArcView(graph), coloring, new_view);
    RepairResult repaired = repair_schedule(new_view, std::move(transferred));
    FDLSP_REQUIRE(is_feasible_schedule(new_view, repaired.coloring),
                  "repair must stay feasible");

    const ArcColoring recomputed = greedy_coloring(new_view);
    repair_cost.add(static_cast<double>(repaired.recolored_arcs));
    full_cost.add(static_cast<double>(new_view.num_arcs()));
    repair_slots.add(static_cast<double>(repaired.num_slots));
    full_slots.add(static_cast<double>(recomputed.num_colors_used()));

    graph = new_graph;
    coloring = std::move(repaired.coloring);
  }

  TextTable table({"strategy", "arcs recolored/step", "slots (mean)"});
  table.add_row({"incremental repair", fmt_double(repair_cost.mean(), 1),
                 fmt_double(repair_slots.mean(), 2)});
  table.add_row({"full recompute", fmt_double(full_cost.mean(), 1),
                 fmt_double(full_slots.mean(), 2)});
  table.print(std::cout);
  std::cout << "\nafter " << steps
            << " churn events the schedule stayed feasible throughout; "
               "repair touched "
            << fmt_double(100.0 * repair_cost.mean() / full_cost.mean(), 1)
            << "% of the arcs a recompute would.\n";
  return 0;
}
