#!/usr/bin/env bash
# Bench-regression smoke: runs the coloring micro suite in Release mode and
# writes google-benchmark JSON to BENCH_coloring.json at the repo root.
#
#   tools/bench_smoke.sh                 # default build dir build-bench
#   tools/bench_smoke.sh build           # reuse an existing build dir
#   FDLSP_BENCH_MIN_TIME=0.05 tools/bench_smoke.sh   # faster smoke (CI)
#
# The JSON carries both the baseline (on-the-fly enumeration) and the
# *Indexed benchmarks, so one file documents the ConflictIndex speedup and
# serves as the regression reference for later PRs: compare a fresh run
# against the committed BENCH_coloring.json before merging perf changes.
set -euo pipefail
cd "$(dirname "$0")/.."

build_dir="${1:-build-bench}"
min_time="${FDLSP_BENCH_MIN_TIME:-0.1}"

cmake -B "${build_dir}" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "${build_dir}" -j --target micro_coloring

"./${build_dir}/bench/micro_coloring" \
  --benchmark_min_time="${min_time}" \
  --benchmark_out=BENCH_coloring.json \
  --benchmark_out_format=json \
  --benchmark_format=console

echo "=== bench_smoke.sh: wrote BENCH_coloring.json ==="
