#!/usr/bin/env bash
# Bench-regression smoke: runs the coloring, engine, and soak micro suites
# in Release mode and writes google-benchmark JSON to BENCH_coloring.json,
# BENCH_sim.json, and BENCH_soak.json at the repo root.
#
#   tools/bench_smoke.sh                 # default build dir build-bench
#   tools/bench_smoke.sh build           # reuse an existing build dir
#   FDLSP_BENCH_MIN_TIME=0.05 tools/bench_smoke.sh   # faster smoke (CI)
#   FDLSP_BENCH_SCALE=full tools/bench_smoke.sh      # n=10^6 shard curve
#
# FDLSP_BENCH_SCALE selects the BM_DistMisUdgSharded scale rows that
# micro_engines registers at startup (bench/micro_engines.cpp): the default
# "1" is a capped smoke — n=10^5 at 1 vs 2 shards, one iteration — sized so
# `tools/ci.sh bench` stays in CI budget while still feeding the sharded
# rows into BENCH_sim.json for bench-compare. "full" swaps in the n=10^6
# curve at 1/2/4/8 shards (the EXPERIMENTS.md "Shard scaling" table); that
# scale runs for tens of minutes and is meant for manual reruns on a
# multi-core box, not CI.
#
# The committed JSON files are the regression references for later PRs:
# BENCH_coloring.json documents the ConflictIndex speedup; BENCH_sim.json
# documents the zero-alloc message path and parallel-round throughput
# (payload-size sweep, thread sweep, DistMIS-on-UDG wall times);
# BENCH_soak.json documents the churn pipeline (repair-latency percentiles,
# slots churned per event, incremental-index patch vs fresh rebuild).
# Compare a fresh run against them with `tools/ci.sh bench-compare` before
# merging perf changes.
set -euo pipefail
cd "$(dirname "$0")/.."

build_dir="${1:-build-bench}"
min_time="${FDLSP_BENCH_MIN_TIME:-0.1}"
export FDLSP_BENCH_SCALE="${FDLSP_BENCH_SCALE:-1}"

cmake -B "${build_dir}" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "${build_dir}" -j --target micro_coloring micro_engines \
  micro_soak

"./${build_dir}/bench/micro_coloring" \
  --benchmark_min_time="${min_time}" \
  --benchmark_out=BENCH_coloring.json \
  --benchmark_out_format=json \
  --benchmark_format=console

"./${build_dir}/bench/micro_engines" \
  --benchmark_min_time="${min_time}" \
  --benchmark_out=BENCH_sim.json \
  --benchmark_out_format=json \
  --benchmark_format=console

"./${build_dir}/bench/micro_soak" \
  --benchmark_min_time="${min_time}" \
  --benchmark_out=BENCH_soak.json \
  --benchmark_out_format=json \
  --benchmark_format=console

echo "=== bench_smoke.sh: wrote BENCH_coloring.json BENCH_sim.json" \
  "BENCH_soak.json ==="
