// fdlsp-lint CLI: determinism & protocol-isolation linter for this repo.
//
//   fdlsp-lint src/                 # lint a tree (the CI invocation)
//   fdlsp-lint src/algos/foo.cpp    # lint individual files
//   fdlsp-lint --list-rules         # print the rule catalog
//
// Exit codes: 0 clean, 1 diagnostics found, 2 usage or I/O error.
// Rule semantics, path scoping and the allow() escape hatch are documented
// in src/analysis/lint.h and DESIGN.md §8.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/lint.h"

namespace fs = std::filesystem;

namespace {

bool lintable_extension(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cpp" || ext == ".h" || ext == ".hpp" || ext == ".cc";
}

/// Skips build trees and hidden directories when walking.
bool skip_directory(const fs::path& path) {
  const std::string name = path.filename().string();
  return name.rfind("build", 0) == 0 || (!name.empty() && name[0] == '.');
}

std::vector<std::string> collect_files(const fs::path& root) {
  std::vector<std::string> files;
  if (fs::is_regular_file(root)) {
    files.push_back(root.string());
    return files;
  }
  fs::recursive_directory_iterator it(root), end;
  while (it != end) {
    if (it->is_directory() && skip_directory(it->path())) {
      it.disable_recursion_pending();
    } else if (it->is_regular_file() && lintable_extension(it->path())) {
      files.push_back(it->path().string());
    }
    ++it;
  }
  std::sort(files.begin(), files.end());
  return files;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const fdlsp::LintRuleInfo& rule : fdlsp::lint_rules())
        std::cout << rule.name << "\n    " << rule.summary << "\n";
      return 0;
    }
    if (arg == "--help" || arg == "-h") {
      std::cout << "usage: fdlsp-lint [--list-rules] <path>...\n";
      return 0;
    }
    if (arg.rfind("--", 0) == 0) {
      std::cerr << "fdlsp-lint: unknown flag " << arg << "\n";
      return 2;
    }
    roots.push_back(arg);
  }
  if (roots.empty()) {
    std::cerr << "usage: fdlsp-lint [--list-rules] <path>...\n";
    return 2;
  }

  std::size_t files_scanned = 0;
  std::vector<fdlsp::LintDiagnostic> diagnostics;
  for (const std::string& root : roots) {
    if (!fs::exists(root)) {
      std::cerr << "fdlsp-lint: no such path: " << root << "\n";
      return 2;
    }
    for (const std::string& file : collect_files(root)) {
      std::ifstream in(file);
      if (!in) {
        std::cerr << "fdlsp-lint: cannot read " << file << "\n";
        return 2;
      }
      std::ostringstream buffer;
      buffer << in.rdbuf();
      ++files_scanned;
      for (fdlsp::LintDiagnostic& d :
           fdlsp::lint_source(file, buffer.str()))
        diagnostics.push_back(std::move(d));
    }
  }

  for (const fdlsp::LintDiagnostic& d : diagnostics)
    std::cout << fdlsp::to_string(d) << "\n";
  std::cout << "fdlsp-lint: " << files_scanned << " files, "
            << diagnostics.size() << " diagnostic(s)\n";
  return diagnostics.empty() ? 0 : 1;
}
