// fdlsp-lint CLI: determinism & protocol-isolation linter for this repo.
//
//   fdlsp-lint --project src        # file rules + include-layer DAG (CI)
//   fdlsp-lint src/algos/foo.cpp    # lint individual files
//   fdlsp-lint --list-rules         # print the rule catalog and layers
//   fdlsp-lint --format=json ...    # machine-readable report
//   fdlsp-lint --format=sarif ...   # SARIF 2.1.0 (code-scanning upload)
//
// Exit codes: 0 clean, 1 diagnostics found, 2 usage or I/O error.
// Rule semantics, path scoping and the allow() escape hatch are documented
// in src/analysis/lint.h; the layer DAG in src/analysis/project.h; both in
// DESIGN.md §8 and §13.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/lint.h"
#include "analysis/project.h"

namespace fs = std::filesystem;

namespace {

bool lintable_extension(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cpp" || ext == ".h" || ext == ".hpp" || ext == ".cc";
}

/// Skips build trees and hidden directories when walking.
bool skip_directory(const fs::path& path) {
  const std::string name = path.filename().string();
  return name.rfind("build", 0) == 0 || (!name.empty() && name[0] == '.');
}

std::vector<std::string> collect_files(const fs::path& root) {
  std::vector<std::string> files;
  if (fs::is_regular_file(root)) {
    files.push_back(root.string());
    return files;
  }
  fs::recursive_directory_iterator it(root), end;
  while (it != end) {
    if (it->is_directory() && skip_directory(it->path())) {
      it.disable_recursion_pending();
    } else if (it->is_regular_file() && lintable_extension(it->path())) {
      files.push_back(it->path().string());
    }
    ++it;
  }
  std::sort(files.begin(), files.end());
  return files;
}

/// JSON string escaping (quotes, backslashes, control characters).
std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void print_json(const std::vector<fdlsp::LintDiagnostic>& diagnostics,
                std::size_t files_scanned) {
  std::cout << "{\n  \"files_scanned\": " << files_scanned
            << ",\n  \"diagnostics\": [";
  for (std::size_t i = 0; i < diagnostics.size(); ++i) {
    const fdlsp::LintDiagnostic& d = diagnostics[i];
    std::cout << (i == 0 ? "\n" : ",\n")
              << "    {\"file\": \"" << json_escape(d.file)
              << "\", \"line\": " << d.line << ", \"rule\": \""
              << json_escape(d.rule) << "\", \"message\": \""
              << json_escape(d.message) << "\"}";
  }
  std::cout << (diagnostics.empty() ? "]" : "\n  ]") << "\n}\n";
}

void print_sarif(const std::vector<fdlsp::LintDiagnostic>& diagnostics) {
  std::cout << "{\n"
            << "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n"
            << "  \"version\": \"2.1.0\",\n"
            << "  \"runs\": [{\n"
            << "    \"tool\": {\"driver\": {\"name\": \"fdlsp-lint\", "
               "\"rules\": [";
  const auto rules = fdlsp::lint_rules();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    std::cout << (i == 0 ? "\n" : ",\n") << "      {\"id\": \""
              << json_escape(rules[i].name)
              << "\", \"shortDescription\": {\"text\": \""
              << json_escape(rules[i].summary) << "\"}}";
  }
  std::cout << "\n    ]}},\n    \"results\": [";
  for (std::size_t i = 0; i < diagnostics.size(); ++i) {
    const fdlsp::LintDiagnostic& d = diagnostics[i];
    std::cout << (i == 0 ? "\n" : ",\n")
              << "      {\"ruleId\": \"" << json_escape(d.rule)
              << "\", \"level\": \"error\", \"message\": {\"text\": \""
              << json_escape(d.message)
              << "\"}, \"locations\": [{\"physicalLocation\": "
                 "{\"artifactLocation\": {\"uri\": \""
              << json_escape(d.file) << "\"}, \"region\": {\"startLine\": "
              << d.line << "}}}]}";
  }
  std::cout << (diagnostics.empty() ? "]" : "\n    ]") << "\n  }]\n}\n";
}

void print_usage(std::ostream& out) {
  out << "usage: fdlsp-lint [--project] [--format=text|json|sarif] "
         "[--list-rules] <path>...\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  bool project_mode = false;
  std::string format = "text";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const fdlsp::LintRuleInfo& rule : fdlsp::lint_rules())
        std::cout << rule.name << "\n    " << rule.summary << "\n";
      std::cout << "include layers (layer-dag, --project mode):\n";
      for (const fdlsp::LintLayer& layer : fdlsp::lint_layers())
        std::cout << "    " << layer.rank << "  " << layer.module << "\n";
      return 0;
    }
    if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      return 0;
    }
    if (arg == "--project") {
      project_mode = true;
      continue;
    }
    if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
      if (format != "text" && format != "json" && format != "sarif") {
        std::cerr << "fdlsp-lint: unknown format '" << format
                  << "' (expected text, json or sarif)\n";
        return 2;
      }
      continue;
    }
    if (arg.rfind("--", 0) == 0) {
      std::cerr << "fdlsp-lint: unknown flag " << arg << "\n";
      return 2;
    }
    roots.push_back(arg);
  }
  if (roots.empty()) {
    print_usage(std::cerr);
    return 2;
  }

  std::vector<fdlsp::ProjectFile> files;
  for (const std::string& root : roots) {
    if (!fs::exists(root)) {
      std::cerr << "fdlsp-lint: no such path: " << root << "\n";
      return 2;
    }
    for (const std::string& file : collect_files(root)) {
      std::ifstream in(file);
      if (!in) {
        std::cerr << "fdlsp-lint: cannot read " << file << "\n";
        return 2;
      }
      std::ostringstream buffer;
      buffer << in.rdbuf();
      files.push_back(fdlsp::ProjectFile{file, buffer.str()});
    }
  }

  std::vector<fdlsp::LintDiagnostic> diagnostics;
  for (const fdlsp::ProjectFile& file : files)
    for (fdlsp::LintDiagnostic& d : fdlsp::lint_source(file.path, file.text))
      diagnostics.push_back(std::move(d));
  if (project_mode)
    for (fdlsp::LintDiagnostic& d : fdlsp::lint_layer_dag(files))
      diagnostics.push_back(std::move(d));

  if (format == "json") {
    print_json(diagnostics, files.size());
  } else if (format == "sarif") {
    print_sarif(diagnostics);
  } else {
    for (const fdlsp::LintDiagnostic& d : diagnostics)
      std::cout << fdlsp::to_string(d) << "\n";
    std::cout << "fdlsp-lint: " << files.size() << " files, "
              << diagnostics.size() << " diagnostic(s)"
              << (project_mode ? " (project mode: file rules + layer DAG)"
                               : "")
              << "\n";
  }
  return diagnostics.empty() ? 0 : 1;
}
