#!/usr/bin/env bash
# CI driver: tier-1 suite, sanitizer jobs over the property-test gate, and
# the static-analysis jobs (fdlsp-lint, clang-tidy).
#
#   tools/ci.sh            # tier-1 (full suite, RelWithDebInfo)
#   tools/ci.sh asan       # ASan+UBSan build, proptest-labeled suite
#   tools/ci.sh tsan       # TSan build, proptest-labeled suite
#   tools/ci.sh faults     # fault-injection gate: faulttest-labeled suite,
#                          # plain and under ASan+UBSan
#   tools/ci.sh soak       # continuous-operation gate: soaktest-labeled
#                          # suite, plain (full streams) and under
#                          # ASan+UBSan (capped via FDLSP_SOAK_EVENTS)
#   tools/ci.sh lint       # fdlsp-lint over src/ (determinism/isolation)
#   tools/ci.sh tidy       # clang-tidy (skipped when not installed)
#   tools/ci.sh bench      # Release build + micro suites (capped min-time;
#                          # writes BENCH_coloring.json, BENCH_sim.json)
#   tools/ci.sh bench-compare  # fresh bench run diffed against the
#                          # committed baselines with a tolerance band
#   tools/ci.sh all        # every job in sequence
#
# The proptest label selects the fdlsp_verify-based fuzzing suites — the
# regression gate every perf/refactor PR must keep green (see DESIGN.md §7).
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="${1:-tier1}"

run_tier1() {
  echo "=== tier-1: build + full test suite ==="
  cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build -j
  ctest --test-dir build --output-on-failure -j "$(nproc)"
}

run_sanitizer() {  # $1 = preset name (asan-ubsan | tsan)
  local preset="$1"
  echo "=== ${preset}: build + proptest suite ==="
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j
  ctest --test-dir "build-${preset}" -L proptest --output-on-failure \
    -j "$(nproc)"
  # The zero-alloc gate also runs under the sanitizer build: the counting
  # operator new hooks are compiled out there (support/alloc_audit.h), so
  # this verifies the GTEST_SKIP seam and keeps the fixture itself
  # sanitizer-clean.
  ctest --test-dir "build-${preset}" -R '^engine_alloc_test$' \
    --output-on-failure
}

run_faults() {
  echo "=== faults: fault-injection suite (plain + ASan+UBSan) ==="
  # The faulttest label includes the correlated-loss sweep (Gilbert–Elliott
  # bursts, PRR matrix, region outages) judged by the burst-quiescence and
  # failure-detector oracles; the replay smoke below additionally pins the
  # burst --faults= grammar and the oracle CLI path end to end.
  local burst_smoke=(--family=grid --n=12 --density=0.5 --seed=5
    --scheduler=distMIS --faults=drop=0.05,bp=0.2,bq=0.25,bloss=0.9,regions=1)
  cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build -j
  ctest --test-dir build -L faulttest --output-on-failure -j "$(nproc)"
  ./build/examples/replay "${burst_smoke[@]}"
  cmake --preset asan-ubsan
  cmake --build --preset asan-ubsan -j
  ctest --test-dir build-asan-ubsan -L faulttest --output-on-failure \
    -j "$(nproc)"
  ./build-asan-ubsan/examples/replay "${burst_smoke[@]}"
}

run_soak() {
  echo "=== soak: continuous-operation suite (plain + ASan+UBSan) ==="
  cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build -j
  ctest --test-dir build -L soaktest --output-on-failure -j "$(nproc)"
  # Sanitizer instrumentation makes long streams slow; cap the per-test
  # event count so the gate stays minutes, not hours.
  cmake --preset asan-ubsan
  cmake --build --preset asan-ubsan -j
  FDLSP_SOAK_EVENTS="${FDLSP_SOAK_EVENTS:-200}" \
    ctest --test-dir build-asan-ubsan -L soaktest --output-on-failure \
    -j "$(nproc)"
}

run_lint() {
  echo "=== lint: fdlsp-lint --project over src/ ==="
  cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build -j --target fdlsp-lint
  # Machine-readable reports first (for the CI artifact upload), then the
  # human-readable gate run. Project mode adds the include-layer DAG check
  # on top of the per-file rules.
  local status=0
  ./build/tools/fdlsp-lint --project --format=sarif src/ \
    > build/lint-report.sarif || status=$?
  [ "${status}" -le 1 ] || { echo "fdlsp-lint failed to run"; return 2; }
  ./build/tools/fdlsp-lint --project --format=json src/ \
    > build/lint-report.json || true
  ./build/tools/fdlsp-lint --project src/
}

run_tidy() {
  echo "=== clang-tidy: static analysis over src/ ==="
  if ! command -v clang-tidy >/dev/null 2>&1; then
    # The minimal toolchain image ships without clang-tidy; the GitHub
    # workflow installs it, so the job still gates PRs.
    echo "clang-tidy not installed; skipping"
    return 0
  fi
  cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
  git ls-files 'src/**/*.cpp' 'tools/**/*.cpp' |
    xargs -P "$(nproc)" -n 4 clang-tidy -p build --quiet
}

run_bench() {
  echo "=== bench: Release build + micro suites ==="
  # Capped min-time keeps the smoke fast in CI; local perf work can raise it
  # (FDLSP_BENCH_MIN_TIME=0.1 or more) for steadier numbers.
  FDLSP_BENCH_MIN_TIME="${FDLSP_BENCH_MIN_TIME:-0.05}" tools/bench_smoke.sh
}

run_bench_compare() {
  echo "=== bench-compare: fresh run vs committed baselines ==="
  # The comparator guards its own malformed-input handling; a hardening
  # regression there fails the gate before any benchmark runs.
  python3 tools/bench_compare.py --self-test
  # Save the committed baselines aside (bench_smoke.sh overwrites them),
  # run fresh, then diff with the tolerance band.
  local stash
  stash="$(mktemp -d)"
  cp BENCH_coloring.json BENCH_sim.json BENCH_soak.json "${stash}/"
  FDLSP_BENCH_MIN_TIME="${FDLSP_BENCH_MIN_TIME:-0.05}" tools/bench_smoke.sh
  local status=0
  python3 tools/bench_compare.py "${stash}/BENCH_coloring.json" \
    BENCH_coloring.json || status=1
  python3 tools/bench_compare.py "${stash}/BENCH_sim.json" \
    BENCH_sim.json || status=1
  python3 tools/bench_compare.py "${stash}/BENCH_soak.json" \
    BENCH_soak.json || status=1
  # Restore the committed baselines: the gate compares, it does not rebase.
  cp "${stash}/BENCH_coloring.json" "${stash}/BENCH_sim.json" \
    "${stash}/BENCH_soak.json" .
  rm -rf "${stash}"
  return "${status}"
}

case "${jobs}" in
  tier1) run_tier1 ;;
  asan) run_sanitizer asan-ubsan ;;
  tsan) run_sanitizer tsan ;;
  faults) run_faults ;;
  soak) run_soak ;;
  lint) run_lint ;;
  tidy) run_tidy ;;
  bench) run_bench ;;
  bench-compare) run_bench_compare ;;
  all)
    run_lint
    run_tier1
    run_sanitizer asan-ubsan
    run_sanitizer tsan
    run_faults
    run_soak
    run_tidy
    run_bench
    ;;
  *)
    echo "usage: tools/ci.sh" \
      "[tier1|asan|tsan|faults|soak|lint|tidy|bench|bench-compare|all]" >&2
    exit 2
    ;;
esac
echo "=== ci.sh: ${jobs} OK ==="
