#!/usr/bin/env bash
# CI driver: tier-1 suite plus sanitizer jobs over the property-test gate.
#
#   tools/ci.sh            # tier-1 (full suite, RelWithDebInfo)
#   tools/ci.sh asan       # ASan+UBSan build, proptest-labeled suite
#   tools/ci.sh tsan       # TSan build, proptest-labeled suite
#   tools/ci.sh all        # all three jobs in sequence
#
# The proptest label selects the fdlsp_verify-based fuzzing suites — the
# regression gate every perf/refactor PR must keep green (see DESIGN.md §7).
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="${1:-tier1}"

run_tier1() {
  echo "=== tier-1: build + full test suite ==="
  cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build -j
  ctest --test-dir build --output-on-failure -j "$(nproc)"
}

run_sanitizer() {  # $1 = preset name (asan-ubsan | tsan)
  local preset="$1"
  echo "=== ${preset}: build + proptest suite ==="
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j
  ctest --test-dir "build-${preset}" -L proptest --output-on-failure \
    -j "$(nproc)"
}

case "${jobs}" in
  tier1) run_tier1 ;;
  asan) run_sanitizer asan-ubsan ;;
  tsan) run_sanitizer tsan ;;
  all)
    run_tier1
    run_sanitizer asan-ubsan
    run_sanitizer tsan
    ;;
  *)
    echo "usage: tools/ci.sh [tier1|asan|tsan|all]" >&2
    exit 2
    ;;
esac
echo "=== ci.sh: ${jobs} OK ==="
