#!/usr/bin/env python3
"""Diff a fresh google-benchmark JSON run against a committed baseline.

Usage:
    tools/bench_compare.py BASELINE.json FRESH.json [--tolerance 0.30]

For every benchmark present in both files, compares real_time (after
normalizing time units) and fails — exit 1 — if the fresh run regressed by
more than the tolerance band. Benchmarks present on only one side are
reported but never fail the gate (suites are allowed to grow).

The default tolerance is deliberately loose (30%): micro timings on shared
CI machines jitter, and the gate exists to catch order-of-magnitude
regressions (an accidental O(n^2), a lost zero-alloc path), not percent
noise. Speedups never fail.
"""

import argparse
import json
import sys

_UNIT_TO_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_times(path):
    """name -> real_time in ns, aggregates and error runs excluded."""
    with open(path) as fh:
        data = json.load(fh)
    times = {}
    for entry in data.get("benchmarks", []):
        if entry.get("run_type") == "aggregate" or "error_occurred" in entry:
            continue
        unit = _UNIT_TO_NS.get(entry.get("time_unit", "ns"), 1.0)
        times[entry["name"]] = float(entry["real_time"]) * unit
    return times


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed relative slowdown (default 0.30)")
    args = parser.parse_args()

    base = load_times(args.baseline)
    fresh = load_times(args.fresh)

    regressions = []
    for name in sorted(base):
        if name not in fresh:
            print(f"  [only-baseline] {name}")
            continue
        old, new = base[name], fresh[name]
        ratio = new / old if old > 0 else float("inf")
        marker = " "
        if ratio > 1.0 + args.tolerance:
            marker = "!"
            regressions.append((name, ratio))
        print(f"  [{marker}] {name}: {old:12.0f}ns -> {new:12.0f}ns "
              f"({ratio:6.2f}x)")
    for name in sorted(set(fresh) - set(base)):
        print(f"  [only-fresh] {name}")

    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond "
              f"{args.tolerance:.0%} tolerance:")
        for name, ratio in regressions:
            print(f"  {name}: {ratio:.2f}x slower")
        return 1
    print(f"\nOK: no regression beyond {args.tolerance:.0%} "
          f"({len(base)} baseline benchmarks checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
