#!/usr/bin/env python3
"""Diff a fresh google-benchmark JSON run against a committed baseline.

Usage:
    tools/bench_compare.py BASELINE.json FRESH.json [--tolerance 0.30]
    tools/bench_compare.py --self-test

For every benchmark present in both files, compares real_time (after
normalizing time units) and fails — exit 1 — if the fresh run regressed by
more than the tolerance band. Benchmarks present on only one side are
reported but never fail the gate (suites are allowed to grow).

Malformed input (missing file, invalid JSON, entries without the
name/real_time keys) exits 2 with a one-line diagnostic naming the file and
the defect, so a truncated bench run reads as "bad input", not a Python
traceback or a silently empty comparison.

The default tolerance is deliberately loose (30%): micro timings on shared
CI machines jitter, and the gate exists to catch order-of-magnitude
regressions (an accidental O(n^2), a lost zero-alloc path), not percent
noise. Speedups never fail.

Each comparison is annotated with the recorded machine context (num_cpus,
load_avg) from both files' google-benchmark "context" blocks. When the two
runs disagree on num_cpus the script prints a warning — but does not fail —
because timing ratios between machines of different widths are not
comparable for the parallel/sharded rows (a 1-CPU runner cannot show the
multi-core shard-scaling curve at all; see EXPERIMENTS.md "Shard scaling").
"""

import argparse
import json
import sys


class BenchFileError(Exception):
    """A benchmark JSON file that cannot be compared, with the reason."""


_UNIT_TO_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_times(path):
    """name -> real_time in ns, aggregates and error runs excluded.

    Raises BenchFileError (never KeyError/JSONDecodeError) on any defect.
    """
    try:
        with open(path) as fh:
            data = json.load(fh)
    except OSError as err:
        raise BenchFileError(f"{path}: cannot read ({err.strerror})")
    except json.JSONDecodeError as err:
        raise BenchFileError(f"{path}: invalid JSON at line {err.lineno}")
    if not isinstance(data, dict) or not isinstance(
            data.get("benchmarks"), list):
        raise BenchFileError(
            f"{path}: not a google-benchmark report (no 'benchmarks' list)")
    times = {}
    for index, entry in enumerate(data["benchmarks"]):
        if not isinstance(entry, dict):
            raise BenchFileError(
                f"{path}: benchmarks[{index}] is not an object")
        if entry.get("run_type") == "aggregate" or "error_occurred" in entry:
            continue
        missing = [key for key in ("name", "real_time") if key not in entry]
        if missing:
            raise BenchFileError(
                f"{path}: benchmarks[{index}] lacks {'/'.join(missing)} — "
                "truncated or non-benchmark JSON?")
        try:
            real_time = float(entry["real_time"])
        except (TypeError, ValueError):
            raise BenchFileError(
                f"{path}: benchmarks[{index}] ({entry['name']}) has "
                f"non-numeric real_time {entry['real_time']!r}")
        unit = _UNIT_TO_NS.get(entry.get("time_unit", "ns"), 1.0)
        times[entry["name"]] = real_time * unit
    return times


def load_context(path):
    """Machine context ({"num_cpus": int, "load_avg": [..]}) recorded in the
    report, best-effort: missing/odd context yields an empty dict rather
    than an error, since old baselines predate the annotation."""
    try:
        with open(path) as fh:
            data = json.load(fh)
    except (OSError, json.JSONDecodeError):
        return {}
    context = data.get("context") if isinstance(data, dict) else None
    if not isinstance(context, dict):
        return {}
    out = {}
    if isinstance(context.get("num_cpus"), int):
        out["num_cpus"] = context["num_cpus"]
    load_avg = context.get("load_avg")
    if isinstance(load_avg, list) and all(
            isinstance(x, (int, float)) for x in load_avg):
        out["load_avg"] = [float(x) for x in load_avg]
    return out


def describe_context(label, context):
    """One annotation line per side, e.g. 'baseline: 8 cpus, load 0.12'."""
    cpus = context.get("num_cpus")
    load = context.get("load_avg")
    parts = [f"{cpus} cpus" if cpus is not None else "cpus unrecorded",
             "load " + "/".join(f"{x:.2f}" for x in load) if load
             else "load unrecorded"]
    return f"  [{label}] {', '.join(parts)}"


def cpu_mismatch_warning(base_context, fresh_context):
    """The warning line when both sides recorded num_cpus and they differ;
    None otherwise. Advisory only — never turns into an exit code."""
    base_cpus = base_context.get("num_cpus")
    fresh_cpus = fresh_context.get("num_cpus")
    if base_cpus is None or fresh_cpus is None or base_cpus == fresh_cpus:
        return None
    return (f"WARNING: num_cpus mismatch (baseline {base_cpus}, fresh "
            f"{fresh_cpus}) — parallel/sharded timings are not comparable "
            "across machine widths; treat those rows as informational")


def compare(base, fresh, tolerance):
    """Prints the per-benchmark table; returns the regressions list."""
    regressions = []
    for name in sorted(base):
        if name not in fresh:
            print(f"  [only-baseline] {name}")
            continue
        old, new = base[name], fresh[name]
        ratio = new / old if old > 0 else float("inf")
        marker = " "
        if ratio > 1.0 + tolerance:
            marker = "!"
            regressions.append((name, ratio))
        print(f"  [{marker}] {name}: {old:12.0f}ns -> {new:12.0f}ns "
              f"({ratio:6.2f}x)")
    for name in sorted(set(fresh) - set(base)):
        print(f"  [only-fresh] {name}")
    return regressions


def self_test():
    """Exercises the load/compare paths against in-process fixtures.

    Run by tools/ci.sh before the real comparison so a hardening regression
    in this script fails the gate on its own, without needing a malformed
    bench file to show up organically.
    """
    import os
    import tempfile

    def write(content):
        handle = tempfile.NamedTemporaryFile(
            "w", suffix=".json", delete=False)
        handle.write(content)
        handle.close()
        return handle.name

    good = write(json.dumps({"benchmarks": [
        {"name": "BM_A", "real_time": 100.0, "time_unit": "ns"},
        {"name": "BM_B", "real_time": 2.0, "time_unit": "us"},
        {"name": "BM_agg", "real_time": 1.0, "run_type": "aggregate"},
    ]}))
    cases = [
        ("missing file", os.path.join(tempfile.gettempdir(),
                                      "fdlsp-no-such-bench.json"),
         "cannot read"),
        ("invalid JSON", write("{not json"), "invalid JSON"),
        ("wrong shape", write('{"context": {}}'), "no 'benchmarks' list"),
        ("missing keys", write('{"benchmarks": [{"iterations": 3}]}'),
         "lacks name/real_time"),
        ("bad real_time", write(
            '{"benchmarks": [{"name": "BM_X", "real_time": "fast"}]}'),
         "non-numeric real_time"),
    ]
    failures = []
    for label, path, needle in cases:
        try:
            load_times(path)
            failures.append(f"{label}: accepted malformed input")
        except BenchFileError as err:
            if needle not in str(err):
                failures.append(f"{label}: diagnostic {str(err)!r} "
                                f"lacks {needle!r}")
    times = load_times(good)
    if times != {"BM_A": 100.0, "BM_B": 2000.0}:
        failures.append(f"good file parsed to {times!r}")
    if compare({"BM_A": 100.0}, {"BM_A": 140.0}, 0.30) != \
            [("BM_A", 1.4)]:
        failures.append("30% tolerance failed to flag a 1.4x slowdown")
    if compare({"BM_A": 100.0}, {"BM_A": 120.0}, 0.30):
        failures.append("30% tolerance flagged a 1.2x slowdown")
    if compare({"BM_A": 100.0}, {"BM_B": 100.0}, 0.30):
        failures.append("disjoint benchmark sets treated as a regression")

    # Machine-context annotation path.
    with_context = write(json.dumps({
        "context": {"num_cpus": 4, "load_avg": [0.25, 0.5, 0.75]},
        "benchmarks": [],
    }))
    context = load_context(with_context)
    if context != {"num_cpus": 4, "load_avg": [0.25, 0.5, 0.75]}:
        failures.append(f"context parsed to {context!r}")
    if load_context(good) != {}:
        failures.append("file without context did not yield empty context")
    if "4 cpus" not in describe_context("fresh", context):
        failures.append("describe_context omits the cpu count")
    if "unrecorded" not in describe_context("baseline", {}):
        failures.append("describe_context hides missing context")
    if cpu_mismatch_warning({"num_cpus": 1}, {"num_cpus": 4}) is None:
        failures.append("1-vs-4 cpu mismatch produced no warning")
    if cpu_mismatch_warning({"num_cpus": 4}, {"num_cpus": 4}) is not None:
        failures.append("matching cpu counts produced a spurious warning")
    if cpu_mismatch_warning({}, {"num_cpus": 4}) is not None:
        failures.append("unrecorded baseline cpus produced a warning")
    os.unlink(with_context)

    for label, path, _ in cases[1:]:
        os.unlink(path)
    os.unlink(good)
    if failures:
        print("self-test FAILED:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print("self-test OK")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", nargs="?")
    parser.add_argument("fresh", nargs="?")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed relative slowdown (default 0.30)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the malformed-input handling and exit")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if args.baseline is None or args.fresh is None:
        parser.error("baseline and fresh files are required "
                     "(or use --self-test)")

    try:
        base = load_times(args.baseline)
        fresh = load_times(args.fresh)
    except BenchFileError as err:
        print(f"bench_compare: {err}", file=sys.stderr)
        return 2

    base_context = load_context(args.baseline)
    fresh_context = load_context(args.fresh)
    print("machine context:")
    print(describe_context("baseline", base_context))
    print(describe_context("fresh", fresh_context))
    warning = cpu_mismatch_warning(base_context, fresh_context)
    if warning:
        print(warning)
    print()

    regressions = compare(base, fresh, args.tolerance)
    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond "
              f"{args.tolerance:.0%} tolerance:")
        for name, ratio in regressions:
            print(f"  {name}: {ratio:.2f}x slower")
        return 1
    print(f"\nOK: no regression beyond {args.tolerance:.0%} "
          f"({len(base)} baseline benchmarks checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
