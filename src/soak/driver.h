// The continuous-operation soak driver: a live schedule under churn.
//
// SoakDriver owns the loop the ROADMAP's "scheduling as a service" story
// needs: a DynamicTopology advances one deterministic event at a time, the
// ConflictIndex is patched incrementally (the dirty-ball constructor), and a
// pluggable cost model chooses per event between
//
//   * repair    — transfer the surviving colors and run the repair pass
//                 restricted to the distance-2 dirty ball (provably
//                 identical to repair_schedule over the whole graph, because
//                 transferred schedules only clash inside the ball), or
//   * recompute — reschedule from scratch.
//
// Both strategies run centralized by default; SoakOptions::distributed
// routes them through run_distributed_repair instead (an empty stale
// coloring makes that a distributed recompute), optionally under a fault
// plan — an incomplete or infeasible faulted run falls back to a
// centralized repair of whatever the radio produced, which is the
// crash-recovery story the fault oracles exercise.
//
// Everything that lands in the event log is a pure function of the SoakSpec
// (wall-clock latencies are kept out of the formatted log), so one spec
// string replays a whole soak byte-for-byte at any thread count.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "coloring/coloring.h"
#include "coloring/conflict_index.h"
#include "graph/arcs.h"
#include "sim/fault.h"
#include "soak/event.h"
#include "soak/topology.h"

namespace fdlsp {

class SimTrace;
class ThreadPool;

/// Per-event scheduling strategy.
enum class SoakAction { kRepair, kRecompute };

/// "repair" / "recompute", as printed in event logs.
std::string soak_action_name(SoakAction action);

/// What the cost model sees before choosing a strategy for one event.
struct SoakCostContext {
  std::size_t num_arcs = 0;       ///< arcs of the post-event topology
  std::size_t changed_edges = 0;  ///< edge symmetric difference of the event
  std::size_t dirty_arcs = 0;     ///< arcs with an endpoint in the dirty ball
  std::size_t span_before = 0;    ///< color span carried into the event
  std::size_t bound = 0;          ///< Lemma-6 bound: max conflict degree + 1
  const SoakSpec* spec = nullptr;
};

using SoakCostModel = std::function<SoakAction(const SoakCostContext&)>;

/// Default model: recompute when the dirty ball exceeds `repair_threshold`
/// of the arcs, or when the carried span drifted past `drift_band` × the
/// instance-tight Lemma-6 bound. Under this model the post-event span never
/// exceeds drift_band × bound (band >= 1) — the drift oracle's invariant.
SoakAction default_soak_cost(const SoakCostContext& context);

/// Knobs threaded through to the scheduling machinery.
struct SoakOptions {
  SoakCostModel cost_model;  ///< empty => default_soak_cost
  bool distributed = false;  ///< route repairs through run_distributed_repair
  const FaultSpec* faults = nullptr;  ///< fault plan for distributed runs
  bool reliable = false;              ///< ack/retransmit hardening
  SimTrace* trace = nullptr;          ///< observes distributed engine events
  ThreadPool* pool = nullptr;         ///< shards distributed engine rounds
  /// Explicit engine shard count for distributed repairs (0 = pool-derived;
  /// see SyncEngine::set_shards). Byte-identical to serial for any value,
  /// so soak repro lines replay unchanged on the sharded path.
  std::size_t shards = 0;
  std::size_t max_rounds = 1'000'000;
};

/// Everything one event did. The formatted log line excludes `micros` and
/// the two vectors, so logs are byte-comparable across runs and threads.
struct SoakEventRecord {
  std::uint64_t index = 0;
  SoakEventKind kind = SoakEventKind::kMove;
  NodeId primary = kNoNode;
  NodeId secondary = kNoNode;  ///< second endpoint of link events
  SoakAction action = SoakAction::kRepair;
  bool fallback = false;  ///< faulted distributed run finished centralized
  std::size_t changed_edges = 0;
  std::size_t recolored_arcs = 0;  ///< = changed_arcs.size(): slots churned
  std::size_t num_slots = 0;       ///< color span after the event
  std::vector<NodeId> touched;     ///< endpoints of changed edges, sorted
  std::vector<ArcId> changed_arcs;  ///< arcs recolored vs the transfer
  double micros = 0.0;              ///< wall latency of the scheduling step
};

/// Running aggregates over a soak (latencies live here, not in the log).
struct SoakStats {
  std::size_t events = 0;
  std::size_t repairs = 0;
  std::size_t recomputes = 0;
  std::size_t fallbacks = 0;
  std::size_t noop_events = 0;  ///< events that changed no edge
  std::size_t total_recolored = 0;
  std::size_t max_recolored = 0;
  std::size_t max_slots = 0;
  std::vector<double> event_micros;  ///< per-event scheduling latency
};

/// One formatted log line, e.g.
///   "i=12 kind=move node=5 action=repair changed=3 recolored=4 slots=9"
/// A pure function of deterministic event data.
std::string format_soak_record(const SoakEventRecord& record);

/// Newline-terminated concatenation of the record lines — the byte-compared
/// artifact of the steady-state determinism oracle.
std::string format_soak_log(const std::vector<SoakEventRecord>& log);

/// p-th percentile (p in [0, 100]) of a latency sample; 0 when empty.
double soak_percentile(std::vector<double> values, double p);

/// Owns one soak run: topology, live schedule, incremental index, log.
class SoakDriver {
 public:
  /// Builds the seed topology and its initial schedule (a full recompute).
  explicit SoakDriver(const SoakSpec& spec, SoakOptions options = {});

  /// Applies event `index` and reschedules; returns the stored record.
  const SoakEventRecord& step(std::uint64_t index);

  /// Observer contract: called after every event; return false to stop.
  using Observer =
      std::function<bool(const SoakDriver&, const SoakEventRecord&)>;

  /// Runs the spec's whole stream, honoring spec.skip.
  void run(const Observer& observer = {});

  const SoakSpec& spec() const noexcept { return spec_; }
  const DynamicTopology& topology() const noexcept { return topo_; }
  const Graph& graph() const noexcept { return graph_; }
  const ArcColoring& coloring() const noexcept { return coloring_; }
  const ConflictIndex& index() const noexcept { return *index_; }
  const SoakStats& stats() const noexcept { return stats_; }
  const std::vector<SoakEventRecord>& log() const noexcept { return log_; }

 private:
  struct Scheduled {
    ArcColoring coloring;
    bool fallback = false;
  };

  /// Distributed or centralized rescheduling of `stale` (empty = recompute).
  Scheduled schedule(const ArcView& view, ArcColoring stale,
                     std::span<const ArcId> ball_arcs, SoakAction action,
                     std::uint64_t event_seed);

  SoakSpec spec_;
  SoakOptions options_;
  std::vector<std::uint64_t> skip_;  ///< spec_.skip, sorted
  DynamicTopology topo_;
  Graph graph_;  ///< driver's own copy; survives topo_.apply for diffing
  std::optional<ConflictIndex> index_;
  ArcColoring coloring_;
  SoakStats stats_;
  std::vector<SoakEventRecord> log_;
};

}  // namespace fdlsp
