#include "soak/event.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "support/check.h"
#include "support/rng.h"

namespace fdlsp {

std::string soak_event_name(SoakEventKind kind) {
  switch (kind) {
    case SoakEventKind::kJoin: return "join";
    case SoakEventKind::kLeave: return "leave";
    case SoakEventKind::kMove: return "move";
    case SoakEventKind::kLinkDown: return "link_down";
    case SoakEventKind::kLinkUp: return "link_up";
  }
  return "?";
}

std::uint64_t soak_hash(std::uint64_t seed, std::uint64_t stream,
                        std::uint64_t index) {
  std::uint64_t s = seed ^ (stream * 0x9e3779b97f4a7c15ULL);
  const std::uint64_t a = splitmix64(s);
  s ^= index * 0xbf58476d1ce4e5b9ULL;
  return splitmix64(s) ^ a;
}

double soak_unit(std::uint64_t hash) {
  return static_cast<double>(hash >> 11) * 0x1.0p-53;
}

namespace {

/// Shortest decimal form that round-trips a double through strtod.
std::string format_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%g", value);
  return buffer;
}

void append_field(std::string& out, const char* key,
                  const std::string& value) {
  if (!out.empty()) out += ',';
  out += key;
  out += '=';
  out += value;
}

}  // namespace

std::string format_soak_spec(const SoakSpec& spec) {
  const SoakSpec defaults;
  std::string out;
  if (spec.seed != defaults.seed)
    append_field(out, "seed", std::to_string(spec.seed));
  if (spec.n != defaults.n) append_field(out, "n", std::to_string(spec.n));
  if (spec.events != defaults.events)
    append_field(out, "events", std::to_string(spec.events));
  if (spec.family != defaults.family) append_field(out, "family", spec.family);
  if (spec.density != defaults.density)
    append_field(out, "density", format_double(spec.density));
  if (spec.side != defaults.side)
    append_field(out, "side", format_double(spec.side));
  if (spec.radius != defaults.radius)
    append_field(out, "radius", format_double(spec.radius));
  if (spec.alive_fraction != defaults.alive_fraction)
    append_field(out, "alive", format_double(spec.alive_fraction));
  if (spec.move_step != defaults.move_step)
    append_field(out, "step", format_double(spec.move_step));
  if (spec.join_weight != defaults.join_weight)
    append_field(out, "join", format_double(spec.join_weight));
  if (spec.leave_weight != defaults.leave_weight)
    append_field(out, "leave", format_double(spec.leave_weight));
  if (spec.move_weight != defaults.move_weight)
    append_field(out, "move", format_double(spec.move_weight));
  if (spec.link_down_weight != defaults.link_down_weight)
    append_field(out, "down", format_double(spec.link_down_weight));
  if (spec.link_up_weight != defaults.link_up_weight)
    append_field(out, "up", format_double(spec.link_up_weight));
  if (spec.repair_threshold != defaults.repair_threshold)
    append_field(out, "repair", format_double(spec.repair_threshold));
  if (spec.drift_band != defaults.drift_band)
    append_field(out, "band", format_double(spec.drift_band));
  if (!spec.skip.empty()) {
    std::string joined;
    for (const std::uint64_t index : spec.skip) {
      if (!joined.empty()) joined += '.';
      joined += std::to_string(index);
    }
    append_field(out, "skip", joined);
  }
  return out.empty() ? "default" : out;
}

SoakSpec parse_soak_spec(const std::string& text) {
  SoakSpec spec;
  if (text.empty() || text == "default") return spec;
  std::stringstream stream(text);
  std::string pair;
  while (std::getline(stream, pair, ',')) {
    const std::size_t eq = pair.find('=');
    FDLSP_REQUIRE(eq != std::string::npos,
                  "soak spec entries must be key=value: " + pair);
    const std::string key = pair.substr(0, eq);
    const std::string value = pair.substr(eq + 1);
    const auto as_double = [&value, &key]() {
      char* end = nullptr;
      const double parsed = std::strtod(value.c_str(), &end);
      FDLSP_REQUIRE(end != nullptr && *end == '\0',
                    "bad numeric value for soak key " + key + ": " + value);
      return parsed;
    };
    const auto as_u64 = [&value, &key]() {
      char* end = nullptr;
      const unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
      FDLSP_REQUIRE(end != nullptr && *end == '\0',
                    "bad integer value for soak key " + key + ": " + value);
      return static_cast<std::uint64_t>(parsed);
    };
    if (key == "seed") {
      spec.seed = as_u64();
    } else if (key == "n") {
      spec.n = static_cast<std::size_t>(as_u64());
    } else if (key == "events") {
      spec.events = as_u64();
    } else if (key == "family") {
      spec.family = value;
    } else if (key == "density") {
      spec.density = as_double();
    } else if (key == "side") {
      spec.side = as_double();
    } else if (key == "radius") {
      spec.radius = as_double();
    } else if (key == "alive") {
      spec.alive_fraction = as_double();
    } else if (key == "step") {
      spec.move_step = as_double();
    } else if (key == "join") {
      spec.join_weight = as_double();
    } else if (key == "leave") {
      spec.leave_weight = as_double();
    } else if (key == "move") {
      spec.move_weight = as_double();
    } else if (key == "down") {
      spec.link_down_weight = as_double();
    } else if (key == "up") {
      spec.link_up_weight = as_double();
    } else if (key == "repair") {
      spec.repair_threshold = as_double();
    } else if (key == "band") {
      spec.drift_band = as_double();
    } else if (key == "skip") {
      std::stringstream indices(value);
      std::string index;
      while (std::getline(indices, index, '.')) {
        char* end = nullptr;
        const unsigned long long parsed =
            std::strtoull(index.c_str(), &end, 10);
        FDLSP_REQUIRE(end != nullptr && *end == '\0' && !index.empty(),
                      "bad skip index in soak spec: " + index);
        spec.skip.push_back(static_cast<std::uint64_t>(parsed));
      }
    } else {
      FDLSP_REQUIRE(false, "unknown soak spec key: " + key);
    }
  }
  return spec;
}

}  // namespace fdlsp
