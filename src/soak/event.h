// Deterministic topology-event streams for the continuous-operation soak
// harness (the "scheduling as a service" pipeline of the ROADMAP).
//
// A SoakSpec is the churn analogue of a FaultSpec (sim/fault.h): a compact,
// value-comparable recipe whose every event is a pure function of
// (seed, event index) — no generator state is shared between events, so a
// soak run is replayable from the spec string alone, an arbitrary subset of
// event indices can be skipped without changing the meaning of the rest
// (which is what makes event-stream shrinking well-defined), and two runs
// with the same spec produce byte-identical event logs regardless of thread
// count.
//
// Event classes (Herman & Tixeuil's self-stabilization regime: correctness
// over an unbounded stream, not a single run):
//   * join      — a dead node comes (back) up at a hashed plan position.
//   * leave     — an alive node fail-stops; its links vanish.
//   * move      — mobility: an alive node advances one waypoint step over
//                 the plan coordinates (ns-2 self-organized-TDMA style);
//                 links re-derive from the unit-disk radius.
//   * link_down — one present link is forced down (interference).
//   * link_up   — one forced-down link is restored.
//
// The draws are pure; the *meaning* of an event (which node joins, which
// link drops) is a deterministic function of the draws and the topology
// state the preceding non-skipped events produced.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace fdlsp {

/// The topology-event classes of the churn grammar.
enum class SoakEventKind { kJoin, kLeave, kMove, kLinkDown, kLinkUp };

/// Event-class name as printed in event logs and spec strings
/// ("join", "leave", "move", "link_down", "link_up").
std::string soak_event_name(SoakEventKind kind);

/// Pure-data description of one soak run. Value-comparable so shrunk soak
/// cases can be tested for fixpoints (the shrink_fault_case convention).
struct SoakSpec {
  std::uint64_t seed = 1;      ///< drives every event draw
  std::size_t n = 64;          ///< node-id universe (dead nodes stay dense)
  std::uint64_t events = 1000; ///< stream length

  /// Seed-topology family: "udg" (default; geometric, mobility enabled) or
  /// one of the scenario families "gnm" / "tree" / "grid" / "ring" / "star"
  /// (combinatorial; a move event rewires instead of relocating).
  std::string family = "udg";
  double density = 0.5;  ///< density knob for the gnm family (unused else)

  double side = 7.5;            ///< UDG plan side (absolute coordinates)
  double radius = 1.0;          ///< UDG transmission radius
  double alive_fraction = 0.9;  ///< initially-alive fraction of the universe
  double move_step = 0.5;       ///< waypoint step per move, × radius

  /// Relative event-mix weights. A zero weight disarms the class (the
  /// shrinker exploits this); at least one weight must stay positive.
  double join_weight = 1.0;
  double leave_weight = 1.0;
  double move_weight = 4.0;
  double link_down_weight = 1.0;
  double link_up_weight = 1.0;

  /// Default cost-model knobs (soak/driver.h): recompute when the dirty
  /// fraction exceeds `repair_threshold`, or when the transferred span
  /// drifts past `drift_band` × the instance-tight Lemma-6 bound.
  double repair_threshold = 0.2;
  double drift_band = 1.5;

  /// Event indices removed by the shrinker, ascending. Skipped events are
  /// never applied; all other indices keep their draws.
  std::vector<std::uint64_t> skip;

  friend bool operator==(const SoakSpec&, const SoakSpec&) = default;
};

/// Stateless mix of (seed, stream, index) -> 64 uniform bits, the FaultPlan
/// hashing discipline. Distinct stream tags keep per-purpose draws
/// independent even when indices collide.
std::uint64_t soak_hash(std::uint64_t seed, std::uint64_t stream,
                        std::uint64_t index);

/// The hash mapped into [0, 1).
double soak_unit(std::uint64_t hash);

/// Compact key=value form of a spec, e.g.
///   "seed=7,n=200,events=5000,move=8,step=0.25,skip=3.17.90"
/// Only non-default fields are printed; an all-default spec formats as
/// "default". The string is the value of the --soak= replay flag and
/// round-trips through parse_soak_spec.
std::string format_soak_spec(const SoakSpec& spec);

/// Parses the format_soak_spec form ("default" or comma-separated key=value
/// pairs; skip indices are dot-separated). Unknown keys raise contract_error
/// so repro typos fail loudly.
SoakSpec parse_soak_spec(const std::string& text);

}  // namespace fdlsp
