#include "soak/driver.h"

#include <algorithm>

#include "algos/dist_repair.h"
#include "algos/repair.h"
#include "coloring/checker.h"
#include "support/check.h"
#include "support/timer.h"

namespace fdlsp {
namespace {

// Stream tag for per-event engine seeds (distinct from the topology tags
// 0x51–0x59 in topology.cpp — all draws share one soak_hash keyspace).
constexpr std::uint64_t kStreamEngine = 0x5A;

/// Arcs over edges incident to the distance-2 ball of `touched` (sorted,
/// deduplicated). A superset of every arc the event's repair may change.
std::vector<ArcId> dirty_ball_arcs(const Graph& graph,
                                   std::span<const NodeId> touched) {
  std::vector<char> in_ball(graph.num_nodes(), 0);
  std::vector<NodeId> frontier;
  for (const NodeId v : touched) {
    if (!in_ball[v]) {
      in_ball[v] = 1;
      frontier.push_back(v);
    }
  }
  std::vector<NodeId> ball = frontier;
  std::vector<NodeId> next;
  for (int hop = 0; hop < 2; ++hop) {
    next.clear();
    for (const NodeId v : frontier) {
      for (const NeighborEntry& entry : graph.neighbors(v)) {
        if (!in_ball[entry.to]) {
          in_ball[entry.to] = 1;
          next.push_back(entry.to);
        }
      }
    }
    ball.insert(ball.end(), next.begin(), next.end());
    std::swap(frontier, next);
  }
  std::vector<ArcId> arcs;
  for (const NodeId v : ball) {
    for (const NeighborEntry& entry : graph.neighbors(v)) {
      arcs.push_back(static_cast<ArcId>(entry.edge << 1));
      arcs.push_back(static_cast<ArcId>((entry.edge << 1) | 1u));
    }
  }
  std::sort(arcs.begin(), arcs.end());
  arcs.erase(std::unique(arcs.begin(), arcs.end()), arcs.end());
  return arcs;
}

/// repair_schedule restricted to the ball. Identical output to the full
/// pass: a transferred schedule was feasible on the old topology, so its
/// same-color clashes all sit on new conflicts, whose arcs have an endpoint
/// within distance 1 of a touched node — the full pass clears and colors
/// only ball arcs, in the same ascending order as this restriction.
std::size_t local_repair(const ConflictIndex& index,
                         std::span<const ArcId> ball_arcs,
                         ArcColoring& coloring) {
  for (const ArcId a : ball_arcs) {
    if (!coloring.is_colored(a)) continue;
    const Color c = coloring.color(a);
    for (const ArcId b : index.conflicts(a)) {
      if (b >= a) break;  // rows are sorted; only lower ids matter
      if (coloring.color(b) == c) {
        coloring.clear(a);
        break;
      }
    }
  }
  ConflictScratch scratch(index);
  std::size_t recolored = 0;
  for (const ArcId a : ball_arcs) {
    if (coloring.is_colored(a)) continue;
    coloring.set(a, scratch.smallest_feasible_color(coloring, a));
    ++recolored;
  }
  return recolored;
}

}  // namespace

std::string soak_action_name(SoakAction action) {
  return action == SoakAction::kRepair ? "repair" : "recompute";
}

SoakAction default_soak_cost(const SoakCostContext& context) {
  FDLSP_REQUIRE(context.spec != nullptr, "cost context is missing its spec");
  const SoakSpec& spec = *context.spec;
  if (static_cast<double>(context.dirty_arcs) >
      spec.repair_threshold * static_cast<double>(context.num_arcs))
    return SoakAction::kRecompute;
  if (static_cast<double>(context.span_before) >
      spec.drift_band * static_cast<double>(context.bound))
    return SoakAction::kRecompute;
  return SoakAction::kRepair;
}

std::string format_soak_record(const SoakEventRecord& record) {
  std::string out = "i=" + std::to_string(record.index);
  out += " kind=" + soak_event_name(record.kind);
  out += " node=" + std::to_string(record.primary);
  if (record.secondary != kNoNode)
    out += " peer=" + std::to_string(record.secondary);
  out += " action=" + soak_action_name(record.action);
  if (record.fallback) out += "+fallback";
  out += " changed=" + std::to_string(record.changed_edges);
  out += " recolored=" + std::to_string(record.recolored_arcs);
  out += " slots=" + std::to_string(record.num_slots);
  return out;
}

std::string format_soak_log(const std::vector<SoakEventRecord>& log) {
  std::string out;
  for (const SoakEventRecord& record : log) {
    out += format_soak_record(record);
    out += '\n';
  }
  return out;
}

double soak_percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  return values[lo] +
         (values[hi] - values[lo]) * (rank - static_cast<double>(lo));
}

SoakDriver::SoakDriver(const SoakSpec& spec, SoakOptions options)
    : spec_(spec),
      options_(std::move(options)),
      skip_(spec_.skip),
      topo_(spec_),
      graph_(topo_.graph()) {
  if (!options_.cost_model) options_.cost_model = default_soak_cost;
  std::sort(skip_.begin(), skip_.end());
  const ArcView view(graph_);
  index_.emplace(view);
  // Initial schedule: a full recompute over the seed topology. The engine
  // seed index sits past the stream so it collides with no event's seed.
  Scheduled initial =
      schedule(view, ArcColoring(view.num_arcs()), {}, SoakAction::kRecompute,
               soak_hash(spec_.seed, kStreamEngine, spec_.events));
  coloring_ = std::move(initial.coloring);
  stats_.max_slots = coloring_.color_span();
}

SoakDriver::Scheduled SoakDriver::schedule(const ArcView& view,
                                           ArcColoring stale,
                                           std::span<const ArcId> ball_arcs,
                                           SoakAction action,
                                           std::uint64_t event_seed) {
  Scheduled out;
  if (options_.distributed) {
    DistRepairResult dist = run_distributed_repair(
        view.graph(), stale, event_seed, options_.max_rounds, options_.trace,
        options_.faults, options_.reliable, options_.pool, options_.shards);
    out.coloring = std::move(dist.coloring);
    if (!dist.completed || !out.coloring.complete() ||
        find_violation(view, out.coloring, &*index_).has_value()) {
      // Crash-recovery: a faulted radio left the schedule partial or
      // conflicting — finish the event with a centralized repair of
      // whatever it produced.
      out.fallback = true;
      out.coloring =
          repair_schedule(view, std::move(out.coloring), &*index_).coloring;
    }
    return out;
  }
  if (action == SoakAction::kRepair) {
    local_repair(*index_, ball_arcs, stale);
    out.coloring = std::move(stale);
  } else {
    out.coloring =
        repair_schedule(view, ArcColoring(view.num_arcs()), &*index_).coloring;
  }
  return out;
}

const SoakEventRecord& SoakDriver::step(std::uint64_t index) {
  const Graph old_graph = std::move(graph_);
  const DynamicTopology::Applied applied = topo_.apply(index);
  graph_ = topo_.graph();

  SoakEventRecord record;
  record.index = index;
  record.kind = applied.kind;
  record.primary = applied.primary;
  record.secondary = applied.secondary;

  // One merge over the two lexicographically sorted edge lists yields both
  // the symmetric difference (-> touched endpoints) and the O(m) color
  // transfer (surviving edges keep their colors, arc orientation and all).
  const std::span<const Edge> old_edges = old_graph.edges();
  const std::span<const Edge> new_edges = graph_.edges();
  ArcColoring transferred(2 * graph_.num_edges());
  const auto lex_less = [](const Edge& a, const Edge& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  };
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < old_edges.size() || j < new_edges.size()) {
    const bool take_old =
        j == new_edges.size() ||
        (i < old_edges.size() && lex_less(old_edges[i], new_edges[j]));
    const bool take_new =
        !take_old &&
        (i == old_edges.size() || lex_less(new_edges[j], old_edges[i]));
    if (take_old || take_new) {
      const Edge& e = take_old ? old_edges[i] : new_edges[j];
      record.touched.push_back(e.u);
      record.touched.push_back(e.v);
      ++record.changed_edges;
      ++(take_old ? i : j);
    } else {
      const auto old_arc = static_cast<ArcId>(i << 1);
      const auto new_arc = static_cast<ArcId>(j << 1);
      if (coloring_.is_colored(old_arc))
        transferred.set(new_arc, coloring_.color(old_arc));
      if (coloring_.is_colored(old_arc | 1u))
        transferred.set(new_arc | 1u, coloring_.color(old_arc | 1u));
      ++i;
      ++j;
    }
  }
  std::sort(record.touched.begin(), record.touched.end());
  record.touched.erase(
      std::unique(record.touched.begin(), record.touched.end()),
      record.touched.end());

  Timer timer;
  if (record.changed_edges == 0) {
    // The link set is untouched (an isolated node churned or moved within
    // its radius slack): schedule and index carry over verbatim.
    record.num_slots = coloring_.color_span();
    ++stats_.noop_events;
  } else {
    const ArcView view(graph_);
    // Construct before emplace: the incremental build reads the old index.
    ConflictIndex next(view, old_graph, *index_, record.touched);
    index_.emplace(std::move(next));

    const std::vector<ArcId> ball = dirty_ball_arcs(graph_, record.touched);
    SoakCostContext context;
    context.num_arcs = view.num_arcs();
    context.changed_edges = record.changed_edges;
    context.dirty_arcs = ball.size();
    context.span_before = coloring_.color_span();
    context.bound = index_->max_conflict_degree() + 1;
    context.spec = &spec_;
    record.action = options_.cost_model(context);

    ArcColoring stale = record.action == SoakAction::kRepair
                            ? transferred
                            : ArcColoring(view.num_arcs());
    Scheduled scheduled =
        schedule(view, std::move(stale), ball, record.action,
                 soak_hash(spec_.seed, kStreamEngine, index));
    record.fallback = scheduled.fallback;
    for (std::size_t a = 0; a < view.num_arcs(); ++a) {
      if (scheduled.coloring.color(static_cast<ArcId>(a)) !=
          transferred.color(static_cast<ArcId>(a)))
        record.changed_arcs.push_back(static_cast<ArcId>(a));
    }
    record.recolored_arcs = record.changed_arcs.size();
    coloring_ = std::move(scheduled.coloring);
    record.num_slots = coloring_.color_span();
    if (record.action == SoakAction::kRepair)
      ++stats_.repairs;
    else
      ++stats_.recomputes;
  }
  record.micros = timer.seconds() * 1e6;

  ++stats_.events;
  if (record.fallback) ++stats_.fallbacks;
  stats_.total_recolored += record.recolored_arcs;
  stats_.max_recolored = std::max(stats_.max_recolored, record.recolored_arcs);
  stats_.max_slots = std::max(stats_.max_slots, record.num_slots);
  stats_.event_micros.push_back(record.micros);
  log_.push_back(std::move(record));
  return log_.back();
}

void SoakDriver::run(const Observer& observer) {
  for (std::uint64_t i = 0; i < spec_.events; ++i) {
    if (std::binary_search(skip_.begin(), skip_.end(), i)) continue;
    const SoakEventRecord& record = step(i);
    if (observer && !observer(*this, record)) return;
  }
}

}  // namespace fdlsp
