#include "soak/topology.h"

#include <algorithm>
#include <cmath>

#include "graph/generators.h"
#include "support/check.h"
#include "support/rng.h"

namespace fdlsp {
namespace {

// Per-purpose stream tags (the FaultPlan hashing discipline): draws for
// distinct decisions stay independent even when event indices coincide.
constexpr std::uint64_t kStreamKind = 0x51;
constexpr std::uint64_t kStreamInitAlive = 0x52;
constexpr std::uint64_t kStreamInitPos = 0x53;
constexpr std::uint64_t kStreamInitWaypoint = 0x54;
constexpr std::uint64_t kStreamInitGraph = 0x55;
constexpr std::uint64_t kStreamPick = 0x56;
constexpr std::uint64_t kStreamJoinPos = 0x57;
constexpr std::uint64_t kStreamWaypoint = 0x58;
constexpr std::uint64_t kStreamRewire = 0x59;

// The alive floor: leave events refuse to shrink the network below this, so
// a move target always exists and the schedule never degenerates to nothing.
constexpr std::size_t kMinAlive = 4;

bool edge_less(const Edge& a, const Edge& b) {
  return a.u != b.u ? a.u < b.u : a.v < b.v;
}

Edge make_link(NodeId u, NodeId v) {
  return {std::min(u, v), std::max(u, v)};
}

void insert_sorted(std::vector<NodeId>& row, NodeId w) {
  row.insert(std::lower_bound(row.begin(), row.end(), w), w);
}

void erase_sorted(std::vector<NodeId>& row, NodeId w) {
  const auto it = std::lower_bound(row.begin(), row.end(), w);
  FDLSP_ASSERT(it != row.end() && *it == w, "link row entry missing");
  row.erase(it);
}

/// Seed link set for the combinatorial families, mirroring the
/// verify/scenario materialize semantics where the node count allows it.
Graph seed_graph(const SoakSpec& spec) {
  Rng rng(soak_hash(spec.seed, kStreamInitGraph, 0));
  const std::size_t n = spec.n;
  if (spec.family == "gnm") {
    const std::size_t max_edges = n * (n - 1) / 2;
    const auto m = static_cast<std::size_t>(
        std::floor(spec.density * static_cast<double>(max_edges)));
    return generate_gnm(n, std::min(m, max_edges), rng);
  }
  if (spec.family == "tree") return generate_random_tree(n, rng);
  if (spec.family == "ring")
    return n >= 3 ? generate_cycle(n) : generate_path(n);
  if (spec.family == "star") return generate_star(n);
  FDLSP_ASSERT(spec.family == "grid", "unexpected combinatorial family");
  // Partial rows×cols lattice over exactly n nodes (scenario's generate_grid
  // would mint rows*cols >= n nodes, which would break the fixed universe).
  auto rows = static_cast<std::size_t>(std::sqrt(static_cast<double>(n)));
  if (rows == 0) rows = 1;
  const std::size_t cols = (n + rows - 1) / rows;
  GraphBuilder builder(n);
  for (std::size_t id = 0; id < n; ++id) {
    if (id % cols + 1 < cols && id + 1 < n)
      builder.add_edge(static_cast<NodeId>(id), static_cast<NodeId>(id + 1));
    if (id + cols < n)
      builder.add_edge(static_cast<NodeId>(id),
                       static_cast<NodeId>(id + cols));
  }
  return builder.build();
}

}  // namespace

DynamicTopology::DynamicTopology(const SoakSpec& spec) : spec_(spec) {
  FDLSP_REQUIRE(spec_.n >= kMinAlive, "soak universe needs at least 4 nodes");
  FDLSP_REQUIRE(spec_.family == "udg" || spec_.family == "gnm" ||
                    spec_.family == "tree" || spec_.family == "grid" ||
                    spec_.family == "ring" || spec_.family == "star",
                "unknown soak family: " + spec_.family);
  FDLSP_REQUIRE(spec_.join_weight >= 0.0 && spec_.leave_weight >= 0.0 &&
                    spec_.move_weight >= 0.0 &&
                    spec_.link_down_weight >= 0.0 &&
                    spec_.link_up_weight >= 0.0,
                "soak event weights must be non-negative");
  FDLSP_REQUIRE(spec_.join_weight + spec_.leave_weight + spec_.move_weight +
                        spec_.link_down_weight + spec_.link_up_weight >
                    0.0,
                "soak event weights must not all be zero");
  FDLSP_REQUIRE(spec_.alive_fraction >= 0.0 && spec_.alive_fraction <= 1.0,
                "alive fraction must lie in [0, 1]");
  geometric_ = spec_.family == "udg";
  if (geometric_) {
    FDLSP_REQUIRE(spec_.side > 0.0 && spec_.radius > 0.0,
                  "udg soak needs positive side and radius");
    FDLSP_REQUIRE(spec_.move_step >= 0.0, "move step must be non-negative");
  }

  alive_.assign(spec_.n, 0);
  adj_.assign(spec_.n, {});
  pos_.assign(spec_.n, Point{});
  waypoint_.assign(spec_.n, Point{});
  for (std::size_t v = 0; v < spec_.n; ++v) {
    if (soak_unit(soak_hash(spec_.seed, kStreamInitAlive, v)) <
        spec_.alive_fraction) {
      alive_[v] = 1;
      ++num_alive_;
    }
  }
  // Force the floor so the stream always has something to schedule.
  for (std::size_t v = 0; v < spec_.n && num_alive_ < kMinAlive; ++v) {
    if (!alive_[v]) {
      alive_[v] = 1;
      ++num_alive_;
    }
  }

  if (geometric_) {
    // Cell width side/grid_dim_ >= radius, so the 3×3 neighborhood of a
    // node's cell covers its whole transmission disk.
    grid_dim_ = std::max<std::size_t>(
        1, static_cast<std::size_t>(spec_.side / spec_.radius));
    cells_.assign(grid_dim_ * grid_dim_, {});
    for (std::size_t v = 0; v < spec_.n; ++v) {
      pos_[v] = hashed_point(kStreamInitPos, v);
      waypoint_[v] = hashed_point(kStreamInitWaypoint, v);
      if (alive_[v]) grid_insert(static_cast<NodeId>(v));
    }
    // Re-deriving each alive node's links in turn converges to the full
    // radius relation: later refreshes re-add what they momentarily drop.
    for (std::size_t v = 0; v < spec_.n; ++v)
      if (alive_[v]) refresh_geometric_links(static_cast<NodeId>(v));
  } else {
    const Graph seed = seed_graph(spec_);
    for (const Edge& e : seed.edges())
      if (alive_[e.u] && alive_[e.v]) add_link(e.u, e.v);
  }
  freeze_graph();
}

SoakEventKind DynamicTopology::pick_kind(std::uint64_t index) const {
  const double total = spec_.join_weight + spec_.leave_weight +
                       spec_.move_weight + spec_.link_down_weight +
                       spec_.link_up_weight;
  double r = soak_unit(soak_hash(spec_.seed, kStreamKind, index)) * total;
  if ((r -= spec_.join_weight) < 0.0) return SoakEventKind::kJoin;
  if ((r -= spec_.leave_weight) < 0.0) return SoakEventKind::kLeave;
  if ((r -= spec_.move_weight) < 0.0) return SoakEventKind::kMove;
  if ((r -= spec_.link_down_weight) < 0.0) return SoakEventKind::kLinkDown;
  return SoakEventKind::kLinkUp;
}

DynamicTopology::Applied DynamicTopology::apply(std::uint64_t index) {
  SoakEventKind kind = pick_kind(index);
  // Deterministic fallback: an inapplicable class degrades to a move, which
  // is always applicable (>= kMinAlive nodes stay alive by construction).
  switch (kind) {
    case SoakEventKind::kJoin:
      if (num_alive_ == spec_.n) kind = SoakEventKind::kMove;
      break;
    case SoakEventKind::kLeave:
      if (num_alive_ <= kMinAlive) kind = SoakEventKind::kMove;
      break;
    case SoakEventKind::kLinkDown:
      if (num_links_ == 0) kind = SoakEventKind::kMove;
      break;
    case SoakEventKind::kLinkUp:
      if (down_.empty()) kind = SoakEventKind::kMove;
      break;
    case SoakEventKind::kMove:
      break;
  }
  Applied applied;
  switch (kind) {
    case SoakEventKind::kJoin:
      applied = apply_join(index);
      break;
    case SoakEventKind::kLeave:
      applied = apply_leave(index);
      break;
    case SoakEventKind::kMove:
      applied = apply_move(index);
      break;
    case SoakEventKind::kLinkDown:
      applied = apply_link_down(index);
      break;
    case SoakEventKind::kLinkUp:
      applied = apply_link_up(index);
      break;
  }
  freeze_graph();
  return applied;
}

DynamicTopology::Applied DynamicTopology::apply_join(std::uint64_t index) {
  const std::uint64_t hash = soak_hash(spec_.seed, kStreamPick, index);
  std::uint64_t k = hash % (spec_.n - num_alive_);
  NodeId v = kNoNode;
  for (std::size_t u = 0; u < spec_.n; ++u) {
    if (alive_[u]) continue;
    if (k == 0) {
      v = static_cast<NodeId>(u);
      break;
    }
    --k;
  }
  alive_[v] = 1;
  ++num_alive_;
  if (geometric_) {
    pos_[v] = hashed_point(kStreamJoinPos, index);
    waypoint_[v] = hashed_point(kStreamWaypoint, index);
    grid_insert(v);
    refresh_geometric_links(v);
  } else {
    // Attach at roughly the network's mean degree so joins neither starve
    // nor densify the family over the long horizon.
    const std::size_t average =
        num_links_ == 0
            ? 1
            : std::max<std::size_t>(
                  1, (2 * num_links_ + num_alive_ / 2) / num_alive_);
    rewire_links(v, std::min(average, num_alive_ - 1), index);
  }
  return {SoakEventKind::kJoin, v, kNoNode};
}

DynamicTopology::Applied DynamicTopology::apply_leave(std::uint64_t index) {
  const NodeId v = pick_alive(soak_hash(spec_.seed, kStreamPick, index));
  alive_[v] = 0;
  --num_alive_;
  drop_links_of(v);
  if (geometric_) grid_erase(v);
  std::erase_if(down_, [v](const Edge& e) { return e.u == v || e.v == v; });
  return {SoakEventKind::kLeave, v, kNoNode};
}

DynamicTopology::Applied DynamicTopology::apply_move(std::uint64_t index) {
  const NodeId v = pick_alive(soak_hash(spec_.seed, kStreamPick, index));
  if (geometric_) {
    const double step = spec_.move_step * spec_.radius;
    const Point target = waypoint_[v];
    const double dist = distance(pos_[v], target);
    grid_erase(v);
    if (dist <= step) {
      // Waypoint reached: land on it and draw the next one.
      pos_[v] = target;
      waypoint_[v] = hashed_point(kStreamWaypoint, index);
    } else {
      pos_[v].x += (target.x - pos_[v].x) / dist * step;
      pos_[v].y += (target.y - pos_[v].y) / dist * step;
    }
    grid_insert(v);
    refresh_geometric_links(v);
  } else {
    // Mobility analogue for explicit link sets: rewire v at its old degree.
    const std::size_t degree = std::max<std::size_t>(1, adj_[v].size());
    drop_links_of(v);
    rewire_links(v, std::min(degree, num_alive_ - 1), index);
  }
  return {SoakEventKind::kMove, v, kNoNode};
}

DynamicTopology::Applied DynamicTopology::apply_link_down(
    std::uint64_t index) {
  const std::uint64_t hash = soak_hash(spec_.seed, kStreamPick, index);
  std::uint64_t k = hash % num_links_;
  NodeId u = kNoNode;
  NodeId w = kNoNode;
  for (std::size_t a = 0; a < spec_.n && u == kNoNode; ++a) {
    for (const NodeId b : adj_[a]) {
      if (b <= a) continue;
      if (k == 0) {
        u = static_cast<NodeId>(a);
        w = b;
        break;
      }
      --k;
    }
  }
  remove_link(u, w);
  const Edge e = make_link(u, w);
  down_.insert(std::upper_bound(down_.begin(), down_.end(), e, edge_less), e);
  return {SoakEventKind::kLinkDown, e.u, e.v};
}

DynamicTopology::Applied DynamicTopology::apply_link_up(std::uint64_t index) {
  const std::uint64_t hash = soak_hash(spec_.seed, kStreamPick, index);
  const auto pick = static_cast<std::size_t>(hash % down_.size());
  const Edge e = down_[pick];
  down_.erase(down_.begin() + static_cast<std::ptrdiff_t>(pick));
  // Invariant: forced-down pairs stay both-alive (and in-range in the
  // geometric mode) — stale entries are dropped at the invalidating event.
  if (!has_link(e.u, e.v)) add_link(e.u, e.v);
  return {SoakEventKind::kLinkUp, e.u, e.v};
}

Point DynamicTopology::hashed_point(std::uint64_t stream,
                                    std::uint64_t index) const {
  return {soak_unit(soak_hash(spec_.seed, stream, 2 * index)) * spec_.side,
          soak_unit(soak_hash(spec_.seed, stream, 2 * index + 1)) *
              spec_.side};
}

NodeId DynamicTopology::pick_alive(std::uint64_t hash) const {
  std::uint64_t k = hash % num_alive_;
  for (std::size_t v = 0; v < spec_.n; ++v) {
    if (!alive_[v]) continue;
    if (k == 0) return static_cast<NodeId>(v);
    --k;
  }
  FDLSP_ASSERT(false, "alive pick walked past the population");
  return kNoNode;
}

void DynamicTopology::refresh_geometric_links(NodeId v) {
  drop_links_of(v);
  const Point p = pos_[v];
  const double radius_sq = spec_.radius * spec_.radius;
  const std::size_t cell = grid_cell(p);
  const std::size_t cx = cell % grid_dim_;
  const std::size_t cy = cell / grid_dim_;
  const std::size_t x1 = std::min(cx + 1, grid_dim_ - 1);
  const std::size_t y1 = std::min(cy + 1, grid_dim_ - 1);
  for (std::size_t y = cy == 0 ? 0 : cy - 1; y <= y1; ++y) {
    for (std::size_t x = cx == 0 ? 0 : cx - 1; x <= x1; ++x) {
      for (const NodeId w : cells_[y * grid_dim_ + x]) {
        if (w == v || !alive_[w]) continue;
        if (distance_sq(p, pos_[w]) <= radius_sq && !is_down(v, w))
          add_link(v, w);
      }
    }
  }
  // Forced-down pairs of v that drifted out of range are no longer links at
  // all; drop them so link_up never resurrects an out-of-range edge.
  std::erase_if(down_, [&](const Edge& e) {
    return (e.u == v || e.v == v) &&
           distance_sq(pos_[e.u], pos_[e.v]) > radius_sq;
  });
}

void DynamicTopology::rewire_links(NodeId v, std::size_t degree,
                                   std::uint64_t index) {
  // Bounded hashed probing; skipping self, duplicate, and forced-down
  // targets. Running dry is fine — the node comes up sparser this round.
  const std::size_t attempts = degree * 4 + 8;
  std::size_t added = 0;
  for (std::size_t t = 0; t < attempts && added < degree; ++t) {
    const std::uint64_t hash = soak_hash(
        spec_.seed, kStreamRewire + (static_cast<std::uint64_t>(t) << 8),
        index);
    const NodeId w = pick_alive(hash);
    if (w == v || has_link(v, w) || is_down(v, w)) continue;
    add_link(v, w);
    ++added;
  }
}

void DynamicTopology::drop_links_of(NodeId v) {
  for (const NodeId w : adj_[v]) erase_sorted(adj_[w], v);
  num_links_ -= adj_[v].size();
  adj_[v].clear();
}

void DynamicTopology::add_link(NodeId u, NodeId v) {
  insert_sorted(adj_[u], v);
  insert_sorted(adj_[v], u);
  ++num_links_;
}

void DynamicTopology::remove_link(NodeId u, NodeId v) {
  erase_sorted(adj_[u], v);
  erase_sorted(adj_[v], u);
  --num_links_;
}

bool DynamicTopology::has_link(NodeId u, NodeId v) const {
  return std::binary_search(adj_[u].begin(), adj_[u].end(), v);
}

bool DynamicTopology::is_down(NodeId u, NodeId v) const {
  return std::binary_search(down_.begin(), down_.end(), make_link(u, v),
                            edge_less);
}

void DynamicTopology::grid_insert(NodeId v) {
  cells_[grid_cell(pos_[v])].push_back(v);
}

void DynamicTopology::grid_erase(NodeId v) {
  auto& cell = cells_[grid_cell(pos_[v])];
  const auto it = std::find(cell.begin(), cell.end(), v);
  FDLSP_ASSERT(it != cell.end(), "grid cell entry missing");
  cell.erase(it);
}

std::size_t DynamicTopology::grid_cell(const Point& p) const {
  const double width = spec_.side / static_cast<double>(grid_dim_);
  const auto axis = [&](double coord) {
    const double c = std::floor(coord / width);
    if (c <= 0.0) return std::size_t{0};
    return std::min(static_cast<std::size_t>(c), grid_dim_ - 1);
  };
  return axis(p.y) * grid_dim_ + axis(p.x);
}

void DynamicTopology::freeze_graph() {
  std::vector<std::size_t> offsets(spec_.n + 1, 0);
  for (std::size_t v = 0; v < spec_.n; ++v)
    offsets[v + 1] = offsets[v] + adj_[v].size();
  std::vector<NodeId> flat;
  flat.reserve(offsets.back());
  for (const auto& row : adj_) flat.insert(flat.end(), row.begin(), row.end());
  graph_ = GraphBuilder::build_from_symmetric_csr(spec_.n, offsets, flat);
}

}  // namespace fdlsp
