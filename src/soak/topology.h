// Mutable topology under a deterministic churn stream.
//
// DynamicTopology owns the evolving network the soak driver schedules: a
// fixed dense node-id universe [0, n) in which nodes die and revive, links
// appear and disappear, and (in the geometric mode) nodes move over the UDG
// plan coordinates. After every applied event the current state freezes
// into an immutable Graph via the linear CSR fast path, so the rest of the
// library (repair, ConflictIndex, the oracles) sees the ordinary read-only
// graph type with edge ids sorted lexicographically — which is what keeps
// the incremental ConflictIndex remap monotone.
//
// Two modes share the machinery:
//   * geometric ("udg" family) — node positions are hashed plan points;
//     a link exists iff both endpoints are alive, within the transmission
//     radius, and not forced down. Moves advance waypoints; link churn
//     toggles a forced-down set.
//   * combinatorial (every other family) — the link set is explicit, seeded
//     from the family generator; a move event rewires a node (mobility
//     analogue) instead of relocating it.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/geometry.h"
#include "graph/graph.h"
#include "soak/event.h"

namespace fdlsp {

/// The evolving topology of one soak run.
class DynamicTopology {
 public:
  /// Builds the event-0 state (initial alive set, positions, seed links)
  /// and freezes the initial graph.
  explicit DynamicTopology(const SoakSpec& spec);

  /// Current frozen topology. Dead nodes are present but isolated, so node
  /// ids (and colorings indexed by arc id) stay dense across events.
  const Graph& graph() const noexcept { return graph_; }

  const SoakSpec& spec() const noexcept { return spec_; }

  bool alive(NodeId v) const { return alive_[v] != 0; }
  std::size_t num_alive() const noexcept { return num_alive_; }

  /// Plan coordinates (geometric mode; meaningless but stable otherwise).
  const std::vector<Point>& positions() const noexcept { return pos_; }

  /// Links currently forced down (u < v pairs, ascending).
  const std::vector<Edge>& down_links() const noexcept { return down_; }

  /// One applied event: the class actually executed (a class whose pick set
  /// is empty deterministically falls back to kMove) and the touched nodes.
  struct Applied {
    SoakEventKind kind = SoakEventKind::kMove;
    NodeId primary = kNoNode;
    NodeId secondary = kNoNode;  ///< second endpoint for link events
  };

  /// Applies event `index` of the spec's stream and refreezes the graph.
  /// Deterministic in (spec, sequence of applied indices).
  Applied apply(std::uint64_t index);

 private:
  SoakEventKind pick_kind(std::uint64_t index) const;
  Applied apply_join(std::uint64_t index);
  Applied apply_leave(std::uint64_t index);
  Applied apply_move(std::uint64_t index);
  Applied apply_link_down(std::uint64_t index);
  Applied apply_link_up(std::uint64_t index);

  Point hashed_point(std::uint64_t stream, std::uint64_t index) const;
  NodeId pick_alive(std::uint64_t hash) const;

  /// Re-derives v's link set (geometric: radius query; combinatorial:
  /// rewire to `degree` hashed targets) and patches both endpoints'
  /// adjacency rows. Also drops invalidated forced-down entries.
  void refresh_geometric_links(NodeId v);
  void rewire_links(NodeId v, std::size_t degree, std::uint64_t index);
  void drop_links_of(NodeId v);
  void add_link(NodeId u, NodeId v);
  void remove_link(NodeId u, NodeId v);
  bool has_link(NodeId u, NodeId v) const;
  bool is_down(NodeId u, NodeId v) const;

  void grid_insert(NodeId v);
  void grid_erase(NodeId v);
  std::size_t grid_cell(const Point& p) const;

  void freeze_graph();

  SoakSpec spec_;
  bool geometric_ = true;
  std::vector<Point> pos_;       ///< per node (geometric mode)
  std::vector<Point> waypoint_;  ///< per node mobility target
  std::vector<char> alive_;
  std::size_t num_alive_ = 0;
  std::vector<std::vector<NodeId>> adj_;  ///< live links, rows sorted
  std::size_t num_links_ = 0;
  std::vector<Edge> down_;  ///< forced-down links, ascending
  std::size_t grid_dim_ = 1;              ///< cells per plan side
  std::vector<std::vector<NodeId>> cells_;  ///< node buckets (geometric)
  Graph graph_;
};

}  // namespace fdlsp
