// Message type exchanged by simulated sensor nodes.
//
// Payloads are small integer vectors: every quantity the paper's algorithms
// exchange (ids, random draws, arc colors, TTLs) fits, and a single concrete
// type keeps both engines simple. Tags namespace the protocol per algorithm.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/types.h"

namespace fdlsp {

/// One network message. `from` is filled in by the engine on send.
struct Message {
  NodeId from = kNoNode;
  std::int32_t tag = 0;
  std::vector<std::int64_t> data;
};

}  // namespace fdlsp
