// Message type exchanged by simulated sensor nodes.
//
// Payloads are small integer sequences: every quantity the paper's
// algorithms exchange (ids, random draws, arc colors, TTLs) fits, and a
// single concrete type keeps both engines simple. Tags namespace the
// protocol per algorithm. The payload is a SmallPayload (support/
// small_payload.h): up to four words travel inline with the message, so
// the common send/deliver path performs no heap allocation at all — only
// bulk knowledge floods and reliable-wrapper frames spill.
#pragma once

#include <cstdint>

#include "graph/types.h"
#include "support/small_payload.h"

namespace fdlsp {

/// One network message. `from` is filled in by the engine on send.
struct Message {
  NodeId from = kNoNode;
  std::int32_t tag = 0;
  SmallPayload data;
};

}  // namespace fdlsp
