#include "sim/reliable.h"

#include <algorithm>
#include <utility>

#include "support/check.h"
#include "support/rng.h"

namespace fdlsp {

namespace {

// Frame payload layout: [checksum, seq, inner_round, orig_tag, payload...].
// The async wrapper has no rounds and stores 0 in the inner_round slot.
constexpr std::size_t kHeaderWords = 4;

// Ack and heartbeat payload layout: [checksum, cumulative_ack].
constexpr std::size_t kAckWords = 2;

/// Checksum over a wire message's payload past the checksum slot, keyed by
/// the directed channel so a frame cannot be mistaken for one from another
/// peer. Corruption flips exactly one payload word (sim/fault.h), which
/// this detects with overwhelming probability; a corrupted message is
/// silently discarded and the retransmission path treats it as a drop.
std::int64_t wire_checksum(NodeId from, NodeId to, const std::int64_t* words,
                           std::size_t count) {
  std::uint64_t state = 0x72656c6961626c65ULL ^
                        ((static_cast<std::uint64_t>(from) << 32) |
                         static_cast<std::uint64_t>(to));
  std::uint64_t h = splitmix64(state);
  for (std::size_t i = 0; i < count; ++i) {
    state ^= h ^ static_cast<std::uint64_t>(words[i]);
    h = splitmix64(state);
  }
  return static_cast<std::int64_t>(h >> 1);
}

/// True iff the stored checksum matches the payload.
bool checksum_ok(NodeId from, NodeId to, const Message& message) {
  return message.data[0] ==
         wire_checksum(from, to, message.data.data() + 1,
                       message.data.size() - 1);
}

Message make_frame(NodeId from, NodeId to, std::int64_t seq,
                   std::int64_t inner_round, const Message& original) {
  Message frame;
  frame.from = from;
  frame.tag = kReliableFrameTag;
  frame.data.reserve(kHeaderWords + original.data.size());
  frame.data.push_back(0);  // checksum slot
  frame.data.push_back(seq);
  frame.data.push_back(inner_round);
  frame.data.push_back(original.tag);
  frame.data.insert(frame.data.end(), original.data.begin(),
                    original.data.end());
  frame.data[0] =
      wire_checksum(from, to, frame.data.data() + 1, frame.data.size() - 1);
  return frame;
}

Message unframe(const Message& frame) {
  Message original;
  original.from = frame.from;
  original.tag = static_cast<std::int32_t>(frame.data[3]);
  original.data.assign(frame.data.begin() +
                           static_cast<std::ptrdiff_t>(kHeaderWords),
                       frame.data.end());
  return original;
}

/// Buffer-reusing variants for the async wrapper's recycling pool: the
/// destination's spilled capacity survives, so a recycled Message frames or
/// unframes without touching the allocator.
void make_frame_into(Message& frame, NodeId from, NodeId to, std::int64_t seq,
                     std::int64_t inner_round, const Message& original) {
  frame.from = from;
  frame.tag = kReliableFrameTag;
  frame.data.clear();
  frame.data.reserve(kHeaderWords + original.data.size());
  frame.data.push_back(0);  // checksum slot
  frame.data.push_back(seq);
  frame.data.push_back(inner_round);
  frame.data.push_back(original.tag);
  frame.data.insert(frame.data.end(), original.data.begin(),
                    original.data.end());
  frame.data[0] =
      wire_checksum(from, to, frame.data.data() + 1, frame.data.size() - 1);
}

void unframe_into(Message& original, const Message& frame) {
  original.from = frame.from;
  original.tag = static_cast<std::int32_t>(frame.data[3]);
  original.data.assign(frame.data.begin() +
                           static_cast<std::ptrdiff_t>(kHeaderWords),
                       frame.data.end());
}

Message make_ack(NodeId from, NodeId to, std::int64_t cumulative) {
  Message ack;
  ack.from = from;
  ack.tag = kReliableAckTag;
  ack.data = {0, cumulative};
  ack.data[0] = wire_checksum(from, to, ack.data.data() + 1, 1);
  return ack;
}

Message make_heartbeat(NodeId from, NodeId to, std::int64_t cumulative) {
  Message probe;
  probe.from = from;
  probe.tag = kReliableHeartbeatTag;
  probe.data = {0, cumulative};
  probe.data[0] = wire_checksum(from, to, probe.data.data() + 1, 1);
  return probe;
}

/// Deterministic per-(self, peer, attempt) jitter bits: backoff pacing must
/// desynchronize neighbors without touching any RNG stream the algorithms
/// own.
std::uint64_t jitter_hash(NodeId self, NodeId peer, std::size_t attempt) {
  std::uint64_t state = (static_cast<std::uint64_t>(self) << 32) ^
                        static_cast<std::uint64_t>(peer) ^
                        (static_cast<std::uint64_t>(attempt) *
                         0x9e3779b97f4a7c15ULL);
  return splitmix64(state);
}

/// Worst-case failed deliveries on ONE directed channel: the i.i.d.+PRR cap
/// plus the per-edge burst budget when bursts are armed.
std::size_t one_way_budget(const FaultSpec& spec) {
  std::size_t budget = static_cast<std::size_t>(spec.max_losses_per_channel);
  if (spec.burst_rate > 0.0)
    budget += static_cast<std::size_t>(spec.burst_cap);
  return budget;
}

/// Worst-case rounds/time a channel can sit inside down windows: one churn
/// window plus every region disc that can cover the edge.
std::size_t stall_bound(const FaultSpec& spec) {
  std::size_t stall = 0;
  if (spec.link_down_fraction > 0.0)
    stall += static_cast<std::size_t>(spec.link_down_duration) + 2;
  if (spec.region_count > 0)
    stall += static_cast<std::size_t>(
                 static_cast<double>(spec.region_count) *
                 spec.region_duration) +
             2;
  return stall;
}

}  // namespace

// ---------------------------------------------------------------------------
// Synchronous wrapper: round dilation.
// ---------------------------------------------------------------------------

namespace {

// Adaptive sync pacing: retransmit intervals grow 2 -> 4 outer rounds plus
// one hashed jitter round, so the worst spacing between attempts is 5.
constexpr std::size_t kSyncBaseInterval = 2;
constexpr std::size_t kSyncMaxInterval = 4;
constexpr std::size_t kSyncWorstSpacing = kSyncMaxInterval + 1;
// Heartbeat cadence while a peer is suspected.
constexpr std::size_t kSyncProbeInterval = 4;

}  // namespace

std::size_t ReliableSyncProgram::round_dilation(const FaultSpec& spec,
                                                TransportTuning tuning) {
  const std::size_t one_way = one_way_budget(spec);
  const std::size_t stall = stall_bound(spec);
  if (tuning == TransportTuning::kFixed) {
    // Go-back-N retransmits every other outer round; each failed attempt
    // consumes at least one unit of the frame channel's loss budget, so at
    // most one_way+1 attempts are needed — frames land within 2*one_way+2
    // outer rounds. Down windows can additionally stall the channel for
    // their whole duration. The +4 margin covers the delivery round offset
    // and keeps the window even.
    return 2 * one_way + 4 + stall;
  }
  // Adaptive pacing spaces attempts up to kSyncWorstSpacing rounds apart,
  // and each failed attempt still consumes frame-channel loss budget, so
  // delivery needs at most kSyncWorstSpacing*(one_way+1) rounds plus
  // margin. Under churn/outage plans one suspect/probe/retrust cycle can
  // additionally shelve a frame: the stall itself, plus a probe phase in
  // which every heartbeat or its reply may burn remaining round-trip loss
  // budget at the probe cadence. Loss-only plans can never reach
  // kSuspected (the suspicion threshold exceeds the whole round-trip loss
  // budget), so they pay no detector term.
  std::size_t dilation = kSyncWorstSpacing * (one_way + 1) + 12;
  if (stall > 0)
    dilation += stall + kSyncProbeInterval * (2 * one_way + 2) + 8;
  dilation += dilation % 2;  // keep the window even
  return dilation;
}

ReliableSyncProgram::ReliableSyncProgram(std::unique_ptr<SyncProgram> inner,
                                         const FaultSpec& spec,
                                         TransportTuning tuning)
    : inner_(std::move(inner)),
      tuning_(tuning),
      dilation_(round_dilation(spec, tuning)) {
  FDLSP_REQUIRE(inner_ != nullptr, "reliable wrapper needs a program");
  // A live peer acks every delivered frame within two rounds, so failed
  // attempts past the *round-trip* loss budget cannot be explained by
  // bounded loss alone — only by a down window or a dead peer. Probing must
  // outlast the longest legitimate outage plus the loss budget before the
  // verdict hardens to dead.
  const std::size_t round_trip = 2 * one_way_budget(spec);
  suspect_after_ = round_trip + 4;
  probe_budget_ = stall_bound(spec) / kSyncProbeInterval + round_trip + 4;
}

ReliableSyncProgram::PeerState& ReliableSyncProgram::peer_state(NodeId peer) {
  auto it = std::lower_bound(
      peers_.begin(), peers_.end(), peer,
      [](const PeerState& state, NodeId id) { return state.peer < id; });
  if (it == peers_.end() || it->peer != peer) {
    it = peers_.insert(it, PeerState{});
    it->peer = peer;
  }
  return *it;
}

bool ReliableSyncProgram::channels_idle() const {
  for (const PeerState& state : peers_)
    if (!state.pending.empty() || !state.parked.empty() ||
        !state.buffered.empty())
      return false;
  return true;
}

void ReliableSyncProgram::heard(PeerState& state, std::size_t round) {
  state.fails = 0;
  if (state.health != PeerHealth::kSuspected) return;
  // Recovery: the peer answered a probe (or simply spoke) — re-trust it and
  // resume the parked traffic on this round's sweep.
  state.health = PeerHealth::kTrusted;
  ++stats_.retrusts;
  state.pending = std::move(state.parked);
  state.parked.clear();
  state.next_retx = round;
}

void ReliableSyncProgram::handle_frame(SyncContext& ctx,
                                       const Message& message) {
  FDLSP_REQUIRE(message.data.size() >= kHeaderWords,
                "reliable frame too short");
  if (!checksum_ok(message.from, ctx.self(), message)) return;  // corrupted
  PeerState& state = peer_state(message.from);
  heard(state, ctx.round());
  if (std::find(ack_due_.begin(), ack_due_.end(), message.from) ==
      ack_due_.end())
    ack_due_.push_back(message.from);
  const std::int64_t seq = message.data[1];
  if (seq <= state.received) return;      // duplicate: just re-ack
  if (seq > state.received + 1) return;   // gap: go-back-N will resend
  state.received = seq;
  state.buffered.push_back(BufferedFrame{seq, message.data[2],
                                         unframe(message)});
}

void ReliableSyncProgram::handle_ack(const Message& message,
                                     std::size_t round) {
  // Size and checksum already verified at the call site.
  PeerState& state = peer_state(message.from);
  heard(state, round);
  const std::int64_t cumulative = message.data[1];
  if (cumulative <= state.acked) return;
  state.acked = cumulative;
  std::erase_if(state.pending, [cumulative](const PendingFrame& frame) {
    return frame.seq <= cumulative;
  });
}

void ReliableSyncProgram::capture_send(SyncContext& ctx, NodeId to,
                                       Message message) {
  PeerState& state = peer_state(to);
  if (state.health == PeerHealth::kDead) {
    // The detector already declared this peer dead; the inner program's
    // message can never be delivered, so it is dropped like the rest.
    ++stats_.abandoned;
    ++state.next_seq;
    return;
  }
  Message frame = make_frame(ctx.self(), to, state.next_seq,
                             static_cast<std::int64_t>(next_inner_round_),
                             message);
  if (state.health == PeerHealth::kSuspected) {
    state.parked.push_back(PendingFrame{state.next_seq, ctx.round(), frame});
    ++state.next_seq;
    return;
  }
  if (state.pending.empty())
    state.next_retx = ctx.round() + kSyncBaseInterval;
  state.pending.push_back(PendingFrame{state.next_seq, ctx.round(), frame});
  ++state.next_seq;
  ctx.send(to, std::move(frame));
}

std::size_t ReliableSyncProgram::backoff_interval(const SyncContext& ctx,
                                                  const PeerState& state) {
  const std::size_t shift = std::min<std::size_t>(state.fails / 2, 4);
  const std::size_t base =
      std::min<std::size_t>(kSyncBaseInterval << shift, kSyncMaxInterval);
  const std::size_t jitter =
      jitter_hash(ctx.self(), state.peer, state.fails) & 1;
  const std::size_t interval = base + jitter;
  if (static_cast<double>(interval) > stats_.max_backoff)
    stats_.max_backoff = static_cast<double>(interval);
  return interval;
}

void ReliableSyncProgram::sweep_adaptive(SyncContext& ctx, std::size_t round) {
  for (PeerState& state : peers_) {
    if (state.health == PeerHealth::kDead) continue;
    if (state.health == PeerHealth::kSuspected) {
      if (round < state.next_retx) continue;
      if (state.probes_sent >= probe_budget_) {
        // Probing outlasted every finite outage the spec allows plus the
        // loss budget — the peer is dead. Drop its traffic so the run can
        // quiesce; the inner algorithms degrade as under a crash.
        state.health = PeerHealth::kDead;
        stats_.abandoned += state.pending.size() + state.parked.size();
        state.pending.clear();
        state.parked.clear();
        continue;
      }
      ctx.send(state.peer,
               make_heartbeat(ctx.self(), state.peer, state.received));
      ++state.probes_sent;
      ++stats_.probes;
      state.next_retx = round + kSyncProbeInterval;
      continue;
    }
    if (state.pending.empty() || round < state.next_retx) continue;
    ++state.fails;
    if (state.fails > suspect_after_) {
      // Bounded loss alone cannot explain this much silence: suspect the
      // peer, shelve its data, and fall back to heartbeat probing.
      state.health = PeerHealth::kSuspected;
      ++stats_.suspicions;
      auto it = std::lower_bound(ever_suspected_.begin(),
                                 ever_suspected_.end(), state.peer);
      if (it == ever_suspected_.end() || *it != state.peer)
        ever_suspected_.insert(it, state.peer);
      state.parked = std::move(state.pending);
      state.pending.clear();
      state.probes_sent = 1;
      ctx.send(state.peer,
               make_heartbeat(ctx.self(), state.peer, state.received));
      ++stats_.probes;
      state.next_retx = round + kSyncProbeInterval;
      continue;
    }
    for (const PendingFrame& frame : state.pending) ctx.send(state.peer, frame.frame);
    stats_.retransmits += state.pending.size();
    state.next_retx = round + backoff_interval(ctx, state);
  }
}

void ReliableSyncProgram::sweep_fixed(SyncContext& ctx, std::size_t round) {
  // First-generation transport: resend everything unacked every other
  // round, and abandon frames two full windows old — by then a live peer
  // has provably received them (only the acks can still be missing), so an
  // unacked survivor means the peer is dead.
  if (round % 2 != 0) return;
  for (PeerState& state : peers_) {
    const std::size_t before = state.pending.size();
    std::erase_if(state.pending,
                  [this, round](const PendingFrame& frame) {
                    return round >= frame.sent_round + 2 * dilation_;
                  });
    stats_.abandoned += before - state.pending.size();
    for (const PendingFrame& frame : state.pending)
      ctx.send(state.peer, frame.frame);
    stats_.retransmits += state.pending.size();
  }
}

void ReliableSyncProgram::on_round(SyncContext& ctx,
                                   std::span<const Message> inbox) {
  const std::size_t round = ctx.round();
  ack_due_.clear();
  for (const Message& message : inbox) {
    if (message.tag == kReliableFrameTag) {
      handle_frame(ctx, message);
    } else if (message.tag == kReliableAckTag) {
      FDLSP_REQUIRE(message.data.size() == kAckWords,
                    "reliable ack malformed");
      if (checksum_ok(message.from, ctx.self(), message))
        handle_ack(message, round);
    } else if (message.tag == kReliableHeartbeatTag) {
      FDLSP_REQUIRE(message.data.size() == kAckWords,
                    "reliable heartbeat malformed");
      if (!checksum_ok(message.from, ctx.self(), message)) continue;
      // A heartbeat is an ack that demands an answer: absorb its
      // cumulative ack, then queue a reply so the prober hears us.
      handle_ack(message, round);
      if (std::find(ack_due_.begin(), ack_due_.end(), message.from) ==
          ack_due_.end())
        ack_due_.push_back(message.from);
    } else {
      FDLSP_REQUIRE(false, "unexpected wire tag under reliable wrapper");
    }
  }
  for (NodeId peer : ack_due_)
    ctx.send(peer, make_ack(ctx.self(), peer, peer_state(peer).received));

  if (tuning_ == TransportTuning::kAdaptive) {
    sweep_adaptive(ctx, round);
  } else {
    sweep_fixed(ctx, round);
  }

  // Window boundary: assemble the previous inner round's inbox and run the
  // wrapped program one round.
  if (round % dilation_ != 0) return;
  next_inner_round_ = round / dilation_;
  std::vector<Message> assembled;
  for (PeerState& state : peers_) {
    for (BufferedFrame& frame : state.buffered) {
      FDLSP_REQUIRE(frame.inner_round + 1 ==
                        static_cast<std::int64_t>(next_inner_round_),
                    "late frame: reliable dilation window violated");
      assembled.push_back(std::move(frame.original));
    }
    state.buffered.clear();
  }
  // Match the engine's native semantics: a finished program runs again only
  // when mail arrives for it.
  if (inner_->finished() && assembled.empty()) return;
  const SyncSendSink sink = [this, &ctx](NodeId to, Message message) {
    capture_send(ctx, to, std::move(message));
  };
  SyncContext inner_ctx = ctx.reframed(next_inner_round_, &sink);
  inner_->on_round(inner_ctx, assembled);
}

bool ReliableSyncProgram::ready_for_phase_advance() const {
  // The engine's barrier promises "no messages in flight"; at this layer
  // that means no unacked or shelved outbound frames and no buffered
  // inbound frames the wrapped program has not consumed yet.
  return inner_->ready_for_phase_advance() && channels_idle();
}

void ReliableSyncProgram::on_phase(std::size_t new_phase) {
  inner_->on_phase(new_phase);
}

bool ReliableSyncProgram::finished() const {
  return inner_->finished() && channels_idle();
}

// ---------------------------------------------------------------------------
// Asynchronous wrapper: timer retransmit.
// ---------------------------------------------------------------------------

namespace {

/// Base retransmission period in simulated time. Delays are at most one
/// unit, so one period covers a frame and its ack round trip; the adaptive
/// RTO never drops below this (an earlier timer would count phantom
/// failures against live peers).
constexpr double kRetransmitPeriod = 2.0;
/// Adaptive RTO clamp before backoff, and the hard ceiling after it.
constexpr double kMaxBaseRto = 6.0;
constexpr double kMaxRto = 8.0;
/// Heartbeat cadence while a peer is suspected.
constexpr double kProbePeriod = 4.0;

std::int64_t peer_cookie(NodeId peer) {
  return -static_cast<std::int64_t>(peer) - 1;
}

NodeId cookie_peer(std::int64_t cookie) {
  return static_cast<NodeId>(-(cookie + 1));
}

}  // namespace

ReliableAsyncProgram::ReliableAsyncProgram(std::unique_ptr<AsyncProgram> inner,
                                           const FaultSpec& spec,
                                           TransportTuning tuning)
    : inner_(std::move(inner)), tuning_(tuning) {
  FDLSP_REQUIRE(inner_ != nullptr, "reliable wrapper needs a program");
  const std::size_t one_way = one_way_budget(spec);
  const std::size_t round_trip = 2 * one_way;
  // kFixed: each failed retransmission attempt consumes loss budget on the
  // frame or the ack channel; once both budgets are exhausted the next
  // attempt succeeds. Down windows can stall attempts on each path.
  give_up_attempts_ = round_trip + 8;
  if (spec.link_down_fraction > 0.0)
    give_up_attempts_ +=
        static_cast<std::size_t>(spec.link_down_duration / kRetransmitPeriod) +
        2;
  if (spec.region_count > 0)
    give_up_attempts_ += static_cast<std::size_t>(
                             static_cast<double>(spec.region_count) *
                             spec.region_duration / kRetransmitPeriod) +
                         2;
  // kAdaptive: a live peer acks within one RTO unless loss burned budget,
  // so suspicion needs more silence than the round-trip budget explains;
  // the probe budget additionally outlasts every finite outage window.
  suspect_after_ = round_trip + 4;
  probe_budget_ = static_cast<std::size_t>(
                      static_cast<double>(stall_bound(spec)) / kProbePeriod) +
                  round_trip + 4;
}

// fdlsp-lint: hot — per-frame steady-state path, no allocator traffic
Message ReliableAsyncProgram::take_frame() {
  if (frame_pool_.empty()) return Message{};
  Message frame = std::move(frame_pool_.back());
  frame_pool_.pop_back();
  return frame;
}

// fdlsp-lint: hot — per-ack steady-state path, no allocator traffic
void ReliableAsyncProgram::recycle_frame(Message&& frame) {
  // The pool never outgrows the peak number of simultaneously pending
  // frames, so this push_back settles after the first congestion spike.
  frame_pool_.push_back(std::move(frame));
}

ReliableAsyncProgram::PeerState& ReliableAsyncProgram::peer_state(
    NodeId peer) {
  auto it = std::lower_bound(
      peers_.begin(), peers_.end(), peer,
      [](const PeerState& state, NodeId id) { return state.peer < id; });
  if (it == peers_.end() || it->peer != peer) {
    it = peers_.insert(it, PeerState{});
    it->peer = peer;
  }
  return *it;
}

void ReliableAsyncProgram::arm_timer(AsyncContext& ctx, PeerState& state,
                                     double delay) {
  if (state.timer_armed) return;
  state.timer_armed = true;
  ctx.set_timer(delay, peer_cookie(state.peer));
}

double ReliableAsyncProgram::retransmit_interval(const AsyncContext& ctx,
                                                 const PeerState& state) {
  // Adaptive RTO: smoothed RTT scaled by the EWMA loss estimate, clamped,
  // then doubled every other failed attempt up to the hard ceiling, plus a
  // deterministic fractional jitter so neighbors never retransmit in
  // lockstep.
  const double srtt = state.srtt > 0.0 ? state.srtt : kRetransmitPeriod;
  double base = srtt * (1.0 + 3.0 * state.loss_hat);
  base = std::min(std::max(base, kRetransmitPeriod), kMaxBaseRto);
  const std::size_t shift = std::min<std::size_t>(state.attempts / 2, 2);
  double rto = std::min(base * static_cast<double>(std::size_t{1} << shift),
                        kMaxRto);
  const std::uint64_t h = jitter_hash(ctx.self(), state.peer, state.attempts);
  rto += 0.5 * (static_cast<double>(h >> 11) * 0x1.0p-53);
  return rto;
}

void ReliableAsyncProgram::heard(AsyncContext& ctx, PeerState& state) {
  state.attempts = 0;
  if (state.health != PeerHealth::kSuspected) return;
  state.health = PeerHealth::kTrusted;
  ++stats_.retrusts;
  state.pending = std::move(state.parked);
  state.parked.clear();
  if (state.pending.empty()) return;
  // Resume shelved traffic immediately; Karn's rule applies (these frames
  // waited, so their eventual acks must not pollute the RTT estimate).
  for (PendingFrame& frame : state.pending) {
    frame.retransmitted = true;
    ctx.send_copy(state.peer, frame.frame);
  }
  stats_.retransmits += state.pending.size();
  arm_timer(ctx, state, retransmit_interval(ctx, state));
}

// fdlsp-lint: hot — per-inner-send steady-state path, no allocator traffic
void ReliableAsyncProgram::capture_send(AsyncContext& ctx, NodeId to,
                                        const Message& message) {
  PeerState& state = peer_state(to);
  if (state.health == PeerHealth::kDead) {
    ++stats_.abandoned;
    ++state.next_seq;
    return;
  }
  // Frame into a pooled buffer held by the pending list itself; the wire
  // copy below goes straight from there into the engine's event slab, so
  // the whole send path reuses recycled capacity end to end.
  Message frame = take_frame();
  make_frame_into(frame, ctx.self(), to, state.next_seq, 0, message);
  if (state.health == PeerHealth::kSuspected) {
    state.parked.push_back(
        PendingFrame{state.next_seq, std::move(frame), ctx.now(), true});
    ++state.next_seq;
    return;
  }
  state.pending.push_back(
      PendingFrame{state.next_seq, std::move(frame), ctx.now(), false});
  ++state.next_seq;
  ctx.send_copy(to, state.pending.back().frame);
  arm_timer(ctx, state,
            tuning_ == TransportTuning::kAdaptive
                ? retransmit_interval(ctx, state)
                : kRetransmitPeriod);
}

void ReliableAsyncProgram::on_start(AsyncContext& ctx) {
  const AsyncSendSink sink = [this, &ctx](NodeId to, const Message& message) {
    capture_send(ctx, to, message);
  };
  AsyncContext inner_ctx = ctx.reframed(&sink);
  inner_->on_start(inner_ctx);
}

// fdlsp-lint: hot — per-delivery steady-state path, no allocator traffic
void ReliableAsyncProgram::deliver_in_order(AsyncContext& ctx, PeerState& state,
                                            Message& original) {
  const NodeId peer = state.peer;
  const AsyncSendSink sink = [this, &ctx](NodeId to, const Message& message) {
    capture_send(ctx, to, message);
  };
  AsyncContext inner_ctx = ctx.reframed(&sink);
  inner_->on_message(inner_ctx, original);
  // The inner handler may have sent to new peers, growing peers_ and
  // invalidating references — re-resolve the state every iteration.
  for (;;) {
    PeerState& fresh = peer_state(peer);
    if (fresh.reordered.empty() ||
        fresh.reordered.front().seq != fresh.received + 1)
      break;
    fresh.received = fresh.reordered.front().seq;
    Message next = std::move(fresh.reordered.front().original);
    fresh.reordered.erase(fresh.reordered.begin());
    inner_->on_message(inner_ctx, next);
    // The buffer came out of the pool when the frame was parked out of
    // order (see handle_frame); hand it back for the next frame.
    recycle_frame(std::move(next));
  }
}

void ReliableAsyncProgram::handle_frame(AsyncContext& ctx,
                                        const Message& message) {
  FDLSP_REQUIRE(message.data.size() >= kHeaderWords,
                "reliable frame too short");
  if (!checksum_ok(message.from, ctx.self(), message)) return;  // corrupted
  const NodeId peer = message.from;
  const std::int64_t seq = message.data[1];
  bool deliver = false;
  {
    PeerState& state = peer_state(peer);
    heard(ctx, state);
    if (seq == state.received + 1) {
      state.received = seq;
      unframe_into(unframe_scratch_, message);
      deliver = true;
    } else if (seq > state.received + 1) {
      // Out of order: hold until the gap fills (the sender retransmits the
      // missing frames). Idempotent under duplication. The held copy lives
      // in a pooled buffer, recycled after its in-order delivery.
      auto it = std::lower_bound(
          state.reordered.begin(), state.reordered.end(), seq,
          [](const ReorderedFrame& frame, std::int64_t id) {
            return frame.seq < id;
          });
      if (it == state.reordered.end() || it->seq != seq) {
        Message held = take_frame();
        unframe_into(held, message);
        state.reordered.insert(it, ReorderedFrame{seq, std::move(held)});
      }
    }
    // seq <= received: duplicate — fall through and re-ack.
  }
  if (deliver) deliver_in_order(ctx, peer_state(peer), unframe_scratch_);
  ctx.send(peer, make_ack(ctx.self(), peer, peer_state(peer).received));
}

void ReliableAsyncProgram::handle_ack(AsyncContext& ctx,
                                      const Message& message) {
  const std::int64_t cumulative = message.data[1];
  PeerState& state = peer_state(message.from);
  if (cumulative > state.acked) {
    state.acked = cumulative;
    // RTT sample from the newest frame this ack covers, unless it was ever
    // retransmitted (Karn's rule: the sample would be ambiguous). Progress
    // also decays the loss estimate.
    const PendingFrame* newest = nullptr;
    for (const PendingFrame& frame : state.pending)
      if (frame.seq <= cumulative) newest = &frame;
    if (newest != nullptr && !newest->retransmitted &&
        tuning_ == TransportTuning::kAdaptive) {
      const double sample = ctx.now() - newest->sent_at;
      state.srtt = state.srtt > 0.0
                       ? state.srtt + (sample - state.srtt) * 0.125
                       : sample;
    }
    state.loss_hat *= 0.75;
    // Reclaim the acked frames' buffers before the erase destroys the
    // husks; pending is seq-ascending, so the acked prefix is contiguous.
    for (PendingFrame& frame : state.pending) {
      if (frame.seq > cumulative) break;
      recycle_frame(std::move(frame.frame));
    }
    std::erase_if(state.pending, [cumulative](const PendingFrame& frame) {
      return frame.seq <= cumulative;
    });
  }
  heard(ctx, state);  // any valid ack proves the peer is alive and hearing us
}

void ReliableAsyncProgram::on_message(AsyncContext& ctx, Message& message) {
  if (message.tag == kReliableAckTag) {
    FDLSP_REQUIRE(message.data.size() == kAckWords, "reliable ack malformed");
    if (checksum_ok(message.from, ctx.self(), message))
      handle_ack(ctx, message);
    return;
  }
  if (message.tag == kReliableHeartbeatTag) {
    FDLSP_REQUIRE(message.data.size() == kAckWords,
                  "reliable heartbeat malformed");
    if (!checksum_ok(message.from, ctx.self(), message)) return;
    // A heartbeat is an ack that demands an answer.
    handle_ack(ctx, message);
    ctx.send(message.from,
             make_ack(ctx.self(), message.from,
                      peer_state(message.from).received));
    return;
  }
  FDLSP_REQUIRE(message.tag == kReliableFrameTag,
                "unexpected wire tag under reliable wrapper");
  handle_frame(ctx, message);
}

void ReliableAsyncProgram::on_timer(AsyncContext& ctx, std::int64_t cookie) {
  if (cookie >= 0) {
    // Inner-program timer: forward untouched (cookies < 0 are ours).
    const AsyncSendSink sink = [this, &ctx](NodeId to,
                                            const Message& message) {
      capture_send(ctx, to, message);
    };
    AsyncContext inner_ctx = ctx.reframed(&sink);
    inner_->on_timer(inner_ctx, cookie);
    return;
  }
  const NodeId peer = cookie_peer(cookie);
  PeerState& state = peer_state(peer);
  state.timer_armed = false;
  if (tuning_ == TransportTuning::kFixed) {
    if (state.pending.empty()) return;
    ++state.attempts;
    if (state.attempts > give_up_attempts_) {
      // A live peer would have acked within the attempt budget: either
      // these frames were delivered (acks lost past the cap is impossible)
      // or the peer is dead. Stop resending so the run can quiesce.
      stats_.abandoned += state.pending.size();
      state.pending.clear();
      return;
    }
    for (const PendingFrame& frame : state.pending)
      ctx.send_copy(peer, frame.frame);
    stats_.retransmits += state.pending.size();
    arm_timer(ctx, state, kRetransmitPeriod);
    return;
  }
  if (state.health == PeerHealth::kDead) return;
  if (state.health == PeerHealth::kSuspected) {
    if (state.probes_sent >= probe_budget_) {
      // Probing outlasted every finite outage plus the loss budget — the
      // peer is dead. Drop its traffic so the run can quiesce.
      state.health = PeerHealth::kDead;
      stats_.abandoned += state.pending.size() + state.parked.size();
      state.pending.clear();
      state.parked.clear();
      return;
    }
    ctx.send(peer, make_heartbeat(ctx.self(), peer, state.received));
    ++state.probes_sent;
    ++stats_.probes;
    arm_timer(ctx, state, kProbePeriod);
    return;
  }
  if (state.pending.empty()) return;
  ++state.attempts;
  // Each failed attempt nudges the loss estimate up; acked progress decays
  // it again, so the RTO tracks the channel's recent behavior.
  state.loss_hat += (1.0 - state.loss_hat) * 0.25;
  if (state.attempts > suspect_after_) {
    state.health = PeerHealth::kSuspected;
    ++stats_.suspicions;
    auto it = std::lower_bound(ever_suspected_.begin(), ever_suspected_.end(),
                               peer);
    if (it == ever_suspected_.end() || *it != peer)
      ever_suspected_.insert(it, peer);
    state.parked = std::move(state.pending);
    state.pending.clear();
    state.probes_sent = 1;
    ctx.send(peer, make_heartbeat(ctx.self(), peer, state.received));
    ++stats_.probes;
    arm_timer(ctx, state, kProbePeriod);
    return;
  }
  for (PendingFrame& frame : state.pending) {
    frame.retransmitted = true;
    ctx.send_copy(peer, frame.frame);
  }
  stats_.retransmits += state.pending.size();
  const double rto = retransmit_interval(ctx, state);
  if (rto > stats_.max_backoff) stats_.max_backoff = rto;
  arm_timer(ctx, state, rto);
}

bool ReliableAsyncProgram::finished() const {
  if (!inner_->finished()) return false;
  for (const PeerState& state : peers_)
    if (!state.pending.empty() || !state.parked.empty() ||
        !state.reordered.empty())
      return false;
  return true;
}

}  // namespace fdlsp
