#include "sim/reliable.h"

#include <algorithm>
#include <utility>

#include "support/check.h"
#include "support/rng.h"

namespace fdlsp {

namespace {

// Frame payload layout: [checksum, seq, inner_round, orig_tag, payload...].
// The async wrapper has no rounds and stores 0 in the inner_round slot.
constexpr std::size_t kHeaderWords = 4;

// Ack payload layout: [checksum, cumulative_ack].
constexpr std::size_t kAckWords = 2;

/// Checksum over a wire message's payload past the checksum slot, keyed by
/// the directed channel so a frame cannot be mistaken for one from another
/// peer. Corruption flips exactly one payload word (sim/fault.h), which
/// this detects with overwhelming probability; a corrupted message is
/// silently discarded and the retransmission path treats it as a drop.
std::int64_t wire_checksum(NodeId from, NodeId to, const std::int64_t* words,
                           std::size_t count) {
  std::uint64_t state = 0x72656c6961626c65ULL ^
                        ((static_cast<std::uint64_t>(from) << 32) |
                         static_cast<std::uint64_t>(to));
  std::uint64_t h = splitmix64(state);
  for (std::size_t i = 0; i < count; ++i) {
    state ^= h ^ static_cast<std::uint64_t>(words[i]);
    h = splitmix64(state);
  }
  return static_cast<std::int64_t>(h >> 1);
}

/// True iff the stored checksum matches the payload.
bool checksum_ok(NodeId from, NodeId to, const Message& message) {
  return message.data[0] ==
         wire_checksum(from, to, message.data.data() + 1,
                       message.data.size() - 1);
}

Message make_frame(NodeId from, NodeId to, std::int64_t seq,
                   std::int64_t inner_round, const Message& original) {
  Message frame;
  frame.from = from;
  frame.tag = kReliableFrameTag;
  frame.data.reserve(kHeaderWords + original.data.size());
  frame.data.push_back(0);  // checksum slot
  frame.data.push_back(seq);
  frame.data.push_back(inner_round);
  frame.data.push_back(original.tag);
  frame.data.insert(frame.data.end(), original.data.begin(),
                    original.data.end());
  frame.data[0] =
      wire_checksum(from, to, frame.data.data() + 1, frame.data.size() - 1);
  return frame;
}

Message unframe(const Message& frame) {
  Message original;
  original.from = frame.from;
  original.tag = static_cast<std::int32_t>(frame.data[3]);
  original.data.assign(frame.data.begin() +
                           static_cast<std::ptrdiff_t>(kHeaderWords),
                       frame.data.end());
  return original;
}

Message make_ack(NodeId from, NodeId to, std::int64_t cumulative) {
  Message ack;
  ack.from = from;
  ack.tag = kReliableAckTag;
  ack.data = {0, cumulative};
  ack.data[0] = wire_checksum(from, to, ack.data.data() + 1, 1);
  return ack;
}

}  // namespace

// ---------------------------------------------------------------------------
// Synchronous wrapper: round dilation.
// ---------------------------------------------------------------------------

std::size_t ReliableSyncProgram::round_dilation(const FaultSpec& spec) {
  // Go-back-N retransmits every other outer round; each failed attempt
  // consumes at least one unit of the per-channel loss cap, so at most
  // cap+1 attempts are needed once a channel's cap is exhausted — frames
  // land within 2*cap+2 outer rounds. One finite link-down window can
  // additionally stall the channel for its whole duration. The +4 margin
  // covers the delivery round offset and keeps the window even.
  std::size_t dilation = 2 * static_cast<std::size_t>(
                                 spec.max_losses_per_channel) + 4;
  if (spec.link_down_fraction > 0.0)
    dilation += static_cast<std::size_t>(spec.link_down_duration) + 2;
  return dilation;
}

ReliableSyncProgram::ReliableSyncProgram(std::unique_ptr<SyncProgram> inner,
                                         const FaultSpec& spec)
    : inner_(std::move(inner)), dilation_(round_dilation(spec)) {
  FDLSP_REQUIRE(inner_ != nullptr, "reliable wrapper needs a program");
}

ReliableSyncProgram::PeerState& ReliableSyncProgram::peer_state(NodeId peer) {
  auto it = std::lower_bound(
      peers_.begin(), peers_.end(), peer,
      [](const PeerState& state, NodeId id) { return state.peer < id; });
  if (it == peers_.end() || it->peer != peer) {
    it = peers_.insert(it, PeerState{});
    it->peer = peer;
  }
  return *it;
}

bool ReliableSyncProgram::channels_idle() const {
  for (const PeerState& state : peers_)
    if (!state.pending.empty() || !state.buffered.empty()) return false;
  return true;
}

void ReliableSyncProgram::handle_frame(SyncContext& ctx,
                                       const Message& message) {
  FDLSP_REQUIRE(message.data.size() >= kHeaderWords,
                "reliable frame too short");
  if (!checksum_ok(message.from, ctx.self(), message)) return;  // corrupted
  PeerState& state = peer_state(message.from);
  if (std::find(ack_due_.begin(), ack_due_.end(), message.from) ==
      ack_due_.end())
    ack_due_.push_back(message.from);
  const std::int64_t seq = message.data[1];
  if (seq <= state.received) return;      // duplicate: just re-ack
  if (seq > state.received + 1) return;   // gap: go-back-N will resend
  state.received = seq;
  state.buffered.push_back(BufferedFrame{seq, message.data[2],
                                         unframe(message)});
}

void ReliableSyncProgram::handle_ack(const Message& message) {
  // Size and checksum already verified at the call site.
  PeerState& state = peer_state(message.from);
  const std::int64_t cumulative = message.data[1];
  if (cumulative <= state.acked) return;
  state.acked = cumulative;
  std::erase_if(state.pending, [cumulative](const PendingFrame& frame) {
    return frame.seq <= cumulative;
  });
}

void ReliableSyncProgram::capture_send(SyncContext& ctx, NodeId to,
                                       Message message) {
  PeerState& state = peer_state(to);
  Message frame = make_frame(ctx.self(), to, state.next_seq,
                             static_cast<std::int64_t>(next_inner_round_),
                             message);
  state.pending.push_back(PendingFrame{state.next_seq, ctx.round(), frame});
  ++state.next_seq;
  ctx.send(to, std::move(frame));
}

void ReliableSyncProgram::on_round(SyncContext& ctx,
                                   std::span<const Message> inbox) {
  const std::size_t round = ctx.round();
  ack_due_.clear();
  for (const Message& message : inbox) {
    if (message.tag == kReliableFrameTag) {
      handle_frame(ctx, message);
    } else if (message.tag == kReliableAckTag) {
      FDLSP_REQUIRE(message.data.size() == kAckWords,
                    "reliable ack malformed");
      if (checksum_ok(message.from, ctx.self(), message)) handle_ack(message);
    } else {
      FDLSP_REQUIRE(false, "unexpected wire tag under reliable wrapper");
    }
  }
  for (NodeId peer : ack_due_)
    ctx.send(peer, make_ack(ctx.self(), peer, peer_state(peer).received));

  // Retransmission sweep: resend everything unacked every other round, and
  // abandon frames two full windows old — by then a live peer has provably
  // received them (only the acks can still be missing), so an unacked
  // survivor means the peer is dead.
  if (round % 2 == 0) {
    for (PeerState& state : peers_) {
      std::erase_if(state.pending,
                    [this, round](const PendingFrame& frame) {
                      return round >= frame.sent_round + 2 * dilation_;
                    });
      for (const PendingFrame& frame : state.pending)
        ctx.send(state.peer, frame.frame);
    }
  }

  // Window boundary: assemble the previous inner round's inbox and run the
  // wrapped program one round.
  if (round % dilation_ != 0) return;
  next_inner_round_ = round / dilation_;
  std::vector<Message> assembled;
  for (PeerState& state : peers_) {
    for (BufferedFrame& frame : state.buffered) {
      FDLSP_REQUIRE(frame.inner_round + 1 ==
                        static_cast<std::int64_t>(next_inner_round_),
                    "late frame: reliable dilation window violated");
      assembled.push_back(std::move(frame.original));
    }
    state.buffered.clear();
  }
  // Match the engine's native semantics: a finished program runs again only
  // when mail arrives for it.
  if (inner_->finished() && assembled.empty()) return;
  const SyncSendSink sink = [this, &ctx](NodeId to, Message message) {
    capture_send(ctx, to, std::move(message));
  };
  SyncContext inner_ctx = ctx.reframed(next_inner_round_, &sink);
  inner_->on_round(inner_ctx, assembled);
}

bool ReliableSyncProgram::ready_for_phase_advance() const {
  // The engine's barrier promises "no messages in flight"; at this layer
  // that means no unacked outbound frames and no buffered inbound frames
  // the wrapped program has not consumed yet.
  return inner_->ready_for_phase_advance() && channels_idle();
}

void ReliableSyncProgram::on_phase(std::size_t new_phase) {
  inner_->on_phase(new_phase);
}

bool ReliableSyncProgram::finished() const {
  return inner_->finished() && channels_idle();
}

// ---------------------------------------------------------------------------
// Asynchronous wrapper: timer retransmit.
// ---------------------------------------------------------------------------

namespace {

/// Retransmission period in simulated time. Delays are at most one unit, so
/// one period covers a frame and its ack round trip.
constexpr double kRetransmitPeriod = 2.0;

std::int64_t peer_cookie(NodeId peer) {
  return -static_cast<std::int64_t>(peer) - 1;
}

NodeId cookie_peer(std::int64_t cookie) {
  return static_cast<NodeId>(-(cookie + 1));
}

}  // namespace

ReliableAsyncProgram::ReliableAsyncProgram(std::unique_ptr<AsyncProgram> inner,
                                           const FaultSpec& spec)
    : inner_(std::move(inner)) {
  FDLSP_REQUIRE(inner_ != nullptr, "reliable wrapper needs a program");
  // Each failed retransmission round consumes loss budget on the frame or
  // the ack channel; once both caps are exhausted the next attempt
  // succeeds. Churn can stall attempts for one window on each path.
  give_up_attempts_ =
      2 * static_cast<std::size_t>(spec.max_losses_per_channel) + 8;
  if (spec.link_down_fraction > 0.0)
    give_up_attempts_ +=
        static_cast<std::size_t>(spec.link_down_duration / kRetransmitPeriod) +
        2;
}

ReliableAsyncProgram::PeerState& ReliableAsyncProgram::peer_state(
    NodeId peer) {
  auto it = std::lower_bound(
      peers_.begin(), peers_.end(), peer,
      [](const PeerState& state, NodeId id) { return state.peer < id; });
  if (it == peers_.end() || it->peer != peer) {
    it = peers_.insert(it, PeerState{});
    it->peer = peer;
  }
  return *it;
}

void ReliableAsyncProgram::arm_timer(AsyncContext& ctx, PeerState& state) {
  if (state.timer_armed) return;
  state.timer_armed = true;
  ctx.set_timer(kRetransmitPeriod, peer_cookie(state.peer));
}

void ReliableAsyncProgram::capture_send(AsyncContext& ctx, NodeId to,
                                        Message message) {
  PeerState& state = peer_state(to);
  Message frame = make_frame(ctx.self(), to, state.next_seq, 0, message);
  state.pending.push_back(PendingFrame{state.next_seq, frame});
  ++state.next_seq;
  ctx.send(to, std::move(frame));
  arm_timer(ctx, state);
}

void ReliableAsyncProgram::on_start(AsyncContext& ctx) {
  const AsyncSendSink sink = [this, &ctx](NodeId to, Message message) {
    capture_send(ctx, to, std::move(message));
  };
  AsyncContext inner_ctx = ctx.reframed(&sink);
  inner_->on_start(inner_ctx);
}

void ReliableAsyncProgram::deliver_in_order(AsyncContext& ctx, PeerState& state,
                                            Message original) {
  const NodeId peer = state.peer;
  const AsyncSendSink sink = [this, &ctx](NodeId to, Message message) {
    capture_send(ctx, to, std::move(message));
  };
  AsyncContext inner_ctx = ctx.reframed(&sink);
  inner_->on_message(inner_ctx, original);
  // The inner handler may have sent to new peers, growing peers_ and
  // invalidating references — re-resolve the state every iteration.
  for (;;) {
    PeerState& fresh = peer_state(peer);
    if (fresh.reordered.empty() ||
        fresh.reordered.front().seq != fresh.received + 1)
      break;
    fresh.received = fresh.reordered.front().seq;
    Message next = std::move(fresh.reordered.front().original);
    fresh.reordered.erase(fresh.reordered.begin());
    inner_->on_message(inner_ctx, next);
  }
}

void ReliableAsyncProgram::handle_frame(AsyncContext& ctx,
                                        const Message& message) {
  FDLSP_REQUIRE(message.data.size() >= kHeaderWords,
                "reliable frame too short");
  if (!checksum_ok(message.from, ctx.self(), message)) return;  // corrupted
  const NodeId peer = message.from;
  const std::int64_t seq = message.data[1];
  bool deliver = false;
  Message original;
  {
    PeerState& state = peer_state(peer);
    if (seq == state.received + 1) {
      state.received = seq;
      original = unframe(message);
      deliver = true;
    } else if (seq > state.received + 1) {
      // Out of order: hold until the gap fills (the sender retransmits the
      // missing frames). Idempotent under duplication.
      auto it = std::lower_bound(
          state.reordered.begin(), state.reordered.end(), seq,
          [](const ReorderedFrame& frame, std::int64_t id) {
            return frame.seq < id;
          });
      if (it == state.reordered.end() || it->seq != seq)
        state.reordered.insert(it, ReorderedFrame{seq, unframe(message)});
    }
    // seq <= received: duplicate — fall through and re-ack.
  }
  if (deliver) deliver_in_order(ctx, peer_state(peer), std::move(original));
  ctx.send(peer, make_ack(ctx.self(), peer, peer_state(peer).received));
}

void ReliableAsyncProgram::handle_ack(const Message& message) {
  const std::int64_t cumulative = message.data[1];
  PeerState& state = peer_state(message.from);
  if (cumulative <= state.acked) return;
  state.acked = cumulative;
  state.attempts = 0;  // progress: the peer is alive and hearing us
  std::erase_if(state.pending, [cumulative](const PendingFrame& frame) {
    return frame.seq <= cumulative;
  });
}

void ReliableAsyncProgram::on_message(AsyncContext& ctx,
                                      const Message& message) {
  if (message.tag == kReliableAckTag) {
    FDLSP_REQUIRE(message.data.size() == kAckWords, "reliable ack malformed");
    if (checksum_ok(message.from, ctx.self(), message)) handle_ack(message);
    return;
  }
  FDLSP_REQUIRE(message.tag == kReliableFrameTag,
                "unexpected wire tag under reliable wrapper");
  handle_frame(ctx, message);
}

void ReliableAsyncProgram::on_timer(AsyncContext& ctx, std::int64_t cookie) {
  if (cookie >= 0) {
    // Inner-program timer: forward untouched (cookies < 0 are ours).
    const AsyncSendSink sink = [this, &ctx](NodeId to, Message message) {
      capture_send(ctx, to, std::move(message));
    };
    AsyncContext inner_ctx = ctx.reframed(&sink);
    inner_->on_timer(inner_ctx, cookie);
    return;
  }
  const NodeId peer = cookie_peer(cookie);
  PeerState& state = peer_state(peer);
  state.timer_armed = false;
  if (state.pending.empty()) return;
  ++state.attempts;
  if (state.attempts > give_up_attempts_) {
    // A live peer would have acked within the attempt budget: either these
    // frames were delivered (acks lost past the cap is impossible) or the
    // peer is dead. Stop resending so the run can quiesce.
    state.pending.clear();
    return;
  }
  for (const PendingFrame& frame : state.pending)
    ctx.send(peer, frame.frame);
  arm_timer(ctx, state);
}

bool ReliableAsyncProgram::finished() const {
  if (!inner_->finished()) return false;
  for (const PeerState& state : peers_)
    if (!state.pending.empty() || !state.reordered.empty()) return false;
  return true;
}

}  // namespace fdlsp
