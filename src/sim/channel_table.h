// Precomputed (sender, receiver) -> directed-channel lookup for the engines.
//
// Both engines identify a directed channel by the arc id of the bi-directed
// view (graph/arcs.h): edge e = {u, v} with u < v carries arc 2e for u->v
// and arc 2e+1 for v->u. The engines used to recover the channel of every
// single message with Graph::find_edge plus an Edge load — two binary
// searches and a cache miss on the hot path. This table is built once at
// engine setup, aligned with the graph's CSR adjacency, so resolving a
// channel is one binary search over the sender's (sorted) neighbor row that
// doubles as the "direct neighbors only" validation.
#pragma once

#include <algorithm>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace fdlsp {

/// Channel ids per (node, adjacency-position), CSR-aligned with the graph.
class ChannelTable {
 public:
  ChannelTable() = default;

  explicit ChannelTable(const Graph& graph) { build(graph); }

  /// (Re)builds the table for `graph`. Linear in the adjacency size; edge
  /// endpoints are stored with u < v, so the direction bit of the arc id is
  /// just the id comparison — no Edge loads.
  void build(const Graph& graph) {
    build_slice(graph, 0, static_cast<NodeId>(graph.num_nodes()));
  }

  /// (Re)builds the table for senders in [lo, hi) only — the sharded
  /// engine's per-shard send-side slice. The slice holds just its own
  /// nodes' adjacency rows, so S shard slices together cost the same 2m
  /// entries one full table does, and each shard's sends touch only
  /// shard-local memory. channel() must then be called with `from` in
  /// [lo, hi).
  void build_slice(const Graph& graph, NodeId lo, NodeId hi) {
    FDLSP_ASSERT(lo <= hi && hi <= graph.num_nodes(), "bad slice range");
    base_ = lo;
    offsets_.assign(static_cast<std::size_t>(hi - lo) + 1, 0);
    channels_.clear();
    for (NodeId v = lo; v < hi; ++v) {
      offsets_[v - lo] = channels_.size();
      for (const NeighborEntry& entry : graph.neighbors(v))
        channels_.push_back(
            static_cast<ArcId>((entry.edge << 1) | (v < entry.to ? 0u : 1u)));
    }
    offsets_[hi - lo] = channels_.size();
  }

  bool empty() const noexcept { return channels_.empty() && offsets_.empty(); }

  /// Channel (arc id) of the directed link from -> to, or kNoArc when `to`
  /// is not a direct neighbor of `from`. One binary search over the
  /// sender's neighbor row; serves as the neighbor validation as well. For
  /// a slice, `from` must lie inside the slice's node range.
  ArcId channel(const Graph& graph, NodeId from, NodeId to) const {
    FDLSP_ASSERT(from >= base_ &&
                     static_cast<std::size_t>(from - base_) + 1 <
                         offsets_.size(),
                 "sender outside this table's slice");
    const std::span<const NeighborEntry> row = graph.neighbors(from);
    const auto it = std::lower_bound(
        row.begin(), row.end(), to,
        [](const NeighborEntry& entry, NodeId node) { return entry.to < node; });
    if (it == row.end() || it->to != to) return kNoArc;
    const auto position = static_cast<std::size_t>(it - row.begin());
    return channels_[offsets_[from - base_] + position];
  }

  /// Channel of the `position`-th arc out of `from` (adjacency order) — the
  /// O(1) lookup for senders that already know the neighbor's index, e.g.
  /// because they iterate the neighbor span. For a slice, `from` must lie
  /// inside the slice's node range.
  // fdlsp-lint: hot — per-send steady-state path, no allocator traffic
  ArcId channel_at(NodeId from, std::size_t position) const {
    const std::size_t row = offsets_[from - base_];
    FDLSP_ASSERT(row + position < offsets_[from - base_ + 1],
                 "position outside the sender's adjacency row");
    return channels_[row + position];
  }

 private:
  NodeId base_ = 0;                   // first sender covered (slice lo)
  std::vector<std::size_t> offsets_;  // (hi - lo) + 1 entries
  std::vector<ArcId> channels_;       // per-slice adjacency, CSR order
};

}  // namespace fdlsp
