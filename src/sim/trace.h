// Simulation trace hook: the engines' seam for protocol-level dynamic
// analysis.
//
// Both engines optionally report their primitive events — a node starting a
// local computation step, a message send, a message delivery, and any
// mid-run access to another node's program object — to a SimTrace observer.
// The hook exists so analyses (the vector-clock happens-before checker in
// src/analysis/happens_before.h, future schedule recorders) can be woven
// into a run without touching the hot path: with no trace attached every
// instrumentation point is a single null check.
//
// Event semantics the engines guarantee:
//   * on_deliver events for one directed (from, to) channel occur in the
//     same order as the matching on_send events (both engines are FIFO per
//     channel), so an observer may pair them with a queue.
//   * on_local_step(v) fires immediately before v's program callback runs
//     (round execution, message handler, start hook, phase notification),
//     after any on_deliver events for the messages that callback consumes.
//   * on_state_read(reader, owner) fires when the program of `reader`,
//     while executing, obtains the program object of a different node
//     `owner` through SyncEngine::program() / AsyncEngine::program() — the
//     only sanctioned way simulated nodes share an address space. Reads
//     performed outside any program callback (the drivers collecting
//     results after run()) are not reported.
#pragma once

#include "graph/types.h"

namespace fdlsp {

/// Observer for engine-level events; see the header comment for semantics.
class SimTrace {
 public:
  virtual ~SimTrace() = default;

  /// Node `node` begins a local computation step.
  virtual void on_local_step(NodeId node) = 0;

  /// Node `from` sent a message to its direct neighbor `to`. Under a
  /// FaultPlan (sim/fault.h) this fires once per enqueued copy — zero for a
  /// dropped message, twice for a duplicated one — so every on_deliver
  /// still pairs with exactly one on_send and happens-before checking
  /// stays exact on faulted runs.
  virtual void on_send(NodeId from, NodeId to) = 0;

  /// The message `from` -> `to` is being delivered (receiver consumes it in
  /// the local step that follows).
  virtual void on_deliver(NodeId from, NodeId to) = 0;

  /// Node `reader`, mid-step, directly accessed the program state of node
  /// `owner` (shared-memory escape from the message API).
  virtual void on_state_read(NodeId reader, NodeId owner) = 0;
};

}  // namespace fdlsp
