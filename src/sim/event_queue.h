// Slab-backed event storage for the asynchronous engine (DESIGN.md §16).
//
// The old AsyncEngine kept whole Message-carrying events inside one
// std::priority_queue: every heap sift moved a full event (including the
// payload's inline words), top() was copied before pop() — a heap clone of
// every spilled payload, one allocation per delivered event — and the queue
// vector's growth allocated on the hot path. Here events live in a
// recycling slab (free-list slot reuse, mirroring SyncSendSlab): payloads
// are copy-assigned or swap-moved into recycled slots, so their spilled
// capacities survive from event to event, and the ordering structures hold
// only (time, sequence, slot) keys — a sift moves 24 bytes, and a warmed
// run's steady state performs no allocator traffic at all
// (tests/engine_alloc_test.cpp gates this).
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "graph/types.h"
#include "sim/message.h"
#include "support/check.h"

namespace fdlsp {

/// Ordering key of one pending async event. `sequence` is assigned from one
/// global counter at post time, so (time, sequence) is unique and totally
/// ordered across every shard — the determinism anchor of the sharded
/// tournament (AsyncEngine).
struct AsyncEventKey {
  double time = 0.0;
  std::uint64_t sequence = 0;
  std::uint32_t slot = 0;  ///< index into the AsyncEventSlab
};

/// True iff `a` orders after `b` — the min-heap comparator. Ties on time
/// break by sequence; (time, sequence) pairs are unique, so two distinct
/// keys never compare equal in both fields.
inline bool event_key_after(const AsyncEventKey& a,
                            const AsyncEventKey& b) noexcept {
  return a.time != b.time ? a.time > b.time : a.sequence > b.sequence;
}

/// Sentinel that orders after every real key (tournament initial value).
inline AsyncEventKey event_key_sentinel() noexcept {
  return {std::numeric_limits<double>::infinity(),
          std::numeric_limits<std::uint64_t>::max(), 0};
}

/// Payload of one pending async event, addressed by AsyncEventKey::slot.
struct AsyncEventSlot {
  NodeId to = kNoNode;
  ArcId channel = kNoArc;   ///< kNoArc marks a timer event
  std::int64_t cookie = 0;  ///< timer events only
  Message message;          ///< message events only; capacity is recycled
};

/// Recycling slot store. release() never destroys a slot: the Message and
/// its spilled payload capacity stay alive for the next acquire(), so the
/// steady state of a warmed run allocates nothing — the async analogue of
/// the sync engine's inbox slabs.
class AsyncEventSlab {
 public:
  /// Index of a free slot (recycled when one exists). The returned slot's
  /// Message holds whatever capacity its previous occupant left behind —
  /// callers copy-assign into it.
  // fdlsp-lint: hot — per-event steady-state path, no allocator traffic
  std::uint32_t acquire() {
    if (!free_.empty()) {
      const std::uint32_t slot = free_.back();
      free_.pop_back();
      return slot;
    }
    return append();
  }

  // fdlsp-lint: hot — per-event steady-state path, no allocator traffic
  void release(std::uint32_t slot) { free_.push_back(slot); }

  AsyncEventSlot& operator[](std::uint32_t slot) { return slots_[slot]; }
  const AsyncEventSlot& operator[](std::uint32_t slot) const {
    return slots_[slot];
  }

  std::size_t size() const noexcept { return slots_.size(); }

  /// Liveness map for the stall watchdog: live_map()[s] == 1 iff slot s is
  /// acquired. O(slots); diagnosis only, never on the hot path.
  std::vector<char> live_map() const {
    std::vector<char> live(slots_.size(), 1);
    for (const std::uint32_t slot : free_) live[slot] = 0;
    return live;
  }

 private:
  /// Cold growth path, kept out of the hot-annotated acquire().
  std::uint32_t append() {
    FDLSP_REQUIRE(slots_.size() < std::numeric_limits<std::uint32_t>::max(),
                  "event slab exhausted the 32-bit slot space");
    slots_.emplace_back();
    return static_cast<std::uint32_t>(slots_.size() - 1);
  }

  std::vector<AsyncEventSlot> slots_;
  std::vector<std::uint32_t> free_;  // LIFO: hottest slot reused first
};

/// 4-ary min-heap of event keys — one per shard. Sifts move 24-byte keys;
/// the 4-way branching halves the sift depth of a binary heap and keeps
/// sibling groups within two cache lines, which is where the dispatch loop
/// spends its comparisons. The backing vector's capacity is retained
/// across pops, so a warmed heap pushes without allocating.
class AsyncEventHeap {
 public:
  // fdlsp-lint: hot — per-event steady-state path, no allocator traffic
  void push(const AsyncEventKey& key) {
    heap_.push_back(key);
    std::size_t hole = heap_.size() - 1;
    while (hole > 0) {
      const std::size_t parent = (hole - 1) / kArity;
      if (!event_key_after(heap_[parent], key)) break;
      heap_[hole] = heap_[parent];
      hole = parent;
    }
    heap_[hole] = key;
  }

  // fdlsp-lint: hot — per-event steady-state path, no allocator traffic
  AsyncEventKey pop() {
    FDLSP_ASSERT(!heap_.empty(), "pop on empty event heap");
    const AsyncEventKey top = heap_.front();
    const AsyncEventKey last = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0, last);
    return top;
  }

  /// Bulk-loads an empty heap: Floyd heapify, O(k) instead of k sifts.
  /// The calendar queue drains each bucket into an empty due heap, which
  /// is exactly this shape.
  // fdlsp-lint: hot — capacity-reusing assign, no allocator traffic warmed
  void refill(const std::vector<AsyncEventKey>& keys) {
    FDLSP_ASSERT(heap_.empty(), "refill target must be empty");
    heap_.assign(keys.begin(), keys.end());
    if (heap_.size() < 2) return;
    for (std::size_t i = (heap_.size() - 2) / kArity + 1; i-- > 0;)
      sift_down(i, heap_[i]);
  }

  const AsyncEventKey& top() const {
    FDLSP_ASSERT(!heap_.empty(), "top on empty event heap");
    return heap_.front();
  }

  bool empty() const noexcept { return heap_.empty(); }
  std::size_t size() const noexcept { return heap_.size(); }

 private:
  static constexpr std::size_t kArity = 4;

  /// Places `key` into the subtree rooted at `hole` with the hole trick:
  /// promote the minimal child until the key fits.
  // fdlsp-lint: hot — per-event steady-state path, no allocator traffic
  void sift_down(std::size_t hole, const AsyncEventKey key) {
    const std::size_t size = heap_.size();
    for (;;) {
      const std::size_t first = kArity * hole + 1;
      if (first >= size) break;
      std::size_t least = first;
      const std::size_t end = std::min(first + kArity, size);
      for (std::size_t c = first + 1; c < end; ++c)
        if (event_key_after(heap_[least], heap_[c])) least = c;
      if (!event_key_after(key, heap_[least])) break;
      heap_[hole] = heap_[least];
      hole = least;
    }
    heap_[hole] = key;
  }

  std::vector<AsyncEventKey> heap_;
};

}  // namespace fdlsp
