// α-synchronizer: runs a synchronous program set on the asynchronous engine.
//
// The paper's algorithms are stated in the synchronous LOCAL model; the
// asynchronous engine delivers messages one at a time with arbitrary (FIFO)
// per-channel delays. The classic bridge is a synchronizer: every node
// wraps its round messages in per-neighbor *frames*, executes round r only
// after the round-(r-1) frame from every neighbor has arrived, and a
// barrier rule decides when the global phase counter advances. The result
// is byte-identical to the serial SyncEngine — same inbox order (ascending
// sender id, send order within a sender), same phase boundaries, same
// round/message metrics — which makes the whole synchronous test corpus an
// oracle for the asynchronous engine (tests/async_sharded_test.cpp).
//
// Like the sync engine's phase barrier, the round/phase boundary decision
// uses global knowledge: a RoundSynchronizer object counts round
// completions across all nodes and applies the engine's exact boundary
// logic (stop / phase-advance / run). Real deployments convergecast this
// decision; DESIGN.md §16 discusses the substitution, which is the same
// one the sync engine already makes for its barrier. Everything else —
// frames, lockstep, ahead-buffering, poll timers — is genuinely local.
//
// Lockstep bounds the skew: a neighbor can be at most one round ahead
// (executing round r+1 needs my round-r frame, which I only send when I
// execute round r), so one spare frame slot per neighbor suffices and all
// frame/inbox storage is recycled — a warmed synchronizer adds no
// allocator traffic to the steady state (tests/engine_alloc_test.cpp).
//
// The synchronizer assumes reliable in-order delivery: run it either on a
// fault-free engine or wrapped in the reliable transport (sim/reliable.h),
// which restores exactly-once FIFO delivery under message faults.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "sim/async_engine.h"
#include "sim/sync_engine.h"

namespace fdlsp {

/// Tag of the synchronizer's per-neighbor round frames. Payload layout:
/// [header, (inner_tag, word_count, words...)*] — inner senders are implied
/// by the frame's `from` field. The header word packs the round in its low
/// 32 bits and, in the high 32, the sender's index in the *receiver's*
/// adjacency list (computable at setup, since both ends read the same
/// graph) — receipt is O(1) instead of a per-frame binary search.
inline constexpr std::int32_t kSyncFrameTag = 0x51C0;

/// The global boundary rule of the synchronizer (see header comment):
/// counts round completions and replays SyncEngine::run's loop head — stop
/// when every node finished, advance the phase (applying on_phase to every
/// node in ascending id order) when nothing is in flight and every node
/// votes ready, otherwise release the next round. Shared by every
/// SyncOverAsyncProgram of a run; must outlive them.
class RoundSynchronizer {
 public:
  /// Decides the boundary before round 0 immediately (a population that
  /// starts finished stops without executing anything, exactly like the
  /// sync engine).
  explicit RoundSynchronizer(SyncProgramSet& set,
                             std::size_t max_rounds = 1'000'000);

  /// True once the run has ended (all nodes finished, or the round cap).
  bool stopped() const noexcept { return stopped_; }

  /// Current phase counter (what SyncContext::phase reports).
  std::size_t phase() const noexcept { return phase_; }

  /// True iff nodes may execute round `r` now: the boundary before `r` has
  /// been decided and the run has not stopped.
  bool may_execute(std::size_t r) const noexcept {
    return !stopped_ && decided_ && round_ == r;
  }

  /// Node report: round `r` executed (or skipped as finished-and-idle),
  /// having sent `sent` inner messages. The last report of a round decides
  /// the next boundary.
  void complete_round(std::size_t r, std::size_t sent);

  /// Metrics in the sync engine's terms; identical to what SyncEngine::run
  /// would have returned for the same program set.
  SyncMetrics metrics() const;

 private:
  void decide_boundary();
  bool all_finished() const;
  bool all_ready() const;

  SyncProgramSet* set_;
  std::size_t n_;
  std::size_t max_rounds_;
  std::size_t round_ = 0;      // round being decided or executed
  bool decided_ = false;       // boundary before round_ resolved to RUN
  bool stopped_ = false;
  bool completed_ = false;     // stopped with every node finished
  std::size_t completions_ = 0;   // nodes done with round_ so far
  std::size_t round_sent_ = 0;    // inner messages sent during round_
  std::size_t pending_ = 0;       // in-flight inner messages at the boundary
  std::size_t phase_ = 0;
  std::size_t phases_ = 0;
  std::size_t messages_ = 0;
};

/// One node of the synchronizer: an AsyncProgram that drives its slice of a
/// SyncProgramSet in lockstep rounds (see header comment). The graph, set
/// and coordinator must outlive the program.
class SyncOverAsyncProgram final : public AsyncProgram {
 public:
  SyncOverAsyncProgram(const Graph& graph, SyncProgramSet& set, NodeId self,
                       RoundSynchronizer& coordinator);

  void on_start(AsyncContext& ctx) override;
  void on_message(AsyncContext& ctx, Message& message) override;
  void on_timer(AsyncContext& ctx, std::int64_t cookie) override;
  bool finished() const override { return coordinator_->stopped(); }

 private:
  /// Waiting-on-boundary poll timer (cookie ≥ 0 so the reliable wrapper
  /// forwards it; inner sync programs never set timers, so there is no
  /// collision). Under unit delays every boundary is decided before any
  /// node needs it and no poll ever fires; under random/adversarial delays
  /// a node that holds all its frames before the boundary resolves re-polls
  /// every half time unit.
  static constexpr std::int64_t kPollCookie = 0;
  static constexpr double kPollDelay = 0.5;

  /// Executes every round currently unblocked (frames present and boundary
  /// decided); arms the poll timer when only the boundary is missing.
  void drive(AsyncContext& ctx);
  void execute_round(AsyncContext& ctx);
  void capture(NodeId to, const Message& message);
  std::size_t neighbor_index(NodeId v) const;
  Message& next_inbox_slot();
  bool have_all_frames() const noexcept {
    return round_ == 0 || cur_count_ == neighbors_.size();
  }

  SyncProgramSet* set_;
  RoundSynchronizer* coordinator_;
  NodeId self_;
  std::span<const NeighborEntry> neighbors_;
  /// rev_index_[idx]: this node's position in neighbor idx's adjacency
  /// list — stamped into outgoing frame headers (see kSyncFrameTag).
  std::vector<std::uint32_t> rev_index_;
  std::size_t round_ = 0;  // next round to execute
  // Frame slots, one per neighbor (ascending neighbor order). cur_ holds
  // round round_-1 frames (this round's inbox), ahead_ the round_ frames a
  // one-round-ahead neighbor may already have sent. All slots are recycled:
  // promotion swaps the vectors, receipt copy-assigns into the slot.
  std::vector<Message> cur_;
  std::vector<Message> ahead_;
  std::vector<char> cur_received_;
  std::vector<char> ahead_received_;
  std::size_t cur_count_ = 0;
  std::size_t ahead_count_ = 0;
  std::vector<Message> out_frames_;  // per-neighbor frame under construction
  std::vector<Message> inbox_;       // recycled unpacked-inner-message slab
  std::size_t inbox_live_ = 0;
  std::size_t sent_ = 0;  // inner sends captured during the current round
  bool poll_armed_ = false;
  SyncCaptureSink capture_sink_;
};

}  // namespace fdlsp
