// Deterministic fault injection for both simulation engines.
//
// A FaultPlan is the fault-model analogue of the DelaySchedule adversary
// (sim/delay.h): every decision is a pure function of
// (seed, channel, message index) for channel faults and (seed, node) /
// (seed, edge) for node-crash and link-churn schedules, so a faulted run is
// reproducible from the spec alone and two engines with the same spec agree
// even if they post messages in different orders. The plan is installed on
// an engine through the same optional-pointer seam as SimTrace: with no
// plan installed every injection point is a single null check and the run
// is byte-identical to an unfaulted build.
//
// Fault classes:
//   * drop       — the k-th message on a directed channel vanishes.
//   * duplicate  — the message is delivered twice (back to back; per-channel
//                  FIFO is preserved, matching a link-layer retransmit whose
//                  ack was lost).
//   * corrupt    — one payload word (or, for empty payloads, the tag) is
//                  XOR-flipped; the payload size never changes.
//   * burst loss — a per-edge Gilbert–Elliott good/bad Markov chain,
//                  discretized per integer time step and advanced by pure
//                  (seed, edge, step) hashes: while the chain is bad,
//                  messages on either direction of the edge drop with
//                  probability `burst_loss`. Bad runs are truncated after
//                  `burst_max_run` steps and the whole edge stops bursting
//                  after `burst_cap` drops, so burst loss is bounded like
//                  every other class.
//   * PRR matrix — each edge is hashed onto one of `prr_levels` (packet
//                  reception ratios, e.g. loaded from a link-quality trace
//                  via load_prr_levels); messages drop with probability
//                  1 - PRR. PRR drops consume the shared per-channel loss
//                  cap, so they stay bounded.
//   * region outage — `region_count` hashed discs over the node positions
//                  (the UDG plan coordinates when provided, else hashed
//                  virtual unit-square coordinates) each get one finite
//                  down window; every edge with an endpoint inside a disc
//                  drops all traffic while the window is open — spatial
//                  jamming, the correlated analogue of link churn.
//   * node crash — a node fail-stops at a hashed round/time: its callbacks
//                  never run again and traffic to or from it is discarded.
//                  Recovery with state loss is modeled *between* runs by the
//                  crash-recovery workflow (verify/fault_oracles.h), which
//                  re-colors the orphaned arcs with dist_repair.
//   * link churn — an edge is down for one hashed, finite time window; both
//                  directions drop traffic while down.
//
// Bounded loss: drops and corruptions on one channel stop after
// `max_losses_per_channel` (the channel becomes lossless), burst drops per
// edge stop after `burst_cap`, and churn/outage windows are finite. An
// ack/retransmit wrapper (sim/reliable.h) can therefore guarantee delivery,
// which is what the fault-quiescence oracle exploits. The loss counters and
// the burst chains make the plan an object with per-run state: construct a
// fresh plan per run — reuse silently changes decisions, and the engines
// assert against it (on_run_start) in debug builds. Decisions are still
// deterministic, because each (channel, message index) pair is queried
// exactly once, message indices are consumed in order, and engine query
// times are nondecreasing.
#pragma once

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "graph/geometry.h"
#include "graph/graph.h"
#include "graph/types.h"
#include "sim/message.h"
#include "support/check.h"

namespace fdlsp {

/// Pure-data description of a fault model. Value-comparable so shrunk fault
/// cases can be tested for fixpoints.
struct FaultSpec {
  std::uint64_t seed = 1;  ///< drives every fault decision

  double drop_rate = 0.0;       ///< P(message dropped), per posted message
  double duplicate_rate = 0.0;  ///< P(message delivered twice)
  double corrupt_rate = 0.0;    ///< P(one payload word flipped)

  /// Bounded loss: after this many drops+corruptions (i.i.d. or PRR) on one
  /// directed channel, that channel delivers everything (retransmission
  /// terminates).
  std::uint64_t max_losses_per_channel = 8;

  /// Gilbert–Elliott burst loss (armed when burst_rate > 0).
  double burst_rate = 0.0;          ///< P(good -> bad) per time step
  double burst_recover = 0.5;       ///< P(bad -> good) per time step
  double burst_loss = 1.0;          ///< P(drop | chain bad), per message
  std::uint64_t burst_max_run = 8;  ///< bad runs truncated after this many steps
  std::uint64_t burst_cap = 8;      ///< per-edge burst-drop budget

  /// Packet-reception-ratio levels (armed when non-empty); each edge is
  /// hashed onto one level and delivers with that probability. Values must
  /// lie in (0, 1].
  std::vector<double> prr_levels;

  std::uint64_t region_count = 0;  ///< hashed outage discs (armed when > 0)
  double region_radius = 0.25;     ///< disc radius in unit-square coordinates
  double region_horizon = 16.0;    ///< window starts drawn in [0, horizon)
  double region_duration = 4.0;    ///< window length (rounds / time units)

  double crash_fraction = 0.0;  ///< fraction of nodes that fail-stop
  double crash_horizon = 16.0;  ///< crash times drawn in [0, horizon)

  double link_down_fraction = 0.0;  ///< fraction of edges with a down window
  double link_down_horizon = 16.0;  ///< window starts drawn in [0, horizon)
  double link_down_duration = 4.0;  ///< window length (rounds / time units)

  /// True when at least one fault class is armed.
  bool any() const noexcept {
    return drop_rate > 0.0 || duplicate_rate > 0.0 || corrupt_rate > 0.0 ||
           burst_rate > 0.0 || !prr_levels.empty() || region_count > 0 ||
           crash_fraction > 0.0 || link_down_fraction > 0.0;
  }

  /// True when correlated loss (bursts, PRR, or region outages) is armed —
  /// the classes the adaptive transport's budgets must provision for.
  bool correlated() const noexcept {
    return burst_rate > 0.0 || !prr_levels.empty() || region_count > 0;
  }

  friend bool operator==(const FaultSpec&, const FaultSpec&) = default;
};

/// What happens to one posted message.
enum class FaultAction {
  kDeliver,    ///< delivered untouched
  kDrop,       ///< silently discarded
  kDuplicate,  ///< delivered twice
  kCorrupt,    ///< one payload word flipped, then delivered
};

/// Counters of the faults an engine actually injected during one run.
struct FaultStats {
  std::uint64_t dropped = 0;          ///< i.i.d. channel-fault drops
  std::uint64_t duplicated = 0;       ///< extra copies delivered
  std::uint64_t corrupted = 0;        ///< messages with a flipped word
  std::uint64_t burst_dropped = 0;    ///< drops while a burst chain was bad
  std::uint64_t prr_dropped = 0;      ///< drops charged to a PRR level
  std::uint64_t region_drops = 0;     ///< messages lost to a region outage
  std::uint64_t link_down_drops = 0;  ///< messages lost to a down link
  std::uint64_t crash_drops = 0;      ///< messages to/from a dead node
};

/// Deterministic fault decision engine for one run. See the header comment
/// for the determinism contract; construct a fresh plan per run.
class FaultPlan {
 public:
  /// Sizes the crash/churn/burst/region schedules for `graph`. The graph
  /// must be the one the engine runs on (channel ids are its ArcIds).
  /// `positions`, when non-null with one Point per node, anchors the region
  /// outage discs to the real (UDG) layout; otherwise every node gets a
  /// hashed virtual position in the unit square.
  explicit FaultPlan(const FaultSpec& spec, const Graph& graph,
                     const std::vector<Point>* positions = nullptr);

  const FaultSpec& spec() const noexcept { return spec_; }

  /// Called by the engines at the top of run(): asserts (debug builds) that
  /// this plan has not decided messages for an earlier run — the loss
  /// counters and burst chains make reuse silently change decisions.
  void on_run_start() {
    FDLSP_ASSERT(!run_started_,
                 "FaultPlan reused across runs — construct a fresh plan");
    run_started_ = true;
  }

  /// Decision for the `message_index`-th message posted on `channel` at
  /// engine time `now` (sync engines pass the round number). Stateful
  /// through the bounded-loss counters and the burst chains; call exactly
  /// once per (channel, index), indices in increasing order per channel and
  /// `now` nondecreasing across calls (the engines do this by construction).
  FaultAction channel_action(ArcId channel, std::uint64_t message_index,
                             double now = 0.0);

  /// Applies the payload-size-preserving corruption for this (channel,
  /// index): XOR-flips one data word, or the tag when `data` is empty.
  void corrupt_payload(ArcId channel, std::uint64_t message_index,
                       Message& message) const;

  /// True iff this node ever fail-stops under the plan.
  bool node_crashes(NodeId v) const { return crash_time_[v] >= 0.0; }

  /// Crash time of v (sync engines compare against the round number), or a
  /// negative value when v never crashes.
  double crash_time(NodeId v) const { return crash_time_[v]; }

  /// True iff v is dead at time/round `now`.
  bool node_down(NodeId v, double now) const {
    return crash_time_[v] >= 0.0 && now >= crash_time_[v];
  }

  /// True iff the edge under `channel` is inside its down window at `now`.
  bool link_down(ArcId channel, double now) const {
    const double start = link_down_start_[channel >> 1];
    return start >= 0.0 && now >= start &&
           now < start + spec_.link_down_duration;
  }

  /// True iff the edge under `channel` sits inside a region outage disc
  /// whose window is open at `now`. Constant-time per armed region.
  bool region_down(ArcId channel, double now) const {
    if (spec_.region_count == 0) return false;
    std::uint64_t mask = region_mask_[channel >> 1];
    while (mask != 0) {
      const int r = std::countr_zero(mask);
      mask &= mask - 1;
      const double start = region_start_[static_cast<std::size_t>(r)];
      if (now >= start && now < start + spec_.region_duration) return true;
    }
    return false;
  }

  /// The PRR level assigned to the edge under `channel` (1.0 when the PRR
  /// matrix is unarmed).
  double link_prr(ArcId channel) const {
    if (spec_.prr_levels.empty()) return 1.0;
    return spec_.prr_levels[prr_level_[channel >> 1]];
  }

  /// All nodes that fail-stop under the plan, ascending.
  std::vector<NodeId> crashed_nodes() const;

  /// All edges with a down window under the plan, ascending.
  std::vector<EdgeId> churned_edges() const;

  /// All edges covered by at least one region outage disc, ascending.
  std::vector<EdgeId> region_edges() const;

  FaultStats& stats() noexcept { return stats_; }
  const FaultStats& stats() const noexcept { return stats_; }

 private:
  /// Advances the edge's Gilbert–Elliott chain to the integer step of `now`
  /// and returns true iff the chain is bad there. Pinned good once the
  /// edge's burst budget is exhausted.
  bool burst_bad(EdgeId edge, double now);

  FaultSpec spec_;
  std::vector<double> crash_time_;       ///< per node; < 0 == never
  std::vector<double> link_down_start_;  ///< per edge; < 0 == never
  std::vector<std::uint64_t> losses_;    ///< drops+corruptions per channel
  std::vector<std::uint8_t> burst_state_;    ///< per edge; 1 == bad
  std::vector<std::int64_t> burst_step_;     ///< last chain step advanced to
  std::vector<std::uint32_t> burst_run_;     ///< current bad-run length
  std::vector<std::uint64_t> burst_drops_;   ///< burst budget consumed
  std::vector<std::uint32_t> prr_level_;     ///< per edge; index into levels
  std::vector<std::uint64_t> region_mask_;   ///< per edge; bit r == in disc r
  std::vector<double> region_start_;         ///< per region window start
  FaultStats stats_;
  bool run_started_ = false;
};

/// Compact key=value form of a spec, e.g.
///   "fseed=7,drop=0.10,dup=0.05,corrupt=0.02,cap=8,bp=0.05,crash=0.25,..."
/// Only non-default fields are printed; an all-default spec formats as "none".
/// PRR levels render colon-separated (prr=0.9:0.7:0.5). The string is the
/// value of the --faults= replay flag and round-trips through
/// parse_fault_spec.
std::string format_fault_spec(const FaultSpec& spec);

/// Parses the format_fault_spec form ("none" or comma-separated key=value
/// pairs). Unknown keys, non-numeric values, and trailing garbage raise
/// contract_error so repro typos fail loudly.
FaultSpec parse_fault_spec(const std::string& text);

/// Loads PRR levels from a link-quality trace file: whitespace-separated
/// reception ratios in (0, 1], e.g. dumped from a testbed measurement.
/// Raises contract_error on unreadable files, malformed numbers, or values
/// outside (0, 1].
std::vector<double> load_prr_levels(const std::string& path);

}  // namespace fdlsp
