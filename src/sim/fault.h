// Deterministic fault injection for both simulation engines.
//
// A FaultPlan is the fault-model analogue of the DelaySchedule adversary
// (sim/delay.h): every decision is a pure function of
// (seed, channel, message index) for channel faults and (seed, node) /
// (seed, edge) for node-crash and link-churn schedules, so a faulted run is
// reproducible from the spec alone and two engines with the same spec agree
// even if they post messages in different orders. The plan is installed on
// an engine through the same optional-pointer seam as SimTrace: with no
// plan installed every injection point is a single null check and the run
// is byte-identical to an unfaulted build.
//
// Fault classes:
//   * drop       — the k-th message on a directed channel vanishes.
//   * duplicate  — the message is delivered twice (back to back; per-channel
//                  FIFO is preserved, matching a link-layer retransmit whose
//                  ack was lost).
//   * corrupt    — one payload word (or, for empty payloads, the tag) is
//                  XOR-flipped; the payload size never changes.
//   * node crash — a node fail-stops at a hashed round/time: its callbacks
//                  never run again and traffic to or from it is discarded.
//                  Recovery with state loss is modeled *between* runs by the
//                  crash-recovery workflow (verify/fault_oracles.h), which
//                  re-colors the orphaned arcs with dist_repair.
//   * link churn — an edge is down for one hashed, finite time window; both
//                  directions drop traffic while down.
//
// Bounded loss: drops and corruptions on one channel stop after
// `max_losses_per_channel` (the channel becomes lossless), and churn
// windows are finite. An ack/retransmit wrapper (sim/reliable.h) can
// therefore guarantee delivery, which is what the fault-quiescence oracle
// exploits. The loss counters make the plan an object with per-run state:
// construct a fresh plan per run (decisions are still deterministic,
// because each (channel, message index) pair is queried exactly once and
// message indices are consumed in order).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"
#include "sim/message.h"

namespace fdlsp {

/// Pure-data description of a fault model. Value-comparable so shrunk fault
/// cases can be tested for fixpoints.
struct FaultSpec {
  std::uint64_t seed = 1;  ///< drives every fault decision

  double drop_rate = 0.0;       ///< P(message dropped), per posted message
  double duplicate_rate = 0.0;  ///< P(message delivered twice)
  double corrupt_rate = 0.0;    ///< P(one payload word flipped)

  /// Bounded loss: after this many drops+corruptions on one directed
  /// channel, that channel delivers everything (retransmission terminates).
  std::uint64_t max_losses_per_channel = 8;

  double crash_fraction = 0.0;  ///< fraction of nodes that fail-stop
  double crash_horizon = 16.0;  ///< crash times drawn in [0, horizon)

  double link_down_fraction = 0.0;  ///< fraction of edges with a down window
  double link_down_horizon = 16.0;  ///< window starts drawn in [0, horizon)
  double link_down_duration = 4.0;  ///< window length (rounds / time units)

  /// True when at least one fault class is armed.
  bool any() const noexcept {
    return drop_rate > 0.0 || duplicate_rate > 0.0 || corrupt_rate > 0.0 ||
           crash_fraction > 0.0 || link_down_fraction > 0.0;
  }

  friend bool operator==(const FaultSpec&, const FaultSpec&) = default;
};

/// What happens to one posted message.
enum class FaultAction {
  kDeliver,    ///< delivered untouched
  kDrop,       ///< silently discarded
  kDuplicate,  ///< delivered twice
  kCorrupt,    ///< one payload word flipped, then delivered
};

/// Counters of the faults an engine actually injected during one run.
struct FaultStats {
  std::uint64_t dropped = 0;          ///< channel-fault drops
  std::uint64_t duplicated = 0;       ///< extra copies delivered
  std::uint64_t corrupted = 0;        ///< messages with a flipped word
  std::uint64_t link_down_drops = 0;  ///< messages lost to a down link
  std::uint64_t crash_drops = 0;      ///< messages to/from a dead node
};

/// Deterministic fault decision engine for one run. See the header comment
/// for the determinism contract; construct a fresh plan per run.
class FaultPlan {
 public:
  /// Sizes the crash/churn schedules for `graph`. The graph must be the one
  /// the engine runs on (channel ids are its ArcIds).
  FaultPlan(const FaultSpec& spec, const Graph& graph);

  const FaultSpec& spec() const noexcept { return spec_; }

  /// Decision for the `message_index`-th message posted on `channel`.
  /// Stateful only through the bounded-loss counters; call exactly once per
  /// (channel, index), indices in increasing order per channel (the engines
  /// do this by construction).
  FaultAction channel_action(ArcId channel, std::uint64_t message_index);

  /// Applies the payload-size-preserving corruption for this (channel,
  /// index): XOR-flips one data word, or the tag when `data` is empty.
  void corrupt_payload(ArcId channel, std::uint64_t message_index,
                       Message& message) const;

  /// True iff this node ever fail-stops under the plan.
  bool node_crashes(NodeId v) const { return crash_time_[v] >= 0.0; }

  /// Crash time of v (sync engines compare against the round number), or a
  /// negative value when v never crashes.
  double crash_time(NodeId v) const { return crash_time_[v]; }

  /// True iff v is dead at time/round `now`.
  bool node_down(NodeId v, double now) const {
    return crash_time_[v] >= 0.0 && now >= crash_time_[v];
  }

  /// True iff the edge under `channel` is inside its down window at `now`.
  bool link_down(ArcId channel, double now) const {
    const double start = link_down_start_[channel >> 1];
    return start >= 0.0 && now >= start &&
           now < start + spec_.link_down_duration;
  }

  /// All nodes that fail-stop under the plan, ascending.
  std::vector<NodeId> crashed_nodes() const;

  /// All edges with a down window under the plan, ascending.
  std::vector<EdgeId> churned_edges() const;

  FaultStats& stats() noexcept { return stats_; }
  const FaultStats& stats() const noexcept { return stats_; }

 private:
  FaultSpec spec_;
  std::vector<double> crash_time_;       ///< per node; < 0 == never
  std::vector<double> link_down_start_;  ///< per edge; < 0 == never
  std::vector<std::uint64_t> losses_;    ///< drops+corruptions per channel
  FaultStats stats_;
};

/// Compact key=value form of a spec, e.g.
///   "fseed=7,drop=0.10,dup=0.05,corrupt=0.02,cap=8,crash=0.25,..."
/// Only non-default fields are printed; an all-default spec formats as "none".
/// The string is the value of the --faults= replay flag and round-trips
/// through parse_fault_spec.
std::string format_fault_spec(const FaultSpec& spec);

/// Parses the format_fault_spec form ("none" or comma-separated key=value
/// pairs). Unknown keys raise contract_error so repro typos fail loudly.
FaultSpec parse_fault_spec(const std::string& text);

}  // namespace fdlsp
