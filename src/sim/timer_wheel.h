// Hierarchical calendar queue for the asynchronous engine (DESIGN.md §16).
//
// A comparison heap pays O(log n) sifts per event; with thousands of
// messages in flight those sifts dominate the dispatch loop. The wheel
// buckets events by coarse time instead: level 0 holds 128 fine buckets,
// level 1 holds 64 buckets of 128 fine units each, and anything beyond the
// level-1 horizon lands in an overflow min-heap. Insertion is O(1) — a
// multiply, a bucket push and a bitmap bit; each bucket is drained exactly
// once into a small "due heap" ordered by (time, sequence), so pops
// preserve the engine's exact global event order — the wheel changes
// *where* an event waits, never *when* it fires or how it ties against
// other events.
//
// The same structure serves both traffic classes. Message delays are
// clamped to (0, 1] by the delay schedule, so at the default granularity of
// 1/128 time units the level-0 window (one time unit) covers almost every
// message and the due heap stays a few dozen keys deep. Timer delays — the
// adaptive transport's RTO range, 2.0–8.5 — reach level 1 and cascade once.
//
// Correctness invariant: `l0_next_` (the first undrained level-0 bucket)
// splits pending events — everything below it sits in the due heap,
// everything at or above it in a bucket. Event time never runs backwards
// and delays are strictly positive, so a new event below the horizon is
// legal and goes straight into the due heap; buckets are only drained for
// times the engine has not reached yet.
//
// Two occupancy bitmaps (two words for level 0, one for level 1) let the
// drain loop jump straight to the next nonempty bucket with a rotate and a
// count-trailing-zeros, so sparse workloads — a lone DFS token hopping one
// time unit at a time — never linearly scan empty buckets. All bucket
// storage is recycled (clear() keeps capacity), so a warmed wheel inserts,
// cascades and pops with zero allocator traffic — the same steady-state
// contract as the event slab.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <vector>

#include "sim/event_queue.h"
#include "support/check.h"

namespace fdlsp {

class EventWheel {
 public:
  /// Files an event key; `key.time` must be nonnegative.
  // fdlsp-lint: hot — per-event steady-state path, no allocator traffic
  void insert(const AsyncEventKey& key) {
    FDLSP_ASSERT(key.time >= 0.0, "event scheduled before time zero");
    ++count_;
    const std::uint64_t bucket = absolute_bucket(key.time);
    if (bucket < l0_next_) {
      // Below the drain horizon: the bucket was already cascaded, so the
      // key joins the due heap directly. Legal exactly because time is
      // nondecreasing — only past-horizon buckets are ever drained.
      due_.push(key);
      return;
    }
    if (bucket < l0_window_end()) {
      const std::size_t i = bucket % kL0Buckets;
      l0_[i].push_back(key);
      l0_mask_[i / 64] |= std::uint64_t{1} << (i % 64);
      ++l0_count_;
      return;
    }
    const std::uint64_t coarse = bucket / kL0Buckets;
    if (coarse <= l1_spread_ + kL1Buckets) {
      const std::size_t i = coarse % kL1Buckets;
      l1_[i].push_back(key);
      l1_mask_ |= std::uint64_t{1} << i;
      ++l1_count_;
      return;
    }
    overflow_.push(key);
  }

  bool empty() const noexcept { return count_ == 0; }
  std::size_t size() const noexcept { return count_; }

  /// Minimal pending key by (time, sequence). Cascades buckets into the
  /// due heap as needed; amortized O(1) per pop. Requires a nonempty wheel.
  // fdlsp-lint: hot — per-pop steady-state path, no allocator traffic
  const AsyncEventKey& peek() {
    FDLSP_ASSERT(count_ > 0, "peek on empty event wheel");
    advance();
    return due_.top();
  }

  // fdlsp-lint: hot — per-pop steady-state path, no allocator traffic
  AsyncEventKey pop() {
    FDLSP_ASSERT(count_ > 0, "pop on empty event wheel");
    advance();
    --count_;
    return due_.pop();
  }

 private:
  // Level-0 granularity × bucket count = one level-1 bucket, so a level-1
  // cascade refills exactly one level-0 window.
  static constexpr std::size_t kL0Buckets = 128;
  static constexpr std::size_t kL1Buckets = 64;
  // 1/128 time units per fine bucket: message delays live in (0, 1], so
  // one level-0 window covers a full delay span at ~n/128 keys per bucket.
  static constexpr double kInvGranularity = 128.0;

  static std::uint64_t absolute_bucket(double time) noexcept {
    return static_cast<std::uint64_t>(time * kInvGranularity);
  }

  /// End (exclusive) of the level-0 bucket range currently spread, in
  /// absolute level-0 bucket indices.
  std::uint64_t l0_window_end() const noexcept {
    return (l1_spread_ + 1) * kL0Buckets;
  }

  /// First set level-0 bit at or after `pos`, or kL0Buckets when the rest
  /// of the window is empty. Window starts are multiples of kL0Buckets, so
  /// in-window bits never wrap around `pos`.
  std::size_t first_l0_set(std::size_t pos) const noexcept {
    if (pos < 64) {
      if (const std::uint64_t w = l0_mask_[0] >> pos; w != 0)
        return pos + static_cast<std::size_t>(std::countr_zero(w));
      if (l0_mask_[1] != 0)
        return 64 + static_cast<std::size_t>(std::countr_zero(l0_mask_[1]));
      return kL0Buckets;
    }
    if (const std::uint64_t w = l0_mask_[1] >> (pos - 64); w != 0)
      return pos + static_cast<std::size_t>(std::countr_zero(w));
    return kL0Buckets;
  }

  /// Smallest absolute coarse index with a nonempty level-1 bucket. Every
  /// nonempty bucket's coarse index lies in (l1_spread_, l1_spread_ + 64]
  /// and is congruent to its array index mod 64, so a rotate puts bucket
  /// (l1_spread_ + 1) at bit 0 and count-trailing-zeros finds the minimum.
  std::uint64_t first_l1_coarse() const noexcept {
    const auto start = static_cast<unsigned>((l1_spread_ + 1) % kL1Buckets);
    const std::uint64_t rot = std::rotr(l1_mask_, static_cast<int>(start));
    return l1_spread_ + 1 +
           static_cast<std::uint64_t>(std::countr_zero(rot));
  }

  /// Ensures the due heap holds the global minimum: drains level-0 buckets
  /// (cascading level 1 and the overflow heap when a window is exhausted)
  /// until the due heap is nonempty. The bitmaps make every step a jump to
  /// a nonempty bucket, so the loop runs O(1) amortized per pop even when
  /// events are separated by long idle gaps.
  // fdlsp-lint: hot — amortized cascade, no allocator traffic once warmed
  void advance() {
    while (due_.empty()) {
      if (l0_count_ == 0) {
        // Nothing left in the window: teleport the spread position to the
        // first pending level-1 bucket (or the overflow minimum) instead
        // of cascading through empty coarse buckets one by one.
        std::uint64_t target;
        if (l1_count_ != 0) {
          target = first_l1_coarse();
        } else {
          FDLSP_ASSERT(!overflow_.empty(), "wheel accounting out of sync");
          target = absolute_bucket(overflow_.top().time) / kL0Buckets;
        }
        if (target > l1_spread_ + 1) {
          l1_spread_ = target - 1;
          l0_next_ = l1_spread_ * kL0Buckets;
        }
        cascade();
        continue;
      }
      if (l0_next_ == l0_window_end()) {
        cascade();
        continue;
      }
      const std::size_t idx = first_l0_set(l0_next_ % kL0Buckets);
      if (idx == kL0Buckets) {  // rest of the window is empty
        l0_next_ = l0_window_end();
        continue;
      }
      l0_next_ = l1_spread_ * kL0Buckets + idx + 1;
      std::vector<AsyncEventKey>& bucket = l0_[idx];
      // The due heap is empty here, so the whole bucket bulk-loads with a
      // single O(k) heapify instead of k individual sifts.
      due_.refill(bucket);
      l0_count_ -= bucket.size();
      l0_mask_[idx / 64] &= ~(std::uint64_t{1} << (idx % 64));
      bucket.clear();
    }
  }

  /// Advances to the next level-1 bucket: pulls newly-in-range overflow
  /// events into level 1, then spreads the bucket across level 0.
  void cascade() {
    ++l1_spread_;
    l0_next_ = l1_spread_ * kL0Buckets;
    // Strict bound: a coarse index of exactly l1_spread_ + kL1Buckets would
    // alias (mod kL1Buckets) into the bucket this call is about to spread.
    while (!overflow_.empty() &&
           absolute_bucket(overflow_.top().time) / kL0Buckets <
               l1_spread_ + kL1Buckets) {
      const AsyncEventKey key = overflow_.pop();
      const std::size_t i =
          (absolute_bucket(key.time) / kL0Buckets) % kL1Buckets;
      l1_[i].push_back(key);
      l1_mask_ |= std::uint64_t{1} << i;
      ++l1_count_;
    }
    std::vector<AsyncEventKey>& coarse = l1_[l1_spread_ % kL1Buckets];
    for (const AsyncEventKey& key : coarse) {
      const std::uint64_t bucket = absolute_bucket(key.time);
      FDLSP_ASSERT(bucket >= l0_next_ && bucket < l0_window_end(),
                   "level-1 bucket held an out-of-window event");
      const std::size_t i = bucket % kL0Buckets;
      l0_[i].push_back(key);
      l0_mask_[i / 64] |= std::uint64_t{1} << (i % 64);
      ++l0_count_;
    }
    l1_count_ -= coarse.size();
    l1_mask_ &= ~(std::uint64_t{1} << (l1_spread_ % kL1Buckets));
    coarse.clear();
  }

  AsyncEventHeap due_;       // min-heap: keys below the drain horizon
  AsyncEventHeap overflow_;  // min-heap: keys past both windows
  std::array<std::vector<AsyncEventKey>, kL0Buckets> l0_{};
  std::array<std::vector<AsyncEventKey>, kL1Buckets> l1_{};
  std::array<std::uint64_t, 2> l0_mask_{};  // bit i == l0_[i] nonempty
  std::uint64_t l1_mask_ = 0;               // bit i == l1_[i] nonempty
  std::size_t count_ = 0;     // total pending
  std::size_t l0_count_ = 0;  // pending inside l0_
  std::size_t l1_count_ = 0;  // pending inside l1_
  std::uint64_t l0_next_ = 0;   // absolute index of first undrained l0 bucket
  std::uint64_t l1_spread_ = 0; // absolute l1 bucket spread into the l0 window
};

}  // namespace fdlsp
