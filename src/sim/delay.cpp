#include "sim/delay.h"

#include "support/check.h"

namespace fdlsp {

const char* delay_model_name(DelayModel model) {
  switch (model) {
    case DelayModel::kUnit:
      return "unit";
    case DelayModel::kUniformRandom:
      return "uniform";
    case DelayModel::kAdversarial:
      return "adversarial";
  }
  FDLSP_REQUIRE(false, "unknown delay model");
  return "";
}

double AdversarialDelay::delay(ArcId channel, std::uint64_t message_index) {
  // Persistent per-channel persona: hash only (seed, channel) so the bias
  // survives across the whole run, creating channels that consistently race
  // ahead of consistently-lagging ones.
  std::uint64_t persona_state = seed_ ^ (0xa076'1d64'78bd'642fULL + channel);
  const std::uint64_t persona = splitmix64(persona_state);
  // Per-message jitter: hash (seed, channel, index) so repeated queries are
  // consistent regardless of engine post order.
  std::uint64_t jitter_state =
      persona ^ (message_index * 0x9e37'79b9'7f4a'7c15ULL + 0x2545'f491'4f6c'dd1dULL);
  const double jitter =
      static_cast<double>(splitmix64(jitter_state) >> 11) * 0x1.0p-53;

  switch (persona % 4) {
    case 0:  // fast channel: deliveries bunch up near "instant"
      return 0.01 + 0.04 * jitter;
    case 1:  // slow channel: always close to the one-unit maximum
      return 0.90 + 0.10 * jitter;
    case 2:  // bursty channel: alternates stalls and sprints per message
      return (message_index % 2 == 0) ? 0.02 + 0.03 * jitter
                                      : 0.85 + 0.15 * jitter;
    default:  // erratic channel: full-range uniform
      return 1.0 - jitter * 0.999;
  }
}

std::unique_ptr<DelaySchedule> make_delay_schedule(DelayModel model,
                                                   std::uint64_t seed) {
  switch (model) {
    case DelayModel::kUnit:
      return std::make_unique<UnitDelay>();
    case DelayModel::kUniformRandom:
      return std::make_unique<UniformRandomDelay>(seed);
    case DelayModel::kAdversarial:
      return std::make_unique<AdversarialDelay>(seed);
  }
  FDLSP_REQUIRE(false, "unknown delay model");
  return nullptr;
}

}  // namespace fdlsp
