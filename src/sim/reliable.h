// Ack/retransmit hardening: reliable-delivery wrappers for both engines.
//
// A FaultPlan (sim/fault.h) with drop/duplicate/corrupt rates breaks the
// perfect-channel assumption every algorithm in src/algos is written
// against. These wrappers restore it *inside the protocol stack*, the way a
// deployment would: each original message is framed with a checksum and a
// per-peer sequence number, retransmitted until cumulatively acked, verified
// and deduplicated on receipt, and handed to the wrapped program in order.
// The wrapped program is unchanged — it talks through a reframed context
// (SyncContext::reframed / AsyncContext::reframed) whose sends the wrapper
// captures, frames, and schedules.
//
// Why this terminates under a FaultPlan: losses per channel are bounded
// (FaultSpec::max_losses_per_channel) and link-down windows are finite, so
// a frame retransmitted every other round/time-unit is delivered within a
// computable window; see round_dilation() below. Crashed peers never ack,
// so retransmission gives up after the window in which a live peer would
// provably have answered — a frame abandoned by give-up was either
// delivered already (only its ack was lost) or addressed to a dead node.
//
// Synchronous wrapper — round dilation. Lock-step rounds are the engine's
// semantic, so reliability must preserve "all round-k messages arrive
// before round k+1". The wrapper runs inner round k at outer round k*R
// (R = round_dilation(spec)) and uses the R-1 outer rounds in between as
// the retransmission window: frames carry their inner round number,
// receivers buffer them per peer, and the inner inbox for round k is
// assembled — sorted by (peer, sequence) for determinism — once the window
// guarantees every round-k frame has landed. A frame surfacing after its
// assembly point would mean the window math is wrong and fails loudly.
//
// Asynchronous wrapper — timer retransmit. No rounds to piggyback on, so
// unacked frames are retransmitted on a timer (AsyncContext::set_timer);
// out-of-order arrivals are buffered and released to the inner program in
// sequence order. Timer cookies < 0 are reserved for the wrapper; inner
// programs that use timers must stick to cookies >= 0 and get them
// forwarded untouched.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/async_engine.h"
#include "sim/fault.h"
#include "sim/sync_engine.h"

namespace fdlsp {

/// Wire tags of the wrapper protocol. Inner tags travel inside the frame
/// payload, so the wrapped program's own tags can never collide with these.
inline constexpr std::int32_t kReliableFrameTag = 0x52464C46;  // "RFLF"
inline constexpr std::int32_t kReliableAckTag = 0x52464C41;    // "RFLA"

/// Reliable-delivery wrapper for the synchronous engine (round dilation).
class ReliableSyncProgram final : public SyncProgram {
 public:
  /// `spec` must be the spec of the FaultPlan installed on the engine: the
  /// dilation factor is derived from its loss bounds.
  ReliableSyncProgram(std::unique_ptr<SyncProgram> inner,
                      const FaultSpec& spec);

  /// Outer rounds per inner round: the retransmission window sized so that
  /// bounded per-channel loss plus one finite link-down window cannot delay
  /// a frame past its assembly point.
  static std::size_t round_dilation(const FaultSpec& spec);

  /// The wrapped program (result extraction after a run).
  SyncProgram& inner() noexcept { return *inner_; }
  const SyncProgram& inner() const noexcept { return *inner_; }

  void on_round(SyncContext& ctx, std::span<const Message> inbox) override;
  bool ready_for_phase_advance() const override;
  void on_phase(std::size_t new_phase) override;
  bool finished() const override;

 private:
  struct PendingFrame {
    std::int64_t seq;
    std::size_t sent_round;  // outer round of first transmission
    Message frame;           // fully framed, ready to resend
  };
  struct BufferedFrame {
    std::int64_t seq;
    std::int64_t inner_round;
    Message original;  // unframed, from/tag/data restored
  };
  struct PeerState {
    NodeId peer = kNoNode;
    std::int64_t next_seq = 1;   // next outbound sequence number
    std::int64_t acked = 0;      // highest cumulative ack received
    std::int64_t received = 0;   // highest contiguous inbound seq accepted
    std::vector<PendingFrame> pending;   // unacked, seq ascending
    std::vector<BufferedFrame> buffered;  // awaiting inner-round assembly
  };

  PeerState& peer_state(NodeId peer);
  void capture_send(SyncContext& ctx, NodeId to, Message message);
  void handle_frame(SyncContext& ctx, const Message& message);
  void handle_ack(const Message& message);
  bool channels_idle() const;

  std::unique_ptr<SyncProgram> inner_;
  std::size_t dilation_;
  std::size_t next_inner_round_ = 0;  // next inner round to execute
  std::vector<PeerState> peers_;      // sorted by peer id
  std::vector<NodeId> ack_due_;       // peers to ack this round
};

/// Reliable-delivery wrapper for the asynchronous engine (timer retransmit).
class ReliableAsyncProgram final : public AsyncProgram {
 public:
  /// `spec` must be the spec of the FaultPlan installed on the engine: the
  /// retransmission give-up budget is derived from its loss bounds.
  ReliableAsyncProgram(std::unique_ptr<AsyncProgram> inner,
                       const FaultSpec& spec);

  /// The wrapped program (result extraction after a run).
  AsyncProgram& inner() noexcept { return *inner_; }
  const AsyncProgram& inner() const noexcept { return *inner_; }

  void on_start(AsyncContext& ctx) override;
  void on_message(AsyncContext& ctx, const Message& message) override;
  void on_timer(AsyncContext& ctx, std::int64_t cookie) override;
  bool finished() const override;

 private:
  struct PendingFrame {
    std::int64_t seq;
    Message frame;
  };
  struct ReorderedFrame {
    std::int64_t seq;
    Message original;
  };
  struct PeerState {
    NodeId peer = kNoNode;
    std::int64_t next_seq = 1;
    std::int64_t acked = 0;
    std::int64_t received = 0;
    std::size_t attempts = 0;     // retransmission rounds since last progress
    bool timer_armed = false;
    std::vector<PendingFrame> pending;     // unacked, seq ascending
    std::vector<ReorderedFrame> reordered;  // accepted out of order
  };

  PeerState& peer_state(NodeId peer);
  void capture_send(AsyncContext& ctx, NodeId to, Message message);
  void handle_frame(AsyncContext& ctx, const Message& message);
  void handle_ack(const Message& message);
  void arm_timer(AsyncContext& ctx, PeerState& state);
  void deliver_in_order(AsyncContext& ctx, PeerState& state,
                        Message original);

  std::unique_ptr<AsyncProgram> inner_;
  std::size_t give_up_attempts_;
  std::vector<PeerState> peers_;  // sorted by peer id
};

}  // namespace fdlsp
