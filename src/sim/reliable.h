// Ack/retransmit hardening: reliable-delivery wrappers for both engines.
//
// A FaultPlan (sim/fault.h) with drop/duplicate/corrupt/burst rates breaks
// the perfect-channel assumption every algorithm in src/algos is written
// against. These wrappers restore it *inside the protocol stack*, the way a
// deployment would: each original message is framed with a checksum and a
// per-peer sequence number, retransmitted until cumulatively acked, verified
// and deduplicated on receipt, and handed to the wrapped program in order.
// The wrapped program is unchanged — it talks through a reframed context
// (SyncContext::reframed / AsyncContext::reframed) whose sends the wrapper
// captures, frames, and schedules.
//
// Why this terminates under a FaultPlan: losses per channel are bounded
// (FaultSpec::max_losses_per_channel i.i.d.+PRR, FaultSpec::burst_cap for
// bursts) and link-down/region-outage windows are finite, so a
// retransmitted frame is delivered within a computable window; see
// round_dilation() below.
//
// Transport tuning. TransportTuning::kFixed is the first-generation
// transport: retransmit on a fixed cadence, give up unconditionally after a
// budget sized so a live peer would provably have answered. kAdaptive (the
// default) replaces both halves:
//
//   * Pacing — retransmits back off exponentially (sync: 2 -> 4 rounds;
//     async: an RTT/loss-adaptive RTO, clamped) with a deterministic jitter
//     hashed from (self, peer, attempt), so a burst does not trigger a
//     synchronized retransmit storm and the paced run stays reproducible.
//     The async wrapper estimates per-peer smoothed RTT (Karn's rule:
//     retransmitted frames contribute no sample) and an EWMA loss rate that
//     scales the timeout.
//
//   * Failure detection — the binary give-up becomes a per-peer
//     trusted / suspected / dead state machine. A peer unheard for more
//     failed attempts than bounded loss alone could explain (suspect_after:
//     the full round-trip loss budget plus margin) becomes *suspected*:
//     data frames for it are parked and the wrapper probes with heartbeats
//     on a fixed cadence. Any checksum-valid message from the peer
//     re-trusts it (parked frames resume). Only when the probe budget —
//     sized to outlast every finite churn/outage window plus the loss
//     budget — is also exhausted is the peer declared *dead*: parked and
//     pending frames are dropped (counted as `abandoned`) and the channel
//     quiesces. Under loss-only plans a live peer is never even suspected;
//     under churn/outage plans it may be suspected transiently but is never
//     declared dead. Suspicions are exported (suspected_peers) so the
//     verify layer can hold the detector to completeness (crashed peers get
//     suspected) and accuracy (nobody else does).
//
// Synchronous wrapper — round dilation. Lock-step rounds are the engine's
// semantic, so reliability must preserve "all round-k messages arrive
// before round k+1". The wrapper runs inner round k at outer round k*R
// (R = round_dilation(spec, tuning)) and uses the R-1 outer rounds in
// between as the retransmission window: frames carry their inner round
// number, receivers buffer them per peer, and the inner inbox for round k
// is assembled — sorted by (peer, sequence) for determinism — once the
// window guarantees every round-k frame has landed. A frame surfacing after
// its assembly point would mean the window math is wrong and fails loudly.
//
// Asynchronous wrapper — timer retransmit. No rounds to piggyback on, so
// unacked frames are retransmitted on a timer (AsyncContext::set_timer);
// out-of-order arrivals are buffered and released to the inner program in
// sequence order. Timer cookies < 0 are reserved for the wrapper; inner
// programs that use timers must stick to cookies >= 0 and get them
// forwarded untouched.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/async_engine.h"
#include "sim/fault.h"
#include "sim/sync_engine.h"

namespace fdlsp {

/// Wire tags of the wrapper protocol. Inner tags travel inside the frame
/// payload, so the wrapped program's own tags can never collide with these.
inline constexpr std::int32_t kReliableFrameTag = 0x52464C46;      // "RFLF"
inline constexpr std::int32_t kReliableAckTag = 0x52464C41;        // "RFLA"
inline constexpr std::int32_t kReliableHeartbeatTag = 0x52464C48;  // "RFLH"

/// Which transport generation a reliable wrapper runs.
enum class TransportTuning {
  kFixed,     ///< fixed retransmit cadence + unconditional give-up (legacy)
  kAdaptive,  ///< backoff + EWMA estimation + suspect/trust failure detector
};

/// Per-peer verdict of the failure detector.
enum class PeerHealth : std::uint8_t {
  kTrusted,    ///< heard from recently enough; data flows normally
  kSuspected,  ///< unheard past the loss budget; data parked, probing
  kDead,       ///< probe budget exhausted too; traffic abandoned
};

/// Counters of one wrapper's transport-layer work during a run. The run
/// functions aggregate them across nodes into ScheduleResult::transport.
struct TransportStats {
  std::uint64_t retransmits = 0;  ///< data frames re-sent
  std::uint64_t probes = 0;       ///< heartbeat probes sent while suspected
  std::uint64_t suspicions = 0;   ///< trusted -> suspected transitions
  std::uint64_t retrusts = 0;     ///< suspected -> trusted recoveries
  std::uint64_t abandoned = 0;    ///< frames dropped on a dead peer
  double max_backoff = 0.0;       ///< largest retransmit interval reached

  void merge(const TransportStats& other) {
    retransmits += other.retransmits;
    probes += other.probes;
    suspicions += other.suspicions;
    retrusts += other.retrusts;
    abandoned += other.abandoned;
    if (other.max_backoff > max_backoff) max_backoff = other.max_backoff;
  }
};

/// Reliable-delivery wrapper for the synchronous engine (round dilation).
class ReliableSyncProgram final : public SyncProgram {
 public:
  /// `spec` must be the spec of the FaultPlan installed on the engine: the
  /// dilation factor and the detector budgets are derived from its loss
  /// bounds. `tuning` selects the transport generation.
  ReliableSyncProgram(std::unique_ptr<SyncProgram> inner,
                      const FaultSpec& spec,
                      TransportTuning tuning = TransportTuning::kAdaptive);

  /// Outer rounds per inner round: the retransmission window sized so that
  /// bounded per-channel loss (i.i.d. + PRR + burst budgets), every finite
  /// churn/outage window, and — under kAdaptive — one suspect/probe/retrust
  /// cycle cannot delay a frame past its assembly point.
  static std::size_t round_dilation(
      const FaultSpec& spec, TransportTuning tuning = TransportTuning::kAdaptive);

  /// The wrapped program (result extraction after a run).
  SyncProgram& inner() noexcept { return *inner_; }
  const SyncProgram& inner() const noexcept { return *inner_; }

  /// Transport-layer work counters for this node.
  const TransportStats& transport_stats() const noexcept { return stats_; }

  /// Peers this node's detector ever moved to kSuspected, ascending.
  const std::vector<NodeId>& suspected_peers() const noexcept {
    return ever_suspected_;
  }

  void on_round(SyncContext& ctx, std::span<const Message> inbox) override;
  bool ready_for_phase_advance() const override;
  void on_phase(std::size_t new_phase) override;
  bool finished() const override;

 private:
  struct PendingFrame {
    std::int64_t seq;
    std::size_t sent_round;  // outer round of first transmission
    Message frame;           // fully framed, ready to resend
  };
  struct BufferedFrame {
    std::int64_t seq;
    std::int64_t inner_round;
    Message original;  // unframed, from/tag/data restored
  };
  struct PeerState {
    NodeId peer = kNoNode;
    std::int64_t next_seq = 1;   // next outbound sequence number
    std::int64_t acked = 0;      // highest cumulative ack received
    std::int64_t received = 0;   // highest contiguous inbound seq accepted
    PeerHealth health = PeerHealth::kTrusted;
    std::size_t fails = 0;       // retransmit sweeps since last heard
    std::size_t probes_sent = 0; // heartbeats since this suspicion began
    std::size_t next_retx = 0;   // outer round of the next retransmit/probe
    std::vector<PendingFrame> pending;    // unacked, seq ascending
    std::vector<PendingFrame> parked;     // shelved while suspected
    std::vector<BufferedFrame> buffered;  // awaiting inner-round assembly
  };

  PeerState& peer_state(NodeId peer);
  void capture_send(SyncContext& ctx, NodeId to, Message message);
  void handle_frame(SyncContext& ctx, const Message& message);
  void handle_ack(const Message& message, std::size_t round);
  void heard(PeerState& state, std::size_t round);
  void sweep_adaptive(SyncContext& ctx, std::size_t round);
  void sweep_fixed(SyncContext& ctx, std::size_t round);
  std::size_t backoff_interval(const SyncContext& ctx, const PeerState& state);
  bool channels_idle() const;

  std::unique_ptr<SyncProgram> inner_;
  TransportTuning tuning_;
  std::size_t dilation_;
  std::size_t suspect_after_;  // failed sweeps before kSuspected
  std::size_t probe_budget_;   // heartbeats before kDead
  std::size_t next_inner_round_ = 0;  // next inner round to execute
  std::vector<PeerState> peers_;      // sorted by peer id
  std::vector<NodeId> ack_due_;       // peers to ack this round
  std::vector<NodeId> ever_suspected_;  // sorted, deduplicated
  TransportStats stats_;
};

/// Reliable-delivery wrapper for the asynchronous engine (timer retransmit).
class ReliableAsyncProgram final : public AsyncProgram {
 public:
  /// `spec` must be the spec of the FaultPlan installed on the engine: the
  /// retransmission and detector budgets are derived from its loss bounds.
  ReliableAsyncProgram(std::unique_ptr<AsyncProgram> inner,
                       const FaultSpec& spec,
                       TransportTuning tuning = TransportTuning::kAdaptive);

  /// The wrapped program (result extraction after a run).
  AsyncProgram& inner() noexcept { return *inner_; }
  const AsyncProgram& inner() const noexcept { return *inner_; }

  /// Transport-layer work counters for this node.
  const TransportStats& transport_stats() const noexcept { return stats_; }

  /// Peers this node's detector ever moved to kSuspected, ascending.
  const std::vector<NodeId>& suspected_peers() const noexcept {
    return ever_suspected_;
  }

  void on_start(AsyncContext& ctx) override;
  void on_message(AsyncContext& ctx, Message& message) override;
  void on_timer(AsyncContext& ctx, std::int64_t cookie) override;
  bool finished() const override;

 private:
  struct PendingFrame {
    std::int64_t seq;
    Message frame;
    double sent_at = 0.0;        // first-transmission time (RTT sampling)
    bool retransmitted = false;  // Karn's rule: no RTT sample once resent
  };
  struct ReorderedFrame {
    std::int64_t seq;
    Message original;
  };
  struct PeerState {
    NodeId peer = kNoNode;
    std::int64_t next_seq = 1;
    std::int64_t acked = 0;
    std::int64_t received = 0;
    std::size_t attempts = 0;     // retransmission timers since last progress
    PeerHealth health = PeerHealth::kTrusted;
    std::size_t probes_sent = 0;  // heartbeats since this suspicion began
    double srtt = 0.0;            // smoothed RTT (0 until first sample)
    double loss_hat = 0.0;        // EWMA loss estimate driving the RTO
    bool timer_armed = false;
    std::vector<PendingFrame> pending;      // unacked, seq ascending
    std::vector<PendingFrame> parked;       // shelved while suspected
    std::vector<ReorderedFrame> reordered;  // accepted out of order
  };

  PeerState& peer_state(NodeId peer);
  void capture_send(AsyncContext& ctx, NodeId to, const Message& message);
  void handle_frame(AsyncContext& ctx, const Message& message);
  void handle_ack(AsyncContext& ctx, const Message& message);
  void heard(AsyncContext& ctx, PeerState& state);
  void arm_timer(AsyncContext& ctx, PeerState& state, double delay);
  double retransmit_interval(const AsyncContext& ctx, const PeerState& state);
  void deliver_in_order(AsyncContext& ctx, PeerState& state,
                        Message& original);
  Message take_frame();
  void recycle_frame(Message&& frame);

  std::unique_ptr<AsyncProgram> inner_;
  TransportTuning tuning_;
  std::size_t give_up_attempts_;  // kFixed: attempts before abandoning
  std::size_t suspect_after_;     // kAdaptive: attempts before kSuspected
  std::size_t probe_budget_;      // kAdaptive: heartbeats before kDead
  std::vector<PeerState> peers_;  // sorted by peer id
  std::vector<NodeId> ever_suspected_;  // sorted, deduplicated
  /// Retired frame buffers, recycled into new frames: once every channel has
  /// seen its largest frame, framing allocates nothing (the buffers just
  /// circulate between the pool and the per-peer pending lists).
  std::vector<Message> frame_pool_;
  /// Reused for every in-order unframe; its spilled capacity survives
  /// between deliveries. Safe to share across peers: dispatch is serial and
  /// the inner handler finishes with the message before the next frame.
  Message unframe_scratch_;
  TransportStats stats_;
};

}  // namespace fdlsp
