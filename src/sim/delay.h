// Message delay schedules for the asynchronous engine.
//
// A DelaySchedule decides how long the k-th message posted on a directed
// channel is in flight. The engine clamps deliveries so that per-channel
// FIFO order is always preserved, which means a schedule controls the
// *interleaving across channels* — exactly the degree of freedom an
// asynchronous adversary has. All schedules return delays in (0, 1] so the
// standard asynchronous time measure (every message takes at most one time
// unit) stays valid and completion-time metrics remain comparable across
// models.
//
// Three built-in schedules:
//   kUnit          — every hop takes exactly 1 time unit (worst-case time
//                    complexity model; the synchronous-looking baseline).
//   kUniformRandom — i.i.d. uniform in (0, 1]; mild reordering.
//   kAdversarial   — seeded worst-case-ish adversary: each channel gets a
//                    persistent persona (fast / slow / bursty) so some
//                    channels race far ahead of others, maximizing the
//                    cross-channel reorderings a protocol must tolerate
//                    while still respecting FIFO per channel. Deliveries are
//                    a pure function of (seed, channel, message index), so
//                    runs are reproducible from the seed alone.
#pragma once

#include <cstdint>
#include <memory>

#include "graph/types.h"
#include "support/rng.h"

namespace fdlsp {

/// Message delay model selector (see the schedule classes below).
enum class DelayModel {
  kUnit,           ///< every hop takes exactly 1 time unit
  kUniformRandom,  ///< uniform in (0, 1], FIFO preserved per channel
  kAdversarial,    ///< seeded adversary reordering deliveries across channels
};

/// Human-readable model name (for test diagnostics and repro commands).
const char* delay_model_name(DelayModel model);

/// Decides the in-flight delay of each message. Implementations must return
/// values in (0, 1] and must be deterministic given their construction
/// parameters (the engine relies on this for run reproducibility).
class DelaySchedule {
 public:
  virtual ~DelaySchedule() = default;

  /// Delay for the `message_index`-th message posted on directed channel
  /// `channel` (the ArcId of the sender->receiver arc).
  virtual double delay(ArcId channel, std::uint64_t message_index) = 0;

  /// True iff delay() returns exactly 1.0 for every argument. The engine
  /// folds the constant into its scheduling path, skipping a virtual call
  /// per message; the produced timestamps are identical either way.
  virtual bool constant_unit() const { return false; }
};

/// Every message takes exactly one time unit.
class UnitDelay final : public DelaySchedule {
 public:
  double delay(ArcId, std::uint64_t) override { return 1.0; }
  bool constant_unit() const override { return true; }
};

/// I.i.d. uniform delays in (0, 1], drawn in post order from a seeded Rng.
class UniformRandomDelay final : public DelaySchedule {
 public:
  explicit UniformRandomDelay(std::uint64_t seed) : rng_(seed) {}

  double delay(ArcId, std::uint64_t) override {
    return 1.0 - rng_.next_double();  // (0, 1]
  }

 private:
  Rng rng_;
};

/// Seeded worst-case-ish adversary. Stateless: the delay is a hash of
/// (seed, channel, message index), so two engines with the same seed agree
/// even if they post messages in different orders.
class AdversarialDelay final : public DelaySchedule {
 public:
  explicit AdversarialDelay(std::uint64_t seed) : seed_(seed) {}

  double delay(ArcId channel, std::uint64_t message_index) override;

 private:
  std::uint64_t seed_;
};

/// Builds the schedule for a model selector; `seed` feeds the stochastic
/// schedules and is ignored by kUnit.
std::unique_ptr<DelaySchedule> make_delay_schedule(DelayModel model,
                                                   std::uint64_t seed);

}  // namespace fdlsp
