#include "sim/sync_engine.h"

#include <utility>

#include "support/check.h"

namespace fdlsp {

void SyncContext::send(NodeId to, Message message) {
  message.from = self_;
  engine_->deliver(self_, to, std::move(message));
}

void SyncContext::broadcast(Message message) {
  for (const NeighborEntry& entry : neighbors_) send(entry.to, message);
}

SyncEngine::SyncEngine(const Graph& graph,
                       std::vector<std::unique_ptr<SyncProgram>> programs)
    : graph_(graph), programs_(std::move(programs)) {
  FDLSP_REQUIRE(programs_.size() == graph_.num_nodes(),
                "one program per node required");
  inbox_.resize(programs_.size());
  next_inbox_.resize(programs_.size());
}

void SyncEngine::deliver(NodeId from, NodeId to, Message message) {
  FDLSP_REQUIRE(graph_.has_edge(from, to),
                "nodes may only message direct neighbors");
  if (trace_ != nullptr) trace_->on_send(from, to);
  next_inbox_[to].push_back(std::move(message));
  ++pending_messages_;
  ++total_messages_;
}

SyncMetrics SyncEngine::run(std::size_t max_rounds) {
  SyncMetrics metrics;
  std::size_t phase = 0;
  const std::size_t n = graph_.num_nodes();

  // A program's finished/ready state only changes inside its own callbacks
  // (cross-node mutation would be a protocol-isolation violation, flagged by
  // the happens-before checker), so both predicates are cached per node and
  // refreshed right after each callback. The old loop rescanned every
  // program up to three times per round; this one touches only the nodes
  // that actually ran.
  std::vector<char> finished(n, 0);
  std::vector<char> ready(n, 0);  // finished, or voting for phase advance
  std::size_t finished_count = 0;
  std::size_t ready_count = 0;
  const auto refresh = [&](NodeId v) {
    const bool fin = programs_[v]->finished();
    const bool rdy = fin || programs_[v]->ready_for_phase_advance();
    if (fin != (finished[v] != 0)) {
      finished[v] = fin ? 1 : 0;
      if (fin) ++finished_count; else --finished_count;
    }
    if (rdy != (ready[v] != 0)) {
      ready[v] = rdy ? 1 : 0;
      if (rdy) ++ready_count; else --ready_count;
    }
  };
  for (NodeId v = 0; v < n; ++v) refresh(v);

  while (metrics.rounds < max_rounds) {
    if (finished_count == n) {
      metrics.completed = true;
      break;
    }

    // Barrier: when nothing is in flight and everyone votes ready, advance
    // the phase counter instead of burning an idle round.
    if (pending_messages_ == 0 && ready_count == n) {
      ++phase;
      ++metrics.phases;
      for (NodeId v = 0; v < n; ++v) {
        if (trace_ != nullptr) trace_->on_local_step(v);
        current_node_ = v;
        programs_[v]->on_phase(phase);
        current_node_ = kNoNode;
        refresh(v);
      }
      if (finished_count == n) {
        metrics.completed = true;
        break;
      }
    }

    // Swap buffers: messages sent last round become this round's inboxes.
    inbox_.swap(next_inbox_);
    for (auto& box : next_inbox_) box.clear();
    pending_messages_ = 0;

    for (NodeId v = 0; v < n; ++v) {
      if (finished[v] != 0 && inbox_[v].empty()) continue;
      if (trace_ != nullptr) {
        for (const Message& message : inbox_[v])
          trace_->on_deliver(message.from, v);
        trace_->on_local_step(v);
      }
      SyncContext ctx(*this, v, graph_.neighbors(v), metrics.rounds, phase);
      current_node_ = v;
      programs_[v]->on_round(ctx, inbox_[v]);
      current_node_ = kNoNode;
      refresh(v);
    }
    ++metrics.rounds;
  }

  metrics.messages = total_messages_;
  if (!metrics.completed) metrics.completed = finished_count == n;
  return metrics;
}

}  // namespace fdlsp
