#include "sim/sync_engine.h"

#include <algorithm>
#include <utility>

#include "support/alloc_audit.h"
#include "support/check.h"
#include "support/thread_pool.h"

namespace fdlsp {

// fdlsp-lint: hot — per-message steady-state path, no allocator traffic
void SyncContext::send(NodeId to, Message message) {
  message.from = self_;
  if (capture_ != nullptr) {
    (*capture_)(to, message);
    return;
  }
  if (sink_ != nullptr) {
    (*sink_)(to, std::move(message));
    return;
  }
  if (lanes_ != nullptr) {
    // Parallel round: validate against this shard's ChannelTable slice
    // (shard-local memory, doubles as the neighbor proof) and buffer the
    // send in the lane of the destination's shard for the post-barrier
    // merge; shared engine state is untouched.
    FDLSP_REQUIRE(channels_->channel(engine_->graph_, self_, to) != kNoArc,
                  "nodes may only message direct neighbors");
    lanes_[plan_.shard_of(to)].add(to, std::move(message));
    return;
  }
  engine_->deliver(self_, to, std::move(message));
}

// fdlsp-lint: hot — per-message steady-state path, no allocator traffic
void SyncContext::send_trusted(NodeId to, Message message) {
  message.from = self_;
  if (capture_ != nullptr) {
    (*capture_)(to, message);
    return;
  }
  if (sink_ != nullptr) {
    (*sink_)(to, std::move(message));
    return;
  }
  if (lanes_ != nullptr) {
    lanes_[plan_.shard_of(to)].add(to, std::move(message));
    return;
  }
  engine_->deliver_trusted(self_, to, std::move(message));
}

// fdlsp-lint: hot — per-message steady-state path, no allocator traffic
void SyncContext::send_trusted_copy(NodeId to, const Message& message) {
  if (capture_ != nullptr) {
    // The capture sink borrows: no temporary, no ownership transfer — the
    // zero-alloc twin of the owning-sink branch below. The sink knows the
    // sending node; `from` stays whatever the caller's scratch holds.
    (*capture_)(to, message);
    return;
  }
  if (sink_ != nullptr) {
    // Sinks take ownership; materialize the copy they expect (the reliable
    // wrapper's framing path, never the zero-alloc hot path).
    Message copy = message;
    copy.from = self_;
    (*sink_)(to, std::move(copy));
    return;
  }
  if (lanes_ != nullptr) {
    lanes_[plan_.shard_of(to)].add_copy(to, message, self_);
    return;
  }
  engine_->deliver_trusted_copy(self_, to, message);
}

// fdlsp-lint: hot — per-message steady-state path, no allocator traffic
void SyncContext::broadcast(Message&& message) {
  if (neighbors_.empty()) return;
  for (std::size_t i = 0; i + 1 < neighbors_.size(); ++i)
    send_trusted_copy(neighbors_[i].to, message);
  // The last copy is the original: move instead of copy, so a broadcast
  // to d neighbors performs d-1 payload copies, not d.
  send_trusted(neighbors_.back().to, std::move(message));
}

// fdlsp-lint: hot — per-message steady-state path, no allocator traffic
void SyncContext::broadcast(const Message& message) {
  for (const NeighborEntry& neighbor : neighbors_)
    send_trusted_copy(neighbor.to, message);
}

SyncEngine::SyncEngine(const Graph& graph,
                       std::vector<std::unique_ptr<SyncProgram>> programs)
    : graph_(graph),
      owned_(std::make_unique<VectorProgramSet>(std::move(programs))),
      set_(owned_.get()) {
  FDLSP_REQUIRE(set_->size() == graph_.num_nodes(),
                "one program per node required");
  const std::size_t n = graph_.num_nodes();
  inbox_.resize(n);
  next_inbox_.resize(n);
  inbox_count_.assign(n, 0);
  next_count_.assign(n, 0);
  dirty_inbox_.resize(1);  // serial path uses bucket 0
  dirty_next_.resize(1);
}

SyncEngine::SyncEngine(const Graph& graph, SyncProgramSet& set)
    : graph_(graph), set_(&set) {
  FDLSP_REQUIRE(set_->size() == graph_.num_nodes(),
                "one program per node required");
  const std::size_t n = graph_.num_nodes();
  inbox_.resize(n);
  next_inbox_.resize(n);
  inbox_count_.assign(n, 0);
  next_count_.assign(n, 0);
  dirty_inbox_.resize(1);
  dirty_next_.resize(1);
}

std::size_t SyncEngine::planned_shards() const noexcept {
  const std::size_t n = graph_.num_nodes();
  if (pool_ == nullptr || trace_ != nullptr || faults_ != nullptr || n == 0 ||
      pool_->on_worker_thread())
    return 1;
  const std::size_t requested =
      shards_config_ != 0 ? shards_config_
                          : std::max<std::size_t>(pool_->size(), 1) * 4;
  return std::min(n, std::max<std::size_t>(1, requested));
}

// fdlsp-lint: hot — per-message steady-state path, no allocator traffic
void SyncEngine::deliver(NodeId from, NodeId to, Message&& message) {
  if (faults_ != nullptr) {
    // One CSR row search resolves the directed channel and validates
    // neighbor-ness at once — the old path did a has_edge binary search
    // plus find_edge plus an Edge load for every message.
    const ArcId channel = channels_.channel(graph_, from, to);
    FDLSP_REQUIRE(channel != kNoArc,
                  "nodes may only message direct neighbors");
    deliver_faulted(channel, from, to, std::move(message));
    return;
  }
  FDLSP_REQUIRE(graph_.has_edge(from, to),
                "nodes may only message direct neighbors");
  enqueue(from, to, std::move(message));
}

// fdlsp-lint: hot — per-message steady-state path, no allocator traffic
void SyncEngine::deliver_trusted(NodeId from, NodeId to, Message&& message) {
  if (faults_ != nullptr) {
    // The channel lookup subsumes the neighbor-ness proof, so the fault
    // path costs the same whether the sender was validated or trusted.
    const ArcId channel = channels_.channel(graph_, from, to);
    FDLSP_ASSERT(channel != kNoArc, "trusted send to a non-neighbor");
    deliver_faulted(channel, from, to, std::move(message));
    return;
  }
  enqueue(from, to, std::move(message));
}

// fdlsp-lint: hot — per-message steady-state path, no allocator traffic
void SyncEngine::deliver_trusted_copy(NodeId from, NodeId to,
                                      const Message& message) {
  if (faults_ != nullptr) {
    const ArcId channel = channels_.channel(graph_, from, to);
    FDLSP_ASSERT(channel != kNoArc, "trusted send to a non-neighbor");
    // The fault path mutates per-copy (corruption) and forces serial
    // execution anyway; materialize the copy it expects.
    Message copy = message;
    copy.from = from;
    deliver_faulted(channel, from, to, std::move(copy));
    return;
  }
  enqueue_copy(from, to, message);
}

/// The next recycled slot of `to`'s next-round inbox; grows the slab only
/// until it reaches the box's high-water mark. `words` is the payload size
/// about to be copy-assigned in (0 for the swapping move path): when the
/// next slot's capacity is too small, a dead slot past the live count with
/// enough capacity is swapped into position first. Dead slots are
/// unordered — only [0, count) is ever observed — so this recycles the
/// box's total spilled capacity instead of requiring every slot *index* to
/// independently grow to the largest payload that ever lands there.
/// `dirty` is the dirty-list bucket recording first-touched boxes: the
/// serial path passes bucket 0, the parallel lane merge for destination
/// shard d passes bucket d (so concurrent merges never share a bucket).
// fdlsp-lint: hot — per-message steady-state path, no allocator traffic
Message& SyncEngine::next_slot(NodeId to, std::size_t words,
                               std::vector<NodeId>& dirty) {
  std::vector<Message>& box = next_inbox_[to];
  std::size_t& count = next_count_[to];
  // Invariant: a box with live messages is always listed in some dirty
  // bucket, so the round swap rewinds only boxes that actually held
  // messages.
  if (count == 0) dirty.push_back(to);
  if (count == box.size()) {
    box.emplace_back();
  } else if (words > box[count].data.capacity()) {
    for (std::size_t j = count + 1; j < box.size(); ++j) {
      if (box[j].data.capacity() >= words) {
        box[count].data.swap(box[j].data);
        break;
      }
    }
  }
  return box[count++];
}

// fdlsp-lint: hot — per-message steady-state path, no allocator traffic
void SyncEngine::enqueue(NodeId from, NodeId to, Message&& message) {
  // on_send fires once per copy actually enqueued (dropped messages emit no
  // event, duplicates emit two), keeping the per-channel send/deliver
  // pairing the happens-before checker relies on exact under faults.
  if (trace_ != nullptr) trace_->on_send(from, to);
  // Swap-based move-assignment: the slot's previous payload capacity
  // migrates into the (expiring) source instead of being freed here.
  next_slot(to, 0, dirty_next_[0]) = std::move(message);
  ++pending_messages_;
  ++total_messages_;
}

// fdlsp-lint: hot — per-message steady-state path, no allocator traffic
void SyncEngine::enqueue_copy(NodeId from, NodeId to, const Message& message) {
  if (trace_ != nullptr) trace_->on_send(from, to);
  // Copy-assignment reuses the recycled slot's payload capacity — the
  // zero-alloc landing pad for broadcast(const Message&).
  Message& slot = next_slot(to, message.data.size(), dirty_next_[0]);
  slot = message;
  slot.from = from;
  ++pending_messages_;
  ++total_messages_;
}

// fdlsp-lint: hot — per-message steady-state path, no allocator traffic
void SyncEngine::deliver_faulted(ArcId channel, NodeId from, NodeId to,
                                 Message message) {
  const double now = static_cast<double>(current_round_);
  // A crashed sender never runs, but sends from the crash round itself are
  // possible when the crash lands mid-round; treat both endpoints dead.
  if (faults_->node_down(from, now) || faults_->node_down(to, now)) {
    ++faults_->stats().crash_drops;
    return;
  }
  if (faults_->link_down(channel, now)) {
    ++faults_->stats().link_down_drops;
    return;
  }
  // fdlsp-lint: hot — region outage test is a per-edge bitmask probe
  if (faults_->region_down(channel, now)) {
    ++faults_->stats().region_drops;
    return;
  }
  const std::uint64_t index = channel_posts_[channel]++;
  switch (faults_->channel_action(channel, index, now)) {
    case FaultAction::kDrop:
      return;
    case FaultAction::kDuplicate:
      enqueue_copy(from, to, message);
      enqueue(from, to, std::move(message));
      return;
    case FaultAction::kCorrupt:
      faults_->corrupt_payload(channel, index, message);
      enqueue(from, to, std::move(message));
      return;
    case FaultAction::kDeliver:
      enqueue(from, to, std::move(message));
      return;
  }
  FDLSP_REQUIRE(false, "unknown fault action");
}

SyncMetrics SyncEngine::run(std::size_t max_rounds) {
  SyncMetrics metrics;
  std::size_t phase = 0;
  const std::size_t n = graph_.num_nodes();
  if (faults_ != nullptr) {
    faults_->on_run_start();
    channel_posts_.assign(2 * graph_.num_edges(), 0);
    // Per-(neighbor-pair) channel ids, computed once and reused for every
    // faulted message.
    channels_.build(graph_);
  }

  // Parallel rounds need protocol isolation *and* silent seams: a trace
  // observes callback/send order and a fault plan mutates per-message
  // state, so either forces the serial path (they are observation and
  // adversary channels, not hot paths). planned_shards() folds the whole
  // predicate: it returns 1 whenever a seam forces serial.
  // (The on_worker_thread check keeps a pooled engine nested inside a
  // pooled sweep on the same pool from waiting for its own task.)
  const bool parallel =
      pool_ != nullptr && trace_ == nullptr && faults_ == nullptr && n > 0 &&
      !pool_->on_worker_thread();
  const std::size_t shards = parallel ? planned_shards() : 1;
  // Program sets size per-shard scratch here, before any callback runs.
  // The serial path prepares for exactly one shard (ctx.shard() == 0).
  set_->prepare_shards(shards);

  // A program's finished/ready state only changes inside its own callbacks
  // (cross-node mutation would be a protocol-isolation violation, flagged by
  // the happens-before checker), so both predicates are cached per node and
  // refreshed right after each callback. The old loop rescanned every
  // program up to three times per round; this one touches only the nodes
  // that actually ran. A crashed node counts as terminated: its callbacks
  // stop and it neither blocks the barrier nor run completion.
  std::vector<char> finished(n, 0);
  std::vector<char> ready(n, 0);  // finished, or voting for phase advance
  std::size_t finished_count = 0;
  std::size_t ready_count = 0;
  const auto is_down = [&](NodeId v) {
    return faults_ != nullptr &&
           faults_->node_down(v, static_cast<double>(current_round_));
  };
  const auto refresh = [&](NodeId v) {
    const bool fin = is_down(v) || set_->finished(v);
    const bool rdy = fin || set_->ready_for_phase_advance(v);
    if (fin != (finished[v] != 0)) {
      finished[v] = fin ? 1 : 0;
      if (fin) ++finished_count; else --finished_count;
    }
    if (rdy != (ready[v] != 0)) {
      ready[v] = rdy ? 1 : 0;
      if (rdy) ++ready_count; else --ready_count;
    }
  };
  current_round_ = 0;
  for (NodeId v = 0; v < n; ++v) refresh(v);

  // --- sharded-run machinery (unused on the serial path) ---
  // Shards are contiguous node ranges. Each shard's callbacks buffer their
  // sends in a row of S lanes, one per destination shard; after the
  // barrier, the merge for destination d drains column d in ascending
  // source-shard order. Contiguity makes that order the serial (sender id,
  // send order) enqueue order exactly, for any shard count — which is what
  // makes the sharded engine byte-identical to the serial one.
  std::vector<std::ptrdiff_t> shard_fin(shards, 0);
  std::vector<std::ptrdiff_t> shard_rdy(shards, 0);
  if (parallel) {
    plan_ = ShardPlan{n, shards};
    // Sized-once, recycled-forever, like the inbox slabs: a later run with
    // fewer shards leaves the extra lanes and buckets empty (lanes are
    // always reset after a merge, buckets cleared by the round swap).
    if (lanes_.size() < shards * shards) lanes_.resize(shards * shards);
    if (shard_enqueued_.size() < shards) shard_enqueued_.assign(shards, 0);
    if (dirty_next_.size() < shards) {
      dirty_next_.resize(shards);
      dirty_inbox_.resize(shards);
    }
    if (sliced_shards_ != shards) {
      shard_channels_.resize(shards);
      for (std::size_t s = 0; s < shards; ++s)
        shard_channels_[s].build_slice(graph_,
                                       static_cast<NodeId>(plan_.lo(s)),
                                       static_cast<NodeId>(plan_.hi(s)));
      sliced_shards_ = shards;
    }
  }
  // Refresh of one node from a worker: per-node flags are distinct memory
  // locations, counters are accumulated per shard and merged after the
  // barrier. No faults on this path, so is_down never applies.
  const auto refresh_local = [&](NodeId v, std::ptrdiff_t& dfin,
                                 std::ptrdiff_t& drdy) {
    const bool fin = set_->finished(v);
    const bool rdy = fin || set_->ready_for_phase_advance(v);
    if (fin != (finished[v] != 0)) {
      finished[v] = fin ? 1 : 0;
      dfin += fin ? 1 : -1;
    }
    if (rdy != (ready[v] != 0)) {
      ready[v] = rdy ? 1 : 0;
      drdy += rdy ? 1 : -1;
    }
  };
  const auto round_shard = [&](std::size_t s, std::size_t round_no,
                               std::size_t phase_no) {
    SyncSendSlab* lanes = lanes_.data() + s * shards;
    std::ptrdiff_t dfin = 0;
    std::ptrdiff_t drdy = 0;
    const std::size_t hi = plan_.hi(s);
    for (std::size_t i = plan_.lo(s); i < hi; ++i) {
      const NodeId v = static_cast<NodeId>(i);
      if (finished[v] != 0 && inbox_count_[v] == 0) continue;
      SyncContext ctx(this, v, graph_.neighbors(v), round_no, phase_no);
      ctx.lanes_ = lanes;
      ctx.plan_ = plan_;
      ctx.shard_ = s;
      ctx.channels_ = &shard_channels_[s];
      set_->on_round(
          v, ctx, std::span<const Message>(inbox_[v].data(), inbox_count_[v]));
      refresh_local(v, dfin, drdy);
    }
    shard_fin[s] = dfin;
    shard_rdy[s] = drdy;
  };
  const auto phase_shard = [&](std::size_t s, std::size_t new_phase) {
    std::ptrdiff_t dfin = 0;
    std::ptrdiff_t drdy = 0;
    const std::size_t hi = plan_.hi(s);
    for (std::size_t i = plan_.lo(s); i < hi; ++i) {
      const NodeId v = static_cast<NodeId>(i);
      set_->on_phase(v, new_phase);
      refresh_local(v, dfin, drdy);
    }
    shard_fin[s] = dfin;
    shard_rdy[s] = drdy;
  };
  const auto run_sharded = [&](auto&& body) {
    for (std::size_t s = 0; s < shards; ++s)
      pool_->submit([&body, s] { body(s); });
    pool_->wait_idle();
  };
  // Merge for destination shard d: drain column d of the lane matrix in
  // ascending source-shard order into the recycled next-round inboxes.
  // Runs one worker per destination shard — worker d only touches shard
  // d's boxes/counts, its own dirty bucket, and its own enqueued counter,
  // so the merges are disjoint by construction. Swap-moving out of a lane
  // slot circulates payload capacities between the lane and the inbox
  // slab — nothing is freed, the steady state stays allocation-free.
  const auto merge_column = [&](std::size_t d) {
    std::vector<NodeId>& dirty = dirty_next_[d];
    std::size_t count = 0;
    for (std::size_t s = 0; s < shards; ++s) {
      SyncSendSlab& lane = lanes_[s * shards + d];
      for (SyncBufferedSend& send : lane.entries()) {
        next_slot(send.to, 0, dirty) = std::move(send.message);
        ++count;
      }
      lane.reset();  // rewind, not freed: capacity is reused
    }
    shard_enqueued_[d] = count;
  };
  // Applies the buffered finished/ready deltas and message counts on the
  // driving thread, after a barrier.
  const auto apply_shard_deltas = [&] {
    for (std::size_t s = 0; s < shards; ++s) {
      finished_count = static_cast<std::size_t>(
          static_cast<std::ptrdiff_t>(finished_count) + shard_fin[s]);
      ready_count = static_cast<std::size_t>(
          static_cast<std::ptrdiff_t>(ready_count) + shard_rdy[s]);
      shard_fin[s] = 0;
      shard_rdy[s] = 0;
    }
  };

  while (metrics.rounds < max_rounds) {
    current_round_ = metrics.rounds;
    if (faults_ != nullptr) {
      // Down-ness changes with the round counter, not inside callbacks, so
      // the cached predicates must be recomputed when nodes cross their
      // crash time (fault path only; the zero-fault loop never scans).
      for (NodeId v = 0; v < n; ++v)
        if (finished[v] == 0 && is_down(v)) refresh(v);
    }
    if (finished_count == n) {
      metrics.completed = true;
      break;
    }

    // One audited "round" spans the phase barrier, the slab swap, and the
    // node callbacks — everything the dispatch of round r executes. A
    // completion break inside the barrier leaves the bracket unclosed,
    // which simply drops that partial round from the profile.
    if (alloc_audit_ != nullptr) alloc_audit_->begin_round();

    // Barrier: when nothing is in flight and everyone votes ready, advance
    // the phase counter instead of burning an idle round.
    if (pending_messages_ == 0 && ready_count == n) {
      ++phase;
      ++metrics.phases;
      if (parallel) {
        run_sharded([&](std::size_t s) { phase_shard(s, phase); });
        apply_shard_deltas();  // on_phase cannot send; no lanes to merge
      } else {
        for (NodeId v = 0; v < n; ++v) {
          if (is_down(v)) continue;
          if (trace_ != nullptr) trace_->on_local_step(v);
          current_node_ = v;
          set_->on_phase(v, phase);
          current_node_ = kNoNode;
          refresh(v);
        }
      }
      if (finished_count == n) {
        metrics.completed = true;
        break;
      }
    }

    // Swap slabs: messages sent last round become this round's inboxes.
    // Only the counts of boxes that actually held messages are rewound
    // (dirty buckets); the consumed Message elements stay alive in the
    // slab, so vector and payload capacity survive — steady-state rounds
    // perform no allocator traffic.
    inbox_.swap(next_inbox_);
    inbox_count_.swap(next_count_);
    dirty_inbox_.swap(dirty_next_);
    for (std::vector<NodeId>& bucket : dirty_next_) {
      for (NodeId v : bucket) next_count_[v] = 0;
      bucket.clear();
    }
    pending_messages_ = 0;

    if (parallel) {
      run_sharded(
          [&](std::size_t s) { round_shard(s, metrics.rounds, phase); });
      run_sharded(merge_column);
      apply_shard_deltas();
      for (std::size_t d = 0; d < shards; ++d) {
        pending_messages_ += shard_enqueued_[d];
        total_messages_ += shard_enqueued_[d];
        shard_enqueued_[d] = 0;
      }
    } else {
      for (NodeId v = 0; v < n; ++v) {
        const std::span<const Message> inbox(inbox_[v].data(),
                                             inbox_count_[v]);
        if (is_down(v)) {
          // Mail queued for a dead node dies with it.
          if (faults_ != nullptr)
            faults_->stats().crash_drops += inbox.size();
          inbox_count_[v] = 0;
          continue;
        }
        if (finished[v] != 0 && inbox.empty()) continue;
        if (trace_ != nullptr) {
          for (const Message& message : inbox)
            trace_->on_deliver(message.from, v);
          trace_->on_local_step(v);
        }
        SyncContext ctx(this, v, graph_.neighbors(v), metrics.rounds, phase);
        current_node_ = v;
        set_->on_round(v, ctx, inbox);
        current_node_ = kNoNode;
        refresh(v);
      }
    }
    if (alloc_audit_ != nullptr) alloc_audit_->end_round();
    ++metrics.rounds;
  }

  metrics.messages = total_messages_;
  if (!metrics.completed) metrics.completed = finished_count == n;
  if (faults_ != nullptr) metrics.faults = faults_->stats();
  return metrics;
}

}  // namespace fdlsp
