#include "sim/sync_engine.h"

#include <utility>

#include "support/check.h"

namespace fdlsp {

void SyncContext::send(NodeId to, Message message) {
  message.from = self_;
  if (sink_ != nullptr) {
    (*sink_)(to, std::move(message));
    return;
  }
  engine_->deliver(self_, to, std::move(message));
}

void SyncContext::broadcast(Message message) {
  for (const NeighborEntry& entry : neighbors_) send(entry.to, message);
}

SyncEngine::SyncEngine(const Graph& graph,
                       std::vector<std::unique_ptr<SyncProgram>> programs)
    : graph_(graph), programs_(std::move(programs)) {
  FDLSP_REQUIRE(programs_.size() == graph_.num_nodes(),
                "one program per node required");
  inbox_.resize(programs_.size());
  next_inbox_.resize(programs_.size());
}

void SyncEngine::deliver(NodeId from, NodeId to, Message message) {
  FDLSP_REQUIRE(graph_.has_edge(from, to),
                "nodes may only message direct neighbors");
  if (faults_ != nullptr) {
    deliver_faulted(from, to, std::move(message));
    return;
  }
  enqueue(from, to, std::move(message));
}

void SyncEngine::enqueue(NodeId from, NodeId to, Message message) {
  // on_send fires once per copy actually enqueued (dropped messages emit no
  // event, duplicates emit two), keeping the per-channel send/deliver
  // pairing the happens-before checker relies on exact under faults.
  if (trace_ != nullptr) trace_->on_send(from, to);
  next_inbox_[to].push_back(std::move(message));
  ++pending_messages_;
  ++total_messages_;
}

void SyncEngine::deliver_faulted(NodeId from, NodeId to, Message message) {
  const double now = static_cast<double>(current_round_);
  // A crashed sender never runs, but sends from the crash round itself are
  // possible when the crash lands mid-round; treat both endpoints dead.
  if (faults_->node_down(from, now) || faults_->node_down(to, now)) {
    ++faults_->stats().crash_drops;
    return;
  }
  const EdgeId e = graph_.find_edge(from, to);
  const Edge& edge = graph_.edge(e);
  const ArcId channel =
      static_cast<ArcId>((e << 1) | (from == edge.u ? 0u : 1u));
  if (faults_->link_down(channel, now)) {
    ++faults_->stats().link_down_drops;
    return;
  }
  const std::uint64_t index = channel_posts_[channel]++;
  switch (faults_->channel_action(channel, index)) {
    case FaultAction::kDrop:
      return;
    case FaultAction::kDuplicate:
      enqueue(from, to, message);
      enqueue(from, to, std::move(message));
      return;
    case FaultAction::kCorrupt:
      faults_->corrupt_payload(channel, index, message);
      enqueue(from, to, std::move(message));
      return;
    case FaultAction::kDeliver:
      enqueue(from, to, std::move(message));
      return;
  }
  FDLSP_REQUIRE(false, "unknown fault action");
}

SyncMetrics SyncEngine::run(std::size_t max_rounds) {
  SyncMetrics metrics;
  std::size_t phase = 0;
  const std::size_t n = graph_.num_nodes();
  if (faults_ != nullptr) channel_posts_.assign(2 * graph_.num_edges(), 0);

  // A program's finished/ready state only changes inside its own callbacks
  // (cross-node mutation would be a protocol-isolation violation, flagged by
  // the happens-before checker), so both predicates are cached per node and
  // refreshed right after each callback. The old loop rescanned every
  // program up to three times per round; this one touches only the nodes
  // that actually ran. A crashed node counts as terminated: its callbacks
  // stop and it neither blocks the barrier nor run completion.
  std::vector<char> finished(n, 0);
  std::vector<char> ready(n, 0);  // finished, or voting for phase advance
  std::size_t finished_count = 0;
  std::size_t ready_count = 0;
  const auto is_down = [&](NodeId v) {
    return faults_ != nullptr &&
           faults_->node_down(v, static_cast<double>(current_round_));
  };
  const auto refresh = [&](NodeId v) {
    const bool fin = is_down(v) || programs_[v]->finished();
    const bool rdy = fin || programs_[v]->ready_for_phase_advance();
    if (fin != (finished[v] != 0)) {
      finished[v] = fin ? 1 : 0;
      if (fin) ++finished_count; else --finished_count;
    }
    if (rdy != (ready[v] != 0)) {
      ready[v] = rdy ? 1 : 0;
      if (rdy) ++ready_count; else --ready_count;
    }
  };
  current_round_ = 0;
  for (NodeId v = 0; v < n; ++v) refresh(v);

  while (metrics.rounds < max_rounds) {
    current_round_ = metrics.rounds;
    if (faults_ != nullptr) {
      // Down-ness changes with the round counter, not inside callbacks, so
      // the cached predicates must be recomputed when nodes cross their
      // crash time (fault path only; the zero-fault loop never scans).
      for (NodeId v = 0; v < n; ++v)
        if (finished[v] == 0 && is_down(v)) refresh(v);
    }
    if (finished_count == n) {
      metrics.completed = true;
      break;
    }

    // Barrier: when nothing is in flight and everyone votes ready, advance
    // the phase counter instead of burning an idle round.
    if (pending_messages_ == 0 && ready_count == n) {
      ++phase;
      ++metrics.phases;
      for (NodeId v = 0; v < n; ++v) {
        if (is_down(v)) continue;
        if (trace_ != nullptr) trace_->on_local_step(v);
        current_node_ = v;
        programs_[v]->on_phase(phase);
        current_node_ = kNoNode;
        refresh(v);
      }
      if (finished_count == n) {
        metrics.completed = true;
        break;
      }
    }

    // Swap buffers: messages sent last round become this round's inboxes.
    inbox_.swap(next_inbox_);
    for (auto& box : next_inbox_) box.clear();
    pending_messages_ = 0;

    for (NodeId v = 0; v < n; ++v) {
      if (is_down(v)) {
        // Mail queued for a dead node dies with it.
        if (faults_ != nullptr)
          faults_->stats().crash_drops += inbox_[v].size();
        inbox_[v].clear();
        continue;
      }
      if (finished[v] != 0 && inbox_[v].empty()) continue;
      if (trace_ != nullptr) {
        for (const Message& message : inbox_[v])
          trace_->on_deliver(message.from, v);
        trace_->on_local_step(v);
      }
      SyncContext ctx(*this, v, graph_.neighbors(v), metrics.rounds, phase);
      current_node_ = v;
      programs_[v]->on_round(ctx, inbox_[v]);
      current_node_ = kNoNode;
      refresh(v);
    }
    ++metrics.rounds;
  }

  metrics.messages = total_messages_;
  if (!metrics.completed) metrics.completed = finished_count == n;
  if (faults_ != nullptr) metrics.faults = faults_->stats();
  return metrics;
}

}  // namespace fdlsp
