#include "sim/sync_engine.h"

#include <algorithm>
#include <utility>

#include "support/check.h"

namespace fdlsp {

void SyncContext::send(NodeId to, Message message) {
  message.from = self_;
  engine_->deliver(self_, to, std::move(message));
}

void SyncContext::broadcast(Message message) {
  for (const NeighborEntry& entry : neighbors_) send(entry.to, message);
}

SyncEngine::SyncEngine(const Graph& graph,
                       std::vector<std::unique_ptr<SyncProgram>> programs)
    : graph_(graph), programs_(std::move(programs)) {
  FDLSP_REQUIRE(programs_.size() == graph_.num_nodes(),
                "one program per node required");
  inbox_.resize(programs_.size());
  next_inbox_.resize(programs_.size());
}

void SyncEngine::deliver(NodeId from, NodeId to, Message message) {
  FDLSP_REQUIRE(graph_.has_edge(from, to),
                "nodes may only message direct neighbors");
  if (trace_ != nullptr) trace_->on_send(from, to);
  next_inbox_[to].push_back(std::move(message));
  ++pending_messages_;
  ++total_messages_;
}

SyncMetrics SyncEngine::run(std::size_t max_rounds) {
  SyncMetrics metrics;
  std::size_t phase = 0;
  const std::size_t n = graph_.num_nodes();

  auto all_finished = [&] {
    return std::all_of(programs_.begin(), programs_.end(),
                       [](const auto& p) { return p->finished(); });
  };

  while (metrics.rounds < max_rounds) {
    if (all_finished()) {
      metrics.completed = true;
      break;
    }

    // Barrier: when nothing is in flight and everyone votes ready, advance
    // the phase counter instead of burning an idle round.
    if (pending_messages_ == 0 &&
        std::all_of(programs_.begin(), programs_.end(), [](const auto& p) {
          return p->finished() || p->ready_for_phase_advance();
        })) {
      ++phase;
      ++metrics.phases;
      for (NodeId v = 0; v < n; ++v) {
        if (trace_ != nullptr) trace_->on_local_step(v);
        current_node_ = v;
        programs_[v]->on_phase(phase);
        current_node_ = kNoNode;
      }
      if (all_finished()) {
        metrics.completed = true;
        break;
      }
    }

    // Swap buffers: messages sent last round become this round's inboxes.
    inbox_.swap(next_inbox_);
    for (auto& box : next_inbox_) box.clear();
    pending_messages_ = 0;

    for (NodeId v = 0; v < n; ++v) {
      if (programs_[v]->finished() && inbox_[v].empty()) continue;
      if (trace_ != nullptr) {
        for (const Message& message : inbox_[v])
          trace_->on_deliver(message.from, v);
        trace_->on_local_step(v);
      }
      SyncContext ctx(*this, v, graph_.neighbors(v), metrics.rounds, phase);
      current_node_ = v;
      programs_[v]->on_round(ctx, inbox_[v]);
      current_node_ = kNoNode;
    }
    ++metrics.rounds;
  }

  metrics.messages = total_messages_;
  if (!metrics.completed) metrics.completed = all_finished();
  return metrics;
}

}  // namespace fdlsp
