// Contiguous node partition used by the sharded synchronous engine.
//
// The engine splits the node id space [0, n) into `count` contiguous
// shards. Shard s owns [lo(s), hi(s)); the split mirrors the PR 5 parallel
// round loop (s * n / count boundaries) so existing round sharding and the
// new state sharding agree on ownership. Contiguity is what makes the
// cross-shard lane merge canonical: concatenating the per-source-shard
// lanes of one destination in ascending source-shard order reproduces the
// serial (sender id, send order) enqueue order exactly — the byte-identical
// determinism contract of tests/engine_parallel_test.cpp.
#pragma once

#include <cstddef>

#include "graph/types.h"
#include "support/check.h"

namespace fdlsp {

/// Partition of [0, n) into `count` contiguous ranges.
struct ShardPlan {
  std::size_t n = 0;
  std::size_t count = 1;

  /// First node of shard s.
  std::size_t lo(std::size_t s) const noexcept { return s * n / count; }

  /// One past the last node of shard s.
  std::size_t hi(std::size_t s) const noexcept {
    return (s + 1) * n / count;
  }

  /// Shard owning node v — the inverse of lo()/hi(): the smallest s with
  /// hi(s) > v, i.e. ceil(((v+1) * count) / n) - 1. Both factors fit well
  /// inside 64 bits for any graph the engine can hold (n, count <= 2^32).
  std::size_t shard_of(NodeId v) const noexcept {
    FDLSP_ASSERT(n > 0 && v < n, "node outside the plan");
    return ((static_cast<std::size_t>(v) + 1) * count - 1) / n;
  }
};

}  // namespace fdlsp
