#include "sim/synchronizer.h"

#include <algorithm>
#include <cstdint>
#include <span>

#include "support/check.h"

namespace fdlsp {

// ---------------------------------------------------------------------------
// RoundSynchronizer

RoundSynchronizer::RoundSynchronizer(SyncProgramSet& set,
                                     std::size_t max_rounds)
    : set_(&set), n_(set.size()), max_rounds_(max_rounds) {
  decide_boundary();
}

void RoundSynchronizer::complete_round(std::size_t r, std::size_t sent) {
  FDLSP_REQUIRE(!stopped_ && decided_ && r == round_,
                "round completion outside the decided round");
  round_sent_ += sent;
  messages_ += sent;
  ++completions_;
  if (completions_ < n_) return;
  // Last completion of the round: everything sent this round is in flight
  // across the boundary, exactly like the sync engine's pending counter.
  completions_ = 0;
  pending_ = round_sent_;
  round_sent_ = 0;
  ++round_;
  decided_ = false;
  decide_boundary();
}

bool RoundSynchronizer::all_finished() const {
  for (std::size_t v = 0; v < n_; ++v)
    if (!set_->finished(static_cast<NodeId>(v))) return false;
  return true;
}

bool RoundSynchronizer::all_ready() const {
  for (std::size_t v = 0; v < n_; ++v)
    if (!set_->ready_for_phase_advance(static_cast<NodeId>(v))) return false;
  return true;
}

void RoundSynchronizer::decide_boundary() {
  // Mirrors the head of SyncEngine::run's round loop exactly, in the same
  // order: round cap, stop test, phase barrier (on_phase applied to every
  // node in ascending id order — it cannot send, so the barrier consumes
  // no communication round), then release the round.
  if (round_ >= max_rounds_) {
    stopped_ = true;
    completed_ = all_finished();
    return;
  }
  if (all_finished()) {
    stopped_ = true;
    completed_ = true;
    return;
  }
  if (pending_ == 0 && all_ready()) {
    ++phase_;
    ++phases_;
    for (std::size_t v = 0; v < n_; ++v)
      set_->on_phase(static_cast<NodeId>(v), phase_);
    if (all_finished()) {
      stopped_ = true;
      completed_ = true;
      return;
    }
  }
  decided_ = true;
}

SyncMetrics RoundSynchronizer::metrics() const {
  SyncMetrics metrics;
  metrics.rounds = round_;
  metrics.messages = messages_;
  metrics.phases = phases_;
  metrics.completed = completed_;
  return metrics;
}

// ---------------------------------------------------------------------------
// SyncOverAsyncProgram

SyncOverAsyncProgram::SyncOverAsyncProgram(const Graph& graph,
                                           SyncProgramSet& set, NodeId self,
                                           RoundSynchronizer& coordinator)
    : set_(&set),
      coordinator_(&coordinator),
      self_(self),
      neighbors_(graph.neighbors(self)) {
  const std::size_t degree = neighbors_.size();
  cur_.resize(degree);
  ahead_.resize(degree);
  cur_received_.assign(degree, 0);
  ahead_received_.assign(degree, 0);
  out_frames_.resize(degree);
  rev_index_.resize(degree);
  for (std::size_t idx = 0; idx < degree; ++idx) {
    const std::span<const NeighborEntry> theirs =
        graph.neighbors(neighbors_[idx].to);
    const auto* it = std::lower_bound(
        theirs.data(), theirs.data() + theirs.size(), self_,
        [](const NeighborEntry& entry, NodeId id) { return entry.to < id; });
    FDLSP_REQUIRE(it != theirs.data() + theirs.size() && it->to == self_,
                  "adjacency lists are not symmetric");
    rev_index_[idx] = static_cast<std::uint32_t>(it - theirs.data());
  }
  capture_sink_ = [this](NodeId to, const Message& message) {
    capture(to, message);
  };
}

void SyncOverAsyncProgram::on_start(AsyncContext& ctx) { drive(ctx); }

// fdlsp-lint: hot — per-frame steady-state path, no allocator traffic
void SyncOverAsyncProgram::on_message(AsyncContext& ctx, Message& message) {
  if (coordinator_->stopped()) return;  // frames in flight past the stop
  FDLSP_REQUIRE(message.tag == kSyncFrameTag,
                "synchronizer received a non-frame message");
  FDLSP_REQUIRE(!message.data.empty(), "sync frame missing its round header");
  const auto header = static_cast<std::uint64_t>(message.data[0]);
  const auto frame_round = static_cast<std::size_t>(header & 0xffffffffu);
  // The sender stamped our index for it into the header (see
  // kSyncFrameTag); the cross-check against `from` keeps the same
  // non-neighbor rejection the binary search used to provide.
  const auto idx = static_cast<std::size_t>(header >> 32);
  FDLSP_REQUIRE(idx < neighbors_.size() && neighbors_[idx].to == message.from,
                "sync frame header names the wrong neighbor slot");
  if (frame_round + 1 == round_) {
    FDLSP_REQUIRE(cur_received_[idx] == 0, "duplicate sync frame");
    // Move-assign swaps payload buffers: the slot takes the frame, the
    // dispatch scratch inherits the slot's recycled capacity.
    cur_[idx] = std::move(message);
    cur_received_[idx] = 1;
    ++cur_count_;
  } else {
    // Lockstep bounds the skew to one round (see sim/synchronizer.h): a
    // frame is either for this round or from a neighbor one round ahead.
    FDLSP_REQUIRE(frame_round == round_,
                  "sync frame outside the lockstep window");
    FDLSP_REQUIRE(ahead_received_[idx] == 0, "duplicate sync frame");
    ahead_[idx] = std::move(message);
    ahead_received_[idx] = 1;
    ++ahead_count_;
  }
  drive(ctx);
}

void SyncOverAsyncProgram::on_timer(AsyncContext& ctx, std::int64_t cookie) {
  (void)cookie;  // single timer kind; checked in debug builds only
  FDLSP_ASSERT(cookie == kPollCookie, "unexpected synchronizer timer");
  poll_armed_ = false;
  if (!coordinator_->stopped()) drive(ctx);
}

// fdlsp-lint: hot — per-event steady-state path, no allocator traffic
void SyncOverAsyncProgram::drive(AsyncContext& ctx) {
  // Degree-0 nodes (and the last completer of a round) can run several
  // rounds back to back — the loop drains everything currently unblocked.
  while (coordinator_->may_execute(round_) && have_all_frames())
    execute_round(ctx);
  if (!coordinator_->stopped() && have_all_frames() && !poll_armed_ &&
      !coordinator_->may_execute(round_)) {
    // All frames are here but the boundary is still undecided — some node
    // has not completed the previous round. The coordinator cannot wake us
    // (it is passive), so poll. Unit-delay runs never reach this.
    poll_armed_ = true;
    ctx.set_timer(kPollDelay, kPollCookie);
  }
}

// fdlsp-lint: hot — per-round steady-state path, no allocator traffic
void SyncOverAsyncProgram::execute_round(AsyncContext& ctx) {
  const std::size_t r = round_;
  const std::size_t degree = neighbors_.size();

  // Assemble the round's inbox from the per-neighbor frames in ascending
  // neighbor order — exactly the serial sync engine's inbox order
  // (ascending sender id, send order within one sender).
  inbox_live_ = 0;
  if (r > 0) {
    for (std::size_t idx = 0; idx < degree; ++idx) {
      const Message& frame = cur_[idx];
      const SmallPayload& words = frame.data;
      FDLSP_ASSERT(!words.empty() &&
                       (static_cast<std::uint64_t>(words[0]) & 0xffffffffu) ==
                           static_cast<std::uint64_t>(r) - 1,
                   "sync frame round mismatch");
      std::size_t pos = 1;
      while (pos < words.size()) {
        const auto count = static_cast<std::size_t>(words[pos + 1]);
        Message& slot = next_inbox_slot();
        slot.from = frame.from;
        slot.tag = static_cast<std::int32_t>(words[pos]);
        slot.data.assign(words.data() + pos + 2,
                         words.data() + pos + 2 + count);
        pos += 2 + count;
      }
    }
  }

  sent_ = 0;
  for (std::size_t idx = 0; idx < degree; ++idx) {
    out_frames_[idx].tag = kSyncFrameTag;
    out_frames_[idx].data.clear();  // spilled capacity survives
    out_frames_[idx].data.push_back(static_cast<std::int64_t>(
        static_cast<std::uint64_t>(r) |
        (static_cast<std::uint64_t>(rev_index_[idx]) << 32)));
  }

  // The serial engine skips a finished node with an empty inbox; the tick
  // frames below still go out — they are the synchronizer's transport, not
  // protocol traffic, and neighbors wait on them.
  if (!(set_->finished(self_) && inbox_live_ == 0)) {
    SyncContext sctx = SyncContext::external(
        self_, neighbors_, r, coordinator_->phase(), &capture_sink_);
    set_->on_round(self_, sctx,
                   std::span<const Message>(inbox_.data(), inbox_live_));
  }

  for (std::size_t idx = 0; idx < degree; ++idx)
    ctx.send_copy_at(idx, out_frames_[idx]);

  // Promote the ahead slots: round-r frames become current for round r+1.
  // Vector swaps are O(1) and the Message slots keep their capacities.
  ++round_;
  cur_.swap(ahead_);
  cur_received_.swap(ahead_received_);
  cur_count_ = ahead_count_;
  ahead_count_ = 0;
  std::fill(ahead_received_.begin(), ahead_received_.end(), char{0});

  coordinator_->complete_round(r, sent_);
}

// fdlsp-lint: hot — per-inner-send steady-state path, no allocator traffic
void SyncOverAsyncProgram::capture(NodeId to, const Message& message) {
  SmallPayload& frame = out_frames_[neighbor_index(to)].data;
  frame.push_back(message.tag);
  frame.push_back(static_cast<std::int64_t>(message.data.size()));
  frame.insert(frame.end(), message.data.begin(), message.data.end());
  ++sent_;
}

std::size_t SyncOverAsyncProgram::neighbor_index(NodeId v) const {
  const auto* it = std::lower_bound(
      neighbors_.data(), neighbors_.data() + neighbors_.size(), v,
      [](const NeighborEntry& entry, NodeId id) { return entry.to < id; });
  // The binary search doubles as the neighbor-ness validation the engine's
  // send path would have performed for a direct send.
  FDLSP_REQUIRE(it != neighbors_.data() + neighbors_.size() && it->to == v,
                "synchronizer addressed a non-neighbor");
  return static_cast<std::size_t>(it - neighbors_.data());
}

// fdlsp-lint: hot — per-inner-message steady-state path; the slab grows a
// bounded number of times, then every round reuses the same slots.
Message& SyncOverAsyncProgram::next_inbox_slot() {
  if (inbox_live_ == inbox_.size()) inbox_.emplace_back();
  return inbox_[inbox_live_++];
}

}  // namespace fdlsp
