// Asynchronous message-passing engine.
//
// Event-driven: messages are delivered one at a time in timestamp order.
// Channels are FIFO per ordered (sender, receiver) pair. Delays come from a
// pluggable DelaySchedule (see sim/delay.h): the unit-delay model used for
// worst-case time complexity, uniformly random delays in (0, 1], or a
// seeded adversarial schedule that maximizes cross-channel reordering. The
// completion "time" metric is the timestamp of the last delivery — the
// standard asynchronous time measure where every message takes at most one
// unit.
//
// Internals (DESIGN.md §16): events live in a recycling slab
// (sim/event_queue.h) and the ordering structures hold only
// (time, sequence, slot) keys. Nodes are partitioned into contiguous
// shards (sim/shard.h); each shard owns a hierarchical calendar queue
// (sim/timer_wheel.h) holding both its message events — O(1) bucket
// insertion instead of O(log n) heap sifts — and its set_timer traffic.
// Dispatch pops the globally minimal (time, sequence) key via a tournament
// over the shard heads; sequences come from one global counter assigned at
// post time, so the delivery order is provably identical to a single
// serial heap for every shard count. Cross-shard posts raised inside a
// handler are buffered in per-(source, destination) lanes and flushed
// after the handler returns — the structure a parallel dispatcher needs,
// exercised here under the serial determinism oracle. Trace and fault
// seams force the serial path (one shard), exactly as SyncEngine.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "sim/channel_table.h"
#include "sim/delay.h"
#include "sim/event_queue.h"
#include "sim/fault.h"
#include "sim/message.h"
#include "sim/shard.h"
#include "sim/timer_wheel.h"
#include "sim/trace.h"

namespace fdlsp {

class AllocAudit;
class AsyncEngine;

/// Capture target for a reframed context's sends (see AsyncContext::reframed).
/// The sink borrows the message for the duration of the call — it must copy
/// what it keeps — so a captured send of a recycled scratch message adds no
/// allocator traffic (the reliable wrapper frames the payload into its own
/// recycled buffers; sim/reliable.cpp). The message's `from` field is
/// unspecified: the capturing layer knows which node it drives.
using AsyncSendSink = std::function<void(NodeId to, const Message& message)>;

/// Context handed to asynchronous handlers; valid only during the call.
class AsyncContext {
 public:
  NodeId self() const noexcept { return self_; }

  /// Simulated time of the event being handled.
  double now() const noexcept { return now_; }

  /// Direct neighbors of this node.
  std::span<const NeighborEntry> neighbors() const noexcept {
    return neighbors_;
  }

  /// Sends a message to a direct neighbor.
  void send(NodeId to, Message message);

  /// Sends a message the caller keeps (e.g. a reusable scratch buffer): the
  /// engine copy-assigns the payload into a recycled event slot, so a
  /// warmed run sends with zero allocator traffic even for spilled
  /// payloads — the async twin of SyncContext::broadcast(const Message&).
  /// The message's `from` field is left untouched; the scheduled copy
  /// carries this node's id regardless.
  void send_copy(NodeId to, const Message& message);

  /// send_copy addressed by position in neighbors() instead of node id:
  /// the channel resolves by direct adjacency-row lookup, skipping the
  /// per-send neighbor search — the natural call for programs that iterate
  /// their neighbor span anyway (the synchronizer's frame fan-out).
  void send_copy_at(std::size_t neighbor_index, const Message& message);

  /// Sends a copy of the message to every neighbor.
  void broadcast(Message message);

  /// Schedules an on_timer(cookie) callback on this node after `delay` time
  /// units (any positive value; timers are local and bypass the delay
  /// schedule). The timeout primitive retransmission layers need — a purely
  /// message-driven node cannot act on silence.
  void set_timer(double delay, std::int64_t cookie);

  /// A copy of this context for a protocol layered *inside* another program
  /// (sim/reliable.h): send()/broadcast() feed `sink` instead of the engine
  /// so the outer program can frame and schedule the traffic itself.
  /// set_timer still reaches the engine. `sink` must outlive the copy.
  AsyncContext reframed(const AsyncSendSink* sink) const {
    AsyncContext copy = *this;
    copy.sink_ = sink;
    return copy;
  }

 private:
  friend class AsyncEngine;
  AsyncContext(AsyncEngine& engine, NodeId self,
               std::span<const NeighborEntry> neighbors, double now)
      : engine_(&engine), self_(self), neighbors_(neighbors), now_(now) {}

  AsyncEngine* engine_;
  NodeId self_;
  std::span<const NeighborEntry> neighbors_;
  double now_;
  const AsyncSendSink* sink_ = nullptr;  // non-null: capture instead of send
};

/// A node program for the asynchronous engine.
class AsyncProgram {
 public:
  virtual ~AsyncProgram() = default;

  /// Called once at time 0 before any delivery (spontaneous wake-up; only
  /// initiator nodes typically act).
  virtual void on_start(AsyncContext& ctx) = 0;

  /// Called for each delivered message. The message borrows the engine's
  /// dispatch scratch buffer: it is valid only for the duration of the
  /// call, exactly as the context. The reference is mutable so a handler
  /// that keeps the payload can move-assign it out (SmallPayload moves
  /// swap buffers, so the scratch inherits the handler's recycled
  /// capacity) instead of copying; the engine never reads the message
  /// after the handler returns.
  virtual void on_message(AsyncContext& ctx, Message& message) = 0;

  /// Called when a timer set via AsyncContext::set_timer expires. Default:
  /// ignore (plain message-driven programs never see timers).
  virtual void on_timer(AsyncContext& ctx, std::int64_t cookie);

  /// True when this node has terminated.
  virtual bool finished() const = 0;
};

/// Metrics of an asynchronous run.
struct AsyncMetrics {
  std::size_t messages = 0;  ///< total messages delivered
  std::size_t timer_events = 0;  ///< timer callbacks fired
  double completion_time = 0.0;  ///< timestamp of the last delivery
  bool completed = false;  ///< all (non-crashed) nodes finished, queue drained
  /// True iff deliveries on every directed channel happened in send order.
  /// The engine enforces this by construction; the flag is re-validated at
  /// delivery time so delay-schedule bugs cannot silently break causality.
  bool fifo_ok = true;
  FaultStats faults;  ///< injected faults (all zero without a plan)
  /// Empty on a clean run. When the event budget is exhausted with work
  /// still queued (a livelock — e.g. a retransmission loop that can never
  /// be acked), this holds the watchdog's diagnosis: pending event counts,
  /// the busiest channels, and the unfinished nodes, so the failure is
  /// debuggable instead of a silent hang.
  std::string stall_diagnosis;
};

/// Drives a set of AsyncPrograms over a communication graph.
class AsyncEngine {
 public:
  /// Builds the engine with a built-in delay model; `seed` drives the
  /// stochastic schedules (convention: thread the caller's run seed through,
  /// never a fresh literal — see src/support/rng.h).
  AsyncEngine(const Graph& graph,
              std::vector<std::unique_ptr<AsyncProgram>> programs,
              DelayModel delay_model = DelayModel::kUnit,
              std::uint64_t seed = 1);

  /// Builds the engine with a custom delay schedule (the injection point the
  /// verification harness uses for adversarial interleavings).
  AsyncEngine(const Graph& graph,
              std::vector<std::unique_ptr<AsyncProgram>> programs,
              std::unique_ptr<DelaySchedule> schedule);

  /// Runs to quiescence (empty event queue) or the message cap.
  AsyncMetrics run(std::size_t max_messages = 10'000'000);

  /// Attaches an event observer (nullptr detaches). With no trace the
  /// instrumentation points reduce to a null check; see sim/trace.h.
  void set_trace(SimTrace* trace) noexcept { trace_ = trace; }

  /// Installs a fault plan (nullptr detaches) — the same seam as set_trace:
  /// with no plan every injection point is a single null check and the run
  /// is byte-identical to an engine built before fault injection existed.
  /// The plan is consulted at post time (drop/duplicate/corrupt/link-down)
  /// and at delivery time for node crashes: a crashed node's handlers stop,
  /// in-flight traffic to it is discarded, and it counts as terminated. Not
  /// owned; must outlive the run.
  void set_fault_plan(FaultPlan* plan) noexcept { faults_ = plan; }

  /// Attaches an allocation auditor (nullptr detaches): each dispatched
  /// event — a message delivery or a timer callback — is bracketed with
  /// begin_round/end_round, so the "round" granularity of the profile is
  /// one handler invocation (support/alloc_audit.h). Not owned; must
  /// outlive the run. Unlike trace/fault seams, the auditor does NOT force
  /// the serial path: the sharded dispatch is itself under the zero-alloc
  /// contract.
  void set_alloc_audit(AllocAudit* audit) noexcept { alloc_audit_ = audit; }

  /// Explicit shard count for the per-shard event queues (0 = serial). The
  /// run is byte-identical to the serial engine for any value: sequences
  /// are assigned from one global counter at post time and the dispatch
  /// tournament pops the globally minimal (time, sequence) key. Ignored —
  /// serial fallback — whenever a seam forces the serial path.
  void set_shards(std::size_t shards) noexcept { shards_config_ = shards; }

  /// Number of event-queue shards the next run() will execute with: 1
  /// whenever a seam forces the serial path (trace or faults attached,
  /// empty graph), otherwise the set_shards() value capped at the node
  /// count.
  std::size_t planned_shards() const noexcept;

  /// Program of node v (for extracting results after the run). Calling this
  /// from inside a handler for a node other than the one executing is a
  /// cross-node state read and is reported to the attached trace.
  AsyncProgram& program(NodeId v) {
    note_program_access(v);
    return *programs_[v];
  }
  const AsyncProgram& program(NodeId v) const {
    note_program_access(v);
    return *programs_[v];
  }

 private:
  friend class AsyncContext;
  void post(NodeId from, NodeId to, Message message, double now);
  void post_copy(NodeId from, NodeId to, const Message& message, double now);
  /// post_copy with the channel already resolved (fault cascade onward).
  void post_copy_resolved(NodeId from, NodeId to, ArcId channel,
                          const Message& message, double now);
  void enqueue(NodeId to, ArcId channel, Message message, double now);
  void enqueue_copy(NodeId from, NodeId to, ArcId channel,
                    const Message& message, double now);
  void schedule_slot(std::uint32_t slot, NodeId to, ArcId channel,
                     double now);
  void route(const AsyncEventKey& key, NodeId to);
  void post_timer(NodeId v, double delay, std::int64_t cookie, double now);
  void init_shards(std::size_t count);
  /// Minimal pending key of shard s. Returns false when the shard is idle.
  bool shard_head(std::size_t s, AsyncEventKey& out);
  /// Minimum head over every shard other than the dispatching one. `shard`
  /// is the argmin (num_shards_ when every other shard is idle) — when a
  /// batch ends because its shard no longer holds the global minimum, the
  /// cursor already names the next tournament winner, so the full scan
  /// runs once per batch, not twice.
  struct ShardCursor {
    AsyncEventKey key;
    std::size_t shard;
  };
  /// Dispatches one popped event: fault screening, handler invocation,
  /// lane flush. Folds every cross-shard key flushed into `other` so the
  /// batch-continuation test in run() stays exact.
  void dispatch_event(const AsyncEventKey& key, AsyncMetrics& metrics,
                      std::size_t& events,
                      std::vector<std::pair<double, std::uint64_t>>& delivered,
                      ShardCursor& other);
  void flush_lanes(ShardCursor& other);
  std::size_t live_events() const;
  std::string diagnose_stall();

  void note_program_access(NodeId v) const {
    if (trace_ != nullptr && current_node_ != kNoNode && current_node_ != v)
      trace_->on_state_read(current_node_, v);
  }

  const Graph& graph_;
  std::vector<std::unique_ptr<AsyncProgram>> programs_;
  ChannelTable channels_;  // (sender, receiver) -> arc id, built once
  AsyncEventSlab slab_;  // event payloads; ordering structures hold keys
  std::vector<EventWheel> wheels_;  // per-shard event calendar queues
  /// Cross-shard post lanes, indexed [source shard * count + destination
  /// shard]: keys a handler in the source shard posted toward the
  /// destination shard, flushed into the destination heap after the
  /// handler returns. Empty between dispatches.
  std::vector<std::vector<AsyncEventKey>> lanes_;
  /// Lane indices made nonempty by the running handler — the flush walks
  /// these instead of scanning all destinations.
  std::vector<std::uint32_t> touched_lanes_;
  ShardPlan plan_;               // contiguous node partition
  std::vector<std::uint32_t> shard_of_;  // node -> shard, built per run
  std::size_t num_shards_ = 1;   // shards of the current/last run
  std::vector<double> channel_clock_;  // last scheduled time per directed edge
  std::vector<std::uint64_t> channel_posts_;  // messages posted per channel
  std::unique_ptr<DelaySchedule> schedule_;
  bool unit_delay_ = false;  // schedule is the constant unit model
  std::uint64_t next_sequence_ = 0;
  Message dispatch_scratch_;  // delivery buffer; swaps capacity with slots
  SimTrace* trace_ = nullptr;
  FaultPlan* faults_ = nullptr;
  AllocAudit* alloc_audit_ = nullptr;  // non-null: bracket each event
  std::vector<std::uint64_t> fault_posts_;  // fault-decision index per channel
  NodeId current_node_ = kNoNode;  // node whose handler is executing
  std::size_t current_shard_ = 0;  // shard being dispatched (in_handler_)
  bool in_handler_ = false;  // true while a handler runs: lane-buffer posts
  std::size_t shards_config_ = 0;  // set_shards(); 0 = serial
};

}  // namespace fdlsp
