// Asynchronous message-passing engine.
//
// Event-driven: messages are delivered one at a time in timestamp order.
// Channels are FIFO per ordered (sender, receiver) pair. Delays come from a
// pluggable DelaySchedule (see sim/delay.h): the unit-delay model used for
// worst-case time complexity, uniformly random delays in (0, 1], or a
// seeded adversarial schedule that maximizes cross-channel reordering. The
// completion "time" metric is the timestamp of the last delivery — the
// standard asynchronous time measure where every message takes at most one
// unit.
#pragma once

#include <functional>
#include <memory>
#include <queue>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "sim/channel_table.h"
#include "sim/delay.h"
#include "sim/fault.h"
#include "sim/message.h"
#include "sim/trace.h"

namespace fdlsp {

class AllocAudit;
class AsyncEngine;

/// Capture target for a reframed context's sends (see AsyncContext::reframed).
using AsyncSendSink = std::function<void(NodeId to, Message message)>;

/// Context handed to asynchronous handlers; valid only during the call.
class AsyncContext {
 public:
  NodeId self() const noexcept { return self_; }

  /// Simulated time of the event being handled.
  double now() const noexcept { return now_; }

  /// Direct neighbors of this node.
  std::span<const NeighborEntry> neighbors() const noexcept {
    return neighbors_;
  }

  /// Sends a message to a direct neighbor.
  void send(NodeId to, Message message);

  /// Sends a copy of the message to every neighbor.
  void broadcast(Message message);

  /// Schedules an on_timer(cookie) callback on this node after `delay` time
  /// units (any positive value; timers are local and bypass the delay
  /// schedule). The timeout primitive retransmission layers need — a purely
  /// message-driven node cannot act on silence.
  void set_timer(double delay, std::int64_t cookie);

  /// A copy of this context for a protocol layered *inside* another program
  /// (sim/reliable.h): send()/broadcast() feed `sink` instead of the engine
  /// so the outer program can frame and schedule the traffic itself.
  /// set_timer still reaches the engine. `sink` must outlive the copy.
  AsyncContext reframed(const AsyncSendSink* sink) const {
    AsyncContext copy = *this;
    copy.sink_ = sink;
    return copy;
  }

 private:
  friend class AsyncEngine;
  AsyncContext(AsyncEngine& engine, NodeId self,
               std::span<const NeighborEntry> neighbors, double now)
      : engine_(&engine), self_(self), neighbors_(neighbors), now_(now) {}

  AsyncEngine* engine_;
  NodeId self_;
  std::span<const NeighborEntry> neighbors_;
  double now_;
  const AsyncSendSink* sink_ = nullptr;  // non-null: capture instead of send
};

/// A node program for the asynchronous engine.
class AsyncProgram {
 public:
  virtual ~AsyncProgram() = default;

  /// Called once at time 0 before any delivery (spontaneous wake-up; only
  /// initiator nodes typically act).
  virtual void on_start(AsyncContext& ctx) = 0;

  /// Called for each delivered message.
  virtual void on_message(AsyncContext& ctx, const Message& message) = 0;

  /// Called when a timer set via AsyncContext::set_timer expires. Default:
  /// ignore (plain message-driven programs never see timers).
  virtual void on_timer(AsyncContext& ctx, std::int64_t cookie);

  /// True when this node has terminated.
  virtual bool finished() const = 0;
};

/// Metrics of an asynchronous run.
struct AsyncMetrics {
  std::size_t messages = 0;  ///< total messages delivered
  std::size_t timer_events = 0;  ///< timer callbacks fired
  double completion_time = 0.0;  ///< timestamp of the last delivery
  bool completed = false;  ///< all (non-crashed) nodes finished, queue drained
  /// True iff deliveries on every directed channel happened in send order.
  /// The engine enforces this by construction; the flag is re-validated at
  /// delivery time so delay-schedule bugs cannot silently break causality.
  bool fifo_ok = true;
  FaultStats faults;  ///< injected faults (all zero without a plan)
  /// Empty on a clean run. When the event budget is exhausted with work
  /// still queued (a livelock — e.g. a retransmission loop that can never
  /// be acked), this holds the watchdog's diagnosis: pending event counts,
  /// the busiest channels, and the unfinished nodes, so the failure is
  /// debuggable instead of a silent hang.
  std::string stall_diagnosis;
};

/// Drives a set of AsyncPrograms over a communication graph.
class AsyncEngine {
 public:
  /// Builds the engine with a built-in delay model; `seed` drives the
  /// stochastic schedules (convention: thread the caller's run seed through,
  /// never a fresh literal — see src/support/rng.h).
  AsyncEngine(const Graph& graph,
              std::vector<std::unique_ptr<AsyncProgram>> programs,
              DelayModel delay_model = DelayModel::kUnit,
              std::uint64_t seed = 1);

  /// Builds the engine with a custom delay schedule (the injection point the
  /// verification harness uses for adversarial interleavings).
  AsyncEngine(const Graph& graph,
              std::vector<std::unique_ptr<AsyncProgram>> programs,
              std::unique_ptr<DelaySchedule> schedule);

  /// Runs to quiescence (empty event queue) or the message cap.
  AsyncMetrics run(std::size_t max_messages = 10'000'000);

  /// Attaches an event observer (nullptr detaches). With no trace the
  /// instrumentation points reduce to a null check; see sim/trace.h.
  void set_trace(SimTrace* trace) noexcept { trace_ = trace; }

  /// Installs a fault plan (nullptr detaches) — the same seam as set_trace:
  /// with no plan every injection point is a single null check and the run
  /// is byte-identical to an engine built before fault injection existed.
  /// The plan is consulted at post time (drop/duplicate/corrupt/link-down)
  /// and at delivery time for node crashes: a crashed node's handlers stop,
  /// in-flight traffic to it is discarded, and it counts as terminated. Not
  /// owned; must outlive the run.
  void set_fault_plan(FaultPlan* plan) noexcept { faults_ = plan; }

  /// Attaches an allocation auditor (nullptr detaches): each dispatched
  /// event — a message delivery or a timer callback — is bracketed with
  /// begin_round/end_round, so the "round" granularity of the profile is
  /// one handler invocation (support/alloc_audit.h). Not owned; must
  /// outlive the run.
  void set_alloc_audit(AllocAudit* audit) noexcept { alloc_audit_ = audit; }

  /// Program of node v (for extracting results after the run). Calling this
  /// from inside a handler for a node other than the one executing is a
  /// cross-node state read and is reported to the attached trace.
  AsyncProgram& program(NodeId v) {
    note_program_access(v);
    return *programs_[v];
  }
  const AsyncProgram& program(NodeId v) const {
    note_program_access(v);
    return *programs_[v];
  }

 private:
  friend class AsyncContext;
  void post(NodeId from, NodeId to, Message message, double now);
  void enqueue(NodeId to, ArcId channel, Message message, double now);
  void post_timer(NodeId v, double delay, std::int64_t cookie, double now);
  std::string diagnose_stall();

  void note_program_access(NodeId v) const {
    if (trace_ != nullptr && current_node_ != kNoNode && current_node_ != v)
      trace_->on_state_read(current_node_, v);
  }

  struct Event {
    double time;
    std::uint64_t sequence;  // tie-break: deterministic FIFO order
    NodeId to;
    ArcId channel;  // directed sender->receiver arc; kNoArc marks a timer
    std::int64_t cookie = 0;  // timer events only
    Message message;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      return a.time != b.time ? a.time > b.time : a.sequence > b.sequence;
    }
  };

  const Graph& graph_;
  std::vector<std::unique_ptr<AsyncProgram>> programs_;
  ChannelTable channels_;  // (sender, receiver) -> arc id, built once
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
  std::vector<double> channel_clock_;  // last scheduled time per directed edge
  std::vector<std::uint64_t> channel_posts_;  // messages posted per channel
  std::unique_ptr<DelaySchedule> schedule_;
  std::uint64_t next_sequence_ = 0;
  SimTrace* trace_ = nullptr;
  FaultPlan* faults_ = nullptr;
  AllocAudit* alloc_audit_ = nullptr;  // non-null: bracket each event
  std::vector<std::uint64_t> fault_posts_;  // fault-decision index per channel
  NodeId current_node_ = kNoNode;  // node whose handler is executing
};

}  // namespace fdlsp
