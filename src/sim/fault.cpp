#include "sim/fault.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "support/check.h"
#include "support/rng.h"

namespace fdlsp {

namespace {

// Distinct stream tags keep the per-channel, per-node and per-edge hash
// streams independent even when ids collide numerically.
constexpr std::uint64_t kStreamChannel = 0x11;
constexpr std::uint64_t kStreamCrash = 0x22;
constexpr std::uint64_t kStreamLink = 0x33;
constexpr std::uint64_t kStreamCorrupt = 0x44;
constexpr std::uint64_t kStreamBurst = 0x55;
constexpr std::uint64_t kStreamBurstLoss = 0x66;
constexpr std::uint64_t kStreamPrr = 0x77;
constexpr std::uint64_t kStreamPrrLoss = 0x88;
constexpr std::uint64_t kStreamRegion = 0x99;
constexpr std::uint64_t kStreamVirtualPos = 0xaa;

/// Stateless mix of (seed, stream, index) -> 64 uniform bits.
std::uint64_t fault_hash(std::uint64_t seed, std::uint64_t stream,
                         std::uint64_t index) {
  std::uint64_t s = seed ^ (stream * 0x9e3779b97f4a7c15ULL);
  const std::uint64_t a = splitmix64(s);
  s ^= index * 0xbf58476d1ce4e5b9ULL;
  return splitmix64(s) ^ a;
}

/// The hash mapped into [0, 1).
double unit_interval(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

FaultPlan::FaultPlan(const FaultSpec& spec, const Graph& graph,
                     const std::vector<Point>* positions)
    : spec_(spec),
      crash_time_(graph.num_nodes(), -1.0),
      link_down_start_(graph.num_edges(), -1.0),
      losses_(2 * graph.num_edges(), 0) {
  FDLSP_REQUIRE(
      spec_.drop_rate + spec_.duplicate_rate + spec_.corrupt_rate <= 1.0,
      "channel fault rates must sum to at most 1");
  FDLSP_REQUIRE(spec_.burst_rate >= 0.0 && spec_.burst_rate <= 1.0 &&
                    spec_.burst_recover >= 0.0 && spec_.burst_recover <= 1.0 &&
                    spec_.burst_loss >= 0.0 && spec_.burst_loss <= 1.0,
                "burst probabilities must lie in [0, 1]");
  if (spec_.burst_rate > 0.0)
    FDLSP_REQUIRE(spec_.burst_max_run >= 1,
                  "burst runs must be at least one step long");
  for (double prr : spec_.prr_levels)
    FDLSP_REQUIRE(prr > 0.0 && prr <= 1.0, "PRR levels must lie in (0, 1]");
  FDLSP_REQUIRE(spec_.region_count <= 64,
                "at most 64 region outage discs are supported");
  if (spec_.crash_fraction > 0.0) {
    for (NodeId v = 0; v < graph.num_nodes(); ++v) {
      const std::uint64_t pick = fault_hash(spec_.seed, kStreamCrash, v);
      if (unit_interval(pick) < spec_.crash_fraction) {
        const std::uint64_t when =
            fault_hash(spec_.seed, kStreamCrash, v ^ 0x8000000000000000ULL);
        crash_time_[v] = unit_interval(when) * spec_.crash_horizon;
      }
    }
  }
  if (spec_.link_down_fraction > 0.0) {
    for (EdgeId e = 0; e < graph.num_edges(); ++e) {
      const std::uint64_t pick = fault_hash(spec_.seed, kStreamLink, e);
      if (unit_interval(pick) < spec_.link_down_fraction) {
        const std::uint64_t when =
            fault_hash(spec_.seed, kStreamLink, e ^ 0x8000000000000000ULL);
        link_down_start_[e] = unit_interval(when) * spec_.link_down_horizon;
      }
    }
  }
  if (spec_.burst_rate > 0.0) {
    burst_state_.assign(graph.num_edges(), 0);
    burst_step_.assign(graph.num_edges(), -1);
    burst_run_.assign(graph.num_edges(), 0);
    burst_drops_.assign(graph.num_edges(), 0);
  }
  if (!spec_.prr_levels.empty()) {
    prr_level_.resize(graph.num_edges());
    for (EdgeId e = 0; e < graph.num_edges(); ++e)
      prr_level_[e] = static_cast<std::uint32_t>(
          fault_hash(spec_.seed, kStreamPrr, e) % spec_.prr_levels.size());
  }
  if (spec_.region_count > 0) {
    // Disc centers and window starts are hashed like every other schedule;
    // membership is precomputed into a per-edge bitmask so the hot-path
    // query touches no geometry.
    region_start_.resize(spec_.region_count);
    std::vector<Point> centers(spec_.region_count);
    for (std::uint64_t r = 0; r < spec_.region_count; ++r) {
      centers[r].x = unit_interval(fault_hash(spec_.seed, kStreamRegion, 2 * r));
      centers[r].y =
          unit_interval(fault_hash(spec_.seed, kStreamRegion, 2 * r + 1));
      region_start_[r] =
          unit_interval(fault_hash(spec_.seed, kStreamRegion,
                                   r ^ 0x8000000000000000ULL)) *
          spec_.region_horizon;
    }
    const bool real = positions != nullptr &&
                      positions->size() == graph.num_nodes();
    const auto node_pos = [&](NodeId v) -> Point {
      if (real) return (*positions)[v];
      return Point{
          unit_interval(fault_hash(spec_.seed, kStreamVirtualPos, 2 * v)),
          unit_interval(fault_hash(spec_.seed, kStreamVirtualPos, 2 * v + 1))};
    };
    region_mask_.assign(graph.num_edges(), 0);
    const double radius_sq = spec_.region_radius * spec_.region_radius;
    for (EdgeId e = 0; e < graph.num_edges(); ++e) {
      const Edge& edge = graph.edge(e);
      const Point pu = node_pos(edge.u);
      const Point pv = node_pos(edge.v);
      for (std::uint64_t r = 0; r < spec_.region_count; ++r) {
        if (distance_sq(pu, centers[r]) <= radius_sq ||
            distance_sq(pv, centers[r]) <= radius_sq)
          region_mask_[e] |= 1ULL << r;
      }
    }
  }
}

// fdlsp-lint: hot — per-message fault decision, no allocator traffic
bool FaultPlan::burst_bad(EdgeId edge, double now) {
  if (burst_drops_[edge] >= spec_.burst_cap) return false;  // pinned good
  const auto step = static_cast<std::int64_t>(now);
  // Engines query with nondecreasing `now`; a same-step query replays the
  // already-advanced state without touching the hash stream again.
  const std::uint64_t stream =
      kStreamBurst + (static_cast<std::uint64_t>(edge) << 8);
  for (std::int64_t s = burst_step_[edge] + 1; s <= step; ++s) {
    const double u = unit_interval(
        fault_hash(spec_.seed, stream, static_cast<std::uint64_t>(s)));
    if (burst_state_[edge] == 0) {
      if (u < spec_.burst_rate) {
        burst_state_[edge] = 1;
        burst_run_[edge] = 0;
      }
    } else {
      ++burst_run_[edge];
      if (u < spec_.burst_recover || burst_run_[edge] >= spec_.burst_max_run)
        burst_state_[edge] = 0;
    }
  }
  if (step > burst_step_[edge]) burst_step_[edge] = step;
  return burst_state_[edge] != 0;
}

// fdlsp-lint: hot — per-message fault decision, no allocator traffic
FaultAction FaultPlan::channel_action(ArcId channel,
                                      std::uint64_t message_index,
                                      double now) {
  const EdgeId edge = channel >> 1;
  if (spec_.burst_rate > 0.0 && burst_bad(edge, now)) {
    const double u = unit_interval(fault_hash(
        spec_.seed,
        kStreamBurstLoss + (static_cast<std::uint64_t>(channel) << 8),
        message_index));
    if (u < spec_.burst_loss) {
      ++burst_drops_[edge];
      ++stats_.burst_dropped;
      return FaultAction::kDrop;
    }
  }
  if (!spec_.prr_levels.empty() &&
      losses_[channel] < spec_.max_losses_per_channel) {
    const double prr = spec_.prr_levels[prr_level_[edge]];
    const double u = unit_interval(fault_hash(
        spec_.seed, kStreamPrrLoss + (static_cast<std::uint64_t>(channel) << 8),
        message_index));
    if (u >= prr) {
      ++losses_[channel];
      ++stats_.prr_dropped;
      return FaultAction::kDrop;
    }
  }
  if (spec_.drop_rate <= 0.0 && spec_.duplicate_rate <= 0.0 &&
      spec_.corrupt_rate <= 0.0)
    return FaultAction::kDeliver;
  const double u = unit_interval(fault_hash(
      spec_.seed, kStreamChannel + (static_cast<std::uint64_t>(channel) << 8),
      message_index));
  if (u < spec_.drop_rate) {
    if (losses_[channel] >= spec_.max_losses_per_channel)
      return FaultAction::kDeliver;
    ++losses_[channel];
    ++stats_.dropped;
    return FaultAction::kDrop;
  }
  if (u < spec_.drop_rate + spec_.duplicate_rate) {
    ++stats_.duplicated;
    return FaultAction::kDuplicate;
  }
  if (u < spec_.drop_rate + spec_.duplicate_rate + spec_.corrupt_rate) {
    if (losses_[channel] >= spec_.max_losses_per_channel)
      return FaultAction::kDeliver;
    ++losses_[channel];
    ++stats_.corrupted;
    return FaultAction::kCorrupt;
  }
  return FaultAction::kDeliver;
}

void FaultPlan::corrupt_payload(ArcId channel, std::uint64_t message_index,
                                Message& message) const {
  const std::uint64_t h = fault_hash(
      spec_.seed, kStreamCorrupt + (static_cast<std::uint64_t>(channel) << 8),
      message_index);
  // Never XOR with 0: the flip must be observable.
  const std::uint64_t flip = h | 1;
  if (message.data.empty()) {
    message.tag ^= static_cast<std::int32_t>(flip & 0x7fffffff);
    if (message.tag == 0) message.tag = 1;  // keep the flip observable
    return;
  }
  const std::size_t word = static_cast<std::size_t>(
      (h >> 32) % static_cast<std::uint64_t>(message.data.size()));
  message.data[word] ^= static_cast<std::int64_t>(flip & 0x7fffffffffffffffULL);
}

std::vector<NodeId> FaultPlan::crashed_nodes() const {
  std::vector<NodeId> nodes;
  for (NodeId v = 0; v < crash_time_.size(); ++v)
    if (crash_time_[v] >= 0.0) nodes.push_back(v);
  return nodes;
}

std::vector<EdgeId> FaultPlan::churned_edges() const {
  std::vector<EdgeId> edges;
  for (EdgeId e = 0; e < link_down_start_.size(); ++e)
    if (link_down_start_[e] >= 0.0) edges.push_back(e);
  return edges;
}

std::vector<EdgeId> FaultPlan::region_edges() const {
  std::vector<EdgeId> edges;
  for (EdgeId e = 0; e < region_mask_.size(); ++e)
    if (region_mask_[e] != 0) edges.push_back(e);
  return edges;
}

namespace {

/// Strict numeric parsers: the whole value must be consumed, so repro
/// strings with typos ("drop=0.1x", "cap=") fail loudly instead of silently
/// injecting a different fault model.
double parse_strict_double(const std::string& key, const std::string& value) {
  FDLSP_REQUIRE(!value.empty(), "empty value for fault spec key: " + key);
  char* end = nullptr;
  const double number = std::strtod(value.c_str(), &end);
  FDLSP_REQUIRE(end == value.c_str() + value.size(),
                "malformed number for fault spec key: " + key + "=" + value);
  return number;
}

std::uint64_t parse_strict_count(const std::string& key,
                                 const std::string& value) {
  FDLSP_REQUIRE(!value.empty(), "empty value for fault spec key: " + key);
  // strtoull silently wraps negative input; counts must start with a digit.
  FDLSP_REQUIRE(value[0] >= '0' && value[0] <= '9',
                "malformed count for fault spec key: " + key + "=" + value);
  char* end = nullptr;
  const std::uint64_t number = std::strtoull(value.c_str(), &end, 10);
  FDLSP_REQUIRE(end == value.c_str() + value.size(),
                "malformed count for fault spec key: " + key + "=" + value);
  return number;
}

std::vector<double> parse_prr_levels(const std::string& value) {
  std::vector<double> levels;
  std::size_t pos = 0;
  while (pos <= value.size()) {
    std::size_t colon = value.find(':', pos);
    if (colon == std::string::npos) colon = value.size();
    levels.push_back(
        parse_strict_double("prr", value.substr(pos, colon - pos)));
    pos = colon + 1;
  }
  return levels;
}

}  // namespace

std::string format_fault_spec(const FaultSpec& spec) {
  const FaultSpec defaults;
  std::string out;
  const auto add = [&out](const char* key, const std::string& value) {
    if (!out.empty()) out += ",";
    out += key;
    out += "=";
    out += value;
  };
  const auto rate_text = [](double value) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.4g", value);
    return std::string(buffer);
  };
  const auto add_rate = [&add, &rate_text](const char* key, double value) {
    add(key, rate_text(value));
  };
  if (spec.seed != defaults.seed) add("fseed", std::to_string(spec.seed));
  if (spec.drop_rate != defaults.drop_rate) add_rate("drop", spec.drop_rate);
  if (spec.duplicate_rate != defaults.duplicate_rate)
    add_rate("dup", spec.duplicate_rate);
  if (spec.corrupt_rate != defaults.corrupt_rate)
    add_rate("corrupt", spec.corrupt_rate);
  if (spec.max_losses_per_channel != defaults.max_losses_per_channel)
    add("cap", std::to_string(spec.max_losses_per_channel));
  if (spec.burst_rate != defaults.burst_rate) add_rate("bp", spec.burst_rate);
  if (spec.burst_recover != defaults.burst_recover)
    add_rate("bq", spec.burst_recover);
  if (spec.burst_loss != defaults.burst_loss)
    add_rate("bloss", spec.burst_loss);
  if (spec.burst_max_run != defaults.burst_max_run)
    add("bmax", std::to_string(spec.burst_max_run));
  if (spec.burst_cap != defaults.burst_cap)
    add("bcap", std::to_string(spec.burst_cap));
  if (!spec.prr_levels.empty()) {
    std::string joined;
    for (double level : spec.prr_levels) {
      if (!joined.empty()) joined += ":";
      joined += rate_text(level);
    }
    add("prr", joined);
  }
  if (spec.region_count != defaults.region_count)
    add("regions", std::to_string(spec.region_count));
  if (spec.region_radius != defaults.region_radius)
    add_rate("regionr", spec.region_radius);
  if (spec.region_horizon != defaults.region_horizon)
    add_rate("regionh", spec.region_horizon);
  if (spec.region_duration != defaults.region_duration)
    add_rate("regiond", spec.region_duration);
  if (spec.crash_fraction != defaults.crash_fraction)
    add_rate("crash", spec.crash_fraction);
  if (spec.crash_horizon != defaults.crash_horizon)
    add_rate("crashh", spec.crash_horizon);
  if (spec.link_down_fraction != defaults.link_down_fraction)
    add_rate("link", spec.link_down_fraction);
  if (spec.link_down_horizon != defaults.link_down_horizon)
    add_rate("linkh", spec.link_down_horizon);
  if (spec.link_down_duration != defaults.link_down_duration)
    add_rate("linkd", spec.link_down_duration);
  return out.empty() ? "none" : out;
}

FaultSpec parse_fault_spec(const std::string& text) {
  FaultSpec spec;
  if (text.empty() || text == "none") return spec;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    const std::string pair = text.substr(pos, comma - pos);
    pos = comma + 1;
    const std::size_t eq = pair.find('=');
    FDLSP_REQUIRE(eq != std::string::npos,
                  "fault spec entries must be key=value: " + pair);
    const std::string key = pair.substr(0, eq);
    const std::string value = pair.substr(eq + 1);
    if (key == "fseed") {
      spec.seed = parse_strict_count(key, value);
    } else if (key == "cap") {
      spec.max_losses_per_channel = parse_strict_count(key, value);
    } else if (key == "bmax") {
      spec.burst_max_run = parse_strict_count(key, value);
    } else if (key == "bcap") {
      spec.burst_cap = parse_strict_count(key, value);
    } else if (key == "regions") {
      spec.region_count = parse_strict_count(key, value);
    } else if (key == "prr") {
      spec.prr_levels = parse_prr_levels(value);
    } else {
      const double number = parse_strict_double(key, value);
      if (key == "drop") {
        spec.drop_rate = number;
      } else if (key == "dup") {
        spec.duplicate_rate = number;
      } else if (key == "corrupt") {
        spec.corrupt_rate = number;
      } else if (key == "bp") {
        spec.burst_rate = number;
      } else if (key == "bq") {
        spec.burst_recover = number;
      } else if (key == "bloss") {
        spec.burst_loss = number;
      } else if (key == "regionr") {
        spec.region_radius = number;
      } else if (key == "regionh") {
        spec.region_horizon = number;
      } else if (key == "regiond") {
        spec.region_duration = number;
      } else if (key == "crash") {
        spec.crash_fraction = number;
      } else if (key == "crashh") {
        spec.crash_horizon = number;
      } else if (key == "link") {
        spec.link_down_fraction = number;
      } else if (key == "linkh") {
        spec.link_down_horizon = number;
      } else if (key == "linkd") {
        spec.link_down_duration = number;
      } else {
        FDLSP_REQUIRE(false, "unknown fault spec key: " + key);
      }
    }
  }
  return spec;
}

std::vector<double> load_prr_levels(const std::string& path) {
  std::ifstream in(path);
  FDLSP_REQUIRE(in.good(), "cannot open PRR trace file: " + path);
  std::vector<double> levels;
  std::string token;
  while (in >> token)
    levels.push_back(parse_strict_double("prr trace entry", token));
  FDLSP_REQUIRE(!levels.empty(), "PRR trace file has no levels: " + path);
  for (double level : levels)
    FDLSP_REQUIRE(level > 0.0 && level <= 1.0,
                  "PRR trace levels must lie in (0, 1]: " + path);
  return levels;
}

}  // namespace fdlsp
