#include "sim/fault.h"

#include <cstdio>
#include <cstdlib>

#include "support/check.h"
#include "support/rng.h"

namespace fdlsp {

namespace {

// Distinct stream tags keep the per-channel, per-node and per-edge hash
// streams independent even when ids collide numerically.
constexpr std::uint64_t kStreamChannel = 0x11;
constexpr std::uint64_t kStreamCrash = 0x22;
constexpr std::uint64_t kStreamLink = 0x33;
constexpr std::uint64_t kStreamCorrupt = 0x44;

/// Stateless mix of (seed, stream, index) -> 64 uniform bits.
std::uint64_t fault_hash(std::uint64_t seed, std::uint64_t stream,
                         std::uint64_t index) {
  std::uint64_t s = seed ^ (stream * 0x9e3779b97f4a7c15ULL);
  const std::uint64_t a = splitmix64(s);
  s ^= index * 0xbf58476d1ce4e5b9ULL;
  return splitmix64(s) ^ a;
}

/// The hash mapped into [0, 1).
double unit_interval(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

FaultPlan::FaultPlan(const FaultSpec& spec, const Graph& graph)
    : spec_(spec),
      crash_time_(graph.num_nodes(), -1.0),
      link_down_start_(graph.num_edges(), -1.0),
      losses_(2 * graph.num_edges(), 0) {
  FDLSP_REQUIRE(
      spec_.drop_rate + spec_.duplicate_rate + spec_.corrupt_rate <= 1.0,
      "channel fault rates must sum to at most 1");
  if (spec_.crash_fraction > 0.0) {
    for (NodeId v = 0; v < graph.num_nodes(); ++v) {
      const std::uint64_t pick = fault_hash(spec_.seed, kStreamCrash, v);
      if (unit_interval(pick) < spec_.crash_fraction) {
        const std::uint64_t when =
            fault_hash(spec_.seed, kStreamCrash, v ^ 0x8000000000000000ULL);
        crash_time_[v] = unit_interval(when) * spec_.crash_horizon;
      }
    }
  }
  if (spec_.link_down_fraction > 0.0) {
    for (EdgeId e = 0; e < graph.num_edges(); ++e) {
      const std::uint64_t pick = fault_hash(spec_.seed, kStreamLink, e);
      if (unit_interval(pick) < spec_.link_down_fraction) {
        const std::uint64_t when =
            fault_hash(spec_.seed, kStreamLink, e ^ 0x8000000000000000ULL);
        link_down_start_[e] = unit_interval(when) * spec_.link_down_horizon;
      }
    }
  }
}

FaultAction FaultPlan::channel_action(ArcId channel,
                                      std::uint64_t message_index) {
  if (spec_.drop_rate <= 0.0 && spec_.duplicate_rate <= 0.0 &&
      spec_.corrupt_rate <= 0.0)
    return FaultAction::kDeliver;
  const double u = unit_interval(fault_hash(
      spec_.seed, kStreamChannel + (static_cast<std::uint64_t>(channel) << 8),
      message_index));
  if (u < spec_.drop_rate) {
    if (losses_[channel] >= spec_.max_losses_per_channel)
      return FaultAction::kDeliver;
    ++losses_[channel];
    ++stats_.dropped;
    return FaultAction::kDrop;
  }
  if (u < spec_.drop_rate + spec_.duplicate_rate) {
    ++stats_.duplicated;
    return FaultAction::kDuplicate;
  }
  if (u < spec_.drop_rate + spec_.duplicate_rate + spec_.corrupt_rate) {
    if (losses_[channel] >= spec_.max_losses_per_channel)
      return FaultAction::kDeliver;
    ++losses_[channel];
    ++stats_.corrupted;
    return FaultAction::kCorrupt;
  }
  return FaultAction::kDeliver;
}

void FaultPlan::corrupt_payload(ArcId channel, std::uint64_t message_index,
                                Message& message) const {
  const std::uint64_t h = fault_hash(
      spec_.seed, kStreamCorrupt + (static_cast<std::uint64_t>(channel) << 8),
      message_index);
  // Never XOR with 0: the flip must be observable.
  const std::uint64_t flip = h | 1;
  if (message.data.empty()) {
    message.tag ^= static_cast<std::int32_t>(flip & 0x7fffffff);
    if (message.tag == 0) message.tag = 1;  // keep the flip observable
    return;
  }
  const std::size_t word = static_cast<std::size_t>(
      (h >> 32) % static_cast<std::uint64_t>(message.data.size()));
  message.data[word] ^= static_cast<std::int64_t>(flip & 0x7fffffffffffffffULL);
}

std::vector<NodeId> FaultPlan::crashed_nodes() const {
  std::vector<NodeId> nodes;
  for (NodeId v = 0; v < crash_time_.size(); ++v)
    if (crash_time_[v] >= 0.0) nodes.push_back(v);
  return nodes;
}

std::vector<EdgeId> FaultPlan::churned_edges() const {
  std::vector<EdgeId> edges;
  for (EdgeId e = 0; e < link_down_start_.size(); ++e)
    if (link_down_start_[e] >= 0.0) edges.push_back(e);
  return edges;
}

std::string format_fault_spec(const FaultSpec& spec) {
  const FaultSpec defaults;
  std::string out;
  const auto add = [&out](const char* key, const std::string& value) {
    if (!out.empty()) out += ",";
    out += key;
    out += "=";
    out += value;
  };
  const auto add_rate = [&add](const char* key, double value) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.4g", value);
    add(key, buffer);
  };
  if (spec.seed != defaults.seed) add("fseed", std::to_string(spec.seed));
  if (spec.drop_rate != defaults.drop_rate) add_rate("drop", spec.drop_rate);
  if (spec.duplicate_rate != defaults.duplicate_rate)
    add_rate("dup", spec.duplicate_rate);
  if (spec.corrupt_rate != defaults.corrupt_rate)
    add_rate("corrupt", spec.corrupt_rate);
  if (spec.max_losses_per_channel != defaults.max_losses_per_channel)
    add("cap", std::to_string(spec.max_losses_per_channel));
  if (spec.crash_fraction != defaults.crash_fraction)
    add_rate("crash", spec.crash_fraction);
  if (spec.crash_horizon != defaults.crash_horizon)
    add_rate("crashh", spec.crash_horizon);
  if (spec.link_down_fraction != defaults.link_down_fraction)
    add_rate("link", spec.link_down_fraction);
  if (spec.link_down_horizon != defaults.link_down_horizon)
    add_rate("linkh", spec.link_down_horizon);
  if (spec.link_down_duration != defaults.link_down_duration)
    add_rate("linkd", spec.link_down_duration);
  return out.empty() ? "none" : out;
}

FaultSpec parse_fault_spec(const std::string& text) {
  FaultSpec spec;
  if (text.empty() || text == "none") return spec;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    const std::string pair = text.substr(pos, comma - pos);
    pos = comma + 1;
    const std::size_t eq = pair.find('=');
    FDLSP_REQUIRE(eq != std::string::npos,
                  "fault spec entries must be key=value: " + pair);
    const std::string key = pair.substr(0, eq);
    const std::string value = pair.substr(eq + 1);
    if (key == "fseed") {
      spec.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "cap") {
      spec.max_losses_per_channel = std::strtoull(value.c_str(), nullptr, 10);
    } else {
      const double number = std::strtod(value.c_str(), nullptr);
      if (key == "drop") {
        spec.drop_rate = number;
      } else if (key == "dup") {
        spec.duplicate_rate = number;
      } else if (key == "corrupt") {
        spec.corrupt_rate = number;
      } else if (key == "crash") {
        spec.crash_fraction = number;
      } else if (key == "crashh") {
        spec.crash_horizon = number;
      } else if (key == "link") {
        spec.link_down_fraction = number;
      } else if (key == "linkh") {
        spec.link_down_horizon = number;
      } else if (key == "linkd") {
        spec.link_down_duration = number;
      } else {
        FDLSP_REQUIRE(false, "unknown fault spec key: " + key);
      }
    }
  }
  return spec;
}

}  // namespace fdlsp
