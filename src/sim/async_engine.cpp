#include "sim/async_engine.h"

#include <algorithm>
#include <utility>

#include "support/alloc_audit.h"
#include "support/check.h"

namespace fdlsp {

// fdlsp-lint: hot — per-event steady-state path, no allocator traffic
void AsyncContext::send(NodeId to, Message message) {
  message.from = self_;
  if (sink_ != nullptr) {
    (*sink_)(to, message);  // the sink borrows; it copies what it keeps
    return;
  }
  engine_->post(self_, to, std::move(message), now_);
}

// fdlsp-lint: hot — per-event steady-state path, no allocator traffic
void AsyncContext::send_copy(NodeId to, const Message& message) {
  if (sink_ != nullptr) {
    (*sink_)(to, message);
    return;
  }
  engine_->post_copy(self_, to, message, now_);
}

// fdlsp-lint: hot — per-event steady-state path, no allocator traffic
void AsyncContext::send_copy_at(std::size_t neighbor_index,
                                const Message& message) {
  FDLSP_REQUIRE(neighbor_index < neighbors_.size(),
                "neighbor index out of range");
  const NodeId to = neighbors_[neighbor_index].to;
  if (sink_ != nullptr) {
    (*sink_)(to, message);
    return;
  }
  engine_->post_copy_resolved(
      self_, to, engine_->channels_.channel_at(self_, neighbor_index),
      message, now_);
}

// fdlsp-lint: hot — per-event steady-state path, no allocator traffic
void AsyncContext::broadcast(Message message) {
  if (neighbors_.empty()) return;
  // All but the last copy go through the copy-assign path (recycled event
  // slots, no fresh payload buffers); the last reuses the original's
  // buffer, so a broadcast to d neighbors allocates nothing beyond what
  // the caller already materialized.
  for (std::size_t i = 0; i + 1 < neighbors_.size(); ++i)
    send_copy(neighbors_[i].to, message);
  send(neighbors_.back().to, std::move(message));
}

void AsyncContext::set_timer(double delay, std::int64_t cookie) {
  engine_->post_timer(self_, delay, cookie, now_);
}

void AsyncProgram::on_timer(AsyncContext& /*ctx*/, std::int64_t /*cookie*/) {}

AsyncEngine::AsyncEngine(const Graph& graph,
                         std::vector<std::unique_ptr<AsyncProgram>> programs,
                         DelayModel delay_model, std::uint64_t seed)
    : AsyncEngine(graph, std::move(programs),
                  make_delay_schedule(delay_model, seed)) {}

AsyncEngine::AsyncEngine(const Graph& graph,
                         std::vector<std::unique_ptr<AsyncProgram>> programs,
                         std::unique_ptr<DelaySchedule> schedule)
    : graph_(graph),
      programs_(std::move(programs)),
      schedule_(std::move(schedule)) {
  FDLSP_REQUIRE(programs_.size() == graph_.num_nodes(),
                "one program per node required");
  FDLSP_REQUIRE(schedule_ != nullptr, "delay schedule required");
  unit_delay_ = schedule_->constant_unit();
  channel_clock_.assign(2 * graph_.num_edges(), 0.0);
  channel_posts_.assign(2 * graph_.num_edges(), 0);
  // Per-(neighbor-pair) channel ids, computed once: post() resolves the
  // channel of every message with a single CSR row search instead of
  // find_edge + an ArcView Edge load.
  channels_.build(graph_);
}

std::size_t AsyncEngine::planned_shards() const noexcept {
  // Trace and fault seams force the serial path, exactly as SyncEngine:
  // observation and injection assume one global dispatch order surface.
  // The alloc auditor does not — the sharded dispatch is itself under the
  // zero-alloc contract.
  const std::size_t n = graph_.num_nodes();
  if (trace_ != nullptr || faults_ != nullptr || n == 0) return 1;
  if (shards_config_ <= 1) return 1;
  return std::min(shards_config_, n);
}

void AsyncEngine::init_shards(std::size_t count) {
  if (wheels_.size() != count) {
    FDLSP_REQUIRE(live_events() == 0,
                  "shard count changed with events still pending");
    wheels_.resize(count);
    lanes_.resize(count * count);
  }
  num_shards_ = count;
  plan_ = ShardPlan{graph_.num_nodes(), count};
  if (count == 1) {
    shard_of_.clear();  // the serial path never consults the table
  } else {
    shard_of_.resize(graph_.num_nodes());
    for (NodeId v = 0; v < graph_.num_nodes(); ++v)
      shard_of_[v] = static_cast<std::uint32_t>(plan_.shard_of(v));
  }
}

// fdlsp-lint: hot — per-event steady-state path, no allocator traffic
void AsyncEngine::route(const AsyncEventKey& key, NodeId to) {
  const std::size_t dst = num_shards_ == 1 ? 0 : shard_of_[to];
  if (in_handler_ && dst != current_shard_) {
    // A cross-shard post raised inside a handler: buffer it in the
    // (source, destination) lane. The flush after the handler is what a
    // parallel dispatcher would do with one atomic hand-off per lane.
    std::vector<AsyncEventKey>& lane =
        lanes_[current_shard_ * num_shards_ + dst];
    if (lane.empty())
      touched_lanes_.push_back(
          static_cast<std::uint32_t>(current_shard_ * num_shards_ + dst));
    lane.push_back(key);
    return;
  }
  wheels_[dst].insert(key);
}

// fdlsp-lint: hot — per-event steady-state path, no allocator traffic
void AsyncEngine::schedule_slot(std::uint32_t slot, NodeId to, ArcId channel,
                                double now) {
  // on_send fires once per copy actually scheduled (dropped messages emit no
  // event, duplicates emit two), keeping the per-channel send/deliver
  // pairing the happens-before checker relies on exact under faults.
  if (trace_ != nullptr) trace_->on_send(slab_[slot].message.from, to);
  double when;
  if (unit_delay_) {
    // Devirtualized constant-unit model: identical timestamps, no virtual
    // call and no post-index bookkeeping (the index only feeds schedules).
    when = now + 1.0;
  } else {
    const double delay = schedule_->delay(channel, channel_posts_[channel]++);
    FDLSP_REQUIRE(delay > 0.0 && delay <= 1.0,
                  "delay schedules must return delays in (0, 1]");
    when = now + delay;
  }
  // FIFO per directed channel: never schedule before an earlier message on
  // the same channel.
  when = std::max(when, channel_clock_[channel] + 1e-9);
  channel_clock_[channel] = when;
  route(AsyncEventKey{when, next_sequence_++, slot}, to);
}

// fdlsp-lint: hot — per-event steady-state path, no allocator traffic
void AsyncEngine::enqueue(NodeId to, ArcId channel, Message message,
                          double now) {
  const std::uint32_t slot = slab_.acquire();
  AsyncEventSlot& event = slab_[slot];
  event.to = to;
  event.channel = channel;
  event.cookie = 0;
  // Move-assign swaps payload buffers: the slot takes the message's, the
  // dying message takes the slot's recycled one.
  event.message = std::move(message);
  schedule_slot(slot, to, channel, now);
}

// fdlsp-lint: hot — per-event steady-state path, no allocator traffic
void AsyncEngine::enqueue_copy(NodeId from, NodeId to, ArcId channel,
                               const Message& message, double now) {
  const std::uint32_t slot = slab_.acquire();
  AsyncEventSlot& event = slab_[slot];
  event.to = to;
  event.channel = channel;
  event.cookie = 0;
  // Copy-assign reuses the recycled slot's payload capacity: the caller
  // keeps its buffer, the slot keeps its own — no allocation once warmed.
  event.message = message;
  event.message.from = from;
  schedule_slot(slot, to, channel, now);
}

// fdlsp-lint: hot — per-event steady-state path, no allocator traffic
void AsyncEngine::post(NodeId from, NodeId to, Message message, double now) {
  const ArcId channel = channels_.channel(graph_, from, to);
  FDLSP_REQUIRE(channel != kNoArc, "nodes may only message direct neighbors");
  if (faults_ == nullptr) {
    enqueue(to, channel, std::move(message), now);
    return;
  }
  // A crashed sender's handlers never run, but a send from the exact crash
  // instant is possible; treat both endpoints dead.
  if (faults_->node_down(from, now) || faults_->node_down(to, now)) {
    ++faults_->stats().crash_drops;
    return;
  }
  if (faults_->link_down(channel, now)) {
    ++faults_->stats().link_down_drops;
    return;
  }
  // fdlsp-lint: hot — region outage test is a per-edge bitmask probe
  if (faults_->region_down(channel, now)) {
    ++faults_->stats().region_drops;
    return;
  }
  const std::uint64_t index = fault_posts_[channel]++;
  switch (faults_->channel_action(channel, index, now)) {
    case FaultAction::kDrop:
      return;
    case FaultAction::kDuplicate:
      enqueue(to, channel, message, now);
      enqueue(to, channel, std::move(message), now);
      return;
    case FaultAction::kCorrupt:
      faults_->corrupt_payload(channel, index, message);
      enqueue(to, channel, std::move(message), now);
      return;
    case FaultAction::kDeliver:
      enqueue(to, channel, std::move(message), now);
      return;
  }
  FDLSP_REQUIRE(false, "unknown fault action");
}

// fdlsp-lint: hot — per-event steady-state path, no allocator traffic
void AsyncEngine::post_copy(NodeId from, NodeId to, const Message& message,
                            double now) {
  const ArcId channel = channels_.channel(graph_, from, to);
  FDLSP_REQUIRE(channel != kNoArc, "nodes may only message direct neighbors");
  post_copy_resolved(from, to, channel, message, now);
}

// fdlsp-lint: hot — per-event steady-state path, no allocator traffic
void AsyncEngine::post_copy_resolved(NodeId from, NodeId to, ArcId channel,
                                     const Message& message, double now) {
  if (faults_ == nullptr) {
    enqueue_copy(from, to, channel, message, now);
    return;
  }
  // Same fault cascade as post(); drops decide before any copy is made, so
  // a dropped send of a kept buffer costs nothing at all.
  if (faults_->node_down(from, now) || faults_->node_down(to, now)) {
    ++faults_->stats().crash_drops;
    return;
  }
  if (faults_->link_down(channel, now)) {
    ++faults_->stats().link_down_drops;
    return;
  }
  if (faults_->region_down(channel, now)) {
    ++faults_->stats().region_drops;
    return;
  }
  const std::uint64_t index = fault_posts_[channel]++;
  switch (faults_->channel_action(channel, index, now)) {
    case FaultAction::kDrop:
      return;
    case FaultAction::kDuplicate:
      enqueue_copy(from, to, channel, message, now);
      enqueue_copy(from, to, channel, message, now);
      return;
    case FaultAction::kCorrupt: {
      // Corrupt the slot's copy in place; the caller's buffer stays intact.
      const std::uint32_t slot = slab_.acquire();
      AsyncEventSlot& event = slab_[slot];
      event.to = to;
      event.channel = channel;
      event.cookie = 0;
      event.message = message;
      event.message.from = from;
      faults_->corrupt_payload(channel, index, event.message);
      schedule_slot(slot, to, channel, now);
      return;
    }
    case FaultAction::kDeliver:
      enqueue_copy(from, to, channel, message, now);
      return;
  }
  FDLSP_REQUIRE(false, "unknown fault action");
}

// fdlsp-lint: hot — per-timer steady-state path, no allocator traffic
void AsyncEngine::post_timer(NodeId v, double delay, std::int64_t cookie,
                             double now) {
  FDLSP_REQUIRE(delay > 0.0, "timer delays must be positive");
  // Timers are node-local: no channel, no FIFO clamp, no delay schedule —
  // and always same-shard (a node only arms its own timers), so they go
  // straight into the shard's wheel, never through a lane.
  const std::uint32_t slot = slab_.acquire();
  AsyncEventSlot& event = slab_[slot];
  event.to = v;
  event.channel = kNoArc;
  event.cookie = cookie;
  const std::size_t dst = num_shards_ == 1 ? 0 : shard_of_[v];
  wheels_[dst].insert(AsyncEventKey{now + delay, next_sequence_++, slot});
}

// fdlsp-lint: hot — per-batch steady-state path, no allocator traffic
bool AsyncEngine::shard_head(std::size_t s, AsyncEventKey& out) {
  if (wheels_[s].empty()) return false;
  out = wheels_[s].peek();
  return true;
}

// fdlsp-lint: hot — per-event steady-state path, no allocator traffic
void AsyncEngine::flush_lanes(ShardCursor& other) {
  if (touched_lanes_.empty()) return;
  for (const std::uint32_t index : touched_lanes_) {
    std::vector<AsyncEventKey>& lane = lanes_[index];
    const std::size_t dst = index % num_shards_;
    for (const AsyncEventKey& key : lane) {
      wheels_[dst].insert(key);
      // Posts only ever lower a destination head, so folding the flushed
      // keys keeps the cursor the exact minimum (and argmin) over the
      // other shards' heads — the batch-continuation test never goes
      // stale.
      if (event_key_after(other.key, key)) {
        other.key = key;
        other.shard = dst;
      }
    }
    lane.clear();
  }
  touched_lanes_.clear();
}

// fdlsp-lint: hot — per-event steady-state path, no allocator traffic
void AsyncEngine::dispatch_event(
    const AsyncEventKey& key, AsyncMetrics& metrics, std::size_t& events,
    std::vector<std::pair<double, std::uint64_t>>& delivered,
    ShardCursor& other) {
  AsyncEventSlot& slot = slab_[key.slot];
  const NodeId to = slot.to;
  const ArcId channel = slot.channel;
  const std::int64_t cookie = slot.cookie;
  if (faults_ != nullptr && faults_->node_down(to, key.time)) {
    // In-flight traffic to a dead node dies with it (timers silently).
    if (channel != kNoArc) ++faults_->stats().crash_drops;
    slab_.release(key.slot);
    return;
  }
  ++events;
  // Pops follow the global (time, sequence) order, so the latest dispatched
  // event is always the furthest in time.
  metrics.completion_time = key.time;
  // One audited "round" is one dispatched event: the handler plus the
  // queue traffic it generates (posts and lane flushes land inside the
  // bracket).
  if (alloc_audit_ != nullptr) alloc_audit_->begin_round();
  AsyncContext ctx(*this, to, graph_.neighbors(to), key.time);
  if (channel == kNoArc) {
    // The slot is released before the handler runs: its cookie is already
    // copied out and a post from inside the handler reuses it first.
    slab_.release(key.slot);
    ++metrics.timer_events;
    if (trace_ != nullptr) trace_->on_local_step(to);
    current_node_ = to;
    in_handler_ = true;
    programs_[to]->on_timer(ctx, cookie);
    in_handler_ = false;
    current_node_ = kNoNode;
    flush_lanes(other);
    if (alloc_audit_ != nullptr) alloc_audit_->end_round();
    return;
  }
  ++metrics.messages;
  // The {-1.0, 0} initial entry can never trip the check (times are
  // nonnegative, sequences unsigned), so a first delivery needs no guard.
  const auto& [last_time, last_sequence] = delivered[channel];
  if (key.time < last_time || key.sequence < last_sequence)
    metrics.fifo_ok = false;
  delivered[channel] = {key.time, key.sequence};
  if (trace_ != nullptr) {
    trace_->on_deliver(slot.message.from, to);
    trace_->on_local_step(to);
  }
  // Swap the payload into the dispatch scratch (the slot inherits the
  // scratch's previous capacity) and release the slot before the handler:
  // the hottest slot is reused first and the handler's view of the message
  // is the scratch buffer, never slab storage that might move under it.
  dispatch_scratch_ = std::move(slot.message);
  slab_.release(key.slot);
  current_node_ = to;
  in_handler_ = true;
  programs_[to]->on_message(ctx, dispatch_scratch_);
  in_handler_ = false;
  current_node_ = kNoNode;
  flush_lanes(other);
  if (alloc_audit_ != nullptr) alloc_audit_->end_round();
}

std::size_t AsyncEngine::live_events() const {
  std::size_t total = 0;
  for (const EventWheel& wheel : wheels_) total += wheel.size();
  return total;
}

std::string AsyncEngine::diagnose_stall() {
  // Event budget exhausted with work still queued: summarize what is stuck
  // so a livelock (e.g. a retransmission loop that can never be acked) is
  // debuggable instead of a silent hang. The slab's liveness map covers
  // every pending event regardless of which shard structure holds its key.
  std::vector<std::uint64_t> pending(channel_clock_.size(), 0);
  std::size_t pending_timers = 0;
  std::size_t total = 0;
  const std::vector<char> live = slab_.live_map();
  for (std::uint32_t s = 0; s < live.size(); ++s) {
    if (live[s] == 0) continue;
    ++total;
    if (slab_[s].channel == kNoArc)
      ++pending_timers;
    else
      ++pending[slab_[s].channel];
  }
  std::vector<ArcId> busiest;
  for (ArcId c = 0; c < pending.size(); ++c)
    if (pending[c] > 0) busiest.push_back(c);
  std::sort(busiest.begin(), busiest.end(), [&](ArcId a, ArcId b) {
    return pending[a] != pending[b] ? pending[a] > pending[b] : a < b;
  });
  std::string out = "event budget exhausted with " + std::to_string(total) +
                    " events pending (" + std::to_string(pending_timers) +
                    " timers); busiest channels:";
  const std::size_t show = std::min<std::size_t>(busiest.size(), 5);
  for (std::size_t i = 0; i < show; ++i) {
    const ArcId c = busiest[i];
    const Edge& edge = graph_.edge(static_cast<EdgeId>(c >> 1));
    const NodeId from = (c & 1u) == 0 ? edge.u : edge.v;
    const NodeId to = (c & 1u) == 0 ? edge.v : edge.u;
    out.append(" ")
        .append(std::to_string(from))
        .append("->")
        .append(std::to_string(to))
        .append(" x")
        .append(std::to_string(pending[c]));
  }
  if (busiest.size() > show)
    out.append(" (+")
        .append(std::to_string(busiest.size() - show))
        .append(" more)");
  out += "; unfinished nodes:";
  std::size_t listed = 0;
  for (NodeId v = 0; v < programs_.size(); ++v) {
    if (programs_[v]->finished()) continue;
    if (faults_ != nullptr && faults_->node_crashes(v)) continue;
    if (listed == 8) {
      out += " ...";
      break;
    }
    out.append(" ").append(std::to_string(v));
    ++listed;
  }
  if (listed == 0) out += " none";
  return out;
}

AsyncMetrics AsyncEngine::run(std::size_t max_messages) {
  AsyncMetrics metrics;
  init_shards(planned_shards());
  if (faults_ != nullptr) {
    faults_->on_run_start();
    fault_posts_.assign(2 * graph_.num_edges(), 0);
  }
  for (NodeId v = 0; v < graph_.num_nodes(); ++v) {
    // A node whose crash time is <= 0 never wakes up at all.
    if (faults_ != nullptr && faults_->node_down(v, 0.0)) continue;
    AsyncContext ctx(*this, v, graph_.neighbors(v), 0.0);
    if (trace_ != nullptr) trace_->on_local_step(v);
    current_node_ = v;
    programs_[v]->on_start(ctx);
    current_node_ = kNoNode;
  }
  // Last delivered (time, sequence) per channel; sequences are assigned in
  // post order, so a delivery with a smaller sequence than its channel's
  // last one means FIFO was violated.
  std::vector<std::pair<double, std::uint64_t>> delivered(
      channel_clock_.size(), {-1.0, 0});
  // Timer callbacks count against the same budget as deliveries: a
  // retransmission livelock burns timers, not messages, and must still hit
  // the watchdog.
  std::size_t events = 0;
  if (num_shards_ == 1) {
    // Serial fast path: one wheel, no tournament, no batch-continuation
    // test. The cursor stays at the sentinel — a single-shard run has no
    // cross-shard lanes to fold into it.
    ShardCursor other{event_key_sentinel(), num_shards_};
    EventWheel& wheel = wheels_[0];
    while (!wheel.empty() && events < max_messages)
      dispatch_event(wheel.pop(), metrics, events, delivered, other);
  }
  // Tournament: the shard whose head is the global (time, sequence)
  // minimum wins the next batch. Sequences come from one global counter,
  // so this pop order is identical to a single serial heap. The full scan
  // runs once; afterwards each batch's other-shard cursor already names
  // the next winner (a batch only ends when that cursor's head leads).
  std::size_t best = num_shards_;
  if (num_shards_ > 1) {
    AsyncEventKey best_key = event_key_sentinel();
    for (std::size_t s = 0; s < num_shards_; ++s) {
      AsyncEventKey head;
      if (!shard_head(s, head)) continue;
      if (event_key_after(best_key, head)) {
        best_key = head;
        best = s;
      }
    }
  }
  while (best != num_shards_ && events < max_messages) {
    // Batch: keep dispatching from the winning shard while its head stays
    // below every other shard's — each pop is still the global minimum, so
    // the tournament scan is amortized over the whole same-shard run.
    ShardCursor other{event_key_sentinel(), num_shards_};
    for (std::size_t s = 0; s < num_shards_; ++s) {
      if (s == best) continue;
      AsyncEventKey head;
      if (!shard_head(s, head)) continue;
      if (event_key_after(other.key, head)) {
        other.key = head;
        other.shard = s;
      }
    }
    current_shard_ = best;
    EventWheel& wheel = wheels_[best];
    while (events < max_messages) {
      if (wheel.empty()) break;
      if (!event_key_after(other.key, wheel.peek())) break;  // other leads
      const AsyncEventKey key = wheel.pop();
      dispatch_event(key, metrics, events, delivered, other);
    }
    current_shard_ = 0;
    // The batch ended because this shard drained or stopped leading; in
    // both cases the cursor's argmin is the exact next winner.
    best = other.shard;
  }
  if (live_events() > 0) metrics.stall_diagnosis = diagnose_stall();
  bool all_done = true;
  for (NodeId v = 0; v < programs_.size(); ++v) {
    if (programs_[v]->finished()) continue;
    // A node the plan fail-stops counts as terminated even when its crash
    // time lies past the last event: no future event can ever reach it.
    if (faults_ != nullptr && faults_->node_crashes(v)) continue;
    all_done = false;
    break;
  }
  // Note: completion does not test the pending-event count. The previous
  // engine's stall diagnosis drained its queue before this line ran, so a
  // budget-exhausted run with every node finished still reported
  // completed — behavior the callers (and the byte-identical contract)
  // depend on.
  metrics.completed = all_done;
  if (faults_ != nullptr) metrics.faults = faults_->stats();
  return metrics;
}

}  // namespace fdlsp
