#include "sim/async_engine.h"

#include <algorithm>
#include <utility>

#include "support/alloc_audit.h"
#include "support/check.h"

namespace fdlsp {

// fdlsp-lint: hot — per-event steady-state path, no allocator traffic
void AsyncContext::send(NodeId to, Message message) {
  message.from = self_;
  if (sink_ != nullptr) {
    (*sink_)(to, std::move(message));
    return;
  }
  engine_->post(self_, to, std::move(message), now_);
}

// fdlsp-lint: hot — per-event steady-state path, no allocator traffic
void AsyncContext::broadcast(Message message) {
  if (neighbors_.empty()) return;
  for (std::size_t i = 0; i + 1 < neighbors_.size(); ++i)
    send(neighbors_[i].to, message);
  // The last copy is the original: move instead of copy, so a broadcast
  // to d neighbors performs d-1 payload copies, not d.
  send(neighbors_.back().to, std::move(message));
}

void AsyncContext::set_timer(double delay, std::int64_t cookie) {
  engine_->post_timer(self_, delay, cookie, now_);
}

void AsyncProgram::on_timer(AsyncContext& /*ctx*/, std::int64_t /*cookie*/) {}

AsyncEngine::AsyncEngine(const Graph& graph,
                         std::vector<std::unique_ptr<AsyncProgram>> programs,
                         DelayModel delay_model, std::uint64_t seed)
    : AsyncEngine(graph, std::move(programs),
                  make_delay_schedule(delay_model, seed)) {}

AsyncEngine::AsyncEngine(const Graph& graph,
                         std::vector<std::unique_ptr<AsyncProgram>> programs,
                         std::unique_ptr<DelaySchedule> schedule)
    : graph_(graph),
      programs_(std::move(programs)),
      schedule_(std::move(schedule)) {
  FDLSP_REQUIRE(programs_.size() == graph_.num_nodes(),
                "one program per node required");
  FDLSP_REQUIRE(schedule_ != nullptr, "delay schedule required");
  channel_clock_.assign(2 * graph_.num_edges(), 0.0);
  channel_posts_.assign(2 * graph_.num_edges(), 0);
  // Per-(neighbor-pair) channel ids, computed once: post() resolves the
  // channel of every message with a single CSR row search instead of
  // find_edge + an ArcView Edge load.
  channels_.build(graph_);
}

// fdlsp-lint: hot — per-event steady-state path, no allocator traffic
void AsyncEngine::post(NodeId from, NodeId to, Message message, double now) {
  const ArcId channel = channels_.channel(graph_, from, to);
  FDLSP_REQUIRE(channel != kNoArc, "nodes may only message direct neighbors");
  if (faults_ == nullptr) {
    enqueue(to, channel, std::move(message), now);
    return;
  }
  // A crashed sender's handlers never run, but a send from the exact crash
  // instant is possible; treat both endpoints dead.
  if (faults_->node_down(from, now) || faults_->node_down(to, now)) {
    ++faults_->stats().crash_drops;
    return;
  }
  if (faults_->link_down(channel, now)) {
    ++faults_->stats().link_down_drops;
    return;
  }
  // fdlsp-lint: hot — region outage test is a per-edge bitmask probe
  if (faults_->region_down(channel, now)) {
    ++faults_->stats().region_drops;
    return;
  }
  const std::uint64_t index = fault_posts_[channel]++;
  switch (faults_->channel_action(channel, index, now)) {
    case FaultAction::kDrop:
      return;
    case FaultAction::kDuplicate:
      enqueue(to, channel, message, now);
      enqueue(to, channel, std::move(message), now);
      return;
    case FaultAction::kCorrupt:
      faults_->corrupt_payload(channel, index, message);
      enqueue(to, channel, std::move(message), now);
      return;
    case FaultAction::kDeliver:
      enqueue(to, channel, std::move(message), now);
      return;
  }
  FDLSP_REQUIRE(false, "unknown fault action");
}

// fdlsp-lint: hot — per-event steady-state path, no allocator traffic
void AsyncEngine::enqueue(NodeId to, ArcId channel, Message message,
                          double now) {
  // on_send fires once per copy actually scheduled (dropped messages emit no
  // event, duplicates emit two), keeping the per-channel send/deliver
  // pairing the happens-before checker relies on exact under faults.
  if (trace_ != nullptr) trace_->on_send(message.from, to);
  const double delay = schedule_->delay(channel, channel_posts_[channel]++);
  FDLSP_REQUIRE(delay > 0.0 && delay <= 1.0,
                "delay schedules must return delays in (0, 1]");
  // FIFO per directed channel: never schedule before an earlier message on
  // the same channel.
  double when = now + delay;
  when = std::max(when, channel_clock_[channel] + 1e-9);
  channel_clock_[channel] = when;
  queue_.push(Event{when, next_sequence_++, to, channel, 0, std::move(message)});
}

void AsyncEngine::post_timer(NodeId v, double delay, std::int64_t cookie,
                             double now) {
  FDLSP_REQUIRE(delay > 0.0, "timer delays must be positive");
  // Timers are node-local: no channel, no FIFO clamp, no delay schedule.
  queue_.push(Event{now + delay, next_sequence_++, v, kNoArc, cookie, {}});
}

std::string AsyncEngine::diagnose_stall() {
  // Event budget exhausted with work still queued: summarize what is stuck
  // so a livelock (e.g. a retransmission loop that can never be acked) is
  // debuggable instead of a silent hang.
  std::vector<std::uint64_t> pending(channel_clock_.size(), 0);
  std::size_t pending_timers = 0;
  std::size_t total = 0;
  while (!queue_.empty()) {
    const Event& event = queue_.top();
    ++total;
    if (event.channel == kNoArc)
      ++pending_timers;
    else
      ++pending[event.channel];
    queue_.pop();
  }
  std::vector<ArcId> busiest;
  for (ArcId c = 0; c < pending.size(); ++c)
    if (pending[c] > 0) busiest.push_back(c);
  std::sort(busiest.begin(), busiest.end(), [&](ArcId a, ArcId b) {
    return pending[a] != pending[b] ? pending[a] > pending[b] : a < b;
  });
  std::string out = "event budget exhausted with " + std::to_string(total) +
                    " events pending (" + std::to_string(pending_timers) +
                    " timers); busiest channels:";
  const std::size_t show = std::min<std::size_t>(busiest.size(), 5);
  for (std::size_t i = 0; i < show; ++i) {
    const ArcId c = busiest[i];
    const Edge& edge = graph_.edge(static_cast<EdgeId>(c >> 1));
    const NodeId from = (c & 1u) == 0 ? edge.u : edge.v;
    const NodeId to = (c & 1u) == 0 ? edge.v : edge.u;
    out.append(" ")
        .append(std::to_string(from))
        .append("->")
        .append(std::to_string(to))
        .append(" x")
        .append(std::to_string(pending[c]));
  }
  if (busiest.size() > show)
    out.append(" (+")
        .append(std::to_string(busiest.size() - show))
        .append(" more)");
  out += "; unfinished nodes:";
  std::size_t listed = 0;
  for (NodeId v = 0; v < programs_.size(); ++v) {
    if (programs_[v]->finished()) continue;
    if (faults_ != nullptr && faults_->node_crashes(v)) continue;
    if (listed == 8) {
      out += " ...";
      break;
    }
    out.append(" ").append(std::to_string(v));
    ++listed;
  }
  if (listed == 0) out += " none";
  return out;
}

AsyncMetrics AsyncEngine::run(std::size_t max_messages) {
  AsyncMetrics metrics;
  if (faults_ != nullptr) {
    faults_->on_run_start();
    fault_posts_.assign(2 * graph_.num_edges(), 0);
  }
  for (NodeId v = 0; v < graph_.num_nodes(); ++v) {
    // A node whose crash time is <= 0 never wakes up at all.
    if (faults_ != nullptr && faults_->node_down(v, 0.0)) continue;
    AsyncContext ctx(*this, v, graph_.neighbors(v), 0.0);
    if (trace_ != nullptr) trace_->on_local_step(v);
    current_node_ = v;
    programs_[v]->on_start(ctx);
    current_node_ = kNoNode;
  }
  // Last delivered (time, sequence) per channel; sequences are assigned in
  // post order, so a delivery with a smaller sequence than its channel's
  // last one means FIFO was violated.
  std::vector<std::pair<double, std::uint64_t>> delivered(
      channel_clock_.size(), {-1.0, 0});
  std::vector<bool> delivered_any(channel_clock_.size(), false);
  // Timer callbacks count against the same budget as deliveries: a
  // retransmission livelock burns timers, not messages, and must still hit
  // the watchdog.
  std::size_t events = 0;
  while (!queue_.empty() && events < max_messages) {
    Event event = queue_.top();
    queue_.pop();
    if (faults_ != nullptr && faults_->node_down(event.to, event.time)) {
      // In-flight traffic to a dead node dies with it (timers silently).
      if (event.channel != kNoArc) ++faults_->stats().crash_drops;
      continue;
    }
    ++events;
    metrics.completion_time = std::max(metrics.completion_time, event.time);
    // One audited "round" is one dispatched event: the handler plus the
    // queue traffic it generates (posts land inside the bracket).
    if (alloc_audit_ != nullptr) alloc_audit_->begin_round();
    AsyncContext ctx(*this, event.to, graph_.neighbors(event.to), event.time);
    if (event.channel == kNoArc) {
      ++metrics.timer_events;
      if (trace_ != nullptr) trace_->on_local_step(event.to);
      current_node_ = event.to;
      programs_[event.to]->on_timer(ctx, event.cookie);
      current_node_ = kNoNode;
      if (alloc_audit_ != nullptr) alloc_audit_->end_round();
      continue;
    }
    ++metrics.messages;
    if (delivered_any[event.channel]) {
      const auto& [last_time, last_sequence] = delivered[event.channel];
      if (event.time < last_time || event.sequence < last_sequence)
        metrics.fifo_ok = false;
    }
    delivered[event.channel] = {event.time, event.sequence};
    delivered_any[event.channel] = true;
    if (trace_ != nullptr) {
      trace_->on_deliver(event.message.from, event.to);
      trace_->on_local_step(event.to);
    }
    current_node_ = event.to;
    programs_[event.to]->on_message(ctx, event.message);
    current_node_ = kNoNode;
    if (alloc_audit_ != nullptr) alloc_audit_->end_round();
  }
  if (!queue_.empty()) metrics.stall_diagnosis = diagnose_stall();
  bool all_done = true;
  for (NodeId v = 0; v < programs_.size(); ++v) {
    if (programs_[v]->finished()) continue;
    // A node the plan fail-stops counts as terminated even when its crash
    // time lies past the last event: no future event can ever reach it.
    if (faults_ != nullptr && faults_->node_crashes(v)) continue;
    all_done = false;
    break;
  }
  metrics.completed = queue_.empty() && all_done;
  if (faults_ != nullptr) metrics.faults = faults_->stats();
  return metrics;
}

}  // namespace fdlsp
