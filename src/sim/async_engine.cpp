#include "sim/async_engine.h"

#include <algorithm>
#include <utility>

#include "graph/arcs.h"
#include "support/check.h"

namespace fdlsp {

void AsyncContext::send(NodeId to, Message message) {
  message.from = self_;
  engine_->post(self_, to, std::move(message), now_);
}

void AsyncContext::broadcast(Message message) {
  for (const NeighborEntry& entry : neighbors_) send(entry.to, message);
}

AsyncEngine::AsyncEngine(const Graph& graph,
                         std::vector<std::unique_ptr<AsyncProgram>> programs,
                         DelayModel delay_model, std::uint64_t seed)
    : graph_(graph),
      programs_(std::move(programs)),
      delay_model_(delay_model),
      rng_(seed) {
  FDLSP_REQUIRE(programs_.size() == graph_.num_nodes(),
                "one program per node required");
  channel_clock_.assign(2 * graph_.num_edges(), 0.0);
}

void AsyncEngine::post(NodeId from, NodeId to, Message message, double now) {
  const EdgeId e = graph_.find_edge(from, to);
  FDLSP_REQUIRE(e != kNoEdge, "nodes may only message direct neighbors");
  double delay = 1.0;
  if (delay_model_ == DelayModel::kUniformRandom)
    delay = 1.0 - rng_.next_double();  // (0, 1]
  // FIFO per directed channel: never schedule before an earlier message on
  // the same channel.
  const ArcId channel = ArcView(graph_).arc_from(e, from);
  double when = now + delay;
  when = std::max(when, channel_clock_[channel] + 1e-9);
  channel_clock_[channel] = when;
  queue_.push(Event{when, next_sequence_++, to, std::move(message)});
}

AsyncMetrics AsyncEngine::run(std::size_t max_messages) {
  AsyncMetrics metrics;
  for (NodeId v = 0; v < graph_.num_nodes(); ++v) {
    AsyncContext ctx(*this, v, graph_.neighbors(v), 0.0);
    programs_[v]->on_start(ctx);
  }
  while (!queue_.empty() && metrics.messages < max_messages) {
    Event event = queue_.top();
    queue_.pop();
    ++metrics.messages;
    metrics.completion_time = std::max(metrics.completion_time, event.time);
    AsyncContext ctx(*this, event.to, graph_.neighbors(event.to), event.time);
    programs_[event.to]->on_message(ctx, event.message);
  }
  metrics.completed =
      queue_.empty() &&
      std::all_of(programs_.begin(), programs_.end(),
                  [](const auto& p) { return p->finished(); });
  return metrics;
}

}  // namespace fdlsp
