#include "sim/async_engine.h"

#include <algorithm>
#include <utility>

#include "graph/arcs.h"
#include "support/check.h"

namespace fdlsp {

void AsyncContext::send(NodeId to, Message message) {
  message.from = self_;
  engine_->post(self_, to, std::move(message), now_);
}

void AsyncContext::broadcast(Message message) {
  for (const NeighborEntry& entry : neighbors_) send(entry.to, message);
}

AsyncEngine::AsyncEngine(const Graph& graph,
                         std::vector<std::unique_ptr<AsyncProgram>> programs,
                         DelayModel delay_model, std::uint64_t seed)
    : AsyncEngine(graph, std::move(programs),
                  make_delay_schedule(delay_model, seed)) {}

AsyncEngine::AsyncEngine(const Graph& graph,
                         std::vector<std::unique_ptr<AsyncProgram>> programs,
                         std::unique_ptr<DelaySchedule> schedule)
    : graph_(graph),
      programs_(std::move(programs)),
      schedule_(std::move(schedule)) {
  FDLSP_REQUIRE(programs_.size() == graph_.num_nodes(),
                "one program per node required");
  FDLSP_REQUIRE(schedule_ != nullptr, "delay schedule required");
  channel_clock_.assign(2 * graph_.num_edges(), 0.0);
  channel_posts_.assign(2 * graph_.num_edges(), 0);
}

void AsyncEngine::post(NodeId from, NodeId to, Message message, double now) {
  const EdgeId e = graph_.find_edge(from, to);
  FDLSP_REQUIRE(e != kNoEdge, "nodes may only message direct neighbors");
  const ArcId channel = ArcView(graph_).arc_from(e, from);
  if (trace_ != nullptr) trace_->on_send(from, to);
  const double delay = schedule_->delay(channel, channel_posts_[channel]++);
  FDLSP_REQUIRE(delay > 0.0 && delay <= 1.0,
                "delay schedules must return delays in (0, 1]");
  // FIFO per directed channel: never schedule before an earlier message on
  // the same channel.
  double when = now + delay;
  when = std::max(when, channel_clock_[channel] + 1e-9);
  channel_clock_[channel] = when;
  queue_.push(Event{when, next_sequence_++, to, channel, std::move(message)});
}

AsyncMetrics AsyncEngine::run(std::size_t max_messages) {
  AsyncMetrics metrics;
  for (NodeId v = 0; v < graph_.num_nodes(); ++v) {
    AsyncContext ctx(*this, v, graph_.neighbors(v), 0.0);
    if (trace_ != nullptr) trace_->on_local_step(v);
    current_node_ = v;
    programs_[v]->on_start(ctx);
    current_node_ = kNoNode;
  }
  // Last delivered (time, sequence) per channel; sequences are assigned in
  // post order, so a delivery with a smaller sequence than its channel's
  // last one means FIFO was violated.
  std::vector<std::pair<double, std::uint64_t>> delivered(
      channel_clock_.size(), {-1.0, 0});
  std::vector<bool> delivered_any(channel_clock_.size(), false);
  while (!queue_.empty() && metrics.messages < max_messages) {
    Event event = queue_.top();
    queue_.pop();
    ++metrics.messages;
    metrics.completion_time = std::max(metrics.completion_time, event.time);
    if (delivered_any[event.channel]) {
      const auto& [last_time, last_sequence] = delivered[event.channel];
      if (event.time < last_time || event.sequence < last_sequence)
        metrics.fifo_ok = false;
    }
    delivered[event.channel] = {event.time, event.sequence};
    delivered_any[event.channel] = true;
    AsyncContext ctx(*this, event.to, graph_.neighbors(event.to), event.time);
    if (trace_ != nullptr) {
      trace_->on_deliver(event.message.from, event.to);
      trace_->on_local_step(event.to);
    }
    current_node_ = event.to;
    programs_[event.to]->on_message(ctx, event.message);
    current_node_ = kNoNode;
  }
  metrics.completed =
      queue_.empty() &&
      std::all_of(programs_.begin(), programs_.end(),
                  [](const auto& p) { return p->finished(); });
  return metrics;
}

}  // namespace fdlsp
