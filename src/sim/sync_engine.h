// Synchronous message-passing engine (the paper's synchronous LOCAL model).
//
// Execution proceeds in lock-step rounds. In round r every node reads the
// messages its neighbors sent in round r-1, computes, and sends messages to
// neighbors. Nodes only ever address direct neighbors — multi-hop knowledge
// must be relayed, which is exactly what makes round counts meaningful.
//
// Phase barriers: distributed algorithms built from subroutines with
// data-dependent length (e.g. Luby's MIS inside DistMIS) need to agree
// globally that a subroutine has converged. Real deployments do this with a
// convergecast or a known round bound; the engine models it as a *barrier*:
// when every node votes ready, the engine advances the global phase counter
// without consuming a communication round. DESIGN.md discusses this
// substitution; round counts reported by the engine are the communication
// rounds actually consumed.
//
// Sharded parallel rounds (DESIGN.md §11, §14): node callbacks are
// protocol-isolated — a program only touches its own state and the
// read-only graph (enforced by fdlsp-lint and the happens-before checker) —
// so with a ThreadPool attached the engine partitions the node id space
// into contiguous shards and runs each shard's callbacks on a worker. Each
// shard owns its slice of state: its nodes' inbox slabs, a ChannelTable
// slice for send-side validation, and an S-lane row of send slabs, one
// lane per destination shard. After the round barrier a second parallel
// dispatch merges, per destination shard, the lanes addressed to it in
// ascending source-shard order — which reproduces the serial (sender id,
// send order) enqueue order exactly, so the run is byte-identical to the
// serial engine for any shard count. Trace and fault seams force the
// serial path: they are observation/adversary channels, not hot paths, and
// their event ordering contracts stay exactly as documented.
#pragma once

#include <algorithm>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "sim/channel_table.h"
#include "sim/fault.h"
#include "sim/message.h"
#include "sim/shard.h"
#include "sim/trace.h"

namespace fdlsp {

class AllocAudit;
class SyncEngine;
class ThreadPool;

/// Capture target for a reframed context's sends (see SyncContext::reframed).
using SyncSendSink = std::function<void(NodeId to, Message message)>;

/// Non-owning capture target (see SyncContext::external): the sink borrows
/// the message for the duration of the call — it must copy what it keeps —
/// and the message's `from` field is unspecified (the capturing layer knows
/// which node it drives). This is the zero-alloc twin of SyncSendSink: a
/// spilled payload is never materialized into a temporary per receiver, so
/// a capture layer with recycled buffers (sim/synchronizer.h) adds no
/// allocator traffic to a program's steady state.
using SyncCaptureSink = std::function<void(NodeId to, const Message& message)>;

/// One send buffered by a parallel-round shard, merged in canonical order
/// after the shard barrier (engine internal).
struct SyncBufferedSend {
  NodeId to;
  Message message;
};

/// Per-lane slab of buffered sends (engine internal). Slots are recycled —
/// reset() rewinds the live count without destroying elements — so message
/// payload capacities survive across rounds and the steady state buffers
/// without allocating, mirroring the engine's inbox slabs.
class SyncSendSlab {
 public:
  /// Appends by move; the displaced slot payload migrates into the source
  /// (SmallPayload's swapping move-assignment), never freed here.
  void add(NodeId to, Message&& message) {
    if (count_ < sends_.size()) {
      SyncBufferedSend& slot = sends_[count_];
      slot.to = to;
      slot.message = std::move(message);
    } else {
      sends_.push_back(SyncBufferedSend{to, std::move(message)});
    }
    ++count_;
  }

  /// Appends by copy-assign — the slot's payload capacity is reused, so a
  /// warmed slab buffers broadcast copies with zero allocator traffic. The
  /// stored copy's `from` field is stamped with `from` (the source message
  /// is shared by all receivers and never mutated).
  void add_copy(NodeId to, const Message& message, NodeId from) {
    if (count_ < sends_.size()) {
      SyncBufferedSend& slot = sends_[count_];
      // Dead slots past the live count are unordered; when this slot's
      // payload capacity is too small, borrow a big-enough one from the
      // dead region so the slab's total spilled capacity is recycled
      // instead of every slot index growing independently. The scan is
      // windowed: per-node inbox rows are degree-sized so a window covers
      // them entirely, but a shard lane holds a whole shard's sends for
      // the round, and an unbounded scan that mostly finds nothing (cold
      // slots hold no spilled capacity yet) turns the warm-up quadratic
      // in the lane size. Beyond the window the slot grows its own
      // capacity — a bounded number of times, so the allocation-free
      // steady state is unchanged.
      if (message.data.size() > slot.message.data.capacity()) {
        const std::size_t window =
            std::min(sends_.size(), count_ + 1 + kBorrowWindow);
        for (std::size_t j = count_ + 1; j < window; ++j) {
          if (sends_[j].message.data.capacity() >= message.data.size()) {
            slot.message.data.swap(sends_[j].message.data);
            break;
          }
        }
      }
      slot.to = to;
      slot.message = message;
    } else {
      sends_.push_back(SyncBufferedSend{to, message});
    }
    sends_[count_].message.from = from;
    ++count_;
  }

  /// The live entries, in send order.
  std::span<SyncBufferedSend> entries() noexcept {
    return {sends_.data(), count_};
  }

  /// Rewinds the live count; elements (and their capacities) stay alive.
  void reset() noexcept { count_ = 0; }

 private:
  /// Dead-region capacity-borrow scan bound (see add_copy).
  static constexpr std::size_t kBorrowWindow = 32;

  std::vector<SyncBufferedSend> sends_;
  std::size_t count_ = 0;
};

/// Per-round context handed to a node program; valid only during on_round.
class SyncContext {
 public:
  /// This node's id.
  NodeId self() const noexcept { return self_; }

  /// Current round number (0-based).
  std::size_t round() const noexcept { return round_; }

  /// Current phase counter (incremented by barriers).
  std::size_t phase() const noexcept { return phase_; }

  /// Index of the engine shard executing this callback; 0 on the serial
  /// path. Program sets (SyncProgramSet) may index per-shard scratch by
  /// this value race-free: exactly one worker drives a shard's callbacks,
  /// and the serial engine always reports shard 0.
  std::size_t shard() const noexcept { return shard_; }

  /// Direct neighbors of this node (local topology knowledge).
  std::span<const NeighborEntry> neighbors() const noexcept {
    return neighbors_;
  }

  /// Sends a message to a direct neighbor, delivered next round.
  void send(NodeId to, Message message);

  /// Broadcasts a message the caller is done with: d-1 payload copies plus
  /// one move for the final neighbor.
  void broadcast(Message&& message);

  /// Broadcasts a message the caller keeps (e.g. a reusable scratch): the
  /// engine copy-assigns into its recycled inbox slots, so a warmed run
  /// broadcasts with zero allocator traffic even for spilled payloads —
  /// the zero-alloc seam DistMIS's flood relays ride (DESIGN.md §11). The
  /// message's `from` field is left untouched; the delivered copies carry
  /// this node's id regardless.
  void broadcast(const Message& message);

  /// A copy of this context for a protocol layered *inside* another program
  /// (sim/reliable.h): round() reports the wrapped protocol's own round
  /// counter and send()/broadcast() feed `sink` instead of the engine, so
  /// the outer program can frame and schedule the traffic itself. `sink`
  /// must outlive the copy.
  SyncContext reframed(std::size_t round, const SyncSendSink* sink) const {
    SyncContext copy = *this;
    copy.round_ = round;
    copy.sink_ = sink;
    return copy;
  }

  /// A detached context for harness layers that drive SyncPrograms outside
  /// a SyncEngine (the round synchronizer, sim/synchronizer.h): there is no
  /// engine behind it — send()/broadcast() feed `capture`, which must be
  /// non-null and outlive the context. Unlike the owning SyncSendSink seam,
  /// the capture sink borrows each message (see SyncCaptureSink), so the
  /// hot path stays allocation-free.
  static SyncContext external(NodeId self,
                              std::span<const NeighborEntry> neighbors,
                              std::size_t round, std::size_t phase,
                              const SyncCaptureSink* capture) {
    FDLSP_REQUIRE(capture != nullptr, "external contexts need a capture sink");
    SyncContext ctx(nullptr, self, neighbors, round, phase);
    ctx.capture_ = capture;
    return ctx;
  }

 private:
  friend class SyncEngine;
  SyncContext(SyncEngine* engine, NodeId self,
              std::span<const NeighborEntry> neighbors, std::size_t round,
              std::size_t phase)
      : engine_(engine),
        self_(self),
        neighbors_(neighbors),
        round_(round),
        phase_(phase) {}

  // send() for targets already known to be neighbors — broadcast iterates
  // neighbors_, which the engine built from the graph, so the per-send
  // neighbor-ness validation (a binary search) would re-prove an invariant
  // that holds by construction. Direct send() keeps the check.
  void send_trusted(NodeId to, Message message);

  // Copying twin of send_trusted for broadcast(const Message&): the payload
  // is copy-assigned into a recycled slot instead of materializing a
  // temporary Message per receiver.
  void send_trusted_copy(NodeId to, const Message& message);

  SyncEngine* engine_;
  NodeId self_;
  std::span<const NeighborEntry> neighbors_;
  std::size_t round_;
  std::size_t phase_;
  const SyncSendSink* sink_ = nullptr;  // non-null: capture instead of send
  // Non-null: borrow-capture instead of send (external contexts only).
  const SyncCaptureSink* capture_ = nullptr;
  // Non-null on parallel rounds: the executing shard's row of per-
  // destination-shard send lanes. Sends are buffered in
  // lanes_[plan_.shard_of(to)] for the post-barrier merge instead of
  // touching shared engine state from a worker thread.
  SyncSendSlab* lanes_ = nullptr;
  ShardPlan plan_{};                        // parallel rounds only
  std::size_t shard_ = 0;                   // executing shard (0 = serial)
  const ChannelTable* channels_ = nullptr;  // shard-local send validation
};

/// A node program for the synchronous engine.
class SyncProgram {
 public:
  virtual ~SyncProgram() = default;

  /// Executes one round: consume this round's inbox, send next round's
  /// messages. Called once per round for every node, in unspecified order
  /// (sends are buffered, so order cannot be observed).
  virtual void on_round(SyncContext& ctx, std::span<const Message> inbox) = 0;

  /// True when this node is ready for the current phase to end. The engine
  /// advances the phase (calling on_phase on everyone) once all nodes vote
  /// ready *and* no messages are in flight.
  virtual bool ready_for_phase_advance() const = 0;

  /// Notification that the global phase counter advanced.
  virtual void on_phase(std::size_t new_phase) = 0;

  /// True when this node has terminated. The run ends when all nodes have.
  virtual bool finished() const = 0;
};

/// A whole population of node programs behind one object — the
/// structure-of-arrays seam (DESIGN.md §14). Where the per-node SyncProgram
/// interface forces one heap object per node, a set keeps hot per-node
/// state in parallel arrays indexed by node id and per-shard scratch
/// indexed by ctx.shard(), so a shard's round touches dense shard-local
/// memory. The engine calls exactly the same callbacks, just with the node
/// id made explicit.
class SyncProgramSet {
 public:
  virtual ~SyncProgramSet() = default;

  /// Number of nodes (must equal the graph's).
  virtual std::size_t size() const = 0;

  /// Called once at the start of every run() with the shard count the run
  /// will execute with (1 on the serial path), before any other callback.
  /// Sets that keep per-shard scratch size it here. A set prepared for one
  /// shard count must not silently be run at another — per-shard state
  /// (e.g. learned colors) would be invisible to the new partition — so
  /// implementations are expected to treat a changed count as a contract
  /// error once real state exists.
  virtual void prepare_shards(std::size_t shards) { (void)shards; }

  /// Per-node callbacks; semantics exactly as in SyncProgram.
  virtual void on_round(NodeId v, SyncContext& ctx,
                        std::span<const Message> inbox) = 0;
  virtual bool ready_for_phase_advance(NodeId v) const = 0;
  virtual void on_phase(NodeId v, std::size_t new_phase) = 0;
  virtual bool finished(NodeId v) const = 0;
};

/// Adapter: the classic one-heap-object-per-node program vector behind the
/// SyncProgramSet interface. The engine's per-node-program constructor
/// wraps its vector in one of these, so every existing protocol runs on
/// the sharded engine unchanged.
class VectorProgramSet final : public SyncProgramSet {
 public:
  explicit VectorProgramSet(std::vector<std::unique_ptr<SyncProgram>> programs)
      : programs_(std::move(programs)) {}

  std::size_t size() const override { return programs_.size(); }
  void on_round(NodeId v, SyncContext& ctx,
                std::span<const Message> inbox) override {
    programs_[v]->on_round(ctx, inbox);
  }
  bool ready_for_phase_advance(NodeId v) const override {
    return programs_[v]->ready_for_phase_advance();
  }
  void on_phase(NodeId v, std::size_t new_phase) override {
    programs_[v]->on_phase(new_phase);
  }
  bool finished(NodeId v) const override { return programs_[v]->finished(); }

  SyncProgram& program(NodeId v) { return *programs_[v]; }
  const SyncProgram& program(NodeId v) const { return *programs_[v]; }

 private:
  std::vector<std::unique_ptr<SyncProgram>> programs_;
};

/// Adapter in the other direction: one node's view of a SyncProgramSet as
/// a standalone SyncProgram. This is how a set-backed protocol composes
/// with per-node wrappers (sim/reliable.h hardens each node separately);
/// the set must outlive the adapter.
class SetNodeProgram final : public SyncProgram {
 public:
  SetNodeProgram(SyncProgramSet& set, NodeId self)
      : set_(&set), self_(self) {}

  void on_round(SyncContext& ctx, std::span<const Message> inbox) override {
    set_->on_round(self_, ctx, inbox);
  }
  bool ready_for_phase_advance() const override {
    return set_->ready_for_phase_advance(self_);
  }
  void on_phase(std::size_t new_phase) override {
    set_->on_phase(self_, new_phase);
  }
  bool finished() const override { return set_->finished(self_); }

 private:
  SyncProgramSet* set_;
  NodeId self_;
};

/// Metrics of a synchronous run.
struct SyncMetrics {
  std::size_t rounds = 0;    ///< communication rounds consumed
  std::size_t messages = 0;  ///< total point-to-point messages delivered
  std::size_t phases = 0;    ///< barrier advances performed
  bool completed = false;    ///< all nodes finished within the round cap
  FaultStats faults;         ///< injected faults (all zero without a plan)
};

/// Drives a set of SyncPrograms over a communication graph.
class SyncEngine {
 public:
  /// The graph must outlive the engine. One program per node, same order.
  SyncEngine(const Graph& graph,
             std::vector<std::unique_ptr<SyncProgram>> programs);

  /// Structure-of-arrays form: the set is not owned and must outlive the
  /// engine. program() is unavailable on this path — extract results from
  /// the set itself.
  SyncEngine(const Graph& graph, SyncProgramSet& set);

  /// Runs until every program reports finished() or the round cap is hit.
  SyncMetrics run(std::size_t max_rounds = 1'000'000);

  /// Attaches an event observer (nullptr detaches). With no trace the
  /// instrumentation points reduce to a null check; see sim/trace.h.
  void set_trace(SimTrace* trace) noexcept { trace_ = trace; }

  /// Installs a fault plan (nullptr detaches) — the same seam as set_trace:
  /// with no plan every injection point is a single null check and the run
  /// is byte-identical to an engine built before fault injection existed.
  /// The plan is consulted at send time (drop/duplicate/corrupt/link-down)
  /// and each round for node crashes: a crashed node's callbacks stop, its
  /// queued inbox is discarded, and it counts as terminated. Not owned; must
  /// outlive the run.
  void set_fault_plan(FaultPlan* plan) noexcept { faults_ = plan; }

  /// Shards state and rounds across `pool` (nullptr detaches → serial).
  /// The result is byte-identical to the serial engine for any shard or
  /// thread count: each contiguous node shard buffers its sends per
  /// destination shard, and the post-barrier merge drains each
  /// destination's lanes in ascending source-shard order — exactly the
  /// serial enqueue order. An attached trace or fault plan forces serial
  /// execution so their event ordering contracts are untouched. Not owned;
  /// must outlive the run.
  void set_thread_pool(ThreadPool* pool) noexcept { pool_ = pool; }

  /// Explicit shard count for pooled runs; 0 (the default) derives the
  /// count from the pool size. Capped at the node count. Ignored — like
  /// the pool itself — whenever a seam forces the serial path.
  void set_shards(std::size_t shards) noexcept { shards_config_ = shards; }

  /// Number of state shards the next run() will execute with: 1 whenever a
  /// seam forces the serial path (no pool, trace or faults attached, empty
  /// graph, nested on a pool worker), otherwise the set_shards() override
  /// or the automatic pool-derived count, capped at the node count.
  std::size_t planned_shards() const noexcept;

  /// Attaches an allocation auditor (nullptr detaches): each communication
  /// round is bracketed with begin_round/end_round so per-round allocator
  /// traffic lands in the auditor's profile (support/alloc_audit.h). Unlike
  /// trace/fault seams the auditor only samples process-global counters, so
  /// it does NOT force the serial path — sharded rounds are audited too.
  /// Not owned; must outlive the run.
  void set_alloc_audit(AllocAudit* audit) noexcept { alloc_audit_ = audit; }

  /// Program of node v (for extracting results after the run). Only valid
  /// with the per-node-program constructor; a set-backed engine has no
  /// per-node program objects. Calling this from inside a program callback
  /// for a node other than the one executing is a cross-node state read and
  /// is reported to the attached trace.
  SyncProgram& program(NodeId v) {
    FDLSP_REQUIRE(owned_ != nullptr,
                  "program() requires the per-node-program constructor");
    note_program_access(v);
    return owned_->program(v);
  }
  const SyncProgram& program(NodeId v) const {
    FDLSP_REQUIRE(owned_ != nullptr,
                  "program() requires the per-node-program constructor");
    note_program_access(v);
    return owned_->program(v);
  }

 private:
  friend class SyncContext;
  void deliver(NodeId from, NodeId to, Message&& message);
  void deliver_trusted(NodeId from, NodeId to, Message&& message);
  void deliver_trusted_copy(NodeId from, NodeId to, const Message& message);
  void deliver_faulted(ArcId channel, NodeId from, NodeId to, Message message);
  void enqueue(NodeId from, NodeId to, Message&& message);
  void enqueue_copy(NodeId from, NodeId to, const Message& message);
  Message& next_slot(NodeId to, std::size_t words, std::vector<NodeId>& dirty);

  void note_program_access(NodeId v) const {
    if (trace_ != nullptr && current_node_ != kNoNode && current_node_ != v)
      trace_->on_state_read(current_node_, v);
  }

  const Graph& graph_;
  std::unique_ptr<VectorProgramSet> owned_;  // per-node-program ctor only
  SyncProgramSet* set_;                      // the programs driving the run
  // Inbox slabs: per-node message vectors with a separately tracked live
  // count. Between rounds only the counts of the boxes named in the dirty
  // lists are rewound — the Message elements beyond the count stay alive,
  // so both the vector capacity and any spilled payload capacity survive
  // and steady-state rounds allocate nothing. Messages are copy-assigned
  // (broadcast const&) or swap-moved into the recycled slots; the slab
  // never destroys an element until the engine itself dies.
  std::vector<std::vector<Message>> inbox_;       // delivered this round
  std::vector<std::vector<Message>> next_inbox_;  // sent this round
  std::vector<std::size_t> inbox_count_;  // live messages per inbox_ slab
  std::vector<std::size_t> next_count_;   // live messages per next_ slab
  // Dirty lists are bucketed per destination shard so the parallel lane
  // merge appends without sharing: serial rounds use bucket 0, merge
  // worker d uses bucket d. The round swap rewinds every bucket, so which
  // bucket recorded a box never matters for correctness.
  std::vector<std::vector<NodeId>> dirty_inbox_;  // inbox_ boxes w/ messages
  std::vector<std::vector<NodeId>> dirty_next_;   // next_inbox_ boxes
  std::size_t pending_messages_ = 0;
  std::size_t total_messages_ = 0;
  SimTrace* trace_ = nullptr;
  FaultPlan* faults_ = nullptr;
  ThreadPool* pool_ = nullptr;  // non-null: shard state across workers
  AllocAudit* alloc_audit_ = nullptr;  // non-null: bracket rounds
  std::size_t shards_config_ = 0;      // set_shards(); 0 = automatic
  // --- sharded-run state (sized on the first parallel run) ---
  ShardPlan plan_{};                       // partition of the current run
  std::vector<SyncSendSlab> lanes_;        // S*S lanes, index src*S + dst
  std::vector<std::size_t> shard_enqueued_;   // per-dst-shard merge counts
  std::vector<ChannelTable> shard_channels_;  // per-shard send slices
  std::size_t sliced_shards_ = 0;  // shard count the slices were built for
  ChannelTable channels_;                     // fault path only
  std::vector<std::uint64_t> channel_posts_;  // fault path only
  std::size_t current_round_ = 0;             // fault path only
  NodeId current_node_ = kNoNode;  // node whose callback is executing
};

}  // namespace fdlsp
