// Synchronous message-passing engine (the paper's synchronous LOCAL model).
//
// Execution proceeds in lock-step rounds. In round r every node reads the
// messages its neighbors sent in round r-1, computes, and sends messages to
// neighbors. Nodes only ever address direct neighbors — multi-hop knowledge
// must be relayed, which is exactly what makes round counts meaningful.
//
// Phase barriers: distributed algorithms built from subroutines with
// data-dependent length (e.g. Luby's MIS inside DistMIS) need to agree
// globally that a subroutine has converged. Real deployments do this with a
// convergecast or a known round bound; the engine models it as a *barrier*:
// when every node votes ready, the engine advances the global phase counter
// without consuming a communication round. DESIGN.md discusses this
// substitution; round counts reported by the engine are the communication
// rounds actually consumed.
//
// Parallel rounds (DESIGN.md §11): node callbacks are protocol-isolated —
// a program only touches its own state and the read-only graph (enforced by
// fdlsp-lint and the happens-before checker) — so with a ThreadPool
// attached the engine shards the on_round/on_phase loops across workers.
// Sends are buffered per shard and merged into the next-round inboxes in
// canonical (sender id, send order) order, so the run is byte-identical to
// the serial engine for any thread count. Trace and fault seams force the
// serial path: they are observation/adversary channels, not hot paths, and
// their event ordering contracts stay exactly as documented.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "sim/channel_table.h"
#include "sim/fault.h"
#include "sim/message.h"
#include "sim/trace.h"

namespace fdlsp {

class AllocAudit;
class SyncEngine;
class ThreadPool;

/// Capture target for a reframed context's sends (see SyncContext::reframed).
using SyncSendSink = std::function<void(NodeId to, Message message)>;

/// One send buffered by a parallel-round shard, merged in canonical order
/// after the shard barrier (engine internal).
struct SyncBufferedSend {
  NodeId to;
  Message message;
};

/// Per-shard slab of buffered sends (engine internal). Slots are recycled —
/// reset() rewinds the live count without destroying elements — so message
/// payload capacities survive across rounds and the steady state buffers
/// without allocating, mirroring the engine's inbox slabs.
class SyncSendSlab {
 public:
  /// Appends by move; the displaced slot payload migrates into the source
  /// (SmallPayload's swapping move-assignment), never freed here.
  void add(NodeId to, Message&& message) {
    if (count_ < sends_.size()) {
      SyncBufferedSend& slot = sends_[count_];
      slot.to = to;
      slot.message = std::move(message);
    } else {
      sends_.push_back(SyncBufferedSend{to, std::move(message)});
    }
    ++count_;
  }

  /// Appends by copy-assign — the slot's payload capacity is reused, so a
  /// warmed slab buffers broadcast copies with zero allocator traffic. The
  /// stored copy's `from` field is stamped with `from` (the source message
  /// is shared by all receivers and never mutated).
  void add_copy(NodeId to, const Message& message, NodeId from) {
    if (count_ < sends_.size()) {
      SyncBufferedSend& slot = sends_[count_];
      // Dead slots past the live count are unordered; when this slot's
      // payload capacity is too small, borrow a big-enough one from the
      // dead region so the slab's total spilled capacity is recycled
      // instead of every slot index growing independently.
      if (message.data.size() > slot.message.data.capacity()) {
        for (std::size_t j = count_ + 1; j < sends_.size(); ++j) {
          if (sends_[j].message.data.capacity() >= message.data.size()) {
            slot.message.data.swap(sends_[j].message.data);
            break;
          }
        }
      }
      slot.to = to;
      slot.message = message;
    } else {
      sends_.push_back(SyncBufferedSend{to, message});
    }
    sends_[count_].message.from = from;
    ++count_;
  }

  /// The live entries, in send order.
  std::span<SyncBufferedSend> entries() noexcept {
    return {sends_.data(), count_};
  }

  /// Rewinds the live count; elements (and their capacities) stay alive.
  void reset() noexcept { count_ = 0; }

 private:
  std::vector<SyncBufferedSend> sends_;
  std::size_t count_ = 0;
};

/// Per-round context handed to a node program; valid only during on_round.
class SyncContext {
 public:
  /// This node's id.
  NodeId self() const noexcept { return self_; }

  /// Current round number (0-based).
  std::size_t round() const noexcept { return round_; }

  /// Current phase counter (incremented by barriers).
  std::size_t phase() const noexcept { return phase_; }

  /// Direct neighbors of this node (local topology knowledge).
  std::span<const NeighborEntry> neighbors() const noexcept {
    return neighbors_;
  }

  /// Sends a message to a direct neighbor, delivered next round.
  void send(NodeId to, Message message);

  /// Broadcasts a message the caller is done with: d-1 payload copies plus
  /// one move for the final neighbor.
  void broadcast(Message&& message);

  /// Broadcasts a message the caller keeps (e.g. a reusable scratch): the
  /// engine copy-assigns into its recycled inbox slots, so a warmed run
  /// broadcasts with zero allocator traffic even for spilled payloads —
  /// the zero-alloc seam DistMIS's flood relays ride (DESIGN.md §11). The
  /// message's `from` field is left untouched; the delivered copies carry
  /// this node's id regardless.
  void broadcast(const Message& message);

  /// A copy of this context for a protocol layered *inside* another program
  /// (sim/reliable.h): round() reports the wrapped protocol's own round
  /// counter and send()/broadcast() feed `sink` instead of the engine, so
  /// the outer program can frame and schedule the traffic itself. `sink`
  /// must outlive the copy.
  SyncContext reframed(std::size_t round, const SyncSendSink* sink) const {
    SyncContext copy = *this;
    copy.round_ = round;
    copy.sink_ = sink;
    return copy;
  }

 private:
  friend class SyncEngine;
  SyncContext(SyncEngine& engine, NodeId self,
              std::span<const NeighborEntry> neighbors, std::size_t round,
              std::size_t phase)
      : engine_(&engine),
        self_(self),
        neighbors_(neighbors),
        round_(round),
        phase_(phase) {}

  // send() for targets already known to be neighbors — broadcast iterates
  // neighbors_, which the engine built from the graph, so the per-send
  // neighbor-ness validation (a binary search) would re-prove an invariant
  // that holds by construction. Direct send() keeps the check.
  void send_trusted(NodeId to, Message message);

  // Copying twin of send_trusted for broadcast(const Message&): the payload
  // is copy-assigned into a recycled slot instead of materializing a
  // temporary Message per receiver.
  void send_trusted_copy(NodeId to, const Message& message);

  SyncEngine* engine_;
  NodeId self_;
  std::span<const NeighborEntry> neighbors_;
  std::size_t round_;
  std::size_t phase_;
  const SyncSendSink* sink_ = nullptr;  // non-null: capture instead of send
  // Non-null on parallel rounds: buffer sends for the post-barrier merge
  // instead of touching shared engine state from a worker thread.
  SyncSendSlab* out_ = nullptr;
};

/// A node program for the synchronous engine.
class SyncProgram {
 public:
  virtual ~SyncProgram() = default;

  /// Executes one round: consume this round's inbox, send next round's
  /// messages. Called once per round for every node, in unspecified order
  /// (sends are buffered, so order cannot be observed).
  virtual void on_round(SyncContext& ctx, std::span<const Message> inbox) = 0;

  /// True when this node is ready for the current phase to end. The engine
  /// advances the phase (calling on_phase on everyone) once all nodes vote
  /// ready *and* no messages are in flight.
  virtual bool ready_for_phase_advance() const = 0;

  /// Notification that the global phase counter advanced.
  virtual void on_phase(std::size_t new_phase) = 0;

  /// True when this node has terminated. The run ends when all nodes have.
  virtual bool finished() const = 0;
};

/// Metrics of a synchronous run.
struct SyncMetrics {
  std::size_t rounds = 0;    ///< communication rounds consumed
  std::size_t messages = 0;  ///< total point-to-point messages delivered
  std::size_t phases = 0;    ///< barrier advances performed
  bool completed = false;    ///< all nodes finished within the round cap
  FaultStats faults;         ///< injected faults (all zero without a plan)
};

/// Drives a set of SyncPrograms over a communication graph.
class SyncEngine {
 public:
  /// The graph must outlive the engine. One program per node, same order.
  SyncEngine(const Graph& graph,
             std::vector<std::unique_ptr<SyncProgram>> programs);

  /// Runs until every program reports finished() or the round cap is hit.
  SyncMetrics run(std::size_t max_rounds = 1'000'000);

  /// Attaches an event observer (nullptr detaches). With no trace the
  /// instrumentation points reduce to a null check; see sim/trace.h.
  void set_trace(SimTrace* trace) noexcept { trace_ = trace; }

  /// Installs a fault plan (nullptr detaches) — the same seam as set_trace:
  /// with no plan every injection point is a single null check and the run
  /// is byte-identical to an engine built before fault injection existed.
  /// The plan is consulted at send time (drop/duplicate/corrupt/link-down)
  /// and each round for node crashes: a crashed node's callbacks stop, its
  /// queued inbox is discarded, and it counts as terminated. Not owned; must
  /// outlive the run.
  void set_fault_plan(FaultPlan* plan) noexcept { faults_ = plan; }

  /// Shards on_round/on_phase across `pool` (nullptr detaches → serial).
  /// The result is byte-identical to the serial engine for any thread
  /// count: sends are buffered per contiguous node shard and merged in
  /// (sender id, send order) — exactly the serial enqueue order. An
  /// attached trace or fault plan forces serial execution so their event
  /// ordering contracts are untouched. Not owned; must outlive the run.
  void set_thread_pool(ThreadPool* pool) noexcept { pool_ = pool; }

  /// Attaches an allocation auditor (nullptr detaches): each communication
  /// round is bracketed with begin_round/end_round so per-round allocator
  /// traffic lands in the auditor's profile (support/alloc_audit.h). Unlike
  /// trace/fault seams the auditor only samples process-global counters, so
  /// it does NOT force the serial path — pooled rounds are audited too.
  /// Not owned; must outlive the run.
  void set_alloc_audit(AllocAudit* audit) noexcept { alloc_audit_ = audit; }

  /// Program of node v (for extracting results after the run). Calling this
  /// from inside a program callback for a node other than the one executing
  /// is a cross-node state read and is reported to the attached trace.
  SyncProgram& program(NodeId v) {
    note_program_access(v);
    return *programs_[v];
  }
  const SyncProgram& program(NodeId v) const {
    note_program_access(v);
    return *programs_[v];
  }

 private:
  friend class SyncContext;
  void deliver(NodeId from, NodeId to, Message&& message);
  void deliver_trusted(NodeId from, NodeId to, Message&& message);
  void deliver_trusted_copy(NodeId from, NodeId to, const Message& message);
  void deliver_faulted(ArcId channel, NodeId from, NodeId to, Message message);
  void enqueue(NodeId from, NodeId to, Message&& message);
  void enqueue_copy(NodeId from, NodeId to, const Message& message);
  Message& next_slot(NodeId to, std::size_t words);

  void note_program_access(NodeId v) const {
    if (trace_ != nullptr && current_node_ != kNoNode && current_node_ != v)
      trace_->on_state_read(current_node_, v);
  }

  const Graph& graph_;
  std::vector<std::unique_ptr<SyncProgram>> programs_;
  // Inbox slabs: per-node message vectors with a separately tracked live
  // count. Between rounds only the counts of the boxes named in the dirty
  // lists are rewound — the Message elements beyond the count stay alive,
  // so both the vector capacity and any spilled payload capacity survive
  // and steady-state rounds allocate nothing. Messages are copy-assigned
  // (broadcast const&) or swap-moved into the recycled slots; the slab
  // never destroys an element until the engine itself dies.
  std::vector<std::vector<Message>> inbox_;       // delivered this round
  std::vector<std::vector<Message>> next_inbox_;  // sent this round
  std::vector<std::size_t> inbox_count_;  // live messages per inbox_ slab
  std::vector<std::size_t> next_count_;   // live messages per next_ slab
  std::vector<NodeId> dirty_inbox_;  // boxes of inbox_ holding messages
  std::vector<NodeId> dirty_next_;   // boxes of next_inbox_ holding messages
  std::size_t pending_messages_ = 0;
  std::size_t total_messages_ = 0;
  SimTrace* trace_ = nullptr;
  FaultPlan* faults_ = nullptr;
  ThreadPool* pool_ = nullptr;  // non-null: shard rounds across workers
  AllocAudit* alloc_audit_ = nullptr;  // non-null: bracket rounds
  std::vector<SyncSendSlab> shard_sends_;  // per shard
  ChannelTable channels_;                     // fault path only
  std::vector<std::uint64_t> channel_posts_;  // fault path only
  std::size_t current_round_ = 0;             // fault path only
  NodeId current_node_ = kNoNode;  // node whose callback is executing
};

}  // namespace fdlsp
