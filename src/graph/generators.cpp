#include "graph/generators.h"

#include <algorithm>
#include <cstdint>
#include <set>

#include "support/check.h"

namespace fdlsp {

Graph udg_from_positions(const std::vector<Point>& positions, double radius) {
  FDLSP_REQUIRE(radius > 0.0, "radius must be positive");
  const std::size_t n = positions.size();
  if (n == 0) return GraphBuilder(0).build();

  // Bucket points into a grid of cell size = radius; only neighboring cells
  // can contain linked points.
  double min_x = positions[0].x, min_y = positions[0].y;
  double max_x = min_x, max_y = min_y;
  for (const Point& p : positions) {
    min_x = std::min(min_x, p.x);
    min_y = std::min(min_y, p.y);
    max_x = std::max(max_x, p.x);
    max_y = std::max(max_y, p.y);
  }
  const auto cells_x =
      static_cast<std::size_t>((max_x - min_x) / radius) + 1;
  const auto cells_y =
      static_cast<std::size_t>((max_y - min_y) / radius) + 1;
  const std::size_t num_cells = cells_x * cells_y;
  auto cell_of = [&](const Point& p) {
    auto cx = static_cast<std::size_t>((p.x - min_x) / radius);
    auto cy = static_cast<std::size_t>((p.y - min_y) / radius);
    if (cx >= cells_x) cx = cells_x - 1;
    if (cy >= cells_y) cy = cells_y - 1;
    return cy * cells_x + cx;
  };

  // Counting-sort the nodes into their cells (flat CSR layout — no
  // per-cell vectors). Within one cell, nodes stay in ascending id order.
  std::vector<std::size_t> cell_index(n);
  std::vector<std::size_t> cell_start(num_cells + 1, 0);
  for (NodeId v = 0; v < n; ++v) {
    cell_index[v] = cell_of(positions[v]);
    ++cell_start[cell_index[v] + 1];
  }
  for (std::size_t c = 0; c < num_cells; ++c)
    cell_start[c + 1] += cell_start[c];
  std::vector<NodeId> cell_nodes(n);
  {
    std::vector<std::size_t> cursor(cell_start.begin(), cell_start.end() - 1);
    for (NodeId v = 0; v < n; ++v) cell_nodes[cursor[cell_index[v]]++] = v;
  }

  const double radius_sq = radius * radius;
  const auto for_each_near = [&](NodeId v, auto&& fn) {
    const auto cx = static_cast<std::ptrdiff_t>(cell_index[v] % cells_x);
    const auto cy = static_cast<std::ptrdiff_t>(cell_index[v] / cells_x);
    for (std::ptrdiff_t dy = -1; dy <= 1; ++dy) {
      for (std::ptrdiff_t dx = -1; dx <= 1; ++dx) {
        const std::ptrdiff_t nx = cx + dx;
        const std::ptrdiff_t ny = cy + dy;
        if (nx < 0 || ny < 0 || nx >= static_cast<std::ptrdiff_t>(cells_x) ||
            ny >= static_cast<std::ptrdiff_t>(cells_y))
          continue;
        const std::size_t c = static_cast<std::size_t>(ny) * cells_x +
                              static_cast<std::size_t>(nx);
        for (std::size_t i = cell_start[c]; i < cell_start[c + 1]; ++i) {
          const NodeId w = cell_nodes[i];
          if (w == v) continue;
          if (distance_sq(positions[v], positions[w]) <= radius_sq) fn(w);
        }
      }
    }
  };

  // Two streaming passes build the symmetric CSR adjacency directly —
  // degree count, prefix sum, row fill — and hand it to the linear-pass
  // Graph constructor. Nothing here is quadratic in n, and nothing pays
  // GraphBuilder::add_edge's per-edge duplicate scan: building the n=10^6
  // plan is O(n + m) plus the per-row sorts. Rows are emitted sorted, so
  // edge ids come out in lexicographic (u, v) order — exactly the order a
  // brute-force all-pairs GraphBuilder loop produces (pinned byte-for-byte
  // by generators_test).
  std::vector<std::size_t> offsets(n + 1, 0);
  for (NodeId v = 0; v < n; ++v) {
    std::size_t degree = 0;
    for_each_near(v, [&](NodeId) { ++degree; });
    offsets[v + 1] = degree;
  }
  for (std::size_t v = 0; v < n; ++v) offsets[v + 1] += offsets[v];
  std::vector<NodeId> adjacency(offsets[n]);
  for (NodeId v = 0; v < n; ++v) {
    std::size_t pos = offsets[v];
    for_each_near(v, [&](NodeId w) { adjacency[pos++] = w; });
    std::sort(adjacency.begin() + static_cast<std::ptrdiff_t>(offsets[v]),
              adjacency.begin() + static_cast<std::ptrdiff_t>(pos));
  }
  return GraphBuilder::build_from_symmetric_csr(n, offsets, adjacency);
}

GeometricGraph generate_udg(std::size_t n, double side, double radius,
                            Rng& rng) {
  FDLSP_REQUIRE(side > 0.0, "side must be positive");
  std::vector<Point> positions(n);
  for (Point& p : positions) {
    p.x = rng.next_double() * side;
    p.y = rng.next_double() * side;
  }
  Graph graph = udg_from_positions(positions, radius);
  return GeometricGraph{std::move(graph), std::move(positions)};
}

GeometricGraph generate_quasi_udg(std::size_t n, double side, double radius,
                                  double alpha, double p, Rng& rng) {
  FDLSP_REQUIRE(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
  FDLSP_REQUIRE(p >= 0.0 && p <= 1.0, "p must be a probability");
  std::vector<Point> positions(n);
  for (Point& point : positions) {
    point.x = rng.next_double() * side;
    point.y = rng.next_double() * side;
  }
  // Candidate pairs come from the full-radius UDG; the gray zone
  // [alpha*radius, radius] keeps each link with probability p.
  const Graph candidates = udg_from_positions(positions, radius);
  const double certain_sq = alpha * radius * alpha * radius;
  GraphBuilder builder(n);
  for (const Edge& e : candidates.edges()) {
    const double d_sq = distance_sq(positions[e.u], positions[e.v]);
    if (d_sq <= certain_sq || rng.next_bool(p)) builder.add_edge(e.u, e.v);
  }
  return GeometricGraph{builder.build(), std::move(positions)};
}

Graph generate_gnm(std::size_t n, std::size_t m, Rng& rng) {
  const std::size_t max_edges = n * (n - 1) / 2;
  FDLSP_REQUIRE(m <= max_edges, "too many edges requested");
  GraphBuilder builder(n);
  std::set<std::uint64_t> chosen;
  while (chosen.size() < m) {
    auto u = static_cast<NodeId>(rng.next_index(n));
    auto v = static_cast<NodeId>(rng.next_index(n));
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    const std::uint64_t key = (static_cast<std::uint64_t>(u) << 32) | v;
    if (chosen.insert(key).second) builder.add_edge(u, v);
  }
  return builder.build();
}

Graph generate_random_tree(std::size_t n, Rng& rng) {
  GraphBuilder builder(n);
  for (NodeId v = 1; v < n; ++v)
    builder.add_edge(static_cast<NodeId>(rng.next_index(v)), v);
  return builder.build();
}

Graph generate_path(std::size_t n) {
  GraphBuilder builder(n);
  for (NodeId v = 0; v + 1 < n; ++v) builder.add_edge(v, v + 1);
  return builder.build();
}

Graph generate_cycle(std::size_t n) {
  FDLSP_REQUIRE(n >= 3, "a cycle needs at least 3 nodes");
  GraphBuilder builder(n);
  for (NodeId v = 0; v + 1 < n; ++v) builder.add_edge(v, v + 1);
  builder.add_edge(static_cast<NodeId>(n - 1), 0);
  return builder.build();
}

Graph generate_complete(std::size_t n) {
  GraphBuilder builder(n);
  for (NodeId u = 0; u < n; ++u)
    for (NodeId v = u + 1; v < n; ++v) builder.add_edge(u, v);
  return builder.build();
}

Graph generate_complete_bipartite(std::size_t a, std::size_t b) {
  GraphBuilder builder(a + b);
  for (NodeId u = 0; u < a; ++u)
    for (std::size_t v = 0; v < b; ++v)
      builder.add_edge(u, static_cast<NodeId>(a + v));
  return builder.build();
}

Graph generate_star(std::size_t n) {
  FDLSP_REQUIRE(n >= 1, "a star needs a center");
  GraphBuilder builder(n);
  for (NodeId v = 1; v < n; ++v) builder.add_edge(0, v);
  return builder.build();
}

Graph generate_grid(std::size_t rows, std::size_t cols) {
  GraphBuilder builder(rows * cols);
  auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<NodeId>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) builder.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) builder.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return builder.build();
}

}  // namespace fdlsp
