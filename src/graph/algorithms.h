// Basic graph algorithms: traversal, connectivity, k-hop neighborhoods,
// triangle/common-neighbor queries. These back both the distributed
// algorithms' local views and the Theorem-1 lower bound computation.
#pragma once

#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace fdlsp {

/// BFS distances from `source`; unreachable nodes get kUnreachable.
inline constexpr std::size_t kUnreachable = static_cast<std::size_t>(-1);
std::vector<std::size_t> bfs_distances(const Graph& graph, NodeId source);

/// True iff the graph is connected (vacuously true for n <= 1).
bool is_connected(const Graph& graph);

/// Component label per node, labels dense in [0, #components).
std::vector<std::size_t> connected_components(const Graph& graph);

/// Number of connected components.
std::size_t count_components(const Graph& graph);

/// Nodes of the largest connected component (by node count).
std::vector<NodeId> largest_component(const Graph& graph);

/// Induced subgraph on `nodes`; also returns the mapping old->new id
/// (kNoNode for nodes outside the set).
struct InducedSubgraph {
  Graph graph;
  std::vector<NodeId> to_sub;     // size = original n
  std::vector<NodeId> to_original;  // size = |nodes|
};
InducedSubgraph induced_subgraph(const Graph& graph,
                                 const std::vector<NodeId>& nodes);

/// All nodes within shortest-path distance <= radius of v, excluding v,
/// in ascending id order.
std::vector<NodeId> k_hop_neighborhood(const Graph& graph, NodeId v,
                                       std::size_t radius);

/// Common neighbors of u and v in ascending order (triangle support of the
/// edge {u, v}). O(deg u + deg v).
std::vector<NodeId> common_neighbors(const Graph& graph, NodeId u, NodeId v);

/// Total number of triangles in the graph.
std::size_t count_triangles(const Graph& graph);

/// Graph diameter of the (assumed connected) graph; kUnreachable if
/// disconnected. O(n * m) — intended for experiment reporting, not hot paths.
std::size_t diameter(const Graph& graph);

}  // namespace fdlsp
