// Undirected simple graph with CSR adjacency.
//
// This is the communication-network model of the paper: nodes are sensors,
// edges are bidirectional non-interfering links. The structure is immutable
// after construction (build via GraphBuilder); all algorithms treat it as a
// shared read-only input, which is what makes the parallel experiment harness
// trivially safe.
#pragma once

#include <span>
#include <vector>

#include "graph/types.h"
#include "support/check.h"

namespace fdlsp {

/// An undirected edge; endpoints are stored with u < v.
struct Edge {
  NodeId u;
  NodeId v;

  friend bool operator==(const Edge&, const Edge&) = default;
};

/// One adjacency entry: the neighbor and the id of the connecting edge.
struct NeighborEntry {
  NodeId to;
  EdgeId edge;
};

class GraphBuilder;

/// Immutable undirected simple graph.
class Graph {
 public:
  /// An empty graph with `n` isolated nodes.
  explicit Graph(std::size_t n = 0);

  std::size_t num_nodes() const noexcept { return offsets_.size() - 1; }
  std::size_t num_edges() const noexcept { return edges_.size(); }

  /// Degree of node v.
  std::size_t degree(NodeId v) const {
    FDLSP_ASSERT(v < num_nodes(), "node out of range");
    return offsets_[v + 1] - offsets_[v];
  }

  /// Adjacency list of v, sorted by neighbor id.
  std::span<const NeighborEntry> neighbors(NodeId v) const {
    FDLSP_ASSERT(v < num_nodes(), "node out of range");
    return {adjacency_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }

  /// True iff {u, v} is an edge. O(log degree).
  bool has_edge(NodeId u, NodeId v) const;

  /// Edge id of {u, v}, or kNoEdge. O(log degree).
  EdgeId find_edge(NodeId u, NodeId v) const;

  /// All edges, indexed by EdgeId.
  std::span<const Edge> edges() const noexcept { return edges_; }

  /// Endpoints of edge e.
  const Edge& edge(EdgeId e) const {
    FDLSP_ASSERT(e < edges_.size(), "edge out of range");
    return edges_[e];
  }

  /// Maximum node degree Δ (0 for an edgeless graph).
  std::size_t max_degree() const noexcept { return max_degree_; }

  /// Mean node degree 2m/n (0 for the empty graph).
  double average_degree() const noexcept {
    return num_nodes() == 0
               ? 0.0
               : 2.0 * static_cast<double>(num_edges()) /
                     static_cast<double>(num_nodes());
  }

 private:
  friend class GraphBuilder;

  std::vector<Edge> edges_;
  std::vector<std::size_t> offsets_;      // n + 1 entries
  std::vector<NeighborEntry> adjacency_;  // 2m entries, sorted per node
  std::size_t max_degree_ = 0;
};

/// Accumulates edges, then freezes them into an immutable Graph.
///
/// Duplicate edges and self-loops are rejected eagerly so corrupted inputs
/// fail at the point of insertion.
class GraphBuilder {
 public:
  explicit GraphBuilder(std::size_t n);

  std::size_t num_nodes() const noexcept { return n_; }

  /// Adds edge {u, v}; u != v required. Returns the assigned edge id.
  /// Duplicates are rejected with contract_error.
  EdgeId add_edge(NodeId u, NodeId v);

  /// True if {u, v} has already been added. O(degree).
  bool has_edge(NodeId u, NodeId v) const;

  /// Freezes into a Graph. The builder is left empty.
  Graph build();

  /// Builds a Graph in one linear pass from a symmetric CSR adjacency the
  /// caller guarantees well-formed: offsets has n+1 entries, every row is
  /// sorted and duplicate-free, v appears in u's row iff u appears in v's,
  /// and no self-loops. Skips the builder's duplicate scans and the
  /// per-node adjacency sorts; this is how a ConflictIndex becomes the
  /// Lemma-6 conflict graph without re-deriving structure it already holds.
  static Graph build_from_symmetric_csr(std::size_t n,
                                        std::span<const std::size_t> offsets,
                                        std::span<const NodeId> adjacency);

 private:
  std::size_t n_;
  std::vector<Edge> edges_;
  std::vector<std::vector<NodeId>> pending_;  // adjacency during building
};

}  // namespace fdlsp
