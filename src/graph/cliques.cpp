#include "graph/cliques.h"

#include <algorithm>

#include "graph/algorithms.h"
#include "support/check.h"

namespace fdlsp {

namespace {

// Pivoted Bron–Kerbosch over adjacency bitsets (node count is small here, so
// a vector<bool> matrix keeps the code simple and cache-friendly enough).
class BronKerbosch {
 public:
  explicit BronKerbosch(const Graph& graph)
      : n_(graph.num_nodes()), adjacent_(n_ * n_, false) {
    for (const Edge& e : graph.edges()) {
      adjacent_[e.u * n_ + e.v] = true;
      adjacent_[e.v * n_ + e.u] = true;
    }
  }

  std::size_t best_size() const noexcept { return best_; }
  std::vector<std::vector<NodeId>>& cliques() noexcept { return cliques_; }

  void run(bool collect) {
    collect_ = collect;
    std::vector<NodeId> r;
    std::vector<NodeId> p(n_);
    for (NodeId v = 0; v < n_; ++v) p[v] = v;
    expand(r, p, {});
  }

 private:
  bool adj(NodeId a, NodeId b) const { return adjacent_[a * n_ + b]; }

  void expand(std::vector<NodeId>& r, std::vector<NodeId> p,
              std::vector<NodeId> x) {
    if (p.empty() && x.empty()) {
      best_ = std::max(best_, r.size());
      if (collect_) cliques_.push_back(r);
      return;
    }
    if (!collect_ && r.size() + p.size() <= best_) return;  // bound
    // Pivot: vertex of P ∪ X with most neighbors in P.
    NodeId pivot = kNoNode;
    std::size_t pivot_hits = 0;
    auto consider = [&](NodeId u) {
      std::size_t hits = 0;
      for (NodeId w : p)
        if (adj(u, w)) ++hits;
      if (pivot == kNoNode || hits > pivot_hits) {
        pivot = u;
        pivot_hits = hits;
      }
    };
    for (NodeId u : p) consider(u);
    for (NodeId u : x) consider(u);

    std::vector<NodeId> candidates;
    for (NodeId v : p)
      if (pivot == kNoNode || !adj(pivot, v)) candidates.push_back(v);

    for (NodeId v : candidates) {
      std::vector<NodeId> p_next;
      std::vector<NodeId> x_next;
      for (NodeId w : p)
        if (adj(v, w)) p_next.push_back(w);
      for (NodeId w : x)
        if (adj(v, w)) x_next.push_back(w);
      r.push_back(v);
      expand(r, std::move(p_next), std::move(x_next));
      r.pop_back();
      p.erase(std::find(p.begin(), p.end(), v));
      x.push_back(v);
    }
  }

  std::size_t n_;
  std::vector<bool> adjacent_;
  std::size_t best_ = 0;
  bool collect_ = false;
  std::vector<std::vector<NodeId>> cliques_;
};

}  // namespace

std::size_t max_clique_size(const Graph& graph) {
  if (graph.num_nodes() == 0) return 0;
  BronKerbosch search(graph);
  search.run(/*collect=*/false);
  return search.best_size();
}

std::size_t max_clique_size_within(const Graph& graph,
                                   const std::vector<NodeId>& nodes) {
  if (nodes.empty()) return 0;
  return max_clique_size(induced_subgraph(graph, nodes).graph);
}

std::vector<std::vector<NodeId>> maximal_cliques(const Graph& graph) {
  BronKerbosch search(graph);
  search.run(/*collect=*/true);
  auto cliques = std::move(search.cliques());
  for (auto& clique : cliques) std::sort(clique.begin(), clique.end());
  return cliques;
}

}  // namespace fdlsp
