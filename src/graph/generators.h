// Topology generators for the Section 8 workloads and for tests.
//
// The paper's simulation uses (a) random unit disk graphs on a square plan
// with transmission radius 0.5 and side lengths 15/17/20, and (b) general
// random graphs G(n, m) with a swept edge count. The deterministic families
// (trees, cycles, complete, complete bipartite) back Table 1 and the
// closed-form results quoted in Section 3.
#pragma once

#include <vector>

#include "graph/geometry.h"
#include "graph/graph.h"
#include "support/rng.h"

namespace fdlsp {

/// A graph together with node positions (only geometric generators fill it).
struct GeometricGraph {
  Graph graph;
  std::vector<Point> positions;
};

/// Random unit disk graph: n nodes placed uniformly in a side×side square;
/// nodes at Euclidean distance <= radius are linked. Uses a uniform grid
/// bucketing so generation is O(n + m) in expectation.
GeometricGraph generate_udg(std::size_t n, double side, double radius,
                            Rng& rng);

/// Builds the UDG induced by explicit positions (used by tests and by the
/// dynamic-network example when nodes move).
Graph udg_from_positions(const std::vector<Point>& positions, double radius);

/// Random quasi unit disk graph (Kuhn et al.), the other growth-bounded
/// family the paper cites: nodes closer than alpha*radius are always
/// linked, nodes farther than radius never are, and pairs in between are
/// linked independently with probability p. alpha in (0, 1].
GeometricGraph generate_quasi_udg(std::size_t n, double side, double radius,
                                  double alpha, double p, Rng& rng);

/// Uniform random simple graph with exactly m edges (Erdős–Rényi G(n, m)).
/// Requires m <= n(n-1)/2.
Graph generate_gnm(std::size_t n, std::size_t m, Rng& rng);

/// Random labelled tree on n nodes: node i >= 1 attaches to a uniform random
/// predecessor. Every node degree distribution reachable this way is a tree.
Graph generate_random_tree(std::size_t n, Rng& rng);

/// Simple path 0-1-...-(n-1).
Graph generate_path(std::size_t n);

/// Cycle 0-1-...-(n-1)-0. Requires n >= 3.
Graph generate_cycle(std::size_t n);

/// Complete graph K_n.
Graph generate_complete(std::size_t n);

/// Complete bipartite graph K_{a,b}: parts {0..a-1} and {a..a+b-1}.
Graph generate_complete_bipartite(std::size_t a, std::size_t b);

/// Star K_{1,n-1} centered at node 0.
Graph generate_star(std::size_t n);

/// rows×cols grid graph (4-neighborhood).
Graph generate_grid(std::size_t rows, std::size_t cols);

}  // namespace fdlsp
