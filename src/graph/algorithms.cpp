#include "graph/algorithms.h"

#include <algorithm>
#include <deque>

#include "support/check.h"

namespace fdlsp {

std::vector<std::size_t> bfs_distances(const Graph& graph, NodeId source) {
  FDLSP_REQUIRE(source < graph.num_nodes(), "source out of range");
  std::vector<std::size_t> dist(graph.num_nodes(), kUnreachable);
  std::deque<NodeId> frontier{source};
  dist[source] = 0;
  while (!frontier.empty()) {
    const NodeId v = frontier.front();
    frontier.pop_front();
    for (const NeighborEntry& entry : graph.neighbors(v)) {
      if (dist[entry.to] == kUnreachable) {
        dist[entry.to] = dist[v] + 1;
        frontier.push_back(entry.to);
      }
    }
  }
  return dist;
}

bool is_connected(const Graph& graph) {
  if (graph.num_nodes() <= 1) return true;
  const auto dist = bfs_distances(graph, 0);
  return std::none_of(dist.begin(), dist.end(),
                      [](std::size_t d) { return d == kUnreachable; });
}

std::vector<std::size_t> connected_components(const Graph& graph) {
  std::vector<std::size_t> label(graph.num_nodes(), kUnreachable);
  std::size_t next = 0;
  std::deque<NodeId> frontier;
  for (NodeId start = 0; start < graph.num_nodes(); ++start) {
    if (label[start] != kUnreachable) continue;
    label[start] = next;
    frontier.push_back(start);
    while (!frontier.empty()) {
      const NodeId v = frontier.front();
      frontier.pop_front();
      for (const NeighborEntry& entry : graph.neighbors(v)) {
        if (label[entry.to] == kUnreachable) {
          label[entry.to] = next;
          frontier.push_back(entry.to);
        }
      }
    }
    ++next;
  }
  return label;
}

std::size_t count_components(const Graph& graph) {
  const auto label = connected_components(graph);
  return label.empty() ? 0 : *std::max_element(label.begin(), label.end()) + 1;
}

std::vector<NodeId> largest_component(const Graph& graph) {
  const auto label = connected_components(graph);
  const std::size_t components =
      label.empty() ? 0 : *std::max_element(label.begin(), label.end()) + 1;
  std::vector<std::size_t> sizes(components, 0);
  for (std::size_t l : label) ++sizes[l];
  const std::size_t best = static_cast<std::size_t>(
      std::max_element(sizes.begin(), sizes.end()) - sizes.begin());
  std::vector<NodeId> nodes;
  for (NodeId v = 0; v < graph.num_nodes(); ++v)
    if (label[v] == best) nodes.push_back(v);
  return nodes;
}

InducedSubgraph induced_subgraph(const Graph& graph,
                                 const std::vector<NodeId>& nodes) {
  InducedSubgraph result;
  result.to_sub.assign(graph.num_nodes(), kNoNode);
  result.to_original = nodes;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    FDLSP_REQUIRE(nodes[i] < graph.num_nodes(), "node out of range");
    FDLSP_REQUIRE(result.to_sub[nodes[i]] == kNoNode, "duplicate node");
    result.to_sub[nodes[i]] = static_cast<NodeId>(i);
  }
  GraphBuilder builder(nodes.size());
  for (const Edge& e : graph.edges()) {
    const NodeId u = result.to_sub[e.u];
    const NodeId v = result.to_sub[e.v];
    if (u != kNoNode && v != kNoNode) builder.add_edge(u, v);
  }
  result.graph = builder.build();
  return result;
}

std::vector<NodeId> k_hop_neighborhood(const Graph& graph, NodeId v,
                                       std::size_t radius) {
  FDLSP_REQUIRE(v < graph.num_nodes(), "node out of range");
  std::vector<std::size_t> dist(graph.num_nodes(), kUnreachable);
  std::deque<NodeId> frontier{v};
  dist[v] = 0;
  std::vector<NodeId> result;
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop_front();
    if (dist[u] == radius) continue;
    for (const NeighborEntry& entry : graph.neighbors(u)) {
      if (dist[entry.to] == kUnreachable) {
        dist[entry.to] = dist[u] + 1;
        result.push_back(entry.to);
        frontier.push_back(entry.to);
      }
    }
  }
  std::sort(result.begin(), result.end());
  return result;
}

std::vector<NodeId> common_neighbors(const Graph& graph, NodeId u, NodeId v) {
  const auto a = graph.neighbors(u);
  const auto b = graph.neighbors(v);
  std::vector<NodeId> result;
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (ia->to < ib->to) {
      ++ia;
    } else if (ib->to < ia->to) {
      ++ib;
    } else {
      result.push_back(ia->to);
      ++ia;
      ++ib;
    }
  }
  return result;
}

std::size_t count_triangles(const Graph& graph) {
  // Each triangle {a < b < c} is counted once at its lexicographically
  // smallest edge {a, b}.
  std::size_t triangles = 0;
  for (const Edge& e : graph.edges())
    for (NodeId w : common_neighbors(graph, e.u, e.v))
      if (w > e.v) ++triangles;
  return triangles;
}

std::size_t diameter(const Graph& graph) {
  std::size_t best = 0;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    const auto dist = bfs_distances(graph, v);
    for (std::size_t d : dist) {
      if (d == kUnreachable) return kUnreachable;
      best = std::max(best, d);
    }
  }
  return best;
}

}  // namespace fdlsp
