// Clique machinery for the Theorem-1 lower bound.
//
// Joint cliques (Definition 6) live inside a single 1-hop neighborhood, so
// even though maximum clique is NP-hard, the instances here are tiny; a
// pivoted Bron–Kerbosch search is exact and fast.
#pragma once

#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace fdlsp {

/// Size of the maximum clique of `graph`. Exact (pivoted Bron–Kerbosch with
/// greedy-coloring pruning); intended for small graphs such as induced
/// neighborhoods.
std::size_t max_clique_size(const Graph& graph);

/// Size of the maximum clique of the subgraph induced on `nodes`.
std::size_t max_clique_size_within(const Graph& graph,
                                   const std::vector<NodeId>& nodes);

/// All maximal cliques of `graph` (each as a sorted node list). Exponential
/// in the worst case; use only on small graphs.
std::vector<std::vector<NodeId>> maximal_cliques(const Graph& graph);

}  // namespace fdlsp
