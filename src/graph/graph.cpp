#include "graph/graph.h"

#include <algorithm>
#include <utility>

namespace fdlsp {

Graph::Graph(std::size_t n) : offsets_(n + 1, 0) {}

bool Graph::has_edge(NodeId u, NodeId v) const {
  return find_edge(u, v) != kNoEdge;
}

EdgeId Graph::find_edge(NodeId u, NodeId v) const {
  FDLSP_ASSERT(u < num_nodes() && v < num_nodes(), "node out of range");
  // Search the smaller adjacency list.
  if (degree(u) > degree(v)) std::swap(u, v);
  const auto adj = neighbors(u);
  const auto it = std::lower_bound(
      adj.begin(), adj.end(), v,
      [](const NeighborEntry& entry, NodeId target) { return entry.to < target; });
  if (it != adj.end() && it->to == v) return it->edge;
  return kNoEdge;
}

GraphBuilder::GraphBuilder(std::size_t n) : n_(n), pending_(n) {}

EdgeId GraphBuilder::add_edge(NodeId u, NodeId v) {
  FDLSP_REQUIRE(u < n_ && v < n_, "endpoint out of range");
  FDLSP_REQUIRE(u != v, "self-loops are not allowed");
  FDLSP_REQUIRE(!has_edge(u, v), "duplicate edge");
  if (u > v) std::swap(u, v);
  const auto id = static_cast<EdgeId>(edges_.size());
  edges_.push_back(Edge{u, v});
  pending_[u].push_back(v);
  pending_[v].push_back(u);
  return id;
}

bool GraphBuilder::has_edge(NodeId u, NodeId v) const {
  FDLSP_REQUIRE(u < n_ && v < n_, "endpoint out of range");
  const auto& smaller =
      pending_[u].size() <= pending_[v].size() ? pending_[u] : pending_[v];
  const NodeId target = pending_[u].size() <= pending_[v].size() ? v : u;
  return std::find(smaller.begin(), smaller.end(), target) != smaller.end();
}

Graph GraphBuilder::build() {
  Graph graph(n_);
  graph.edges_ = std::move(edges_);
  edges_.clear();

  graph.offsets_.assign(n_ + 1, 0);
  for (const Edge& e : graph.edges_) {
    ++graph.offsets_[e.u + 1];
    ++graph.offsets_[e.v + 1];
  }
  for (std::size_t v = 0; v < n_; ++v)
    graph.offsets_[v + 1] += graph.offsets_[v];

  graph.adjacency_.resize(2 * graph.edges_.size());
  std::vector<std::size_t> cursor(graph.offsets_.begin(),
                                  graph.offsets_.end() - 1);
  for (EdgeId e = 0; e < graph.edges_.size(); ++e) {
    const Edge& edge = graph.edges_[e];
    graph.adjacency_[cursor[edge.u]++] = NeighborEntry{edge.v, e};
    graph.adjacency_[cursor[edge.v]++] = NeighborEntry{edge.u, e};
  }
  for (std::size_t v = 0; v < n_; ++v) {
    auto begin = graph.adjacency_.begin() +
                 static_cast<std::ptrdiff_t>(graph.offsets_[v]);
    auto end = graph.adjacency_.begin() +
               static_cast<std::ptrdiff_t>(graph.offsets_[v + 1]);
    std::sort(begin, end, [](const NeighborEntry& a, const NeighborEntry& b) {
      return a.to < b.to;
    });
    graph.max_degree_ = std::max(
        graph.max_degree_, static_cast<std::size_t>(end - begin));
  }

  for (auto& adj : pending_) adj.clear();
  return graph;
}

}  // namespace fdlsp
