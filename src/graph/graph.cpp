#include "graph/graph.h"

#include <algorithm>
#include <utility>

namespace fdlsp {

Graph::Graph(std::size_t n) : offsets_(n + 1, 0) {}

bool Graph::has_edge(NodeId u, NodeId v) const {
  return find_edge(u, v) != kNoEdge;
}

EdgeId Graph::find_edge(NodeId u, NodeId v) const {
  FDLSP_ASSERT(u < num_nodes() && v < num_nodes(), "node out of range");
  // Search the smaller adjacency list.
  if (degree(u) > degree(v)) std::swap(u, v);
  const auto adj = neighbors(u);
  const auto it = std::lower_bound(
      adj.begin(), adj.end(), v,
      [](const NeighborEntry& entry, NodeId target) { return entry.to < target; });
  if (it != adj.end() && it->to == v) return it->edge;
  return kNoEdge;
}

GraphBuilder::GraphBuilder(std::size_t n) : n_(n), pending_(n) {}

EdgeId GraphBuilder::add_edge(NodeId u, NodeId v) {
  FDLSP_REQUIRE(u < n_ && v < n_, "endpoint out of range");
  FDLSP_REQUIRE(u != v, "self-loops are not allowed");
  FDLSP_REQUIRE(!has_edge(u, v), "duplicate edge");
  if (u > v) std::swap(u, v);
  const auto id = static_cast<EdgeId>(edges_.size());
  edges_.push_back(Edge{u, v});
  pending_[u].push_back(v);
  pending_[v].push_back(u);
  return id;
}

bool GraphBuilder::has_edge(NodeId u, NodeId v) const {
  FDLSP_REQUIRE(u < n_ && v < n_, "endpoint out of range");
  const auto& smaller =
      pending_[u].size() <= pending_[v].size() ? pending_[u] : pending_[v];
  const NodeId target = pending_[u].size() <= pending_[v].size() ? v : u;
  return std::find(smaller.begin(), smaller.end(), target) != smaller.end();
}

Graph GraphBuilder::build() {
  Graph graph(n_);
  graph.edges_ = std::move(edges_);
  edges_.clear();

  graph.offsets_.assign(n_ + 1, 0);
  for (const Edge& e : graph.edges_) {
    ++graph.offsets_[e.u + 1];
    ++graph.offsets_[e.v + 1];
  }
  for (std::size_t v = 0; v < n_; ++v)
    graph.offsets_[v + 1] += graph.offsets_[v];

  graph.adjacency_.resize(2 * graph.edges_.size());
  std::vector<std::size_t> cursor(graph.offsets_.begin(),
                                  graph.offsets_.end() - 1);
  for (EdgeId e = 0; e < graph.edges_.size(); ++e) {
    const Edge& edge = graph.edges_[e];
    graph.adjacency_[cursor[edge.u]++] = NeighborEntry{edge.v, e};
    graph.adjacency_[cursor[edge.v]++] = NeighborEntry{edge.u, e};
  }
  for (std::size_t v = 0; v < n_; ++v) {
    auto begin = graph.adjacency_.begin() +
                 static_cast<std::ptrdiff_t>(graph.offsets_[v]);
    auto end = graph.adjacency_.begin() +
               static_cast<std::ptrdiff_t>(graph.offsets_[v + 1]);
    std::sort(begin, end, [](const NeighborEntry& a, const NeighborEntry& b) {
      return a.to < b.to;
    });
    graph.max_degree_ = std::max(
        graph.max_degree_, static_cast<std::size_t>(end - begin));
  }

  for (auto& adj : pending_) adj.clear();
  return graph;
}

Graph GraphBuilder::build_from_symmetric_csr(
    std::size_t n, std::span<const std::size_t> offsets,
    std::span<const NodeId> adjacency) {
  FDLSP_REQUIRE(offsets.size() == n + 1 && offsets[0] == 0 &&
                    offsets[n] == adjacency.size(),
                "malformed CSR offsets");
  FDLSP_REQUIRE(adjacency.size() % 2 == 0,
                "symmetric CSR needs an even entry count");
  Graph graph(n);
  graph.offsets_.assign(offsets.begin(), offsets.end());
  graph.edges_.reserve(adjacency.size() / 2);
  graph.adjacency_.resize(adjacency.size());

  // Emit each edge from its lower endpoint and cursor-fill both endpoints'
  // slots. Rows are visited in ascending node order and are themselves
  // sorted, so every adjacency region fills in sorted order (lower
  // neighbors first, then higher) — no per-node sort needed.
  std::vector<std::size_t> cursor(offsets.begin(), offsets.end() - 1);
  for (NodeId u = 0; u < n; ++u) {
    for (std::size_t i = offsets[u]; i < offsets[u + 1]; ++i) {
      const NodeId v = adjacency[i];
      FDLSP_ASSERT(v < n && v != u, "invalid neighbor in CSR row");
      FDLSP_ASSERT(i == offsets[u] || adjacency[i - 1] < v,
                   "CSR row not sorted/deduplicated");
      if (v < u) continue;  // edge already emitted from the lower endpoint
      const auto e = static_cast<EdgeId>(graph.edges_.size());
      graph.edges_.push_back(Edge{u, v});
      graph.adjacency_[cursor[u]++] = NeighborEntry{v, e};
      graph.adjacency_[cursor[v]++] = NeighborEntry{u, e};
    }
    graph.max_degree_ =
        std::max(graph.max_degree_, offsets[u + 1] - offsets[u]);
  }
  for (NodeId v = 0; v < n; ++v)
    FDLSP_ASSERT(cursor[v] == offsets[v + 1], "CSR adjacency not symmetric");
  return graph;
}

}  // namespace fdlsp
