// Plane geometry helpers for the unit-disk-graph generator.
#pragma once

#include <cmath>
#include <vector>

namespace fdlsp {

/// A point in the Euclidean plane.
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point&, const Point&) = default;
};

/// Squared Euclidean distance (avoids the sqrt on the hot comparison path).
inline double distance_sq(const Point& a, const Point& b) noexcept {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

/// Euclidean distance.
inline double distance(const Point& a, const Point& b) noexcept {
  return std::sqrt(distance_sq(a, b));
}

}  // namespace fdlsp
