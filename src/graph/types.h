// Fundamental identifier types shared across the library.
#pragma once

#include <cstdint>

namespace fdlsp {

/// Index of a node (sensor / processor) in a graph; dense in [0, n).
using NodeId = std::uint32_t;

/// Index of an undirected edge (communication link); dense in [0, m).
using EdgeId = std::uint32_t;

/// Index of a directed arc of the bi-directed view; dense in [0, 2m).
/// Arc 2e is the stored orientation of edge e, arc 2e+1 its reverse.
using ArcId = std::uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);

/// Sentinel for "no edge".
inline constexpr EdgeId kNoEdge = static_cast<EdgeId>(-1);

/// Sentinel for "no arc".
inline constexpr ArcId kNoArc = static_cast<ArcId>(-1);

}  // namespace fdlsp
