// Bi-directed view of an undirected graph (Definition 1 of the paper).
//
// Every undirected edge e = {u, v} (stored with u < v) induces two arcs:
//   arc 2e   : u -> v   (u transmits, v receives)
//   arc 2e+1 : v -> u
// Arc ids are dense in [0, 2m), which lets colorings be plain vectors.
#pragma once

#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace fdlsp {

/// Read-only arc (bi-directed) view over a Graph. Holds a reference; the
/// graph must outlive the view.
class ArcView {
 public:
  explicit ArcView(const Graph& graph) : graph_(&graph) {}

  const Graph& graph() const noexcept { return *graph_; }

  /// Number of arcs: 2m.
  std::size_t num_arcs() const noexcept { return 2 * graph_->num_edges(); }

  /// Transmitting endpoint of arc a.
  NodeId tail(ArcId a) const {
    const Edge& e = graph_->edge(a >> 1);
    return (a & 1) == 0 ? e.u : e.v;
  }

  /// Receiving endpoint of arc a.
  NodeId head(ArcId a) const {
    const Edge& e = graph_->edge(a >> 1);
    return (a & 1) == 0 ? e.v : e.u;
  }

  /// The opposite arc over the same edge.
  static ArcId reverse(ArcId a) noexcept { return a ^ 1; }

  /// Undirected edge carrying arc a.
  static EdgeId edge_of(ArcId a) noexcept { return a >> 1; }

  /// Arc u -> v over edge e; u must be an endpoint of e.
  ArcId arc_from(EdgeId e, NodeId tail_node) const {
    const Edge& edge = graph_->edge(e);
    FDLSP_ASSERT(tail_node == edge.u || tail_node == edge.v,
                 "tail not an endpoint");
    return static_cast<ArcId>((e << 1) | (tail_node == edge.u ? 0u : 1u));
  }

  /// Arc u -> v, or kNoArc if {u, v} is not an edge.
  ArcId find_arc(NodeId from, NodeId to) const {
    const EdgeId e = graph_->find_edge(from, to);
    return e == kNoEdge ? kNoArc : arc_from(e, from);
  }

  /// All arcs leaving v (v transmits). Order follows v's adjacency list.
  std::vector<ArcId> out_arcs(NodeId v) const {
    std::vector<ArcId> arcs;
    arcs.reserve(graph_->degree(v));
    for (const NeighborEntry& entry : graph_->neighbors(v))
      arcs.push_back(arc_from(entry.edge, v));
    return arcs;
  }

  /// All arcs entering v (v receives).
  std::vector<ArcId> in_arcs(NodeId v) const {
    std::vector<ArcId> arcs;
    arcs.reserve(graph_->degree(v));
    for (const NeighborEntry& entry : graph_->neighbors(v))
      arcs.push_back(reverse(arc_from(entry.edge, v)));
    return arcs;
  }

  /// All arcs incident on v, outgoing first then incoming.
  std::vector<ArcId> incident_arcs(NodeId v) const {
    std::vector<ArcId> arcs;
    arcs.reserve(2 * graph_->degree(v));
    for (const NeighborEntry& entry : graph_->neighbors(v)) {
      const ArcId out = arc_from(entry.edge, v);
      arcs.push_back(out);
    }
    for (const NeighborEntry& entry : graph_->neighbors(v))
      arcs.push_back(reverse(arc_from(entry.edge, v)));
    return arcs;
  }

 private:
  const Graph* graph_;
};

}  // namespace fdlsp
