#include "ilp/fdlsp_ilp.h"

#include <string>

#include "coloring/checker.h"
#include "coloring/conflict.h"
#include "coloring/conflict_index.h"
#include "coloring/greedy.h"
#include "support/check.h"

namespace fdlsp {

FdlspIlp::FdlspIlp(const ArcView& view, std::size_t num_colors,
                   const ConflictIndex* index)
    : view_(&view) {
  FDLSP_REQUIRE(index == nullptr || index->num_arcs() == view.num_arcs(),
                "index does not match graph");
  if (num_colors == 0 && view.num_arcs() > 0) {
    // Greedy solution bounds the palette; the ILP can only do better.
    num_colors = greedy_coloring(view, GreedyOrder::kByDegreeDesc, nullptr,
                                 index)
                     .num_colors_used();
  }
  palette_ = num_colors;

  colors_base_ = model_.num_variables();
  for (std::size_t j = 0; j < palette_; ++j)
    model_.add_binary("C_" + std::to_string(j));
  assigns_base_ = model_.num_variables();
  for (ArcId a = 0; a < view.num_arcs(); ++a)
    for (std::size_t j = 0; j < palette_; ++j)
      model_.add_binary("X_" + std::to_string(a) + "_" + std::to_string(j));

  // Objective: minimize the number of used colors.
  std::vector<LinearTerm> objective;
  for (std::size_t j = 0; j < palette_; ++j)
    objective.push_back({color_var(j), 1.0});
  model_.set_objective(Objective::kMinimize, std::move(objective));

  for (ArcId a = 0; a < view.num_arcs(); ++a) {
    // Constraint 3: each arc takes exactly one slot.
    LinearConstraint exactly_one;
    exactly_one.sense = Sense::kEqual;
    exactly_one.rhs = 1.0;
    for (std::size_t j = 0; j < palette_; ++j)
      exactly_one.terms.push_back({assign_var(a, j), 1.0});
    model_.add_constraint(std::move(exactly_one));

    // Constraint 1: a slot in use must be counted.
    for (std::size_t j = 0; j < palette_; ++j) {
      LinearConstraint counted;
      counted.sense = Sense::kLessEqual;
      counted.rhs = 0.0;
      counted.terms = {{assign_var(a, j), 1.0}, {color_var(j), -1.0}};
      model_.add_constraint(std::move(counted));
    }

    // Constraints 2/4/5/6: conflicting arcs may not share a slot. Rows from
    // the index and the on-the-fly enumeration are both sorted, so the
    // constraint order (and hence the model) is identical either way.
    const auto add_pair_constraints = [&](ArcId b) {
      if (b < a) return;  // each unordered pair once
      for (std::size_t j = 0; j < palette_; ++j) {
        LinearConstraint apart;
        apart.sense = Sense::kLessEqual;
        apart.rhs = 1.0;
        apart.terms = {{assign_var(a, j), 1.0}, {assign_var(b, j), 1.0}};
        model_.add_constraint(std::move(apart));
      }
    };
    if (index != nullptr) {
      for (ArcId b : index->conflicts(a)) add_pair_constraints(b);
    } else {
      for (ArcId b : conflicting_arcs(view, a)) add_pair_constraints(b);
    }
  }

  // Symmetry breaking: used colors form a prefix.
  for (std::size_t j = 0; j + 1 < palette_; ++j) {
    LinearConstraint prefix;
    prefix.sense = Sense::kGreaterEqual;
    prefix.rhs = 0.0;
    prefix.terms = {{color_var(j), 1.0}, {color_var(j + 1), -1.0}};
    model_.add_constraint(std::move(prefix));
  }
}

std::size_t FdlspIlp::color_var(std::size_t j) const {
  FDLSP_REQUIRE(j < palette_, "color out of palette");
  return colors_base_ + j;
}

std::size_t FdlspIlp::assign_var(ArcId a, std::size_t j) const {
  FDLSP_REQUIRE(a < view_->num_arcs() && j < palette_, "index out of range");
  return assigns_base_ + static_cast<std::size_t>(a) * palette_ + j;
}

ArcColoring FdlspIlp::decode(const std::vector<double>& x) const {
  ArcColoring coloring(view_->num_arcs());
  for (ArcId a = 0; a < view_->num_arcs(); ++a) {
    for (std::size_t j = 0; j < palette_; ++j) {
      if (x[assign_var(a, j)] > 0.5) {
        coloring.set(a, static_cast<Color>(j));
        break;
      }
    }
  }
  return coloring;
}

FdlspIlpResult solve_fdlsp_ilp(const ArcView& view, const IlpOptions& options) {
  FdlspIlpResult result;
  if (view.num_arcs() == 0) {
    result.optimal = true;
    return result;
  }
  // One index serves the constraint rows, the palette sizing, and the
  // warm-start coloring below.
  const ConflictIndex index(view);
  const FdlspIlp ilp(view, 0, &index);
  // Warm start from the greedy schedule that also sized the palette.
  IlpOptions warm = options;
  if (warm.warm_start.empty()) {
    const ArcColoring greedy =
        greedy_coloring(view, GreedyOrder::kByDegreeDesc, nullptr, &index);
    warm.warm_start.assign(ilp.model().num_variables(), 0.0);
    for (ArcId a = 0; a < view.num_arcs(); ++a) {
      const auto slot = static_cast<std::size_t>(greedy.color(a));
      warm.warm_start[ilp.assign_var(a, slot)] = 1.0;
      warm.warm_start[ilp.color_var(slot)] = 1.0;
    }
    // Prefix property: greedy uses colors 0..k-1 contiguously.
  }
  const IlpResult solved = solve_ilp(ilp.model(), warm);
  FDLSP_REQUIRE(solved.status != IlpStatus::kInfeasible,
                "FDLSP ILP must be feasible (palette from greedy UB)");
  result.coloring = ilp.decode(solved.x);
  FDLSP_REQUIRE(is_feasible_schedule(view, result.coloring, &index),
                "decoded ILP solution must be feasible");
  result.num_colors = result.coloring.num_colors_used();
  result.optimal = solved.status == IlpStatus::kOptimal;
  result.nodes_explored = solved.nodes_explored;
  return result;
}

}  // namespace fdlsp
