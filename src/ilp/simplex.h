// Two-phase primal simplex for the LP relaxation of an IlpModel.
//
// Dense tableau with Bland's anti-cycling rule: simple, deterministic, and
// fast enough for the small FDLSP instances the ILP path targets (Table 1).
// Variable bounds are handled by shifting to x >= 0 and adding explicit
// upper-bound rows.
#pragma once

#include <vector>

#include "ilp/model.h"

namespace fdlsp {

/// Outcome of an LP solve.
enum class LpStatus { kOptimal, kInfeasible, kUnbounded };

/// LP solution.
struct LpResult {
  LpStatus status = LpStatus::kInfeasible;
  double objective = 0.0;
  std::vector<double> x;  ///< values of the model's variables (empty unless optimal)
};

/// Solves the LP relaxation of `model` (integrality dropped). Requires every
/// variable to have a finite lower bound.
LpResult solve_lp_relaxation(const IlpModel& model);

}  // namespace fdlsp
