#include "ilp/branch_bound.h"

#include <cmath>
#include <limits>

#include "ilp/simplex.h"
#include "support/check.h"

namespace fdlsp {

namespace {

constexpr double kIntTolerance = 1e-6;

class BranchAndBoundIlp {
 public:
  BranchAndBoundIlp(const IlpModel& model, const IlpOptions& options)
      : model_(model), options_(options), working_(model) {}

  IlpResult solve() {
    best_objective_ = std::numeric_limits<double>::infinity();
    // Internally minimize; flip at the end for maximization models.
    sign_ = model_.objective_direction() == Objective::kMinimize ? 1.0 : -1.0;
    if (!options_.warm_start.empty()) {
      FDLSP_REQUIRE(model_.is_feasible_point(options_.warm_start),
                    "warm start must be feasible and integral");
      best_x_ = options_.warm_start;
      best_objective_ = sign_ * model_.objective_value(best_x_);
    }
    branch();
    IlpResult result;
    result.nodes_explored = explored_;
    if (best_x_.empty()) {
      // No incumbent: infeasible if the proof finished; with an exhausted
      // budget the caller sees kInfeasible too (no point to report).
      result.status = IlpStatus::kInfeasible;
      return result;
    }
    result.status = aborted_ ? IlpStatus::kFeasible : IlpStatus::kOptimal;
    result.objective = model_.objective_value(best_x_);
    result.x = best_x_;
    return result;
  }

 private:
  /// Solves the relaxation of the working model (with current branch bounds)
  /// and recurses on the most fractional integral variable.
  void branch() {
    if (aborted_) return;
    if (++explored_ > options_.max_nodes) {
      aborted_ = true;
      return;
    }
    const LpResult lp = solve_lp_relaxation(working_);
    if (lp.status != LpStatus::kOptimal) return;  // infeasible / unbounded cut
    if (sign_ * lp.objective >= best_objective_ - 1e-9) return;  // bound

    // Most fractional integral variable.
    std::size_t branch_var = working_.num_variables();
    double best_frac = kIntTolerance;
    for (std::size_t v = 0; v < working_.num_variables(); ++v) {
      if (!working_.is_integral(v)) continue;
      const double frac = std::abs(lp.x[v] - std::round(lp.x[v]));
      if (frac > best_frac) {
        best_frac = frac;
        branch_var = v;
      }
    }
    if (branch_var == working_.num_variables()) {
      // Integral: new incumbent.
      std::vector<double> x = lp.x;
      for (std::size_t v = 0; v < x.size(); ++v)
        if (working_.is_integral(v)) x[v] = std::round(x[v]);
      const double value = sign_ * model_.objective_value(x);
      if (value < best_objective_) {
        best_objective_ = value;
        best_x_ = std::move(x);
      }
      return;
    }

    const double saved_lower = working_.lower_bound(branch_var);
    const double saved_upper = working_.upper_bound(branch_var);
    const double floor_value = std::floor(lp.x[branch_var]);
    // Down branch: x <= floor.
    working_.set_bounds(branch_var, saved_lower, floor_value);
    branch();
    // Up branch: x >= floor + 1.
    working_.set_bounds(branch_var, floor_value + 1.0, saved_upper);
    branch();
    working_.set_bounds(branch_var, saved_lower, saved_upper);
  }

  const IlpModel& model_;
  const IlpOptions& options_;
  IlpModel working_;
  double sign_ = 1.0;
  double best_objective_ = 0.0;
  std::vector<double> best_x_;
  std::size_t explored_ = 0;
  bool aborted_ = false;
};

}  // namespace

IlpResult solve_ilp(const IlpModel& model, const IlpOptions& options) {
  BranchAndBoundIlp solver(model, options);
  return solver.solve();
}

}  // namespace fdlsp
