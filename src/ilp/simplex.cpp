#include "ilp/simplex.h"

#include <algorithm>
#include <cmath>

#include "support/check.h"

namespace fdlsp {

namespace {

constexpr double kEps = 1e-9;

/// Dense two-phase simplex over rows of (coeffs | rhs), all structural
/// variables >= 0 and rhs >= 0.
class Tableau {
 public:
  Tableau(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * (cols + 1), 0.0),
        basis_(rows, 0) {}

  double& at(std::size_t r, std::size_t c) { return data_[r * (cols_ + 1) + c]; }
  double& rhs(std::size_t r) { return data_[r * (cols_ + 1) + cols_]; }
  std::size_t& basis(std::size_t r) { return basis_[r]; }

  void pivot(std::size_t pivot_row, std::size_t pivot_col,
             std::vector<double>& objective, double& objective_value) {
    const double p = at(pivot_row, pivot_col);
    FDLSP_ASSERT(std::abs(p) > kEps, "degenerate pivot");
    for (std::size_t c = 0; c <= cols_; ++c)
      data_[pivot_row * (cols_ + 1) + c] /= p;
    for (std::size_t r = 0; r < rows_; ++r) {
      if (r == pivot_row) continue;
      const double factor = at(r, pivot_col);
      if (std::abs(factor) < kEps) continue;
      for (std::size_t c = 0; c <= cols_; ++c)
        data_[r * (cols_ + 1) + c] -= factor * data_[pivot_row * (cols_ + 1) + c];
    }
    const double obj_factor = objective[pivot_col];
    if (std::abs(obj_factor) > kEps) {
      for (std::size_t c = 0; c < cols_; ++c)
        objective[c] -= obj_factor * at(pivot_row, c);
      objective_value -= obj_factor * rhs(pivot_row);
    }
    basis_[pivot_row] = pivot_col;
  }

  /// Marks columns that may never enter the basis (retired artificials).
  void block_columns(std::vector<bool> blocked) { blocked_ = std::move(blocked); }

  /// Minimizes `objective` (reduced-cost row) via Bland's rule.
  /// Returns false if unbounded.
  bool optimize(std::vector<double>& objective, double& objective_value) {
    for (;;) {
      // Entering: smallest index with negative reduced cost (Bland).
      std::size_t enter = cols_;
      for (std::size_t c = 0; c < cols_; ++c) {
        if (!blocked_.empty() && blocked_[c]) continue;
        if (objective[c] < -kEps) {
          enter = c;
          break;
        }
      }
      if (enter == cols_) return true;  // optimal
      // Leaving: min ratio, ties by smallest basis variable (Bland).
      std::size_t leave = rows_;
      double best_ratio = 0.0;
      for (std::size_t r = 0; r < rows_; ++r) {
        const double a = at(r, enter);
        if (a <= kEps) continue;
        const double ratio = rhs(r) / a;
        if (leave == rows_ || ratio < best_ratio - kEps ||
            (ratio < best_ratio + kEps && basis_[r] < basis_[leave])) {
          leave = r;
          best_ratio = ratio;
        }
      }
      if (leave == rows_) return false;  // unbounded
      pivot(leave, enter, objective, objective_value);
    }
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<double> data_;
  std::vector<std::size_t> basis_;
  std::vector<bool> blocked_;
};

}  // namespace

LpResult solve_lp_relaxation(const IlpModel& model) {
  const std::size_t n = model.num_variables();
  for (std::size_t v = 0; v < n; ++v)
    FDLSP_REQUIRE(std::isfinite(model.lower_bound(v)),
                  "simplex requires finite lower bounds");

  // Row set: model constraints plus upper-bound rows for shifted variables.
  struct Row {
    std::vector<LinearTerm> terms;
    Sense sense;
    double rhs;
  };
  std::vector<Row> rows;
  rows.reserve(model.num_constraints() + n);
  for (std::size_t i = 0; i < model.num_constraints(); ++i) {
    const LinearConstraint& c = model.constraint(i);
    Row row{c.terms, c.sense, c.rhs};
    // Shift: x = x' + lower  =>  subtract sum(coef * lower) from rhs.
    for (const LinearTerm& term : c.terms)
      row.rhs -= term.coefficient * model.lower_bound(term.var);
    rows.push_back(std::move(row));
  }
  for (std::size_t v = 0; v < n; ++v) {
    const double span = model.upper_bound(v) - model.lower_bound(v);
    if (std::isfinite(span))
      rows.push_back(Row{{{v, 1.0}}, Sense::kLessEqual, span});
  }

  // Count extra columns: one slack/surplus per inequality, one artificial
  // per >=-or-== row (after rhs normalization to >= 0).
  for (Row& row : rows) {
    if (row.rhs < 0) {
      for (LinearTerm& term : row.terms) term.coefficient = -term.coefficient;
      row.rhs = -row.rhs;
      if (row.sense == Sense::kLessEqual)
        row.sense = Sense::kGreaterEqual;
      else if (row.sense == Sense::kGreaterEqual)
        row.sense = Sense::kLessEqual;
    }
  }
  std::size_t slack_count = 0;
  std::size_t artificial_count = 0;
  for (const Row& row : rows) {
    if (row.sense != Sense::kEqual) ++slack_count;
    if (row.sense != Sense::kLessEqual) ++artificial_count;
  }

  const std::size_t cols = n + slack_count + artificial_count;
  Tableau tableau(rows.size(), cols);
  std::size_t next_slack = n;
  std::size_t next_artificial = n + slack_count;
  std::vector<bool> is_artificial(cols, false);

  for (std::size_t r = 0; r < rows.size(); ++r) {
    for (const LinearTerm& term : rows[r].terms)
      tableau.at(r, term.var) += term.coefficient;
    tableau.rhs(r) = rows[r].rhs;
    switch (rows[r].sense) {
      case Sense::kLessEqual:
        tableau.at(r, next_slack) = 1.0;
        tableau.basis(r) = next_slack++;
        break;
      case Sense::kGreaterEqual:
        tableau.at(r, next_slack) = -1.0;
        ++next_slack;
        tableau.at(r, next_artificial) = 1.0;
        is_artificial[next_artificial] = true;
        tableau.basis(r) = next_artificial++;
        break;
      case Sense::kEqual:
        tableau.at(r, next_artificial) = 1.0;
        is_artificial[next_artificial] = true;
        tableau.basis(r) = next_artificial++;
        break;
    }
  }

  LpResult result;

  // Phase 1: minimize the sum of artificials.
  if (artificial_count > 0) {
    std::vector<double> phase1(cols, 0.0);
    double phase1_value = 0.0;
    for (std::size_t c = 0; c < cols; ++c)
      if (is_artificial[c]) phase1[c] = 1.0;
    // Make reduced costs consistent with the starting basis.
    for (std::size_t r = 0; r < rows.size(); ++r) {
      if (!is_artificial[tableau.basis(r)]) continue;
      for (std::size_t c = 0; c < cols; ++c) phase1[c] -= tableau.at(r, c);
      phase1_value -= tableau.rhs(r);
    }
    if (!tableau.optimize(phase1, phase1_value)) {
      result.status = LpStatus::kInfeasible;  // phase 1 cannot be unbounded
      return result;
    }
    if (-phase1_value > 1e-7) {  // objective_value accumulates as negative
      result.status = LpStatus::kInfeasible;
      return result;
    }
    // Drive leftover artificials out of the basis where possible.
    for (std::size_t r = 0; r < rows.size(); ++r) {
      if (!is_artificial[tableau.basis(r)]) continue;
      std::size_t enter = cols;
      for (std::size_t c = 0; c < n + slack_count; ++c) {
        if (std::abs(tableau.at(r, c)) > kEps) {
          enter = c;
          break;
        }
      }
      if (enter != cols) {
        double dummy_value = 0.0;
        std::vector<double> dummy(cols, 0.0);
        tableau.pivot(r, enter, dummy, dummy_value);
      }
      // Otherwise the row is redundant; the artificial stays at value 0.
    }
    tableau.block_columns(is_artificial);
  }

  // Phase 2: original objective (shifted constant folded in afterwards).
  const double sign =
      model.objective_direction() == Objective::kMinimize ? 1.0 : -1.0;
  std::vector<double> objective(cols, 0.0);
  double objective_value = 0.0;
  double shift_constant = 0.0;
  for (const LinearTerm& term : model.objective_terms()) {
    objective[term.var] += sign * term.coefficient;
    shift_constant += term.coefficient * model.lower_bound(term.var);
  }
  // Price out the current basis.
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const double coef = objective[tableau.basis(r)];
    if (std::abs(coef) < kEps) continue;
    for (std::size_t c = 0; c < cols; ++c)
      objective[c] -= coef * tableau.at(r, c);
    objective_value -= coef * tableau.rhs(r);
  }
  if (!tableau.optimize(objective, objective_value)) {
    result.status = LpStatus::kUnbounded;
    return result;
  }

  // Extract solution (shift back).
  std::vector<double> x(n, 0.0);
  for (std::size_t r = 0; r < rows.size(); ++r)
    if (tableau.basis(r) < n) x[tableau.basis(r)] = tableau.rhs(r);
  for (std::size_t v = 0; v < n; ++v) x[v] += model.lower_bound(v);

  result.status = LpStatus::kOptimal;
  result.x = std::move(x);
  // objective_value tracks -(z of the sign-adjusted shifted problem).
  result.objective = sign * (-objective_value) + shift_constant;
  return result;
}

}  // namespace fdlsp
