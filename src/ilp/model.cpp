#include "ilp/model.h"

#include <cmath>

namespace fdlsp {

std::size_t IlpModel::add_variable(double lower, double upper,
                                   std::string name) {
  FDLSP_REQUIRE(lower <= upper, "inverted variable bounds");
  lower_.push_back(lower);
  upper_.push_back(upper);
  integral_.push_back(false);
  names_.push_back(std::move(name));
  return lower_.size() - 1;
}

std::size_t IlpModel::add_binary(std::string name) {
  const std::size_t var = add_variable(0.0, 1.0, std::move(name));
  integral_[var] = true;
  return var;
}

void IlpModel::set_objective(Objective direction,
                             std::vector<LinearTerm> terms) {
  for (const LinearTerm& term : terms)
    FDLSP_REQUIRE(term.var < num_variables(), "objective variable unknown");
  direction_ = direction;
  objective_ = std::move(terms);
}

std::size_t IlpModel::add_constraint(LinearConstraint constraint) {
  for (const LinearTerm& term : constraint.terms)
    FDLSP_REQUIRE(term.var < num_variables(), "constraint variable unknown");
  constraints_.push_back(std::move(constraint));
  return constraints_.size() - 1;
}

double IlpModel::objective_value(const std::vector<double>& x) const {
  double value = 0.0;
  for (const LinearTerm& term : objective_)
    value += term.coefficient * x[term.var];
  return value;
}

bool IlpModel::is_feasible_point(const std::vector<double>& x,
                                 double tolerance) const {
  if (x.size() != num_variables()) return false;
  for (std::size_t v = 0; v < num_variables(); ++v) {
    if (x[v] < lower_[v] - tolerance || x[v] > upper_[v] + tolerance)
      return false;
    if (integral_[v] && std::abs(x[v] - std::round(x[v])) > tolerance)
      return false;
  }
  for (const LinearConstraint& constraint : constraints_) {
    double lhs = 0.0;
    for (const LinearTerm& term : constraint.terms)
      lhs += term.coefficient * x[term.var];
    switch (constraint.sense) {
      case Sense::kLessEqual:
        if (lhs > constraint.rhs + tolerance) return false;
        break;
      case Sense::kGreaterEqual:
        if (lhs < constraint.rhs - tolerance) return false;
        break;
      case Sense::kEqual:
        if (std::abs(lhs - constraint.rhs) > tolerance) return false;
        break;
    }
  }
  return true;
}

}  // namespace fdlsp
