// Branch-and-bound 0/1 ILP solver on top of the simplex relaxation.
//
// Depth-first, branching on the most fractional integral variable, bounding
// with the LP relaxation and an incumbent. Suited to the small Section 4
// instances; the conflict-graph DSATUR solver remains the production path
// for optima (tests cross-validate the two).
#pragma once

#include <cstddef>
#include <vector>

#include "ilp/model.h"

namespace fdlsp {

/// Outcome of an ILP solve.
enum class IlpStatus {
  kOptimal,     ///< proven optimal within budget
  kFeasible,    ///< best incumbent returned, proof incomplete (budget)
  kInfeasible,  ///< no integral point exists
};

/// ILP solution.
struct IlpResult {
  IlpStatus status = IlpStatus::kInfeasible;
  double objective = 0.0;
  std::vector<double> x;
  std::size_t nodes_explored = 0;
};

/// Branch-and-bound budget and warm start.
struct IlpOptions {
  std::size_t max_nodes = 200'000;
  /// Optional feasible integral point used as the initial incumbent; must
  /// satisfy the model if non-empty (checked). Dramatically improves pruning
  /// on coloring models where the LP bound is weak.
  std::vector<double> warm_start;
};

/// Solves the 0/1 (mixed) ILP.
IlpResult solve_ilp(const IlpModel& model, const IlpOptions& options = {});

}  // namespace fdlsp
