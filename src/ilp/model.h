// Mixed 0/1 linear program model (the Section 4 formulation's container).
//
// Variables are continuous in [lower, upper] or binary {0, 1}; constraints
// are linear with a relational sense. The model is solver-agnostic: the
// simplex solves its LP relaxation, the branch-and-bound layers integrality
// on top.
#pragma once

#include <limits>
#include <string>
#include <vector>

#include "support/check.h"

namespace fdlsp {

/// One coefficient of a linear expression.
struct LinearTerm {
  std::size_t var;
  double coefficient;
};

/// Relational sense of a constraint.
enum class Sense { kLessEqual, kGreaterEqual, kEqual };

/// A linear constraint: sum(terms) <sense> rhs.
struct LinearConstraint {
  std::vector<LinearTerm> terms;
  Sense sense = Sense::kLessEqual;
  double rhs = 0.0;
};

/// Direction of optimization.
enum class Objective { kMinimize, kMaximize };

/// A small dense-friendly ILP/LP model.
class IlpModel {
 public:
  /// Adds a continuous variable with bounds; returns its index.
  std::size_t add_variable(double lower, double upper, std::string name = "");

  /// Adds a binary (0/1, integral) variable; returns its index.
  std::size_t add_binary(std::string name = "");

  /// Tightens (or restores) a variable's bounds — used by branch-and-bound.
  void set_bounds(std::size_t var, double lower, double upper) {
    FDLSP_REQUIRE(var < num_variables(), "variable unknown");
    FDLSP_REQUIRE(lower <= upper, "inverted variable bounds");
    lower_[var] = lower;
    upper_[var] = upper;
  }

  std::size_t num_variables() const noexcept { return lower_.size(); }
  std::size_t num_constraints() const noexcept { return constraints_.size(); }

  bool is_integral(std::size_t var) const { return integral_.at(var); }
  double lower_bound(std::size_t var) const { return lower_.at(var); }
  double upper_bound(std::size_t var) const { return upper_.at(var); }
  const std::string& name(std::size_t var) const { return names_.at(var); }

  /// Sets the objective; terms may mention each variable at most once.
  void set_objective(Objective direction, std::vector<LinearTerm> terms);

  Objective objective_direction() const noexcept { return direction_; }
  const std::vector<LinearTerm>& objective_terms() const noexcept {
    return objective_;
  }

  /// Adds a constraint; returns its index.
  std::size_t add_constraint(LinearConstraint constraint);

  const LinearConstraint& constraint(std::size_t i) const {
    return constraints_.at(i);
  }

  /// Evaluates the objective at a point.
  double objective_value(const std::vector<double>& x) const;

  /// True iff x satisfies all constraints and bounds within tolerance.
  bool is_feasible_point(const std::vector<double>& x,
                         double tolerance = 1e-6) const;

 private:
  std::vector<double> lower_;
  std::vector<double> upper_;
  std::vector<bool> integral_;
  std::vector<std::string> names_;
  std::vector<LinearConstraint> constraints_;
  Objective direction_ = Objective::kMinimize;
  std::vector<LinearTerm> objective_;
};

/// Positive infinity shorthand for unbounded variables.
inline constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace fdlsp
