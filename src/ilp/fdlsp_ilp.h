// The Section 4 ILP formulation of FDLSP.
//
//   min  sum_j C_j
//   s.t. X_{a,j} <= C_j                      (constraint 1: count used colors)
//        X_{a,j} + X_{b,j} <= 1  for every conflicting arc pair (a, b)
//                                            (constraints 2, 4, 5, 6: the
//                                             hidden-terminal rule plus the
//                                             three shared-endpoint rules ==
//                                             exactly arcs_conflict())
//        sum_j X_{a,j} == 1                  (constraint 3: one slot per arc)
//        C_j >= C_{j+1}                      (symmetry breaking; WLOG colors
//                                             are used in prefix order)
//
// The palette size comes from a greedy upper bound, so the ILP is always
// feasible. Intended for small instances; cross-validated against the
// DSATUR exact solver in tests.
#pragma once

#include <vector>

#include "coloring/coloring.h"
#include "graph/arcs.h"
#include "ilp/branch_bound.h"
#include "ilp/model.h"

namespace fdlsp {

class ConflictIndex;

/// The assembled model plus the variable layout needed to decode solutions.
class FdlspIlp {
 public:
  /// Builds the model for the bi-directed view of `graph` with a palette of
  /// `num_colors` slots (0 = derive from a greedy upper bound). A prebuilt
  /// index supplies the conflict-pair constraints (and speeds up the greedy
  /// palette sizing); without one conflicts are enumerated on the fly. The
  /// assembled model is identical either way.
  explicit FdlspIlp(const ArcView& view, std::size_t num_colors = 0,
                    const ConflictIndex* index = nullptr);

  const IlpModel& model() const noexcept { return model_; }
  std::size_t palette() const noexcept { return palette_; }

  /// Index of the C_j variable.
  std::size_t color_var(std::size_t j) const;

  /// Index of the X_{a,j} variable.
  std::size_t assign_var(ArcId a, std::size_t j) const;

  /// Decodes an ILP solution vector into an arc coloring.
  ArcColoring decode(const std::vector<double>& x) const;

 private:
  const ArcView* view_;
  IlpModel model_;
  std::size_t palette_ = 0;
  std::size_t colors_base_ = 0;   // C_j variables start here
  std::size_t assigns_base_ = 0;  // X_{a,j} variables start here
};

/// Result of an end-to-end ILP solve of FDLSP.
struct FdlspIlpResult {
  ArcColoring coloring;
  std::size_t num_colors = 0;
  bool optimal = false;
  std::size_t nodes_explored = 0;
};

/// Builds and solves the Section 4 ILP for `view`.
FdlspIlpResult solve_fdlsp_ilp(const ArcView& view,
                               const IlpOptions& options = {});

}  // namespace fdlsp
