#include "analysis/project.h"

#include <algorithm>
#include <map>
#include <set>

namespace fdlsp {

namespace {

constexpr LintLayer kLayers[] = {
    {"support", 0}, {"graph", 1},  {"sim", 2}, {"coloring", 3},
    {"algos", 3},   {"tdma", 3},   {"soak", 4}, {"verify", 4},
    {"ilp", 4},     {"exp", 4},    {"io", 4},   {"analysis", 4},
};

/// A quoted include parsed out of one source line.
struct IncludeRef {
  std::string_view target;  // text between the quotes
  std::size_t line = 0;     // 1-based
};

/// Quoted #include directives of `text`, parsed from raw lines (the quoted
/// path is a string literal, so the sanitizer would blank it). Only lines
/// whose first non-space character is '#' count — a commented-out include
/// does not start the line with '#'.
std::vector<IncludeRef> parse_includes(std::string_view text) {
  std::vector<IncludeRef> includes;
  std::size_t line_number = 0;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    ++line_number;
    std::size_t end = text.find('\n', begin);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(begin, end - begin);
    begin = end + 1;
    std::size_t pos = 0;
    while (pos < line.size() && (line[pos] == ' ' || line[pos] == '\t')) ++pos;
    if (pos >= line.size() || line[pos] != '#') {
      if (begin > text.size()) break;
      continue;
    }
    const std::size_t keyword = line.find("include", pos + 1);
    if (keyword == std::string_view::npos) continue;
    const std::size_t open = line.find('"', keyword + 7);
    if (open == std::string_view::npos) continue;
    const std::size_t close = line.find('"', open + 1);
    if (close == std::string_view::npos) continue;
    includes.push_back(
        IncludeRef{line.substr(open + 1, close - open - 1), line_number});
    if (begin > text.size()) break;
  }
  return includes;
}

/// Module-level include graph edge.
struct ModuleEdge {
  std::string_view from;
  std::string_view to;

  bool operator<(const ModuleEdge& other) const {
    return std::tie(from, to) < std::tie(other.from, other.to);
  }
};

/// True when `to` can reach `from` through the module edge set (i.e. the
/// edge from→to closes a cycle).
bool closes_cycle(const std::set<ModuleEdge>& edges, std::string_view from,
                  std::string_view to) {
  std::vector<std::string_view> stack{to};
  std::set<std::string_view> visited;
  while (!stack.empty()) {
    const std::string_view node = stack.back();
    stack.pop_back();
    if (node == from) return true;
    if (!visited.insert(node).second) continue;
    for (auto it = edges.lower_bound(ModuleEdge{node, {}});
         it != edges.end() && it->from == node; ++it)
      stack.push_back(it->to);
  }
  return false;
}

}  // namespace

std::span<const LintLayer> lint_layers() { return kLayers; }

int lint_layer_rank(std::string_view module) noexcept {
  for (const LintLayer& layer : kLayers)
    if (layer.module == module) return layer.rank;
  return -1;
}

std::string_view lint_module_of(std::string_view path) {
  std::string_view previous;
  std::string_view rest = path;
  std::string_view first;
  bool have_first = false;
  while (!rest.empty()) {
    const std::size_t slash = rest.find('/');
    const std::string_view component = rest.substr(0, slash);
    if (!have_first && !component.empty() && component != ".") {
      first = component;
      have_first = true;
    }
    if (previous == "src" && lint_layer_rank(component) >= 0) return component;
    previous = component;
    if (slash == std::string_view::npos) break;
    rest.remove_prefix(slash + 1);
  }
  if (have_first && lint_layer_rank(first) >= 0) return first;
  return {};
}

std::vector<LintDiagnostic> lint_layer_dag(
    std::span<const ProjectFile> files) {
  struct EdgeSite {
    const ProjectFile* file;
    std::size_t line;
    std::string_view to_header;
  };
  // First occurrence of each module-level edge, for anchoring cycle
  // diagnostics; the full edge set drives reachability.
  std::map<ModuleEdge, EdgeSite> first_site;
  std::set<ModuleEdge> edges;
  std::vector<LintDiagnostic> diagnostics;

  for (const ProjectFile& file : files) {
    const std::string_view from = lint_module_of(file.path);
    if (from.empty()) continue;
    const int from_rank = lint_layer_rank(from);
    for (const IncludeRef& include : parse_includes(file.text)) {
      const std::size_t slash = include.target.find('/');
      if (slash == std::string_view::npos) continue;
      const std::string_view to = include.target.substr(0, slash);
      const int to_rank = lint_layer_rank(to);
      if (to_rank < 0 || to == from) continue;
      if (to_rank > from_rank) {
        diagnostics.push_back(LintDiagnostic{
            file.path, include.line, "layer-dag",
            "upward include: module '" + std::string(from) + "' (layer " +
                std::to_string(from_rank) + ") includes '" +
                std::string(include.target) + "' from layer " +
                std::to_string(to_rank) +
                " — dependencies must point down the layer DAG"});
        continue;
      }
      const ModuleEdge edge{from, to};
      if (edges.insert(edge).second)
        first_site.emplace(edge,
                           EdgeSite{&file, include.line, include.target});
    }
  }

  // Same-layer (or downward) edges must stay acyclic at module
  // granularity. Each edge that closes a cycle gets one diagnostic at its
  // first include site.
  for (const auto& [edge, site] : first_site) {
    std::set<ModuleEdge> others = edges;
    others.erase(edge);
    if (closes_cycle(others, edge.from, edge.to)) {
      diagnostics.push_back(LintDiagnostic{
          site.file->path, site.line, "layer-dag",
          "module cycle: '" + std::string(edge.from) + "' includes '" +
              std::string(site.to_header) + "' while '" +
              std::string(edge.to) + "' (transitively) includes '" +
              std::string(edge.from) + "' — break the cycle or merge the "
              "modules"});
    }
  }

  std::sort(diagnostics.begin(), diagnostics.end(),
            [](const LintDiagnostic& a, const LintDiagnostic& b) {
              return std::tie(a.file, a.line) < std::tie(b.file, b.line);
            });
  return diagnostics;
}

}  // namespace fdlsp
