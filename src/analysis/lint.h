// fdlsp-lint: the repo's determinism & protocol-isolation source linter.
//
// A token-level C++ scanner (no libclang dependency) enforcing the
// invariants the verification harness can only sample:
//
//   unseeded-rng        — ambient randomness (std::rand, srand,
//                         std::random_device, std::mt19937,
//                         std::default_random_engine, random_shuffle) is
//                         banned everywhere: all stochastic code must draw
//                         from fdlsp::Rng with an explicitly threaded seed
//                         (src/support/rng.h). fdlsp::Rng itself has no
//                         default constructor, so the type system already
//                         forbids unseeded Rng; this rule closes the escape
//                         routes around it.
//   time-seed           — wall-clock reads (time(), clock(), ::now(),
//                         gettimeofday) in deterministic paths.
//   unordered-container — std::unordered_{map,set,multimap,multiset} in
//                         deterministic paths: iteration order is
//                         unspecified, and a token scanner cannot prove a
//                         given instance is never iterated, so the
//                         containers are banned there outright.
//   pointer-key         — map/set keyed on a pointer type anywhere:
//                         address order changes across runs (ASLR).
//   cross-node-state    — inside a class deriving from SyncProgram or
//                         AsyncProgram: naming SyncEngine/AsyncEngine or
//                         calling .program(/->program( lets a simulated
//                         node read peer state outside the message API.
//   ordered-in-protocol-state
//                       — std::map/std::set (and multi variants) in
//                         protocol-state paths (src/sim, src/algos) or
//                         inside program classes: node-pair state is
//                         point-queried per message, where red-black trees
//                         allocate per insert and pay log-n per probe; use
//                         FlatHashMap/FlatHashSet (support/flat_hash.h), or
//                         allow() with a justification when iteration order
//                         is semantically load-bearing.
//   heap-in-hot-path    — inside a function annotated `// fdlsp-lint: hot`
//                         (the per-message/per-round engine seams): `new`,
//                         make_unique, make_shared, or a .resize()/
//                         .reserve() member call. The zero-alloc message
//                         path (DESIGN.md §13) is enforced at runtime by
//                         the allocation auditor (support/alloc_audit.h);
//                         this rule catches regressions at review time.
//   unjustified-allow   — an `// fdlsp-lint: allow(<rule>)` directive whose
//                         line (and the line above) carries no justifying
//                         comment text, or that names a rule not in the
//                         catalog. Allows are part of the invariant
//                         surface: each one must say *why* it is safe.
//                         Diagnostics of this rule ignore allow()
//                         directives — the escape hatch cannot excuse
//                         itself.
//   layer-dag           — project mode only (analysis/project.h): a module
//                         includes a header from a higher layer of the
//                         declared include-layer DAG, or a set of
//                         same-layer includes forms a module cycle.
//
// Deterministic paths are src/algos, src/sim, src/coloring and src/graph —
// the code whose behavior must be a pure function of (input graph, seed).
// Protocol-state paths are src/sim and src/algos — the per-message fast
// path shared by every simulated protocol.
//
// Escape hatch: a file containing the comment
//     // fdlsp-lint: allow(<rule>)
// suppresses <rule> for that whole file (multiple directives allowed;
// `allow(rule1, rule2)` also works). Policy: every allow needs a
// justifying comment on the same line or the line above — and since v2
// that policy is machine-checked by the unjustified-allow rule.
//
// The scanner strips comments and string/char literals first (including
// raw string literals), so banned tokens in documentation do not fire. It
// is deliberately line-oriented and heuristic — a lint, not a compiler —
// but every rule errs toward firing: false positives are silenced with
// allow() + justification.
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace fdlsp {

/// One lint finding.
struct LintDiagnostic {
  std::string file;
  std::size_t line = 0;  ///< 1-based
  std::string rule;
  std::string message;
};

/// "file:line: [rule] message" (clickable in most terminals/editors).
std::string to_string(const LintDiagnostic& diagnostic);

/// Catalog entry for --list-rules and the docs.
struct LintRuleInfo {
  std::string_view name;
  std::string_view summary;
};

/// The rule catalog, in evaluation order (layer-dag last: it is enforced
/// project-wide by analysis/project.h rather than per file).
std::span<const LintRuleInfo> lint_rules();

/// True for paths whose code must be deterministic (src/algos, src/sim,
/// src/coloring, src/graph), where the path-scoped rules apply.
bool lint_deterministic_path(std::string_view path);

/// True for paths on the protocol fast path (src/sim, src/algos), where
/// ordered-in-protocol-state applies to the whole file rather than only to
/// program class bodies.
bool lint_protocol_state_path(std::string_view path);

/// Lints one file's contents. `path` selects the path-scoped rules and is
/// echoed into diagnostics; it does not need to exist on disk (tests lint
/// fixture snippets under synthetic paths).
std::vector<LintDiagnostic> lint_source(std::string_view path,
                                        std::string_view text);

/// Replaces comments and string/char literals (including raw strings) with
/// spaces, preserving line structure. Exposed for tests.
std::string lint_sanitize(std::string_view text);

}  // namespace fdlsp
