#include "analysis/happens_before.h"

#include <algorithm>

#include "support/check.h"

namespace fdlsp {

HappensBeforeChecker::HappensBeforeChecker(std::size_t num_nodes)
    : clocks_(num_nodes, Clock(num_nodes, 0)) {}

void HappensBeforeChecker::on_local_step(NodeId node) {
  FDLSP_REQUIRE(node < clocks_.size(), "trace event for unknown node");
  ++events_;
  ++clocks_[node][node];
}

void HappensBeforeChecker::on_send(NodeId from, NodeId to) {
  FDLSP_REQUIRE(from < clocks_.size() && to < clocks_.size(),
                "trace event for unknown node");
  ++events_;
  channels_[{from, to}].push_back(clocks_[from]);
}

void HappensBeforeChecker::on_deliver(NodeId from, NodeId to) {
  FDLSP_REQUIRE(from < clocks_.size() && to < clocks_.size(),
                "trace event for unknown node");
  ++events_;
  const auto it = channels_.find({from, to});
  FDLSP_REQUIRE(it != channels_.end() && !it->second.empty(),
                "delivery without a matching send (engine trace bug)");
  const Clock& snapshot = it->second.front();
  Clock& receiver = clocks_[to];
  for (std::size_t u = 0; u < receiver.size(); ++u)
    receiver[u] = std::max(receiver[u], snapshot[u]);
  it->second.pop_front();
}

void HappensBeforeChecker::on_state_read(NodeId reader, NodeId owner) {
  FDLSP_REQUIRE(reader < clocks_.size() && owner < clocks_.size(),
                "trace event for unknown node");
  ++events_;
  ++state_reads_;
  const std::uint64_t known = clocks_[reader][owner];
  const std::uint64_t actual = clocks_[owner][owner];
  if (known < actual)
    violations_.push_back(Violation{reader, owner, known, actual});
}

std::string HappensBeforeChecker::report() const {
  if (ok()) {
    return "happens-before: ok (" + std::to_string(events_) + " events, " +
           std::to_string(state_reads_) + " cross-node reads)";
  }
  return "happens-before: " + std::to_string(violations_.size()) +
         " causality-violating read(s); first: " + to_string(violations_[0]);
}

void HappensBeforeChecker::reset() {
  for (Clock& clock : clocks_) std::fill(clock.begin(), clock.end(), 0);
  channels_.clear();
  violations_.clear();
  state_reads_ = 0;
  events_ = 0;
}

std::string to_string(const HappensBeforeChecker::Violation& violation) {
  return "node " + std::to_string(violation.reader) + " read node " +
         std::to_string(violation.owner) + ": knows " +
         std::to_string(violation.reader_known) + " of " +
         std::to_string(violation.owner_steps) + " steps";
}

}  // namespace fdlsp
