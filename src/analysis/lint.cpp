#include "analysis/lint.h"

#include <algorithm>
#include <cctype>
#include <set>

namespace fdlsp {

namespace {

constexpr LintRuleInfo kRules[] = {
    {"unseeded-rng",
     "ambient randomness (std::rand, srand, std::random_device, std::mt19937, "
     "std::default_random_engine, random_shuffle) breaks seed-reproducibility; "
     "draw from fdlsp::Rng with a threaded seed"},
    {"time-seed",
     "wall-clock reads (time(), clock(), ::now(), gettimeofday) in "
     "deterministic paths leak nondeterminism into protocol code"},
    {"unordered-container",
     "std::unordered_{map,set,multimap,multiset} in deterministic paths: "
     "iteration order is unspecified; use ordered containers or sorted "
     "iteration"},
    {"pointer-key",
     "map/set keyed on a pointer type orders by address, which varies across "
     "runs (ASLR); key on stable ids instead"},
    {"cross-node-state",
     "inside SyncProgram/AsyncProgram classes: naming an engine or calling "
     ".program()/->program() reads peer state outside the message API"},
    {"ordered-in-protocol-state",
     "std::map/std::set in protocol-state paths (src/sim, src/algos) or "
     "program classes: point-queried state on red-black trees allocates per "
     "insert; use FlatHashMap/FlatHashSet (support/flat_hash.h) or justify "
     "with allow() when iteration order is load-bearing"},
    {"heap-in-hot-path",
     "new/make_unique/make_shared/.resize()/.reserve() inside a function "
     "annotated '// fdlsp-lint: hot' — the per-message engine seams must not "
     "touch the allocator in steady state (see support/alloc_audit.h)"},
    {"unjustified-allow",
     "an allow() directive with no justifying comment on its own or the "
     "preceding line, or naming a rule that is not in the catalog; allows "
     "cannot suppress this rule"},
    {"layer-dag",
     "project mode: an #include crosses the declared include-layer DAG "
     "upward, or same-layer includes form a module cycle "
     "(analysis/project.h)"},
};

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool alpha_char(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0;
}

/// Position of `token` as a whole identifier in `line` at or after `from`;
/// npos when absent.
std::size_t find_token(std::string_view line, std::string_view token,
                       std::size_t from = 0) {
  for (std::size_t pos = line.find(token, from); pos != std::string_view::npos;
       pos = line.find(token, pos + 1)) {
    const bool left_ok = pos == 0 || !ident_char(line[pos - 1]);
    const std::size_t end = pos + token.size();
    const bool right_ok = end >= line.size() || !ident_char(line[end]);
    if (left_ok && right_ok) return pos;
  }
  return std::string_view::npos;
}

bool has_token(std::string_view line, std::string_view token) {
  return find_token(line, token) != std::string_view::npos;
}

std::size_t skip_spaces(std::string_view line, std::size_t pos) {
  while (pos < line.size() &&
         (line[pos] == ' ' || line[pos] == '\t'))
    ++pos;
  return pos;
}

/// True when the first non-space character after `pos` is `expect`.
bool next_char_is(std::string_view line, std::size_t pos, char expect) {
  pos = skip_spaces(line, pos);
  return pos < line.size() && line[pos] == expect;
}

/// True when the token starting at `pos` is immediately preceded by "::"
/// (ignoring spaces between "::" and the token).
bool preceded_by_scope(std::string_view line, std::size_t pos) {
  while (pos > 0 && (line[pos - 1] == ' ' || line[pos - 1] == '\t')) --pos;
  return pos >= 2 && line[pos - 1] == ':' && line[pos - 2] == ':';
}

/// True when the token starting at `pos` is qualified as std:: (spaces
/// tolerated around the "::").
bool preceded_by_std(std::string_view line, std::size_t pos) {
  while (pos > 0 && (line[pos - 1] == ' ' || line[pos - 1] == '\t')) --pos;
  if (pos < 2 || line[pos - 1] != ':' || line[pos - 2] != ':') return false;
  pos -= 2;
  while (pos > 0 && (line[pos - 1] == ' ' || line[pos - 1] == '\t')) --pos;
  return pos >= 3 && line.substr(pos - 3, 3) == "std" &&
         (pos == 3 || !ident_char(line[pos - 4]));
}

/// True when the token starting at `pos` is preceded by "." or "->"
/// (ignoring spaces), i.e. it is a member access.
bool preceded_by_member_access(std::string_view line, std::size_t pos) {
  while (pos > 0 && (line[pos - 1] == ' ' || line[pos - 1] == '\t')) --pos;
  if (pos >= 1 && line[pos - 1] == '.') return true;
  return pos >= 2 && line[pos - 2] == '-' && line[pos - 1] == '>';
}

/// First template argument of the `container<...>` starting with the '<' at
/// `angle`; empty when the argument list does not open at `angle` or spans
/// past the end of the line (lint-lite: arguments are assumed line-local).
std::string_view first_template_arg(std::string_view line, std::size_t angle) {
  if (angle >= line.size() || line[angle] != '<') return {};
  int depth = 1;
  const std::size_t begin = angle + 1;
  for (std::size_t i = begin; i < line.size(); ++i) {
    const char c = line[i];
    if (c == '<') ++depth;
    if (c == '>') {
      --depth;
      if (depth == 0) return line.substr(begin, i - begin);
    }
    if (c == ',' && depth == 1) return line.substr(begin, i - begin);
  }
  return {};
}

/// True when `name` looks like a rule name: nonempty, only [a-z0-9-].
/// Anything else (e.g. the `<rule>` placeholder in documentation) is prose,
/// not a directive operand.
bool rule_name_shaped(std::string_view name) {
  if (name.empty()) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '-';
    if (!ok) return false;
  }
  return true;
}

bool known_rule(std::string_view name) {
  for (const LintRuleInfo& rule : kRules)
    if (rule.name == name) return true;
  return false;
}

/// Splits the comma-separated operand list of one allow(...) directive into
/// trimmed names, appending to `out`.
void split_rule_list(std::string_view list, std::vector<std::string>& out) {
  while (!list.empty()) {
    const std::size_t comma = list.find(',');
    std::string_view rule = list.substr(0, comma);
    while (!rule.empty() && (rule.front() == ' ' || rule.front() == '\t'))
      rule.remove_prefix(1);
    while (!rule.empty() && (rule.back() == ' ' || rule.back() == '\t'))
      rule.remove_suffix(1);
    if (!rule.empty()) out.emplace_back(rule);
    if (comma == std::string_view::npos) break;
    list.remove_prefix(comma + 1);
  }
}

// The directive marker and its operand keywords. Kept on separate source
// lines deliberately: the unjustified-allow scan is line-oriented, so this
// file's own string literals must never look like a directive.
constexpr std::string_view kDirective = "fdlsp-lint:";
constexpr std::string_view kAllowKeyword = "allow(";
constexpr std::string_view kHotKeyword = "hot";

/// Parses one raw line for an allow(...) directive. Returns true and fills
/// `names` (rule-name-shaped operands only) and `directive_span` (the byte
/// range of the directive within the line) when one is found.
bool parse_allow_line(std::string_view line, std::vector<std::string>& names,
                      std::pair<std::size_t, std::size_t>* directive_span) {
  const std::size_t pos = line.find(kDirective);
  if (pos == std::string_view::npos) return false;
  std::size_t cursor = skip_spaces(line, pos + kDirective.size());
  if (line.compare(cursor, kAllowKeyword.size(), kAllowKeyword) != 0)
    return false;
  cursor += kAllowKeyword.size();
  const std::size_t close = line.find(')', cursor);
  if (close == std::string_view::npos) return false;
  std::vector<std::string> all;
  split_rule_list(line.substr(cursor, close - cursor), all);
  for (std::string& name : all)
    if (rule_name_shaped(name)) names.push_back(std::move(name));
  if (directive_span != nullptr) *directive_span = {pos, close + 1};
  return true;
}

/// Collects the rules suppressed by allow(...) directives anywhere in the
/// raw text (directives live inside comments, so this scans unsanitized
/// lines).
std::set<std::string, std::less<>> parse_allows(
    const std::vector<std::string_view>& raw_lines) {
  std::set<std::string, std::less<>> allows;
  for (const std::string_view line : raw_lines) {
    std::vector<std::string> names;
    if (parse_allow_line(line, names, nullptr))
      for (std::string& name : names) allows.insert(std::move(name));
  }
  return allows;
}

std::vector<std::string_view> split_lines(std::string_view text) {
  std::vector<std::string_view> lines;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    const std::size_t end = text.find('\n', begin);
    if (end == std::string_view::npos) {
      lines.push_back(text.substr(begin));
      break;
    }
    lines.push_back(text.substr(begin, end - begin));
    begin = end + 1;
  }
  return lines;
}

/// Marks the lines inside bodies of classes deriving from SyncProgram or
/// AsyncProgram, by brace counting from the declaration line.
std::vector<char> program_regions(const std::vector<std::string_view>& lines) {
  std::vector<char> in_region(lines.size(), 0);
  bool awaiting = false;  // saw the declaration, waiting for its '{'
  bool active = false;
  int depth = 0;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string_view line = lines[i];
    if (!awaiting && !active &&
        (has_token(line, "SyncProgram") || has_token(line, "AsyncProgram")) &&
        (has_token(line, "class") || has_token(line, "struct"))) {
      awaiting = true;
      depth = 0;
    }
    if (awaiting) {
      for (const char c : line) {
        if (c == '{') {
          ++depth;
          active = true;
          awaiting = false;
        } else if (c == '}') {
          --depth;
        } else if (c == ';' && !active) {
          awaiting = false;  // forward declaration, no body
          break;
        }
      }
      if (active) {
        in_region[i] = 1;
        if (depth <= 0) active = false;
      }
      continue;
    }
    if (active) {
      in_region[i] = 1;
      for (const char c : line) {
        if (c == '{') ++depth;
        if (c == '}') --depth;
      }
      if (depth <= 0) active = false;
    }
  }
  return in_region;
}

/// True when the raw line carries a `hot` annotation directive.
bool is_hot_directive(std::string_view raw_line) {
  const std::size_t pos = raw_line.find(kDirective);
  if (pos == std::string_view::npos) return false;
  const std::size_t cursor = skip_spaces(raw_line, pos + kDirective.size());
  return find_token(raw_line, kHotKeyword, cursor) == cursor;
}

/// Marks the lines of each function body annotated with a `hot` directive:
/// from the line after the directive through the close of the next brace
/// balance. A declaration with no body (`;` before any `{`) ends the region
/// immediately, so annotating a prototype is harmless.
std::vector<char> hot_regions(const std::vector<std::string_view>& raw_lines,
                              const std::vector<std::string_view>& lines) {
  std::vector<char> hot(lines.size(), 0);
  for (std::size_t i = 0; i < raw_lines.size(); ++i) {
    if (!is_hot_directive(raw_lines[i])) continue;
    int depth = 0;
    bool started = false;
    for (std::size_t j = i + 1; j < lines.size(); ++j) {
      hot[j] = 1;
      bool ended = false;
      for (const char c : lines[j]) {
        if (c == '{') {
          ++depth;
          started = true;
        } else if (c == '}') {
          if (--depth <= 0 && started) {
            ended = true;
            break;
          }
        } else if (c == ';' && !started) {
          ended = true;  // prototype: no body follows
          break;
        }
      }
      if (ended) break;
    }
  }
  return hot;
}

/// Count of alphabetic characters in `line` outside [skip_begin, skip_end)
/// and not part of a comment marker.
std::size_t justification_chars(std::string_view line, std::size_t skip_begin,
                                std::size_t skip_end) {
  std::size_t count = 0;
  for (std::size_t i = 0; i < line.size(); ++i) {
    if (i >= skip_begin && i < skip_end) continue;
    if (alpha_char(line[i])) ++count;
  }
  return count;
}

constexpr std::string_view kAmbientRandomTokens[] = {
    "rand",    "srand",          "random_device",
    "mt19937", "mt19937_64",     "default_random_engine",
    "minstd_rand", "minstd_rand0", "random_shuffle",
};

constexpr std::string_view kUnorderedTokens[] = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset"};

constexpr std::string_view kKeyedContainerTokens[] = {
    "map",           "set",           "multimap",
    "multiset",      "unordered_map", "unordered_set",
    "unordered_multimap", "unordered_multiset"};

constexpr std::string_view kOrderedTokens[] = {"map", "set", "multimap",
                                               "multiset"};

constexpr std::string_view kHeapCallTokens[] = {"make_unique", "make_shared"};

constexpr std::string_view kHeapMemberTokens[] = {"resize", "reserve"};

constexpr std::string_view kEngineTokens[] = {"SyncEngine", "AsyncEngine"};

bool path_has_root(std::string_view path, std::span<const std::string_view> roots) {
  for (const std::string_view root : roots) {
    if (path.substr(0, root.size()) == root) return true;
    const std::string needle = "/" + std::string(root);
    if (path.find(needle) != std::string_view::npos) return true;
  }
  return false;
}

}  // namespace

std::string to_string(const LintDiagnostic& diagnostic) {
  return diagnostic.file + ":" + std::to_string(diagnostic.line) + ": [" +
         diagnostic.rule + "] " + diagnostic.message;
}

std::span<const LintRuleInfo> lint_rules() { return kRules; }

bool lint_deterministic_path(std::string_view path) {
  constexpr std::string_view kRoots[] = {"algos/", "sim/", "coloring/",
                                         "graph/"};
  return path_has_root(path, kRoots);
}

bool lint_protocol_state_path(std::string_view path) {
  constexpr std::string_view kRoots[] = {"algos/", "sim/"};
  return path_has_root(path, kRoots);
}

std::string lint_sanitize(std::string_view text) {
  std::string out(text);
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out[i] = ' ';
        } else if (c == '"') {
          // Raw string literal: the quote is preceded by an R prefix
          // (R, uR, UR, LR, u8R) that is itself not part of a longer
          // identifier. Blank through the matching )delim" — escapes are
          // inert inside raw strings.
          bool raw = false;
          if (i >= 1 && text[i - 1] == 'R') {
            std::size_t prefix = i - 1;
            if (prefix >= 2 && text[prefix - 2] == 'u' &&
                text[prefix - 1] == '8') {
              prefix -= 2;
            } else if (prefix >= 1 &&
                       (text[prefix - 1] == 'u' || text[prefix - 1] == 'U' ||
                        text[prefix - 1] == 'L')) {
              prefix -= 1;
            }
            raw = prefix == 0 || !ident_char(text[prefix - 1]);
          }
          if (raw) {
            const std::size_t paren = text.find('(', i + 1);
            if (paren == std::string_view::npos) {
              for (std::size_t j = i; j < text.size(); ++j)
                if (text[j] != '\n') out[j] = ' ';
              return out;
            }
            const std::string closer =
                ")" + std::string(text.substr(i + 1, paren - i - 1)) + "\"";
            std::size_t close = text.find(closer, paren + 1);
            const std::size_t last = close == std::string_view::npos
                                         ? text.size()
                                         : close + closer.size();
            for (std::size_t j = i; j < last; ++j)
              if (text[j] != '\n') out[j] = ' ';
            i = last - 1;
          } else {
            state = State::kString;
            out[i] = ' ';
          }
        } else if (c == '\'' && (i == 0 || !ident_char(text[i - 1]))) {
          // An apostrophe after an identifier character is a digit
          // separator (1'000'000) or literal suffix, not a char literal.
          state = State::kChar;
          out[i] = ' ';
        }
        break;
      case State::kLineComment:
        if (c == '\n')
          state = State::kCode;
        else
          out[i] = ' ';
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
      case State::kChar: {
        const char quote = state == State::kString ? '"' : '\'';
        if (c == '\\' && next != '\0' && next != '\n') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
        } else if (c == quote) {
          out[i] = ' ';
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      }
    }
  }
  return out;
}

std::vector<LintDiagnostic> lint_source(std::string_view path,
                                        std::string_view text) {
  const std::vector<std::string_view> raw_lines = split_lines(text);
  const auto allows = parse_allows(raw_lines);
  const std::string sanitized = lint_sanitize(text);
  const std::vector<std::string_view> lines = split_lines(sanitized);
  const bool deterministic = lint_deterministic_path(path);
  const bool protocol_state = lint_protocol_state_path(path);
  const std::vector<char> in_program = program_regions(lines);
  const std::vector<char> in_hot = hot_regions(raw_lines, lines);

  std::vector<LintDiagnostic> diagnostics;
  const auto emit = [&](std::size_t line_index, std::string_view rule,
                        std::string message) {
    if (allows.find(rule) != allows.end()) return;
    diagnostics.push_back(LintDiagnostic{std::string(path), line_index + 1,
                                         std::string(rule),
                                         std::move(message)});
  };
  // unjustified-allow findings skip the allows filter: the escape hatch
  // must not be able to excuse its own misuse.
  const auto emit_unconditional = [&](std::size_t line_index,
                                      std::string message) {
    diagnostics.push_back(LintDiagnostic{std::string(path), line_index + 1,
                                         "unjustified-allow",
                                         std::move(message)});
  };

  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string_view line = lines[i];

    // unjustified-allow: scans the raw line (directives live in comments).
    {
      std::vector<std::string> names;
      std::pair<std::size_t, std::size_t> span{0, 0};
      // A directive with no rule-name-shaped operand (e.g. the `<rule>`
      // placeholder in documentation) suppresses nothing and is skipped.
      if (parse_allow_line(raw_lines[i], names, &span) && !names.empty()) {
        for (const std::string& name : names) {
          if (!known_rule(name)) {
            emit_unconditional(
                i, "allow() names unknown rule '" + name +
                       "' — see fdlsp-lint --list-rules for the catalog");
          }
        }
        const std::size_t same_line =
            justification_chars(raw_lines[i], span.first, span.second);
        std::size_t prev_line = 0;
        if (i > 0) {
          std::pair<std::size_t, std::size_t> prev_span{0, 0};
          std::vector<std::string> ignored;
          const bool prev_is_directive =
              parse_allow_line(raw_lines[i - 1], ignored, &prev_span);
          prev_line = justification_chars(
              raw_lines[i - 1], prev_is_directive ? prev_span.first : 0,
              prev_is_directive ? prev_span.second : 0);
        }
        if (same_line < 3 && prev_line < 3) {
          emit_unconditional(
              i, "allow() without a justifying comment on this line or the "
                 "line above — say why the suppression is safe");
        }
      }
    }

    // unseeded-rng: ambient randomness sources, everywhere.
    for (const std::string_view token : kAmbientRandomTokens) {
      if (has_token(line, token)) {
        emit(i, "unseeded-rng",
             "ambient randomness source '" + std::string(token) +
                 "' — draw from fdlsp::Rng with a threaded seed "
                 "(support/rng.h)");
      }
    }

    // time-seed: wall-clock reads, deterministic paths only.
    if (deterministic) {
      for (const std::string_view token : {std::string_view("time"),
                                           std::string_view("clock")}) {
        const std::size_t pos = find_token(line, token);
        if (pos != std::string_view::npos &&
            next_char_is(line, pos + token.size(), '(')) {
          emit(i, "time-seed",
               "wall-clock read '" + std::string(token) +
                   "()' in a deterministic path");
        }
      }
      if (has_token(line, "gettimeofday")) {
        emit(i, "time-seed",
             "wall-clock read 'gettimeofday' in a deterministic path");
      }
      const std::size_t now_pos = find_token(line, "now");
      if (now_pos != std::string_view::npos &&
          preceded_by_scope(line, now_pos)) {
        emit(i, "time-seed", "wall-clock read '::now()' in a deterministic "
                             "path");
      }
    }

    // unordered-container: deterministic paths only.
    if (deterministic) {
      for (const std::string_view token : kUnorderedTokens) {
        if (has_token(line, token)) {
          emit(i, "unordered-container",
               "'std::" + std::string(token) +
                   "' in a deterministic path — iteration order is "
                   "unspecified; use an ordered container or sorted "
                   "iteration");
        }
      }
    }

    // pointer-key: everywhere.
    for (const std::string_view token : kKeyedContainerTokens) {
      for (std::size_t pos = find_token(line, token);
           pos != std::string_view::npos;
           pos = find_token(line, token, pos + 1)) {
        const std::size_t angle = skip_spaces(line, pos + token.size());
        const std::string_view arg = first_template_arg(line, angle);
        if (arg.find('*') != std::string_view::npos) {
          emit(i, "pointer-key",
               "container keyed on pointer type '" +
                   std::string(arg.substr(0, 40)) +
                   "' — address order is not stable across runs");
        }
      }
    }

    // cross-node-state: program class bodies in deterministic paths.
    if (deterministic && in_program[i] != 0) {
      for (const std::string_view token : kEngineTokens) {
        if (has_token(line, token)) {
          emit(i, "cross-node-state",
               "'" + std::string(token) +
                   "' named inside a node program — nodes may only act on "
                   "their own state and delivered messages");
        }
      }
      const std::size_t pos = find_token(line, "program");
      if (pos != std::string_view::npos &&
          preceded_by_member_access(line, pos) &&
          next_char_is(line, pos + 7, '(')) {
        emit(i, "cross-node-state",
             "'.program()' call inside a node program — peer program state "
             "is off-limits outside the message API");
      }
    }

    // ordered-in-protocol-state: protocol paths, and program class bodies
    // anywhere deterministic. Only std::-qualified names fire — bare `map`
    // or `set` are common identifiers.
    if (protocol_state || in_program[i] != 0) {
      for (const std::string_view token : kOrderedTokens) {
        for (std::size_t pos = find_token(line, token);
             pos != std::string_view::npos;
             pos = find_token(line, token, pos + 1)) {
          if (!preceded_by_std(line, pos)) continue;
          emit(i, "ordered-in-protocol-state",
               "'std::" + std::string(token) +
                   "' in protocol state — point-queried state should use "
                   "FlatHashMap/FlatHashSet (support/flat_hash.h); allow() "
                   "with a justification if iteration order is load-bearing");
        }
      }
    }

    // heap-in-hot-path: functions annotated hot.
    if (in_hot[i] != 0) {
      const std::size_t new_pos = find_token(line, "new");
      if (new_pos != std::string_view::npos) {
        emit(i, "heap-in-hot-path",
             "'new' in a hot-annotated function — the per-message path must "
             "not allocate in steady state");
      }
      for (const std::string_view token : kHeapCallTokens) {
        if (has_token(line, token)) {
          emit(i, "heap-in-hot-path",
               "'" + std::string(token) +
                   "' in a hot-annotated function — the per-message path "
                   "must not allocate in steady state");
        }
      }
      for (const std::string_view token : kHeapMemberTokens) {
        const std::size_t pos = find_token(line, token);
        if (pos != std::string_view::npos &&
            preceded_by_member_access(line, pos) &&
            next_char_is(line, pos + token.size(), '(')) {
          emit(i, "heap-in-hot-path",
               "'." + std::string(token) +
                   "()' in a hot-annotated function — growth belongs in "
                   "construction/warm-up, not the per-message path");
        }
      }
    }
  }
  return diagnostics;
}

}  // namespace fdlsp
