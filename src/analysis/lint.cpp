#include "analysis/lint.h"

#include <algorithm>
#include <cctype>
#include <set>

namespace fdlsp {

namespace {

constexpr LintRuleInfo kRules[] = {
    {"unseeded-rng",
     "ambient randomness (std::rand, srand, std::random_device, std::mt19937, "
     "std::default_random_engine, random_shuffle) breaks seed-reproducibility; "
     "draw from fdlsp::Rng with a threaded seed"},
    {"time-seed",
     "wall-clock reads (time(), clock(), ::now(), gettimeofday) in "
     "deterministic paths leak nondeterminism into protocol code"},
    {"unordered-container",
     "std::unordered_{map,set,multimap,multiset} in deterministic paths: "
     "iteration order is unspecified; use ordered containers or sorted "
     "iteration"},
    {"pointer-key",
     "map/set keyed on a pointer type orders by address, which varies across "
     "runs (ASLR); key on stable ids instead"},
    {"cross-node-state",
     "inside SyncProgram/AsyncProgram classes: naming an engine or calling "
     ".program()/->program() reads peer state outside the message API"},
};

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Position of `token` as a whole identifier in `line` at or after `from`;
/// npos when absent.
std::size_t find_token(std::string_view line, std::string_view token,
                       std::size_t from = 0) {
  for (std::size_t pos = line.find(token, from); pos != std::string_view::npos;
       pos = line.find(token, pos + 1)) {
    const bool left_ok = pos == 0 || !ident_char(line[pos - 1]);
    const std::size_t end = pos + token.size();
    const bool right_ok = end >= line.size() || !ident_char(line[end]);
    if (left_ok && right_ok) return pos;
  }
  return std::string_view::npos;
}

bool has_token(std::string_view line, std::string_view token) {
  return find_token(line, token) != std::string_view::npos;
}

std::size_t skip_spaces(std::string_view line, std::size_t pos) {
  while (pos < line.size() &&
         (line[pos] == ' ' || line[pos] == '\t'))
    ++pos;
  return pos;
}

/// True when the first non-space character after `pos` is `expect`.
bool next_char_is(std::string_view line, std::size_t pos, char expect) {
  pos = skip_spaces(line, pos);
  return pos < line.size() && line[pos] == expect;
}

/// True when the token starting at `pos` is immediately preceded by "::"
/// (ignoring spaces between "::" and the token).
bool preceded_by_scope(std::string_view line, std::size_t pos) {
  while (pos > 0 && (line[pos - 1] == ' ' || line[pos - 1] == '\t')) --pos;
  return pos >= 2 && line[pos - 1] == ':' && line[pos - 2] == ':';
}

/// True when the token starting at `pos` is preceded by "." or "->"
/// (ignoring spaces), i.e. it is a member access.
bool preceded_by_member_access(std::string_view line, std::size_t pos) {
  while (pos > 0 && (line[pos - 1] == ' ' || line[pos - 1] == '\t')) --pos;
  if (pos >= 1 && line[pos - 1] == '.') return true;
  return pos >= 2 && line[pos - 2] == '-' && line[pos - 1] == '>';
}

/// First template argument of the `container<...>` starting with the '<' at
/// `angle`; empty when the argument list does not open at `angle` or spans
/// past the end of the line (lint-lite: arguments are assumed line-local).
std::string_view first_template_arg(std::string_view line, std::size_t angle) {
  if (angle >= line.size() || line[angle] != '<') return {};
  int depth = 1;
  const std::size_t begin = angle + 1;
  for (std::size_t i = begin; i < line.size(); ++i) {
    const char c = line[i];
    if (c == '<') ++depth;
    if (c == '>') {
      --depth;
      if (depth == 0) return line.substr(begin, i - begin);
    }
    if (c == ',' && depth == 1) return line.substr(begin, i - begin);
  }
  return {};
}

/// Collects the rules suppressed by `// fdlsp-lint: allow(...)` directives.
/// Scans the raw text (directives live inside comments).
std::set<std::string, std::less<>> parse_allows(std::string_view text) {
  std::set<std::string, std::less<>> allows;
  constexpr std::string_view kDirective = "fdlsp-lint:";
  for (std::size_t pos = text.find(kDirective); pos != std::string_view::npos;
       pos = text.find(kDirective, pos + kDirective.size())) {
    std::size_t cursor = skip_spaces(text, pos + kDirective.size());
    constexpr std::string_view kAllow = "allow(";
    if (text.compare(cursor, kAllow.size(), kAllow) != 0) continue;
    cursor += kAllow.size();
    const std::size_t close = text.find(')', cursor);
    if (close == std::string_view::npos) continue;
    std::string_view list = text.substr(cursor, close - cursor);
    while (!list.empty()) {
      const std::size_t comma = list.find(',');
      std::string_view rule = list.substr(0, comma);
      while (!rule.empty() && (rule.front() == ' ' || rule.front() == '\t'))
        rule.remove_prefix(1);
      while (!rule.empty() && (rule.back() == ' ' || rule.back() == '\t'))
        rule.remove_suffix(1);
      if (!rule.empty()) allows.emplace(rule);
      if (comma == std::string_view::npos) break;
      list.remove_prefix(comma + 1);
    }
  }
  return allows;
}

std::vector<std::string_view> split_lines(std::string_view text) {
  std::vector<std::string_view> lines;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    const std::size_t end = text.find('\n', begin);
    if (end == std::string_view::npos) {
      lines.push_back(text.substr(begin));
      break;
    }
    lines.push_back(text.substr(begin, end - begin));
    begin = end + 1;
  }
  return lines;
}

/// Marks the lines inside bodies of classes deriving from SyncProgram or
/// AsyncProgram, by brace counting from the declaration line.
std::vector<char> program_regions(const std::vector<std::string_view>& lines) {
  std::vector<char> in_region(lines.size(), 0);
  bool awaiting = false;  // saw the declaration, waiting for its '{'
  bool active = false;
  int depth = 0;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string_view line = lines[i];
    if (!awaiting && !active &&
        (has_token(line, "SyncProgram") || has_token(line, "AsyncProgram")) &&
        (has_token(line, "class") || has_token(line, "struct"))) {
      awaiting = true;
      depth = 0;
    }
    if (awaiting) {
      for (const char c : line) {
        if (c == '{') {
          ++depth;
          active = true;
          awaiting = false;
        } else if (c == '}') {
          --depth;
        } else if (c == ';' && !active) {
          awaiting = false;  // forward declaration, no body
          break;
        }
      }
      if (active) {
        in_region[i] = 1;
        if (depth <= 0) active = false;
      }
      continue;
    }
    if (active) {
      in_region[i] = 1;
      for (const char c : line) {
        if (c == '{') ++depth;
        if (c == '}') --depth;
      }
      if (depth <= 0) active = false;
    }
  }
  return in_region;
}

constexpr std::string_view kAmbientRandomTokens[] = {
    "rand",    "srand",          "random_device",
    "mt19937", "mt19937_64",     "default_random_engine",
    "minstd_rand", "minstd_rand0", "random_shuffle",
};

constexpr std::string_view kUnorderedTokens[] = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset"};

constexpr std::string_view kKeyedContainerTokens[] = {
    "map",           "set",           "multimap",
    "multiset",      "unordered_map", "unordered_set",
    "unordered_multimap", "unordered_multiset"};

constexpr std::string_view kEngineTokens[] = {"SyncEngine", "AsyncEngine"};

}  // namespace

std::string to_string(const LintDiagnostic& diagnostic) {
  return diagnostic.file + ":" + std::to_string(diagnostic.line) + ": [" +
         diagnostic.rule + "] " + diagnostic.message;
}

std::span<const LintRuleInfo> lint_rules() { return kRules; }

bool lint_deterministic_path(std::string_view path) {
  constexpr std::string_view kRoots[] = {"algos/", "sim/", "coloring/",
                                         "graph/"};
  for (const std::string_view root : kRoots) {
    if (path.substr(0, root.size()) == root) return true;
    const std::string needle = "/" + std::string(root);
    if (path.find(needle) != std::string_view::npos) return true;
  }
  return false;
}

std::string lint_sanitize(std::string_view text) {
  std::string out(text);
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out[i] = ' ';
        } else if (c == '"') {
          state = State::kString;
          out[i] = ' ';
        } else if (c == '\'' && (i == 0 || !ident_char(text[i - 1]))) {
          // An apostrophe after an identifier character is a digit
          // separator (1'000'000) or literal suffix, not a char literal.
          state = State::kChar;
          out[i] = ' ';
        }
        break;
      case State::kLineComment:
        if (c == '\n')
          state = State::kCode;
        else
          out[i] = ' ';
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
      case State::kChar: {
        const char quote = state == State::kString ? '"' : '\'';
        if (c == '\\' && next != '\0' && next != '\n') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
        } else if (c == quote) {
          out[i] = ' ';
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      }
    }
  }
  return out;
}

std::vector<LintDiagnostic> lint_source(std::string_view path,
                                        std::string_view text) {
  const auto allows = parse_allows(text);
  const std::string sanitized = lint_sanitize(text);
  const std::vector<std::string_view> lines = split_lines(sanitized);
  const bool deterministic = lint_deterministic_path(path);
  const std::vector<char> in_program = program_regions(lines);

  std::vector<LintDiagnostic> diagnostics;
  const auto emit = [&](std::size_t line_index, std::string_view rule,
                        std::string message) {
    if (allows.find(rule) != allows.end()) return;
    diagnostics.push_back(LintDiagnostic{std::string(path), line_index + 1,
                                         std::string(rule),
                                         std::move(message)});
  };

  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string_view line = lines[i];

    // unseeded-rng: ambient randomness sources, everywhere.
    for (const std::string_view token : kAmbientRandomTokens) {
      if (has_token(line, token)) {
        emit(i, "unseeded-rng",
             "ambient randomness source '" + std::string(token) +
                 "' — draw from fdlsp::Rng with a threaded seed "
                 "(support/rng.h)");
      }
    }

    // time-seed: wall-clock reads, deterministic paths only.
    if (deterministic) {
      for (const std::string_view token : {std::string_view("time"),
                                           std::string_view("clock")}) {
        const std::size_t pos = find_token(line, token);
        if (pos != std::string_view::npos &&
            next_char_is(line, pos + token.size(), '(')) {
          emit(i, "time-seed",
               "wall-clock read '" + std::string(token) +
                   "()' in a deterministic path");
        }
      }
      if (has_token(line, "gettimeofday")) {
        emit(i, "time-seed",
             "wall-clock read 'gettimeofday' in a deterministic path");
      }
      const std::size_t now_pos = find_token(line, "now");
      if (now_pos != std::string_view::npos &&
          preceded_by_scope(line, now_pos)) {
        emit(i, "time-seed", "wall-clock read '::now()' in a deterministic "
                             "path");
      }
    }

    // unordered-container: deterministic paths only.
    if (deterministic) {
      for (const std::string_view token : kUnorderedTokens) {
        if (has_token(line, token)) {
          emit(i, "unordered-container",
               "'std::" + std::string(token) +
                   "' in a deterministic path — iteration order is "
                   "unspecified; use an ordered container or sorted "
                   "iteration");
        }
      }
    }

    // pointer-key: everywhere.
    for (const std::string_view token : kKeyedContainerTokens) {
      for (std::size_t pos = find_token(line, token);
           pos != std::string_view::npos;
           pos = find_token(line, token, pos + 1)) {
        const std::size_t angle = skip_spaces(line, pos + token.size());
        const std::string_view arg = first_template_arg(line, angle);
        if (arg.find('*') != std::string_view::npos) {
          emit(i, "pointer-key",
               "container keyed on pointer type '" +
                   std::string(arg.substr(0, 40)) +
                   "' — address order is not stable across runs");
        }
      }
    }

    // cross-node-state: program class bodies in deterministic paths.
    if (deterministic && in_program[i] != 0) {
      for (const std::string_view token : kEngineTokens) {
        if (has_token(line, token)) {
          emit(i, "cross-node-state",
               "'" + std::string(token) +
                   "' named inside a node program — nodes may only act on "
                   "their own state and delivered messages");
        }
      }
      const std::size_t pos = find_token(line, "program");
      if (pos != std::string_view::npos &&
          preceded_by_member_access(line, pos) &&
          next_char_is(line, pos + 7, '(')) {
        emit(i, "cross-node-state",
             "'.program()' call inside a node program — peer program state "
             "is off-limits outside the message API");
      }
    }
  }
  return diagnostics;
}

}  // namespace fdlsp
