// Project-wide lint: the include-layer DAG (rule `layer-dag`).
//
// Modules are the first-level directories under src/. Each is assigned a
// layer rank; a quoted #include may only point at the same or a lower
// layer, and same-layer includes must stay acyclic at module granularity:
//
//   layer 0  support                      (freestanding utilities)
//   layer 1  graph                        (graph model & generators)
//   layer 2  sim                          (engines & message fabric)
//   layer 3  coloring, algos, tdma        (algorithms over the fabric)
//   layer 4  soak, verify, ilp, exp,      (harnesses, oracles, drivers)
//            io, analysis
//
// The DAG is the repo's dependency contract: protocol code must never
// reach up into harnesses, and support must stay freestanding. Violations
// are reported as `layer-dag` diagnostics anchored at the include line.
// System includes (<...>) and includes outside src/ modules are exempt.
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/lint.h"

namespace fdlsp {

/// One module and its layer rank, for --list-rules style documentation.
struct LintLayer {
  std::string_view module;
  int rank;
};

/// The declared layer table, in rank order.
std::span<const LintLayer> lint_layers();

/// Layer rank of `module`; -1 when the module is not in the table.
int lint_layer_rank(std::string_view module) noexcept;

/// The module owning `path`: the path component following a "src"
/// component, or the leading component when the path is already
/// module-relative ("sim/x.cpp"). Empty when neither names a known module.
std::string_view lint_module_of(std::string_view path);

/// One file handed to the project checker.
struct ProjectFile {
  std::string path;
  std::string text;
};

/// Checks every quoted #include in `files` against the layer DAG. Returns
/// one `layer-dag` diagnostic per upward include, plus one per include
/// edge that participates in a same-layer module cycle.
std::vector<LintDiagnostic> lint_layer_dag(std::span<const ProjectFile> files);

}  // namespace fdlsp
