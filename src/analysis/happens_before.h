// Vector-clock happens-before checker: a race detector for protocol logic.
//
// The paper's algorithms are correct only if every node acts solely on its
// own state plus information causally delivered to it in messages (the
// message-passing discipline of the LOCAL model; Herman & Tixeuil's
// self-stabilizing TDMA and Gandham et al.'s D-MGC hinge on the same
// invariant). In a shared-memory simulator a NodeProcess can silently break
// the discipline by reading a neighbor's fields directly. This checker
// turns such reads into verdicts:
//
//   * It observes engine events through the SimTrace hook (sim/trace.h) and
//     maintains one vector clock per node: clock[v][u] counts the local
//     steps of u whose effects are causally known to v. A local step
//     increments clock[v][v]; a send snapshots the sender's clock onto the
//     (FIFO) channel; a delivery joins the snapshot into the receiver.
//   * A cross-node state read (reader r obtains the program object of owner
//     o mid-run) is BENIGN iff clock[r][o] == clock[o][o]: everything the
//     owner has done is already causally known to the reader, so the read
//     could have been replaced by remembering delivered messages. Otherwise
//     the owner has performed steps that never reached the reader through
//     any message chain — a happens-before race; the read observes state
//     the real distributed system could not have shown.
//
// Cost: O(n) per event — strictly an analysis-mode tool. The engines' hot
// path is untouched when no trace is attached.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "graph/types.h"
#include "sim/trace.h"

namespace fdlsp {

/// SimTrace implementation flagging causality-violating state reads.
class HappensBeforeChecker final : public SimTrace {
 public:
  /// One causality-violating cross-node read.
  struct Violation {
    NodeId reader = kNoNode;
    NodeId owner = kNoNode;
    /// Owner local steps causally known to the reader at the read.
    std::uint64_t reader_known = 0;
    /// Owner local steps actually performed at the read.
    std::uint64_t owner_steps = 0;
  };

  explicit HappensBeforeChecker(std::size_t num_nodes);

  void on_local_step(NodeId node) override;
  void on_send(NodeId from, NodeId to) override;
  void on_deliver(NodeId from, NodeId to) override;
  void on_state_read(NodeId reader, NodeId owner) override;

  /// True iff no causality-violating read was observed.
  bool ok() const noexcept { return violations_.empty(); }

  /// All violations, in observation order.
  const std::vector<Violation>& violations() const noexcept {
    return violations_;
  }

  /// Cross-node reads observed (benign + violating).
  std::uint64_t state_reads() const noexcept { return state_reads_; }

  /// Total events observed (steps + sends + deliveries + reads).
  std::uint64_t events() const noexcept { return events_; }

  /// Human-readable verdict; names the first violation when not ok().
  std::string report() const;

  /// Re-arms the checker for another run over the same node count.
  void reset();

 private:
  using Clock = std::vector<std::uint64_t>;

  /// In-flight send clocks per directed channel, popped FIFO at delivery
  /// (both engines deliver per-channel in send order; see sim/trace.h).
  using ChannelKey = std::pair<NodeId, NodeId>;

  std::vector<Clock> clocks_;
  std::map<ChannelKey, std::deque<Clock>> channels_;
  std::vector<Violation> violations_;
  std::uint64_t state_reads_ = 0;
  std::uint64_t events_ = 0;
};

/// Formats one violation ("node 3 read node 1: knows 2 of 5 steps").
std::string to_string(const HappensBeforeChecker::Violation& violation);

}  // namespace fdlsp
