// 2-SAT solver (implication graph + Tarjan SCC).
//
// Used by the D-MGC baseline's direction-assignment phase: orienting the
// edges of one color class without hidden-terminal conflicts is a 2-SAT
// instance (one boolean per edge = its orientation).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

namespace fdlsp {

/// Incremental 2-SAT instance over variables 0..n-1.
class TwoSat {
 public:
  explicit TwoSat(std::size_t num_variables);

  std::size_t num_variables() const noexcept { return n_; }

  /// Adds the clause (x_a = value_a) OR (x_b = value_b).
  void add_clause(std::size_t a, bool value_a, std::size_t b, bool value_b);

  /// Forces x_a = value_a.
  void add_unit(std::size_t a, bool value_a);

  /// Solves; returns an assignment, or nullopt if unsatisfiable.
  std::optional<std::vector<bool>> solve() const;

 private:
  // Literal encoding: variable v true -> 2v, false -> 2v+1.
  static std::size_t literal(std::size_t v, bool value) {
    return 2 * v + (value ? 0 : 1);
  }
  static std::size_t negation(std::size_t lit) { return lit ^ 1; }

  std::size_t n_;
  std::vector<std::vector<std::size_t>> implications_;  // 2n adjacency lists
};

}  // namespace fdlsp
