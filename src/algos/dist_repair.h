// Distributed schedule repair — the message-passing realization of the
// paper's future work (Section 9), complementing the centralized
// repair_schedule() in repair.h.
//
// Setting: the topology changed (nodes joined/failed/moved) and every node
// still holds the slots of its own outgoing arcs, some of which are now
// stale (new links uncolored, new proximities conflicting). The protocol:
//
//   Phase 0 (5 rounds): every node floods its out-arc colors to distance 2;
//     each tail deterministically identifies its *losing* arcs (a colored
//     arc loses if it conflicts with an equally-colored arc of smaller
//     ArcId under the initial snapshot), clears them, and floods the
//     clear-set so distance-2 knowledge stays consistent.
//   Phase 1: nodes with uncolored out-arcs run DistMIS-style distance-2
//     competitions (blocks of 5 rounds); block winners greedily color their
//     dirty out-arcs against their knowledge and flood the assignment.
//
// The repair cost a deployment pays is localized: only nodes within
// distance ~2 of a change send competition traffic; everyone else just
// relays during the initial exchange.
#pragma once

#include <cstdint>

#include "algos/scheduler.h"
#include "coloring/coloring.h"
#include "graph/graph.h"

namespace fdlsp {

class SimTrace;

/// Result of a distributed repair run.
struct DistRepairResult {
  ArcColoring coloring;            ///< complete, feasible
  std::size_t recolored_arcs = 0;  ///< arcs that changed or gained a color
  std::size_t num_slots = 0;
  std::size_t rounds = 0;
  std::size_t messages = 0;
};

/// Repairs `stale` (a possibly conflicting, possibly partial coloring of
/// `graph`'s arcs — e.g. the output of transfer_coloring after churn) into
/// a feasible complete schedule, distributedly.
DistRepairResult run_distributed_repair(const Graph& graph,
                                        const ArcColoring& stale,
                                        std::uint64_t seed = 1,
                                        std::size_t max_rounds = 1'000'000,
                                        SimTrace* trace = nullptr);

}  // namespace fdlsp
