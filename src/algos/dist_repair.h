// Distributed schedule repair — the message-passing realization of the
// paper's future work (Section 9), complementing the centralized
// repair_schedule() in repair.h.
//
// Setting: the topology changed (nodes joined/failed/moved) and every node
// still holds the slots of its own outgoing arcs, some of which are now
// stale (new links uncolored, new proximities conflicting). The protocol:
//
//   Phase 0 (5 rounds): every node floods its out-arc colors to distance 2;
//     each tail deterministically identifies its *losing* arcs (a colored
//     arc loses if it conflicts with an equally-colored arc of smaller
//     ArcId under the initial snapshot), clears them, and floods the
//     clear-set so distance-2 knowledge stays consistent.
//   Phase 1: nodes with uncolored out-arcs run DistMIS-style distance-2
//     competitions (blocks of 5 rounds); block winners greedily color their
//     dirty out-arcs against their knowledge and flood the assignment.
//
// The repair cost a deployment pays is localized: only nodes within
// distance ~2 of a change send competition traffic; everyone else just
// relays during the initial exchange.
#pragma once

#include <cstdint>

#include "algos/scheduler.h"
#include "coloring/coloring.h"
#include "graph/graph.h"

namespace fdlsp {

class SimTrace;
class ThreadPool;

/// Result of a distributed repair run.
struct DistRepairResult {
  ArcColoring coloring;            ///< complete, feasible
  std::size_t recolored_arcs = 0;  ///< arcs that changed or gained a color
  std::size_t num_slots = 0;
  std::size_t rounds = 0;
  std::size_t messages = 0;
  bool completed = true;  ///< engine ran to quiescence within budget
  FaultStats faults;      ///< injected faults (all zero without a plan)
  /// Transport-layer work summed across all reliable wrappers (all zero
  /// without `reliable`).
  TransportStats transport;
};

/// Repairs `stale` (a possibly conflicting, possibly partial coloring of
/// `graph`'s arcs — e.g. the output of transfer_coloring after churn) into
/// a feasible complete schedule, distributedly.
///
/// `faults` optionally runs the repair itself under a fault model (see
/// sim/fault.h), with `reliable` hardening the messaging (sim/reliable.h).
/// Under a fault plan the completeness/feasibility contract weakens the
/// same way run_dist_mis's does: the caller inspects `completed` and
/// verifies the coloring instead of the run aborting. The fixed-length
/// flood-and-compete structure always terminates, so an unhardened lossy
/// repair is the canonical *terminating but wrong* fault case the shrinker
/// exercises.
/// `pool`, when non-null, shards engine state and rounds across its workers
/// (see SyncEngine::set_thread_pool; byte-identical for any thread or shard
/// count); `shards` optionally fixes the shard count (0 = pool-derived).
/// `transport` selects the reliable wrapper's transport generation
/// (sim/reliable.h); meaningless without `reliable`.
DistRepairResult run_distributed_repair(
    const Graph& graph, const ArcColoring& stale, std::uint64_t seed = 1,
    std::size_t max_rounds = 1'000'000, SimTrace* trace = nullptr,
    const FaultSpec* faults = nullptr, bool reliable = false,
    ThreadPool* pool = nullptr, std::size_t shards = 0,
    TransportTuning transport = TransportTuning::kAdaptive);

}  // namespace fdlsp
