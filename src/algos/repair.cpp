#include "algos/repair.h"

#include <vector>

#include "coloring/checker.h"
#include "coloring/conflict.h"
#include "coloring/conflict_index.h"
#include "support/check.h"

namespace fdlsp {

ArcColoring transfer_coloring(const ArcView& old_view,
                              const ArcColoring& old_coloring,
                              const ArcView& new_view) {
  ArcColoring transferred(new_view.num_arcs());
  for (ArcId a = 0; a < new_view.num_arcs(); ++a) {
    const ArcId old_arc =
        old_view.find_arc(new_view.tail(a), new_view.head(a));
    if (old_arc != kNoArc && old_coloring.is_colored(old_arc))
      transferred.set(a, old_coloring.color(old_arc));
  }
  return transferred;
}

RepairResult repair_schedule(const ArcView& view, ArcColoring partial,
                             const ConflictIndex* index) {
  FDLSP_REQUIRE(partial.num_arcs() == view.num_arcs(),
                "partial coloring does not match graph");
  FDLSP_REQUIRE(index == nullptr || index->num_arcs() == view.num_arcs(),
                "index does not match graph");

  // Phase 1: clear conflicts introduced by topology changes. The lower arc
  // id keeps its slot; the higher one yields, so each conflicting pair
  // clears exactly one arc. Clearing only removes colors, so one ascending
  // pass suffices.
  for (ArcId a = 0; a < view.num_arcs(); ++a) {
    if (!partial.is_colored(a)) continue;
    const Color c = partial.color(a);
    bool clash = false;
    if (index != nullptr) {
      for (const ArcId b : index->conflicts(a)) {
        if (b >= a) break;  // rows are sorted; only lower ids matter
        if (partial.color(b) == c) {
          clash = true;
          break;
        }
      }
    } else {
      for_each_conflicting_arc(view, a, [&](ArcId b) {
        if (!clash && b < a && partial.color(b) == c) clash = true;
      });
    }
    if (clash) partial.clear(a);
  }
  FDLSP_ASSERT(!find_violation(view, partial, index).has_value(),
               "phase 1 must clear all conflicts");

  // Phase 2: greedily color everything still missing.
  RepairResult result;
  if (index != nullptr) {
    ConflictScratch scratch(*index);
    for (ArcId a = 0; a < view.num_arcs(); ++a) {
      if (partial.is_colored(a)) continue;
      partial.set(a, scratch.smallest_feasible_color(partial, a));
      ++result.recolored_arcs;
    }
  } else {
    for (ArcId a = 0; a < view.num_arcs(); ++a) {
      if (partial.is_colored(a)) continue;
      partial.set(a, smallest_feasible_color(view, partial, a));
      ++result.recolored_arcs;
    }
  }
  result.num_slots = partial.num_colors_used();
  result.coloring = std::move(partial);
  return result;
}

}  // namespace fdlsp
