// Randomized distance-1 FDLSP algorithm.
//
// Section 5 of the paper remarks: "It is possible to bypass the distance-2
// knowledge requirement and color with distance-1 knowledge only by
// randomization. We have attempted a randomized algorithm for the FDLSP,
// but it produced longer schedules with speed that is close to the
// independent set based algorithm." This module reproduces that attempt so
// the claim is measurable (see bench/ablation_randomized).
//
// Protocol (synchronous, 3 rounds per step):
//   1. every node broadcasts the tentative colors of its unconfirmed
//      out-arcs (and which arcs are already final);
//   2. every node checks the conflicts it can *see* — any conflicting arc
//      pair has a common endpoint or a receiver adjacent to the competing
//      transmitter, so some node observes both colors with distance-1
//      knowledge only — and vetoes the lower-priority arc to its owner;
//   3. owners finalize arcs that drew no veto; vetoed arcs redraw uniformly
//      from a per-arc range that widens with each retry (guaranteeing
//      convergence), and the next step begins.
//
// Distance-1 knowledge cannot *avoid* conflicts proactively, only detect
// them, which is exactly why the resulting schedules are longer.
#pragma once

#include <cstdint>

#include "algos/scheduler.h"
#include "graph/graph.h"

namespace fdlsp {

class SimTrace;
class ThreadPool;

/// Tunables for the randomized algorithm.
struct RandomizedOptions {
  std::uint64_t seed = 1;
  std::size_t max_rounds = 1'000'000;
  /// Optional event observer (see sim/trace.h); not owned, may be null.
  SimTrace* trace = nullptr;
  /// Optional fault model (see sim/fault.h); not owned, may be null. With
  /// crash/churn armed, or with losses and `reliable` off, the result's
  /// coloring may be partial and `completed` false instead of aborting.
  const FaultSpec* faults = nullptr;
  /// Harden every node with the ack/retransmit wrapper (sim/reliable.h).
  bool reliable = false;
  /// Transport generation for the reliable wrapper (see sim/reliable.h);
  /// meaningless without `reliable`.
  TransportTuning transport = TransportTuning::kAdaptive;
  /// Shard engine state and rounds across this pool (see
  /// SyncEngine::set_thread_pool; byte-identical to the serial run for any
  /// thread or shard count). Not owned, may be null. Ignored — serial
  /// fallback — when trace/faults are attached.
  ThreadPool* pool = nullptr;
  /// Explicit shard count for pooled runs (SyncEngine::set_shards); 0
  /// derives the count from the pool size. Meaningless without `pool`.
  std::size_t shards = 0;
};

/// Runs the randomized distance-1 algorithm; returns a complete feasible
/// schedule plus measured rounds/messages.
ScheduleResult run_randomized(const Graph& graph,
                              const RandomizedOptions& options = {});

}  // namespace fdlsp
