#include "algos/randomized.h"

// remembered_finals_ and the per-round veto batches are *iterated* to build
// outgoing messages, so their key order is part of the wire format: a
// std::map's sorted order is exactly the determinism contract needed here,
// and a flat hash (which exposes no iteration) cannot express it.
// fdlsp-lint: allow(ordered-in-protocol-state)

#include <algorithm>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "graph/arcs.h"
#include "sim/reliable.h"
#include "sim/sync_engine.h"
#include "support/check.h"
#include "support/rng.h"

namespace fdlsp {

namespace {

constexpr std::int32_t kTagState = 1;  // data: [arc, color, final, ...]
constexpr std::int32_t kTagVeto = 2;   // data: [arc, ...]

/// One tentative out-arc assignment.
struct OutArc {
  ArcId arc;
  Color color = kNoColor;
  bool final = false;
  std::size_t retries = 0;
};

/// A neighbor arc as seen by this node during detection.
struct SeenArc {
  ArcId arc;
  Color color;
  bool final;
  NodeId owner;    ///< tail — where a veto goes
  bool toward_me;  ///< head == self (an in-arc of this node)
};

/// All nodes' randomized-coloring state in structure-of-arrays form (the
/// per-node-program layout this replaces lives on in git history). The
/// out-arc slots and their reverse arcs are CSR-packed across nodes; the
/// per-round detection buffer is per-shard scratch, reused every round.
/// Seeding, message assembly order, and the veto tie-breaks are unchanged,
/// so schedules are byte-identical to the per-node layout for every seed.
class RandomizedSet final : public SyncProgramSet {
 public:
  RandomizedSet(const Graph& graph, std::uint64_t seed) : view_(graph) {
    const std::size_t n = graph.num_nodes();
    // Per-node streams drawn from one seeded sequence, in node order — the
    // same seeding the per-node-program layout used.
    Rng seeder(seed);
    rng_.reserve(n);
    for (std::size_t v = 0; v < n; ++v) rng_.emplace_back(seeder());
    out_offsets_.assign(n + 1, 0);
    for (NodeId v = 0; v < n; ++v) {
      out_offsets_[v + 1] =
          out_offsets_[v] + view_.out_arcs(v).size();
    }
    out_.resize(out_offsets_[n]);
    rev_.resize(out_offsets_[n]);
    base_range_.assign(n, 2);
    done_.assign(n, 0);
    announced_.assign(n, 0);
    remembered_.resize(n);
    for (NodeId v = 0; v < n; ++v) {
      std::size_t pos = out_offsets_[v];
      for (ArcId a : view_.out_arcs(v)) {
        out_[pos] = OutArc{a};
        rev_[pos] = ArcView::reverse(a);
        ++pos;
      }
      base_range_[v] = 2 * graph.degree(v) + 2;
      done_[v] = out_offsets_[v + 1] == out_offsets_[v] ? 1 : 0;
      announced_[v] = done_[v];
    }
  }

  std::size_t size() const override { return done_.size(); }

  /// Sizes per-shard scratch; one prepared set sticks to one shard count
  /// (same contract as DistMisSet, and all the reliable-composition path
  /// needs — see run_randomized).
  void prepare_shards(std::size_t shards) override {
    FDLSP_REQUIRE(shards > 0, "shard count must be positive");
    if (shards == prepared_) return;
    FDLSP_REQUIRE(prepared_ == 0,
                  "randomized state cannot be re-sharded once prepared");
    prepared_ = shards;
    shards_.resize(shards);
  }

  /// A node is finished once everything is final AND the final state has
  /// been broadcast — neighbors remember it for their later detections.
  bool finished(NodeId v) const override {
    return done_[v] != 0 && announced_[v] != 0;
  }
  bool ready_for_phase_advance(NodeId) const override { return true; }
  void on_phase(NodeId, std::size_t) override {}

  void on_round(NodeId v, SyncContext& ctx,
                std::span<const Message> inbox) override {
    // Steps are aligned by the *global* round counter so relays and
    // late-finishing nodes never desynchronize.
    switch (ctx.round() % 3) {
      case 0:
        draw_and_broadcast(v, ctx);
        break;
      case 1:
        detect_and_veto(v, ctx, inbox);
        break;
      case 2:
        finalize(v, inbox);
        break;
    }
  }

  /// Shard count prepare_shards() was called with (0 before any run).
  std::size_t prepared_shards() const noexcept { return prepared_; }

  std::span<const OutArc> out_arcs(NodeId v) const {
    return {out_.data() + out_offsets_[v],
            out_offsets_[v + 1] - out_offsets_[v]};
  }

  std::size_t num_arcs() const noexcept { return view_.num_arcs(); }

 private:
  std::span<OutArc> outs(NodeId v) {
    return {out_.data() + out_offsets_[v],
            out_offsets_[v + 1] - out_offsets_[v]};
  }

  /// Round 0: redraw vetoed colors, broadcast the out-arc state. After the
  /// node is done it broadcasts exactly once more (the final announcement)
  /// and then goes quiet.
  void draw_and_broadcast(NodeId v, SyncContext& ctx) {
    if (done_[v] != 0 && announced_[v] != 0) return;
    for (OutArc& out : outs(v)) {
      if (out.final || out.color != kNoColor) continue;
      const std::size_t range = base_range_[v] + 2 * out.retries;
      out.color = static_cast<Color>(rng_[v].next_below(range));
    }
    Message state;
    state.tag = kTagState;
    for (const OutArc& out : outs(v)) {
      state.data.push_back(static_cast<std::int64_t>(out.arc));
      state.data.push_back(out.color);
      state.data.push_back(out.final ? 1 : 0);
    }
    ctx.broadcast(std::move(state));
    if (done_[v] != 0) announced_[v] = 1;
  }

  bool arc_points_at_me(NodeId v, ArcId arc) const {
    const auto* first = rev_.data() + out_offsets_[v];
    const auto* last = rev_.data() + out_offsets_[v + 1];
    return std::find(first, last, arc) != last;
  }

  /// Round 1: apply the four distance-1 witness rules and veto losers.
  ///
  ///   (1) shared tail            — both owned by one node
  ///   (2) tx while rx            — my out-arc vs an arc toward me
  ///   (3) shared head            — two arcs toward me
  ///   (4) hidden terminal at me  — an arc toward me vs another neighbor's
  ///                                outgoing arc
  ///
  /// Every Definition-2 conflict pair has some node for which one of these
  /// rules fires, so pairwise distance-1 observation is complete.
  void detect_and_veto(NodeId v, SyncContext& ctx,
                       std::span<const Message> inbox) {
    std::vector<SeenArc>& seen = shards_[ctx.shard()].seen;
    seen.clear();
    for (const OutArc& out : outs(v))
      seen.push_back(SeenArc{out.arc, out.color, out.final, v, false});
    for (const auto& [arc, remembered] : remembered_[v])
      seen.push_back(remembered);
    for (const Message& message : inbox) {
      if (message.tag != kTagState) continue;
      for (std::size_t i = 0; i + 2 < message.data.size(); i += 3) {
        const auto arc = static_cast<ArcId>(message.data[i]);
        if (remembered_[v].count(arc)) continue;  // already listed
        const bool is_final = message.data[i + 2] != 0;
        const SeenArc entry{arc, static_cast<Color>(message.data[i + 1]),
                            is_final, message.from,
                            arc_points_at_me(v, arc)};
        if (is_final) remembered_[v][arc] = entry;
        seen.push_back(entry);
      }
    }

    std::map<NodeId, std::vector<std::int64_t>> vetoes;
    for (std::size_t i = 0; i < seen.size(); ++i) {
      for (std::size_t j = i + 1; j < seen.size(); ++j) {
        const SeenArc& a = seen[i];
        const SeenArc& b = seen[j];
        if (a.color != b.color || a.arc == b.arc || a.color == kNoColor)
          continue;
        const bool shared_tail = a.owner == b.owner;
        const bool tx_while_rx = (a.owner == v && b.toward_me) ||
                                 (b.owner == v && a.toward_me);
        const bool shared_head = a.toward_me && b.toward_me;
        const bool hidden =
            (a.toward_me && b.owner != v && b.owner != a.owner) ||
            (b.toward_me && a.owner != v && a.owner != b.owner);
        if (!(shared_tail || tx_while_rx || shared_head || hidden)) continue;
        FDLSP_REQUIRE(!(a.final && b.final),
                      "two finalized arcs conflict — protocol bug");
        const SeenArc& loser = a.final          ? b
                               : b.final        ? a
                               : a.arc > b.arc  ? a
                                                : b;
        if (loser.owner == v) {
          local_veto(v, loser.arc);
        } else {
          vetoes[loser.owner].push_back(static_cast<std::int64_t>(loser.arc));
        }
      }
    }

    for (auto& [target, arcs] : vetoes) {
      Message message;
      message.tag = kTagVeto;
      message.data = std::move(arcs);
      ctx.send(target, std::move(message));
    }
  }

  /// Round 2: finalize arcs that drew no veto; vetoed arcs redraw next step.
  void finalize(NodeId v, std::span<const Message> inbox) {
    if (done_[v] != 0) return;
    for (const Message& message : inbox) {
      if (message.tag != kTagVeto) continue;
      for (std::int64_t raw : message.data)
        local_veto(v, static_cast<ArcId>(raw));
    }
    bool all_final = true;
    for (OutArc& out : outs(v)) {
      if (out.final) continue;
      if (out.color == kNoColor) {
        all_final = false;
        continue;
      }
      out.final = true;
    }
    done_[v] = all_final ? 1 : 0;
  }

  void local_veto(NodeId v, ArcId arc) {
    for (OutArc& out : outs(v)) {
      if (out.arc == arc && !out.final && out.color != kNoColor) {
        out.color = kNoColor;
        ++out.retries;
      }
    }
  }

  /// Detection buffer owned by one shard: exactly one worker executes a
  /// shard's callbacks, and the buffer is dead between rounds (cleared,
  /// never freed).
  struct ShardScratch {
    std::vector<SeenArc> seen;
  };

  const ArcView view_;
  std::vector<Rng> rng_;
  // Tentative out-arc slots and their reverse arcs, CSR-packed by node.
  std::vector<std::size_t> out_offsets_;
  std::vector<OutArc> out_;
  std::vector<ArcId> rev_;
  std::vector<std::map<ArcId, SeenArc>> remembered_;
  std::vector<std::size_t> base_range_;
  std::vector<char> done_;
  std::vector<char> announced_;
  std::size_t prepared_ = 0;  // shard count scratch is sized for

  std::vector<ShardScratch> shards_;  // indexed by ctx.shard()
};

}  // namespace

ScheduleResult run_randomized(const Graph& graph,
                              const RandomizedOptions& options) {
  RandomizedSet set(graph, options.seed);
  const FaultSpec spec = options.faults != nullptr ? *options.faults
                                                   : FaultSpec{};
  std::size_t round_budget = options.max_rounds;
  std::optional<SyncEngine> engine;
  if (options.reliable) {
    // Hardened nodes need the per-node wrapper, so the set rides behind
    // one SetNodeProgram adapter per node.
    std::vector<std::unique_ptr<SyncProgram>> programs;
    programs.reserve(graph.num_nodes());
    for (NodeId v = 0; v < graph.num_nodes(); ++v)
      programs.push_back(std::make_unique<ReliableSyncProgram>(
          std::make_unique<SetNodeProgram>(set, v), spec, options.transport));
    round_budget *=
        ReliableSyncProgram::round_dilation(spec, options.transport);
    engine.emplace(graph, std::move(programs));
  } else {
    engine.emplace(graph, set);
  }
  engine->set_trace(options.trace);
  engine->set_thread_pool(options.pool);
  engine->set_shards(options.shards);
  std::optional<FaultPlan> plan;
  if (options.faults != nullptr && options.faults->any()) {
    plan.emplace(spec, graph);
    engine->set_fault_plan(&*plan);
  }
  if (options.reliable) {
    // On this path the engine prepares the program set it drives — the
    // vector of reliable wrappers — so the underlying SoA set must be
    // prepared by hand, with the engine's own shard decision, after every
    // seam is configured (trace/faults force planned_shards() == 1).
    set.prepare_shards(engine->planned_shards());
  }
  const SyncMetrics metrics = engine->run(round_budget);
  // See dist_mis.cpp: crash/churn plans and unhardened lossy runs report
  // their outcome for the fault oracles to judge instead of aborting.
  const bool relaxed =
      plan.has_value() &&
      (spec.crash_fraction > 0.0 || spec.link_down_fraction > 0.0 ||
       !options.reliable);
  if (!relaxed)
    FDLSP_REQUIRE(metrics.completed,
                  "randomized algorithm did not converge in round budget");

  ScheduleResult result;
  result.completed = metrics.completed;
  result.faults = metrics.faults;
  result.coloring = ArcColoring(set.num_arcs());
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    if (options.reliable) {
      const auto& wrapper =
          static_cast<const ReliableSyncProgram&>(engine->program(v));
      result.transport.merge(wrapper.transport_stats());
      result.suspected.insert(result.suspected.end(),
                              wrapper.suspected_peers().begin(),
                              wrapper.suspected_peers().end());
    }
    for (const OutArc& out : set.out_arcs(v)) {
      if (!relaxed)
        FDLSP_REQUIRE(out.final, "unfinalized arc after completion");
      if (out.final) result.coloring.set(out.arc, out.color);
    }
  }
  if (!relaxed)
    FDLSP_REQUIRE(result.coloring.complete(),
                  "randomized left arcs uncolored");
  std::sort(result.suspected.begin(), result.suspected.end());
  result.suspected.erase(
      std::unique(result.suspected.begin(), result.suspected.end()),
      result.suspected.end());
  result.num_slots = result.coloring.num_colors_used();
  result.rounds = metrics.rounds;
  result.messages = metrics.messages;
  return result;
}

}  // namespace fdlsp
