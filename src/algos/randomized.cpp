#include "algos/randomized.h"

// remembered_finals_ and the per-round veto batches are *iterated* to build
// outgoing messages, so their key order is part of the wire format: a
// std::map's sorted order is exactly the determinism contract needed here,
// and a flat hash (which exposes no iteration) cannot express it.
// fdlsp-lint: allow(ordered-in-protocol-state)

#include <algorithm>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "graph/arcs.h"
#include "sim/reliable.h"
#include "sim/sync_engine.h"
#include "support/check.h"
#include "support/rng.h"

namespace fdlsp {

namespace {

constexpr std::int32_t kTagState = 1;  // data: [arc, color, final, ...]
constexpr std::int32_t kTagVeto = 2;   // data: [arc, ...]

/// One tentative out-arc assignment.
struct OutArc {
  ArcId arc;
  Color color = kNoColor;
  bool final = false;
  std::size_t retries = 0;
};

/// A neighbor arc as seen by this node during detection.
struct SeenArc {
  ArcId arc;
  Color color;
  bool final;
  NodeId owner;    ///< tail — where a veto goes
  bool toward_me;  ///< head == self (an in-arc of this node)
};

class RandomizedProgram final : public SyncProgram {
 public:
  RandomizedProgram(const ArcView& view, NodeId self, std::uint64_t seed)
      : self_(self), rng_(seed) {
    for (ArcId a : view.out_arcs(self)) {
      out_arcs_.push_back(OutArc{a});
      reverse_of_mine_.push_back(ArcView::reverse(a));
    }
    base_range_ = 2 * view.graph().degree(self) + 2;
    done_ = out_arcs_.empty();
    announced_ = done_;
  }

  /// A node is finished once everything is final AND the final state has
  /// been broadcast — neighbors remember it for their later detections.
  bool finished() const override { return done_ && announced_; }
  bool ready_for_phase_advance() const override { return true; }
  void on_phase(std::size_t) override {}

  void on_round(SyncContext& ctx, std::span<const Message> inbox) override {
    // Steps are aligned by the *global* round counter so relays and
    // late-finishing nodes never desynchronize.
    switch (ctx.round() % 3) {
      case 0:
        draw_and_broadcast(ctx);
        break;
      case 1:
        detect_and_veto(ctx, inbox);
        break;
      case 2:
        finalize(inbox);
        break;
    }
  }

  const std::vector<OutArc>& out_arcs() const { return out_arcs_; }

 private:
  /// Round 0: redraw vetoed colors, broadcast the out-arc state. After the
  /// node is done it broadcasts exactly once more (the final announcement)
  /// and then goes quiet.
  void draw_and_broadcast(SyncContext& ctx) {
    if (done_ && announced_) return;
    for (OutArc& out : out_arcs_) {
      if (out.final || out.color != kNoColor) continue;
      const std::size_t range = base_range_ + 2 * out.retries;
      out.color = static_cast<Color>(rng_.next_below(range));
    }
    Message state;
    state.tag = kTagState;
    for (const OutArc& out : out_arcs_) {
      state.data.push_back(static_cast<std::int64_t>(out.arc));
      state.data.push_back(out.color);
      state.data.push_back(out.final ? 1 : 0);
    }
    ctx.broadcast(std::move(state));
    if (done_) announced_ = true;
  }

  bool arc_points_at_me(ArcId arc) const {
    return std::find(reverse_of_mine_.begin(), reverse_of_mine_.end(), arc) !=
           reverse_of_mine_.end();
  }

  /// Round 1: apply the four distance-1 witness rules and veto losers.
  ///
  ///   (1) shared tail            — both owned by one node
  ///   (2) tx while rx            — my out-arc vs an arc toward me
  ///   (3) shared head            — two arcs toward me
  ///   (4) hidden terminal at me  — an arc toward me vs another neighbor's
  ///                                outgoing arc
  ///
  /// Every Definition-2 conflict pair has some node for which one of these
  /// rules fires, so pairwise distance-1 observation is complete.
  void detect_and_veto(SyncContext& ctx, std::span<const Message> inbox) {
    std::vector<SeenArc> seen;
    for (const OutArc& out : out_arcs_)
      seen.push_back(SeenArc{out.arc, out.color, out.final, self_, false});
    for (const auto& [arc, remembered] : remembered_finals_)
      seen.push_back(remembered);
    for (const Message& message : inbox) {
      if (message.tag != kTagState) continue;
      for (std::size_t i = 0; i + 2 < message.data.size(); i += 3) {
        const auto arc = static_cast<ArcId>(message.data[i]);
        if (remembered_finals_.count(arc)) continue;  // already listed
        const bool is_final = message.data[i + 2] != 0;
        const SeenArc entry{arc, static_cast<Color>(message.data[i + 1]),
                            is_final, message.from, arc_points_at_me(arc)};
        if (is_final) remembered_finals_[arc] = entry;
        seen.push_back(entry);
      }
    }

    std::map<NodeId, std::vector<std::int64_t>> vetoes;
    for (std::size_t i = 0; i < seen.size(); ++i) {
      for (std::size_t j = i + 1; j < seen.size(); ++j) {
        const SeenArc& a = seen[i];
        const SeenArc& b = seen[j];
        if (a.color != b.color || a.arc == b.arc || a.color == kNoColor)
          continue;
        const bool shared_tail = a.owner == b.owner;
        const bool tx_while_rx = (a.owner == self_ && b.toward_me) ||
                                 (b.owner == self_ && a.toward_me);
        const bool shared_head = a.toward_me && b.toward_me;
        const bool hidden =
            (a.toward_me && b.owner != self_ && b.owner != a.owner) ||
            (b.toward_me && a.owner != self_ && a.owner != b.owner);
        if (!(shared_tail || tx_while_rx || shared_head || hidden)) continue;
        FDLSP_REQUIRE(!(a.final && b.final),
                      "two finalized arcs conflict — protocol bug");
        const SeenArc& loser = a.final          ? b
                               : b.final        ? a
                               : a.arc > b.arc  ? a
                                                : b;
        if (loser.owner == self_) {
          local_veto(loser.arc);
        } else {
          vetoes[loser.owner].push_back(static_cast<std::int64_t>(loser.arc));
        }
      }
    }

    for (auto& [target, arcs] : vetoes) {
      Message message;
      message.tag = kTagVeto;
      message.data = std::move(arcs);
      ctx.send(target, std::move(message));
    }
  }

  /// Round 2: finalize arcs that drew no veto; vetoed arcs redraw next step.
  void finalize(std::span<const Message> inbox) {
    if (done_) return;
    for (const Message& message : inbox) {
      if (message.tag != kTagVeto) continue;
      for (std::int64_t raw : message.data)
        local_veto(static_cast<ArcId>(raw));
    }
    bool all_final = true;
    for (OutArc& out : out_arcs_) {
      if (out.final) continue;
      if (out.color == kNoColor) {
        all_final = false;
        continue;
      }
      out.final = true;
    }
    done_ = all_final;
  }

  void local_veto(ArcId arc) {
    for (OutArc& out : out_arcs_) {
      if (out.arc == arc && !out.final && out.color != kNoColor) {
        out.color = kNoColor;
        ++out.retries;
      }
    }
  }

  NodeId self_;
  Rng rng_;
  std::vector<OutArc> out_arcs_;
  std::vector<ArcId> reverse_of_mine_;
  std::map<ArcId, SeenArc> remembered_finals_;
  std::size_t base_range_ = 2;
  bool done_ = false;
  bool announced_ = false;
};

}  // namespace

ScheduleResult run_randomized(const Graph& graph,
                              const RandomizedOptions& options) {
  const ArcView view(graph);
  std::vector<std::unique_ptr<SyncProgram>> programs;
  programs.reserve(graph.num_nodes());
  Rng seeder(options.seed);
  for (NodeId v = 0; v < graph.num_nodes(); ++v)
    programs.push_back(std::make_unique<RandomizedProgram>(view, v, seeder()));
  const FaultSpec spec = options.faults != nullptr ? *options.faults
                                                   : FaultSpec{};
  std::size_t round_budget = options.max_rounds;
  if (options.reliable) {
    for (auto& program : programs)
      program = std::make_unique<ReliableSyncProgram>(std::move(program),
                                                      spec,
                                                      options.transport);
    round_budget *=
        ReliableSyncProgram::round_dilation(spec, options.transport);
  }
  SyncEngine engine(graph, std::move(programs));
  engine.set_trace(options.trace);
  engine.set_thread_pool(options.pool);
  engine.set_shards(options.shards);
  std::optional<FaultPlan> plan;
  if (options.faults != nullptr && options.faults->any()) {
    plan.emplace(spec, graph);
    engine.set_fault_plan(&*plan);
  }
  const SyncMetrics metrics = engine.run(round_budget);
  // See dist_mis.cpp: crash/churn plans and unhardened lossy runs report
  // their outcome for the fault oracles to judge instead of aborting.
  const bool relaxed =
      plan.has_value() &&
      (spec.crash_fraction > 0.0 || spec.link_down_fraction > 0.0 ||
       !options.reliable);
  if (!relaxed)
    FDLSP_REQUIRE(metrics.completed,
                  "randomized algorithm did not converge in round budget");

  ScheduleResult result;
  result.completed = metrics.completed;
  result.faults = metrics.faults;
  result.coloring = ArcColoring(view.num_arcs());
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    const SyncProgram& top = engine.program(v);
    if (options.reliable) {
      const auto& wrapper = static_cast<const ReliableSyncProgram&>(top);
      result.transport.merge(wrapper.transport_stats());
      result.suspected.insert(result.suspected.end(),
                              wrapper.suspected_peers().begin(),
                              wrapper.suspected_peers().end());
    }
    const auto& program =
        options.reliable
            ? static_cast<const RandomizedProgram&>(
                  static_cast<const ReliableSyncProgram&>(top).inner())
            : static_cast<const RandomizedProgram&>(top);
    for (const OutArc& out : program.out_arcs()) {
      if (!relaxed)
        FDLSP_REQUIRE(out.final, "unfinalized arc after completion");
      if (out.final) result.coloring.set(out.arc, out.color);
    }
  }
  if (!relaxed)
    FDLSP_REQUIRE(result.coloring.complete(),
                  "randomized left arcs uncolored");
  std::sort(result.suspected.begin(), result.suspected.end());
  result.suspected.erase(
      std::unique(result.suspected.begin(), result.suspected.end()),
      result.suspected.end());
  result.num_slots = result.coloring.num_colors_used();
  result.rounds = metrics.rounds;
  result.messages = metrics.messages;
  return result;
}

}  // namespace fdlsp
