// DistMIS — the paper's synchronous Δ-approximation algorithm (Algorithm 1).
//
// Structure per outer iteration (engine phases alternate):
//   LUBY phase   : Luby's randomized MIS among the still-active nodes of the
//                  residual graph. Each Luby step takes 2 rounds (value
//                  broadcast, join broadcast).
//   COMPETE phase: the members of the MIS S compete in fixed-length blocks of
//                  2D+1 rounds. In each block every remaining S-node floods a
//                  random value to distance D (D rounds), local maxima join
//                  the secondary independent set S', color their arcs with
//                  distance-2 greedy rules, and flood the assignment back
//                  (D rounds). Losers recompete in the next block; the union
//                  of per-block winner sets partitions S into independent
//                  sets, exactly the role of the secondary MIS sequence.
// Winners retire; the engine's barrier advances phases when every node has
// decided / finished, modeling the convergecast termination detection real
// deployments use (see sync_engine.h).
//
// Variants (Sections 5 and 6):
//   kGbg     — D = 3: S' nodes are pairwise >= 4 hops apart and color ALL
//              incident arcs (Theorem 3).
//   kGeneral — D = 2: S' nodes are pairwise >= 3 hops apart and color only
//              their OUTGOING arcs, which is conflict-free by the Section 6
//              argument and reduces competition traffic by a Δ factor.
//
// Knowledge model: topology within distance 2 is static initial knowledge
// (the paper calls it the minimum required for any feasible FDLSP coloring);
// all dynamic state — random draws, MIS status, colors — travels in messages
// and is charged to the round/message counters.
#pragma once

#include <cstdint>

#include "algos/scheduler.h"
#include "graph/graph.h"
#include "sim/delay.h"

namespace fdlsp {

class AllocAudit;
class SimTrace;
class ThreadPool;
struct AsyncMetrics;

/// Which DistMIS variant to run.
enum class DistMisVariant {
  kGbg,      ///< distance-3 competition, color all incident arcs
  kGeneral,  ///< distance-2 competition, color outgoing arcs only
};

/// Tunables for a DistMIS run.
struct DistMisOptions {
  DistMisVariant variant = DistMisVariant::kGbg;
  std::uint64_t seed = 1;
  std::size_t max_rounds = 1'000'000;
  /// Optional event observer (see sim/trace.h); not owned, may be null.
  SimTrace* trace = nullptr;
  /// Optional fault model (see sim/fault.h); not owned, may be null. With
  /// crash/churn armed, or with losses and `reliable` off, the result's
  /// coloring may be partial and `completed` false instead of aborting.
  const FaultSpec* faults = nullptr;
  /// Harden every node with the ack/retransmit wrapper (sim/reliable.h);
  /// preserves the feasibility guarantee under lossy plans at a round cost
  /// of ReliableSyncProgram::round_dilation(*faults) per algorithm round.
  bool reliable = false;
  /// Transport generation for the reliable wrapper (see sim/reliable.h);
  /// meaningless without `reliable`.
  TransportTuning transport = TransportTuning::kAdaptive;
  /// Shard engine state and rounds across this pool (see
  /// SyncEngine::set_thread_pool; byte-identical to the serial run for any
  /// thread or shard count). Not owned, may be null. Ignored — serial
  /// fallback — when trace/faults are attached.
  ThreadPool* pool = nullptr;
  /// Explicit shard count for pooled runs (SyncEngine::set_shards); 0
  /// derives the count from the pool size. Meaningless without `pool`.
  std::size_t shards = 0;
  /// Optional per-round allocation auditor (support/alloc_audit.h); not
  /// owned, may be null. Unlike trace/faults it never forces the serial
  /// path — it only samples process-global allocation counters.
  AllocAudit* audit = nullptr;
};

/// Runs DistMIS over the synchronous engine and returns the schedule plus
/// measured rounds/messages. The result's coloring is complete and feasible
/// for any input graph (enforced by tests; the run aborts via contract_error
/// on internal protocol violations).
ScheduleResult run_dist_mis(const Graph& graph, const DistMisOptions& options);

/// Tunables for an asynchronous DistMIS run (see run_dist_mis_async).
struct AsyncDistMisOptions {
  DistMisVariant variant = DistMisVariant::kGbg;
  std::uint64_t seed = 1;
  /// Delay model of the underlying asynchronous engine (sim/delay.h).
  DelayModel delay_model = DelayModel::kUnit;
  std::uint64_t delay_seed = 1;
  std::size_t max_rounds = 1'000'000;
  /// Event budget of the asynchronous engine. Frames, acks, retransmits and
  /// poll timers all count, so this is much larger than the round budget.
  std::size_t max_messages = 200'000'000;
  /// Optional fault model (see sim/fault.h); not owned, may be null. The
  /// synchronizer needs reliable in-order frame delivery, so lossy plans
  /// additionally require `reliable`; crash/churn plans break lockstep and
  /// are unsupported on this path.
  const FaultSpec* faults = nullptr;
  /// Harden every node with the async ack/retransmit wrapper
  /// (sim/reliable.h), restoring exactly-once FIFO delivery under message
  /// faults.
  bool reliable = false;
  TransportTuning transport = TransportTuning::kAdaptive;
  /// Shard count of the asynchronous engine (AsyncEngine::set_shards; byte-
  /// identical to serial for any value). 0 picks the serial path.
  std::size_t shards = 0;
  /// Optional event observer (sim/trace.h); forces the serial engine path.
  SimTrace* trace = nullptr;
  /// Optional per-event allocation auditor (support/alloc_audit.h).
  AllocAudit* audit = nullptr;
  /// When non-null, receives the asynchronous engine's own metrics (frame
  /// deliveries, timer events, completion time) — the ScheduleResult's
  /// rounds/messages report the *synchronous* metrics, which match
  /// run_dist_mis exactly.
  AsyncMetrics* engine_metrics = nullptr;
};

/// Runs DistMIS on the asynchronous engine behind the α-synchronizer
/// (sim/synchronizer.h). The resulting coloring, slot count, rounds and
/// messages are byte-identical to run_dist_mis with the same variant and
/// seed — for every delay model and shard count — which makes the whole
/// synchronous corpus an oracle for the asynchronous engine.
ScheduleResult run_dist_mis_async(const Graph& graph,
                                  const AsyncDistMisOptions& options);

}  // namespace fdlsp
