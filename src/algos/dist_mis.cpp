#include "algos/dist_mis.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "coloring/conflict.h"
#include "graph/arcs.h"
#include "sim/reliable.h"
#include "sim/sync_engine.h"
#include "support/check.h"
#include "support/epoch_marks.h"
#include "support/flat_hash.h"
#include "support/rng.h"

namespace fdlsp {

namespace {

// Message tags of the DistMIS protocol.
constexpr std::int32_t kTagMisValue = 1;  // data: [value]
constexpr std::int32_t kTagMisJoin = 2;   // data: []
constexpr std::int32_t kTagCompValue = 3; // data: [origin, block, value, ttl]
constexpr std::int32_t kTagCompWin = 4;   // data: [origin, block, ttl,
                                          //        arc0, color0, arc1, ...]

enum class LubyState { kUndecided, kInSet, kDominated };

class DistMisProgram final : public SyncProgram {
 public:
  /// `max_degree` is the graph's Δ — global static knowledge, like the
  /// seed: the paper's algorithms assume it for the slot bound, and here it
  /// sizes scratch buffers so steady-state rounds allocate nothing.
  DistMisProgram(const ArcView& view, NodeId self, DistMisVariant variant,
                 std::uint64_t seed, std::size_t max_degree)
      : view_(&view),
        self_(self),
        variant_(variant),
        flood_radius_(variant == DistMisVariant::kGbg ? 3 : 2),
        rng_(seed) {
    if (view_->graph().degree(self_) == 0) retired_ = true;
    // Win-time work is pre-sized at construction so the one win() this node
    // ever performs — which can land in any round — stays allocation-free:
    // the arc list is hoisted out of win(), and the win flood's payload
    // (3 header words + 2 per colored arc) is spilled once, here.
    arcs_to_color_ = variant_ == DistMisVariant::kGbg
                         ? view_->incident_arcs(self_)
                         : view_->out_arcs(self_);
    assignments_.reserve(arcs_to_color_.size());
    win_scratch_.data.reserve(3 + 2 * arcs_to_color_.size());
    // The largest flood this node can ever relay is a win flood from a
    // degree-Δ origin: 3 header words + 2 per incident arc (≤ 2Δ arcs).
    relay_scratch_.data.reserve(3 + 4 * max_degree);
    round_values_.reserve(view_->graph().degree(self_));
    // Win floods teach this node the colors of arcs incident to winners
    // within the flood radius; sizing the table to a ball-volume estimate
    // (O(Δ²) arcs) up front avoids rehash bursts in late compete phases,
    // which would otherwise be the only steady-state allocations left.
    known_colors_.reserve(4 * max_degree * max_degree);
  }

  bool finished() const override { return retired_; }

  bool ready_for_phase_advance() const override {
    if (retired_) return true;
    if (in_luby_phase_) return luby_state_ != LubyState::kUndecided;
    // Compete phase: S members must finish; everyone else just relays.
    return luby_state_ != LubyState::kInSet;
  }

  void on_phase(std::size_t new_phase) override {
    rounds_in_phase_ = 0;
    in_luby_phase_ = (new_phase % 2 == 0);
    if (retired_) return;
    if (in_luby_phase_) {
      luby_state_ = LubyState::kUndecided;
    }
    round_values_.clear();
    rivals_.clear();
    // Flood dedup keys are dead across the barrier: the (origin, block)
    // pair of a flood is unique to one compete phase (a node competes in at
    // most one phase — it retires when it wins, and the phase only advances
    // once every member has), and the barrier requires zero messages in
    // flight. Dropping them caps seen_ at its single-phase high-water mark
    // (clear() keeps the table storage), so the monotone key stream cannot
    // force table doublings arbitrarily late into the run.
    seen_.clear();
  }

  void on_round(SyncContext& ctx, std::span<const Message> inbox) override {
    round_values_.clear();
    for (const Message& message : inbox) process(ctx, message);
    if (!retired_) {
      if (in_luby_phase_) {
        luby_step(ctx);
      } else if (luby_state_ == LubyState::kInSet) {
        compete_step(ctx);
      }
    }
    ++rounds_in_phase_;
  }

  /// Arc colors this node assigned (collected by the driver).
  const std::vector<std::pair<ArcId, Color>>& assignments() const {
    return assignments_;
  }

 private:
  void process(SyncContext& ctx, const Message& message) {
    switch (message.tag) {
      case kTagMisValue:
        round_values_.push_back(
            {message.data[0], static_cast<std::int64_t>(message.from)});
        break;
      case kTagMisJoin:
        if (luby_state_ == LubyState::kUndecided)
          luby_state_ = LubyState::kDominated;
        break;
      case kTagCompValue: {
        const auto origin = static_cast<NodeId>(message.data[0]);
        const auto block = static_cast<std::uint64_t>(message.data[1]);
        if (!mark_seen(message.tag, origin, block)) break;
        if (!retired_ && luby_state_ == LubyState::kInSet &&
            block == own_block_ && origin != self_) {
          rivals_.push_back(
              {message.data[2], static_cast<std::int64_t>(origin)});
        }
        forward(ctx, message);
        break;
      }
      case kTagCompWin: {
        const auto origin = static_cast<NodeId>(message.data[0]);
        const auto block = static_cast<std::uint64_t>(message.data[1]);
        if (!mark_seen(message.tag, origin, block)) break;
        for (std::size_t i = 3; i + 1 < message.data.size(); i += 2) {
          known_colors_[static_cast<ArcId>(message.data[i])] =
              static_cast<Color>(message.data[i + 1]);
        }
        forward(ctx, message);
        break;
      }
      default:
        FDLSP_REQUIRE(false, "unknown message tag");
    }
  }

  /// Relays a flooded message with a decremented TTL. The relay goes
  /// through a member scratch and the copying broadcast overload, so a
  /// warmed node relays even spilled win floods with zero allocations.
  void forward(SyncContext& ctx, const Message& message) {
    // kCompValue layout: [origin, block, value, ttl];
    // kCompWin layout:   [origin, block, ttl, ...].
    const std::size_t ttl_index = message.tag == kTagCompValue ? 3 : 2;
    if (message.data[ttl_index] <= 1) return;
    relay_scratch_ = message;  // copy-assign: scratch capacity is reused
    relay_scratch_.data[ttl_index] = message.data[ttl_index] - 1;
    ctx.broadcast(relay_scratch_);
  }

  /// Competition priority: degree-major, random-minor. High-degree nodes
  /// win early and color first — the same heuristic the DFS algorithm's
  /// max-degree token rule uses, and the reason both match the paper's
  /// slot counts (a random priority costs ~10-15% more slots).
  std::int64_t draw_priority() {
    const auto degree =
        static_cast<std::uint64_t>(view_->graph().degree(self_));
    return static_cast<std::int64_t>((degree << 40) | (rng_() >> 25));
  }

  /// One round of Luby's MIS: even offsets broadcast values, odd offsets
  /// decide on local maxima.
  void luby_step(SyncContext& ctx) {
    if (luby_state_ != LubyState::kUndecided) return;
    if (rounds_in_phase_ % 2 == 0) {
      luby_value_ = draw_priority();
      Message message;
      message.tag = kTagMisValue;
      message.data = {luby_value_};
      // Lvalue broadcast = the engine's copying path: payloads land in
      // recycled inbox slots without evicting their spilled capacity.
      ctx.broadcast(message);
    } else {
      const std::pair<std::int64_t, std::int64_t> mine{
          luby_value_, static_cast<std::int64_t>(self_)};
      const bool is_max = std::all_of(
          round_values_.begin(), round_values_.end(),
          [&](const auto& other) { return mine > other; });
      if (is_max) {
        luby_state_ = LubyState::kInSet;
        Message message;
        message.tag = kTagMisJoin;
        ctx.broadcast(message);
      }
    }
  }

  /// One round of the competition phase (block length 2D+1).
  void compete_step(SyncContext& ctx) {
    const std::size_t block_length = 2 * flood_radius_ + 1;
    const std::size_t offset = rounds_in_phase_ % block_length;
    if (offset == 0) {
      own_block_ = rounds_in_phase_ / block_length;
      comp_value_ = draw_priority();
      rivals_.clear();
      Message message;
      message.tag = kTagCompValue;
      message.data = {static_cast<std::int64_t>(self_),
                      static_cast<std::int64_t>(own_block_), comp_value_,
                      static_cast<std::int64_t>(flood_radius_)};
      mark_seen(kTagCompValue, self_, own_block_);
      ctx.broadcast(message);
    } else if (offset == flood_radius_) {
      const std::pair<std::int64_t, std::int64_t> mine{
          comp_value_, static_cast<std::int64_t>(self_)};
      const bool is_max =
          std::all_of(rivals_.begin(), rivals_.end(),
                      [&](const auto& other) { return mine > other; });
      if (is_max) win(ctx);
    }
  }

  /// Joins S': greedily colors this node's arcs with distance-2 knowledge,
  /// retires, and floods the assignment.
  void win(SyncContext& ctx) {
    Message& message = win_scratch_;  // pre-sized at construction
    message.tag = kTagCompWin;
    message.data.clear();
    message.data.push_back(static_cast<std::int64_t>(self_));
    message.data.push_back(static_cast<std::int64_t>(own_block_));
    message.data.push_back(static_cast<std::int64_t>(flood_radius_));
    for (ArcId a : arcs_to_color_) {
      if (known_colors_.contains(a)) continue;  // colored by a neighbor
      const Color c = smallest_known_feasible(a);
      known_colors_[a] = c;
      assignments_.emplace_back(a, c);
      message.data.push_back(static_cast<std::int64_t>(a));
      message.data.push_back(static_cast<std::int64_t>(c));
    }
    mark_seen(kTagCompWin, self_, own_block_);
    ctx.broadcast(message);
    retired_ = true;
  }

  /// Smallest color not used by any known-colored conflicting arc. The
  /// conflict enumeration stays on the fly (see coloring/conflict_index.h on
  /// why node programs do not prebuild); the used-set is an epoch-stamped
  /// sweep instead of a per-call vector + sort + unique.
  Color smallest_known_feasible(ArcId a) {
    used_colors_.begin();
    for_each_conflicting_arc(*view_, a, [&](ArcId b) {
      const Color* color = known_colors_.find(b);
      if (color != nullptr)
        used_colors_.mark(static_cast<std::size_t>(*color));
    });
    return static_cast<Color>(used_colors_.first_unmarked());
  }

  /// Returns true the first time a (tag, origin, block) flood is seen.
  bool mark_seen(std::int32_t tag, NodeId origin, std::uint64_t block) {
    const std::uint64_t key = (static_cast<std::uint64_t>(origin) << 34) |
                              (block << 2) |
                              static_cast<std::uint64_t>(tag & 3);
    return seen_.insert(key);
  }

  const ArcView* view_;
  NodeId self_;
  DistMisVariant variant_;
  std::size_t flood_radius_;
  Rng rng_;

  bool retired_ = false;
  bool in_luby_phase_ = true;
  std::size_t rounds_in_phase_ = 0;

  LubyState luby_state_ = LubyState::kUndecided;
  std::int64_t luby_value_ = 0;
  std::vector<std::pair<std::int64_t, std::int64_t>> round_values_;

  std::uint64_t own_block_ = 0;
  std::int64_t comp_value_ = 0;
  std::vector<std::pair<std::int64_t, std::int64_t>> rivals_;

  // Point-access only (no observed ordering): flat hashes keep the
  // per-message cost allocation-free — see support/flat_hash.h.
  FlatHashMap<ArcId, Color> known_colors_;
  std::vector<std::pair<ArcId, Color>> assignments_;
  FlatHashSet<std::uint64_t> seen_;
  EpochMarks used_colors_;  // scratch of smallest_known_feasible
  std::vector<ArcId> arcs_to_color_;  // fixed at construction
  Message relay_scratch_;  // recycled flood-relay buffer (see forward)
  Message win_scratch_;    // recycled win-flood buffer (see win)
};

}  // namespace

ScheduleResult run_dist_mis(const Graph& graph,
                            const DistMisOptions& options) {
  const ArcView view(graph);
  std::vector<std::unique_ptr<SyncProgram>> programs;
  programs.reserve(graph.num_nodes());
  std::size_t max_degree = 0;
  for (NodeId v = 0; v < graph.num_nodes(); ++v)
    max_degree = std::max<std::size_t>(max_degree, graph.degree(v));
  Rng seeder(options.seed);
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    programs.push_back(std::make_unique<DistMisProgram>(
        view, v, options.variant, seeder(), max_degree));
  }
  const FaultSpec spec = options.faults != nullptr ? *options.faults
                                                  : FaultSpec{};
  std::size_t round_budget = options.max_rounds;
  if (options.reliable) {
    for (auto& program : programs)
      program = std::make_unique<ReliableSyncProgram>(std::move(program),
                                                      spec);
    round_budget *= ReliableSyncProgram::round_dilation(spec);
  }
  SyncEngine engine(graph, std::move(programs));
  engine.set_trace(options.trace);
  engine.set_thread_pool(options.pool);
  engine.set_alloc_audit(options.audit);
  std::optional<FaultPlan> plan;
  if (options.faults != nullptr && options.faults->any()) {
    plan.emplace(spec, graph);
    engine.set_fault_plan(&*plan);
  }
  const SyncMetrics metrics = engine.run(round_budget);
  // Crashed nodes cannot color their arcs, and lossy channels without the
  // reliable wrapper void the algorithm's knowledge guarantees — such runs
  // report what happened instead of aborting, and the fault oracles judge
  // the outcome.
  const bool relaxed =
      plan.has_value() &&
      (spec.crash_fraction > 0.0 || spec.link_down_fraction > 0.0 ||
       !options.reliable);
  if (!relaxed)
    FDLSP_REQUIRE(metrics.completed,
                  "DistMIS did not complete in round budget");

  ScheduleResult result;
  result.completed = metrics.completed;
  result.faults = metrics.faults;
  result.coloring = ArcColoring(view.num_arcs());
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    const SyncProgram& top = engine.program(v);
    const auto& program =
        options.reliable
            ? static_cast<const DistMisProgram&>(
                  static_cast<const ReliableSyncProgram&>(top).inner())
            : static_cast<const DistMisProgram&>(top);
    for (const auto& [arc, color] : program.assignments()) {
      if (!relaxed)
        FDLSP_REQUIRE(!result.coloring.is_colored(arc),
                      "arc colored by two nodes");
      result.coloring.set(arc, color);
    }
  }
  if (!relaxed)
    FDLSP_REQUIRE(result.coloring.complete(), "DistMIS left arcs uncolored");
  result.num_slots = result.coloring.num_colors_used();
  result.rounds = metrics.rounds;
  result.messages = metrics.messages;
  return result;
}

}  // namespace fdlsp
