#include "algos/dist_mis.h"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "coloring/conflict.h"
#include "graph/arcs.h"
#include "sim/async_engine.h"
#include "sim/reliable.h"
#include "sim/shard.h"
#include "sim/sync_engine.h"
#include "sim/synchronizer.h"
#include "support/check.h"
#include "support/epoch_marks.h"
#include "support/flat_hash.h"
#include "support/rng.h"

namespace fdlsp {

namespace {

// Message tags of the DistMIS protocol.
constexpr std::int32_t kTagMisValue = 1;  // data: [value]
constexpr std::int32_t kTagMisJoin = 2;   // data: []
constexpr std::int32_t kTagCompValue = 3; // data: [origin, block, value, ttl]
constexpr std::int32_t kTagCompWin = 4;   // data: [origin, block, ttl,
                                          //        arc0, color0, arc1, ...]

enum class LubyState : std::uint8_t { kUndecided, kInSet, kDominated };

/// The whole DistMIS node population in structure-of-arrays form
/// (DESIGN.md §14). The old per-node DistMisProgram kept every node's state
/// in its own heap object — pointer-chasing per callback, and per-node hash
/// tables scattered across the heap. Here the hot per-node scalars live in
/// parallel arrays indexed by node id, so a shard's round walks dense
/// memory, and the heavyweight tables (learned colors, greedy scratch,
/// relay buffers) are kept *per shard*, indexed by ctx.shard(): one worker
/// drives one shard, so shard scratch needs no synchronization, and the
/// learned-color table for a whole shard is one flat probe array instead of
/// thousands of small ones.
class DistMisSet final : public SyncProgramSet {
 public:
  DistMisSet(const Graph& graph, DistMisVariant variant, std::uint64_t seed)
      : view_(graph),
        variant_(variant),
        flood_radius_(variant == DistMisVariant::kGbg ? 3 : 2),
        max_degree_(graph.max_degree()) {
    const std::size_t n = graph.num_nodes();
    // Per-node streams drawn from one seeded sequence, in node order — the
    // same seeding the per-node-program layout used, so serial results are
    // unchanged by the SoA refactor.
    Rng seeder(seed);
    rng_.reserve(n);
    for (std::size_t v = 0; v < n; ++v) rng_.emplace_back(seeder());
    retired_.assign(n, 0);
    in_luby_phase_.assign(n, 1);
    rounds_in_phase_.assign(n, 0);
    luby_state_.assign(n, LubyState::kUndecided);
    luby_value_.assign(n, 0);
    own_block_.assign(n, 0);
    comp_value_.assign(n, 0);
    rivals_.resize(n);
    seen_.resize(n);
    // Arcs each node colors on a win, as a CSR (kGbg: all incident arcs,
    // out then in; kGeneral: outgoing only) — fixed at construction so the
    // one win() a node ever performs stays allocation-free.
    arc_offsets_.assign(n + 1, 0);
    for (NodeId v = 0; v < n; ++v) {
      const std::size_t degree = graph.degree(v);
      arc_offsets_[v + 1] =
          arc_offsets_[v] +
          (variant_ == DistMisVariant::kGbg ? 2 * degree : degree);
      if (degree == 0) retired_[v] = 1;
    }
    arcs_.resize(arc_offsets_[n]);
    for (NodeId v = 0; v < n; ++v) {
      std::size_t pos = arc_offsets_[v];
      for (const NeighborEntry& entry : graph.neighbors(v))
        arcs_[pos++] = view_.arc_from(entry.edge, v);
      if (variant_ == DistMisVariant::kGbg) {
        for (const NeighborEntry& entry : graph.neighbors(v))
          arcs_[pos++] = ArcView::reverse(view_.arc_from(entry.edge, v));
      }
    }
  }

  /// Sizes per-shard scratch. A set prepared once must not be re-sharded:
  /// learned colors live in per-shard tables, and a new partition would
  /// orphan them — the engine calls this with the same count it runs with,
  /// and every run of one set uses one engine configuration.
  void prepare_shards(std::size_t shards) override {
    FDLSP_REQUIRE(shards > 0, "shard count must be positive");
    if (shards == prepared_) return;
    FDLSP_REQUIRE(prepared_ == 0,
                  "DistMIS state cannot be re-sharded once prepared");
    prepared_ = shards;
    shards_.resize(shards);
    const std::size_t n = size();
    const ShardPlan plan{n, shards};
    const std::size_t m = view_.graph().num_edges();
    const std::size_t avg_ceil = n > 0 ? (2 * m + n - 1) / n : 0;
    for (std::size_t s = 0; s < shards; ++s) {
      ShardScratch& scratch = shards_[s];
      const std::size_t lo = plan.lo(s);
      const std::size_t hi = plan.hi(s);
      // Win floods teach a node the colors of arcs colored by winners
      // within the flood radius. Every node eventually wins and every arc
      // is colored exactly once, so node v ends up knowing roughly
      // |ball_D(v)| * (2m/n) arcs. The per-node envelope below is the
      // geometric-density form of that (ball_3 of a UDG holds ~9*(deg+1)
      // nodes), capped by the O(Δ²) ball bound for dense graphs; an
      // under-estimate only costs a mid-run table growth, never
      // correctness. Sizing up front keeps rehash bursts out of the
      // steady-state rounds (the zero-alloc tail of engine_alloc_test).
      std::size_t expected = 0;
      for (std::size_t v = lo; v < hi; ++v) {
        const std::size_t degree =
            view_.graph().degree(static_cast<NodeId>(v));
        expected += std::min(4 * max_degree_ * max_degree_,
                             9 * (degree + 1) * (avg_ceil + 1));
      }
      scratch.known_colors.reserve(expected);
      scratch.assignments.reserve(arc_offsets_[hi] - arc_offsets_[lo]);
      scratch.round_values.reserve(max_degree_);
      // The largest flood relayed or emitted is a win flood from a
      // degree-Δ origin: 3 header words + 2 per incident arc (≤ 2Δ arcs).
      scratch.relay_scratch.data.reserve(3 + 4 * max_degree_);
      scratch.win_scratch.data.reserve(3 + 4 * max_degree_);
    }
  }

  std::size_t size() const override { return retired_.size(); }

  bool finished(NodeId v) const override { return retired_[v] != 0; }

  bool ready_for_phase_advance(NodeId v) const override {
    if (retired_[v] != 0) return true;
    if (in_luby_phase_[v] != 0) return luby_state_[v] != LubyState::kUndecided;
    // Compete phase: S members must finish; everyone else just relays.
    return luby_state_[v] != LubyState::kInSet;
  }

  void on_phase(NodeId v, std::size_t new_phase) override {
    rounds_in_phase_[v] = 0;
    in_luby_phase_[v] = (new_phase % 2 == 0) ? 1 : 0;
    if (retired_[v] != 0) return;
    if (in_luby_phase_[v] != 0) {
      luby_state_[v] = LubyState::kUndecided;
    }
    rivals_[v].clear();
    // Flood dedup keys are dead across the barrier: the (origin, block)
    // pair of a flood is unique to one compete phase (a node competes in at
    // most one phase — it retires when it wins, and the phase only advances
    // once every member has), and the barrier requires zero messages in
    // flight. Dropping them caps seen_ at its single-phase high-water mark
    // (clear() keeps the table storage), so the monotone key stream cannot
    // force table doublings arbitrarily late into the run.
    seen_[v].clear();
  }

  // fdlsp-lint: hot — per-round steady-state path, no allocator traffic
  void on_round(NodeId v, SyncContext& ctx,
                std::span<const Message> inbox) override {
    ShardScratch& scratch = shards_[ctx.shard()];
    scratch.round_values.clear();
    for (const Message& message : inbox) process(v, scratch, ctx, message);
    if (retired_[v] == 0) {
      if (in_luby_phase_[v] != 0) {
        luby_step(v, scratch, ctx);
      } else if (luby_state_[v] == LubyState::kInSet) {
        compete_step(v, scratch, ctx);
      }
    }
    ++rounds_in_phase_[v];
  }

  /// Shard count prepare_shards() was called with (0 before any run).
  std::size_t prepared_shards() const noexcept { return prepared_; }

  /// Arc colors assigned by the nodes of shard s (collected by the driver).
  const std::vector<std::pair<ArcId, Color>>& assignments(
      std::size_t s) const {
    return shards_[s].assignments;
  }

  std::size_t num_arcs() const noexcept { return view_.num_arcs(); }

 private:
  /// Scratch owned by one shard: exactly one worker executes a shard's
  /// callbacks, so nothing here needs synchronization, and the serial
  /// engine reports shard 0 for everyone.
  struct ShardScratch {
    // Colors learned from win floods, keyed (node << 32) | arc: the
    // knowledge is still strictly per node — a node only "knows" colors
    // from floods that reached *it* — but one flat table per shard replaces
    // one per node.
    FlatHashMap<std::uint64_t, Color> known_colors;
    std::vector<std::pair<ArcId, Color>> assignments;  // by this shard's wins
    // Same-round scratch (cleared at every on_round entry).
    std::vector<std::pair<std::int64_t, std::int64_t>> round_values;
    EpochMarks used_colors;  // scratch of smallest_known_feasible
    Message relay_scratch;   // recycled flood-relay buffer (see forward)
    Message win_scratch;     // recycled win-flood buffer (see win)
  };

  static std::uint64_t color_key(NodeId v, ArcId a) noexcept {
    return (static_cast<std::uint64_t>(v) << 32) | a;
  }

  // fdlsp-lint: hot — per-message steady-state path, no allocator traffic
  void process(NodeId v, ShardScratch& scratch, SyncContext& ctx,
               const Message& message) {
    switch (message.tag) {
      case kTagMisValue:
        scratch.round_values.push_back(
            {message.data[0], static_cast<std::int64_t>(message.from)});
        break;
      case kTagMisJoin:
        if (luby_state_[v] == LubyState::kUndecided)
          luby_state_[v] = LubyState::kDominated;
        break;
      case kTagCompValue: {
        const auto origin = static_cast<NodeId>(message.data[0]);
        const auto block = static_cast<std::uint64_t>(message.data[1]);
        if (!mark_seen(v, message.tag, origin, block)) break;
        if (retired_[v] == 0 && luby_state_[v] == LubyState::kInSet &&
            block == own_block_[v] && origin != v) {
          rivals_[v].push_back(
              {message.data[2], static_cast<std::int64_t>(origin)});
        }
        forward(scratch, ctx, message);
        break;
      }
      case kTagCompWin: {
        const auto origin = static_cast<NodeId>(message.data[0]);
        const auto block = static_cast<std::uint64_t>(message.data[1]);
        if (!mark_seen(v, message.tag, origin, block)) break;
        for (std::size_t i = 3; i + 1 < message.data.size(); i += 2) {
          scratch.known_colors[color_key(
              v, static_cast<ArcId>(message.data[i]))] =
              static_cast<Color>(message.data[i + 1]);
        }
        forward(scratch, ctx, message);
        break;
      }
      default:
        FDLSP_REQUIRE(false, "unknown message tag");
    }
  }

  /// Relays a flooded message with a decremented TTL. The relay goes
  /// through a shard scratch and the copying broadcast overload, so a
  /// warmed shard relays even spilled win floods with zero allocations.
  // fdlsp-lint: hot — per-message steady-state path, no allocator traffic
  void forward(ShardScratch& scratch, SyncContext& ctx,
               const Message& message) {
    // kCompValue layout: [origin, block, value, ttl];
    // kCompWin layout:   [origin, block, ttl, ...].
    const std::size_t ttl_index = message.tag == kTagCompValue ? 3 : 2;
    if (message.data[ttl_index] <= 1) return;
    Message& relay = scratch.relay_scratch;
    relay = message;  // copy-assign: scratch capacity is reused
    relay.data[ttl_index] = message.data[ttl_index] - 1;
    ctx.broadcast(relay);
  }

  /// Competition priority: degree-major, random-minor. High-degree nodes
  /// win early and color first — the same heuristic the DFS algorithm's
  /// max-degree token rule uses, and the reason both match the paper's
  /// slot counts (a random priority costs ~10-15% more slots).
  std::int64_t draw_priority(NodeId v) {
    const auto degree = static_cast<std::uint64_t>(view_.graph().degree(v));
    return static_cast<std::int64_t>((degree << 40) | (rng_[v]() >> 25));
  }

  /// One round of Luby's MIS: even offsets broadcast values, odd offsets
  /// decide on local maxima.
  void luby_step(NodeId v, ShardScratch& scratch, SyncContext& ctx) {
    if (luby_state_[v] != LubyState::kUndecided) return;
    if (rounds_in_phase_[v] % 2 == 0) {
      luby_value_[v] = draw_priority(v);
      Message message;
      message.tag = kTagMisValue;
      message.data = {luby_value_[v]};
      // Lvalue broadcast = the engine's copying path: payloads land in
      // recycled inbox slots without evicting their spilled capacity.
      ctx.broadcast(message);
    } else {
      const std::pair<std::int64_t, std::int64_t> mine{
          luby_value_[v], static_cast<std::int64_t>(v)};
      const bool is_max = std::all_of(
          scratch.round_values.begin(), scratch.round_values.end(),
          [&](const auto& other) { return mine > other; });
      if (is_max) {
        luby_state_[v] = LubyState::kInSet;
        Message message;
        message.tag = kTagMisJoin;
        ctx.broadcast(message);
      }
    }
  }

  /// One round of the competition phase (block length 2D+1).
  void compete_step(NodeId v, ShardScratch& scratch, SyncContext& ctx) {
    const std::size_t block_length = 2 * flood_radius_ + 1;
    const std::size_t offset = rounds_in_phase_[v] % block_length;
    if (offset == 0) {
      own_block_[v] = rounds_in_phase_[v] / block_length;
      comp_value_[v] = draw_priority(v);
      rivals_[v].clear();
      Message message;
      message.tag = kTagCompValue;
      message.data = {static_cast<std::int64_t>(v),
                      static_cast<std::int64_t>(own_block_[v]), comp_value_[v],
                      static_cast<std::int64_t>(flood_radius_)};
      mark_seen(v, kTagCompValue, v, own_block_[v]);
      ctx.broadcast(message);
    } else if (offset == flood_radius_) {
      const std::pair<std::int64_t, std::int64_t> mine{
          comp_value_[v], static_cast<std::int64_t>(v)};
      const bool is_max =
          std::all_of(rivals_[v].begin(), rivals_[v].end(),
                      [&](const auto& other) { return mine > other; });
      if (is_max) win(v, scratch, ctx);
    }
  }

  /// Joins S': greedily colors this node's arcs with distance-2 knowledge,
  /// retires, and floods the assignment.
  void win(NodeId v, ShardScratch& scratch, SyncContext& ctx) {
    Message& message = scratch.win_scratch;  // pre-sized by prepare_shards
    message.tag = kTagCompWin;
    message.data.clear();
    message.data.push_back(static_cast<std::int64_t>(v));
    message.data.push_back(static_cast<std::int64_t>(own_block_[v]));
    message.data.push_back(static_cast<std::int64_t>(flood_radius_));
    const std::size_t arcs_end = arc_offsets_[v + 1];
    for (std::size_t i = arc_offsets_[v]; i < arcs_end; ++i) {
      const ArcId a = arcs_[i];
      if (scratch.known_colors.contains(color_key(v, a)))
        continue;  // colored by a neighbor
      const Color c = smallest_known_feasible(v, scratch, a);
      scratch.known_colors[color_key(v, a)] = c;
      scratch.assignments.emplace_back(a, c);
      message.data.push_back(static_cast<std::int64_t>(a));
      message.data.push_back(static_cast<std::int64_t>(c));
    }
    mark_seen(v, kTagCompWin, v, own_block_[v]);
    ctx.broadcast(message);
    retired_[v] = 1;
  }

  /// Smallest color not used by any known-colored conflicting arc. The
  /// conflict enumeration stays on the fly (see coloring/conflict_index.h on
  /// why node programs do not prebuild); the used-set is an epoch-stamped
  /// sweep instead of a per-call vector + sort + unique.
  Color smallest_known_feasible(NodeId v, ShardScratch& scratch, ArcId a) {
    scratch.used_colors.begin();
    for_each_conflicting_arc(view_, a, [&](ArcId b) {
      const Color* color = scratch.known_colors.find(color_key(v, b));
      if (color != nullptr)
        scratch.used_colors.mark(static_cast<std::size_t>(*color));
    });
    return static_cast<Color>(scratch.used_colors.first_unmarked());
  }

  /// Returns true the first time node v sees a (tag, origin, block) flood.
  // fdlsp-lint: hot — per-message steady-state path, no allocator traffic
  bool mark_seen(NodeId v, std::int32_t tag, NodeId origin,
                 std::uint64_t block) {
    const std::uint64_t key = (static_cast<std::uint64_t>(origin) << 34) |
                              (block << 2) |
                              static_cast<std::uint64_t>(tag & 3);
    return seen_[v].insert(key);
  }

  const ArcView view_;
  DistMisVariant variant_;
  std::size_t flood_radius_;
  std::size_t max_degree_;
  std::size_t prepared_ = 0;  // shard count scratch is sized for

  // --- per-node state, parallel arrays indexed by node id ---
  std::vector<Rng> rng_;
  std::vector<char> retired_;
  std::vector<char> in_luby_phase_;
  std::vector<std::size_t> rounds_in_phase_;
  std::vector<LubyState> luby_state_;
  std::vector<std::int64_t> luby_value_;
  std::vector<std::uint64_t> own_block_;
  std::vector<std::int64_t> comp_value_;
  // Rival lists persist across the rounds of one compete block and dedup
  // sets across one phase, so both stay per node (cleared, never freed).
  std::vector<std::vector<std::pair<std::int64_t, std::int64_t>>> rivals_;
  std::vector<FlatHashSet<std::uint64_t>> seen_;
  // CSR of the arcs each node colors on a win (fixed at construction).
  std::vector<std::size_t> arc_offsets_;
  std::vector<ArcId> arcs_;

  std::vector<ShardScratch> shards_;  // indexed by ctx.shard()
};

}  // namespace

ScheduleResult run_dist_mis(const Graph& graph,
                            const DistMisOptions& options) {
  DistMisSet set(graph, options.variant, options.seed);
  const FaultSpec spec = options.faults != nullptr ? *options.faults
                                                  : FaultSpec{};
  std::size_t round_budget = options.max_rounds;
  std::optional<SyncEngine> engine;
  if (options.reliable) {
    // Hardened nodes need the per-node wrapper, so the set rides behind
    // one SetNodeProgram adapter per node.
    std::vector<std::unique_ptr<SyncProgram>> programs;
    programs.reserve(graph.num_nodes());
    for (NodeId v = 0; v < graph.num_nodes(); ++v)
      programs.push_back(std::make_unique<ReliableSyncProgram>(
          std::make_unique<SetNodeProgram>(set, v), spec, options.transport));
    round_budget *=
        ReliableSyncProgram::round_dilation(spec, options.transport);
    engine.emplace(graph, std::move(programs));
  } else {
    engine.emplace(graph, set);
  }
  engine->set_trace(options.trace);
  engine->set_thread_pool(options.pool);
  engine->set_alloc_audit(options.audit);
  engine->set_shards(options.shards);
  std::optional<FaultPlan> plan;
  if (options.faults != nullptr && options.faults->any()) {
    plan.emplace(spec, graph);
    engine->set_fault_plan(&*plan);
  }
  if (options.reliable) {
    // On this path the engine prepares the program set it drives — the
    // vector of reliable wrappers — so the underlying SoA set must be
    // prepared by hand, with the engine's own shard decision. This has to
    // happen after every seam is configured: an attached fault plan or
    // trace forces planned_shards() == 1.
    set.prepare_shards(engine->planned_shards());
  }
  const SyncMetrics metrics = engine->run(round_budget);
  // Crashed nodes cannot color their arcs, and lossy channels without the
  // reliable wrapper void the algorithm's knowledge guarantees — such runs
  // report what happened instead of aborting, and the fault oracles judge
  // the outcome.
  const bool relaxed =
      plan.has_value() &&
      (spec.crash_fraction > 0.0 || spec.link_down_fraction > 0.0 ||
       !options.reliable);
  if (!relaxed)
    FDLSP_REQUIRE(metrics.completed,
                  "DistMIS did not complete in round budget");

  ScheduleResult result;
  result.completed = metrics.completed;
  result.faults = metrics.faults;
  result.coloring = ArcColoring(set.num_arcs());
  for (std::size_t s = 0; s < set.prepared_shards(); ++s) {
    for (const auto& [arc, color] : set.assignments(s)) {
      if (!relaxed)
        FDLSP_REQUIRE(!result.coloring.is_colored(arc),
                      "arc colored by two nodes");
      result.coloring.set(arc, color);
    }
  }
  if (!relaxed)
    FDLSP_REQUIRE(result.coloring.complete(), "DistMIS left arcs uncolored");
  result.num_slots = result.coloring.num_colors_used();
  result.rounds = metrics.rounds;
  result.messages = metrics.messages;
  if (options.reliable) {
    for (NodeId v = 0; v < graph.num_nodes(); ++v) {
      const auto& wrapper =
          static_cast<const ReliableSyncProgram&>(engine->program(v));
      result.transport.merge(wrapper.transport_stats());
      result.suspected.insert(result.suspected.end(),
                              wrapper.suspected_peers().begin(),
                              wrapper.suspected_peers().end());
    }
    std::sort(result.suspected.begin(), result.suspected.end());
    result.suspected.erase(
        std::unique(result.suspected.begin(), result.suspected.end()),
        result.suspected.end());
  }
  return result;
}

ScheduleResult run_dist_mis_async(const Graph& graph,
                                  const AsyncDistMisOptions& options) {
  DistMisSet set(graph, options.variant, options.seed);
  // External contexts always report shard 0 — the synchronizer's lockstep
  // serializes node callbacks regardless of the engine's shard count.
  set.prepare_shards(1);
  RoundSynchronizer coordinator(set, options.max_rounds);
  const FaultSpec spec =
      options.faults != nullptr ? *options.faults : FaultSpec{};
  std::vector<std::unique_ptr<AsyncProgram>> programs;
  programs.reserve(graph.num_nodes());
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    auto node =
        std::make_unique<SyncOverAsyncProgram>(graph, set, v, coordinator);
    if (options.reliable)
      programs.push_back(std::make_unique<ReliableAsyncProgram>(
          std::move(node), spec, options.transport));
    else
      programs.push_back(std::move(node));
  }
  AsyncEngine engine(
      graph, std::move(programs),
      make_delay_schedule(options.delay_model, options.delay_seed));
  engine.set_trace(options.trace);
  engine.set_alloc_audit(options.audit);
  engine.set_shards(options.shards);
  std::optional<FaultPlan> plan;
  if (options.faults != nullptr && options.faults->any()) {
    plan.emplace(spec, graph);
    engine.set_fault_plan(&*plan);
  }
  const AsyncMetrics async_metrics = engine.run(options.max_messages);
  if (options.engine_metrics != nullptr)
    *options.engine_metrics = async_metrics;
  const SyncMetrics metrics = coordinator.metrics();

  // Message faults without the reliable wrapper lose frames and stall the
  // lockstep — such runs report what happened instead of aborting.
  const bool relaxed = plan.has_value() && !options.reliable;
  if (!relaxed) {
    FDLSP_REQUIRE(async_metrics.completed && metrics.completed,
                  "async DistMIS did not complete in budget");
    FDLSP_REQUIRE(async_metrics.fifo_ok, "async engine violated channel FIFO");
  }

  ScheduleResult result;
  result.completed = async_metrics.completed && metrics.completed;
  result.faults = async_metrics.faults;
  result.coloring = ArcColoring(set.num_arcs());
  for (const auto& [arc, color] : set.assignments(0)) {
    if (!relaxed)
      FDLSP_REQUIRE(!result.coloring.is_colored(arc),
                    "arc colored by two nodes");
    result.coloring.set(arc, color);
  }
  if (!relaxed)
    FDLSP_REQUIRE(result.coloring.complete(), "DistMIS left arcs uncolored");
  result.num_slots = result.coloring.num_colors_used();
  result.rounds = metrics.rounds;
  result.messages = metrics.messages;
  result.async_time = async_metrics.completion_time;
  result.stall_diagnosis = async_metrics.stall_diagnosis;
  if (options.reliable) {
    for (NodeId v = 0; v < graph.num_nodes(); ++v) {
      const auto& wrapper =
          static_cast<const ReliableAsyncProgram&>(engine.program(v));
      result.transport.merge(wrapper.transport_stats());
      result.suspected.insert(result.suspected.end(),
                              wrapper.suspected_peers().begin(),
                              wrapper.suspected_peers().end());
    }
    std::sort(result.suspected.begin(), result.suspected.end());
    result.suspected.erase(
        std::unique(result.suspected.begin(), result.suspected.end()),
        result.suspected.end());
  }
  return result;
}

}  // namespace fdlsp
