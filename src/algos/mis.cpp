#include "algos/mis.h"

#include <algorithm>
#include <numeric>

#include "support/check.h"

namespace fdlsp {

std::vector<NodeId> greedy_mis(const Graph& graph,
                               const std::vector<NodeId>& order) {
  std::vector<bool> blocked(graph.num_nodes(), false);
  std::vector<NodeId> set;
  for (NodeId v : order) {
    FDLSP_REQUIRE(v < graph.num_nodes(), "node out of range");
    if (blocked[v]) continue;
    set.push_back(v);
    blocked[v] = true;
    for (const NeighborEntry& entry : graph.neighbors(v))
      blocked[entry.to] = true;
  }
  std::sort(set.begin(), set.end());
  return set;
}

std::vector<NodeId> greedy_mis(const Graph& graph) {
  std::vector<NodeId> order(graph.num_nodes());
  std::iota(order.begin(), order.end(), 0u);
  return greedy_mis(graph, order);
}

std::vector<NodeId> random_mis(const Graph& graph, Rng& rng) {
  std::vector<NodeId> order(graph.num_nodes());
  std::iota(order.begin(), order.end(), 0u);
  rng.shuffle(order);
  return greedy_mis(graph, order);
}

bool is_independent_set(const Graph& graph, const std::vector<NodeId>& set) {
  std::vector<bool> member(graph.num_nodes(), false);
  for (NodeId v : set) {
    FDLSP_REQUIRE(v < graph.num_nodes(), "node out of range");
    member[v] = true;
  }
  for (NodeId v : set)
    for (const NeighborEntry& entry : graph.neighbors(v))
      if (member[entry.to]) return false;
  return true;
}

bool is_maximal_independent_set(const Graph& graph,
                                const std::vector<NodeId>& set,
                                const std::vector<NodeId>& universe) {
  if (!is_independent_set(graph, set)) return false;
  std::vector<bool> member(graph.num_nodes(), false);
  for (NodeId v : set) member[v] = true;
  std::vector<bool> in_universe(graph.num_nodes(), false);
  for (NodeId v : universe) in_universe[v] = true;
  for (NodeId v : set)
    if (!in_universe[v]) return false;  // set must live inside the universe
  for (NodeId v : universe) {
    if (member[v]) continue;
    bool dominated = false;
    for (const NeighborEntry& entry : graph.neighbors(v)) {
      if (member[entry.to] && in_universe[entry.to]) {
        dominated = true;
        break;
      }
    }
    if (!dominated) return false;
  }
  return true;
}

bool is_maximal_independent_set(const Graph& graph,
                                const std::vector<NodeId>& set) {
  std::vector<NodeId> universe(graph.num_nodes());
  std::iota(universe.begin(), universe.end(), 0u);
  return is_maximal_independent_set(graph, set, universe);
}

}  // namespace fdlsp
