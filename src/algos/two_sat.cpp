#include "algos/two_sat.h"

#include <algorithm>

#include "support/check.h"

namespace fdlsp {

TwoSat::TwoSat(std::size_t num_variables)
    : n_(num_variables), implications_(2 * num_variables) {}

void TwoSat::add_clause(std::size_t a, bool value_a, std::size_t b,
                        bool value_b) {
  FDLSP_REQUIRE(a < n_ && b < n_, "variable out of range");
  const std::size_t la = literal(a, value_a);
  const std::size_t lb = literal(b, value_b);
  // (la OR lb)  ==  (¬la -> lb) AND (¬lb -> la)
  implications_[negation(la)].push_back(lb);
  implications_[negation(lb)].push_back(la);
}

void TwoSat::add_unit(std::size_t a, bool value_a) {
  add_clause(a, value_a, a, value_a);
}

std::optional<std::vector<bool>> TwoSat::solve() const {
  // Iterative Tarjan SCC over the implication graph.
  const std::size_t size = 2 * n_;
  constexpr std::size_t kUnset = static_cast<std::size_t>(-1);
  std::vector<std::size_t> index(size, kUnset);
  std::vector<std::size_t> lowlink(size, 0);
  std::vector<std::size_t> component(size, kUnset);
  std::vector<bool> on_stack(size, false);
  std::vector<std::size_t> stack;
  std::size_t next_index = 0;
  std::size_t next_component = 0;

  struct Frame {
    std::size_t vertex;
    std::size_t edge;  // next out-edge to explore
  };
  std::vector<Frame> call_stack;

  for (std::size_t root = 0; root < size; ++root) {
    if (index[root] != kUnset) continue;
    call_stack.push_back(Frame{root, 0});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;

    while (!call_stack.empty()) {
      Frame& frame = call_stack.back();
      const std::size_t v = frame.vertex;
      if (frame.edge < implications_[v].size()) {
        const std::size_t w = implications_[v][frame.edge++];
        if (index[w] == kUnset) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          call_stack.push_back(Frame{w, 0});
        } else if (on_stack[w]) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
      } else {
        if (lowlink[v] == index[v]) {
          for (;;) {
            const std::size_t w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            component[w] = next_component;
            if (w == v) break;
          }
          ++next_component;
        }
        call_stack.pop_back();
        if (!call_stack.empty()) {
          const std::size_t parent = call_stack.back().vertex;
          lowlink[parent] = std::min(lowlink[parent], lowlink[v]);
        }
      }
    }
  }

  std::vector<bool> assignment(n_);
  for (std::size_t v = 0; v < n_; ++v) {
    const std::size_t pos = component[literal(v, true)];
    const std::size_t neg = component[literal(v, false)];
    if (pos == neg) return std::nullopt;
    // Tarjan numbers components in reverse topological order, so the literal
    // whose component comes *earlier* (smaller id) is implied-by more things
    // and should be chosen.
    assignment[v] = pos < neg;
  }
  return assignment;
}

}  // namespace fdlsp
