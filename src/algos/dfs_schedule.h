// DFS-based asynchronous FDLSP algorithm (Algorithm 2 of the paper).
//
// A designated root starts a depth-first token traversal. The token holder
// gathers the distance-2 color assignment from its neighborhood (REQ ->
// sub-request relay -> aggregated REP), greedily colors its still-uncolored
// incident arcs, broadcasts the assignment (acknowledged, which serializes
// knowledge with the token), and forwards the token to its unvisited
// neighbor of maximum degree; when none remains the token returns to the
// parent. Nodes learn a neighbor was visited when that neighbor requests
// colors, exactly as the paper prescribes.
//
// Knowledge gathering note: a REP aggregates the replier's own incident
// colors plus its neighbors' (one extra relay hop). The paper's narrative
// ("ask neighbors for their distance-2 edge color assignment") assumes the
// same information content; the relay makes the message complexity
// O(sum of squared degrees) = O(mΔ) rather than the paper's stated O(m),
// the price of a provably sufficient knowledge set (see DESIGN.md).
#pragma once

#include <cstdint>

#include "algos/scheduler.h"
#include "graph/graph.h"
#include "graph/types.h"
#include "sim/async_engine.h"

namespace fdlsp {

/// Tunables for a DFS run.
struct DfsOptions {
  /// Root of the traversal; kNoNode selects the maximum-degree node.
  NodeId root = kNoNode;
  DelayModel delay_model = DelayModel::kUnit;
  std::uint64_t seed = 1;
  std::size_t max_messages = 50'000'000;
  /// Optional event observer (see sim/trace.h); not owned, may be null.
  SimTrace* trace = nullptr;
  /// Optional fault model (see sim/fault.h); not owned, may be null. With
  /// crash/churn armed, or with losses and `reliable` off, the result's
  /// coloring may be partial and `completed` false instead of aborting —
  /// an unhardened DFS loses its token to the first dropped message.
  const FaultSpec* faults = nullptr;
  /// Harden every node with the ack/retransmit wrapper (sim/reliable.h).
  bool reliable = false;
  /// Transport generation for the reliable wrapper (see sim/reliable.h);
  /// meaningless without `reliable`.
  TransportTuning transport = TransportTuning::kAdaptive;
  /// Shard count of the asynchronous engine (AsyncEngine::set_shards; byte-
  /// identical to serial for any value). 0 picks the serial path.
  std::size_t shards = 0;
  /// Optional per-event allocation auditor (support/alloc_audit.h); not
  /// owned, may be null. Does not force the serial path.
  AllocAudit* audit = nullptr;
  /// When non-null, receives the asynchronous engine's own metrics (frame
  /// deliveries, timer events, completion time).
  AsyncMetrics* engine_metrics = nullptr;
};

/// Runs the asynchronous DFS algorithm. Requires a connected graph (the
/// token must be able to reach every node); isolated single nodes are
/// allowed when n == 1.
ScheduleResult run_dfs_schedule(const Graph& graph,
                                const DfsOptions& options = {});

}  // namespace fdlsp
