#include "algos/dmgc.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "algos/misra_gries.h"
#include "algos/two_sat.h"
#include "coloring/conflict_index.h"
#include "graph/arcs.h"
#include "support/check.h"

namespace fdlsp {

namespace {

/// Orientation constraint context for one color class (a matching).
struct ClassOrientation {
  std::vector<EdgeId> edges;       // members of the class
  std::vector<bool> orientation;   // chosen: true = stored (u -> v) direction
};

/// Arc for edge e under orientation flag (true = stored direction u -> v).
ArcId oriented_arc(EdgeId e, bool stored_direction) {
  return static_cast<ArcId>((e << 1) | (stored_direction ? 0u : 1u));
}

/// Tries to orient all edges of one class via 2-SAT, shedding the most
/// constrained edges on failure. Shed edges are appended to `leftover`.
/// Conflict queries go through the prebuilt index (same predicate as
/// arcs_conflict, probed against the CSR row).
ClassOrientation orient_class(const ConflictIndex& index,
                              std::vector<EdgeId> members,
                              std::vector<EdgeId>& leftover) {
  for (;;) {
    TwoSat sat(members.size());
    std::vector<std::size_t> constraint_count(members.size(), 0);
    bool trivially_infeasible = false;
    std::size_t worst = 0;

    for (std::size_t i = 0; i < members.size() && !trivially_infeasible; ++i) {
      for (std::size_t j = i + 1; j < members.size(); ++j) {
        // Matching edges share no endpoints; only hidden-terminal conflicts
        // between close pairs constrain orientations.
        std::size_t forbidden = 0;
        for (int oi = 0; oi < 2; ++oi) {
          for (int oj = 0; oj < 2; ++oj) {
            const ArcId a = oriented_arc(members[i], oi == 0);
            const ArcId b = oriented_arc(members[j], oj == 0);
            if (!index.conflict(a, b)) continue;
            ++forbidden;
            // Forbid (x_i == (oi==0)) AND (x_j == (oj==0)).
            sat.add_clause(i, oi != 0, j, oj != 0);
          }
        }
        if (forbidden > 0) {
          ++constraint_count[i];
          ++constraint_count[j];
        }
        if (forbidden == 4) trivially_infeasible = true;
      }
    }

    if (!trivially_infeasible) {
      if (auto assignment = sat.solve()) {
        ClassOrientation result;
        result.edges = std::move(members);
        result.orientation = std::move(*assignment);
        return result;
      }
    }

    // Injection: shed the edge involved in the most constrained pairs.
    FDLSP_REQUIRE(!members.empty(), "cannot orient an empty class");
    worst = static_cast<std::size_t>(
        std::max_element(constraint_count.begin(), constraint_count.end()) -
        constraint_count.begin());
    leftover.push_back(members[worst]);
    members.erase(members.begin() + static_cast<std::ptrdiff_t>(worst));
  }
}

}  // namespace

ScheduleResult run_dmgc(const Graph& graph, DmgcStats* stats) {
  const ArcView view(graph);
  ScheduleResult result;
  result.coloring = ArcColoring(view.num_arcs());
  DmgcStats local;

  if (graph.num_edges() == 0) {
    if (stats) *stats = local;
    return result;
  }

  // Phase 1: (Δ+1) edge coloring.
  MisraGriesStats mg_stats;
  const std::vector<Color> edge_colors =
      misra_gries_edge_coloring(graph, &mg_stats);
  local.edge_colors = mg_stats.colors_used;

  std::size_t num_classes = 0;
  for (Color c : edge_colors)
    num_classes =
        std::max(num_classes, static_cast<std::size_t>(c) + 1);

  std::vector<std::vector<EdgeId>> classes(num_classes);
  for (EdgeId e = 0; e < graph.num_edges(); ++e)
    classes[static_cast<std::size_t>(edge_colors[e])].push_back(e);

  // Phase 2: orient every class; forward orientation of class i -> slot i,
  // mirrored orientation -> slot num_classes + i. The whole phase queries
  // the distance-2 relation, so materialize it once. (D-MGC's round model
  // below is analytic; the index is a centralized-simulation speedup and
  // does not touch the message accounting.)
  const ConflictIndex index(view);
  std::vector<EdgeId> leftover;
  for (std::size_t i = 0; i < num_classes; ++i) {
    const ClassOrientation oriented =
        orient_class(index, std::move(classes[i]), leftover);
    for (std::size_t k = 0; k < oriented.edges.size(); ++k) {
      const ArcId forward = oriented_arc(oriented.edges[k],
                                         oriented.orientation[k]);
      result.coloring.set(forward, static_cast<Color>(i));
      result.coloring.set(ArcView::reverse(forward),
                          static_cast<Color>(num_classes + i));
    }
  }
  local.injected_edges = leftover.size();

  // Injected edges: both arcs greedily recolored (extra slots as needed).
  ConflictScratch scratch(index);
  for (EdgeId e : leftover) {
    for (ArcId a : {oriented_arc(e, true), oriented_arc(e, false)}) {
      result.coloring.set(
          a, scratch.smallest_feasible_color(result.coloring, a));
    }
  }

  // Analytic distributed round model (for reporting only): phase 1 costs a
  // round per edge-coloring step plus the inverted cd-path lengths; phase 2
  // costs one DFS over the graph per color class.
  local.estimated_rounds = graph.num_edges() + mg_stats.total_path_length +
                           num_classes * graph.num_nodes();

  result.num_slots = result.coloring.num_colors_used();
  result.rounds = local.estimated_rounds;
  result.messages = 0;
  if (stats) *stats = local;
  return result;
}

}  // namespace fdlsp
