// Sequential maximal-independent-set helpers.
//
// The distributed DistMIS algorithm embeds Luby's MIS in its node programs;
// these sequential counterparts back tests (independence/maximality oracles)
// and centralized tooling.
#pragma once

#include <vector>

#include "graph/graph.h"
#include "graph/types.h"
#include "support/rng.h"

namespace fdlsp {

/// Greedy MIS scanning nodes in the given order; restricted to `eligible`
/// nodes if non-empty masks are provided (others are treated as absent).
std::vector<NodeId> greedy_mis(const Graph& graph,
                               const std::vector<NodeId>& order);

/// Greedy MIS in ascending node order.
std::vector<NodeId> greedy_mis(const Graph& graph);

/// Greedy MIS in uniformly random order.
std::vector<NodeId> random_mis(const Graph& graph, Rng& rng);

/// True iff `set` is independent in `graph`.
bool is_independent_set(const Graph& graph, const std::vector<NodeId>& set);

/// True iff `set` is a *maximal* independent set of the subgraph induced on
/// `universe` (every universe node is in the set or adjacent to a member).
bool is_maximal_independent_set(const Graph& graph,
                                const std::vector<NodeId>& set,
                                const std::vector<NodeId>& universe);

/// True iff `set` is a maximal independent set of the whole graph.
bool is_maximal_independent_set(const Graph& graph,
                                const std::vector<NodeId>& set);

}  // namespace fdlsp
