#include "algos/misra_gries.h"

#include <algorithm>

#include "support/check.h"

namespace fdlsp {

namespace {

/// Mutable coloring state with per-(node, color) edge lookup.
class EdgeColorState {
 public:
  explicit EdgeColorState(const Graph& graph)
      : graph_(graph),
        palette_(graph.max_degree() + 1),
        colors_(graph.num_edges(), kNoColor),
        slot_(graph.num_nodes() * palette_, kNoEdge) {}

  Color color(EdgeId e) const { return colors_[e]; }
  const std::vector<Color>& colors() const { return colors_; }
  std::size_t palette() const { return palette_; }

  /// Edge at `v` colored `c`, or kNoEdge.
  EdgeId edge_at(NodeId v, Color c) const {
    return slot_[v * palette_ + static_cast<std::size_t>(c)];
  }

  bool is_free(NodeId v, Color c) const { return edge_at(v, c) == kNoEdge; }

  /// Smallest color free at v; always exists (degree <= Δ < palette).
  Color smallest_free(NodeId v) const {
    for (Color c = 0; static_cast<std::size_t>(c) < palette_; ++c)
      if (is_free(v, c)) return c;
    FDLSP_REQUIRE(false, "no free color: degree exceeds palette");
    return kNoColor;
  }

  void assign(EdgeId e, Color c) {
    FDLSP_ASSERT(colors_[e] == kNoColor, "edge already colored");
    const Edge& edge = graph_.edge(e);
    FDLSP_ASSERT(is_free(edge.u, c) && is_free(edge.v, c),
                 "color not free at an endpoint");
    colors_[e] = c;
    slot_[edge.u * palette_ + static_cast<std::size_t>(c)] = e;
    slot_[edge.v * palette_ + static_cast<std::size_t>(c)] = e;
  }

  void unassign(EdgeId e) {
    const Color c = colors_[e];
    FDLSP_ASSERT(c != kNoColor, "edge not colored");
    const Edge& edge = graph_.edge(e);
    slot_[edge.u * palette_ + static_cast<std::size_t>(c)] = kNoEdge;
    slot_[edge.v * palette_ + static_cast<std::size_t>(c)] = kNoEdge;
    colors_[e] = kNoColor;
  }

 private:
  const Graph& graph_;
  std::size_t palette_;
  std::vector<Color> colors_;
  std::vector<EdgeId> slot_;  // n * palette lookup
};

}  // namespace

std::vector<Color> misra_gries_edge_coloring(const Graph& graph,
                                             MisraGriesStats* stats) {
  EdgeColorState state(graph);
  MisraGriesStats local_stats;

  for (EdgeId start = 0; start < graph.num_edges(); ++start) {
    if (state.color(start) != kNoColor) continue;
    const NodeId u = graph.edge(start).u;
    const NodeId v = graph.edge(start).v;

    // Maximal fan of u starting at v: each next fan edge's color is free on
    // the previous fan vertex.
    std::vector<NodeId> fan{v};
    std::vector<bool> in_fan(graph.num_nodes(), false);
    in_fan[v] = true;
    for (;;) {
      bool extended = false;
      for (const NeighborEntry& entry : graph.neighbors(u)) {
        if (in_fan[entry.to]) continue;
        const Color ce = state.color(entry.edge);
        if (ce == kNoColor) continue;
        if (state.is_free(fan.back(), ce)) {
          fan.push_back(entry.to);
          in_fan[entry.to] = true;
          extended = true;
          break;
        }
      }
      if (!extended) break;
    }

    const Color c = state.smallest_free(u);
    const Color d = state.smallest_free(fan.back());

    if (c != d && !state.is_free(u, d)) {
      // Invert the cd-path from u: the maximal path starting at u whose
      // edges alternate d, c, d, ... (c is free at u so it starts with d).
      std::vector<EdgeId> path;
      NodeId x = u;
      Color want = d;
      for (;;) {
        const EdgeId e = state.edge_at(x, want);
        if (e == kNoEdge) break;
        path.push_back(e);
        const Edge& edge = graph.edge(e);
        x = edge.u == x ? edge.v : edge.u;
        want = want == d ? c : d;
      }
      // Flip atomically: clear the whole path first, then reassign, so the
      // per-assignment freeness invariant holds at every step.
      std::vector<Color> flipped(path.size());
      for (std::size_t i = 0; i < path.size(); ++i) {
        flipped[i] = state.color(path[i]) == c ? d : c;
        state.unassign(path[i]);
      }
      for (std::size_t i = 0; i < path.size(); ++i)
        state.assign(path[i], flipped[i]);
      ++local_stats.inversions;
      local_stats.total_path_length += path.size();
    }
    FDLSP_ASSERT(state.is_free(u, d), "d must be free at u after inversion");

    // Find the first fan prefix [f0..fj] that is still a fan under the
    // current coloring and whose tip has d free; rotate it and color the
    // tip edge with d. The Misra–Gries invariants guarantee existence.
    std::size_t chosen = fan.size();
    for (std::size_t j = 0; j < fan.size(); ++j) {
      if (!state.is_free(fan[j], d)) continue;
      bool valid = true;
      for (std::size_t i = 1; i <= j; ++i) {
        const EdgeId e = graph.find_edge(u, fan[i]);
        const Color ce = state.color(e);
        if (ce == kNoColor || !state.is_free(fan[i - 1], ce)) {
          valid = false;
          break;
        }
      }
      if (valid) {
        chosen = j;
        break;
      }
    }
    FDLSP_REQUIRE(chosen < fan.size(), "Misra-Gries: no rotatable prefix");

    // Rotate: edge (u, f_i) takes the color of (u, f_{i+1}); tip gets d.
    std::vector<EdgeId> prefix_edges(chosen + 1);
    std::vector<Color> prefix_colors(chosen + 1);
    for (std::size_t i = 0; i <= chosen; ++i) {
      prefix_edges[i] = graph.find_edge(u, fan[i]);
      prefix_colors[i] = state.color(prefix_edges[i]);
    }
    for (std::size_t i = 0; i <= chosen; ++i)
      if (prefix_colors[i] != kNoColor) state.unassign(prefix_edges[i]);
    for (std::size_t i = 0; i < chosen; ++i)
      state.assign(prefix_edges[i], prefix_colors[i + 1]);
    state.assign(prefix_edges[chosen], d);
  }

  // Count distinct colors actually used.
  std::vector<bool> used(state.palette(), false);
  for (Color ce : state.colors())
    used[static_cast<std::size_t>(ce)] = true;
  local_stats.colors_used = static_cast<std::size_t>(
      std::count(used.begin(), used.end(), true));
  if (stats) *stats = local_stats;
  return state.colors();
}

bool is_proper_edge_coloring(const Graph& graph,
                             const std::vector<Color>& colors) {
  if (colors.size() != graph.num_edges()) return false;
  for (Color c : colors)
    if (c == kNoColor) return false;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    std::vector<Color> seen;
    for (const NeighborEntry& entry : graph.neighbors(v))
      seen.push_back(colors[entry.edge]);
    std::sort(seen.begin(), seen.end());
    if (std::adjacent_find(seen.begin(), seen.end()) != seen.end())
      return false;
  }
  return true;
}

}  // namespace fdlsp
