#include "algos/dfs_schedule.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "coloring/conflict.h"
#include "graph/algorithms.h"
#include "graph/arcs.h"
#include "sim/reliable.h"
#include "support/check.h"
#include "support/flat_hash.h"

namespace fdlsp {

namespace {

// Message tags of the DFS protocol.
constexpr std::int32_t kTagDegree = 1;     // data: [degree]
constexpr std::int32_t kTagReq = 2;        // data: []
constexpr std::int32_t kTagSubReq = 3;     // data: []
constexpr std::int32_t kTagSubRep = 4;     // data: [arc, color, ...]
constexpr std::int32_t kTagRep = 5;        // data: [arc, color, ...]
constexpr std::int32_t kTagAssign = 6;     // data: [arc, color, ...]
constexpr std::int32_t kTagAck = 7;        // data: []
constexpr std::int32_t kTagToken = 8;      // data: []
constexpr std::int32_t kTagTokenBack = 9;  // data: []

class DfsProgram final : public AsyncProgram {
 public:
  DfsProgram(const ArcView& view, NodeId self, bool is_root)
      : view_(&view), self_(self), is_root_(is_root) {}

  bool finished() const override { return colored_; }

  void on_start(AsyncContext& ctx) override {
    degree_ = ctx.neighbors().size();
    if (degree_ == 0) {
      // Isolated node: nothing to schedule (only legal when n == 1).
      colored_ = true;
      return;
    }
    Message message;
    message.tag = kTagDegree;
    message.data = {static_cast<std::int64_t>(degree_)};
    ctx.broadcast(std::move(message));
  }

  void on_message(AsyncContext& ctx, Message& message) override {
    switch (message.tag) {
      case kTagDegree:
        neighbor_degree_[message.from] =
            static_cast<std::size_t>(message.data[0]);
        // Start (root) or resume (buffered token) once local degree
        // knowledge is complete — under random delays the token can outrun
        // a slow degree announcement.
        if (neighbor_degree_.size() == degree_ && (is_root_ || token_pending_))
          acquire_token(ctx);
        break;
      case kTagReq:
        handle_req(ctx, message.from);
        break;
      case kTagSubReq:
        send_color_pairs(ctx, message.from, kTagSubRep, own_incident_pairs());
        break;
      case kTagSubRep:
        absorb_pairs(message);
        FDLSP_REQUIRE(pending_subreps_ > 0, "unexpected SubRep");
        collected_pairs_.insert(collected_pairs_.end(), message.data.begin(),
                                message.data.end());
        if (--pending_subreps_ == 0) finish_rep(ctx);
        break;
      case kTagRep:
        absorb_pairs(message);
        FDLSP_REQUIRE(pending_reps_ > 0, "unexpected Rep");
        if (--pending_reps_ == 0) color_and_announce(ctx);
        break;
      case kTagAssign:
        absorb_pairs(message);
        send_color_pairs(ctx, message.from, kTagAck, {});
        break;
      case kTagAck:
        FDLSP_REQUIRE(pending_acks_ > 0, "unexpected Ack");
        if (--pending_acks_ == 0) advance_token(ctx);
        break;
      case kTagToken:
        parent_ = message.from;
        if (neighbor_degree_.size() == degree_) {
          acquire_token(ctx);
        } else {
          token_pending_ = true;
        }
        break;
      case kTagTokenBack:
        advance_token(ctx);
        break;
      default:
        FDLSP_REQUIRE(false, "unknown message tag");
    }
  }

  const std::vector<std::pair<ArcId, Color>>& assignments() const {
    return assignments_;
  }

 private:
  /// Token received (or root start): gather distance-2 colors.
  void acquire_token(AsyncContext& ctx) {
    FDLSP_REQUIRE(!colored_, "token revisited a colored node");
    token_pending_ = false;
    pending_reps_ = degree_;
    Message request;
    request.tag = kTagReq;
    ctx.broadcast(std::move(request));
  }

  /// Neighbor `from` holds the token: mark it visited, gather one relay hop
  /// of colors for it.
  void handle_req(AsyncContext& ctx, NodeId from) {
    visited_[from] = true;
    FDLSP_REQUIRE(rep_target_ == kNoNode, "two concurrent token holders");
    rep_target_ = from;
    collected_pairs_ = own_incident_pairs();
    pending_subreps_ = degree_ - 1;
    if (pending_subreps_ == 0) {
      finish_rep(ctx);
      return;
    }
    for (const NeighborEntry& entry : ctx.neighbors()) {
      if (entry.to == from) continue;
      Message sub;
      sub.tag = kTagSubReq;
      ctx.send(entry.to, std::move(sub));
    }
  }

  /// All sub-replies in: send the aggregated REP to the token holder.
  void finish_rep(AsyncContext& ctx) {
    const NodeId target = rep_target_;
    rep_target_ = kNoNode;
    send_color_pairs(ctx, target, kTagRep, collected_pairs_);
    collected_pairs_.clear();
  }

  /// All REPs in: greedily color uncolored incident arcs, broadcast.
  void color_and_announce(AsyncContext& ctx) {
    for (ArcId a : view_->incident_arcs(self_)) {
      if (knowledge_.contains(a)) continue;
      const Color c = smallest_known_feasible(a);
      knowledge_[a] = c;
      assignments_.emplace_back(a, c);
    }
    colored_ = true;
    pending_acks_ = degree_;
    Message assign;
    assign.tag = kTagAssign;
    assign.data = own_incident_pairs();
    ctx.broadcast(std::move(assign));
  }

  /// All ACKs (or a returned token): forward the token to the unvisited
  /// neighbor of maximum degree, or give it back to the parent.
  void advance_token(AsyncContext& ctx) {
    NodeId next = kNoNode;
    std::size_t next_degree = 0;
    for (const NeighborEntry& entry : ctx.neighbors()) {
      if (visited_[entry.to]) continue;
      const std::size_t* degree = neighbor_degree_.find(entry.to);
      FDLSP_REQUIRE(degree != nullptr, "degree not yet known");
      if (next == kNoNode || *degree > next_degree ||
          (*degree == next_degree && entry.to < next)) {
        next = entry.to;
        next_degree = *degree;
      }
    }
    Message token;
    if (next != kNoNode) {
      visited_[next] = true;  // provisional; confirmed by its REQ
      token.tag = kTagToken;
      ctx.send(next, std::move(token));
    } else if (parent_ != kNoNode) {
      token.tag = kTagTokenBack;
      ctx.send(parent_, std::move(token));
    }
    // Root with no unvisited neighbor: traversal complete.
  }

  /// This node's incident arc colors as a flat [arc, color, ...] list.
  std::vector<std::int64_t> own_incident_pairs() const {
    std::vector<std::int64_t> pairs;
    for (ArcId a : view_->incident_arcs(self_)) {
      const Color* color = knowledge_.find(a);
      if (color == nullptr) continue;
      pairs.push_back(static_cast<std::int64_t>(a));
      pairs.push_back(static_cast<std::int64_t>(*color));
    }
    return pairs;
  }

  void absorb_pairs(const Message& message) {
    for (std::size_t i = 0; i + 1 < message.data.size(); i += 2) {
      knowledge_[static_cast<ArcId>(message.data[i])] =
          static_cast<Color>(message.data[i + 1]);
    }
  }

  void send_color_pairs(AsyncContext& ctx, NodeId to, std::int32_t tag,
                        std::vector<std::int64_t> pairs) {
    Message message;
    message.tag = tag;
    message.data = std::move(pairs);
    ctx.send(to, std::move(message));
  }

  Color smallest_known_feasible(ArcId a) const {
    std::vector<Color> used;
    for_each_conflicting_arc(*view_, a, [&](ArcId b) {
      const Color* color = knowledge_.find(b);
      if (color != nullptr) used.push_back(*color);
    });
    std::sort(used.begin(), used.end());
    used.erase(std::unique(used.begin(), used.end()), used.end());
    Color candidate = 0;
    for (Color c : used) {
      if (c > candidate) break;
      if (c == candidate) ++candidate;
    }
    return candidate;
  }

  const ArcView* view_;
  NodeId self_;
  bool is_root_;
  std::size_t degree_ = 0;

  // Point-access only (no observed ordering): flat hashes keep the
  // per-message cost allocation-free — see support/flat_hash.h.
  FlatHashMap<NodeId, std::size_t> neighbor_degree_;
  FlatHashMap<NodeId, bool> visited_;
  NodeId parent_ = kNoNode;
  bool colored_ = false;
  bool token_pending_ = false;

  std::size_t pending_reps_ = 0;
  std::size_t pending_acks_ = 0;
  std::size_t pending_subreps_ = 0;
  NodeId rep_target_ = kNoNode;
  std::vector<std::int64_t> collected_pairs_;

  FlatHashMap<ArcId, Color> knowledge_;
  std::vector<std::pair<ArcId, Color>> assignments_;
};

}  // namespace

ScheduleResult run_dfs_schedule(const Graph& graph, const DfsOptions& options) {
  FDLSP_REQUIRE(graph.num_nodes() > 0, "empty graph");
  FDLSP_REQUIRE(is_connected(graph), "DFS traversal requires connectivity");

  NodeId root = options.root;
  if (root == kNoNode) {
    root = 0;
    for (NodeId v = 1; v < graph.num_nodes(); ++v)
      if (graph.degree(v) > graph.degree(root)) root = v;
  }
  FDLSP_REQUIRE(root < graph.num_nodes(), "root out of range");

  const ArcView view(graph);
  std::vector<std::unique_ptr<AsyncProgram>> programs;
  programs.reserve(graph.num_nodes());
  for (NodeId v = 0; v < graph.num_nodes(); ++v)
    programs.push_back(std::make_unique<DfsProgram>(view, v, v == root));
  const FaultSpec spec = options.faults != nullptr ? *options.faults
                                                   : FaultSpec{};
  if (options.reliable) {
    for (auto& program : programs)
      program = std::make_unique<ReliableAsyncProgram>(std::move(program),
                                                       spec,
                                                       options.transport);
  }
  AsyncEngine engine(graph, std::move(programs), options.delay_model,
                     options.seed);
  engine.set_trace(options.trace);
  engine.set_shards(options.shards);
  engine.set_alloc_audit(options.audit);
  std::optional<FaultPlan> plan;
  if (options.faults != nullptr && options.faults->any()) {
    plan.emplace(spec, graph);
    engine.set_fault_plan(&*plan);
  }
  const AsyncMetrics metrics = engine.run(options.max_messages);
  if (options.engine_metrics != nullptr) *options.engine_metrics = metrics;
  // See dist_mis.cpp: crash/churn plans and unhardened lossy runs report
  // their outcome for the fault oracles to judge instead of aborting.
  const bool relaxed =
      plan.has_value() &&
      (spec.crash_fraction > 0.0 || spec.link_down_fraction > 0.0 ||
       !options.reliable);
  if (!relaxed) {
    FDLSP_REQUIRE(metrics.completed, "DFS did not complete in message budget");
    FDLSP_REQUIRE(metrics.fifo_ok, "engine violated per-channel FIFO order");
  }

  ScheduleResult result;
  result.completed = metrics.completed;
  result.faults = metrics.faults;
  result.stall_diagnosis = metrics.stall_diagnosis;
  result.coloring = ArcColoring(view.num_arcs());
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    const AsyncProgram& top = engine.program(v);
    if (options.reliable) {
      const auto& wrapper = static_cast<const ReliableAsyncProgram&>(top);
      result.transport.merge(wrapper.transport_stats());
      result.suspected.insert(result.suspected.end(),
                              wrapper.suspected_peers().begin(),
                              wrapper.suspected_peers().end());
    }
    const auto& program =
        options.reliable
            ? static_cast<const DfsProgram&>(
                  static_cast<const ReliableAsyncProgram&>(top).inner())
            : static_cast<const DfsProgram&>(top);
    for (const auto& [arc, color] : program.assignments()) {
      if (!relaxed)
        FDLSP_REQUIRE(!result.coloring.is_colored(arc),
                      "arc colored by two nodes");
      result.coloring.set(arc, color);
    }
  }
  if (!relaxed)
    FDLSP_REQUIRE(result.coloring.complete(), "DFS left arcs uncolored");
  std::sort(result.suspected.begin(), result.suspected.end());
  result.suspected.erase(
      std::unique(result.suspected.begin(), result.suspected.end()),
      result.suspected.end());
  result.num_slots = result.coloring.num_colors_used();
  result.messages = metrics.messages;
  result.async_time = metrics.completion_time;
  return result;
}

}  // namespace fdlsp
