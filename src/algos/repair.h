// Incremental schedule repair for dynamic networks — the paper's stated
// future work (Section 9): sensors join, fail, or move; links appear and
// disappear; the schedule must be patched at low communication cost rather
// than recomputed from scratch.
//
// Approach: carry the surviving colors over to the new topology, clear the
// minimal set of arcs whose colors now violate distance-2 feasibility (new
// links create new conflicts), and greedily recolor the cleared and new
// arcs. The number of recolored arcs is the repair cost a distributed
// implementation would pay in localized messages; benchmarks compare it to
// a full recompute.
#pragma once

#include "coloring/coloring.h"
#include "graph/arcs.h"

namespace fdlsp {

class ConflictIndex;

/// Result of a repair pass.
struct RepairResult {
  ArcColoring coloring;          ///< complete, feasible
  std::size_t recolored_arcs = 0;  ///< arcs that changed or gained a color
  std::size_t num_slots = 0;
};

/// Transfers a coloring across topologies that share node ids: each arc of
/// `new_view` inherits the color of the same (tail, head) arc in `old_view`
/// if that link still exists; new links start uncolored.
ArcColoring transfer_coloring(const ArcView& old_view,
                              const ArcColoring& old_coloring,
                              const ArcView& new_view);

/// Repairs a partial (possibly conflicting) coloring into a feasible
/// complete schedule, touching as few arcs as possible: conflicting arcs are
/// cleared pairwise (the higher arc id yields), then all uncolored arcs are
/// greedily colored. A prebuilt index for `view`'s graph turns both phases
/// into CSR row scans; the repaired coloring is identical either way.
RepairResult repair_schedule(const ArcView& view, ArcColoring partial,
                             const ConflictIndex* index = nullptr);

}  // namespace fdlsp
