// Common result type and dispatcher for the FDLSP scheduling algorithms.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "coloring/coloring.h"
#include "graph/graph.h"
#include "sim/fault.h"
#include "sim/reliable.h"

namespace fdlsp {

class SimTrace;
class ThreadPool;

/// Outcome of one scheduling run: the schedule plus cost metrics. Metrics
/// that do not apply to an algorithm are left at 0 (e.g. the asynchronous
/// DFS run reports time, not synchronous rounds).
///
/// On a fault-free run the coloring is complete and feasible and
/// `completed` is true (the run functions enforce this loudly). Under an
/// installed FaultPlan the contract weakens: crash/churn plans, and lossy
/// plans without the reliable wrapper, may leave the coloring partial or
/// the run uncompleted — the caller (the fault oracles) inspects
/// `completed`/`faults` instead of the run aborting.
struct ScheduleResult {
  ArcColoring coloring;       ///< complete, feasible FDLSP coloring
  std::size_t num_slots = 0;  ///< distinct colors used (TDMA frame length)
  std::size_t rounds = 0;     ///< synchronous communication rounds
  std::size_t messages = 0;   ///< total messages exchanged
  double async_time = 0.0;    ///< asynchronous completion time (time units)
  bool completed = true;      ///< engine ran to quiescence within budget
  FaultStats faults;          ///< injected faults (all zero without a plan)
  /// Transport-layer work summed across all reliable wrappers (all zero
  /// without `reliable`): retransmits, probes, detector transitions.
  TransportStats transport;
  /// Union of every node's failure-detector suspicions (sorted, unique;
  /// empty without `reliable`). Under crash plans the detector's
  /// completeness/accuracy oracles compare this against the crash schedule.
  std::vector<NodeId> suspected;
  std::string stall_diagnosis;  ///< async watchdog dump; empty when clean
};

/// The scheduling algorithms the experiment harness can run.
enum class SchedulerKind {
  kDistMisGbg,      ///< DistMIS, growth-bounded-graph variant (distance-3)
  kDistMisGeneral,  ///< DistMIS, general-graph variant (distance-2, out-arcs)
  kDfs,             ///< asynchronous DFS token algorithm
  kDmgc,            ///< D-MGC baseline [Gandham et al.]
  kGreedy,          ///< sequential greedy (centralized reference)
  kRandomized,      ///< randomized distance-1 algorithm (Section 5 remark)
};

/// Human-readable algorithm name (for tables).
std::string scheduler_name(SchedulerKind kind);

/// Runs the given algorithm on `graph` with deterministic seed.
ScheduleResult run_scheduler(SchedulerKind kind, const Graph& graph,
                             std::uint64_t seed);

/// Same, with a simulation-event observer attached to the engine for the
/// duration of the run (see sim/trace.h). Centralized algorithms (D-MGC,
/// greedy) have no engine and emit no events. `trace` may be null, in which
/// case this is exactly run_scheduler.
ScheduleResult run_scheduler_traced(SchedulerKind kind, const Graph& graph,
                                    std::uint64_t seed, SimTrace* trace);

/// Same as run_scheduler, with the synchronous engine's state and rounds
/// sharded across `pool` (see SyncEngine::set_thread_pool). Byte-identical
/// to run_scheduler for any thread count; algorithms without a synchronous
/// engine (DFS, D-MGC, greedy) ignore the pool and run as usual.
ScheduleResult run_scheduler_parallel(SchedulerKind kind, const Graph& graph,
                                      std::uint64_t seed, ThreadPool& pool);

/// Same as run_scheduler_parallel with an explicit shard count (see
/// SyncEngine::set_shards; 0 = pool-derived). Byte-identical to
/// run_scheduler for any shard count — the contract the sharded-state suite
/// of engine_parallel_test pins across scenario families.
ScheduleResult run_scheduler_sharded(SchedulerKind kind, const Graph& graph,
                                     std::uint64_t seed, ThreadPool& pool,
                                     std::size_t shards);

/// Runs the algorithm under a deterministic fault model (sim/fault.h).
/// `reliable` additionally hardens every node with the ack/retransmit
/// wrapper (sim/reliable.h) — required for the run to keep its feasibility
/// guarantee under lossy plans. `tuning` selects the transport generation
/// (fixed-cadence legacy vs adaptive backoff + failure detection); it only
/// matters with `reliable`. Centralized algorithms (D-MGC, greedy) have no
/// engine and execute fault-free; their result is the clean one. `trace`
/// may be null. `shards` replays the run on the sharded engine path
/// (AsyncEngine::set_shards for DFS, SyncEngine::set_shards for the
/// synchronizer-based schedulers; 0 = serial) — byte-identical to serial
/// for any value, so fault repro lines replay unchanged on either path.
ScheduleResult run_scheduler_faulted(
    SchedulerKind kind, const Graph& graph, std::uint64_t seed,
    const FaultSpec& faults, bool reliable,
    TransportTuning tuning = TransportTuning::kAdaptive,
    SimTrace* trace = nullptr, std::size_t shards = 0);

}  // namespace fdlsp
