#include "algos/dist_repair.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "coloring/conflict.h"
#include "graph/arcs.h"
#include "sim/reliable.h"
#include "sim/sync_engine.h"
#include "support/check.h"
#include "support/flat_hash.h"
#include "support/rng.h"

namespace fdlsp {

namespace {

constexpr std::int32_t kTagState = 1;   // data: [ttl, origin, arc, color, ...]
constexpr std::int32_t kTagClear = 2;   // data: [ttl, origin, arc, ...]
constexpr std::int32_t kTagCompValue = 3;  // data: [origin, block, value, ttl]
constexpr std::int32_t kTagCompWin = 4;    // data: [origin, block, ttl, arc,
                                           //        color, ...]

constexpr std::size_t kFloodRadius = 2;
constexpr std::size_t kBlockLength = 2 * kFloodRadius + 1;

class DistRepairProgram final : public SyncProgram {
 public:
  DistRepairProgram(const ArcView& view, NodeId self,
                    const ArcColoring& stale, std::uint64_t seed)
      : view_(&view), self_(self), rng_(seed) {
    for (ArcId a : view.out_arcs(self)) {
      out_arcs_.push_back(a);
      if (stale.is_colored(a)) known_colors_[a] = stale.color(a);
    }
    if (out_arcs_.empty()) {
      exchanged_ = true;
      repaired_ = true;
    }
  }

  bool finished() const override { return repaired_; }

  bool ready_for_phase_advance() const override {
    return in_exchange_phase_ ? exchanged_ : repaired_;
  }

  void on_phase(std::size_t new_phase) override {
    rounds_in_phase_ = 0;
    in_exchange_phase_ = (new_phase == 0);
    if (new_phase == 1 && !repaired_ && dirty_arcs().empty())
      repaired_ = true;  // stale colors survived intact; nothing to do
  }

  void on_round(SyncContext& ctx, std::span<const Message> inbox) override {
    for (const Message& message : inbox) process(ctx, message);
    if (in_exchange_phase_) {
      exchange_step(ctx);
    } else if (!repaired_) {
      compete_step(ctx);
    }
    ++rounds_in_phase_;
  }

  const std::vector<std::pair<ArcId, Color>>& assignments() const {
    return assignments_;
  }

  /// Colors this node still vouches for after repair (kept + newly set).
  /// A faulted run can leave an arc cleared and never re-won; it is simply
  /// absent here, and the caller's completeness checks judge the outcome.
  std::vector<std::pair<ArcId, Color>> surviving_colors() const {
    std::vector<std::pair<ArcId, Color>> result;
    for (ArcId a : out_arcs_) {
      const Color* color = known_colors_.find(a);
      if (color == nullptr) continue;
      result.emplace_back(a, *color);
    }
    return result;
  }

 private:
  void process(SyncContext& ctx, const Message& message) {
    switch (message.tag) {
      case kTagState: {
        if (!mark_seen(message.tag, static_cast<NodeId>(message.data[1]), 0))
          break;
        for (std::size_t i = 2; i + 1 < message.data.size(); i += 2) {
          const auto arc = static_cast<ArcId>(message.data[i]);
          const auto color = static_cast<Color>(message.data[i + 1]);
          snapshot_[arc] = color;
          known_colors_[arc] = color;  // surviving stale colors bind us too
        }
        forward_ttl0(ctx, message);
        break;
      }
      case kTagClear: {
        if (!mark_seen(message.tag, static_cast<NodeId>(message.data[1]), 0))
          break;
        for (std::size_t i = 2; i < message.data.size(); ++i)
          known_colors_.erase(static_cast<ArcId>(message.data[i]));
        forward_ttl0(ctx, message);
        break;
      }
      case kTagCompValue: {
        const auto origin = static_cast<NodeId>(message.data[0]);
        const auto block = static_cast<std::uint64_t>(message.data[1]);
        if (!mark_seen(message.tag, origin, block + 1)) break;
        if (!repaired_ && !in_exchange_phase_ && block == own_block_ &&
            origin != self_) {
          rivals_.push_back(
              {message.data[2], static_cast<std::int64_t>(origin)});
        }
        forward_indexed(ctx, message, 3);
        break;
      }
      case kTagCompWin: {
        const auto origin = static_cast<NodeId>(message.data[0]);
        const auto block = static_cast<std::uint64_t>(message.data[1]);
        if (!mark_seen(message.tag, origin, block + 1)) break;
        for (std::size_t i = 3; i + 1 < message.data.size(); i += 2)
          known_colors_[static_cast<ArcId>(message.data[i])] =
              static_cast<Color>(message.data[i + 1]);
        forward_indexed(ctx, message, 2);
        break;
      }
      default:
        FDLSP_REQUIRE(false, "unknown message tag");
    }
  }

  /// Forwards a message whose TTL sits at data[0].
  void forward_ttl0(SyncContext& ctx, const Message& message) {
    if (message.data[0] <= 1) return;
    Message copy = message;
    --copy.data[0];
    ctx.broadcast(std::move(copy));
  }

  /// Forwards a message whose TTL sits at data[index].
  void forward_indexed(SyncContext& ctx, const Message& message,
                       std::size_t index) {
    if (message.data[index] <= 1) return;
    Message copy = message;
    --copy.data[index];
    ctx.broadcast(std::move(copy));
  }

  /// Phase 0 schedule: r0 flood own state; r2 clear losers + flood clears;
  /// r4 done (clears applied on receipt).
  void exchange_step(SyncContext& ctx) {
    if (rounds_in_phase_ == 0 && !out_arcs_.empty()) {
      Message state;
      state.tag = kTagState;
      state.data.push_back(static_cast<std::int64_t>(kFloodRadius));
      state.data.push_back(static_cast<std::int64_t>(self_));
      for (ArcId a : out_arcs_) {
        const Color* color = known_colors_.find(a);
        if (color == nullptr) continue;
        state.data.push_back(static_cast<std::int64_t>(a));
        state.data.push_back(*color);
        snapshot_[a] = *color;
      }
      mark_seen(kTagState, self_, 0);
      if (state.data.size() > 2) ctx.broadcast(std::move(state));
    } else if (rounds_in_phase_ == 2) {
      clear_losers(ctx);
    } else if (rounds_in_phase_ >= 4) {
      exchanged_ = true;
    }
  }

  /// The deterministic clearing rule: a colored out-arc loses if the
  /// initial snapshot holds an equally-colored conflicting arc of smaller
  /// id. Every node applies the same rule to the same snapshot.
  void clear_losers(SyncContext& ctx) {
    Message clear;
    clear.tag = kTagClear;
    clear.data.push_back(static_cast<std::int64_t>(kFloodRadius));
    clear.data.push_back(static_cast<std::int64_t>(self_));
    for (ArcId a : out_arcs_) {
      const Color* my_color = snapshot_.find(a);
      if (my_color == nullptr) continue;
      bool lost = false;
      for_each_conflicting_arc(*view_, a, [&](ArcId b) {
        if (lost || b >= a) return;
        const Color* other = snapshot_.find(b);
        lost = other != nullptr && *other == *my_color;
      });
      if (lost) {
        known_colors_.erase(a);
        clear.data.push_back(static_cast<std::int64_t>(a));
      }
    }
    mark_seen(kTagClear, self_, 0);
    if (clear.data.size() > 2) ctx.broadcast(std::move(clear));
  }

  std::vector<ArcId> dirty_arcs() const {
    std::vector<ArcId> dirty;
    for (ArcId a : out_arcs_)
      if (!known_colors_.contains(a)) dirty.push_back(a);
    return dirty;
  }

  /// Phase 1: distance-2 competition blocks (as DistMIS's general variant).
  void compete_step(SyncContext& ctx) {
    const std::size_t offset = rounds_in_phase_ % kBlockLength;
    if (offset == 0) {
      own_block_ = rounds_in_phase_ / kBlockLength;
      rivals_.clear();
      const auto degree =
          static_cast<std::uint64_t>(view_->graph().degree(self_));
      comp_value_ =
          static_cast<std::int64_t>((degree << 40) | (rng_() >> 25));
      Message message;
      message.tag = kTagCompValue;
      message.data = {static_cast<std::int64_t>(self_),
                      static_cast<std::int64_t>(own_block_), comp_value_,
                      static_cast<std::int64_t>(kFloodRadius)};
      mark_seen(kTagCompValue, self_, own_block_ + 1);
      ctx.broadcast(std::move(message));
    } else if (offset == kFloodRadius) {
      const std::pair<std::int64_t, std::int64_t> mine{
          comp_value_, static_cast<std::int64_t>(self_)};
      const bool is_max =
          std::all_of(rivals_.begin(), rivals_.end(),
                      [&](const auto& other) { return mine > other; });
      if (is_max) win(ctx);
    }
  }

  void win(SyncContext& ctx) {
    Message message;
    message.tag = kTagCompWin;
    message.data = {static_cast<std::int64_t>(self_),
                    static_cast<std::int64_t>(own_block_),
                    static_cast<std::int64_t>(kFloodRadius)};
    for (ArcId a : dirty_arcs()) {
      const Color c = smallest_known_feasible(a);
      known_colors_[a] = c;
      assignments_.emplace_back(a, c);
      message.data.push_back(static_cast<std::int64_t>(a));
      message.data.push_back(c);
    }
    mark_seen(kTagCompWin, self_, own_block_ + 1);
    ctx.broadcast(std::move(message));
    repaired_ = true;
  }

  Color smallest_known_feasible(ArcId a) const {
    std::vector<Color> used;
    for_each_conflicting_arc(*view_, a, [&](ArcId b) {
      const Color* color = known_colors_.find(b);
      if (color != nullptr) used.push_back(*color);
    });
    std::sort(used.begin(), used.end());
    used.erase(std::unique(used.begin(), used.end()), used.end());
    Color candidate = 0;
    for (Color c : used) {
      if (c > candidate) break;
      if (c == candidate) ++candidate;
    }
    return candidate;
  }

  bool mark_seen(std::int32_t tag, NodeId origin, std::uint64_t block) {
    FDLSP_REQUIRE(block < (1u << 20), "block counter overflow");
    const std::uint64_t key = (static_cast<std::uint64_t>(origin) << 24) |
                              (block << 4) |
                              static_cast<std::uint64_t>(tag & 0xf);
    return seen_.insert(key);
  }

  const ArcView* view_;
  NodeId self_;
  Rng rng_;
  std::vector<ArcId> out_arcs_;

  bool in_exchange_phase_ = true;
  bool exchanged_ = false;
  bool repaired_ = false;
  std::size_t rounds_in_phase_ = 0;

  std::uint64_t own_block_ = 0;
  std::int64_t comp_value_ = 0;
  std::vector<std::pair<std::int64_t, std::int64_t>> rivals_;

  // Point-access only (find/[]/erase, never iterated): flat hashes keep
  // the per-message cost allocation-free — see support/flat_hash.h.
  FlatHashMap<ArcId, Color> known_colors_;
  FlatHashMap<ArcId, Color> snapshot_;  // phase-0 initial colors
  std::vector<std::pair<ArcId, Color>> assignments_;
  FlatHashSet<std::uint64_t> seen_;  // dedup only — see flat_hash.h
};

}  // namespace

DistRepairResult run_distributed_repair(const Graph& graph,
                                        const ArcColoring& stale,
                                        std::uint64_t seed,
                                        std::size_t max_rounds,
                                        SimTrace* trace,
                                        const FaultSpec* faults,
                                        bool reliable,
                                        ThreadPool* pool,
                                        std::size_t shards,
                                        TransportTuning transport) {
  const ArcView view(graph);
  FDLSP_REQUIRE(stale.num_arcs() == view.num_arcs(),
                "stale coloring does not match graph");
  std::vector<std::unique_ptr<SyncProgram>> programs;
  programs.reserve(graph.num_nodes());
  Rng seeder(seed);
  for (NodeId v = 0; v < graph.num_nodes(); ++v)
    programs.push_back(
        std::make_unique<DistRepairProgram>(view, v, stale, seeder()));
  const FaultSpec spec = faults != nullptr ? *faults : FaultSpec{};
  std::size_t round_budget = max_rounds;
  if (reliable) {
    for (auto& program : programs)
      program = std::make_unique<ReliableSyncProgram>(std::move(program),
                                                      spec, transport);
    round_budget *= ReliableSyncProgram::round_dilation(spec, transport);
  }
  SyncEngine engine(graph, std::move(programs));
  engine.set_trace(trace);
  engine.set_thread_pool(pool);
  engine.set_shards(shards);
  std::optional<FaultPlan> plan;
  if (faults != nullptr && faults->any()) {
    plan.emplace(spec, graph);
    engine.set_fault_plan(&*plan);
  }
  const SyncMetrics metrics = engine.run(round_budget);
  // See dist_mis.cpp: faulted runs report their outcome for the fault
  // oracles to judge instead of aborting. Repair under unhardened loss
  // terminates with stale knowledge — conflicting survivors included —
  // which is exactly the failing case the shrinker minimizes.
  const bool relaxed = plan.has_value();
  if (!relaxed)
    FDLSP_REQUIRE(metrics.completed, "distributed repair did not complete");

  DistRepairResult result;
  result.completed = metrics.completed;
  result.faults = metrics.faults;
  result.coloring = ArcColoring(view.num_arcs());
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    const SyncProgram& top = engine.program(v);
    if (reliable)
      result.transport.merge(
          static_cast<const ReliableSyncProgram&>(top).transport_stats());
    const auto& program =
        reliable ? static_cast<const DistRepairProgram&>(
                       static_cast<const ReliableSyncProgram&>(top).inner())
                 : static_cast<const DistRepairProgram&>(top);
    for (const auto& [arc, color] : program.surviving_colors()) {
      if (!relaxed)
        FDLSP_REQUIRE(!result.coloring.is_colored(arc),
                      "arc colored by two tails");
      result.coloring.set(arc, color);
    }
    result.recolored_arcs += program.assignments().size();
  }
  if (!relaxed)
    FDLSP_REQUIRE(result.coloring.complete(), "repair left arcs uncolored");
  result.num_slots = result.coloring.num_colors_used();
  result.rounds = metrics.rounds;
  result.messages = metrics.messages;
  return result;
}

}  // namespace fdlsp
