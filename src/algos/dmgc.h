// D-MGC baseline [Gandham, Dawande, Prakash] — the prior distributed FDLSP
// algorithm the paper compares against.
//
// Phase 1: (Δ+1) edge coloring of the undirected graph (Misra–Gries; the
//   original runs it distributedly with fans and cd-path inversions — we run
//   the identical sequential algorithm and charge rounds with the paper's
//   analytic cost model, since the evaluation compares slot counts).
// Phase 2: direction assignment. Each color class is a matching; orienting
//   its edges without hidden-terminal conflicts is a 2-SAT instance (one
//   boolean per edge). Classes whose instance is unsatisfiable shed their
//   most-constrained edges ("color injection" in the original) until
//   satisfiable. Oriented class i occupies slot i; the reversed orientation
//   occupies slot C+i (conflict is invariant under reversing both arcs, so
//   the mirrored class stays feasible). Shed edges are greedily recolored.
#pragma once

#include <cstdint>

#include "algos/scheduler.h"
#include "graph/graph.h"

namespace fdlsp {

/// Extra observability into the D-MGC pipeline.
struct DmgcStats {
  std::size_t edge_colors = 0;       ///< colors used by phase 1 (<= Δ+1)
  std::size_t injected_edges = 0;    ///< edges shed during orientation
  std::size_t estimated_rounds = 0;  ///< analytic distributed round cost
};

/// Runs the D-MGC baseline. The result's rounds field carries the analytic
/// estimate (the original algorithm is asynchronous with worst case
/// O(n²m + nmΔ); the estimate counts the work its phases actually perform).
ScheduleResult run_dmgc(const Graph& graph, DmgcStats* stats = nullptr);

}  // namespace fdlsp
