#include "algos/scheduler.h"

#include "algos/dfs_schedule.h"
#include "algos/dist_mis.h"
#include "algos/dmgc.h"
#include "algos/randomized.h"
#include "coloring/greedy.h"
#include "graph/arcs.h"
#include "support/check.h"

namespace fdlsp {

std::string scheduler_name(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kDistMisGbg:
      return "distMIS";
    case SchedulerKind::kDistMisGeneral:
      return "distMIS-gen";
    case SchedulerKind::kDfs:
      return "DFS";
    case SchedulerKind::kDmgc:
      return "D-MGC";
    case SchedulerKind::kGreedy:
      return "greedy";
    case SchedulerKind::kRandomized:
      return "randomized";
  }
  FDLSP_REQUIRE(false, "unknown scheduler kind");
  return {};
}

namespace {

ScheduleResult dispatch(SchedulerKind kind, const Graph& graph,
                        std::uint64_t seed, SimTrace* trace,
                        const FaultSpec* faults, bool reliable,
                        TransportTuning tuning = TransportTuning::kAdaptive,
                        ThreadPool* pool = nullptr, std::size_t shards = 0) {
  switch (kind) {
    case SchedulerKind::kDistMisGbg: {
      DistMisOptions options;
      options.variant = DistMisVariant::kGbg;
      options.seed = seed;
      options.trace = trace;
      options.faults = faults;
      options.reliable = reliable;
      options.transport = tuning;
      options.pool = pool;
      options.shards = shards;
      return run_dist_mis(graph, options);
    }
    case SchedulerKind::kDistMisGeneral: {
      DistMisOptions options;
      options.variant = DistMisVariant::kGeneral;
      options.seed = seed;
      options.trace = trace;
      options.faults = faults;
      options.reliable = reliable;
      options.transport = tuning;
      options.pool = pool;
      options.shards = shards;
      return run_dist_mis(graph, options);
    }
    case SchedulerKind::kDfs: {
      DfsOptions options;
      options.seed = seed;
      options.trace = trace;
      options.faults = faults;
      options.reliable = reliable;
      options.transport = tuning;
      options.shards = shards;
      return run_dfs_schedule(graph, options);
    }
    case SchedulerKind::kDmgc:
      return run_dmgc(graph);
    case SchedulerKind::kGreedy: {
      const ArcView view(graph);
      ScheduleResult result;
      result.coloring = greedy_coloring(view, GreedyOrder::kByDegreeDesc);
      result.num_slots = result.coloring.num_colors_used();
      return result;
    }
    case SchedulerKind::kRandomized: {
      RandomizedOptions options;
      options.seed = seed;
      options.trace = trace;
      options.faults = faults;
      options.reliable = reliable;
      options.transport = tuning;
      options.pool = pool;
      options.shards = shards;
      return run_randomized(graph, options);
    }
  }
  FDLSP_REQUIRE(false, "unknown scheduler kind");
  return {};
}

}  // namespace

ScheduleResult run_scheduler(SchedulerKind kind, const Graph& graph,
                             std::uint64_t seed) {
  return dispatch(kind, graph, seed, nullptr, nullptr, false);
}

ScheduleResult run_scheduler_traced(SchedulerKind kind, const Graph& graph,
                                    std::uint64_t seed, SimTrace* trace) {
  return dispatch(kind, graph, seed, trace, nullptr, false);
}

ScheduleResult run_scheduler_parallel(SchedulerKind kind, const Graph& graph,
                                      std::uint64_t seed, ThreadPool& pool) {
  return dispatch(kind, graph, seed, nullptr, nullptr, false,
                  TransportTuning::kAdaptive, &pool);
}

ScheduleResult run_scheduler_sharded(SchedulerKind kind, const Graph& graph,
                                     std::uint64_t seed, ThreadPool& pool,
                                     std::size_t shards) {
  return dispatch(kind, graph, seed, nullptr, nullptr, false,
                  TransportTuning::kAdaptive, &pool, shards);
}

ScheduleResult run_scheduler_faulted(SchedulerKind kind, const Graph& graph,
                                     std::uint64_t seed,
                                     const FaultSpec& faults, bool reliable,
                                     TransportTuning tuning, SimTrace* trace,
                                     std::size_t shards) {
  return dispatch(kind, graph, seed, trace, &faults, reliable, tuning,
                  nullptr, shards);
}

}  // namespace fdlsp
