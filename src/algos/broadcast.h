// Broadcast (node) scheduling — the alternative the paper's introduction
// argues against.
//
// A broadcast schedule assigns slots to *nodes* such that no two nodes
// within distance 2 share a slot (distance-2 vertex coloring): a node's
// transmission then reaches all neighbors interference-free. The paper's
// Section 1 claims link scheduling beats broadcast scheduling on
// concurrency (distance-2 neighbors may transmit simultaneously in the
// right direction pattern) and on energy (receivers only wake for intended
// traffic). This module makes those claims measurable.
#pragma once

#include <vector>

#include "coloring/coloring.h"
#include "graph/graph.h"

namespace fdlsp {

/// A broadcast TDMA schedule: one slot per node.
struct BroadcastSchedule {
  std::vector<Color> node_colors;  ///< slot of each node, dense 0-based
  std::size_t num_slots = 0;       ///< frame length
};

/// Greedy distance-2 vertex coloring, highest-degree-first order.
/// Uses at most Δ² + 1 slots.
BroadcastSchedule broadcast_schedule_greedy(const Graph& graph);

/// True iff no two distinct nodes within distance <= 2 share a color and
/// all nodes are colored.
bool is_valid_broadcast_schedule(const Graph& graph,
                                 const std::vector<Color>& colors);

/// Side-by-side efficiency metrics of a broadcast schedule, comparable to
/// the link-schedule numbers from tdma/energy.h and tdma/schedule.h.
struct BroadcastMetrics {
  std::size_t frame_length = 0;
  /// Mean concurrent transmissions per slot.
  double concurrency = 0.0;
  /// Mean fraction of the frame a node's radio is on. In broadcast
  /// scheduling a node must listen in *every* slot where any neighbor
  /// transmits (it cannot know which messages concern it) and transmits in
  /// its own slot.
  double mean_duty_cycle = 0.0;
  double max_duty_cycle = 0.0;
};

/// Computes the metrics above.
BroadcastMetrics broadcast_metrics(const Graph& graph,
                                   const BroadcastSchedule& schedule);

}  // namespace fdlsp
