// Misra & Gries (Δ+1) edge coloring.
//
// This is phase 1 of the D-MGC baseline [Gandham et al.]: color the
// *undirected* graph's edges with at most Δ+1 colors using fans and cd-path
// inversions. We run the textbook sequential algorithm and account its
// distributed cost with the paper's analytic model (see dmgc.h); the slot
// counts the evaluation compares are unaffected by sequentialization.
#pragma once

#include <vector>

#include "coloring/coloring.h"
#include "graph/graph.h"

namespace fdlsp {

/// Statistics of a Misra–Gries run (inputs to the D-MGC round estimate).
struct MisraGriesStats {
  std::size_t inversions = 0;         ///< cd-path inversions performed
  std::size_t total_path_length = 0;  ///< sum of inverted path lengths
  std::size_t colors_used = 0;        ///< number of distinct edge colors
};

/// Proper edge coloring of `graph` with at most Δ+1 colors, indexed by
/// EdgeId. `stats`, if non-null, receives run statistics.
std::vector<Color> misra_gries_edge_coloring(const Graph& graph,
                                             MisraGriesStats* stats = nullptr);

/// True iff `colors` is a proper edge coloring (adjacent edges differ, all
/// edges colored).
bool is_proper_edge_coloring(const Graph& graph,
                             const std::vector<Color>& colors);

}  // namespace fdlsp
