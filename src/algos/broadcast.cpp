#include "algos/broadcast.h"

#include <algorithm>
#include <numeric>

#include "graph/algorithms.h"
#include "support/check.h"

namespace fdlsp {

BroadcastSchedule broadcast_schedule_greedy(const Graph& graph) {
  const std::size_t n = graph.num_nodes();
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return graph.degree(a) > graph.degree(b);
  });

  BroadcastSchedule schedule;
  schedule.node_colors.assign(n, kNoColor);
  std::vector<bool> used;
  for (NodeId v : order) {
    used.assign(graph.max_degree() * graph.max_degree() + 1, false);
    for (NodeId w : k_hop_neighborhood(graph, v, 2)) {
      const Color c = schedule.node_colors[w];
      if (c != kNoColor) used[static_cast<std::size_t>(c)] = true;
    }
    Color c = 0;
    while (used[static_cast<std::size_t>(c)]) ++c;
    schedule.node_colors[v] = c;
    schedule.num_slots =
        std::max(schedule.num_slots, static_cast<std::size_t>(c) + 1);
  }
  return schedule;
}

bool is_valid_broadcast_schedule(const Graph& graph,
                                 const std::vector<Color>& colors) {
  if (colors.size() != graph.num_nodes()) return false;
  for (Color c : colors)
    if (c == kNoColor) return false;
  for (NodeId v = 0; v < graph.num_nodes(); ++v)
    for (NodeId w : k_hop_neighborhood(graph, v, 2))
      if (w != v && colors[w] == colors[v]) return false;
  return true;
}

BroadcastMetrics broadcast_metrics(const Graph& graph,
                                   const BroadcastSchedule& schedule) {
  BroadcastMetrics metrics;
  metrics.frame_length = schedule.num_slots;
  const std::size_t n = graph.num_nodes();
  if (n == 0 || schedule.num_slots == 0) return metrics;

  metrics.concurrency =
      static_cast<double>(n) / static_cast<double>(schedule.num_slots);

  for (NodeId v = 0; v < n; ++v) {
    // Radio-on slots: own transmit slot plus every distinct neighbor slot.
    std::vector<bool> listening(schedule.num_slots, false);
    for (const NeighborEntry& entry : graph.neighbors(v))
      listening[static_cast<std::size_t>(
          schedule.node_colors[entry.to])] = true;
    std::size_t on_slots = 1;  // own slot
    for (bool on : listening) on_slots += on ? 1 : 0;
    const double duty = static_cast<double>(on_slots) /
                        static_cast<double>(schedule.num_slots);
    metrics.mean_duty_cycle += duty;
    metrics.max_duty_cycle = std::max(metrics.max_duty_cycle, duty);
  }
  metrics.mean_duty_cycle /= static_cast<double>(n);
  return metrics;
}

}  // namespace fdlsp
