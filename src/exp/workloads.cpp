#include "exp/workloads.h"

#include <algorithm>

#include "coloring/checker.h"
#include "graph/algorithms.h"
#include "graph/arcs.h"
#include "support/check.h"

namespace fdlsp {

std::vector<UdgPoint> udg_series(double side_units) {
  std::vector<UdgPoint> series;
  for (std::size_t nodes : {50u, 100u, 200u, 300u})
    series.push_back(UdgPoint{nodes, side_units * kUdgUnitLength, 0.5});
  return series;
}

std::vector<GeneralPoint> general_series(std::size_t nodes) {
  std::vector<GeneralPoint> series;
  for (std::size_t degree : {4u, 8u, 16u, 32u})
    series.push_back(GeneralPoint{nodes, nodes * degree / 2});
  return series;
}

ScheduleResult run_scheduler_on_components(SchedulerKind kind,
                                           const Graph& graph,
                                           std::uint64_t seed) {
  if (kind != SchedulerKind::kDfs) return run_scheduler(kind, graph, seed);

  // DFS needs a connected traversal: schedule each component independently
  // and let components share slots (no cross-component conflicts exist).
  const auto labels = connected_components(graph);
  const std::size_t components =
      labels.empty() ? 0
                     : *std::max_element(labels.begin(), labels.end()) + 1;
  if (components <= 1) return run_scheduler(kind, graph, seed);

  ScheduleResult total;
  total.coloring = ArcColoring(2 * graph.num_edges());
  const ArcView view(graph);
  for (std::size_t comp = 0; comp < components; ++comp) {
    std::vector<NodeId> nodes;
    for (NodeId v = 0; v < graph.num_nodes(); ++v)
      if (labels[v] == comp) nodes.push_back(v);
    if (nodes.size() <= 1) continue;
    const InducedSubgraph sub = induced_subgraph(graph, nodes);
    const ScheduleResult part = run_scheduler(kind, sub.graph, seed + comp);
    // Map sub-arc colors back to the global arc ids.
    const ArcView sub_view(sub.graph);
    for (ArcId a = 0; a < sub_view.num_arcs(); ++a) {
      const NodeId tail = sub.to_original[sub_view.tail(a)];
      const NodeId head = sub.to_original[sub_view.head(a)];
      const ArcId global = view.find_arc(tail, head);
      FDLSP_ASSERT(global != kNoArc, "component arc missing in parent");
      total.coloring.set(global, part.coloring.color(a));
    }
    total.rounds = std::max(total.rounds, part.rounds);
    total.messages += part.messages;
    total.async_time = std::max(total.async_time, part.async_time);
  }
  total.num_slots = total.coloring.num_colors_used();
  return total;
}

}  // namespace fdlsp
