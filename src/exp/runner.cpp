#include "exp/runner.h"

#include <mutex>
#include <string>

#include "coloring/bounds.h"
#include "coloring/checker.h"
#include "graph/arcs.h"
#include "support/check.h"
#include "support/parallel_for.h"

namespace fdlsp {

namespace {

/// Evaluates every scheduler on one instance and folds into the shared
/// aggregates under a lock (the heavy work happens outside the lock).
class PointAccumulator {
 public:
  PointResult& result;
  std::mutex mutex;

  void fold(const Graph& graph, const RunConfig& config,
            std::uint64_t instance_seed) {
    struct Sample {
      SchedulerKind kind;
      ScheduleResult run;
    };
    std::vector<Sample> samples;
    samples.reserve(config.kinds.size());
    for (SchedulerKind kind : config.kinds) {
      ScheduleResult run =
          run_scheduler_on_components(kind, graph, instance_seed);
      // Every produced schedule is validated — a benchmark must never
      // aggregate an infeasible run.
      FDLSP_REQUIRE(is_feasible_schedule(ArcView(graph), run.coloring),
                    "scheduler produced an infeasible schedule");
      samples.push_back({kind, std::move(run)});
    }
    const double lb = static_cast<double>(lower_bound_theorem1(graph));
    const double ub = static_cast<double>(upper_bound_colors(graph));

    std::lock_guard lock(mutex);
    result.avg_degree.add(graph.average_degree());
    result.lower_bound.add(lb);
    result.upper_bound.add(ub);
    for (Sample& sample : samples) {
      AlgoAggregate& agg = result.algorithms[sample.kind];
      agg.slots.add(static_cast<double>(sample.run.num_slots));
      agg.rounds.add(static_cast<double>(sample.run.rounds));
      agg.messages.add(static_cast<double>(sample.run.messages));
      agg.async_time.add(sample.run.async_time);
    }
  }
};

}  // namespace

PointResult run_udg_point(const UdgPoint& point, const RunConfig& config,
                          ThreadPool& pool) {
  PointResult result;
  result.label = "n=" + std::to_string(point.nodes);
  PointAccumulator accumulator{result, {}};
  parallel_for_seeded(
      pool, config.instances, config.seed,
      [&](std::size_t instance, Rng& rng) {
        const GeometricGraph geo =
            generate_udg(point.nodes, point.side, point.radius, rng);
        accumulator.fold(geo.graph, config, config.seed * 1000003 + instance);
      });
  return result;
}

PointResult run_general_point(const GeneralPoint& point,
                              const RunConfig& config, ThreadPool& pool) {
  PointResult result;
  result.label = "m=" + std::to_string(point.edges);
  PointAccumulator accumulator{result, {}};
  parallel_for_seeded(
      pool, config.instances, config.seed,
      [&](std::size_t instance, Rng& rng) {
        const Graph graph = generate_gnm(point.nodes, point.edges, rng);
        accumulator.fold(graph, config, config.seed * 1000003 + instance);
      });
  return result;
}

}  // namespace fdlsp
