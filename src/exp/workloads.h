// Section 8 workload definitions and component-aware scheduling helpers.
//
// UDG sets: 75 random unit disk graphs per node count in {50, 100, 200, 300},
// radius 0.5, square plans of side 15 / 17 / 20. General sets: G(n, m) with
// n in {200, 500} and a swept edge count. Benchmarks default to smaller
// instance counts (configurable) so a full reproduction run finishes in
// minutes on a laptop; pass --instances=75 for the paper's exact counts.
#pragma once

#include <cstdint>
#include <vector>

#include "algos/scheduler.h"
#include "graph/generators.h"

namespace fdlsp {

/// "The unit length in our sample is 0.5": plan sides are quoted in units
/// of this length. Taken literally in absolute coordinates (side 15 with
/// radius 0.5) the fields degenerate to average degree < 1 where every
/// algorithm trivially meets the lower bound; the unit-scaled reading
/// (side 15 units = 7.5, radius 0.5) produces the densities whose spreads
/// the paper's figures actually show. See EXPERIMENTS.md.
inline constexpr double kUdgUnitLength = 0.5;

/// One UDG experiment point. `side` is absolute (already unit-scaled).
struct UdgPoint {
  std::size_t nodes;
  double side;
  double radius = 0.5;
};

/// The paper's node counts for a plan side quoted in 0.5-units.
std::vector<UdgPoint> udg_series(double side_units);

/// One general-graph experiment point.
struct GeneralPoint {
  std::size_t nodes;
  std::size_t edges;
};

/// Edge sweep for a node count (average degrees ~4, 8, 16, 32).
std::vector<GeneralPoint> general_series(std::size_t nodes);

/// Runs a scheduler on a possibly disconnected graph: DFS (which needs a
/// token traversal) runs per connected component with slot reuse across
/// components (components never conflict); other algorithms run as-is.
/// Rounds/messages/async-time aggregate as max/sum/max respectively.
ScheduleResult run_scheduler_on_components(SchedulerKind kind,
                                           const Graph& graph,
                                           std::uint64_t seed);

}  // namespace fdlsp
