// Parallel Monte-Carlo experiment runner: evaluates a set of schedulers over
// many random instances of one workload point and aggregates the metrics the
// paper's figures plot (slot counts, rounds, bounds, average degree).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "algos/scheduler.h"
#include "exp/workloads.h"
#include "support/stats.h"
#include "support/thread_pool.h"

namespace fdlsp {

/// Aggregated metrics for one algorithm at one workload point.
struct AlgoAggregate {
  Summary slots;
  Summary rounds;
  Summary messages;
  Summary async_time;
};

/// Aggregated results for one workload point (one x-position of a figure).
struct PointResult {
  std::string label;        ///< e.g. "n=200" or "m=1600"
  Summary avg_degree;       ///< average node degree across instances
  Summary lower_bound;      ///< Theorem 1 lower bound
  Summary upper_bound;      ///< 2Δ² upper bound
  std::map<SchedulerKind, AlgoAggregate> algorithms;
};

/// Which schedulers to evaluate and with how many instances.
struct RunConfig {
  std::vector<SchedulerKind> kinds;
  std::size_t instances = 75;
  std::uint64_t seed = 1;
};

/// Runs all schedulers over `instances` random UDGs at the given point.
PointResult run_udg_point(const UdgPoint& point, const RunConfig& config,
                          ThreadPool& pool);

/// Runs all schedulers over `instances` random G(n, m) graphs.
PointResult run_general_point(const GeneralPoint& point,
                              const RunConfig& config, ThreadPool& pool);

}  // namespace fdlsp
