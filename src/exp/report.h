// Rendering of experiment results as the paper's figure series.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "exp/runner.h"
#include "support/table.h"

namespace fdlsp {

/// Builds the slot-count comparison table for one figure: one row per
/// workload point, columns = avg degree, per-algorithm mean slots, bounds.
TextTable slots_table(const std::vector<PointResult>& points,
                      const std::vector<SchedulerKind>& kinds);

/// Builds the communication-rounds table (Figures 13-15): one row per point,
/// columns = avg degree, mean rounds, mean messages.
TextTable rounds_table(const std::vector<PointResult>& points,
                       SchedulerKind kind);

/// Prints a titled table to `os`, followed by a blank line.
void print_report(std::ostream& os, const std::string& title,
                  const TextTable& table);

/// Writes the table as CSV to `path` (overwrites).
void write_csv(const std::string& path, const TextTable& table);

}  // namespace fdlsp
