#include "exp/report.h"

#include <fstream>
#include <ostream>

#include "support/check.h"

namespace fdlsp {

TextTable slots_table(const std::vector<PointResult>& points,
                      const std::vector<SchedulerKind>& kinds) {
  std::vector<std::string> headers{"point", "avg-degree"};
  for (SchedulerKind kind : kinds) headers.push_back(scheduler_name(kind));
  headers.push_back("lower-bound");
  headers.push_back("upper-bound");

  TextTable table(std::move(headers));
  for (const PointResult& point : points) {
    std::vector<std::string> row{point.label,
                                 fmt_double(point.avg_degree.mean(), 2)};
    for (SchedulerKind kind : kinds) {
      const auto it = point.algorithms.find(kind);
      FDLSP_REQUIRE(it != point.algorithms.end(), "missing algorithm result");
      row.push_back(fmt_double(it->second.slots.mean(), 2));
    }
    row.push_back(fmt_double(point.lower_bound.mean(), 2));
    row.push_back(fmt_double(point.upper_bound.mean(), 2));
    table.add_row(std::move(row));
  }
  return table;
}

TextTable rounds_table(const std::vector<PointResult>& points,
                       SchedulerKind kind) {
  TextTable table({"point", "avg-degree", "rounds", "messages"});
  for (const PointResult& point : points) {
    const auto it = point.algorithms.find(kind);
    FDLSP_REQUIRE(it != point.algorithms.end(), "missing algorithm result");
    table.add_row({point.label, fmt_double(point.avg_degree.mean(), 2),
                   fmt_double(it->second.rounds.mean(), 1),
                   fmt_double(it->second.messages.mean(), 0)});
  }
  return table;
}

void print_report(std::ostream& os, const std::string& title,
                  const TextTable& table) {
  os << "== " << title << " ==\n";
  table.print(os);
  os << '\n';
}

void write_csv(const std::string& path, const TextTable& table) {
  std::ofstream file(path);
  FDLSP_REQUIRE(file.good(), "cannot open CSV output file");
  table.print_csv(file);
}

}  // namespace fdlsp
