// TDMA frame schedule derived from an FDLSP coloring.
//
// A color is a slot; the schedule compacts the used colors into a dense
// 0..frame_length-1 slot range and indexes arcs by slot and nodes by role,
// which is what the radio simulator, energy model and traffic replays
// consume.
#pragma once

#include <vector>

#include "coloring/coloring.h"
#include "graph/arcs.h"
#include "graph/types.h"

namespace fdlsp {

/// Role of a node within one slot.
enum class SlotRole { kIdle, kTransmit, kReceive };

/// Immutable TDMA schedule.
class TdmaSchedule {
 public:
  /// Builds from a complete feasible coloring (feasibility is the caller's
  /// responsibility; validate_over_radio() re-checks physically).
  TdmaSchedule(const ArcView& view, const ArcColoring& coloring);

  /// Number of slots per frame.
  std::size_t frame_length() const noexcept { return slots_.size(); }

  /// Arcs transmitting in slot s.
  const std::vector<ArcId>& arcs_in_slot(std::size_t s) const {
    return slots_.at(s);
  }

  /// Slot of arc a.
  std::size_t slot_of(ArcId a) const { return arc_slot_.at(a); }

  /// Role of node v in slot s. A feasible schedule never makes a node both.
  SlotRole role(NodeId v, std::size_t s) const;

  /// Slots in which v transmits (ascending).
  std::vector<std::size_t> transmit_slots(NodeId v) const;

  /// Slots in which v receives (ascending).
  std::vector<std::size_t> receive_slots(NodeId v) const;

  const ArcView& view() const noexcept { return view_; }

 private:
  ArcView view_;
  std::vector<std::vector<ArcId>> slots_;  // slot -> arcs
  std::vector<std::size_t> arc_slot_;      // arc -> slot
  // Per (node, slot) role, row-major n x frame_length.
  std::vector<SlotRole> roles_;
};

}  // namespace fdlsp
