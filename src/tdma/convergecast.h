// Convergecast (data-gathering) replay over a TDMA schedule.
//
// The canonical sensor-network workload: every node produces one report per
// epoch and the reports flow up a BFS tree to the sink, one packet per tree
// arc per frame (in that arc's slot). The replay measures how many frames an
// epoch takes and how full the frame's slots actually are — the application-
// level payoff of a short schedule.
#pragma once

#include <vector>

#include "graph/types.h"
#include "tdma/schedule.h"

namespace fdlsp {

/// Result of a full convergecast epoch.
struct ConvergecastReport {
  std::size_t frames = 0;            ///< frames until all reports reached sink
  std::size_t slots_elapsed = 0;     ///< frames * frame_length
  std::size_t packets_delivered = 0; ///< packets that reached the sink
  double slot_utilization = 0.0;     ///< fraction of elapsed slots carrying a packet
};

/// Replays one epoch: every node except the sink starts with one packet;
/// each frame, every tree arc forwards at most one queued packet in its
/// slot (a packet can ride several hops in one frame when the slot order
/// happens to pipeline, exactly as a real TDMA frame would).
/// The graph must be connected. `max_frames` caps runaway replays.
ConvergecastReport run_convergecast(const TdmaSchedule& schedule, NodeId sink,
                                    std::size_t max_frames = 100'000);

}  // namespace fdlsp
