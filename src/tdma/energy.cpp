#include "tdma/energy.h"

#include <algorithm>

namespace fdlsp {

EnergyReport account_energy(const TdmaSchedule& schedule,
                            const EnergyModel& model) {
  const std::size_t n = schedule.view().graph().num_nodes();
  EnergyReport report;
  report.per_node.resize(n);

  for (NodeId v = 0; v < n; ++v) {
    NodeEnergy& node = report.per_node[v];
    for (std::size_t s = 0; s < schedule.frame_length(); ++s) {
      switch (schedule.role(v, s)) {
        case SlotRole::kTransmit:
          ++node.transmit_slots;
          node.energy += model.transmit_cost;
          break;
        case SlotRole::kReceive:
          ++node.receive_slots;
          node.energy += model.receive_cost;
          break;
        case SlotRole::kIdle:
          ++node.sleep_slots;
          node.energy += model.sleep_cost;
          break;
      }
    }
    report.total_energy += node.energy;
    report.mean_duty_cycle += node.duty_cycle();
    report.max_duty_cycle = std::max(report.max_duty_cycle, node.duty_cycle());
  }
  if (n > 0) report.mean_duty_cycle /= static_cast<double>(n);
  return report;
}

}  // namespace fdlsp
