#include "tdma/convergecast.h"

#include "graph/algorithms.h"
#include "support/check.h"

namespace fdlsp {

ConvergecastReport run_convergecast(const TdmaSchedule& schedule, NodeId sink,
                                    std::size_t max_frames) {
  const ArcView& view = schedule.view();
  const Graph& graph = view.graph();
  const std::size_t n = graph.num_nodes();
  FDLSP_REQUIRE(sink < n, "sink out of range");

  // BFS tree: parent pointers toward the sink.
  const auto dist = bfs_distances(graph, sink);
  for (std::size_t d : dist)
    FDLSP_REQUIRE(d != kUnreachable, "convergecast needs a connected graph");
  std::vector<NodeId> parent(n, kNoNode);
  for (NodeId v = 0; v < n; ++v) {
    if (v == sink) continue;
    for (const NeighborEntry& entry : graph.neighbors(v)) {
      if (dist[entry.to] + 1 == dist[v]) {
        parent[v] = entry.to;
        break;
      }
    }
    FDLSP_ASSERT(parent[v] != kNoNode, "BFS parent must exist");
  }

  // Which arcs are uplinks (child -> parent)?
  std::vector<bool> uplink(view.num_arcs(), false);
  for (NodeId v = 0; v < n; ++v)
    if (v != sink) uplink[view.find_arc(v, parent[v])] = true;

  ConvergecastReport report;
  std::vector<std::size_t> queued(n, 1);  // pending packets per node
  queued[sink] = 0;
  std::size_t remaining = n - 1;          // packets not yet at the sink
  std::size_t carrying_slots = 0;

  while (remaining > 0 && report.frames < max_frames) {
    ++report.frames;
    for (std::size_t s = 0; s < schedule.frame_length(); ++s) {
      for (ArcId a : schedule.arcs_in_slot(s)) {
        if (!uplink[a]) continue;
        const NodeId child = view.tail(a);
        if (queued[child] == 0) continue;
        --queued[child];
        ++carrying_slots;
        const NodeId up = view.head(a);
        if (up == sink) {
          ++report.packets_delivered;
          --remaining;
        } else {
          ++queued[up];
        }
      }
    }
  }
  FDLSP_REQUIRE(remaining == 0, "convergecast did not drain in frame budget");

  report.slots_elapsed = report.frames * schedule.frame_length();
  report.slot_utilization =
      report.slots_elapsed == 0
          ? 0.0
          : static_cast<double>(carrying_slots) /
                static_cast<double>(report.slots_elapsed);
  return report;
}

}  // namespace fdlsp
