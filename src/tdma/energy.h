// Duty-cycle / energy accounting over a TDMA frame.
//
// The paper's motivation: link scheduling conserves power because a sensor's
// radio is on only in its own transmit/receive slots. This model quantifies
// that: per frame, each node pays tx/rx/idle-listen costs per slot according
// to its role, and the duty cycle is the fraction of slots its radio is on.
#pragma once

#include <vector>

#include "tdma/schedule.h"

namespace fdlsp {

/// Per-slot radio costs (arbitrary energy units; defaults roughly follow
/// typical sensor radios where tx ~ rx >> sleep).
struct EnergyModel {
  double transmit_cost = 1.0;
  double receive_cost = 0.8;
  double sleep_cost = 0.01;
};

/// Per-node accounting for one frame.
struct NodeEnergy {
  std::size_t transmit_slots = 0;
  std::size_t receive_slots = 0;
  std::size_t sleep_slots = 0;
  double energy = 0.0;

  /// Fraction of the frame with the radio on.
  double duty_cycle() const noexcept {
    const std::size_t total = transmit_slots + receive_slots + sleep_slots;
    return total == 0 ? 0.0
                      : static_cast<double>(transmit_slots + receive_slots) /
                            static_cast<double>(total);
  }
};

/// Frame-level summary.
struct EnergyReport {
  std::vector<NodeEnergy> per_node;
  double total_energy = 0.0;
  double mean_duty_cycle = 0.0;
  double max_duty_cycle = 0.0;
};

/// Accounts one frame of `schedule` under `model`.
EnergyReport account_energy(const TdmaSchedule& schedule,
                            const EnergyModel& model = {});

}  // namespace fdlsp
