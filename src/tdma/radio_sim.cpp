#include "tdma/radio_sim.h"

namespace fdlsp {

RadioReport replay_frame(const TdmaSchedule& schedule) {
  const ArcView& view = schedule.view();
  const Graph& graph = view.graph();
  RadioReport report;

  std::vector<bool> transmitting(graph.num_nodes(), false);
  for (std::size_t s = 0; s < schedule.frame_length(); ++s) {
    const auto& arcs = schedule.arcs_in_slot(s);
    for (ArcId a : arcs) transmitting[view.tail(a)] = true;

    for (ArcId a : arcs) {
      ++report.scheduled;
      const NodeId receiver = view.head(a);
      std::size_t heard = 0;
      for (const NeighborEntry& entry : graph.neighbors(receiver))
        if (transmitting[entry.to]) ++heard;
      const bool self_busy = transmitting[receiver];
      if (!self_busy && heard == 1) {
        ++report.delivered;
      } else {
        report.failures.push_back(RadioFailure{a, s, heard, self_busy});
      }
    }

    for (ArcId a : arcs) transmitting[view.tail(a)] = false;
  }
  return report;
}

}  // namespace fdlsp
