#include "tdma/schedule.h"

#include <algorithm>

#include "support/check.h"

namespace fdlsp {

TdmaSchedule::TdmaSchedule(const ArcView& view, const ArcColoring& coloring)
    : view_(view) {
  FDLSP_REQUIRE(coloring.num_arcs() == view.num_arcs(),
                "coloring does not match graph");
  FDLSP_REQUIRE(coloring.complete(), "schedule needs a complete coloring");

  // Compact used colors to dense slot ids, preserving order.
  const std::size_t span = coloring.color_span();
  std::vector<std::size_t> remap(span, static_cast<std::size_t>(-1));
  std::size_t next_slot = 0;
  for (std::size_t c = 0; c < span; ++c) {
    for (ArcId a = 0; a < view.num_arcs(); ++a) {
      if (static_cast<std::size_t>(coloring.color(a)) == c) {
        remap[c] = next_slot++;
        break;
      }
    }
  }

  slots_.resize(next_slot);
  arc_slot_.resize(view.num_arcs());
  for (ArcId a = 0; a < view.num_arcs(); ++a) {
    const std::size_t slot = remap[static_cast<std::size_t>(coloring.color(a))];
    slots_[slot].push_back(a);
    arc_slot_[a] = slot;
  }

  const std::size_t n = view.graph().num_nodes();
  roles_.assign(n * frame_length(), SlotRole::kIdle);
  for (std::size_t s = 0; s < frame_length(); ++s) {
    for (ArcId a : slots_[s]) {
      auto& tx = roles_[view.tail(a) * frame_length() + s];
      auto& rx = roles_[view.head(a) * frame_length() + s];
      FDLSP_REQUIRE(tx != SlotRole::kReceive && rx != SlotRole::kTransmit,
                    "node scheduled to transmit and receive in one slot");
      tx = SlotRole::kTransmit;
      rx = SlotRole::kReceive;
    }
  }
}

SlotRole TdmaSchedule::role(NodeId v, std::size_t s) const {
  FDLSP_REQUIRE(v < view_.graph().num_nodes() && s < frame_length(),
                "role query out of range");
  return roles_[v * frame_length() + s];
}

std::vector<std::size_t> TdmaSchedule::transmit_slots(NodeId v) const {
  std::vector<std::size_t> result;
  for (std::size_t s = 0; s < frame_length(); ++s)
    if (role(v, s) == SlotRole::kTransmit) result.push_back(s);
  return result;
}

std::vector<std::size_t> TdmaSchedule::receive_slots(NodeId v) const {
  std::vector<std::size_t> result;
  for (std::size_t s = 0; s < frame_length(); ++s)
    if (role(v, s) == SlotRole::kReceive) result.push_back(s);
  return result;
}

}  // namespace fdlsp
