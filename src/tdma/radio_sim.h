// Physical-layer replay of a TDMA schedule.
//
// Plays every slot of a frame: all scheduled transmitters key their radios,
// every receiver hears the superposition of its transmitting neighbors, and
// a reception succeeds iff exactly one neighbor transmits (and the receiver
// itself is silent). This checks the hidden-terminal property *physically*,
// independent of the conflict predicate — the two must agree, which is what
// makes the radio simulator a second oracle in tests.
#pragma once

#include <vector>

#include "tdma/schedule.h"

namespace fdlsp {

/// One failed reception.
struct RadioFailure {
  ArcId arc;               ///< the intended transmission
  std::size_t slot;        ///< slot in which it failed
  std::size_t interferers; ///< transmitting neighbors heard by the receiver
  bool receiver_was_transmitting = false;
};

/// Result of replaying one frame.
struct RadioReport {
  std::size_t scheduled = 0;  ///< arcs scheduled over the frame
  std::size_t delivered = 0;  ///< receptions that succeeded
  std::vector<RadioFailure> failures;

  bool collision_free() const noexcept { return failures.empty(); }
};

/// Replays one frame of `schedule` and reports per-arc delivery.
RadioReport replay_frame(const TdmaSchedule& schedule);

}  // namespace fdlsp
