#include "io/io.h"

#include <fstream>
#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

#include "graph/arcs.h"
#include "support/check.h"

namespace fdlsp {

namespace {

/// Reads the next meaningful line (skipping blanks and '#' comments).
bool next_line(std::istream& is, std::string& line) {
  while (std::getline(is, line)) {
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    if (line[first] == '#') continue;
    return true;
  }
  return false;
}

}  // namespace

void write_graph(std::ostream& os, const Graph& graph,
                 const std::vector<Point>* positions) {
  os << "graph " << graph.num_nodes() << ' ' << graph.num_edges() << '\n';
  for (const Edge& e : graph.edges()) os << "e " << e.u << ' ' << e.v << '\n';
  if (positions) {
    FDLSP_REQUIRE(positions->size() == graph.num_nodes(),
                  "positions must cover every node");
    // Round-trip exactly: max_digits10 preserves the double bit pattern.
    const auto saved_precision = os.precision();
    os << std::setprecision(std::numeric_limits<double>::max_digits10);
    for (NodeId v = 0; v < graph.num_nodes(); ++v)
      os << "pos " << v << ' ' << (*positions)[v].x << ' '
         << (*positions)[v].y << '\n';
    os << std::setprecision(static_cast<int>(saved_precision));
  }
}

GeometricGraph read_graph(std::istream& is) {
  std::string line;
  FDLSP_REQUIRE(next_line(is, line), "missing graph header");
  std::istringstream header(line);
  std::string keyword;
  std::size_t n = 0, m = 0;
  header >> keyword >> n >> m;
  FDLSP_REQUIRE(keyword == "graph" && !header.fail(),
                "malformed graph header");

  GraphBuilder builder(n);
  std::vector<Point> positions;
  for (std::size_t i = 0; i < m; ++i) {
    FDLSP_REQUIRE(next_line(is, line), "missing edge line");
    std::istringstream edge_line(line);
    NodeId u = 0, v = 0;
    edge_line >> keyword >> u >> v;
    FDLSP_REQUIRE(keyword == "e" && !edge_line.fail(), "malformed edge line");
    builder.add_edge(u, v);
  }
  while (next_line(is, line)) {
    std::istringstream pos_line(line);
    NodeId v = 0;
    Point p;
    pos_line >> keyword >> v >> p.x >> p.y;
    FDLSP_REQUIRE(keyword == "pos" && !pos_line.fail() && v < n,
                  "malformed position line");
    if (positions.empty()) positions.resize(n);
    positions[v] = p;
  }
  return GeometricGraph{builder.build(), std::move(positions)};
}

void write_schedule(std::ostream& os, const ArcColoring& coloring) {
  os << "schedule " << coloring.num_arcs() << '\n';
  for (ArcId a = 0; a < coloring.num_arcs(); ++a)
    os << "a " << a << ' ' << coloring.color(a) << '\n';
}

ArcColoring read_schedule(std::istream& is) {
  std::string line;
  FDLSP_REQUIRE(next_line(is, line), "missing schedule header");
  std::istringstream header(line);
  std::string keyword;
  std::size_t num_arcs = 0;
  header >> keyword >> num_arcs;
  FDLSP_REQUIRE(keyword == "schedule" && !header.fail(),
                "malformed schedule header");
  ArcColoring coloring(num_arcs);
  for (std::size_t i = 0; i < num_arcs; ++i) {
    FDLSP_REQUIRE(next_line(is, line), "missing arc line");
    std::istringstream arc_line(line);
    ArcId a = 0;
    Color c = kNoColor;
    arc_line >> keyword >> a >> c;
    FDLSP_REQUIRE(keyword == "a" && !arc_line.fail() && a < num_arcs,
                  "malformed arc line");
    if (c != kNoColor) coloring.set(a, c);
  }
  return coloring;
}

void write_dot(std::ostream& os, const Graph& graph,
               const ArcColoring* coloring) {
  if (!coloring) {
    os << "graph fdlsp {\n";
    for (const Edge& e : graph.edges())
      os << "  " << e.u << " -- " << e.v << ";\n";
    os << "}\n";
    return;
  }
  const ArcView view(graph);
  os << "digraph fdlsp {\n";
  for (ArcId a = 0; a < view.num_arcs(); ++a) {
    os << "  " << view.tail(a) << " -> " << view.head(a);
    if (coloring->is_colored(a))
      os << " [label=\"" << coloring->color(a) << "\"]";
    os << ";\n";
  }
  os << "}\n";
}

void save_graph_file(const std::string& path, const Graph& graph,
                     const std::vector<Point>* positions) {
  std::ofstream file(path);
  FDLSP_REQUIRE(file.good(), "cannot open file for writing");
  write_graph(file, graph, positions);
  FDLSP_REQUIRE(file.good(), "graph write failed");
}

GeometricGraph load_graph_file(const std::string& path) {
  std::ifstream file(path);
  FDLSP_REQUIRE(file.good(), "cannot open file for reading");
  return read_graph(file);
}

void save_schedule_file(const std::string& path, const ArcColoring& coloring) {
  std::ofstream file(path);
  FDLSP_REQUIRE(file.good(), "cannot open file for writing");
  write_schedule(file, coloring);
  FDLSP_REQUIRE(file.good(), "schedule write failed");
}

ArcColoring load_schedule_file(const std::string& path) {
  std::ifstream file(path);
  FDLSP_REQUIRE(file.good(), "cannot open file for reading");
  return read_schedule(file);
}

}  // namespace fdlsp
