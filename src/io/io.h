// (include as "io/io.h")
// Text serialization for graphs, positions and schedules, plus Graphviz
// export — the glue a deployed toolchain needs to move topologies and
// frames between the scheduler and the sensors' configuration images.
//
// Graph format (line-oriented, '#' comments):
//   graph <num_nodes> <num_edges>
//   e <u> <v>                # one line per edge, in EdgeId order
//   pos <node> <x> <y>       # optional, geometric graphs only
//
// Schedule format:
//   schedule <num_arcs>
//   a <arc> <color>          # one line per arc
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "coloring/coloring.h"
#include "graph/generators.h"
#include "graph/graph.h"

namespace fdlsp {

/// Writes a graph (and positions, if given) in the text format above.
void write_graph(std::ostream& os, const Graph& graph,
                 const std::vector<Point>* positions = nullptr);

/// Parses the text format; throws contract_error on malformed input.
GeometricGraph read_graph(std::istream& is);

/// Writes an arc coloring.
void write_schedule(std::ostream& os, const ArcColoring& coloring);

/// Parses an arc coloring; throws contract_error on malformed input.
ArcColoring read_schedule(std::istream& is);

/// Graphviz dot export; arcs are labelled with their slot when a coloring
/// is supplied, otherwise plain undirected edges are emitted.
void write_dot(std::ostream& os, const Graph& graph,
               const ArcColoring* coloring = nullptr);

/// Convenience file wrappers (throw contract_error on I/O failure).
void save_graph_file(const std::string& path, const Graph& graph,
                     const std::vector<Point>* positions = nullptr);
GeometricGraph load_graph_file(const std::string& path);
void save_schedule_file(const std::string& path, const ArcColoring& coloring);
ArcColoring load_schedule_file(const std::string& path);

}  // namespace fdlsp
