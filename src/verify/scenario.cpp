#include "verify/scenario.h"

#include <cmath>
#include <cstdio>

#include "graph/generators.h"
#include "support/check.h"
#include "support/rng.h"

namespace fdlsp {

std::string family_name(GraphFamily family) {
  switch (family) {
    case GraphFamily::kUdg:
      return "udg";
    case GraphFamily::kGnm:
      return "gnm";
    case GraphFamily::kTree:
      return "tree";
    case GraphFamily::kGrid:
      return "grid";
    case GraphFamily::kRing:
      return "ring";
    case GraphFamily::kStar:
      return "star";
  }
  FDLSP_REQUIRE(false, "unknown graph family");
  return {};
}

Graph materialize(const Scenario& scenario) {
  if (!scenario.explicit_edges.empty() || scenario.explicit_n > 0) {
    GraphBuilder builder(scenario.explicit_n);
    for (const Edge& e : scenario.explicit_edges) builder.add_edge(e.u, e.v);
    return builder.build();
  }
  FDLSP_REQUIRE(scenario.n > 0, "scenario must have nodes");
  Rng rng(scenario.seed);
  switch (scenario.family) {
    case GraphFamily::kUdg: {
      // Fixed 4×4 field; the density knob sweeps the radius from barely
      // connected dust to near-complete neighborhoods.
      const double radius = 0.4 + 1.6 * scenario.density;
      return generate_udg(scenario.n, 4.0, radius, rng).graph;
    }
    case GraphFamily::kGnm: {
      const std::size_t max_edges = scenario.n * (scenario.n - 1) / 2;
      const auto m = static_cast<std::size_t>(
          std::floor(scenario.density * static_cast<double>(max_edges)));
      return generate_gnm(scenario.n, m, rng);
    }
    case GraphFamily::kTree:
      return generate_random_tree(scenario.n, rng);
    case GraphFamily::kGrid: {
      // rows*cols closest to n with a roughly square aspect.
      auto rows = static_cast<std::size_t>(
          std::sqrt(static_cast<double>(scenario.n)));
      if (rows == 0) rows = 1;
      const std::size_t cols = (scenario.n + rows - 1) / rows;
      return generate_grid(rows, cols);
    }
    case GraphFamily::kRing:
      // generate_cycle needs n >= 3; below that fall back to a path.
      return scenario.n >= 3 ? generate_cycle(scenario.n)
                             : generate_path(scenario.n);
    case GraphFamily::kStar:
      return generate_star(scenario.n);
  }
  FDLSP_REQUIRE(false, "unknown graph family");
  return Graph(0);
}

Scenario scenario_from_graph(const Graph& graph) {
  Scenario scenario;
  scenario.explicit_n = graph.num_nodes();
  scenario.explicit_edges.assign(graph.edges().begin(), graph.edges().end());
  return scenario;
}

std::string repro_command(const Scenario& scenario,
                          const std::string& algorithm) {
  char buffer[160];
  std::snprintf(buffer, sizeof(buffer),
                "--family=%s --n=%zu --density=%.2f --seed=%llu "
                "--scheduler=%s",
                family_name(scenario.family).c_str(), scenario.n,
                scenario.density,
                static_cast<unsigned long long>(scenario.seed),
                algorithm.c_str());
  return buffer;
}

std::string format_graph(const Graph& graph) {
  std::string out = "n=" + std::to_string(graph.num_nodes()) + " edges=[";
  bool first = true;
  for (const Edge& e : graph.edges()) {
    if (!first) out += ",";
    first = false;
    out += "(" + std::to_string(e.u) + "," + std::to_string(e.v) + ")";
  }
  out += "]";
  return out;
}

std::vector<Scenario> sample_scenarios(std::size_t count, std::uint64_t seed,
                                       std::size_t max_n) {
  FDLSP_REQUIRE(max_n >= 4, "scenarios need at least 4 nodes of headroom");
  std::vector<Scenario> scenarios;
  scenarios.reserve(count);
  Rng rng(seed);
  constexpr std::size_t kNumFamilies =
      sizeof(kAllFamilies) / sizeof(kAllFamilies[0]);
  for (std::size_t i = 0; i < count; ++i) {
    Scenario s;
    s.family = kAllFamilies[i % kNumFamilies];
    s.n = 4 + rng.next_index(max_n - 3);
    // Sweep sparse to dense; quadratic skew keeps most instances sparse,
    // where the distributed algorithms do interesting work.
    const double u = rng.next_double();
    s.density = 0.05 + 0.95 * u * u;
    s.seed = rng();
    scenarios.push_back(s);
  }
  return scenarios;
}

}  // namespace fdlsp
