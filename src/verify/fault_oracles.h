// Fault-aware verify oracles: the executable form of the robustness claims.
//
// Two new oracles join the battery in verify/oracles.h:
//
//   * fault-quiescence — under any bounded-loss FaultPlan (sim/fault.h), a
//     scheduler hardened with the reliable wrapper (sim/reliable.h) still
//     terminates and still produces a complete, feasible, deterministic
//     coloring. This is the end-to-end statement of the wrapper's delivery
//     guarantee: bounded per-channel loss + finite churn windows =>
//     retransmission restores the perfect-channel semantics the algorithms
//     assume.
//
//   * recovery-locality — after fail-stop crashes and link churn orphan
//     part of a schedule, re-running dist_repair on the stale coloring (a)
//     restores completeness and feasibility, (b) leaves every intact arc's
//     color untouched, and (c) only changes arcs whose tail lies within
//     distance 2 of the faulted region. The paper's repair cost argument
//     ("only nodes within distance ~2 of a change compete") becomes a
//     checkable safety property.
//
// The module also extends the delta-debugging story to fault plans:
// shrink_fault_case minimizes (graph, FaultSpec) jointly, and
// fault_repro_command renders the result as a one-line replay invocation
// (examples/replay --faults=...).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "algos/scheduler.h"
#include "graph/graph.h"
#include "sim/fault.h"
#include "verify/oracles.h"
#include "verify/scenario.h"
#include "verify/shrink.h"

namespace fdlsp {

/// Judges an already-produced faulted run: termination (with the watchdog's
/// stall diagnosis surfaced on failure), coloring completeness, and
/// distance-2 feasibility.
///
/// `spec`, when non-null with crashes or link churn armed, scopes the
/// guarantee: arcs with an endpoint inside the distance-1 ball of the
/// faulted region (crashed nodes, churned-edge endpoints) are exempt from
/// both completeness and feasibility — a dead relay severs the distance-2
/// knowledge path, so survivors adjacent to it can legitimately disagree.
/// Their correctness story is check_crash_recovery. Every arc outside the
/// ball keeps the full guarantee. A null spec (or a loss-only spec) checks
/// the whole coloring strictly.
OracleVerdict check_fault_result(const Graph& graph,
                                 const ScheduleResult& result,
                                 const FaultSpec* spec = nullptr);

/// The fault-quiescence oracle. Runs `kind` hardened with the reliable
/// wrapper under `spec`, applies check_fault_result, then re-runs with the
/// identical spec and fails unless the coloring is byte-identical (fault
/// injection must not break seed-determinism). Centralized baselines run
/// fault-free and pass trivially.
OracleVerdict check_fault_quiescence(SchedulerKind kind, const Graph& graph,
                                     std::uint64_t seed,
                                     const FaultSpec& spec);

/// The burst-quiescence oracle: graceful degradation under correlated loss.
/// Runs `kind` hardened with the adaptive transport under `spec` (meant for
/// specs with bursts / PRR / region outages armed), applies
/// check_fault_result, re-runs for byte-determinism, and — for synchronous
/// schedulers on crash-free specs — bounds the faulted round count by the
/// clean run's rounds times the transport's provisioned dilation plus a
/// drain margin: the executable form of "bounded bursts delay the schedule,
/// they never livelock it". Asynchronous runs are bounded by the engine's
/// event watchdog instead (a livelock fails `completed`).
OracleVerdict check_burst_quiescence(SchedulerKind kind, const Graph& graph,
                                     std::uint64_t seed,
                                     const FaultSpec& spec);

/// The failure-detector oracle. Runs `kind` hardened with the adaptive
/// transport under `spec` and holds the detector to:
///   * accuracy — with no churn/outage windows armed, bounded loss alone
///     never gets a live peer suspected: under loss-only specs `suspected`
///     must be empty, and with crashes armed it must be a subset of the
///     crash schedule.
///   * consistency — frames are abandoned only on peers that were suspected
///     first (abandoned > 0 implies suspicions > 0), and every re-trust
///     pairs with an earlier suspicion (retrusts <= suspicions).
/// Completeness (a crashed peer with pending traffic is eventually
/// suspected) is pinned by the targeted transport tests
/// (reliable_channel_test), which control exactly who sends what.
OracleVerdict check_detector(SchedulerKind kind, const Graph& graph,
                             std::uint64_t seed, const FaultSpec& spec);

/// Outcome of the crash-recovery workflow.
struct CrashRecoveryReport {
  bool ok = true;
  std::string failure;             ///< first failing check, human-readable
  std::size_t orphaned_arcs = 0;   ///< arcs the fault model invalidated
  std::size_t changed_arcs = 0;    ///< arcs whose color differs from stale
  std::size_t repair_rounds = 0;   ///< rounds the repair run consumed
  std::size_t repair_messages = 0;
};

/// The recovery-locality oracle. Produces a clean schedule with `kind`,
/// orphans it according to `spec`'s crash/churn draws (a crashed node
/// recovers with state loss — its out-arc colors are forgotten; a churned
/// edge forgets both directions), repairs it with run_distributed_repair,
/// and checks feasibility, intact-arc stability, and the distance-2
/// locality of every changed arc. A spec with no crash/churn armed yields
/// a trivial ok report (orphaned_arcs == 0).
CrashRecoveryReport check_crash_recovery(SchedulerKind kind,
                                         const Graph& graph,
                                         std::uint64_t seed,
                                         const FaultSpec& spec);

/// Returns true iff the failure still reproduces on (candidate graph,
/// candidate fault spec).
using FaultFailingPredicate =
    std::function<bool(const Graph& graph, const FaultSpec& spec)>;

/// Result of a joint (graph, spec) shrink.
struct FaultShrinkOutcome {
  Graph graph;             ///< smallest failing graph found
  FaultSpec spec;          ///< simplest failing fault spec found
  std::size_t checks = 0;  ///< predicate calls spent
};

/// Minimizes a failing fault case along both axes: first the graph (ddmin
/// via shrink_graph, spec held fixed), then the spec (disarming whole fault
/// classes, resetting seed/cap to defaults, halving rates — greedily, to a
/// fixpoint), then the graph once more under the simplified spec.
/// Deterministic; `still_fails` must hold on the inputs.
FaultShrinkOutcome shrink_fault_case(const Graph& start, const FaultSpec& spec,
                                     const FaultFailingPredicate& still_fails,
                                     const ShrinkOptions& options = {});

/// One-line replay command including the fault plan, e.g.
///   --family=ring --n=8 --density=0.50 --seed=3 --scheduler=DFS
///       --faults=drop=0.1,crash=0.25
std::string fault_repro_command(const Scenario& scenario,
                                const std::string& algorithm,
                                const FaultSpec& spec);

}  // namespace fdlsp
