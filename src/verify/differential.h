// Differential fuzzing driver: scenarios × schedulers × oracles × shrink.
//
// The entry points every property test (and future regression gate) uses:
//   check_scenario  — materialize one scenario, run one algorithm through
//                     the oracle battery; on failure shrink the graph to a
//                     minimal reproducer and return a FailureReport whose
//                     to_string() is a ready-to-paste bug report with a
//                     one-line repro command.
//   fuzz_scheduler  — sweep a scenario batch and collect every failure.
// Built-in scheduler kinds run via run_scheduler_on_components, so
// disconnected fuzzed instances are handled the same way the experiment
// harness handles them (DFS per component with slot reuse).
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "algos/scheduler.h"
#include "verify/oracles.h"
#include "verify/scenario.h"
#include "verify/shrink.h"

namespace fdlsp {

/// Tunables for a differential check.
struct DifferentialOptions {
  OracleOptions oracles;
  bool shrink_on_failure = true;
  ShrinkOptions shrink;
};

/// Everything needed to reproduce and debug one oracle failure.
struct FailureReport {
  std::string algorithm;       ///< scheduler under test
  Scenario scenario;           ///< the original failing scenario
  std::string oracle_failure;  ///< failing oracle on the original instance
  std::string repro;           ///< one-line command for the original
  Graph shrunk;                ///< minimal failing graph (== original if
                               ///< shrinking was disabled or exhausted)
  std::string shrunk_failure;  ///< failing oracle on the shrunk instance
};

/// Multi-line human-readable form of a failure (repro command, shrunk
/// witness edge list, oracle messages).
std::string to_string(const FailureReport& report);

/// Checks an arbitrary scheduling function against the battery on one
/// scenario. Returns the report on failure, nullopt when all oracles pass.
std::optional<FailureReport> check_scenario(const ScheduleFn& run,
                                            const std::string& algorithm,
                                            const Scenario& scenario,
                                            const DifferentialOptions& options);

/// Same for a built-in scheduler kind; oracle gating defaults to
/// oracle_options_for(kind).
std::optional<FailureReport> check_scenario(SchedulerKind kind,
                                            const Scenario& scenario);

/// Aggregate over a scenario batch.
struct FuzzSummary {
  std::size_t scenarios = 0;
  std::vector<FailureReport> failures;
};

/// Runs `kind` over every scenario, collecting all failures.
FuzzSummary fuzz_scheduler(SchedulerKind kind,
                           std::span<const Scenario> scenarios);

}  // namespace fdlsp
