// Differential fuzzing driver: scenarios × schedulers × oracles × shrink.
//
// The entry points every property test (and future regression gate) uses:
//   check_scenario  — materialize one scenario, run one algorithm through
//                     the oracle battery; on failure shrink the graph to a
//                     minimal reproducer and return a FailureReport whose
//                     to_string() is a ready-to-paste bug report with a
//                     one-line repro command.
//   fuzz_scheduler  — sweep a scenario batch and collect every failure.
//   run_scenarios   — generic sharded sweep driver: fans a scenario batch
//                     across a ThreadPool and merges per-scenario outcomes
//                     in index order, so the aggregate (counts AND failure
//                     ordering) is identical to the serial sweep for any
//                     thread count. Property suites build on it instead of
//                     hand-rolling their scenario loops.
// Built-in scheduler kinds run via run_scheduler_on_components, so
// disconnected fuzzed instances are handled the same way the experiment
// harness handles them (DFS per component with slot reuse).
#pragma once

#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "algos/scheduler.h"
#include "verify/oracles.h"
#include "verify/scenario.h"
#include "verify/shrink.h"

namespace fdlsp {

class ThreadPool;

/// Tunables for a differential check.
struct DifferentialOptions {
  OracleOptions oracles;
  bool shrink_on_failure = true;
  ShrinkOptions shrink;
};

/// Everything needed to reproduce and debug one oracle failure.
struct FailureReport {
  std::string algorithm;       ///< scheduler under test
  Scenario scenario;           ///< the original failing scenario
  std::string oracle_failure;  ///< failing oracle on the original instance
  std::string repro;           ///< one-line command for the original
  Graph shrunk;                ///< minimal failing graph (== original if
                               ///< shrinking was disabled or exhausted)
  std::string shrunk_failure;  ///< failing oracle on the shrunk instance
};

/// Multi-line human-readable form of a failure (repro command, shrunk
/// witness edge list, oracle messages).
std::string to_string(const FailureReport& report);

/// Checks an arbitrary scheduling function against the battery on one
/// scenario. Returns the report on failure, nullopt when all oracles pass.
std::optional<FailureReport> check_scenario(const ScheduleFn& run,
                                            const std::string& algorithm,
                                            const Scenario& scenario,
                                            const DifferentialOptions& options);

/// Same for a built-in scheduler kind; oracle gating defaults to
/// oracle_options_for(kind).
std::optional<FailureReport> check_scenario(SchedulerKind kind,
                                            const Scenario& scenario);

/// Aggregate over a scenario batch.
struct FuzzSummary {
  std::size_t scenarios = 0;
  std::vector<FailureReport> failures;
};

/// Runs `kind` over every scenario, collecting all failures. A non-null
/// `pool` shards the batch across its workers; the summary is identical to
/// the serial sweep (failures reported lowest scenario index first).
FuzzSummary fuzz_scheduler(SchedulerKind kind,
                           std::span<const Scenario> scenarios,
                           ThreadPool* pool = nullptr);

/// Outcome of checking one scenario, as reported by a ScenarioCheckFn.
struct ScenarioOutcome {
  std::size_t checks = 0;              ///< property/oracle checks performed
  std::vector<std::string> failures;   ///< empty when the scenario passed
};

/// One scenario's property check. Receives the scenario and its index in
/// the batch; must not touch shared mutable state (it may run on any pool
/// worker) and must be deterministic in (scenario, index) — both are
/// satisfied naturally by seeding from scenario.seed.
using ScenarioCheckFn =
    std::function<ScenarioOutcome(const Scenario&, std::size_t)>;

/// Aggregate of a sharded scenario sweep.
struct ScenarioSweep {
  std::size_t scenarios = 0;           ///< scenarios checked
  std::size_t checks = 0;              ///< total checks across the batch
  std::vector<std::string> failures;   ///< ascending scenario-index order
  bool ok() const { return failures.empty(); }
  /// All failure messages joined for a one-shot assertion message.
  std::string failure_digest() const;
};

/// Sweeps `check` over the batch. With a non-null pool the scenarios fan
/// out across its workers; outcomes are merged in scenario-index order, so
/// counts and failure ordering are byte-identical to the serial sweep
/// (lowest failing index always reported first) for any thread count.
/// Exceptions thrown by `check` propagate (first one, by pool contract).
ScenarioSweep run_scenarios(std::span<const Scenario> scenarios,
                            const ScenarioCheckFn& check,
                            ThreadPool* pool = nullptr);

/// Sharded-engine determinism probe (DESIGN.md §14): materializes the
/// scenario, runs `kind` serially, then once per entry of `shard_counts`
/// with engine state sharded across `pool` (SyncEngine::set_shards), and
/// compares each sharded result to the serial one byte-for-byte — coloring
/// bytes, slot count, rounds, messages, completion. One check per shard
/// count; each divergence becomes one failure string carrying the repro
/// command. Shaped as a ScenarioCheckFn body so property suites sweep it
/// with run_scenarios.
ScenarioOutcome check_shard_determinism(SchedulerKind kind,
                                        const Scenario& scenario,
                                        std::span<const std::size_t> shard_counts,
                                        ThreadPool& pool);

}  // namespace fdlsp
