#include "verify/differential.h"

#include <utility>

#include "exp/workloads.h"
#include "support/parallel_for.h"
#include "support/thread_pool.h"

namespace fdlsp {

std::string to_string(const FailureReport& report) {
  std::string out;
  out += "[" + report.algorithm + "] oracle failure: " +
         report.oracle_failure + "\n";
  out += "repro: " + report.repro + "\n";
  out += "shrunk witness (" + report.shrunk_failure + "): " +
         format_graph(report.shrunk) + "\n";
  return out;
}

std::optional<FailureReport> check_scenario(
    const ScheduleFn& run, const std::string& algorithm,
    const Scenario& scenario, const DifferentialOptions& options) {
  const Graph graph = materialize(scenario);
  const OracleVerdict verdict =
      check_oracles(run, graph, scenario.seed, options.oracles);
  if (verdict.ok) return std::nullopt;

  FailureReport report;
  report.algorithm = algorithm;
  report.scenario = scenario;
  report.oracle_failure = verdict.failure;
  report.repro = repro_command(scenario, algorithm);
  report.shrunk = graph;
  report.shrunk_failure = verdict.failure;

  if (options.shrink_on_failure) {
    const auto still_fails = [&](const Graph& candidate) {
      return !check_oracles(run, candidate, scenario.seed, options.oracles)
                  .ok;
    };
    ShrinkOutcome outcome =
        shrink_graph(graph, still_fails, options.shrink);
    report.shrunk = std::move(outcome.graph);
    report.shrunk_failure =
        check_oracles(run, report.shrunk, scenario.seed, options.oracles)
            .failure;
  }
  return report;
}

std::optional<FailureReport> check_scenario(SchedulerKind kind,
                                            const Scenario& scenario) {
  DifferentialOptions options;
  options.oracles = oracle_options_for(kind);
  const ScheduleFn run = [kind](const Graph& graph, std::uint64_t seed) {
    return run_scheduler_on_components(kind, graph, seed);
  };
  return check_scenario(run, scheduler_name(kind), scenario, options);
}

FuzzSummary fuzz_scheduler(SchedulerKind kind,
                           std::span<const Scenario> scenarios,
                           ThreadPool* pool) {
  FuzzSummary summary;
  summary.scenarios = scenarios.size();
  if (pool == nullptr || pool->size() <= 1 || scenarios.size() <= 1) {
    for (const Scenario& scenario : scenarios)
      if (auto report = check_scenario(kind, scenario))
        summary.failures.push_back(std::move(*report));
    return summary;
  }
  // Per-index slots: each worker writes only its own scenario's slot, and
  // the merge walks slots in index order, so the failure list is identical
  // to the serial sweep for any thread count.
  std::vector<std::optional<FailureReport>> slots(scenarios.size());
  parallel_for(*pool, scenarios.size(), [&](std::size_t i) {
    slots[i] = check_scenario(kind, scenarios[i]);
  });
  for (auto& slot : slots)
    if (slot.has_value()) summary.failures.push_back(std::move(*slot));
  return summary;
}

std::string ScenarioSweep::failure_digest() const {
  std::string out;
  for (const std::string& failure : failures) {
    if (!out.empty()) out += "\n";
    out += failure;
  }
  return out;
}

ScenarioSweep run_scenarios(std::span<const Scenario> scenarios,
                            const ScenarioCheckFn& check,
                            ThreadPool* pool) {
  ScenarioSweep sweep;
  sweep.scenarios = scenarios.size();
  std::vector<ScenarioOutcome> slots(scenarios.size());
  if (pool == nullptr || pool->size() <= 1 || scenarios.size() <= 1) {
    for (std::size_t i = 0; i < scenarios.size(); ++i)
      slots[i] = check(scenarios[i], i);
  } else {
    parallel_for(*pool, scenarios.size(), [&](std::size_t i) {
      slots[i] = check(scenarios[i], i);
    });
  }
  // Merge in index order: counts and failure ordering match the serial
  // sweep exactly (lowest failing index first).
  for (ScenarioOutcome& outcome : slots) {
    sweep.checks += outcome.checks;
    for (std::string& failure : outcome.failures)
      sweep.failures.push_back(std::move(failure));
  }
  return sweep;
}

ScenarioOutcome check_shard_determinism(
    SchedulerKind kind, const Scenario& scenario,
    std::span<const std::size_t> shard_counts, ThreadPool& pool) {
  ScenarioOutcome outcome;
  const Graph graph = materialize(scenario);
  const ScheduleResult serial = run_scheduler(kind, graph, scenario.seed);
  for (const std::size_t shards : shard_counts) {
    ++outcome.checks;
    const ScheduleResult sharded =
        run_scheduler_sharded(kind, graph, scenario.seed, pool, shards);
    const bool identical = serial.coloring.raw() == sharded.coloring.raw() &&
                           serial.num_slots == sharded.num_slots &&
                           serial.rounds == sharded.rounds &&
                           serial.messages == sharded.messages &&
                           serial.completed == sharded.completed;
    if (!identical) {
      outcome.failures.push_back(
          "sharded run diverged from serial at shards=" +
          std::to_string(shards) + ": " + repro_command(scenario, kind));
    }
  }
  return outcome;
}

}  // namespace fdlsp
