#include "verify/differential.h"

#include <utility>

#include "exp/workloads.h"

namespace fdlsp {

std::string to_string(const FailureReport& report) {
  std::string out;
  out += "[" + report.algorithm + "] oracle failure: " +
         report.oracle_failure + "\n";
  out += "repro: " + report.repro + "\n";
  out += "shrunk witness (" + report.shrunk_failure + "): " +
         format_graph(report.shrunk) + "\n";
  return out;
}

std::optional<FailureReport> check_scenario(
    const ScheduleFn& run, const std::string& algorithm,
    const Scenario& scenario, const DifferentialOptions& options) {
  const Graph graph = materialize(scenario);
  const OracleVerdict verdict =
      check_oracles(run, graph, scenario.seed, options.oracles);
  if (verdict.ok) return std::nullopt;

  FailureReport report;
  report.algorithm = algorithm;
  report.scenario = scenario;
  report.oracle_failure = verdict.failure;
  report.repro = repro_command(scenario, algorithm);
  report.shrunk = graph;
  report.shrunk_failure = verdict.failure;

  if (options.shrink_on_failure) {
    const auto still_fails = [&](const Graph& candidate) {
      return !check_oracles(run, candidate, scenario.seed, options.oracles)
                  .ok;
    };
    ShrinkOutcome outcome =
        shrink_graph(graph, still_fails, options.shrink);
    report.shrunk = std::move(outcome.graph);
    report.shrunk_failure =
        check_oracles(run, report.shrunk, scenario.seed, options.oracles)
            .failure;
  }
  return report;
}

std::optional<FailureReport> check_scenario(SchedulerKind kind,
                                            const Scenario& scenario) {
  DifferentialOptions options;
  options.oracles = oracle_options_for(kind);
  const ScheduleFn run = [kind](const Graph& graph, std::uint64_t seed) {
    return run_scheduler_on_components(kind, graph, seed);
  };
  return check_scenario(run, scheduler_name(kind), scenario, options);
}

FuzzSummary fuzz_scheduler(SchedulerKind kind,
                           std::span<const Scenario> scenarios) {
  FuzzSummary summary;
  for (const Scenario& scenario : scenarios) {
    ++summary.scenarios;
    if (auto report = check_scenario(kind, scenario))
      summary.failures.push_back(std::move(*report));
  }
  return summary;
}

}  // namespace fdlsp
