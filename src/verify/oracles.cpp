#include "verify/oracles.h"

#include <algorithm>
#include <utility>

#include "coloring/bounds.h"
#include "coloring/checker.h"
#include "coloring/conflict_index.h"
#include "coloring/exact.h"
#include "graph/arcs.h"
#include "support/timer.h"
#include "verify/causality.h"

namespace fdlsp {

namespace {

std::string describe(const char* oracle, const std::string& detail) {
  return std::string(oracle) + ": " + detail;
}

}  // namespace

OracleVerdict check_oracles(const ScheduleFn& run, const Graph& graph,
                            std::uint64_t seed,
                            const OracleOptions& options) {
  OracleVerdict verdict;
  const ArcView view(graph);
  Timer timer;
  const auto record = [&](const char* oracle) {
    verdict.timings.push_back({oracle, timer.millis()});
    timer.reset();
  };
  const ScheduleResult result = run(graph, seed);
  record("run");

  // Every oracle below probes the conflict relation, so the battery
  // amortizes one shared index over all of them.
  const ConflictIndex index(view);
  record("conflict-index");

  // 1. Feasibility.
  if (result.coloring.num_arcs() != view.num_arcs()) {
    verdict.ok = false;
    verdict.failure = describe(
        "feasibility", "coloring covers " +
                           std::to_string(result.coloring.num_arcs()) +
                           " arcs, graph has " +
                           std::to_string(view.num_arcs()));
    return verdict;
  }
  if (!result.coloring.complete()) {
    verdict.ok = false;
    verdict.failure = describe(
        "feasibility",
        std::to_string(view.num_arcs() - result.coloring.num_colored()) +
            " arcs left uncolored");
    return verdict;
  }
  if (const auto witness = find_violation(view, result.coloring, &index)) {
    verdict.ok = false;
    verdict.failure = describe(
        "feasibility",
        "arcs " + std::to_string(witness->a) + " and " +
            std::to_string(witness->b) + " conflict but share slot " +
            std::to_string(result.coloring.color(witness->a)) + " (" +
            std::to_string(count_violations(view, result.coloring, &index)) +
            " violating pairs total)");
    return verdict;
  }
  record("feasibility");

  // 2. Bounds window.
  const std::size_t lower = lower_bound_theorem1(graph);
  if (result.num_slots < lower) {
    verdict.ok = false;
    verdict.failure = describe(
        "lower-bound", std::to_string(result.num_slots) +
                           " slots beat the Theorem 1 lower bound " +
                           std::to_string(lower) +
                           " — the schedule or the bound is wrong");
    return verdict;
  }
  if (options.check_upper_bound) {
    const std::size_t upper = upper_bound_colors(graph);
    if (result.num_slots > upper) {
      verdict.ok = false;
      verdict.failure = describe(
          "upper-bound", std::to_string(result.num_slots) +
                             " slots exceed the 2Δ² guarantee " +
                             std::to_string(upper));
      return verdict;
    }
  }
  record("bounds");

  // 3. Δ-approximation against the exact reference on small instances.
  if (options.check_approximation &&
      graph.num_nodes() <= options.exact_max_nodes &&
      graph.num_edges() > 0) {
    ExactOptions exact_options;
    exact_options.max_nodes = options.exact_bb_budget;
    const ExactFdlspResult exact = optimal_fdlsp(view, exact_options, &index);
    if (exact.optimal) {
      const std::size_t factor = std::max<std::size_t>(graph.max_degree(), 1);
      if (result.num_slots > factor * exact.num_colors) {
        verdict.ok = false;
        verdict.failure = describe(
            "approximation",
            std::to_string(result.num_slots) + " slots > Δ·OPT = " +
                std::to_string(factor) + "·" +
                std::to_string(exact.num_colors));
        return verdict;
      }
    }
    record("approximation");
  }

  // 4. Determinism: same seed, byte-identical coloring.
  if (options.check_determinism) {
    const ScheduleResult rerun = run(graph, seed);
    if (rerun.coloring.raw() != result.coloring.raw()) {
      verdict.ok = false;
      std::size_t first_diff = 0;
      const auto& a = result.coloring.raw();
      const auto& b = rerun.coloring.raw();
      while (first_diff < a.size() && first_diff < b.size() &&
             a[first_diff] == b[first_diff])
        ++first_diff;
      verdict.failure = describe(
          "determinism",
          "two runs with seed " + std::to_string(seed) +
              " diverge (first differing arc " +
              std::to_string(first_diff) + ")");
      return verdict;
    }
    record("determinism");
  }

  // 5. Causality: no node read state it was never causally sent.
  if (options.causality_probe) {
    OracleVerdict probe = options.causality_probe(graph, seed);
    if (!probe.ok) {
      probe.timings.insert(probe.timings.begin(), verdict.timings.begin(),
                           verdict.timings.end());
      return probe;
    }
    record("causality");
  }

  return verdict;
}

OracleOptions oracle_options_for(SchedulerKind kind) {
  OracleOptions options;
  options.causality_probe = causality_probe_for(kind);
  switch (kind) {
    case SchedulerKind::kDmgc:
      // D-MGC can exceed 2Δ² (color injection) and claims no ratio.
      options.check_upper_bound = false;
      options.check_approximation = false;
      break;
    case SchedulerKind::kRandomized:
      // Distance-1 knowledge: feasible by construction but unbounded.
      options.check_upper_bound = false;
      options.check_approximation = false;
      break;
    default:
      break;
  }
  return options;
}

}  // namespace fdlsp
