// Randomized scenario descriptors for the verification harness.
//
// A Scenario is a compact, fully reproducible recipe for a test instance:
// graph family × size × density knob × seed. Materializing the same
// scenario twice yields byte-identical graphs, so every failure the fuzzer
// finds is replayable from the one-line repro command printed with it.
// Shrunk counterexamples no longer correspond to a generator invocation, so
// a scenario can alternatively carry an explicit edge list.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "algos/scheduler.h"
#include "graph/graph.h"

namespace fdlsp {

/// Graph families the fuzzer samples from.
enum class GraphFamily {
  kUdg,   ///< random unit disk graph; density scales the radius
  kGnm,   ///< Erdős–Rényi G(n, m); density = m / n(n-1)/2
  kTree,  ///< uniform random attachment tree (density unused)
  kGrid,  ///< rows×cols grid, rows*cols ≈ n (density unused)
  kRing,  ///< cycle on n nodes (density unused) — worst case for token loss
  kStar,  ///< star K_{1,n-1} (density unused) — hub crash kills everything
};

/// All families, for sweep loops.
inline constexpr GraphFamily kAllFamilies[] = {
    GraphFamily::kUdg,  GraphFamily::kGnm,  GraphFamily::kTree,
    GraphFamily::kGrid, GraphFamily::kRing, GraphFamily::kStar};

/// Family name as used in repro commands
/// ("udg", "gnm", "tree", "grid", "ring", "star").
std::string family_name(GraphFamily family);

/// One reproducible test instance.
struct Scenario {
  GraphFamily family = GraphFamily::kGnm;
  std::size_t n = 0;       ///< requested node count
  double density = 0.5;    ///< family-specific density knob in [0, 1]
  std::uint64_t seed = 0;  ///< generator seed

  /// When non-empty, materialize() ignores the generator fields and builds
  /// this exact graph on `explicit_n` nodes (used for shrunk reproducers).
  std::vector<Edge> explicit_edges;
  std::size_t explicit_n = 0;
};

/// Builds the scenario's graph. Deterministic: equal scenarios yield equal
/// graphs (same node ids, same edge ids).
Graph materialize(const Scenario& scenario);

/// Wraps an explicit graph as a scenario (shrunk reproducers).
Scenario scenario_from_graph(const Graph& graph);

/// One-line replay command for a generated scenario, e.g.
///   --family=gnm --n=12 --density=0.40 --seed=77 --scheduler=DFS
std::string repro_command(const Scenario& scenario,
                          const std::string& algorithm);
inline std::string repro_command(const Scenario& scenario,
                                 SchedulerKind kind) {
  return repro_command(scenario, scheduler_name(kind));
}

/// Compact printable form of a graph ("n=4 edges=[(0,1),(1,2),(2,3)]") for
/// embedding shrunk counterexamples in failure reports.
std::string format_graph(const Graph& graph);

/// Samples `count` scenarios cycling through all families, with node counts
/// in [4, max_n] and densities spanning sparse to dense. All randomness
/// derives from `seed`.
std::vector<Scenario> sample_scenarios(std::size_t count, std::uint64_t seed,
                                       std::size_t max_n);

}  // namespace fdlsp
