#include "verify/soak_oracles.h"

#include <algorithm>
#include <cstdio>

#include "coloring/checker.h"
#include "support/check.h"

namespace fdlsp {
namespace {

/// Flags for the distance-2 node ball of `touched` over `graph`.
std::vector<char> node_ball(const Graph& graph,
                            std::span<const NodeId> touched) {
  std::vector<char> in_ball(graph.num_nodes(), 0);
  std::vector<NodeId> frontier;
  for (const NodeId v : touched) {
    if (!in_ball[v]) {
      in_ball[v] = 1;
      frontier.push_back(v);
    }
  }
  std::vector<NodeId> next;
  for (int hop = 0; hop < 2; ++hop) {
    next.clear();
    for (const NodeId v : frontier) {
      for (const NeighborEntry& entry : graph.neighbors(v)) {
        if (!in_ball[entry.to]) {
          in_ball[entry.to] = 1;
          next.push_back(entry.to);
        }
      }
    }
    std::swap(frontier, next);
  }
  return in_ball;
}

std::string format_band(double band) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%g", band);
  return buffer;
}

std::string band_flag(const SoakOracleOptions* options) {
  if (options == nullptr || options->drift_band <= 0.0) return {};
  return " --soak-band=" + format_band(options->drift_band);
}

}  // namespace

SoakVerdict run_soak_with_oracles(const SoakSpec& spec,
                                  const SoakOptions& driver_options,
                                  const SoakOracleOptions& oracle_options) {
  SoakVerdict verdict;
  const double band = oracle_options.drift_band > 0.0
                          ? oracle_options.drift_band
                          : spec.drift_band;
  const bool faulted = driver_options.faults != nullptr;
  SoakDriver driver(spec, driver_options);

  const auto fail = [&](std::uint64_t at, std::string why) {
    verdict.ok = false;
    verdict.failing_event = at;
    verdict.failure = std::move(why);
  };

  // Whole-graph sweep: fresh-index byte-compare + full feasibility.
  const auto full_sweep = [&](std::uint64_t at) {
    const ArcView view(driver.graph());
    const ConflictIndex fresh(view);
    if (fresh.raw_offsets() != driver.index().raw_offsets() ||
        fresh.raw_neighbors() != driver.index().raw_neighbors()) {
      fail(at, "incremental ConflictIndex diverged from a fresh build");
      return false;
    }
    if (!driver.coloring().complete()) {
      fail(at, "schedule incomplete at full sweep");
      return false;
    }
    if (const auto witness = find_violation(view, driver.coloring(), &fresh)) {
      fail(at, "distance-2 violation at full sweep: arcs " +
                   std::to_string(witness->a) + " and " +
                   std::to_string(witness->b));
      return false;
    }
    return true;
  };

  driver.run([&](const SoakDriver& d, const SoakEventRecord& record) {
    if (oracle_options.check_feasibility) {
      if (!d.coloring().complete()) {
        fail(record.index, "schedule incomplete after event");
        return false;
      }
      // Only the recolored arcs can have broken feasibility (the rest of
      // the schedule was feasible and untouched); scan just their rows.
      for (const ArcId a : record.changed_arcs) {
        const Color c = d.coloring().color(a);
        for (const ArcId b : d.index().conflicts(a)) {
          if (d.coloring().color(b) == c) {
            fail(record.index, "distance-2 violation between arcs " +
                                   std::to_string(a) + " and " +
                                   std::to_string(b));
            return false;
          }
        }
      }
    }
    if (oracle_options.check_locality && !faulted && !record.fallback &&
        record.action == SoakAction::kRepair &&
        !record.changed_arcs.empty()) {
      const std::vector<char> ball = node_ball(d.graph(), record.touched);
      const ArcView view(d.graph());
      for (const ArcId a : record.changed_arcs) {
        if (!ball[view.tail(a)] && !ball[view.head(a)]) {
          fail(record.index, "repair recolored arc " + std::to_string(a) +
                                 " outside the distance-2 ball");
          return false;
        }
      }
    }
    if (oracle_options.check_drift) {
      const std::size_t bound = d.index().max_conflict_degree() + 1;
      if (static_cast<double>(record.num_slots) >
          band * static_cast<double>(bound)) {
        fail(record.index,
             "span " + std::to_string(record.num_slots) + " drifted past " +
                 format_band(band) + " x Lemma-6 bound " +
                 std::to_string(bound));
        return false;
      }
    }
    if (oracle_options.full_check_stride != 0 &&
        d.stats().events % oracle_options.full_check_stride == 0)
      return full_sweep(record.index);
    return true;
  });

  // Closing sweep over the final state (flagged with the stream length).
  if (verdict.ok && oracle_options.full_check_stride != 0)
    full_sweep(spec.events);

  verdict.stats = driver.stats();
  verdict.event_log = format_soak_log(driver.log());
  verdict.final_coloring = driver.coloring();
  return verdict;
}

OracleVerdict check_soak_determinism(const SoakSpec& spec,
                                     const SoakOptions& a,
                                     const SoakOptions& b) {
  OracleVerdict verdict;
  SoakDriver run_a(spec, a);
  SoakDriver run_b(spec, b);
  run_a.run();
  run_b.run();
  if (format_soak_log(run_a.log()) != format_soak_log(run_b.log())) {
    verdict.ok = false;
    verdict.failure = "soak event logs differ between the two runs";
  } else if (run_a.coloring().raw() != run_b.coloring().raw()) {
    verdict.ok = false;
    verdict.failure = "final soak schedules differ between the two runs";
  }
  return verdict;
}

SoakShrinkOutcome shrink_soak_case(const SoakSpec& start,
                                   const SoakFailingPredicate& still_fails,
                                   const ShrinkOptions& options) {
  SoakShrinkOutcome out;
  out.spec = start;
  std::sort(out.spec.skip.begin(), out.spec.skip.end());
  FDLSP_REQUIRE(still_fails(out.spec),
                "shrink_soak_case requires a failing spec");

  const auto fails = [&](const SoakSpec& candidate) {
    if (out.checks >= options.max_checks) return false;
    ++out.checks;
    return still_fails(candidate);
  };

  // Stage 1: shortest failing stream prefix. Events past the violating one
  // cannot influence it (draws are per-index), so the predicate is monotone
  // in the prefix length.
  std::uint64_t lo = 0;
  std::uint64_t hi = out.spec.events;
  while (lo < hi) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    SoakSpec candidate = out.spec;
    candidate.events = mid;
    if (fails(candidate)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  out.spec.events = hi;
  std::erase_if(out.spec.skip,
                [&](std::uint64_t i) { return i >= out.spec.events; });

  // Stage 2: ddmin the surviving event indices into the skip list — a
  // skipped index vanishes without renumbering any other event's draws.
  std::vector<std::uint64_t> active;
  for (std::uint64_t i = 0; i < out.spec.events; ++i) {
    if (!std::binary_search(out.spec.skip.begin(), out.spec.skip.end(), i))
      active.push_back(i);
  }
  std::size_t block = active.size() / 2;
  while (block >= 1) {
    std::size_t begin = 0;
    while (begin < active.size()) {
      const std::size_t end = std::min(begin + block, active.size());
      SoakSpec candidate = out.spec;
      candidate.skip.insert(
          candidate.skip.end(),
          active.begin() + static_cast<std::ptrdiff_t>(begin),
          active.begin() + static_cast<std::ptrdiff_t>(end));
      std::sort(candidate.skip.begin(), candidate.skip.end());
      if (fails(candidate)) {
        out.spec = std::move(candidate);
        active.erase(active.begin() + static_cast<std::ptrdiff_t>(begin),
                     active.begin() + static_cast<std::ptrdiff_t>(end));
      } else {
        begin = end;
      }
    }
    if (block == 1) break;
    block = std::max<std::size_t>(1, block / 2);
  }

  // Stage 3: disarm whole event classes (at least one must stay armed).
  double SoakSpec::*const weights[] = {
      &SoakSpec::join_weight, &SoakSpec::leave_weight,
      &SoakSpec::link_down_weight, &SoakSpec::link_up_weight,
      &SoakSpec::move_weight};
  for (double SoakSpec::*const field : weights) {
    if (out.spec.*field == 0.0) continue;
    SoakSpec candidate = out.spec;
    candidate.*field = 0.0;
    if (candidate.join_weight + candidate.leave_weight +
            candidate.move_weight + candidate.link_down_weight +
            candidate.link_up_weight <=
        0.0)
      continue;
    if (fails(candidate)) out.spec = std::move(candidate);
  }

  // Stage 4: halve the node universe.
  while (out.spec.n > 4) {
    SoakSpec candidate = out.spec;
    candidate.n = std::max<std::size_t>(4, candidate.n / 2);
    if (!fails(candidate)) break;
    out.spec = std::move(candidate);
  }
  return out;
}

std::string soak_repro_command(const SoakSpec& spec,
                               const SoakOracleOptions* oracle_options) {
  return "--soak=" + format_soak_spec(spec) + band_flag(oracle_options);
}

std::string soak_repro_command(const SoakSpec& spec, const FaultSpec& faults,
                               bool reliable,
                               const SoakOracleOptions* oracle_options) {
  std::string out =
      "--soak=" + format_soak_spec(spec) + " --faults=" +
      format_fault_spec(faults);
  if (!reliable) out += " --reliable=0";
  return out + band_flag(oracle_options);
}

}  // namespace fdlsp
