#include "verify/fault_oracles.h"

#include <algorithm>
#include <vector>

#include "algos/dist_repair.h"
#include "coloring/checker.h"
#include "graph/arcs.h"
#include "support/check.h"
#include "verify/shrink.h"

namespace fdlsp {

namespace {

std::string describe(const char* oracle, const std::string& detail) {
  return std::string(oracle) + ": " + detail;
}

/// Nodes within shortest-path distance <= radius of any source (multi-
/// source BFS). Sources themselves are included.
std::vector<char> ball_of(const Graph& graph,
                          const std::vector<NodeId>& sources,
                          std::size_t radius) {
  std::vector<std::size_t> dist(graph.num_nodes(),
                                static_cast<std::size_t>(-1));
  std::vector<NodeId> frontier;
  for (NodeId v : sources) {
    if (dist[v] != 0) {
      dist[v] = 0;
      frontier.push_back(v);
    }
  }
  for (std::size_t d = 0; d < radius && !frontier.empty(); ++d) {
    std::vector<NodeId> next;
    for (NodeId v : frontier) {
      for (const NeighborEntry& entry : graph.neighbors(v)) {
        if (dist[entry.to] != static_cast<std::size_t>(-1)) continue;
        dist[entry.to] = d + 1;
        next.push_back(entry.to);
      }
    }
    frontier = std::move(next);
  }
  std::vector<char> inside(graph.num_nodes(), 0);
  for (NodeId v = 0; v < graph.num_nodes(); ++v)
    if (dist[v] != static_cast<std::size_t>(-1)) inside[v] = 1;
  return inside;
}

}  // namespace

OracleVerdict check_fault_result(const Graph& graph,
                                 const ScheduleResult& result,
                                 const FaultSpec* spec) {
  OracleVerdict verdict;
  const ArcView view(graph);
  if (!result.completed) {
    verdict.ok = false;
    std::string detail = "run did not reach quiescence";
    if (!result.stall_diagnosis.empty())
      detail += " (" + result.stall_diagnosis + ")";
    verdict.failure = describe("fault-quiescence", detail);
    return verdict;
  }
  if (result.coloring.num_arcs() != view.num_arcs()) {
    verdict.ok = false;
    verdict.failure = describe(
        "fault-quiescence",
        "coloring covers " + std::to_string(result.coloring.num_arcs()) +
            " arcs, graph has " + std::to_string(view.num_arcs()));
    return verdict;
  }

  // Exempt the faulted neighborhood when the plan can sever knowledge
  // paths: check_crash_recovery owns those arcs.
  std::vector<char> exempt_node(graph.num_nodes(), 0);
  if (spec != nullptr &&
      (spec->crash_fraction > 0.0 || spec->link_down_fraction > 0.0)) {
    const FaultPlan plan(*spec, graph);
    std::vector<NodeId> region = plan.crashed_nodes();
    for (EdgeId e : plan.churned_edges()) {
      region.push_back(graph.edge(e).u);
      region.push_back(graph.edge(e).v);
    }
    if (!region.empty()) exempt_node = ball_of(graph, region, 1);
  }
  ArcColoring scoped = result.coloring;
  std::size_t exempt_arcs = 0;
  for (ArcId a = 0; a < view.num_arcs(); ++a) {
    if (exempt_node[view.tail(a)] == 0 && exempt_node[view.head(a)] == 0)
      continue;
    scoped.clear(a);
    ++exempt_arcs;
  }

  if (scoped.num_colored() + exempt_arcs < view.num_arcs()) {
    verdict.ok = false;
    verdict.failure = describe(
        "fault-quiescence",
        std::to_string(view.num_arcs() - exempt_arcs -
                       scoped.num_colored()) +
            " arcs outside the faulted region left uncolored");
    return verdict;
  }
  if (const auto witness = find_violation(view, scoped)) {
    verdict.ok = false;
    verdict.failure = describe(
        "fault-quiescence",
        "arcs " + std::to_string(witness->a) + " and " +
            std::to_string(witness->b) + " conflict but share slot " +
            std::to_string(scoped.color(witness->a)) + " (" +
            std::to_string(count_violations(view, scoped)) +
            " violating pairs total)");
    return verdict;
  }
  return verdict;
}

OracleVerdict check_fault_quiescence(SchedulerKind kind, const Graph& graph,
                                     std::uint64_t seed,
                                     const FaultSpec& spec) {
  const ScheduleResult first =
      run_scheduler_faulted(kind, graph, seed, spec, /*reliable=*/true);
  OracleVerdict verdict = check_fault_result(graph, first, &spec);
  if (!verdict.ok) return verdict;

  const ScheduleResult second =
      run_scheduler_faulted(kind, graph, seed, spec, /*reliable=*/true);
  for (ArcId a = 0; a < first.coloring.num_arcs(); ++a) {
    if (first.coloring.color(a) == second.coloring.color(a)) continue;
    verdict.ok = false;
    verdict.failure = describe(
        "fault-determinism",
        "arc " + std::to_string(a) + " colored " +
            std::to_string(first.coloring.color(a)) + " then " +
            std::to_string(second.coloring.color(a)) +
            " across identical faulted runs");
    return verdict;
  }
  if (first.num_slots != second.num_slots) {
    verdict.ok = false;
    verdict.failure =
        describe("fault-determinism",
                 "slot counts diverged across identical faulted runs");
  }
  return verdict;
}

OracleVerdict check_burst_quiescence(SchedulerKind kind, const Graph& graph,
                                     std::uint64_t seed,
                                     const FaultSpec& spec) {
  OracleVerdict verdict = check_fault_quiescence(kind, graph, seed, spec);
  if (!verdict.ok) return verdict;
  const ScheduleResult faulted =
      run_scheduler_faulted(kind, graph, seed, spec, /*reliable=*/true);
  // Round bound: the wrapper restores perfect-channel semantics, so the
  // inner protocol consumes the same rounds as a clean run and the outer
  // round count is bounded by clean rounds times the provisioned dilation,
  // plus a drain margin for the final window and any detector probe tail.
  // Crash plans change the inner protocol's behavior (dead nodes stop
  // participating), so the clean run is no yardstick there; and async
  // schedulers have no rounds — their anti-livelock statement is the event
  // watchdog behind `completed`, already checked above.
  if (faulted.rounds > 0 && spec.crash_fraction == 0.0) {
    const ScheduleResult clean = run_scheduler(kind, graph, seed);
    const std::size_t dilation = ReliableSyncProgram::round_dilation(spec);
    const std::size_t bound = (clean.rounds + 8) * dilation;
    if (faulted.rounds > bound) {
      verdict.ok = false;
      verdict.failure = describe(
          "burst-quiescence",
          "faulted run took " + std::to_string(faulted.rounds) +
              " rounds, bound is " + std::to_string(bound) + " (clean " +
              std::to_string(clean.rounds) + " rounds x dilation " +
              std::to_string(dilation) + " + drain)");
    }
  }
  return verdict;
}

OracleVerdict check_detector(SchedulerKind kind, const Graph& graph,
                             std::uint64_t seed, const FaultSpec& spec) {
  OracleVerdict verdict;
  const ScheduleResult result =
      run_scheduler_faulted(kind, graph, seed, spec, /*reliable=*/true);
  // Consistency: under the adaptive transport, frames die only through the
  // suspected -> dead path, so abandonment without a suspicion means the
  // state machine was bypassed; and re-trusts consume prior suspicions.
  if (result.transport.abandoned > 0 && result.transport.suspicions == 0) {
    verdict.ok = false;
    verdict.failure = describe(
        "detector-consistency",
        std::to_string(result.transport.abandoned) +
            " frames abandoned without any suspicion");
    return verdict;
  }
  if (result.transport.retrusts > result.transport.suspicions) {
    verdict.ok = false;
    verdict.failure = describe(
        "detector-consistency",
        std::to_string(result.transport.retrusts) + " re-trusts exceed " +
            std::to_string(result.transport.suspicions) + " suspicions");
    return verdict;
  }
  // Accuracy: only churn/outage windows can silence a live peer past the
  // loss budget, so without them every suspicion must point at a crashed
  // node (and under loss-only specs there are none to point at).
  if (spec.link_down_fraction == 0.0 && spec.region_count == 0) {
    const FaultPlan plan(spec, graph);
    const std::vector<NodeId> crashed = plan.crashed_nodes();
    for (NodeId v : result.suspected) {
      if (std::binary_search(crashed.begin(), crashed.end(), v)) continue;
      verdict.ok = false;
      verdict.failure = describe(
          "detector-accuracy",
          "live node " + std::to_string(v) +
              " was suspected under a bounded-loss spec");
      return verdict;
    }
  }
  return verdict;
}

CrashRecoveryReport check_crash_recovery(SchedulerKind kind,
                                         const Graph& graph,
                                         std::uint64_t seed,
                                         const FaultSpec& spec) {
  CrashRecoveryReport report;
  const ArcView view(graph);
  const ScheduleResult clean = run_scheduler(kind, graph, seed);

  // Orphan the schedule the way the fault model says: a crashed node
  // recovers with amnesia (its out-arc slots are gone), a churned edge
  // forgets both directions.
  const FaultPlan plan(spec, graph);
  const std::vector<NodeId> crashed = plan.crashed_nodes();
  const std::vector<EdgeId> churned = plan.churned_edges();
  ArcColoring stale = clean.coloring;
  for (NodeId v : crashed)
    for (const NeighborEntry& entry : graph.neighbors(v))
      stale.clear(view.arc_from(entry.edge, v));
  for (EdgeId e : churned) {
    stale.clear(static_cast<ArcId>(e << 1));
    stale.clear(static_cast<ArcId>((e << 1) | 1u));
  }
  report.orphaned_arcs = clean.coloring.num_colored() - stale.num_colored();
  if (report.orphaned_arcs == 0) return report;  // nothing to repair

  const DistRepairResult repaired =
      run_distributed_repair(graph, stale, seed);
  report.repair_rounds = repaired.rounds;
  report.repair_messages = repaired.messages;

  if (!repaired.coloring.complete()) {
    report.ok = false;
    report.failure = describe("recovery-feasibility",
                              "repair left arcs uncolored");
    return report;
  }
  if (const auto witness = find_violation(view, repaired.coloring)) {
    report.ok = false;
    report.failure = describe(
        "recovery-feasibility",
        "arcs " + std::to_string(witness->a) + " and " +
            std::to_string(witness->b) + " conflict after repair");
    return report;
  }

  // Faulted region: crashed nodes plus both endpoints of churned edges.
  std::vector<NodeId> region = crashed;
  for (EdgeId e : churned) {
    region.push_back(graph.edge(e).u);
    region.push_back(graph.edge(e).v);
  }
  const std::vector<char> near_fault = ball_of(graph, region, 2);

  for (ArcId a = 0; a < view.num_arcs(); ++a) {
    const bool was = stale.is_colored(a);
    const bool changed =
        !was || repaired.coloring.color(a) != stale.color(a);
    if (!changed) continue;
    ++report.changed_arcs;
    if (was) {
      // Intact arcs must survive repair untouched: the protocol only
      // recolors dirty arcs, and stale (clean minus orphans) is
      // conflict-free, so nothing else may move.
      report.ok = false;
      report.failure = describe(
          "recovery-stability",
          "intact arc " + std::to_string(a) + " changed from slot " +
              std::to_string(stale.color(a)) + " to " +
              std::to_string(repaired.coloring.color(a)));
      return report;
    }
    if (near_fault[view.tail(a)] == 0) {
      report.ok = false;
      report.failure = describe(
          "recovery-locality",
          "arc " + std::to_string(a) + " (tail " +
              std::to_string(view.tail(a)) +
              ") was repaired more than 2 hops from the faulted region");
      return report;
    }
  }
  return report;
}

FaultShrinkOutcome shrink_fault_case(const Graph& start, const FaultSpec& spec,
                                     const FaultFailingPredicate& still_fails,
                                     const ShrinkOptions& options) {
  FDLSP_REQUIRE(still_fails(start, spec),
                "shrink_fault_case requires a failing input");
  FaultShrinkOutcome outcome;
  outcome.graph = start;
  outcome.spec = spec;
  outcome.checks = 1;
  const auto budget_left = [&]() {
    return outcome.checks < options.max_checks
               ? options.max_checks - outcome.checks
               : 0;
  };
  const auto try_spec = [&](const FaultSpec& candidate) {
    if (candidate == outcome.spec || budget_left() == 0) return false;
    ++outcome.checks;
    if (!still_fails(outcome.graph, candidate)) return false;
    outcome.spec = candidate;
    return true;
  };
  const auto shrink_graph_pass = [&](std::size_t max_checks) {
    if (max_checks == 0) return;
    ShrinkOptions graph_options;
    graph_options.max_checks = max_checks;
    const ShrinkOutcome shrunk = shrink_graph(
        outcome.graph,
        [&](const Graph& candidate) {
          return still_fails(candidate, outcome.spec);
        },
        graph_options);
    outcome.graph = shrunk.graph;
    outcome.checks += shrunk.checks;
  };

  // Pass 1: graph, under the original spec (the bulk of the budget: graph
  // size dominates how readable the reproducer is).
  shrink_graph_pass(budget_left() / 2);

  // Pass 2: spec, greedily to a fixpoint. Disarming a whole fault class
  // beats any rate tweak, so try those first each round.
  const FaultSpec defaults;
  bool progressed = true;
  while (progressed && budget_left() > 0) {
    progressed = false;
    // Disarm whole classes first: the doubles...
    for (double FaultSpec::* rate :
         {&FaultSpec::drop_rate, &FaultSpec::duplicate_rate,
          &FaultSpec::corrupt_rate, &FaultSpec::burst_rate,
          &FaultSpec::crash_fraction, &FaultSpec::link_down_fraction}) {
      if (outcome.spec.*rate == 0.0) continue;
      FaultSpec candidate = outcome.spec;
      candidate.*rate = 0.0;
      // Disarming bursts also resets the knobs only bursts read, so the
      // shrunk spec prints minimal.
      if (rate == &FaultSpec::burst_rate) {
        candidate.burst_recover = defaults.burst_recover;
        candidate.burst_loss = defaults.burst_loss;
        candidate.burst_max_run = defaults.burst_max_run;
        candidate.burst_cap = defaults.burst_cap;
      }
      if (try_spec(candidate)) progressed = true;
    }
    // ...then the PRR matrix and the outage regions.
    if (!outcome.spec.prr_levels.empty()) {
      FaultSpec candidate = outcome.spec;
      candidate.prr_levels.clear();
      if (try_spec(candidate)) progressed = true;
    }
    if (outcome.spec.region_count > 0) {
      FaultSpec candidate = outcome.spec;
      candidate.region_count = 0;
      candidate.region_radius = defaults.region_radius;
      candidate.region_horizon = defaults.region_horizon;
      candidate.region_duration = defaults.region_duration;
      if (try_spec(candidate)) progressed = true;
    }
    if (outcome.spec.seed != defaults.seed) {
      FaultSpec candidate = outcome.spec;
      candidate.seed = defaults.seed;
      if (try_spec(candidate)) progressed = true;
    }
    if (outcome.spec.max_losses_per_channel !=
        defaults.max_losses_per_channel) {
      FaultSpec candidate = outcome.spec;
      candidate.max_losses_per_channel = defaults.max_losses_per_channel;
      if (try_spec(candidate)) progressed = true;
    }
    for (std::uint64_t FaultSpec::* knob :
         {&FaultSpec::burst_max_run, &FaultSpec::burst_cap}) {
      if (outcome.spec.*knob == defaults.*knob) continue;
      FaultSpec candidate = outcome.spec;
      candidate.*knob = defaults.*knob;
      if (try_spec(candidate)) progressed = true;
    }
    // Fewer regions beats a smaller radius: halve the disc count too.
    if (outcome.spec.region_count > 1) {
      FaultSpec candidate = outcome.spec;
      candidate.region_count = outcome.spec.region_count / 2;
      if (try_spec(candidate)) progressed = true;
    }
    for (double FaultSpec::* rate :
         {&FaultSpec::drop_rate, &FaultSpec::duplicate_rate,
          &FaultSpec::corrupt_rate, &FaultSpec::burst_rate,
          &FaultSpec::crash_fraction, &FaultSpec::link_down_fraction}) {
      if (outcome.spec.*rate <= 0.01) continue;
      FaultSpec candidate = outcome.spec;
      candidate.*rate = outcome.spec.*rate / 2.0;
      if (try_spec(candidate)) progressed = true;
    }
  }

  // Pass 3: the simpler spec may unlock further graph reduction.
  shrink_graph_pass(budget_left());
  return outcome;
}

std::string fault_repro_command(const Scenario& scenario,
                                const std::string& algorithm,
                                const FaultSpec& spec) {
  return repro_command(scenario, algorithm) +
         " --faults=" + format_fault_spec(spec);
}

}  // namespace fdlsp
