// Oracle battery: the executable form of the paper's guarantees.
//
// Given any scheduling function, the oracles check, on one concrete graph:
//   1. feasibility     — complete coloring, no distance-2 conflict
//                        (Definition 2 / the checker);
//   2. bounds window   — slot count within
//                        [Theorem 1 lower bound, 2Δ² Lemma 6 upper bound];
//   3. approximation   — slots ≤ Δ · OPT on instances small enough for the
//                        exact DSATUR branch-and-bound (Section 5's
//                        Δ-approximation claim);
//   4. determinism     — a second run with the same seed yields a
//                        byte-identical coloring (catches hidden iteration-
//                        order or shared-state dependence);
//   5. causality       — when a probe is supplied, a traced rerun under the
//                        happens-before checker proves no node read state it
//                        was never causally sent (protocol isolation; see
//                        verify/causality.h and analysis/happens_before.h).
// The first failing oracle aborts the battery and names itself in the
// verdict, so shrinking can target exactly that property.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "algos/scheduler.h"
#include "graph/graph.h"

namespace fdlsp {

/// Any scheduling algorithm under test: graph + seed -> result.
using ScheduleFn =
    std::function<ScheduleResult(const Graph&, std::uint64_t seed)>;

/// Wall time of one oracle (plus the scheduler run itself) within a
/// battery invocation; replay tools print these so index-backed oracle
/// speedups are visible end-to-end.
struct OracleTiming {
  std::string oracle;   ///< "run", "feasibility", "bounds", ...
  double millis = 0.0;  ///< wall time spent in this step
};

/// Outcome of the battery on one instance.
struct OracleVerdict {
  bool ok = true;
  std::string failure;  ///< first failing oracle, human-readable
  std::vector<OracleTiming> timings;  ///< steps executed, in battery order
};

/// A causality (happens-before) probe: reruns the algorithm under a trace
/// checker and reports whether every cross-node state read was causally
/// justified. Probes are algorithm-specific (they must re-instantiate the
/// scheduler with a trace attached), so the battery takes one as data; see
/// causality_probe_for() in verify/causality.h for the built-in schedulers.
using CausalityProbe =
    std::function<OracleVerdict(const Graph&, std::uint64_t seed)>;

/// Which oracles to apply. Guarantee-specific checks are gated so baselines
/// without the guarantee (D-MGC can exceed 2Δ² under injection; the
/// randomized distance-1 algorithm has no approximation bound) still run
/// the universal ones.
struct OracleOptions {
  bool check_upper_bound = true;    ///< slots ≤ 2Δ²
  bool check_approximation = true;  ///< slots ≤ Δ·OPT on small instances
  bool check_determinism = true;    ///< same seed ⇒ identical coloring
  /// Run the exact reference only when the graph has at most this many
  /// nodes (DSATUR B&B is exponential; 14 keeps the battery fast).
  std::size_t exact_max_nodes = 14;
  /// Branch-and-bound expansion budget for the exact reference; when the
  /// proof does not finish in budget the approximation oracle is skipped
  /// (matching "where the exact colorer terminates").
  std::size_t exact_bb_budget = 50'000;
  /// Oracle 5: when non-empty, rerun under the happens-before checker and
  /// fail on causally unjustified cross-node reads.
  CausalityProbe causality_probe;
};

/// Runs the battery. `run` is invoked once (plus once more for the
/// determinism oracle); it must tolerate disconnected graphs.
OracleVerdict check_oracles(const ScheduleFn& run, const Graph& graph,
                            std::uint64_t seed,
                            const OracleOptions& options = {});

/// Oracle options appropriate for a built-in scheduler kind (disables the
/// checks a baseline does not promise).
OracleOptions oracle_options_for(SchedulerKind kind);

}  // namespace fdlsp
