#include "verify/shrink.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "graph/algorithms.h"
#include "support/check.h"

namespace fdlsp {

namespace {

/// Budget-aware wrapper around the caller's predicate.
class Checker {
 public:
  Checker(const FailingPredicate& predicate, std::size_t budget)
      : predicate_(predicate), budget_(budget) {}

  bool exhausted() const { return checks_ >= budget_; }
  std::size_t checks() const { return checks_; }

  bool fails(const Graph& candidate) {
    if (exhausted()) return false;  // out of budget: treat as "keep current"
    ++checks_;
    return predicate_(candidate);
  }

 private:
  const FailingPredicate& predicate_;
  std::size_t budget_;
  std::size_t checks_ = 0;
};

Graph without_nodes(const Graph& graph, std::size_t begin, std::size_t end) {
  std::vector<NodeId> keep;
  keep.reserve(graph.num_nodes() - (end - begin));
  for (NodeId v = 0; v < graph.num_nodes(); ++v)
    if (v < begin || v >= end) keep.push_back(v);
  return induced_subgraph(graph, keep).graph;
}

Graph without_edge(const Graph& graph, EdgeId skip) {
  GraphBuilder builder(graph.num_nodes());
  for (EdgeId e = 0; e < graph.num_edges(); ++e)
    if (e != skip) builder.add_edge(graph.edge(e).u, graph.edge(e).v);
  return builder.build();
}

Graph without_isolated(const Graph& graph) {
  std::vector<NodeId> keep;
  for (NodeId v = 0; v < graph.num_nodes(); ++v)
    if (graph.degree(v) > 0) keep.push_back(v);
  if (keep.size() == graph.num_nodes()) return graph;
  return induced_subgraph(graph, keep).graph;
}

/// One pass of ddmin-style vertex-block removal. Returns true on progress.
bool shrink_vertices(Graph& current, Checker& checker) {
  bool progressed = false;
  std::size_t chunk = std::max<std::size_t>(current.num_nodes() / 2, 1);
  while (chunk >= 1 && !checker.exhausted()) {
    bool removed_any = false;
    std::size_t begin = 0;
    while (begin < current.num_nodes() && !checker.exhausted()) {
      const std::size_t end =
          std::min(begin + chunk, current.num_nodes());
      if (end - begin == current.num_nodes()) break;  // never empty the graph
      Graph candidate = without_nodes(current, begin, end);
      if (checker.fails(candidate)) {
        current = std::move(candidate);
        progressed = removed_any = true;
        // Do not advance `begin`: the block now holds different vertices.
      } else {
        begin = end;
      }
    }
    if (!removed_any) {
      if (chunk == 1) break;
      chunk /= 2;
    }
  }
  return progressed;
}

/// Greedy single-edge removal. Returns true on progress.
bool shrink_edges(Graph& current, Checker& checker) {
  bool progressed = false;
  EdgeId e = 0;
  while (e < current.num_edges() && !checker.exhausted()) {
    Graph candidate = without_edge(current, e);
    if (checker.fails(candidate)) {
      current = std::move(candidate);
      progressed = true;
      // Do not advance: edge e is now a different edge.
    } else {
      ++e;
    }
  }
  return progressed;
}

}  // namespace

ShrinkOutcome shrink_graph(const Graph& start,
                           const FailingPredicate& still_fails,
                           const ShrinkOptions& options) {
  FDLSP_REQUIRE(still_fails(start),
                "shrink_graph needs a failing starting point");
  Checker checker(still_fails, options.max_checks);
  Graph current = start;
  // Alternate vertex and edge passes to a fixpoint: removing edges can make
  // vertices removable and vice versa.
  bool progressed = true;
  while (progressed && !checker.exhausted()) {
    progressed = shrink_vertices(current, checker);
    progressed = shrink_edges(current, checker) || progressed;
  }
  // Isolated vertices rarely participate in a failure; drop them in one go
  // if the failure survives.
  if (!checker.exhausted()) {
    Graph candidate = without_isolated(current);
    if (candidate.num_nodes() < current.num_nodes() &&
        checker.fails(candidate))
      current = std::move(candidate);
  }
  return ShrinkOutcome{std::move(current), checker.checks()};
}

}  // namespace fdlsp
