// Failing-case shrinking (delta debugging over graphs).
//
// Given a graph on which some property fails and a predicate that re-checks
// the failure, the shrinker searches for a small induced witness: it
// repeatedly drops vertex blocks (ddmin-style, halving block sizes), then
// single vertices, then single edges, keeping a candidate only if the
// failure persists. The result is 1-minimal up to the check budget: no
// single vertex or edge can be removed without losing the failure. Small
// witnesses turn a fuzzer hit on a 300-node instance into a reproducer a
// human can step through.
#pragma once

#include <cstddef>
#include <functional>

#include "graph/graph.h"

namespace fdlsp {

/// Returns true iff the failure still reproduces on `candidate`.
using FailingPredicate = std::function<bool(const Graph& candidate)>;

/// Tunables for a shrink run.
struct ShrinkOptions {
  /// Predicate-call budget; shrinking stops (keeping the best graph so far)
  /// once spent. Each call typically re-runs the algorithm under test.
  std::size_t max_checks = 2000;
};

/// Result of a shrink run.
struct ShrinkOutcome {
  Graph graph;              ///< smallest failing graph found
  std::size_t checks = 0;   ///< predicate calls spent
};

/// Shrinks `start` (on which `still_fails` must hold) to a small failing
/// graph. Deterministic: no randomness is involved.
ShrinkOutcome shrink_graph(const Graph& start,
                           const FailingPredicate& still_fails,
                           const ShrinkOptions& options = {});

}  // namespace fdlsp
