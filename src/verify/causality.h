// Causality oracle: the happens-before checker (analysis/happens_before.h)
// packaged as a member of the oracle battery.
//
// check_causality reruns a scheduler with a vector-clock checker attached to
// the simulation engine and fails if any node read another node's state
// without a causal chain of messages delivering it — i.e. if the
// implementation leaks information through the shared address space instead
// of the message API. Centralized algorithms (D-MGC, greedy) never enter an
// engine, so their probe trivially passes.
//
// causality_probe_for(kind) produces the std::function form that
// OracleOptions::causality_probe expects, so oracle_options_for(kind) can
// arm the oracle for every built-in scheduler and the proptest sweep /
// shrinker pick it up with no further wiring.
#pragma once

#include <cstdint>

#include "algos/scheduler.h"
#include "graph/graph.h"
#include "verify/oracles.h"

namespace fdlsp {

/// Runs `kind` on `graph` with a happens-before checker attached and turns
/// the checker's verdict into an oracle verdict. DFS (which requires a
/// connected graph) is run per connected component with an independent
/// checker and seed `seed + component`, mirroring
/// run_scheduler_on_components.
OracleVerdict check_causality(SchedulerKind kind, const Graph& graph,
                              std::uint64_t seed);

/// Human-readable happens-before report for one traced run (event and
/// cross-node-read counts, or the first violation), one line per engine run.
/// Used by examples/replay; check_causality is the pass/fail form.
std::string causality_report(SchedulerKind kind, const Graph& graph,
                             std::uint64_t seed);

/// The causality probe for a built-in scheduler, in the shape
/// OracleOptions::causality_probe expects. Empty (oracle skipped) for
/// centralized algorithms that never run on a simulation engine.
CausalityProbe causality_probe_for(SchedulerKind kind);

}  // namespace fdlsp
