#include "verify/causality.h"

#include <algorithm>
#include <functional>
#include <vector>

#include "analysis/happens_before.h"
#include "graph/algorithms.h"
#include "graph/types.h"

namespace fdlsp {

namespace {

/// Invokes `probe(graph, seed)` once per engine run the scheduler needs:
/// once for synchronous algorithms, once per nontrivial connected component
/// for DFS (which requires a connected traversal; mirrors
/// run_scheduler_on_components). Stops early when `probe` returns false.
void for_each_engine_run(
    SchedulerKind kind, const Graph& graph, std::uint64_t seed,
    const std::function<bool(const Graph&, std::uint64_t)>& probe) {
  if (kind != SchedulerKind::kDfs) {
    probe(graph, seed);
    return;
  }
  const auto labels = connected_components(graph);
  const std::size_t components =
      labels.empty() ? 0
                     : *std::max_element(labels.begin(), labels.end()) + 1;
  if (components <= 1) {
    probe(graph, seed);
    return;
  }
  for (std::size_t comp = 0; comp < components; ++comp) {
    std::vector<NodeId> nodes;
    for (NodeId v = 0; v < graph.num_nodes(); ++v)
      if (labels[v] == comp) nodes.push_back(v);
    if (nodes.size() <= 1) continue;
    const InducedSubgraph sub = induced_subgraph(graph, nodes);
    if (!probe(sub.graph, seed + comp)) return;
  }
}

bool is_centralized(SchedulerKind kind) {
  return kind == SchedulerKind::kDmgc || kind == SchedulerKind::kGreedy;
}

}  // namespace

OracleVerdict check_causality(SchedulerKind kind, const Graph& graph,
                              std::uint64_t seed) {
  OracleVerdict verdict;
  if (is_centralized(kind)) return verdict;
  for_each_engine_run(
      kind, graph, seed,
      [&verdict, kind](const Graph& g, std::uint64_t s) {
        HappensBeforeChecker checker(g.num_nodes());
        run_scheduler_traced(kind, g, s, &checker);
        if (!checker.ok()) {
          verdict.ok = false;
          verdict.failure = "causality: " + checker.report();
          return false;
        }
        return true;
      });
  return verdict;
}

std::string causality_report(SchedulerKind kind, const Graph& graph,
                             std::uint64_t seed) {
  if (is_centralized(kind))
    return "happens-before: not applicable (centralized algorithm)";
  std::string out;
  std::size_t runs = 0;
  for_each_engine_run(kind, graph, seed,
                      [&out, &runs, kind](const Graph& g, std::uint64_t s) {
                        HappensBeforeChecker checker(g.num_nodes());
                        run_scheduler_traced(kind, g, s, &checker);
                        if (!out.empty()) out += "\n";
                        out += checker.report();
                        ++runs;
                        return true;
                      });
  if (runs == 0) out = "happens-before: ok (no engine run needed)";
  return out;
}

CausalityProbe causality_probe_for(SchedulerKind kind) {
  if (is_centralized(kind)) return {};  // no engine, no events
  return [kind](const Graph& graph, std::uint64_t seed) {
    return check_causality(kind, graph, seed);
  };
}

}  // namespace fdlsp
