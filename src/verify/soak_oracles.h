// Soak oracles: the long-horizon invariants of the churn pipeline.
//
// A soak run is correct as a *stream*, not as a single schedule, so the
// oracles attach to the driver's per-event observer:
//
//   * feasibility — the schedule is complete and distance-2 feasible after
//     every event. Checked locally per event (only the recolored arcs can
//     break it) with periodic whole-graph sweeps, which also byte-compare
//     the incrementally maintained ConflictIndex against a fresh build.
//   * locality — an unfaulted repair event only recolors arcs inside the
//     distance-2 ball of the event's touched nodes (the paper's localized
//     repair-cost argument as a checkable safety property). Recomputes,
//     faulted runs, and crash-recovery fallbacks are exempt by design.
//   * drift — the color span never exceeds the drift band × the
//     instance-tight Lemma-6 bound of the *current* topology, so a schedule
//     maintained over 10^5 events is as good as one computed fresh. The
//     oracle band can be set tighter than the spec's own (which the driver's
//     default cost model enforces) — that is the supported way to inject a
//     violation when testing the shrink/replay pipeline itself.
//   * steady-state determinism — same spec => byte-identical event log and
//     final schedule, across engine thread counts (check_soak_determinism).
//
// A failing stream shrinks to a replayable spec (shrink_soak_case truncates
// the stream, ddmins skip-blocks, disarms event classes, and halves the
// universe) rendered as a one-line `--soak=` invocation for examples/replay.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "sim/fault.h"
#include "soak/driver.h"
#include "verify/oracles.h"
#include "verify/shrink.h"

namespace fdlsp {

/// Which long-horizon invariants to apply, and how often to pay for the
/// whole-graph passes.
struct SoakOracleOptions {
  bool check_feasibility = true;
  /// Repair events recolor only inside the distance-2 ball of the touched
  /// nodes. Applied to unfaulted repair events (recomputes, fault plans,
  /// and fallbacks are exempt).
  bool check_locality = true;
  /// Span <= band × (max conflict degree + 1). Valid under the driver's
  /// default cost model; disable for custom models that never recompute.
  bool check_drift = true;
  /// Drift band the oracle enforces; 0 means the spec's own drift_band. A
  /// band stricter than the spec's injects a violation on purpose (the
  /// driver only maintains the spec's band) — the shrink/replay pipeline
  /// tests use exactly this seam.
  double drift_band = 0.0;
  /// Whole-graph feasibility + fresh-index byte-compare every this many
  /// events (and once at the end). 0 disables the periodic sweeps.
  std::size_t full_check_stride = 64;
};

/// Outcome of an oracle-observed soak run.
struct SoakVerdict {
  bool ok = true;
  std::uint64_t failing_event = 0;  ///< event index of the first violation
  std::string failure;              ///< first failing oracle, human-readable
  SoakStats stats;                  ///< driver aggregates (latencies included)
  std::string event_log;   ///< formatted log — the byte-compared artifact
  ArcColoring final_coloring;
};

/// Runs `spec`'s whole stream with the oracles attached to the driver's
/// observer; stops at the first violation.
SoakVerdict run_soak_with_oracles(const SoakSpec& spec,
                                  const SoakOptions& driver_options = {},
                                  const SoakOracleOptions& oracle_options = {});

/// Steady-state determinism oracle: the runs described by (spec, a) and
/// (spec, b) — e.g. a serial engine vs an 8-thread pool — must produce
/// byte-identical event logs and final schedules.
OracleVerdict check_soak_determinism(const SoakSpec& spec,
                                     const SoakOptions& a = {},
                                     const SoakOptions& b = {});

/// Returns true iff the failure still reproduces on `candidate`.
using SoakFailingPredicate = std::function<bool(const SoakSpec& candidate)>;

/// Result of a soak-spec shrink.
struct SoakShrinkOutcome {
  SoakSpec spec;           ///< simplest failing spec found
  std::size_t checks = 0;  ///< predicate calls spent
};

/// Minimizes a failing soak spec: binary-search the shortest failing stream
/// prefix, ddmin event indices into the skip list (pure-hash draws make a
/// skipped index vanish without renumbering the rest), disarm whole event
/// classes by zeroing their weights, then halve the node universe — each
/// stage greedy and deterministic. `still_fails` must hold on `start`.
SoakShrinkOutcome shrink_soak_case(const SoakSpec& start,
                                   const SoakFailingPredicate& still_fails,
                                   const ShrinkOptions& options = {});

/// One-line replay invocation, e.g. "--soak=seed=7,n=16,events=40,skip=3".
/// When `oracle_options` carries a band override, appends the matching
/// "--soak-band=" flag so the replayed oracle run is identical.
std::string soak_repro_command(const SoakSpec& spec,
                               const SoakOracleOptions* oracle_options =
                                   nullptr);

/// As above, plus the fault plan of a faulted distributed soak.
std::string soak_repro_command(const SoakSpec& spec, const FaultSpec& faults,
                               bool reliable,
                               const SoakOracleOptions* oracle_options =
                                   nullptr);

}  // namespace fdlsp
