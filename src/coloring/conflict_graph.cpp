#include "coloring/conflict_graph.h"

#include "coloring/conflict.h"

namespace fdlsp {

Graph build_conflict_graph(const ArcView& view) {
  GraphBuilder builder(view.num_arcs());
  for (ArcId a = 0; a < view.num_arcs(); ++a)
    for (ArcId b : conflicting_arcs(view, a))
      if (b > a) builder.add_edge(a, b);
  return builder.build();
}

}  // namespace fdlsp
