#include "coloring/conflict_graph.h"

#include "coloring/conflict.h"
#include "coloring/conflict_index.h"

namespace fdlsp {

Graph build_conflict_graph(const ArcView& view) {
  GraphBuilder builder(view.num_arcs());
  for (ArcId a = 0; a < view.num_arcs(); ++a)
    for (ArcId b : conflicting_arcs(view, a))
      if (b > a) builder.add_edge(a, b);
  return builder.build();
}

Graph build_conflict_graph(const ArcView& view, const ConflictIndex& index) {
  FDLSP_REQUIRE(index.num_arcs() == view.num_arcs(),
                "index does not match graph");
  // The index's CSR rows are exactly the conflict graph's sorted adjacency
  // lists (the relation is symmetric), so the graph materializes in one
  // linear pass with no duplicate scans and no per-node sorts.
  return GraphBuilder::build_from_symmetric_csr(
      index.num_arcs(), index.raw_offsets(), index.raw_neighbors());
}

}  // namespace fdlsp
