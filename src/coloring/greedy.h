// Sequential greedy distance-2 edge coloring (the Lemma 6 / Theorem 2
// algorithm): color arcs one at a time with the smallest feasible color.
// Never uses more than 2Δ² colors, hence is the Δ-approximation the
// distributed algorithms imitate.
//
// Both entry points accept an optional prebuilt ConflictIndex. With one, the
// per-arc color choice is a single scan of the arc's deduplicated CSR row
// (ConflictScratch); without, conflicts are enumerated on the fly. The
// resulting colorings are byte-identical — only the speed differs.
#pragma once

#include <vector>

#include "coloring/coloring.h"
#include "graph/arcs.h"
#include "support/rng.h"

namespace fdlsp {

class ConflictIndex;

/// Order in which arcs are greedily colored.
enum class GreedyOrder {
  kArcId,         // arcs in id order (deterministic baseline)
  kByDegreeDesc,  // arcs on high-degree nodes first (usually fewer colors)
  kRandom,        // uniformly random permutation (needs an Rng)
};

/// Greedily colors every arc of the bi-directed view. Returns a complete,
/// feasible coloring. rng is only consulted for GreedyOrder::kRandom.
ArcColoring greedy_coloring(const ArcView& view,
                            GreedyOrder order = GreedyOrder::kArcId,
                            Rng* rng = nullptr,
                            const ConflictIndex* index = nullptr);

/// Greedily colors arcs in exactly the given order (each arc once; must be a
/// permutation of all arcs). Exposed for tests and for algorithms that
/// sequentialize a distributed coloring order.
ArcColoring greedy_coloring_in_order(const ArcView& view,
                                     const std::vector<ArcId>& order,
                                     const ConflictIndex* index = nullptr);

}  // namespace fdlsp
