// ConflictIndex: the distance-2 conflict relation (Definition 2),
// materialized once per graph as a CSR adjacency.
//
// Every component of the library — checker, greedy/exact colorers, Lemma-6
// conflict graph, D-MGC, repair, the ILP builder, the verify oracles —
// reduces to "which arcs conflict with arc a?". Enumerating that on the fly
// (conflict.h) visits each conflicting arc several times and pays an
// alloc + sort + unique per query. The index pays that cost exactly once:
//
//   offsets_[a] .. offsets_[a+1]  ->  sorted, duplicate-free ArcIds
//
// Row a never contains a itself. By Lemma 6 a row holds fewer than
// min(2Δ², 2m − 1) entries, which bounds both the scratch buffers used
// during construction and the total index size (≤ 2m · 2Δ²).
//
// Construction is a two-pass count-then-fill over the arcs, optionally
// fanned across a ThreadPool. Each row depends only on its own arc, so the
// result is byte-identical for every thread count, including the sequential
// build — the determinism tests assert this.
//
// On top of the CSR sits ConflictScratch: an epoch-stamped, allocation-free
// (after warm-up) kernel for the greedy primitive smallest_feasible_color —
// no per-call sort, no per-call vector. The checker's palette-bitset sweep
// (checker.cpp) is the other index-backed kernel.
//
// When to prebuild: any workload that queries conflicts of many arcs on one
// graph (full colorings, feasibility checks, conflict-graph construction,
// ILP assembly, the oracle battery). When not to: the distributed
// algorithms' node programs, whose message-complexity accounting models each
// node discovering its distance-2 neighborhood over the radio — they keep
// the on-the-fly enumeration so the round/message counts stay faithful.
#pragma once

#include <span>
#include <vector>

#include "coloring/coloring.h"
#include "graph/arcs.h"
#include "graph/types.h"
#include "support/epoch_marks.h"

namespace fdlsp {

class ThreadPool;

/// Immutable CSR of the distance-2 arc-conflict relation of one graph.
class ConflictIndex {
 public:
  /// Sequential build.
  explicit ConflictIndex(const ArcView& view);

  /// Parallel build over `pool`; output is byte-identical to the sequential
  /// build for any pool size.
  ConflictIndex(const ArcView& view, ThreadPool& pool);

  /// Incremental rebuild after a local topology change (the soak driver's
  /// per-event path). `old_index` must be the index of `old_graph`; `view`
  /// is over the new graph on the same node universe; `touched` must list
  /// both endpoints of every edge present in exactly one of the two graphs.
  ///
  /// A conflict (shared endpoint or hidden-terminal mediation) can only
  /// appear or vanish for arcs with an endpoint within distance 1 of a
  /// changed-edge endpoint, so rows of arcs whose endpoints lie outside the
  /// distance-2 ball of `touched` (in the union of old and new adjacency)
  /// are copied and edge-id-remapped; only the ball is re-enumerated. The
  /// remap is strictly monotone (both edge lists sort lexicographically),
  /// so copied rows stay sorted. Byte-identical to a fresh build — the
  /// soaktest suite asserts this on every event of a churn stream.
  ConflictIndex(const ArcView& view, const Graph& old_graph,
                const ConflictIndex& old_index,
                std::span<const NodeId> touched);

  /// Number of arcs indexed (2m).
  std::size_t num_arcs() const noexcept { return offsets_.size() - 1; }

  /// Sorted, duplicate-free arcs conflicting with a (a itself excluded).
  std::span<const ArcId> conflicts(ArcId a) const {
    FDLSP_ASSERT(a < num_arcs(), "arc out of range");
    return {neighbors_.data() + offsets_[a], offsets_[a + 1] - offsets_[a]};
  }

  /// Row size of arc a — its degree in the Lemma-6 conflict graph.
  std::size_t conflict_degree(ArcId a) const {
    FDLSP_ASSERT(a < num_arcs(), "arc out of range");
    return offsets_[a + 1] - offsets_[a];
  }

  /// Largest row size (max degree of the conflict graph), 0 when empty.
  std::size_t max_conflict_degree() const noexcept { return max_degree_; }

  /// Sum of all row sizes = 2 × (edges of the Lemma-6 conflict graph).
  std::size_t total_conflicts() const noexcept { return neighbors_.size(); }

  /// True iff distinct arcs a and b may not share a slot. O(log row).
  /// Agrees with arcs_conflict() by construction (tests assert it).
  bool conflict(ArcId a, ArcId b) const;

  /// Raw CSR arrays, exposed so tests can assert byte-identical builds.
  const std::vector<std::size_t>& raw_offsets() const noexcept {
    return offsets_;
  }
  const std::vector<ArcId>& raw_neighbors() const noexcept {
    return neighbors_;
  }

 private:
  void build(const ArcView& view, ThreadPool* pool);

  std::vector<std::size_t> offsets_;  // num_arcs + 1 entries
  std::vector<ArcId> neighbors_;      // sorted within each row
  std::size_t max_degree_ = 0;
};

/// Reusable, allocation-free (after warm-up) kernels over a prebuilt index.
/// Not thread-safe: give each worker its own scratch.
class ConflictScratch {
 public:
  explicit ConflictScratch(const ConflictIndex& index) : index_(&index) {}

  /// Smallest color >= 0 unused by any colored arc conflicting with a.
  /// Identical to smallest_feasible_color(view, coloring, a), but a single
  /// epoch-stamped sweep of the CSR row: no re-enumeration, no sort.
  Color smallest_feasible_color(const ArcColoring& coloring, ArcId a) {
    used_.begin();
    for (const ArcId b : index_->conflicts(a)) {
      const Color c = coloring.color(b);
      if (c != kNoColor) used_.mark(static_cast<std::size_t>(c));
    }
    return static_cast<Color>(used_.first_unmarked());
  }

  const ConflictIndex& index() const noexcept { return *index_; }

 private:
  const ConflictIndex* index_;
  EpochMarks used_;
};

}  // namespace fdlsp
