// The distance-2 arc conflict relation (Definition 2).
//
// Arcs a = (t1 -> h1) and b = (t2 -> h2) of the bi-directed graph may not
// share a TDMA slot iff
//   * they share an endpoint (ILP constraints 4, 5, 6), or
//   * one's head is adjacent to the other's tail — the hidden-terminal
//     condition (ILP constraint 2): the receiver would hear two transmitters.
//
// Every component of the library (checker, greedy/exact colorers, ILP,
// distributed algorithms, radio simulator) reduces to this predicate.
#pragma once

#include <vector>

#include "coloring/coloring.h"
#include "graph/arcs.h"
#include "graph/types.h"

namespace fdlsp {

/// True iff distinct arcs a and b may not share a color.
bool arcs_conflict(const ArcView& view, ArcId a, ArcId b);

/// Invokes fn(b) for every arc b != a that conflicts with a. An arc may be
/// visited more than once (the enumeration unions overlapping categories);
/// callers must be idempotent per arc.
template <typename Fn>
void for_each_conflicting_arc(const ArcView& view, ArcId a, Fn&& fn) {
  const NodeId t = view.tail(a);
  const NodeId h = view.head(a);
  const Graph& g = view.graph();
  // 1) Arcs incident on the tail or the head (both directions).
  for (const NeighborEntry& entry : g.neighbors(t)) {
    const ArcId out = view.arc_from(entry.edge, t);
    if (out != a) fn(out);
    const ArcId in = ArcView::reverse(out);
    if (in != a) fn(in);
  }
  for (const NeighborEntry& entry : g.neighbors(h)) {
    const ArcId out = view.arc_from(entry.edge, h);
    if (out != a) fn(out);
    const ArcId in = ArcView::reverse(out);
    if (in != a) fn(in);
  }
  // 2) Hidden terminal, receiver side: a transmitter adjacent to h would
  //    interfere at h — any out-arc of a neighbor of h conflicts.
  for (const NeighborEntry& near_head : g.neighbors(h)) {
    const NodeId w = near_head.to;
    for (const NeighborEntry& entry : g.neighbors(w)) {
      const ArcId out = view.arc_from(entry.edge, w);
      if (out != a) fn(out);
    }
  }
  // 3) Hidden terminal, transmitter side: t transmitting interferes at any
  //    neighbor x of t that is receiving — any in-arc of a neighbor of t.
  for (const NeighborEntry& near_tail : g.neighbors(t)) {
    const NodeId x = near_tail.to;
    for (const NeighborEntry& entry : g.neighbors(x)) {
      const ArcId in = ArcView::reverse(view.arc_from(entry.edge, x));
      if (in != a) fn(in);
    }
  }
}

/// Sorted, de-duplicated list of arcs conflicting with a.
std::vector<ArcId> conflicting_arcs(const ArcView& view, ArcId a);

/// As conflicting_arcs, but reusing the caller's buffer (cleared first).
/// (ConflictIndex generates its rows with a faster bitset sweep internally;
/// this helper serves one-off queries that want an owned, sorted row.)
void conflicting_arcs_into(const ArcView& view, ArcId a,
                           std::vector<ArcId>& out);

/// Smallest color >= 0 not used by any colored arc conflicting with a.
/// This is the shared greedy primitive of the sequential colorer and of both
/// distributed algorithms (each node runs it with its distance-2 knowledge).
/// Enumerates conflicts on the fly; workloads that query many arcs on one
/// graph should prebuild a ConflictIndex and use ConflictScratch instead
/// (coloring/conflict_index.h) — both return identical colors.
Color smallest_feasible_color(const ArcView& view, const ArcColoring& coloring,
                              ArcId a);

}  // namespace fdlsp
