// Explicit conflict graph G' of Lemma 6: one vertex per arc of the
// bi-directed graph, one edge per conflicting arc pair. Distance-2 edge
// coloring of G is exactly vertex coloring of G', which is how the exact
// solver and the ILP reach the same optimum.
#pragma once

#include "graph/arcs.h"
#include "graph/graph.h"

namespace fdlsp {

/// Builds the conflict graph; vertex i of the result corresponds to ArcId i.
Graph build_conflict_graph(const ArcView& view);

}  // namespace fdlsp
