// Explicit conflict graph G' of Lemma 6: one vertex per arc of the
// bi-directed graph, one edge per conflicting arc pair. Distance-2 edge
// coloring of G is exactly vertex coloring of G', which is how the exact
// solver and the ILP reach the same optimum.
#pragma once

#include "graph/arcs.h"
#include "graph/graph.h"

namespace fdlsp {

class ConflictIndex;

/// Builds the conflict graph; vertex i of the result corresponds to ArcId i.
/// Enumerates conflicts on the fly (kept as the bench-regression baseline —
/// prefer the indexed overload when an index exists or several components
/// need the conflict relation).
Graph build_conflict_graph(const ArcView& view);

/// Same graph, assembled from a prebuilt index: each CSR row is already the
/// sorted, deduplicated neighbor list of a vertex of G', so construction is
/// a single linear pass with no per-edge duplicate checks.
Graph build_conflict_graph(const ArcView& view, const ConflictIndex& index);

}  // namespace fdlsp
