// Feasibility checking for FDLSP colorings.
#pragma once

#include <optional>
#include <utility>

#include "coloring/coloring.h"
#include "graph/arcs.h"

namespace fdlsp {

/// A pair of same-colored conflicting arcs (evidence of infeasibility).
struct ConflictWitness {
  ArcId a;
  ArcId b;
};

/// Returns the first distance-2 coloring violation among *colored* arcs, or
/// nullopt if none. Uncolored arcs are ignored, so partial colorings can be
/// checked incrementally.
std::optional<ConflictWitness> find_violation(const ArcView& view,
                                              const ArcColoring& coloring);

/// True iff every arc is colored and no two same-colored arcs conflict —
/// i.e. the coloring is a valid full-duplex TDMA link schedule.
bool is_feasible_schedule(const ArcView& view, const ArcColoring& coloring);

/// Number of unordered same-colored conflicting arc pairs among colored
/// arcs. 0 iff the (possibly partial) coloring is conflict-free. The
/// verification harness uses this as a quantitative oracle: shrinking steps
/// may only keep a candidate if the violation count stays positive.
std::size_t count_violations(const ArcView& view, const ArcColoring& coloring);

}  // namespace fdlsp
