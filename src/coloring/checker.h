// Feasibility checking for FDLSP colorings.
//
// Every entry point takes an optional prebuilt ConflictIndex. With an index
// the checkers run the palette-bitset sweep (arcs bucketed by color, each
// color class probed against an arc bitset over deduplicated CSR rows);
// without one they fall back to on-the-fly conflict enumeration. Both paths
// agree on verdicts and counts — only the witness pair of find_violation may
// differ (any same-colored conflicting pair is a valid witness).
#pragma once

#include <optional>
#include <utility>

#include "coloring/coloring.h"
#include "graph/arcs.h"

namespace fdlsp {

class ConflictIndex;

/// A pair of same-colored conflicting arcs (evidence of infeasibility).
struct ConflictWitness {
  ArcId a;
  ArcId b;
};

/// Returns a distance-2 coloring violation among *colored* arcs, or nullopt
/// if none. Uncolored arcs are ignored, so partial colorings can be checked
/// incrementally.
std::optional<ConflictWitness> find_violation(
    const ArcView& view, const ArcColoring& coloring,
    const ConflictIndex* index = nullptr);

/// True iff every arc is colored and no two same-colored arcs conflict —
/// i.e. the coloring is a valid full-duplex TDMA link schedule.
bool is_feasible_schedule(const ArcView& view, const ArcColoring& coloring,
                          const ConflictIndex* index = nullptr);

/// Number of unordered same-colored conflicting arc pairs among colored
/// arcs. 0 iff the (possibly partial) coloring is conflict-free. The
/// verification harness uses this as a quantitative oracle: shrinking steps
/// may only keep a candidate if the violation count stays positive.
std::size_t count_violations(const ArcView& view, const ArcColoring& coloring,
                             const ConflictIndex* index = nullptr);

}  // namespace fdlsp
