#include "coloring/greedy.h"

#include <algorithm>
#include <numeric>

#include "coloring/conflict.h"
#include "coloring/conflict_index.h"
#include "support/check.h"

namespace fdlsp {

ArcColoring greedy_coloring_in_order(const ArcView& view,
                                     const std::vector<ArcId>& order,
                                     const ConflictIndex* index) {
  FDLSP_REQUIRE(order.size() == view.num_arcs(),
                "order must cover every arc exactly once");
  ArcColoring coloring(view.num_arcs());
  if (index != nullptr) {
    FDLSP_REQUIRE(index->num_arcs() == view.num_arcs(),
                  "index does not match graph");
    ConflictScratch scratch(*index);
    for (ArcId a : order) {
      FDLSP_REQUIRE(!coloring.is_colored(a), "arc repeated in order");
      coloring.set(a, scratch.smallest_feasible_color(coloring, a));
    }
    return coloring;
  }
  for (ArcId a : order) {
    FDLSP_REQUIRE(!coloring.is_colored(a), "arc repeated in order");
    coloring.set(a, smallest_feasible_color(view, coloring, a));
  }
  return coloring;
}

ArcColoring greedy_coloring(const ArcView& view, GreedyOrder order, Rng* rng,
                            const ConflictIndex* index) {
  std::vector<ArcId> arcs(view.num_arcs());
  std::iota(arcs.begin(), arcs.end(), 0u);
  switch (order) {
    case GreedyOrder::kArcId:
      break;
    case GreedyOrder::kByDegreeDesc: {
      const Graph& g = view.graph();
      std::stable_sort(arcs.begin(), arcs.end(), [&](ArcId a, ArcId b) {
        const auto score = [&](ArcId arc) {
          return g.degree(view.tail(arc)) + g.degree(view.head(arc));
        };
        return score(a) > score(b);
      });
      break;
    }
    case GreedyOrder::kRandom: {
      FDLSP_REQUIRE(rng != nullptr, "random order needs an Rng");
      rng->shuffle(arcs);
      break;
    }
  }
  return greedy_coloring_in_order(view, arcs, index);
}

}  // namespace fdlsp
