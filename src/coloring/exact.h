// Exact minimum coloring via DSATUR branch-and-bound.
//
// This is the library's "optimal" reference: distance-2 edge coloring a
// bi-directed graph G optimally == vertex coloring its conflict graph
// optimally == solving the Section 4 ILP. The B&B pre-colors a maximal
// clique (lower bound anchor), branches on the most saturated vertex, and
// prunes on the incumbent. Intended for the small instances of Table 1.
#pragma once

#include <cstddef>
#include <vector>

#include "coloring/coloring.h"
#include "graph/arcs.h"
#include "graph/graph.h"

namespace fdlsp {

class ConflictIndex;

/// Search budget / tunables for the exact solver.
struct ExactOptions {
  /// Abort the proof after this many branch-and-bound expansions; the best
  /// incumbent is returned with optimal = false.
  std::size_t max_nodes = 20'000'000;
};

/// Result of an exact vertex-coloring search.
struct VertexColoringResult {
  std::vector<Color> colors;    ///< per-vertex colors, 0-based, complete
  std::size_t num_colors = 0;   ///< colors used by `colors`
  bool optimal = false;         ///< true iff optimality was proven in budget
  std::size_t nodes_explored = 0;
};

/// Minimum vertex coloring of `graph` (exact unless the budget runs out).
VertexColoringResult exact_vertex_coloring(const Graph& graph,
                                           const ExactOptions& options = {});

/// Result of the exact FDLSP solve.
struct ExactFdlspResult {
  ArcColoring coloring;
  std::size_t num_colors = 0;
  bool optimal = false;
};

/// Optimal FDLSP schedule for the bi-directed view of a graph (the paper's
/// "ILP" reference column). With a prebuilt index, the Lemma-6 conflict
/// graph is assembled from its CSR rows instead of re-enumerated; the DSATUR
/// search itself (and hence the result) is unchanged.
ExactFdlspResult optimal_fdlsp(const ArcView& view,
                               const ExactOptions& options = {},
                               const ConflictIndex* index = nullptr);

/// DSATUR greedy coloring of a plain graph (also used standalone as the
/// initial incumbent). Returns per-vertex colors.
std::vector<Color> dsatur_coloring(const Graph& graph);

}  // namespace fdlsp
