#include "coloring/checker.h"

#include "coloring/conflict.h"

namespace fdlsp {

std::optional<ConflictWitness> find_violation(const ArcView& view,
                                              const ArcColoring& coloring) {
  FDLSP_REQUIRE(coloring.num_arcs() == view.num_arcs(),
                "coloring size does not match graph");
  for (ArcId a = 0; a < view.num_arcs(); ++a) {
    const Color c = coloring.color(a);
    if (c == kNoColor) continue;
    std::optional<ConflictWitness> witness;
    for_each_conflicting_arc(view, a, [&](ArcId b) {
      if (witness) return;
      if (b > a && coloring.color(b) == c)  // each unordered pair once
        witness = ConflictWitness{a, b};
    });
    if (witness) return witness;
  }
  return std::nullopt;
}

bool is_feasible_schedule(const ArcView& view, const ArcColoring& coloring) {
  return coloring.num_arcs() == view.num_arcs() && coloring.complete() &&
         !find_violation(view, coloring);
}

}  // namespace fdlsp
