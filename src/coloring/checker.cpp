#include "coloring/checker.h"

#include <cstdint>
#include <vector>

#include "coloring/conflict.h"
#include "coloring/conflict_index.h"
#include "support/epoch_marks.h"

namespace fdlsp {

namespace {

/// Scratch for the palette-bitset sweep, reused per thread so the indexed
/// checkers allocate nothing in steady state (vector::assign reuses
/// capacity).
struct SweepScratch {
  std::vector<std::size_t> offsets;  // colored arcs bucketed by color (CSR)
  std::vector<std::size_t> cursor;
  std::vector<ArcId> members;
  std::vector<std::uint64_t> bits;  // one bit per arc
};

/// Palette-bitset sweep over a prebuilt index: colored arcs are bucketed by
/// color (counting sort, so members stay in ascending arc order), then each
/// color class is marked in an arc bitset and every member's CSR row is
/// probed against it. Rows are deduplicated, and a same-colored conflicting
/// pair (a, b) with a < b is seen exactly once — from a's row — so no
/// per-arc dedup is needed. Invokes on_pair(a, b) per pair; a false return
/// stops the sweep.
template <typename OnPair>
void sweep_same_color_pairs(const ConflictIndex& index,
                            const ArcColoring& coloring, OnPair on_pair) {
  const std::size_t n = index.num_arcs();
  const std::size_t palette = coloring.color_span();
  thread_local SweepScratch s;

  s.offsets.assign(palette + 1, 0);
  for (ArcId a = 0; a < n; ++a) {
    const Color c = coloring.color(a);
    if (c != kNoColor) ++s.offsets[static_cast<std::size_t>(c) + 1];
  }
  for (std::size_t j = 0; j < palette; ++j) s.offsets[j + 1] += s.offsets[j];
  s.cursor.assign(s.offsets.begin(), s.offsets.end() - 1);
  s.members.resize(s.offsets[palette]);
  for (ArcId a = 0; a < n; ++a) {
    const Color c = coloring.color(a);
    if (c != kNoColor) s.members[s.cursor[static_cast<std::size_t>(c)]++] = a;
  }

  s.bits.assign((n + 63) / 64, 0);
  const auto bit_test = [&](ArcId b) {
    return (s.bits[b >> 6] >> (b & 63)) & 1u;
  };
  for (std::size_t j = 0; j < palette; ++j) {
    const std::size_t begin = s.offsets[j];
    const std::size_t end = s.offsets[j + 1];
    if (end - begin < 2) continue;  // a singleton class cannot clash
    for (std::size_t k = begin; k < end; ++k)
      s.bits[s.members[k] >> 6] |= std::uint64_t{1} << (s.members[k] & 63);
    for (std::size_t k = begin; k < end; ++k) {
      const ArcId a = s.members[k];
      for (const ArcId b : index.conflicts(a))
        if (b > a && bit_test(b) && !on_pair(a, b)) return;
    }
    for (std::size_t k = begin; k < end; ++k)
      s.bits[s.members[k] >> 6] &= ~(std::uint64_t{1} << (s.members[k] & 63));
  }
}

}  // namespace

std::optional<ConflictWitness> find_violation(const ArcView& view,
                                              const ArcColoring& coloring,
                                              const ConflictIndex* index) {
  FDLSP_REQUIRE(coloring.num_arcs() == view.num_arcs(),
                "coloring size does not match graph");
  if (index != nullptr) {
    FDLSP_REQUIRE(index->num_arcs() == view.num_arcs(),
                  "index does not match graph");
    std::optional<ConflictWitness> witness;
    sweep_same_color_pairs(*index, coloring, [&](ArcId a, ArcId b) {
      witness = ConflictWitness{a, b};
      return false;  // first pair suffices
    });
    return witness;
  }
  for (ArcId a = 0; a < view.num_arcs(); ++a) {
    const Color c = coloring.color(a);
    if (c == kNoColor) continue;
    std::optional<ConflictWitness> witness;
    for_each_conflicting_arc(view, a, [&](ArcId b) {
      if (witness) return;
      if (b > a && coloring.color(b) == c)  // each unordered pair once
        witness = ConflictWitness{a, b};
    });
    if (witness) return witness;
  }
  return std::nullopt;
}

bool is_feasible_schedule(const ArcView& view, const ArcColoring& coloring,
                          const ConflictIndex* index) {
  return coloring.num_arcs() == view.num_arcs() && coloring.complete() &&
         !find_violation(view, coloring, index);
}

std::size_t count_violations(const ArcView& view, const ArcColoring& coloring,
                             const ConflictIndex* index) {
  FDLSP_REQUIRE(coloring.num_arcs() == view.num_arcs(),
                "coloring size does not match graph");
  std::size_t violations = 0;
  if (index != nullptr) {
    FDLSP_REQUIRE(index->num_arcs() == view.num_arcs(),
                  "index does not match graph");
    sweep_same_color_pairs(*index, coloring, [&](ArcId, ArcId) {
      ++violations;
      return true;
    });
    return violations;
  }
  // Fallback: the enumeration may visit an arc repeatedly, so de-duplicate
  // partners with an epoch-stamped set (no per-arc vector + sort).
  thread_local EpochMarks partners;
  for (ArcId a = 0; a < view.num_arcs(); ++a) {
    const Color c = coloring.color(a);
    if (c == kNoColor) continue;
    partners.begin();
    for_each_conflicting_arc(view, a, [&](ArcId b) {
      if (b > a && coloring.color(b) == c && partners.mark_if_new(b))
        ++violations;
    });
  }
  return violations;
}

}  // namespace fdlsp
