#include "coloring/checker.h"

#include <algorithm>
#include <vector>

#include "coloring/conflict.h"

namespace fdlsp {

std::optional<ConflictWitness> find_violation(const ArcView& view,
                                              const ArcColoring& coloring) {
  FDLSP_REQUIRE(coloring.num_arcs() == view.num_arcs(),
                "coloring size does not match graph");
  for (ArcId a = 0; a < view.num_arcs(); ++a) {
    const Color c = coloring.color(a);
    if (c == kNoColor) continue;
    std::optional<ConflictWitness> witness;
    for_each_conflicting_arc(view, a, [&](ArcId b) {
      if (witness) return;
      if (b > a && coloring.color(b) == c)  // each unordered pair once
        witness = ConflictWitness{a, b};
    });
    if (witness) return witness;
  }
  return std::nullopt;
}

bool is_feasible_schedule(const ArcView& view, const ArcColoring& coloring) {
  return coloring.num_arcs() == view.num_arcs() && coloring.complete() &&
         !find_violation(view, coloring);
}

std::size_t count_violations(const ArcView& view,
                             const ArcColoring& coloring) {
  FDLSP_REQUIRE(coloring.num_arcs() == view.num_arcs(),
                "coloring size does not match graph");
  std::size_t violations = 0;
  std::vector<ArcId> partners;
  for (ArcId a = 0; a < view.num_arcs(); ++a) {
    const Color c = coloring.color(a);
    if (c == kNoColor) continue;
    // De-duplicate: the conflict enumeration may visit an arc repeatedly.
    partners.clear();
    for_each_conflicting_arc(view, a, [&](ArcId b) {
      if (b > a && coloring.color(b) == c) partners.push_back(b);
    });
    std::sort(partners.begin(), partners.end());
    partners.erase(std::unique(partners.begin(), partners.end()),
                   partners.end());
    violations += partners.size();
  }
  return violations;
}

}  // namespace fdlsp
