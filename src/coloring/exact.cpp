#include "coloring/exact.h"

#include <algorithm>

#include "coloring/conflict_graph.h"
#include "support/check.h"

namespace fdlsp {

namespace {

/// Picks the uncolored vertex with maximum saturation (distinct neighbor
/// colors), breaking ties by degree. Returns kNoNode when all are colored.
NodeId pick_most_saturated(const Graph& graph, const std::vector<Color>& colors,
                           const std::vector<std::size_t>& saturation) {
  NodeId best = kNoNode;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    if (colors[v] != kNoColor) continue;
    if (best == kNoNode || saturation[v] > saturation[best] ||
        (saturation[v] == saturation[best] &&
         graph.degree(v) > graph.degree(best)))
      best = v;
  }
  return best;
}

class BranchAndBound {
 public:
  BranchAndBound(const Graph& graph, const ExactOptions& options)
      : graph_(graph), options_(options) {}

  VertexColoringResult solve() {
    const std::size_t n = graph_.num_nodes();
    VertexColoringResult result;
    if (n == 0) {
      result.optimal = true;
      return result;
    }

    // Initial incumbent from DSATUR greedy.
    best_colors_ = dsatur_coloring(graph_);
    best_count_ = used_count(best_colors_);

    // Anchor: a greedily grown maximal clique is pre-colored 0..k-1. Any
    // optimal coloring can be relabelled to match, so this loses no
    // solutions but kills the color-permutation symmetry.
    const std::vector<NodeId> clique = greedy_clique();
    lower_bound_ = clique.size();

    if (lower_bound_ == best_count_) {
      result.colors = best_colors_;
      result.num_colors = best_count_;
      result.optimal = true;
      result.nodes_explored = 0;
      return result;
    }

    colors_.assign(n, kNoColor);
    saturation_.assign(n, 0);
    neighbor_color_use_.assign(n, {});
    for (NodeId v = 0; v < n; ++v)
      neighbor_color_use_[v].assign(best_count_ + 1, 0);
    uncolored_ = n;
    Color next = 0;
    for (NodeId v : clique) assign(v, next++);

    aborted_ = false;
    branch(static_cast<std::size_t>(next));

    result.colors = best_colors_;
    result.num_colors = best_count_;
    result.optimal = !aborted_;
    result.nodes_explored = explored_;
    return result;
  }

 private:
  static std::size_t used_count(const std::vector<Color>& colors) {
    Color max_color = kNoColor;
    for (Color c : colors) max_color = std::max(max_color, c);
    return max_color == kNoColor ? 0 : static_cast<std::size_t>(max_color) + 1;
  }

  std::vector<NodeId> greedy_clique() const {
    // Grow from the max-degree vertex, always adding the candidate with the
    // most remaining candidates adjacent.
    NodeId seed = 0;
    for (NodeId v = 1; v < graph_.num_nodes(); ++v)
      if (graph_.degree(v) > graph_.degree(seed)) seed = v;
    std::vector<NodeId> clique{seed};
    std::vector<NodeId> candidates;
    for (const NeighborEntry& entry : graph_.neighbors(seed))
      candidates.push_back(entry.to);
    while (!candidates.empty()) {
      NodeId pick = candidates[0];
      std::size_t pick_score = 0;
      for (NodeId c : candidates) {
        std::size_t score = 0;
        for (NodeId other : candidates)
          if (other != c && graph_.has_edge(c, other)) ++score;
        if (score > pick_score) {
          pick = c;
          pick_score = score;
        }
      }
      clique.push_back(pick);
      std::vector<NodeId> next;
      for (NodeId c : candidates)
        if (c != pick && graph_.has_edge(c, pick)) next.push_back(c);
      candidates = std::move(next);
    }
    return clique;
  }

  void assign(NodeId v, Color c) {
    FDLSP_ASSERT(colors_[v] == kNoColor, "vertex already colored");
    colors_[v] = c;
    --uncolored_;
    const auto slot = static_cast<std::size_t>(c);
    for (const NeighborEntry& entry : graph_.neighbors(v)) {
      auto& use = neighbor_color_use_[entry.to];
      if (slot >= use.size()) use.resize(slot + 1, 0);
      if (use[slot]++ == 0) ++saturation_[entry.to];
    }
  }

  void unassign(NodeId v) {
    const auto slot = static_cast<std::size_t>(colors_[v]);
    colors_[v] = kNoColor;
    ++uncolored_;
    for (const NeighborEntry& entry : graph_.neighbors(v)) {
      auto& use = neighbor_color_use_[entry.to];
      if (--use[slot] == 0) --saturation_[entry.to];
    }
  }

  bool color_feasible(NodeId v, Color c) const {
    const auto& use = neighbor_color_use_[v];
    const auto slot = static_cast<std::size_t>(c);
    return slot >= use.size() || use[slot] == 0;
  }

  // `used` = number of colors currently in use (colors 0..used-1).
  void branch(std::size_t used) {
    if (aborted_) return;
    if (++explored_ > options_.max_nodes) {
      aborted_ = true;
      return;
    }
    if (uncolored_ == 0) {
      if (used < best_count_) {
        best_count_ = used;
        best_colors_ = colors_;
      }
      return;
    }
    if (used >= best_count_) return;  // cannot improve
    const NodeId v = pick_most_saturated(graph_, colors_, saturation_);
    // Try existing colors first, then (at most) one fresh color.
    for (Color c = 0; static_cast<std::size_t>(c) < used; ++c) {
      if (!color_feasible(v, c)) continue;
      assign(v, c);
      branch(used);
      unassign(v);
      if (aborted_) return;
      if (best_count_ <= std::max(lower_bound_, used)) return;
    }
    if (used + 1 < best_count_) {
      assign(v, static_cast<Color>(used));
      branch(used + 1);
      unassign(v);
    }
  }

  const Graph& graph_;
  const ExactOptions& options_;
  std::vector<Color> colors_;
  std::vector<std::size_t> saturation_;
  // Per vertex: how many neighbors use each color (for O(1) feasibility).
  std::vector<std::vector<std::uint32_t>> neighbor_color_use_;
  std::vector<Color> best_colors_;
  std::size_t best_count_ = 0;
  std::size_t lower_bound_ = 0;
  std::size_t uncolored_ = 0;
  std::size_t explored_ = 0;
  bool aborted_ = false;
};

}  // namespace

std::vector<Color> dsatur_coloring(const Graph& graph) {
  const std::size_t n = graph.num_nodes();
  std::vector<Color> colors(n, kNoColor);
  std::vector<std::size_t> saturation(n, 0);
  std::vector<std::vector<bool>> neighbor_has(n);
  for (std::size_t remaining = n; remaining > 0; --remaining) {
    const NodeId v = pick_most_saturated(graph, colors, saturation);
    // Smallest color absent from v's neighborhood.
    Color c = 0;
    const auto& has = neighbor_has[v];
    while (static_cast<std::size_t>(c) < has.size() &&
           has[static_cast<std::size_t>(c)])
      ++c;
    colors[v] = c;
    for (const NeighborEntry& entry : graph.neighbors(v)) {
      auto& mask = neighbor_has[entry.to];
      const auto slot = static_cast<std::size_t>(c);
      if (slot >= mask.size()) mask.resize(slot + 1, false);
      if (!mask[slot]) {
        mask[slot] = true;
        ++saturation[entry.to];
      }
    }
  }
  return colors;
}

VertexColoringResult exact_vertex_coloring(const Graph& graph,
                                           const ExactOptions& options) {
  BranchAndBound solver(graph, options);
  return solver.solve();
}

ExactFdlspResult optimal_fdlsp(const ArcView& view,
                               const ExactOptions& options,
                               const ConflictIndex* index) {
  const Graph conflict_graph = index != nullptr
                                   ? build_conflict_graph(view, *index)
                                   : build_conflict_graph(view);
  VertexColoringResult solved = exact_vertex_coloring(conflict_graph, options);
  ExactFdlspResult result;
  result.coloring = ArcColoring(view.num_arcs());
  for (ArcId a = 0; a < view.num_arcs(); ++a)
    result.coloring.set(a, solved.colors[a]);
  result.num_colors = solved.num_colors;
  result.optimal = solved.optimal;
  return result;
}

}  // namespace fdlsp
