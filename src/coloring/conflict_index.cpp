#include "coloring/conflict_index.h"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <limits>

#include "coloring/conflict.h"
#include "support/parallel_for.h"
#include "support/thread_pool.h"

namespace fdlsp {

namespace {

/// Per-worker row generator. The raw enumeration emits duplicates; instead
/// of sort+unique (which dominates the build — measured ~9x the enumeration
/// itself), conflicts are marked in an arc bitset and the touched word range
/// is swept once, which yields the row already sorted and deduplicated and
/// zeroes the bitset for the next row in the same sweep.
struct RowScratch {
  std::vector<std::uint64_t> bits;  // one bit per arc, zero between rows
  std::vector<ArcId> row;           // sorted deduplicated output

  void prepare(std::size_t words, std::size_t row_bound) {
    if (bits.size() < words) bits.resize(words, 0);
    row.reserve(row_bound);
  }

  void fill(const ArcView& view, ArcId a) {
    row.clear();
    ArcId lo = std::numeric_limits<ArcId>::max();
    ArcId hi = 0;
    for_each_conflicting_arc(view, a, [&](ArcId b) {
      bits[b >> 6] |= std::uint64_t{1} << (b & 63u);
      lo = std::min(lo, b);
      hi = std::max(hi, b);
    });
    if (lo > hi) return;  // isolated arc: no conflicts
    for (std::size_t w = lo >> 6; w <= (hi >> 6); ++w) {
      std::uint64_t word = bits[w];
      bits[w] = 0;
      while (word != 0) {
        const auto bit = static_cast<std::size_t>(std::countr_zero(word));
        row.push_back(static_cast<ArcId>((w << 6) | bit));
        word &= word - 1;
      }
    }
  }
};

/// Runs row_fn(arc, scratch) for every arc, sequentially or across the pool.
/// Each invocation depends only on its own arc, so the parallel schedule
/// cannot influence results; the scratch is reused per worker to keep the
/// bitset and row buffer warm (the latter sized by the Lemma-6 row bound).
template <typename RowFn>
void for_each_arc(ThreadPool* pool, std::size_t num_arcs, std::size_t words,
                  std::size_t row_bound, RowFn row_fn) {
  if (pool == nullptr) {
    RowScratch scratch;
    scratch.prepare(words, row_bound);
    for (std::size_t a = 0; a < num_arcs; ++a) row_fn(a, scratch);
    return;
  }
  parallel_for(*pool, num_arcs, [&](std::size_t a) {
    thread_local RowScratch scratch;
    scratch.prepare(words, row_bound);
    row_fn(a, scratch);
  });
}

}  // namespace

ConflictIndex::ConflictIndex(const ArcView& view) { build(view, nullptr); }

ConflictIndex::ConflictIndex(const ArcView& view, ThreadPool& pool) {
  build(view, &pool);
}

void ConflictIndex::build(const ArcView& view, ThreadPool* pool) {
  const std::size_t n = view.num_arcs();
  offsets_.assign(n + 1, 0);
  if (n == 0) return;

  // Lemma 6: an arc conflicts with fewer than min(2Δ², 2m − 1) others.
  const std::size_t delta = view.graph().max_degree();
  const std::size_t row_bound = std::min(n - 1, 2 * delta * delta);
  const std::size_t words = (n + 63) / 64;

  // Pass 1 (count): deduplicated row size per arc. Rows land in disjoint
  // slots of offsets_, so the parallel writes never alias.
  for_each_arc(pool, n, words, row_bound,
               [&](std::size_t a, RowScratch& scratch) {
                 scratch.fill(view, static_cast<ArcId>(a));
                 offsets_[a + 1] = scratch.row.size();
               });

  for (std::size_t a = 0; a < n; ++a) {
    max_degree_ = std::max(max_degree_, offsets_[a + 1]);
    offsets_[a + 1] += offsets_[a];
  }

  // Pass 2 (fill): regenerate each row straight into its CSR slice.
  neighbors_.resize(offsets_[n]);
  for_each_arc(pool, n, words, row_bound,
               [&](std::size_t a, RowScratch& scratch) {
                 scratch.fill(view, static_cast<ArcId>(a));
                 std::copy(scratch.row.begin(), scratch.row.end(),
                           neighbors_.begin() +
                               static_cast<std::ptrdiff_t>(offsets_[a]));
               });
}

bool ConflictIndex::conflict(ArcId a, ArcId b) const {
  FDLSP_REQUIRE(a != b, "conflict is defined on distinct arcs");
  // Probe the shorter row.
  if (conflict_degree(a) > conflict_degree(b)) std::swap(a, b);
  const auto row = conflicts(a);
  return std::binary_search(row.begin(), row.end(), b);
}

}  // namespace fdlsp
