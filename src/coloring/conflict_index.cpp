#include "coloring/conflict_index.h"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <limits>

#include "coloring/conflict.h"
#include "support/parallel_for.h"
#include "support/thread_pool.h"

namespace fdlsp {

namespace {

/// Per-worker row generator. The raw enumeration emits duplicates; instead
/// of sort+unique (which dominates the build — measured ~9x the enumeration
/// itself), conflicts are marked in an arc bitset and the touched word range
/// is swept once, which yields the row already sorted and deduplicated and
/// zeroes the bitset for the next row in the same sweep.
struct RowScratch {
  std::vector<std::uint64_t> bits;  // one bit per arc, zero between rows
  std::vector<ArcId> row;           // sorted deduplicated output

  void prepare(std::size_t words, std::size_t row_bound) {
    if (bits.size() < words) bits.resize(words, 0);
    row.reserve(row_bound);
  }

  void fill(const ArcView& view, ArcId a) {
    row.clear();
    ArcId lo = std::numeric_limits<ArcId>::max();
    ArcId hi = 0;
    for_each_conflicting_arc(view, a, [&](ArcId b) {
      bits[b >> 6] |= std::uint64_t{1} << (b & 63u);
      lo = std::min(lo, b);
      hi = std::max(hi, b);
    });
    if (lo > hi) return;  // isolated arc: no conflicts
    for (std::size_t w = lo >> 6; w <= (hi >> 6); ++w) {
      std::uint64_t word = bits[w];
      bits[w] = 0;
      while (word != 0) {
        const auto bit = static_cast<std::size_t>(std::countr_zero(word));
        row.push_back(static_cast<ArcId>((w << 6) | bit));
        word &= word - 1;
      }
    }
  }
};

/// Runs row_fn(arc, scratch) for every arc, sequentially or across the pool.
/// Each invocation depends only on its own arc, so the parallel schedule
/// cannot influence results; the scratch is reused per worker to keep the
/// bitset and row buffer warm (the latter sized by the Lemma-6 row bound).
template <typename RowFn>
void for_each_arc(ThreadPool* pool, std::size_t num_arcs, std::size_t words,
                  std::size_t row_bound, RowFn row_fn) {
  if (pool == nullptr) {
    RowScratch scratch;
    scratch.prepare(words, row_bound);
    for (std::size_t a = 0; a < num_arcs; ++a) row_fn(a, scratch);
    return;
  }
  parallel_for(*pool, num_arcs, [&](std::size_t a) {
    thread_local RowScratch scratch;
    scratch.prepare(words, row_bound);
    row_fn(a, scratch);
  });
}

}  // namespace

ConflictIndex::ConflictIndex(const ArcView& view) { build(view, nullptr); }

ConflictIndex::ConflictIndex(const ArcView& view, ThreadPool& pool) {
  build(view, &pool);
}

ConflictIndex::ConflictIndex(const ArcView& view, const Graph& old_graph,
                             const ConflictIndex& old_index,
                             std::span<const NodeId> touched) {
  const Graph& new_graph = view.graph();
  const std::size_t num_nodes = new_graph.num_nodes();
  FDLSP_REQUIRE(old_graph.num_nodes() == num_nodes,
                "incremental update requires a fixed node universe");
  FDLSP_REQUIRE(old_index.num_arcs() == 2 * old_graph.num_edges(),
                "stale index does not match the old graph");

  const std::size_t n = view.num_arcs();
  offsets_.assign(n + 1, 0);
  if (n == 0) return;

  // Dirty ball: nodes within distance <= 2 of a touched node in the union
  // of old and new adjacency (see the header comment for why 2 suffices).
  std::vector<char> dirty(num_nodes, 0);
  std::vector<NodeId> frontier;
  for (const NodeId v : touched) {
    FDLSP_REQUIRE(v < num_nodes, "touched node out of range");
    if (!dirty[v]) {
      dirty[v] = 1;
      frontier.push_back(v);
    }
  }
  std::vector<NodeId> next;
  for (int hop = 0; hop < 2; ++hop) {
    next.clear();
    for (const NodeId v : frontier) {
      const auto visit = [&](NodeId w) {
        if (!dirty[w]) {
          dirty[w] = 1;
          next.push_back(w);
        }
      };
      for (const NeighborEntry& entry : old_graph.neighbors(v))
        visit(entry.to);
      for (const NeighborEntry& entry : new_graph.neighbors(v))
        visit(entry.to);
    }
    std::swap(frontier, next);
  }

  // Edge-id maps between the two graphs. Clean rows may reference arcs over
  // dirty-but-surviving edges, so the old->new map covers every survivor,
  // not just the clean ones. Both edge lists sort lexicographically on
  // (u, v) and survivors keep their relative order, so the map is strictly
  // monotone and remapped rows stay sorted.
  std::vector<EdgeId> new_edge_of_old(old_graph.num_edges(), kNoEdge);
  std::vector<EdgeId> old_edge_of_new(new_graph.num_edges(), kNoEdge);
  std::vector<char> edge_dirty(new_graph.num_edges(), 0);
  for (std::size_t e = 0; e < new_graph.num_edges(); ++e) {
    const Edge& edge = new_graph.edge(static_cast<EdgeId>(e));
    edge_dirty[e] = (dirty[edge.u] || dirty[edge.v]) ? 1 : 0;
    const EdgeId old = old_graph.find_edge(edge.u, edge.v);
    if (old != kNoEdge) {
      new_edge_of_old[old] = static_cast<EdgeId>(e);
      old_edge_of_new[e] = old;
    } else {
      FDLSP_ASSERT(edge_dirty[e], "clean edge missing from the old graph");
    }
  }

  const std::size_t delta = new_graph.max_degree();
  const std::size_t row_bound = std::min(n - 1, 2 * delta * delta);
  const std::size_t words = (n + 63) / 64;
  RowScratch scratch;
  scratch.prepare(words, row_bound);

  // Pass 1 (count): copied sizes for clean arcs, regenerated for dirty.
  for (std::size_t a = 0; a < n; ++a) {
    if (edge_dirty[a >> 1]) {
      scratch.fill(view, static_cast<ArcId>(a));
      offsets_[a + 1] = scratch.row.size();
    } else {
      const EdgeId old_e = old_edge_of_new[a >> 1];
      const auto old_a = static_cast<ArcId>((old_e << 1) | (a & 1));
      offsets_[a + 1] = old_index.conflict_degree(old_a);
    }
  }
  for (std::size_t a = 0; a < n; ++a) {
    max_degree_ = std::max(max_degree_, offsets_[a + 1]);
    offsets_[a + 1] += offsets_[a];
  }

  // Pass 2 (fill): remap-copy clean rows, regenerate dirty ones.
  neighbors_.resize(offsets_[n]);
  for (std::size_t a = 0; a < n; ++a) {
    auto out = neighbors_.begin() + static_cast<std::ptrdiff_t>(offsets_[a]);
    if (edge_dirty[a >> 1]) {
      scratch.fill(view, static_cast<ArcId>(a));
      std::copy(scratch.row.begin(), scratch.row.end(), out);
    } else {
      const EdgeId old_e = old_edge_of_new[a >> 1];
      const auto old_a = static_cast<ArcId>((old_e << 1) | (a & 1));
      for (const ArcId b_old : old_index.conflicts(old_a)) {
        const EdgeId mapped = new_edge_of_old[b_old >> 1];
        FDLSP_ASSERT(mapped != kNoEdge, "clean row references a removed edge");
        *out++ = static_cast<ArcId>((mapped << 1) | (b_old & 1));
      }
    }
  }
}

void ConflictIndex::build(const ArcView& view, ThreadPool* pool) {
  const std::size_t n = view.num_arcs();
  offsets_.assign(n + 1, 0);
  if (n == 0) return;

  // Lemma 6: an arc conflicts with fewer than min(2Δ², 2m − 1) others.
  const std::size_t delta = view.graph().max_degree();
  const std::size_t row_bound = std::min(n - 1, 2 * delta * delta);
  const std::size_t words = (n + 63) / 64;

  // Pass 1 (count): deduplicated row size per arc. Rows land in disjoint
  // slots of offsets_, so the parallel writes never alias.
  for_each_arc(pool, n, words, row_bound,
               [&](std::size_t a, RowScratch& scratch) {
                 scratch.fill(view, static_cast<ArcId>(a));
                 offsets_[a + 1] = scratch.row.size();
               });

  for (std::size_t a = 0; a < n; ++a) {
    max_degree_ = std::max(max_degree_, offsets_[a + 1]);
    offsets_[a + 1] += offsets_[a];
  }

  // Pass 2 (fill): regenerate each row straight into its CSR slice.
  neighbors_.resize(offsets_[n]);
  for_each_arc(pool, n, words, row_bound,
               [&](std::size_t a, RowScratch& scratch) {
                 scratch.fill(view, static_cast<ArcId>(a));
                 std::copy(scratch.row.begin(), scratch.row.end(),
                           neighbors_.begin() +
                               static_cast<std::ptrdiff_t>(offsets_[a]));
               });
}

bool ConflictIndex::conflict(ArcId a, ArcId b) const {
  FDLSP_REQUIRE(a != b, "conflict is defined on distinct arcs");
  // Probe the shorter row.
  if (conflict_degree(a) > conflict_degree(b)) std::swap(a, b);
  const auto row = conflicts(a);
  return std::binary_search(row.begin(), row.end(), b);
}

}  // namespace fdlsp
