#include "coloring/coloring.h"

#include <algorithm>
#include <vector>

namespace fdlsp {

std::size_t ArcColoring::num_colors_used() const {
  Color max_color = kNoColor;
  for (Color c : colors_) max_color = std::max(max_color, c);
  if (max_color == kNoColor) return 0;
  std::vector<bool> used(static_cast<std::size_t>(max_color) + 1, false);
  for (Color c : colors_)
    if (c != kNoColor) used[static_cast<std::size_t>(c)] = true;
  return static_cast<std::size_t>(std::count(used.begin(), used.end(), true));
}

std::size_t ArcColoring::color_span() const {
  Color max_color = kNoColor;
  for (Color c : colors_) max_color = std::max(max_color, c);
  return max_color == kNoColor ? 0 : static_cast<std::size_t>(max_color) + 1;
}

}  // namespace fdlsp
