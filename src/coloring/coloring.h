// Arc colorings: the output object of every FDLSP algorithm.
//
// A color is a TDMA time slot: arc (u -> v) colored c means u transmits to v
// in slot c of every frame. kNoColor marks a not-yet-scheduled arc.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/types.h"
#include "support/check.h"

namespace fdlsp {

/// A TDMA time slot index. Non-negative when assigned.
using Color = std::int32_t;

/// Sentinel for "not colored yet".
inline constexpr Color kNoColor = -1;

/// Dense color assignment over the arcs of a bi-directed graph.
class ArcColoring {
 public:
  ArcColoring() = default;

  /// All arcs start uncolored.
  explicit ArcColoring(std::size_t num_arcs)
      : colors_(num_arcs, kNoColor) {}

  std::size_t num_arcs() const noexcept { return colors_.size(); }

  /// Color of arc a (kNoColor if unassigned).
  Color color(ArcId a) const {
    FDLSP_ASSERT(a < colors_.size(), "arc out of range");
    return colors_[a];
  }

  /// True iff arc a has a color.
  bool is_colored(ArcId a) const { return color(a) != kNoColor; }

  /// Assigns color c (>= 0) to arc a.
  void set(ArcId a, Color c) {
    FDLSP_ASSERT(a < colors_.size(), "arc out of range");
    FDLSP_REQUIRE(c >= 0, "colors must be non-negative");
    if (colors_[a] == kNoColor) ++colored_;
    colors_[a] = c;
  }

  /// Removes the color of arc a (used by repair algorithms).
  void clear(ArcId a) {
    FDLSP_ASSERT(a < colors_.size(), "arc out of range");
    if (colors_[a] != kNoColor) --colored_;
    colors_[a] = kNoColor;
  }

  /// Number of arcs that currently have a color.
  std::size_t num_colored() const noexcept { return colored_; }

  /// True iff every arc is colored.
  bool complete() const noexcept { return colored_ == colors_.size(); }

  /// Number of distinct colors in use — the TDMA frame length.
  std::size_t num_colors_used() const;

  /// Largest color in use plus one; 0 if nothing is colored.
  std::size_t color_span() const;

  /// Raw color vector (read-only), indexed by ArcId.
  const std::vector<Color>& raw() const noexcept { return colors_; }

 private:
  std::vector<Color> colors_;
  std::size_t colored_ = 0;
};

}  // namespace fdlsp
