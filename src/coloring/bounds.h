// Theorem 1 lower bound and Lemma 6 upper bound on FDLSP slot counts.
#pragma once

#include <cstddef>

#include "graph/graph.h"

namespace fdlsp {

class ConflictIndex;

/// The trivial lower bound 2Δ (every arc incident on a max-degree node needs
/// its own slot).
std::size_t lower_bound_trivial(const Graph& graph);

/// Theorem 1: max over cluster centers v and common edges (v, w) of
///   2 * (deg(v) + cluster_size(v, w) + edges_in_largest_joint_clique(v, w)),
/// where cluster_size is the number of size-3 cliques through the common
/// edge and joint cliques live among the cluster's outer nodes.
/// Always >= lower_bound_trivial.
std::size_t lower_bound_theorem1(const Graph& graph);

/// Lemma 6 upper bound 2Δ² (any greedy coloring of the conflict graph fits).
/// For an edgeless graph this is 0; for Δ = 1 it is 2 (one edge, two slots).
std::size_t upper_bound_colors(const Graph& graph);

/// Instance-exact form of the Lemma 6 argument, read off a prebuilt index:
/// greedy needs at most max_conflict_degree + 1 slots. Always at most
/// upper_bound_colors (the 2Δ² worst case over all graphs with that Δ) and
/// usually far tighter; 0 for an arcless graph.
std::size_t upper_bound_conflict_degree(const ConflictIndex& index);

}  // namespace fdlsp
