#include "coloring/bounds.h"

#include <algorithm>

#include "coloring/conflict_index.h"
#include "graph/algorithms.h"
#include "graph/cliques.h"

namespace fdlsp {

std::size_t lower_bound_trivial(const Graph& graph) {
  return 2 * graph.max_degree();
}

std::size_t lower_bound_theorem1(const Graph& graph) {
  std::size_t best = lower_bound_trivial(graph);
  for (const Edge& common : graph.edges()) {
    // The cluster with common edge (v, w): one size-3 clique per common
    // neighbor. Both endpoints act as cluster center; only the center's
    // degree enters the bound, so evaluate both.
    const std::vector<NodeId> outer =
        common_neighbors(graph, common.u, common.v);
    if (outer.empty()) continue;
    const std::size_t cluster_size = outer.size();
    // Joint edges connect outer nodes (their clique with the center is not
    // part of the cluster); the largest joint clique is the largest clique
    // among the outer nodes.
    const std::size_t joint = max_clique_size_within(graph, outer);
    const std::size_t joint_edges = joint * (joint - 1) / 2;
    const std::size_t center_degree =
        std::max(graph.degree(common.u), graph.degree(common.v));
    best = std::max(best, 2 * (center_degree + cluster_size + joint_edges));
  }
  return best;
}

std::size_t upper_bound_colors(const Graph& graph) {
  const std::size_t delta = graph.max_degree();
  return 2 * delta * delta;
}

std::size_t upper_bound_conflict_degree(const ConflictIndex& index) {
  return index.num_arcs() == 0 ? 0 : index.max_conflict_degree() + 1;
}

}  // namespace fdlsp
