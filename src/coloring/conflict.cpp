#include "coloring/conflict.h"

#include <algorithm>

namespace fdlsp {

bool arcs_conflict(const ArcView& view, ArcId a, ArcId b) {
  FDLSP_REQUIRE(a != b, "conflict is defined on distinct arcs");
  const NodeId t1 = view.tail(a);
  const NodeId h1 = view.head(a);
  const NodeId t2 = view.tail(b);
  const NodeId h2 = view.head(b);
  if (t1 == t2 || h1 == h2 || t1 == h2 || h1 == t2) return true;
  const Graph& g = view.graph();
  return g.has_edge(h1, t2) || g.has_edge(h2, t1);
}

std::vector<ArcId> conflicting_arcs(const ArcView& view, ArcId a) {
  std::vector<ArcId> arcs;
  for_each_conflicting_arc(view, a, [&](ArcId b) { arcs.push_back(b); });
  std::sort(arcs.begin(), arcs.end());
  arcs.erase(std::unique(arcs.begin(), arcs.end()), arcs.end());
  return arcs;
}

Color smallest_feasible_color(const ArcView& view, const ArcColoring& coloring,
                              ArcId a) {
  // Collect colors of conflicting arcs, then scan for the first gap.
  std::vector<Color> used;
  for_each_conflicting_arc(view, a, [&](ArcId b) {
    const Color c = coloring.color(b);
    if (c != kNoColor) used.push_back(c);
  });
  std::sort(used.begin(), used.end());
  used.erase(std::unique(used.begin(), used.end()), used.end());
  Color candidate = 0;
  for (Color c : used) {
    if (c > candidate) break;
    if (c == candidate) ++candidate;
  }
  return candidate;
}

}  // namespace fdlsp
