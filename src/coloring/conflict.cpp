#include "coloring/conflict.h"

#include <algorithm>

#include "support/epoch_marks.h"

namespace fdlsp {

bool arcs_conflict(const ArcView& view, ArcId a, ArcId b) {
  FDLSP_REQUIRE(a != b, "conflict is defined on distinct arcs");
  const NodeId t1 = view.tail(a);
  const NodeId h1 = view.head(a);
  const NodeId t2 = view.tail(b);
  const NodeId h2 = view.head(b);
  if (t1 == t2 || h1 == h2 || t1 == h2 || h1 == t2) return true;
  const Graph& g = view.graph();
  return g.has_edge(h1, t2) || g.has_edge(h2, t1);
}

void conflicting_arcs_into(const ArcView& view, ArcId a,
                           std::vector<ArcId>& out) {
  out.clear();
  for_each_conflicting_arc(view, a, [&](ArcId b) { out.push_back(b); });
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
}

std::vector<ArcId> conflicting_arcs(const ArcView& view, ArcId a) {
  std::vector<ArcId> arcs;
  conflicting_arcs_into(view, a, arcs);
  return arcs;
}

Color smallest_feasible_color(const ArcView& view, const ArcColoring& coloring,
                              ArcId a) {
  // Epoch-stamped used-color set: duplicates from the enumeration are
  // harmless, so no per-call vector, sort, or unique. The buffer persists
  // per thread; the result is a pure function of (view, coloring, a).
  thread_local EpochMarks used;
  used.begin();
  for_each_conflicting_arc(view, a, [&](ArcId b) {
    const Color c = coloring.color(b);
    if (c != kNoColor) used.mark(static_cast<std::size_t>(c));
  });
  return static_cast<Color>(used.first_unmarked());
}

}  // namespace fdlsp
