#include "support/alloc_audit.h"

#include <atomic>
#include <cstdlib>
#include <new>

#if FDLSP_ALLOC_AUDIT

namespace {

// Constant-initialized, so counting is valid even for allocations performed
// during static initialization, before main().
std::atomic<std::uint64_t> g_allocations{0};
std::atomic<std::uint64_t> g_deallocations{0};
std::atomic<std::uint64_t> g_bytes{0};

void* counted_alloc(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(size, std::memory_order_relaxed);
  if (size == 0) size = 1;
  return std::malloc(size);
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(size, std::memory_order_relaxed);
  if (align < sizeof(void*)) align = sizeof(void*);
  // aligned_alloc requires the size to be a multiple of the alignment.
  const std::size_t rounded = (size + align - 1) / align * align;
  return std::aligned_alloc(align, rounded == 0 ? align : rounded);
}

void counted_free(void* p) noexcept {
  if (p != nullptr) g_deallocations.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}

}  // namespace

// Replaceable global allocation functions. The standard routes the default
// nothrow and array forms through these, but the compiler may also call any
// form directly, so the whole family is replaced. All heap traffic in the
// process — engines, programs, the standard library — is counted.
void* operator new(std::size_t size) {
  void* p = counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}

void* operator new[](std::size_t size) {
  void* p = counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* p = counted_aligned_alloc(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  void* p = counted_aligned_alloc(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { counted_free(p); }
void operator delete[](void* p) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t) noexcept { counted_free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  counted_free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  counted_free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  counted_free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  counted_free(p);
}

namespace fdlsp {

bool alloc_audit_enabled() noexcept { return true; }

AllocCounts alloc_audit_counts() noexcept {
  AllocCounts counts;
  counts.allocations = g_allocations.load(std::memory_order_relaxed);
  counts.deallocations = g_deallocations.load(std::memory_order_relaxed);
  counts.bytes = g_bytes.load(std::memory_order_relaxed);
  return counts;
}

}  // namespace fdlsp

#else  // !FDLSP_ALLOC_AUDIT — sanitizer builds interpose operator new

namespace fdlsp {

bool alloc_audit_enabled() noexcept { return false; }

AllocCounts alloc_audit_counts() noexcept { return AllocCounts{}; }

}  // namespace fdlsp

#endif  // FDLSP_ALLOC_AUDIT

namespace fdlsp {

AllocCounts AllocAuditRegion::delta() const noexcept {
  const AllocCounts now = alloc_audit_counts();
  AllocCounts d;
  d.allocations = now.allocations - start_.allocations;
  d.deallocations = now.deallocations - start_.deallocations;
  d.bytes = now.bytes - start_.bytes;
  return d;
}

void AllocAudit::begin_round() noexcept {
  round_start_ = alloc_audit_counts().allocations;
}

void AllocAudit::end_round() noexcept {
  const std::uint64_t delta =
      alloc_audit_counts().allocations - round_start_;
  total_ += delta;
  if (delta > 0) {
    ++allocating_rounds_;
    last_allocating_ = rounds_;
    if (delta > peak_) peak_ = delta;
  }
  if (history_ != nullptr) history_->push_back(delta);
  ++rounds_;
}

}  // namespace fdlsp
