#include "support/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "support/check.h"

namespace fdlsp {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  FDLSP_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> row) {
  FDLSP_REQUIRE(row.size() == headers_.size(),
                "row width must match header width");
  rows_.push_back(std::move(row));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c)
      os << ' ' << std::left << std::setw(static_cast<int>(widths[c]))
         << cells[c] << " |";
    os << '\n';
  };

  emit(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c)
    os << std::string(widths[c] + 2, '-') << '|';
  os << '\n';
  for (const auto& row : rows_) emit(row);
}

namespace {
void emit_csv_cell(std::ostream& os, const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) {
    os << cell;
    return;
  }
  os << '"';
  for (char ch : cell) {
    if (ch == '"') os << '"';
    os << ch;
  }
  os << '"';
}
}  // namespace

void TextTable::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      emit_csv_cell(os, cells[c]);
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

std::string fmt_double(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  std::string text = os.str();
  if (text.find('.') != std::string::npos) {
    while (text.back() == '0') text.pop_back();
    if (text.back() == '.') text.pop_back();
  }
  return text;
}

}  // namespace fdlsp
