#include "support/cli.h"

#include <string_view>

#include "support/check.h"

namespace fdlsp {

CliArgs::CliArgs(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    FDLSP_REQUIRE(arg.rfind("--", 0) == 0,
                  "arguments must be of the form --name[=value]");
    arg.remove_prefix(2);
    const auto eq = arg.find('=');
    if (eq == std::string_view::npos) {
      values_.insert_or_assign(std::string(arg), std::string("1"));
    } else {
      values_.insert_or_assign(std::string(arg.substr(0, eq)),
                               std::string(arg.substr(eq + 1)));
    }
  }
}

bool CliArgs::has(const std::string& name) const {
  return values_.count(name) != 0;
}

std::string CliArgs::get(const std::string& name,
                         const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t CliArgs::get_int(const std::string& name,
                              std::int64_t fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : std::stoll(it->second);
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : std::stod(it->second);
}

}  // namespace fdlsp
