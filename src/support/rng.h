// Deterministic pseudo-random number generation.
//
// All stochastic components of the library (graph generators, Luby's MIS,
// asynchronous delay models, experiment sweeps) draw from fdlsp::Rng so that
// every run is reproducible from a single 64-bit seed. The generator is
// xoshiro256**, seeded via SplitMix64 per the reference recommendation.
//
// Seeding convention (enforced: Rng has no default seed):
//   * Every Rng is constructed with an explicitly threaded seed that derives
//     from the run's single base seed. Constructing Rng with a shared
//     literal inside a loop gives every iteration an identical stream —
//     iterations silently explore the same instance, which inflates
//     confidence without adding coverage.
//   * To derive per-iteration / per-node / per-task streams, either draw
//     from a parent generator (`Rng seeder(base); child(seeder());`), call
//     `split()`, or mix the index statelessly
//     (`std::uint64_t s = base; Rng r(splitmix64(s) ^ index);`).
//   * APIs that run stochastic work take a `seed` parameter and pass it down
//     unchanged; only the outermost caller (CLI flag, test constant)
//     chooses the literal.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "support/check.h"

namespace fdlsp {

/// SplitMix64 step; used for seeding and as a cheap stateless mixer.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** deterministic PRNG. Satisfies UniformRandomBitGenerator so it
/// can be plugged into <random> distributions, but the member helpers below
/// are preferred: they are portable across standard libraries.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from one 64-bit seed via SplitMix64.
  /// Deliberately no default seed: a shared implicit seed across call sites
  /// is how "random" sweeps silently re-run one instance (see the seeding
  /// convention above).
  explicit Rng(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound); unbiased via rejection sampling.
  /// bound must be positive.
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    // Reject draws from the final partial block; expected iterations < 2.
    const std::uint64_t limit = max() - max() % bound;
    for (;;) {
      const std::uint64_t x = (*this)();
      if (x < limit) return x % bound;
    }
  }

  /// Uniform integer in the inclusive range [lo, hi].
  std::int64_t next_int(std::int64_t lo, std::int64_t hi) noexcept {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next_below(span));
  }

  /// Uniform std::size_t index in [0, n).
  std::size_t next_index(std::size_t n) noexcept {
    return static_cast<std::size_t>(next_below(n));
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double next_double() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool next_bool(double p) noexcept { return next_double() < p; }

  /// Fisher–Yates shuffle of a vector-like range, driven by this generator.
  template <typename T>
  void shuffle(std::vector<T>& values) noexcept {
    for (std::size_t i = values.size(); i > 1; --i) {
      const std::size_t j = next_index(i);
      using std::swap;
      swap(values[i - 1], values[j]);
    }
  }

  /// Derives an independent child generator; used to hand each parallel task
  /// its own stream without sharing mutable state across threads.
  Rng split() noexcept {
    return Rng((*this)() ^ 0x9e3779b97f4a7c15ULL);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace fdlsp
