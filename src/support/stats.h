// Streaming summary statistics (Welford) used when aggregating experiment
// results over many random instances.
#pragma once

#include <cmath>
#include <cstddef>
#include <limits>

#include "support/check.h"

namespace fdlsp {

/// Single-pass accumulator for count / mean / variance / min / max.
class Summary {
 public:
  /// Folds one observation into the summary.
  void add(double x) noexcept {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  std::size_t count() const noexcept { return count_; }

  /// Arithmetic mean; requires at least one observation.
  double mean() const {
    FDLSP_REQUIRE(count_ > 0, "mean of empty summary");
    return mean_;
  }

  /// Unbiased sample variance; 0 for fewer than two observations.
  double variance() const noexcept {
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
  }

  /// Sample standard deviation.
  double stddev() const noexcept { return std::sqrt(variance()); }

  double min() const {
    FDLSP_REQUIRE(count_ > 0, "min of empty summary");
    return min_;
  }

  double max() const {
    FDLSP_REQUIRE(count_ > 0, "max of empty summary");
    return max_;
  }

  /// Merges another summary into this one (parallel reduction step).
  void merge(const Summary& other) noexcept {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    const double total = static_cast<double>(count_ + other.count_);
    const double delta = other.mean_ - mean_;
    m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                           static_cast<double>(other.count_) / total;
    mean_ += delta * static_cast<double>(other.count_) / total;
    count_ += other.count_;
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace fdlsp
