// Epoch-stamped membership marks over a dense id space (colors, arcs, ...).
//
// begin() opens a fresh empty set in O(1) by bumping an epoch counter instead
// of clearing the table; mark()/marked() are O(1). The backing table grows
// monotonically to the largest key ever marked and is reused across rounds,
// so steady-state operation performs no allocation and no clearing sweep —
// exactly what the per-arc hot loops of the coloring core need.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace fdlsp {

/// Reusable O(1)-reset membership set over keys in [0, grown capacity).
class EpochMarks {
 public:
  /// Starts a new, empty round. Constant time except once every 2^32 rounds,
  /// when the stamp table is wiped to keep stale epochs from aliasing.
  void begin() noexcept {
    if (++epoch_ == 0) {
      std::fill(stamps_.begin(), stamps_.end(), 0u);
      epoch_ = 1;
    }
  }

  /// Ensures keys < capacity can be marked without growing mid-loop.
  void reserve(std::size_t capacity) {
    if (capacity > stamps_.size()) stamps_.resize(capacity, 0u);
  }

  /// Adds `key` to the current round's set.
  void mark(std::size_t key) {
    if (key >= stamps_.size()) stamps_.resize(key + 1, 0u);
    stamps_[key] = epoch_;
  }

  /// True iff `key` was marked since the last begin().
  bool marked(std::size_t key) const noexcept {
    return key < stamps_.size() && stamps_[key] == epoch_;
  }

  /// Marks `key`; returns false if it was already marked this round.
  bool mark_if_new(std::size_t key) {
    if (marked(key)) return false;
    mark(key);
    return true;
  }

  /// Smallest key not marked this round (the greedy color-gap scan).
  std::size_t first_unmarked() const noexcept {
    std::size_t key = 0;
    while (key < stamps_.size() && stamps_[key] == epoch_) ++key;
    return key;
  }

 private:
  std::vector<std::uint32_t> stamps_;
  std::uint32_t epoch_ = 0;
};

}  // namespace fdlsp
