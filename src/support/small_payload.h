// Small-buffer-optimized message payload.
//
// Every quantity the paper's protocols exchange per message — ids, random
// draws, TTLs, (arc, color) pairs — is a handful of int64 words, so the
// std::vector the Message type used to carry heap-allocated on virtually
// every send. SmallPayload stores up to kInlineCapacity words inline and
// only spills to the heap for the rare large payload (knowledge floods,
// reliable-wrapper frames), making the common send/deliver path
// allocation-free. The API is the subset of std::vector<std::int64_t> the
// protocols actually use, so call sites are unchanged.
//
// clear() keeps a spilled buffer (reset, not freed): a payload object that
// is reused round after round — the engines' inbox slabs — settles into a
// steady state with zero allocator traffic.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <iterator>
#include <utility>
#include <vector>

#include "support/check.h"

namespace fdlsp {

/// Inline-first sequence of int64 payload words (see header comment).
class SmallPayload {
 public:
  using value_type = std::int64_t;
  using iterator = value_type*;
  using const_iterator = const value_type*;

  /// Words stored without heap allocation. Four covers every tag the
  /// built-in protocols send outside bulk knowledge floods.
  static constexpr std::size_t kInlineCapacity = 4;

  SmallPayload() noexcept = default;

  SmallPayload(std::initializer_list<value_type> init) {
    assign(init.begin(), init.end());
  }

  /// Implicit on purpose: protocols build bulk payloads in a plain vector
  /// and hand it over with `message.data = std::move(pairs)`.
  SmallPayload(const std::vector<value_type>& values) {  // NOLINT
    assign(values.begin(), values.end());
  }

  SmallPayload(const SmallPayload& other) {
    assign(other.begin(), other.end());
  }

  SmallPayload(SmallPayload&& other) noexcept { steal(other); }

  SmallPayload& operator=(const SmallPayload& other) {
    if (this != &other) assign(other.begin(), other.end());
    return *this;
  }

  /// Move-assignment SWAPS buffers instead of freeing the destination's:
  /// the moved-from payload walks away with our old capacity, so in the
  /// engines' recycling loops (inbox slabs, scratch messages) spilled
  /// buffers circulate between slots instead of being freed and
  /// reallocated — the steady state allocates nothing. The moved-from
  /// object is still valid-but-unspecified, exactly as std::vector's.
  ///
  /// One refinement on the plain swap: an inline source never takes a
  /// spilled destination's buffer. The source is usually a dying temporary
  /// (a two-word ack posted into a recycled slab slot), and a swap would
  /// ship the slot's hard-won capacity to the grave with it — the next
  /// large payload into that slot would have to reallocate.
  SmallPayload& operator=(SmallPayload&& other) noexcept {
    if (this == &other) return *this;
    if (other.heap_ == nullptr && heap_ != nullptr) {
      // Spilled capacity is always > kInlineCapacity, so the copy fits.
      std::copy(other.inline_, other.inline_ + other.size_, heap_);
      size_ = other.size_;
      other.size_ = 0;
      return *this;
    }
    swap(other);
    return *this;
  }

  SmallPayload& operator=(std::initializer_list<value_type> init) {
    assign(init.begin(), init.end());
    return *this;
  }

  SmallPayload& operator=(const std::vector<value_type>& values) {
    assign(values.begin(), values.end());
    return *this;
  }

  ~SmallPayload() { release(); }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  std::size_t capacity() const noexcept { return capacity_; }
  /// True when the payload lives on the heap (diagnostics/tests only).
  bool spilled() const noexcept { return heap_ != nullptr; }

  value_type* data() noexcept { return heap_ != nullptr ? heap_ : inline_; }
  const value_type* data() const noexcept {
    return heap_ != nullptr ? heap_ : inline_;
  }

  iterator begin() noexcept { return data(); }
  iterator end() noexcept { return data() + size_; }
  const_iterator begin() const noexcept { return data(); }
  const_iterator end() const noexcept { return data() + size_; }

  value_type& operator[](std::size_t i) {
    FDLSP_ASSERT(i < size_, "payload index out of range");
    return data()[i];
  }
  const value_type& operator[](std::size_t i) const {
    FDLSP_ASSERT(i < size_, "payload index out of range");
    return data()[i];
  }

  value_type& front() { return (*this)[0]; }
  const value_type& front() const { return (*this)[0]; }
  value_type& back() { return (*this)[size_ - 1]; }
  const value_type& back() const { return (*this)[size_ - 1]; }

  void reserve(std::size_t wanted) {
    if (wanted > capacity_) grow(wanted);
  }

  /// Drops the contents but keeps any spilled buffer for reuse.
  void clear() noexcept { size_ = 0; }

  /// Swaps contents and capacities with `other`; never allocates.
  void swap(SmallPayload& other) noexcept {
    if (heap_ == nullptr && other.heap_ == nullptr) {
      // Words past both sizes are dead storage; swapping only the live
      // prefix keeps the engines' one-word control frames cheap.
      const std::size_t live = size_ > other.size_ ? size_ : other.size_;
      for (std::size_t i = 0; i < live; ++i)
        std::swap(inline_[i], other.inline_[i]);
      std::swap(size_, other.size_);
      return;
    }
    if (heap_ != nullptr && other.heap_ != nullptr) {
      std::swap(heap_, other.heap_);
      std::swap(capacity_, other.capacity_);
      std::swap(size_, other.size_);
      return;
    }
    // Mixed: the inline side's words move into the spilled side's inline
    // array (dead storage while it owned a heap buffer), then the heap
    // buffer changes hands.
    SmallPayload* spilled = heap_ != nullptr ? this : &other;
    SmallPayload* local = heap_ != nullptr ? &other : this;
    std::copy(local->inline_, local->inline_ + local->size_, spilled->inline_);
    local->heap_ = spilled->heap_;
    local->capacity_ = spilled->capacity_;
    spilled->heap_ = nullptr;
    spilled->capacity_ = kInlineCapacity;
    std::swap(size_, other.size_);
  }

  void push_back(value_type value) {
    if (size_ == capacity_) grow(size_ + 1);
    data()[size_++] = value;
  }

  void pop_back() {
    FDLSP_ASSERT(size_ > 0, "pop_back on empty payload");
    --size_;
  }

  template <typename InputIt>
  void assign(InputIt first, InputIt last) {
    const auto count =
        static_cast<std::size_t>(std::distance(first, last));
    if (count > capacity_) grow_discard(count);
    std::copy(first, last, data());
    size_ = count;
  }

  /// Inserts [first, last) before `pos`. Only forward iterators are
  /// supported (every call site inserts from arrays or vectors).
  template <typename InputIt>
  iterator insert(const_iterator pos, InputIt first, InputIt last) {
    const auto index = static_cast<std::size_t>(pos - begin());
    FDLSP_ASSERT(index <= size_, "insert position out of range");
    const auto count =
        static_cast<std::size_t>(std::distance(first, last));
    if (count == 0) return begin() + index;
    if (size_ + count > capacity_) grow(size_ + count);
    value_type* base = data();
    std::copy_backward(base + index, base + size_, base + size_ + count);
    std::copy(first, last, base + index);
    size_ += count;
    return base + index;
  }

  friend bool operator==(const SmallPayload& a, const SmallPayload& b) {
    return a.size_ == b.size_ && std::equal(a.begin(), a.end(), b.begin());
  }

 private:
  /// Moves other's contents into *this (assumes *this owns no heap buffer).
  void steal(SmallPayload& other) noexcept {
    if (other.heap_ != nullptr) {
      heap_ = other.heap_;
      capacity_ = other.capacity_;
      other.heap_ = nullptr;
      other.capacity_ = kInlineCapacity;
    } else {
      heap_ = nullptr;
      capacity_ = kInlineCapacity;
      std::copy(other.inline_, other.inline_ + other.size_, inline_);
    }
    size_ = other.size_;
    other.size_ = 0;
  }

  void release() noexcept {
    delete[] heap_;
    heap_ = nullptr;
    capacity_ = kInlineCapacity;
  }

  /// Grows to at least `wanted`, preserving contents. Doubles so repeated
  /// push_back stays amortized O(1).
  void grow(std::size_t wanted) {
    const std::size_t target = std::max(wanted, capacity_ * 2);
    auto* fresh = new value_type[target];
    std::copy(data(), data() + size_, fresh);
    delete[] heap_;
    heap_ = fresh;
    capacity_ = target;
  }

  /// Grows to at least `wanted` without preserving contents (assign path).
  void grow_discard(std::size_t wanted) {
    const std::size_t target = std::max(wanted, capacity_ * 2);
    auto* fresh = new value_type[target];
    delete[] heap_;
    heap_ = fresh;
    capacity_ = target;
  }

  value_type inline_[kInlineCapacity] = {};
  value_type* heap_ = nullptr;  // non-null once spilled; owns capacity_ words
  std::size_t size_ = 0;
  std::size_t capacity_ = kInlineCapacity;
};

}  // namespace fdlsp
