// Lightweight precondition / invariant checking.
//
// FDLSP_REQUIRE is always on (argument validation at public API boundaries);
// FDLSP_ASSERT compiles out in NDEBUG builds (internal invariants on hot
// paths). Both throw rather than abort so tests can assert on violations.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace fdlsp {

/// Thrown when a precondition or invariant is violated.
class contract_error : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line,
                                       const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw contract_error(os.str());
}
}  // namespace detail

}  // namespace fdlsp

#define FDLSP_REQUIRE(cond, msg)                                            \
  do {                                                                      \
    if (!(cond))                                                            \
      ::fdlsp::detail::contract_fail("precondition", #cond, __FILE__,       \
                                     __LINE__, (msg));                      \
  } while (0)

#ifdef NDEBUG
#define FDLSP_ASSERT(cond, msg) \
  do {                          \
  } while (0)
#else
#define FDLSP_ASSERT(cond, msg)                                           \
  do {                                                                    \
    if (!(cond))                                                          \
      ::fdlsp::detail::contract_fail("assertion", #cond, __FILE__,        \
                                     __LINE__, (msg));                    \
  } while (0)
#endif
