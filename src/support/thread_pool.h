// Fixed-size worker pool used by the experiment harness to fan Monte-Carlo
// instances across cores. Tasks are type-erased thunks; exceptions raised by
// a task are captured and rethrown to the first caller of wait_idle().
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fdlsp {

/// A joinable pool of worker threads consuming a FIFO task queue.
///
/// Lifetime: the destructor drains outstanding tasks and joins all workers,
/// so a ThreadPool can be scoped tightly around a parallel section.
class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains the queue and joins the workers.
  ~ThreadPool();

  /// Enqueues a task for execution on some worker.
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and no task is running, then rethrows
  /// the first exception any task raised (if any).
  ///
  /// Must not be called from one of this pool's own workers: the waiter
  /// would itself be an in-flight task and never see the pool idle. Check
  /// on_worker_thread() and run serially instead — parallel_for and the
  /// pooled engines/sweeps do exactly that, so nesting them on one shared
  /// pool degrades gracefully rather than deadlocking.
  void wait_idle();

  /// True when the calling thread is one of this pool's workers.
  bool on_worker_thread() const noexcept;

  /// Number of worker threads.
  std::size_t size() const noexcept { return workers_.size(); }

 private:
  void worker_loop();
  void push_task(std::function<void()>&& task);
  std::function<void()> pop_task();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  // FIFO ring over a capacity-retaining vector instead of a deque: a deque
  // allocates and frees blocks as the head crosses block boundaries, which
  // shows up as steady per-round allocator traffic in the pooled engines'
  // zero-alloc profile (tests/engine_alloc_test.cpp). The ring reaches its
  // high-water capacity once and then cycles allocation-free; slots hold
  // moved-from std::function shells whose small-buffer storage is reused.
  std::vector<std::function<void()>> ring_;
  std::size_t ring_head_ = 0;   // index of the oldest queued task
  std::size_t ring_count_ = 0;  // queued (not yet popped) tasks
  std::vector<std::thread> workers_;
  std::exception_ptr first_error_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

}  // namespace fdlsp
