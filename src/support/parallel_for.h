// parallel_for: block-partitioned parallel loop over an index range.
//
// The body receives (index, worker_rng&) so stochastic workloads stay
// deterministic: each index gets an Rng derived from (seed, index), making the
// result independent of the thread schedule.
#pragma once

#include <cstddef>

#include "support/rng.h"
#include "support/thread_pool.h"

namespace fdlsp {

/// Runs body(i) for i in [0, count) across the pool. Blocks until done and
/// propagates the first exception.
template <typename Body>
void parallel_for(ThreadPool& pool, std::size_t count, Body body) {
  if (count == 0) return;
  if (pool.on_worker_thread()) {
    // Already inside one of this pool's tasks: waiting for the pool to go
    // idle would deadlock on ourselves, so run the loop inline. Nested
    // parallel sections on a shared pool thereby serialize instead of
    // hanging (results are identical either way — every pooled loop here
    // is order-independent by construction).
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  const std::size_t chunks = pool.size() * 4;
  const std::size_t chunk = (count + chunks - 1) / chunks;
  for (std::size_t begin = 0; begin < count; begin += chunk) {
    const std::size_t end = begin + chunk < count ? begin + chunk : count;
    pool.submit([begin, end, &body] {
      for (std::size_t i = begin; i < end; ++i) body(i);
    });
  }
  pool.wait_idle();
}

/// Deterministic stochastic variant: body(i, rng) where rng is seeded from
/// (seed, i) only — results do not depend on thread interleaving.
template <typename Body>
void parallel_for_seeded(ThreadPool& pool, std::size_t count,
                         std::uint64_t seed, Body body) {
  parallel_for(pool, count, [seed, &body](std::size_t i) {
    std::uint64_t mix = seed ^ (0xa0761d6478bd642fULL * (i + 1));
    Rng rng(splitmix64(mix));
    body(i, rng);
  });
}

}  // namespace fdlsp
