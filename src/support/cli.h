// Minimal --flag=value command-line parsing for benches and examples.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace fdlsp {

/// Parses arguments of the form `--name=value` or bare `--name` (value "1").
/// Unknown positional arguments raise contract_error so typos fail loudly.
class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  /// True if --name was present.
  bool has(const std::string& name) const;

  /// String value of --name, or fallback if absent.
  std::string get(const std::string& name, const std::string& fallback) const;

  /// Integer value of --name, or fallback if absent.
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;

  /// Double value of --name, or fallback if absent.
  double get_double(const std::string& name, double fallback) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace fdlsp
