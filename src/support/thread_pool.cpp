#include "support/thread_pool.h"

#include <utility>

namespace fdlsp {

namespace {
// Which pool (if any) owns the current thread; lets parallel entry points
// detect nesting on a shared pool and fall back to their serial path.
thread_local const ThreadPool* current_worker_pool = nullptr;
}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::push_task(std::function<void()>&& task) {
  // Caller holds mutex_. Grow by unrolling the ring into a fresh vector in
  // FIFO order; after the high-water mark is reached the ring recycles its
  // slots (and their std::function small-buffer storage) without touching
  // the allocator.
  if (ring_count_ == ring_.size()) {
    std::vector<std::function<void()>> bigger;
    bigger.reserve(ring_.empty() ? 16 : ring_.size() * 2);
    for (std::size_t i = 0; i < ring_count_; ++i)
      bigger.push_back(std::move(ring_[(ring_head_ + i) % ring_.size()]));
    bigger.resize(bigger.capacity());
    ring_ = std::move(bigger);
    ring_head_ = 0;
  }
  ring_[(ring_head_ + ring_count_) % ring_.size()] = std::move(task);
  ++ring_count_;
}

std::function<void()> ThreadPool::pop_task() {
  // Caller holds mutex_ and has checked ring_count_ > 0.
  std::function<void()> task = std::move(ring_[ring_head_]);
  ring_head_ = (ring_head_ + 1) % ring_.size();
  --ring_count_;
  return task;
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    push_task(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [this] { return ring_count_ == 0 && in_flight_ == 0; });
  if (first_error_) {
    auto error = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

bool ThreadPool::on_worker_thread() const noexcept {
  return current_worker_pool == this;
}

void ThreadPool::worker_loop() {
  current_worker_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      work_available_.wait(lock,
                           [this] { return stopping_ || ring_count_ > 0; });
      if (ring_count_ == 0) return;  // stopping_ with no work left
      task = pop_task();
      ++in_flight_;
    }
    try {
      task();
    } catch (...) {
      std::lock_guard lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
      if (ring_count_ == 0 && in_flight_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace fdlsp
