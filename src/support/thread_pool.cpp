#include "support/thread_pool.h"

#include <utility>

namespace fdlsp {

namespace {
// Which pool (if any) owns the current thread; lets parallel entry points
// detect nesting on a shared pool and fall back to their serial path.
thread_local const ThreadPool* current_worker_pool = nullptr;
}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
  if (first_error_) {
    auto error = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

bool ThreadPool::on_worker_thread() const noexcept {
  return current_worker_pool == this;
}

void ThreadPool::worker_loop() {
  current_worker_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with no work left
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    try {
      task();
    } catch (...) {
      std::lock_guard lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace fdlsp
