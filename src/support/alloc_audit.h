// Allocation auditor: process-wide counting operator new/delete hooks plus
// round-granular accounting, turning DESIGN.md §11's "the steady-state
// message path allocates nothing" from a comment into a tested invariant
// (tests/engine_alloc_test.cpp, bench/micro_engines alloc counters).
//
// The hooks replace the global throwing/nothrow/aligned operator new and
// delete families with thin std::malloc wrappers that bump relaxed atomic
// counters (alloc_audit.cpp). They are compiled out — FDLSP_ALLOC_AUDIT 0 —
// under ASan/TSan/MSan, which interpose operator new themselves;
// alloc_audit_enabled() lets tests skip instead of asserting on zeros that
// mean "hooks absent", not "no allocations".
//
// Two consumers:
//   AllocAuditRegion — scoped delta of the global counters, for bracketing
//                      any code region (benchmarks, tests).
//   AllocAudit       — per-round accounting behind the engines' optional
//                      seam (SyncEngine::set_alloc_audit brackets each
//                      round, AsyncEngine::set_alloc_audit each event).
//                      Like SimTrace/FaultPlan it is a null-check when
//                      absent; unlike them it observes only global counters,
//                      so it does NOT force the serial path — pooled rounds
//                      are audited too.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

// Hooks are compiled out when a sanitizer owns operator new.
#ifndef FDLSP_ALLOC_AUDIT
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define FDLSP_ALLOC_AUDIT 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define FDLSP_ALLOC_AUDIT 0
#else
#define FDLSP_ALLOC_AUDIT 1
#endif
#else
#define FDLSP_ALLOC_AUDIT 1
#endif
#endif

namespace fdlsp {

/// Snapshot of the process-wide allocation counters.
struct AllocCounts {
  std::uint64_t allocations = 0;    ///< operator new calls
  std::uint64_t deallocations = 0;  ///< operator delete calls (non-null)
  std::uint64_t bytes = 0;          ///< total bytes requested from new
};

/// True when the counting hooks are linked in (false under sanitizers).
bool alloc_audit_enabled() noexcept;

/// Current global counters; all-zero when the hooks are compiled out.
AllocCounts alloc_audit_counts() noexcept;

/// Scoped delta of the global counters from construction to each delta()
/// call. Holds no dynamic storage, so it never perturbs its own measurement.
class AllocAuditRegion {
 public:
  AllocAuditRegion() noexcept : start_(alloc_audit_counts()) {}

  /// Counter deltas since construction.
  AllocCounts delta() const noexcept;

 private:
  AllocCounts start_;
};

/// Per-round allocation accounting for the engine seams. begin_round /
/// end_round bracket one dispatch unit (a synchronous round, an async
/// event); the auditor samples the global counters at both edges and folds
/// the delta into the profile below. All state is inline — attaching an
/// auditor adds no allocations of its own.
class AllocAudit {
 public:
  static constexpr std::uint64_t kNoRound = ~std::uint64_t{0};

  AllocAudit() noexcept = default;

  void begin_round() noexcept;
  void end_round() noexcept;

  /// Optionally records each round's allocation count into `history`
  /// (nullptr detaches). Reserve it up front — a push_back that grows the
  /// vector mid-run would perturb the very profile being recorded (the
  /// sample is taken before the push, so the perturbation lands in the
  /// inter-round gap, but the reserve keeps the profile honest).
  void set_history(std::vector<std::uint64_t>* history) noexcept {
    history_ = history;
  }

  /// Rounds bracketed so far.
  std::uint64_t rounds() const noexcept { return rounds_; }
  /// operator new calls observed inside bracketed rounds.
  std::uint64_t total_allocations() const noexcept { return total_; }
  /// Rounds with at least one allocation.
  std::uint64_t allocating_rounds() const noexcept {
    return allocating_rounds_;
  }
  /// 0-based index of the last round that allocated; kNoRound when none did.
  std::uint64_t last_allocating_round() const noexcept {
    return last_allocating_;
  }
  /// Largest single-round allocation count.
  std::uint64_t peak_round_allocations() const noexcept { return peak_; }

 private:
  std::uint64_t rounds_ = 0;
  std::uint64_t total_ = 0;
  std::uint64_t allocating_rounds_ = 0;
  std::uint64_t last_allocating_ = kNoRound;
  std::uint64_t peak_ = 0;
  std::uint64_t round_start_ = 0;  // allocation counter at begin_round
  std::vector<std::uint64_t>* history_ = nullptr;  // optional per-round log
};

}  // namespace fdlsp
