// Plain-text table and CSV rendering for benchmark harness output.
//
// Every figure/table reproduction prints through TextTable so the console
// output mirrors the paper's rows/series, and optionally dumps CSV for
// external plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace fdlsp {

/// A rectangular table of strings with a header row.
///
/// Cells are left-aligned text; numeric formatting is the caller's job (see
/// fmt_double below). Rendering pads every column to its widest cell.
class TextTable {
 public:
  /// Creates a table with the given column headers.
  explicit TextTable(std::vector<std::string> headers);

  /// Appends a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> row);

  /// Renders as an aligned, pipe-separated text table.
  void print(std::ostream& os) const;

  /// Renders as RFC-4180-ish CSV (cells containing commas/quotes are quoted).
  void print_csv(std::ostream& os) const;

  std::size_t rows() const noexcept { return rows_.size(); }
  std::size_t columns() const noexcept { return headers_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision, trimming trailing zeros.
std::string fmt_double(double value, int precision = 2);

}  // namespace fdlsp
