// Deterministic open-addressed hash containers for integer keys.
//
// The protocol programs keep per-node dedup sets and color tables that are
// only ever *point-queried* (insert / find / contains) — iteration order is
// never observed. std::set/std::map give that contract one heap allocation
// and a tree rebalance per insert, which dominated DistMIS's per-message
// cost (see DESIGN.md §11). These containers use linear probing over a
// power-of-two flat array instead: zero allocations after warm-up, and —
// because nothing exposes ordering and the hash is a fixed integer mix —
// bit-for-bit deterministic across runs, platforms, and thread counts.
// (std::unordered_* is banned from deterministic paths by fdlsp-lint for
// exactly the ordering reason; these deliberately offer no iteration.)
//
// Keys are unsigned integers. Key(-1) is reserved as the empty sentinel —
// fine for NodeId/ArcId (kNoNode/kNoArc) and for the packed dedup keys the
// protocols build, none of which reach the all-ones pattern.
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "support/check.h"

namespace fdlsp {

namespace detail {

/// Stateless splitmix64 finalizer: a fixed, platform-independent integer
/// mix, so probe sequences (and therefore timings, never results) are
/// reproducible everywhere.
constexpr std::uint64_t mix_hash(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace detail

/// Flat open-addressed map from an unsigned integer key to a trivially
/// copyable value. Point access only — no iteration. erase() uses
/// backward-shift deletion, so lookups stay tombstone-free and the table
/// never degrades however many entries come and go.
template <typename Key, typename Value>
class FlatHashMap {
  static_assert(std::is_unsigned_v<Key>, "keys must be unsigned integers");

 public:
  static constexpr Key kEmpty = static_cast<Key>(-1);

  FlatHashMap() = default;

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  /// Drops all entries but keeps the table storage (slab semantics).
  void clear() noexcept {
    for (Slot& slot : slots_) slot.key = kEmpty;
    size_ = 0;
  }

  bool contains(Key key) const { return find(key) != nullptr; }

  /// Pointer to the value for `key`, or nullptr when absent.
  const Value* find(Key key) const {
    if (slots_.empty()) return nullptr;
    for (std::size_t i = probe_start(key);; i = (i + 1) & mask_) {
      const Slot& slot = slots_[i];
      if (slot.key == key) return &slot.value;
      if (slot.key == kEmpty) return nullptr;
    }
  }
  Value* find(Key key) {
    return const_cast<Value*>(std::as_const(*this).find(key));
  }

  /// Inserts key -> value, overwriting any existing entry.
  void insert_or_assign(Key key, Value value) { slot_for(key).value = value; }

  /// Value for `key`, default-constructed on first access.
  Value& operator[](Key key) { return slot_for(key).value; }

  /// Removes `key` if present; returns whether it was. Backward-shift
  /// deletion: entries probing through the hole are slid back, so no
  /// tombstones accumulate and find() keeps its stop-at-empty contract.
  bool erase(Key key) {
    if (slots_.empty()) return false;
    std::size_t hole = probe_start(key);
    for (;; hole = (hole + 1) & mask_) {
      if (slots_[hole].key == key) break;
      if (slots_[hole].key == kEmpty) return false;
    }
    for (std::size_t j = (hole + 1) & mask_; slots_[j].key != kEmpty;
         j = (j + 1) & mask_) {
      // Slide j back into the hole only if its home slot does not lie
      // strictly after the hole on the (cyclic) probe path — i.e. the probe
      // from home would have passed through the hole.
      const std::size_t home = probe_start(slots_[j].key);
      if (((j - home) & mask_) >= ((j - hole) & mask_)) {
        slots_[hole] = slots_[j];
        hole = j;
      }
    }
    slots_[hole].key = kEmpty;
    --size_;
    return true;
  }

  /// Pre-sizes the table for at least `expected` entries without exceeding
  /// the half-full load factor — inserts up to that count then allocate
  /// nothing. Existing entries are preserved.
  void reserve(std::size_t expected) {
    if (expected == 0) return;
    std::size_t target = 16;
    while (target < expected * 2) target *= 2;
    if (target <= slots_.size()) return;
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(target, Slot{});
    mask_ = slots_.size() - 1;
    size_ = 0;
    for (const Slot& slot : old)
      if (slot.key != kEmpty) slot_for(slot.key).value = slot.value;
  }

 private:
  struct Slot {
    Key key = kEmpty;
    Value value{};
  };

  std::size_t probe_start(Key key) const {
    return static_cast<std::size_t>(
               detail::mix_hash(static_cast<std::uint64_t>(key))) &
           mask_;
  }

  Slot& slot_for(Key key) {
    FDLSP_ASSERT(key != kEmpty, "key collides with the empty sentinel");
    if (slots_.empty() || size_ * 2 >= slots_.size()) grow();
    for (std::size_t i = probe_start(key);; i = (i + 1) & mask_) {
      Slot& slot = slots_[i];
      if (slot.key == key) return slot;
      if (slot.key == kEmpty) {
        slot.key = key;
        ++size_;
        return slot;
      }
    }
  }

  void grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.empty() ? 16 : old.size() * 2, Slot{});
    mask_ = slots_.size() - 1;
    size_ = 0;
    for (const Slot& slot : old)
      if (slot.key != kEmpty) slot_for(slot.key).value = slot.value;
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

/// Flat open-addressed dedup set over an unsigned integer key.
template <typename Key>
class FlatHashSet {
 public:
  std::size_t size() const noexcept { return map_.size(); }
  bool empty() const noexcept { return map_.empty(); }
  void clear() noexcept { map_.clear(); }
  bool contains(Key key) const { return map_.contains(key); }

  /// Returns true the first time `key` is inserted.
  bool insert(Key key) {
    const std::size_t before = map_.size();
    map_[key] = true;
    return map_.size() != before;
  }

  /// Removes `key` if present; returns whether it was.
  bool erase(Key key) { return map_.erase(key); }

  /// Pre-sizes for at least `expected` keys (see FlatHashMap::reserve).
  void reserve(std::size_t expected) { map_.reserve(expected); }

 private:
  FlatHashMap<Key, bool> map_;
};

}  // namespace fdlsp
