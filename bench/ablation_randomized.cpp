// Ablation: the randomized distance-1 algorithm vs DistMIS (the Section 5
// remark — "it produced longer schedules with speed close to the
// independent set based algorithm").
#include <iostream>

#include "algos/dist_mis.h"
#include "algos/randomized.h"
#include "graph/generators.h"
#include "support/cli.h"
#include "support/rng.h"
#include "support/stats.h"
#include "support/table.h"

int main(int argc, char** argv) {
  using namespace fdlsp;
  const CliArgs args(argc, argv);
  const auto instances =
      static_cast<std::size_t>(args.get_int("instances", 10));
  Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 1)));

  TextTable table({"workload", "randomized slots", "distMIS slots",
                   "randomized rounds", "distMIS rounds"});
  struct Workload {
    std::string name;
    std::size_t nodes;
    std::size_t edges;
  };
  for (const Workload& w : {Workload{"n=100 m=400", 100, 400},
                            Workload{"n=200 m=1600", 200, 1600}}) {
    Summary rand_slots, mis_slots, rand_rounds, mis_rounds;
    for (std::size_t i = 0; i < instances; ++i) {
      const Graph graph = generate_gnm(w.nodes, w.edges, rng);
      RandomizedOptions rand_options;
      rand_options.seed = rng();
      const auto rand_result = run_randomized(graph, rand_options);
      rand_slots.add(static_cast<double>(rand_result.num_slots));
      rand_rounds.add(static_cast<double>(rand_result.rounds));

      DistMisOptions mis_options;
      mis_options.variant = DistMisVariant::kGeneral;
      mis_options.seed = rng();
      const auto mis_result = run_dist_mis(graph, mis_options);
      mis_slots.add(static_cast<double>(mis_result.num_slots));
      mis_rounds.add(static_cast<double>(mis_result.rounds));
    }
    table.add_row({w.name, fmt_double(rand_slots.mean(), 1),
                   fmt_double(mis_slots.mean(), 1),
                   fmt_double(rand_rounds.mean(), 1),
                   fmt_double(mis_rounds.mean(), 1)});
  }
  std::cout << "== Ablation: randomized distance-1 vs distMIS "
               "(Section 5 remark) ==\n";
  table.print(std::cout);
  std::cout << "(distance-1 knowledge can only detect conflicts after the "
               "fact, so the randomized schedules are longer)\n";
  return 0;
}
