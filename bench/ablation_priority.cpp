// Ablation: DistMIS competition priority (degree-major random-minor, the
// shipped heuristic) vs a purely random priority.
//
// The library's DistMIS lets high-degree nodes win competitions and color
// first, mirroring the DFS algorithm's max-degree token rule; this bench
// quantifies what that choice buys by comparing against the degree-ordered
// and arc-id-ordered *sequential* greedy colorings, which bracket the two
// priority schemes (DistMIS with degree priority ~ degree-ordered greedy;
// random priority ~ arbitrary-order greedy).
#include <iostream>

#include "algos/dist_mis.h"
#include "coloring/greedy.h"
#include "exp/workloads.h"
#include "graph/arcs.h"
#include "graph/generators.h"
#include "support/cli.h"
#include "support/stats.h"
#include "support/table.h"

int main(int argc, char** argv) {
  using namespace fdlsp;
  const CliArgs args(argc, argv);
  const auto instances = static_cast<std::size_t>(args.get_int("instances", 10));
  Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 1)));

  TextTable table({"workload", "distMIS (degree prio)", "greedy degree-order",
                   "greedy arc-order", "greedy random-order"});
  struct Workload {
    std::string name;
    std::size_t nodes;
    std::size_t edges;
  };
  for (const Workload& w : {Workload{"n=100 m=400", 100, 400},
                            Workload{"n=200 m=1600", 200, 1600}}) {
    Summary mis, degree_order, arc_order, random_order;
    for (std::size_t i = 0; i < instances; ++i) {
      const Graph graph = generate_gnm(w.nodes, w.edges, rng);
      const ArcView view(graph);
      DistMisOptions options;
      options.variant = DistMisVariant::kGeneral;
      options.seed = rng();
      mis.add(static_cast<double>(run_dist_mis(graph, options).num_slots));
      degree_order.add(static_cast<double>(
          greedy_coloring(view, GreedyOrder::kByDegreeDesc)
              .num_colors_used()));
      arc_order.add(static_cast<double>(
          greedy_coloring(view, GreedyOrder::kArcId).num_colors_used()));
      Rng shuffle_rng(rng());
      random_order.add(static_cast<double>(
          greedy_coloring(view, GreedyOrder::kRandom, &shuffle_rng)
              .num_colors_used()));
    }
    table.add_row({w.name, fmt_double(mis.mean(), 1),
                   fmt_double(degree_order.mean(), 1),
                   fmt_double(arc_order.mean(), 1),
                   fmt_double(random_order.mean(), 1)});
  }
  std::cout << "== Ablation: coloring-order priority ==\n";
  table.print(std::cout);
  std::cout << "(degree-first ordering is what keeps distMIS at or below "
               "D-MGC's slot counts)\n";
  return 0;
}
