// Figure 9: as Figure 8 with a 17x17 plan.
#include "bench_common.h"

int main(int argc, char** argv) {
  return fdlsp::bench::run_udg_slots_figure(
      "Figure 9: time slots, UDG plan 17x17", 17.0, argc, argv);
}
