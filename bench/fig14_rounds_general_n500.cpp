// Figure 14: DistMIS (general variant) communication rounds on general
// random graphs with 500 nodes as the edge count grows.
#include "bench_common.h"

int main(int argc, char** argv) {
  return fdlsp::bench::run_general_rounds_figure(
      "Figure 14: distMIS rounds, general graphs, 500 nodes", 500, argc,
      argv);
}
