// Figure 15: DistMIS (general variant) communication rounds on general
// random graphs with 200 nodes as the edge count grows.
#include "bench_common.h"

int main(int argc, char** argv) {
  return fdlsp::bench::run_general_rounds_figure(
      "Figure 15: distMIS rounds, general graphs, 200 nodes", 200, argc,
      argv);
}
